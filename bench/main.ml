(* Benchmark and reproduction harness.

   Part 1 — Bechamel micro-benchmarks of the hot paths that the paper's
   scalability arguments rest on: fabric-manager ARP service (the
   CPU-requirements figure), flow-table lookup (per-hop forwarding cost),
   PMAC and frame codecs, the event engine, and topology construction.

   Part 2 — the full experiment suite: one scenario per paper table and
   figure (see DESIGN.md's experiment index), printed as rows/series.

   `dune exec bench/main.exe` runs both; `-- --quick` trims the
   experiments; `-- --micro-only` / `-- --experiments-only` select one
   part; `-- --json` additionally writes the micro rows and the
   scalability sweep to BENCH_hotpath.json (or `--out FILE`), with
   speedups against the seed constants recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* ---------------- fixtures ---------------- *)

let fm_fixture =
  lazy
    (let engine = Eventsim.Engine.create () in
     let ctrl = Portland.Ctrl.create engine ~latency:(Eventsim.Time.us 50) in
     let spec = Topology.Fattree.spec ~k:48 in
     let fm = Portland.Fabric_manager.create engine Portland.Config.default ctrl ~spec in
     let n = 100_000 in
     let ips = Array.make n (Netcore.Ipv4_addr.of_int 0) in
     for i = 0 to n - 1 do
       let ip = Netcore.Ipv4_addr.of_int (0x0A000000 lor i) in
       ips.(i) <- ip;
       Portland.Fabric_manager.insert_binding_for_test fm
         { Portland.Msg.ip;
           amac = Netcore.Mac_addr.of_int (0x020000000000 lor i);
           pmac =
             Portland.Pmac.make ~pod:(i mod 48) ~position:(i mod 24) ~port:(i mod 24)
               ~vmid:(1 + (i mod 1000));
           edge_switch = i mod 1000 }
     done;
     (fm, ips))

let edge_table_fixture =
  lazy
    (let table = Switchfab.Flow_table.create () in
     (* a realistic k=48 edge switch: per-pod entries + host entries *)
     for p = 1 to 47 do
       Switchfab.Flow_table.set_group table (20_000 + p) [| 24; 25; 26; 27 |];
       Switchfab.Flow_table.install table
         { Switchfab.Flow_table.name = Printf.sprintf "pod:%d" p;
           priority = 70;
           mtch =
             { Switchfab.Flow_table.match_any with
               Switchfab.Flow_table.dst_mac = Some (Portland.Pmac.pod_prefix ~pod:p) };
           actions = [ Switchfab.Flow_table.Group (20_000 + p) ] }
     done;
     for h = 0 to 23 do
       let pmac = Portland.Pmac.make ~pod:0 ~position:0 ~port:h ~vmid:1 in
       Switchfab.Flow_table.install table
         { Switchfab.Flow_table.name = Printf.sprintf "host:%d" h;
           priority = 90;
           mtch =
             { Switchfab.Flow_table.match_any with
               Switchfab.Flow_table.dst_mac = Some (Portland.Pmac.exact pmac) };
           actions =
             [ Switchfab.Flow_table.Set_dst_mac (Netcore.Mac_addr.of_int (0x020000000000 lor h));
               Switchfab.Flow_table.Output h ] }
     done;
     let dst = Portland.Pmac.to_mac (Portland.Pmac.make ~pod:31 ~position:7 ~port:3 ~vmid:1) in
     let frame =
       Netcore.Eth.make ~dst ~src:(Netcore.Mac_addr.of_int 7)
         (Netcore.Eth.Ipv4
            (Netcore.Ipv4_pkt.udp
               ~src:(Netcore.Ipv4_addr.of_int 1) ~dst:(Netcore.Ipv4_addr.of_int 2)
               (Netcore.Udp.make ~flow_id:9 ~app_seq:0 ~payload_len:1000 ())))
     in
     (table, frame))

let sample_frame =
  lazy
    (Netcore.Eth.make
       ~dst:(Netcore.Mac_addr.of_int 0x020000000001)
       ~src:(Netcore.Mac_addr.of_int 0x020000000002)
       (Netcore.Eth.Ipv4
          (Netcore.Ipv4_pkt.tcp
             ~src:(Netcore.Ipv4_addr.of_octets 10 0 0 2)
             ~dst:(Netcore.Ipv4_addr.of_octets 10 3 1 2)
             (Netcore.Tcp_seg.make ~seq:123456 ~ack_num:789 ~payload_len:1460 ()))))

(* a converged k=16 fabric (1024 classes, 320 switches) with an attached
   incremental verifier session, plus one edge host entry to churn: the
   full-vs-incremental verification pair measured below *)
let verify_fixture =
  lazy
    (let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~obs:Obs.null ~k:16 () in
     if not (Portland.Fabric.await_convergence ~timeout:(Eventsim.Time.sec 10) fab) then
       failwith "bench: k=16 fabric failed to converge";
     let inc = Portland_verify.Verify.Incremental.attach ~obs:Obs.null fab in
     let ip = Portland.Host_agent.ip (List.hd (Portland.Fabric.hosts fab)) in
     let b =
       match Portland.Fabric_manager.lookup_binding (Portland.Fabric.fabric_manager fab) ip with
       | Some b -> b
       | None -> failwith "bench: converged fabric has no binding for its first host"
     in
     let table =
       Portland.Switch_agent.table (Portland.Fabric.agent fab b.Portland.Msg.edge_switch)
     in
     let name =
       Printf.sprintf "host:%d"
         (Netcore.Mac_addr.to_int (Portland.Pmac.to_mac b.Portland.Msg.pmac))
     in
     let entry =
       match Switchfab.Flow_table.find_entry table name with
       | Some e -> e
       | None -> failwith ("bench: edge table is missing " ^ name)
     in
     (fab, inc, table, entry))

(* policy-as-program on the same k=16 fabric: recompiling the declarative
   baseline, and the static differential proving compiled = handwritten *)
let policy_fixture =
  lazy
    (let fab, _, _, _ = Lazy.force verify_fixture in
     (fab, Portland_policy.Policy.compile_exn (Portland_policy.Policy.baseline fab)))

(* ---------------- micro-benchmarks (one per measured table/figure
   constant, plus substrate hot paths) ---------------- *)

let tests =
  [ (* E7 — fabric-manager CPU requirements: the per-ARP constant *)
    Test.make ~name:"fm/arp_resolve_100k_bindings"
      (Staged.stage (fun () ->
           let fm, ips = Lazy.force fm_fixture in
           ignore (Portland.Fabric_manager.resolve fm ips.(77777))));
    (* per-hop forwarding decision on a realistic edge table — the trie
       fast path, and the linear reference scan it replaced *)
    Test.make ~name:"flow_table/lookup_edge_k48"
      (Staged.stage (fun () ->
           let table, frame = Lazy.force edge_table_fixture in
           ignore (Switchfab.Flow_table.lookup table frame)));
    Test.make ~name:"flow_table/lookup_edge_k48_linear"
      (Staged.stage (fun () ->
           let table, frame = Lazy.force edge_table_fixture in
           ignore (Switchfab.Flow_table.lookup_linear table frame)));
    Test.make ~name:"flow_table/flow_hash"
      (Staged.stage (fun () ->
           ignore (Switchfab.Flow_table.flow_hash (Lazy.force sample_frame))));
    (* E8 context — PMAC manipulation used on every rewrite *)
    Test.make ~name:"pmac/encode_decode"
      (Staged.stage (fun () ->
           let p = Portland.Pmac.make ~pod:31 ~position:7 ~port:3 ~vmid:9 in
           ignore (Portland.Pmac.of_mac (Portland.Pmac.to_mac p))));
    Test.make ~name:"codec/eth_encode_decode_tcp"
      (Staged.stage (fun () ->
           match Netcore.Codec.decode (Netcore.Codec.encode (Lazy.force sample_frame)) with
           | Ok _ -> ()
           | Error e -> failwith e));
    Test.make ~name:"codec/eth_encode_decode_tcp_ref"
      (Staged.stage (fun () ->
           match
             Netcore.Codec.decode_ref (Netcore.Codec.encode_ref (Lazy.force sample_frame))
           with
           | Ok _ -> ()
           | Error e -> failwith e));
    (* incremental dataplane verification: one flow-table update (remove +
       reinstall of one host entry) re-verified through the delta engine,
       against a from-scratch full verification of the same fabric *)
    Test.make ~name:"verify/incremental_update_k16"
      (Staged.stage (fun () ->
           let _, inc, table, entry = Lazy.force verify_fixture in
           Switchfab.Flow_table.remove table entry.Switchfab.Flow_table.name;
           Switchfab.Flow_table.install table entry;
           ignore (Portland_verify.Verify.Incremental.refresh inc)));
    Test.make ~name:"verify/full_run_k16"
      (Staged.stage (fun () ->
           let fab, _, _, _ = Lazy.force verify_fixture in
           ignore (Portland_verify.Verify.run fab)));
    (* the policy compiler and its differential checker over the same
       k=16 fabric: cost of recompiling the full declarative baseline,
       and of proving the compiled tables equivalent to the live ones *)
    Test.make ~name:"policy/compile_k16"
      (Staged.stage (fun () ->
           let fab, _ = Lazy.force policy_fixture in
           ignore (Portland_policy.Policy.compile_exn (Portland_policy.Policy.baseline fab))));
    Test.make ~name:"policy/check_k16"
      (Staged.stage (fun () ->
           let fab, compiled = Lazy.force policy_fixture in
           ignore (Portland_policy.Policy.Check.differential fab compiled)));
    Test.make ~name:"engine/schedule_and_run"
      (Staged.stage
         (let engine = Eventsim.Engine.create () in
          fun () ->
            ignore (Eventsim.Engine.schedule engine ~delay:1 (fun () -> ()));
            Eventsim.Engine.run engine));
    Test.make ~name:"topology/build_fattree_k8"
      (Staged.stage (fun () -> ignore (Topology.Fattree.build ~k:8)));
    Test.make ~name:"prng/splitmix_int"
      (Staged.stage
         (let prng = Eventsim.Prng.create 1 in
          fun () -> ignore (Eventsim.Prng.int prng 1024))) ]

let run_micro ~quick =
  print_endline "=== Bechamel micro-benchmarks (ns/run, OLS on monotonic clock) ===";
  (* build fixtures outside the measured region *)
  ignore (Lazy.force fm_fixture);
  ignore (Lazy.force edge_table_fixture);
  ignore (Lazy.force sample_frame);
  ignore (Lazy.force verify_fixture);
  ignore (Lazy.force policy_fixture);
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* the 2 s quota keeps the OLS estimates stable on noisy VMs; the smoke
     run in bin/lint only checks plumbing, so --quick trims it *)
  let quota = Time.second (if quick then 0.25 else 2.0) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"portland" ~fmt:"%s %s" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some [ v ] -> Some v | _ -> None
      in
      rows := (name, estimate) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, est) ->
      let est = match est with Some v -> Printf.sprintf "%.1f" v | None -> "n/a" in
      Printf.printf "  %-42s %12s ns/run\n" name est)
    rows;
  print_newline ();
  rows

type scal_row = {
  family : string;
  k : int;
  hosts : int;
  switches : int;
  sim_ms : float;
  wall_s : float;
  events : int;
  converged : bool;
}

(* meta-benchmark: how big a fabric this simulator itself handles — wall
   clock and engine events to full self-configuration, for every member
   of the topology family (plain/AB fat trees and the oversubscribed
   two-layer leaf–spine) *)
let run_scalability ~quick =
  print_endline "=== Simulator scalability: time to self-configure a fabric ===";
  Printf.printf "  %-10s %-4s %-7s %-9s %-14s %-13s %-12s\n" "family" "k" "hosts" "switches"
    "sim time (ms)" "wall (s)" "events";
  let one family k =
    let fam =
      match Topology.Topo.Family.of_string ~k family with
      | Ok f -> f
      | Error e -> failwith ("bench: " ^ e)
    in
    let spec = Topology.Multirooted.spec_of_family fam in
    let t0 = Unix.gettimeofday () in
    let fab = Portland.Fabric.create @@ Portland.Fabric.Config.of_family fam in
    let ok = Portland.Fabric.await_convergence ~timeout:(Eventsim.Time.sec 10) fab in
    let t1 = Unix.gettimeofday () in
    let row =
      { family;
        k;
        hosts =
          spec.Topology.Multirooted.num_pods * spec.Topology.Multirooted.edges_per_pod
          * spec.Topology.Multirooted.hosts_per_edge;
        switches =
          (spec.Topology.Multirooted.num_pods
          * (spec.Topology.Multirooted.edges_per_pod + spec.Topology.Multirooted.aggs_per_pod)
          )
          + spec.Topology.Multirooted.num_cores;
        sim_ms = Eventsim.Time.to_ms_f (Portland.Fabric.now fab);
        wall_s = t1 -. t0;
        events = Eventsim.Engine.events_processed (Portland.Fabric.engine fab);
        converged = ok }
    in
    Printf.printf "  %-10s %-4d %-7d %-9d %-14.1f %-13.2f %-12d%s\n" row.family row.k
      row.hosts row.switches row.sim_ms row.wall_s row.events
      (if ok then "" else "  (DID NOT CONVERGE)");
    row
  in
  let plain_ks = if quick then [ 4; 8 ] else [ 4; 8; 12; 16; 20; 24 ] in
  let alt_ks = if quick then [ 4 ] else [ 4; 8; 16 ] in
  let plain_rows = List.map (one "plain") plain_ks in
  let ab_rows = List.map (one "ab") alt_ks in
  let flat_rows = List.map (one "two-layer") alt_ks in
  let rows = plain_rows @ ab_rows @ flat_rows in
  print_newline ();
  rows

type par_row = {
  p_k : int;
  p_domains : int;
  p_wall_1 : float;
  p_wall_n : float;
  p_digest : string;
  p_digest_equal : bool;
}

(* the sharded-engine acceptance experiment: boot a fat tree and run
   150 ms of converged steady state, once on 1 domain and once on N;
   the control-state digests must be identical (hard failure if not),
   and with >= N real cores the N-domain run should win wall-clock *)
let run_parallel ~quick =
  let n = 4 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "=== Parallel engine: sharded boot + 150 ms, 1 domain vs %d ===\n" n;
  if cores < n then
    Printf.printf "  (host offers %d core(s): expect no speedup, only the determinism check)\n"
      cores;
  Printf.printf "  %-4s %-12s %-12s %-9s %-8s\n" "k" "wall@1 (s)"
    (Printf.sprintf "wall@%d (s)" n)
    "speedup" "digests";
  let one k =
    let run domains =
      let cfg =
        { (Portland.Fabric.Config.fattree ~k ()) with
          Portland.Fabric.Config.domains;
          obs = Some Obs.null }
      in
      let t0 = Unix.gettimeofday () in
      let fab = Portland.Fabric.create cfg in
      if not (Portland.Fabric.await_convergence ~timeout:(Eventsim.Time.sec 60) fab) then
        failwith (Printf.sprintf "bench: parallel k=%d domains=%d did not converge" k domains);
      Portland.Fabric.run_for fab (Eventsim.Time.ms 150);
      (Unix.gettimeofday () -. t0, Portland.Fabric.control_digest fab)
    in
    let w1, d1 = run 1 in
    let wn, dn = run n in
    let row =
      { p_k = k; p_domains = n; p_wall_1 = w1; p_wall_n = wn; p_digest = d1;
        p_digest_equal = d1 = dn }
    in
    Printf.printf "  %-4d %-12.2f %-12.2f %-9.2f %-8s\n" k w1 wn (w1 /. wn)
      (if row.p_digest_equal then "equal" else "DIVERGED");
    if not row.p_digest_equal then
      failwith (Printf.sprintf "bench: parallel digest divergence at k=%d" k);
    row
  in
  let ks = if quick then [ 16 ] else [ 16; 24; 32 ] in
  let rows = List.map one ks in
  print_newline ();
  rows

type fm_scale_row = {
  m_name : string;        (* "fm/arp_resolve_1m" *)
  m_bindings : int;
  m_shards : int;
  m_mono_ns : float;      (* ns per resolution, monolithic (fm_shards = 1) *)
  m_shard_ns : float;     (* ns per resolution, pod-sharded *)
}

(* E7 at scale: the fabric-manager ARP service against 1M / 10M bindings,
   monolithic vs pod-sharded. Hand-rolled timing rather than bechamel —
   a 10M-entry table takes seconds to populate, so the fixture must be
   built exactly once per configuration and queried in place. Queries go
   through [resolve_batch] in 4096-IP batches, the access pattern of a
   batched ARP front end; the sharded path groups each batch by owning
   shard and drains shard-at-a-time. *)
let run_fm_scale ~quick =
  print_endline "=== Fabric-manager ARP service at scale (ns/resolution, batched) ===";
  Printf.printf "  %-22s %-10s %-8s %-16s %-16s %-8s\n" "row" "bindings" "shards"
    "monolithic (ns)" "sharded (ns)" "speedup";
  let shards = 4 in
  let build ~fm_shards n =
    let engine = Eventsim.Engine.create () in
    let ctrl = Portland.Ctrl.create engine ~latency:(Eventsim.Time.us 50) in
    let spec = Topology.Fattree.spec ~k:48 in
    let fm =
      Portland.Fabric_manager.create ~fm_shards engine Portland.Config.default ctrl ~spec
    in
    for i = 0 to n - 1 do
      (* 10.x.y.z: the pod byte (bits 16-23) walks 0..n/65536, spreading
         bindings across every pod shard *)
      Portland.Fabric_manager.insert_binding_for_test fm
        { Portland.Msg.ip = Netcore.Ipv4_addr.of_int (0x0A000000 lor i);
          amac = Netcore.Mac_addr.of_int (0x020000000000 lor i);
          pmac =
            Portland.Pmac.make ~pod:(i mod 48) ~position:(i mod 24) ~port:(i mod 24)
              ~vmid:(1 + (i mod 1000));
          edge_switch = i mod 1000 }
    done;
    fm
  in
  (* one deterministic shuffled query stream per size, pre-batched so the
     measured region is lookups only; both configurations replay the
     exact same stream *)
  let batches n =
    let prng = Eventsim.Prng.create 9 in
    let total = min n 1_000_000 and batch = 4096 in
    ( total,
      Array.init
        ((total + batch - 1) / batch)
        (fun bi ->
          Array.init
            (min batch (total - (bi * batch)))
            (fun _ -> Netcore.Ipv4_addr.of_int (0x0A000000 lor Eventsim.Prng.int prng n))) )
  in
  let time_pass fm (total, qs) =
    let missed = ref 0 in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun q ->
        Array.iter
          (function None -> incr missed | Some _ -> ())
          (Portland.Fabric_manager.resolve_batch fm q))
      qs;
    let t1 = Unix.gettimeofday () in
    if !missed > 0 then failwith (Printf.sprintf "bench: %d fm-scale misses" !missed);
    (t1 -. t0) *. 1e9 /. float_of_int total
  in
  let one (name, n) =
    let qs = batches n in
    (* both fixtures stay live and the timed passes interleave, so VM-level
       noise (frequency drift, host contention on this 1-core box) hits the
       two configurations equally; report the best of 3 passes each *)
    let mono_fm = build ~fm_shards:1 n in
    let shard_fm = build ~fm_shards:shards n in
    Gc.compact ();
    ignore (time_pass mono_fm qs);  (* warm-up *)
    ignore (time_pass shard_fm qs);
    let mono = ref infinity and shard = ref infinity in
    for _ = 1 to 3 do
      mono := Float.min !mono (time_pass mono_fm qs);
      shard := Float.min !shard (time_pass shard_fm qs)
    done;
    let mono = !mono and shard = !shard in
    Gc.compact ();
    let row =
      { m_name = name; m_bindings = n; m_shards = shards; m_mono_ns = mono;
        m_shard_ns = shard }
    in
    Printf.printf "  %-22s %-10d %-8d %-16.1f %-16.1f %.2fx\n" name n shards mono shard
      (mono /. shard);
    row
  in
  let sizes =
    if quick then [ ("fm/arp_resolve_1m", 1_000_000) ]
    else [ ("fm/arp_resolve_1m", 1_000_000); ("fm/arp_resolve_10m", 10_000_000) ]
  in
  let rows = List.map one sizes in
  print_newline ();
  rows

(* ---------------- JSON tracking (hand-rolled, no extra deps) ----------------

   Seed-era constants from EXPERIMENTS.md, the denominators for the
   speedup figures tracked in BENCH_hotpath.json. *)
let seed_baseline_ns =
  [ ("portland flow_table/lookup_edge_k48", 1800.0);
    ("portland codec/eth_encode_decode_tcp", 15000.0) ]

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~out ~micro ~scal ~par ~fm_scale =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"generated_by\": \"dune exec bench/main.exe -- --json\",\n";
  add "  \"micro_ns_per_run\": {\n";
  let named = List.filter_map (fun (n, e) -> Option.map (fun v -> (n, v)) e) micro in
  List.iteri
    (fun i (name, v) ->
      add "    \"%s\": %.1f%s\n" (json_escape name) v
        (if i = List.length named - 1 then "" else ","))
    named;
  add "  },\n";
  add "  \"seed_baseline_ns\": {\n";
  List.iteri
    (fun i (name, v) ->
      add "    \"%s\": %.1f%s\n" (json_escape name) v
        (if i = List.length seed_baseline_ns - 1 then "" else ","))
    seed_baseline_ns;
  add "  },\n";
  add "  \"speedup_vs_seed\": {\n";
  let speedups =
    List.filter_map
      (fun (name, base) ->
        match List.assoc_opt name named with
        | Some now when now > 0.0 -> Some (name, base /. now)
        | _ -> None)
      seed_baseline_ns
  in
  List.iteri
    (fun i (name, s) ->
      add "    \"%s\": %.2f%s\n" (json_escape name) s
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  add "  },\n";
  add "  \"verify_incremental\": {\n";
  (match
     ( List.assoc_opt "portland verify/full_run_k16" named,
       List.assoc_opt "portland verify/incremental_update_k16" named )
   with
   | Some full, Some inc when inc > 0.0 ->
     add "    \"full_ns\": %.1f,\n" full;
     add "    \"incremental_ns\": %.1f,\n" inc;
     add "    \"speedup\": %.1f\n" (full /. inc)
   | _ -> ());
  add "  },\n";
  add "  \"scalability\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"family\": \"%s\", \"k\": %d, \"hosts\": %d, \"switches\": %d, \"sim_ms\": \
         %.1f, \"wall_s\": %.3f, \"events\": %d, \"converged\": %b}%s\n"
        (json_escape r.family) r.k r.hosts r.switches r.sim_ms r.wall_s r.events r.converged
        (if i = List.length scal - 1 then "" else ","))
    scal;
  add "  ],\n";
  add "  \"fm_scale\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"name\": \"%s\", \"bindings\": %d, \"shards\": %d, \"monolithic_ns\": %.1f, \
         \"sharded_ns\": %.1f, \"sharded_speedup\": %.2f}%s\n"
        (json_escape r.m_name) r.m_bindings r.m_shards r.m_mono_ns r.m_shard_ns
        (r.m_mono_ns /. r.m_shard_ns)
        (if i = List.length fm_scale - 1 then "" else ","))
    fm_scale;
  add "  ],\n";
  add "  \"parallel_speedup\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"name\": \"engine/parallel_speedup_k%d\", \"k\": %d, \"domains\": %d, \
         \"wall_1_s\": %.3f, \"wall_n_s\": %.3f, \"speedup\": %.2f, \"digest\": \"%s\", \
         \"digests_equal\": %b}%s\n"
        r.p_k r.p_k r.p_domains r.p_wall_1 r.p_wall_n (r.p_wall_1 /. r.p_wall_n)
        (json_escape r.p_digest) r.p_digest_equal
        (if i = List.length par - 1 then "" else ","))
    par;
  add "  ]\n";
  add "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" out;
  List.iter (fun (name, s) -> Printf.printf "  %-42s %.2fx vs seed\n" name s) speedups;
  print_newline ()

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let micro_only = List.mem "--micro-only" argv in
  let experiments_only = List.mem "--experiments-only" argv in
  let json = List.mem "--json" argv in
  let out =
    let rec find = function
      | "--out" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_hotpath.json"
    in
    find argv
  in
  if not experiments_only then begin
    let micro = run_micro ~quick in
    let fm_scale = run_fm_scale ~quick in
    let scal = run_scalability ~quick in
    let par = run_parallel ~quick in
    if json then write_json ~out ~micro ~scal ~par ~fm_scale
  end;
  if not micro_only then begin
    print_endline "=== Paper reproduction: every table and figure ===";
    Harness.Experiments.run_all ~quick Format.std_formatter
  end
