(* RTT locality tiers: ping across the three distances a fat tree has.
   The same-edge path crosses 2 links, the same-pod path 4, the
   inter-pod path 6 — and the round-trip times stack accordingly.

   Run with:  dune exec examples/rtt_probe.exe *)

open Portland
open Eventsim

let () =
  let fab = Fabric.create @@ Fabric.Config.fattree ~k:4 () in
  assert (Fabric.await_convergence fab);
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let mux = Transport.Port_mux.attach src in
  let targets =
    [ ("same edge switch", Fabric.host fab ~pod:0 ~edge:0 ~slot:1);
      ("same pod", Fabric.host fab ~pod:0 ~edge:1 ~slot:0);
      ("across pods", Fabric.host fab ~pod:3 ~edge:1 ~slot:1) ]
  in
  Printf.printf "pinging from %s (20 echo requests each):\n"
    (Netcore.Ipv4_addr.to_string (Host_agent.ip src));
  List.iter
    (fun (label, dst) ->
      let pinger =
        Transport.Ping.create (Fabric.engine fab) mux ~dst:(Host_agent.ip dst) ()
      in
      Transport.Ping.start pinger ~count:20 ~interval:(Time.ms 5) ();
      Fabric.run_for fab (Time.ms 200);
      Format.printf "  %-18s -> %-10s  %a@." label
        (Netcore.Ipv4_addr.to_string (Host_agent.ip dst))
        Transport.Ping.pp_summary pinger;
      Transport.Ping.stop pinger)
    targets;
  print_endline "\n(each extra switch hop adds one store-and-forward serialization";
  print_endline " plus propagation in both directions — the tiers are visible)"
