(* Incast: many senders converge on one receiver. The fat tree has full
   bisection bandwidth, so the only bottleneck is the receiver's own
   access link — and that is exactly where the queue builds and drops
   concentrate. A classic data-center traffic pattern on top of the
   PortLand fabric.

   Run with:  dune exec examples/incast.exe *)

open Portland
open Eventsim

let () =
  let k = 4 in
  let fab = Fabric.create @@ Fabric.Config.fattree ~k () in
  assert (Fabric.await_convergence fab);
  let receiver = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let mux = Transport.Port_mux.attach receiver in
  let others =
    List.filter
      (fun h -> Host_agent.device_id h <> Host_agent.device_id receiver)
      (Fabric.hosts fab)
  in
  Printf.printf "%-9s %-18s %-18s %-14s\n" "senders" "offered (Gb/s)" "delivered (Gb/s)"
    "queue drops";
  List.iter
    (fun n ->
      let senders = List.filteri (fun i _ -> i < n) others in
      let payload_len = 1000 in
      let rate_pps = 37_500 (* 300 Mb/s per sender *) in
      let rx =
        Transport.Udp_flow.Receiver.attach (Fabric.engine fab) mux ~flow_id:n ()
      in
      let drops_before =
        (Switchfab.Net.total_counters (Fabric.net fab)).Switchfab.Net.queue_drops
      in
      let received_before = Transport.Udp_flow.Receiver.received rx in
      let txs =
        List.map
          (fun s ->
            Transport.Udp_flow.Sender.start (Fabric.engine fab) s
              ~dst:(Host_agent.ip receiver) ~flow_id:n ~rate_pps ~payload_len ())
          senders
      in
      let window = Time.ms 200 in
      Fabric.run_for fab window;
      List.iter Transport.Udp_flow.Sender.stop txs;
      Fabric.run_for fab (Time.ms 20);
      let received = Transport.Udp_flow.Receiver.received rx - received_before in
      let drops =
        (Switchfab.Net.total_counters (Fabric.net fab)).Switchfab.Net.queue_drops
        - drops_before
      in
      let gbps count = float_of_int (count * payload_len * 8) /. Time.to_sec_f window /. 1e9 in
      Printf.printf "%-9d %-18.2f %-18.2f %-14d\n" n
        (float_of_int (n * rate_pps * payload_len * 8) /. 1e9)
        (gbps received) drops)
    [ 1; 2; 3; 6; 12 ];
  print_endline "\n(delivery saturates at the receiver's 1 Gb/s access link; everything";
  print_endline " beyond it is dropped at that port's queue — the fabric itself never";
  print_endline " congests under incast because the fat tree's bisection is full)"
