(* Multicast: receivers in three pods join a group; the fabric manager
   maps the group to a core switch, computes the distribution tree and
   programs exactly the switches on it. When a tree link dies, the tree
   is recomputed around a different core within tens of milliseconds.

   Run with:  dune exec examples/multicast_routing.exe *)

open Portland
open Eventsim

let () =
  let fab = Fabric.create @@ Fabric.Config.fattree ~k:4 () in
  assert (Fabric.await_convergence fab);
  let group = Netcore.Ipv4_addr.of_string_exn "230.1.1.1" in

  let sender = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let receivers =
    List.map
      (fun (p, e, s) ->
        let h = Fabric.host fab ~pod:p ~edge:e ~slot:s in
        Host_agent.join_group h group;
        let count = ref 0 in
        Host_agent.set_rx h (fun _ -> incr count);
        ((p, e, s), count))
      [ (1, 0, 0); (2, 1, 0); (3, 0, 1) ]
  in
  Fabric.run_for fab (Time.ms 50);

  let fm = Fabric.fabric_manager fab in
  (match Fabric_manager.group_core fm group with
   | Some core -> Printf.printf "group %s mapped to core switch %d\n"
                    (Netcore.Ipv4_addr.to_string group) core
   | None -> print_endline "no tree yet");

  (* stream to the group *)
  let seq = ref 0 in
  let tx =
    Timer.every (Fabric.engine fab) ~period:(Time.ms 2) (fun () ->
        let u = Netcore.Udp.make ~flow_id:3 ~app_seq:!seq ~payload_len:512 () in
        Host_agent.send_ip sender ~dst:group (Netcore.Ipv4_pkt.Udp u);
        incr seq)
  in
  Fabric.run_for fab (Time.ms 500);
  List.iter
    (fun ((p, e, s), count) ->
      Printf.printf "receiver (%d,%d,%d): %d packets\n" p e s !count)
    receivers;

  (* kill a link on the tree: the chosen core's link into pod 1 *)
  (match Fabric_manager.group_core fm group with
   | Some core ->
     let agg =
       List.find
         (fun a ->
           match (Switch_agent.coords a, Fabric_manager.switch_coords fm core) with
           | Some (Coords.Agg g), Some (Coords.Core c) -> g.pod = 1 && g.stripe = c.stripe
           | _ -> false)
         (Fabric.agents fab)
     in
     Printf.printf "failing tree link core %d -- agg %d\n" core (Switch_agent.switch_id agg);
     ignore (Fabric.fail_link_between fab ~a:core ~b:(Switch_agent.switch_id agg))
   | None -> ());

  Fabric.run_for fab (Time.ms 500);
  Timer.stop tx;
  (match Fabric_manager.group_core fm group with
   | Some core -> Printf.printf "tree recomputed around core switch %d\n" core
   | None -> print_endline "no tree after failure!");
  Printf.printf "sent %d packets in total\n" !seq;
  List.iter
    (fun ((p, e, s), count) ->
      Printf.printf "receiver (%d,%d,%d): %d packets (lost %d)\n" p e s !count (!seq - !count))
    receivers
