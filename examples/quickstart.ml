(* Quickstart: build a k=4 PortLand fabric, let it self-configure, and
   send a packet between two hosts in different pods.

   Run with:  dune exec examples/quickstart.exe *)

open Portland
open Eventsim

let () =
  (* 1. Build a complete deployment: fat-tree wiring, one switch agent per
     switch, one host stack per host, the fabric manager, and the
     out-of-band control network. Nothing is configured by hand. *)
  let fab = Fabric.create @@ Fabric.Config.fattree ~k:4 () in
  Printf.printf "built a k=4 fat tree: %d hosts, %d switches\n"
    (Topology.Fattree.num_hosts ~k:4)
    (Topology.Fattree.num_switches ~k:4);

  (* 2. Let LDP and the fabric manager discover everything: levels, pods,
     positions, stripes; hosts announce themselves with gratuitous ARPs
     and get PMACs from their edge switches. *)
  assert (Fabric.await_convergence fab);
  Printf.printf "self-configured in %s of simulated time\n"
    (Time.to_string (Fabric.now fab));

  (* Every switch now knows where it is: *)
  List.iter
    (fun agent ->
      match Switch_agent.coords agent with
      | Some c ->
        Format.printf "  switch %2d -> %a (%d flow entries)@."
          (Switch_agent.switch_id agent) Coords.pp c (Switch_agent.table_size agent)
      | None -> ())
    (List.sort
       (fun a b -> compare (Switch_agent.switch_id a) (Switch_agent.switch_id b))
       (Fabric.agents fab))
  ;

  (* 3. Send traffic between pods. The sender ARPs for the destination;
     its edge switch intercepts the ARP, asks the fabric manager, and
     replies with the destination's PMAC. Forwarding is then pure PMAC
     prefix matching. *)
  let alice = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let bob = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let got = ref [] in
  Host_agent.set_rx bob (fun pkt -> got := pkt :: !got);
  let payload = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()) in
  Host_agent.send_ip alice ~dst:(Host_agent.ip bob) payload;
  Fabric.run_for fab (Time.ms 10);
  Printf.printf "bob received %d packet(s)\n" (List.length !got);

  (* 4. Inspect the route the packet took (edge -> agg -> core -> agg ->
     edge, chosen by flow hashing). *)
  (match Fabric.trace_route fab ~src:alice ~dst_ip:(Host_agent.ip bob) payload with
   | Ok path ->
     Printf.printf "path: %s\n"
       (String.concat " -> " (List.map string_of_int path))
   | Error e -> Printf.printf "trace failed: %s\n" e);

  (* 5. The fabric manager resolved exactly the ARPs the hosts issued. *)
  let c = Fabric_manager.counters (Fabric.fabric_manager fab) in
  Printf.printf "fabric manager served %d ARP quer%s (%d hit, %d miss)\n"
    c.Fabric_manager.arp_queries
    (if c.Fabric_manager.arp_queries = 1 then "y" else "ies")
    c.Fabric_manager.arp_hits c.Fabric_manager.arp_misses
