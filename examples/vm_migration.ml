(* VM migration: a TCP flow follows a VM as it live-migrates to a
   different pod, keeping its IP address.

   The machinery on display: the resumed VM's gratuitous ARP re-registers
   it (new PMAC) at the fabric manager; the fabric manager invalidates
   the old mapping at the previous edge switch; that switch traps frames
   still addressed to the stale PMAC and unicasts corrective gratuitous
   ARPs to their senders; the sender's ARP cache heals and the flow
   resumes — no human, no renumbering, no VLAN surgery.

   Run with:  dune exec examples/vm_migration.exe *)

open Portland
open Eventsim

let mb x = float_of_int x /. 1e6

let () =
  (* one host slot in pod 2 is left unplugged: the migration target *)
  let fab = Fabric.create @@ Fabric.Config.fattree ~k:4 ~spare_slots:[ (2, 0, 0) ] () in
  assert (Fabric.await_convergence fab);

  let client = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  Printf.printf "VM %s lives in pod 3; client streams TCP to it\n"
    (Netcore.Ipv4_addr.to_string (Host_agent.ip vm));

  let m_client = Transport.Port_mux.attach client in
  let m_vm = Transport.Port_mux.attach vm in
  let conn = Transport.Tcp.connect (Fabric.engine fab) ~src:m_client ~dst:m_vm () in

  Fabric.run_for fab (Time.sec 1);
  let s = Transport.Tcp.stats conn in
  Printf.printf "t=1s: %.1f MB delivered (%.0f Mb/s)\n"
    (mb s.Transport.Tcp.bytes_delivered)
    (mb s.Transport.Tcp.bytes_delivered *. 8.0);

  Printf.printf "migrating the VM to pod 2 (200 ms downtime)...\n";
  Fabric.migrate fab ~vm ~to_:(2, 0, 0) ~downtime:(Time.ms 200)
    ~on_complete:(fun () ->
      Printf.printf "  VM resumed at %s and announced itself\n"
        (Time.to_string (Fabric.now fab)))
    ();

  Fabric.run_for fab (Time.sec 3);
  let s' = Transport.Tcp.stats conn in
  Transport.Tcp.stop conn;
  Printf.printf "t=4s: %.1f MB delivered; %d retransmission timeout(s) during the move\n"
    (mb s'.Transport.Tcp.bytes_delivered)
    s'.Transport.Tcp.timeouts;

  (* show the longest interruption the flow saw *)
  let pts = Stats.Series.points (Transport.Tcp.delivery_trace conn) in
  let stall = ref 0 in
  for i = 1 to Array.length pts - 1 do
    let t0, _ = pts.(i - 1) and t1, _ = pts.(i) in
    if t1 - t0 > !stall then stall := t1 - t0
  done;
  Printf.printf "longest flow interruption: %s (downtime + ARP healing + TCP backoff)\n"
    (Time.to_string !stall);

  let fm = Fabric.fabric_manager fab in
  let c = Fabric_manager.counters fm in
  Printf.printf "fabric manager recorded %d migration(s)\n" c.Fabric_manager.migrations;
  match Fabric_manager.resolve fm (Host_agent.ip vm) with
  | Some pmac -> Format.printf "VM's mapping is now %a (pod 2)@." Pmac.pp pmac
  | None -> print_endline "VM mapping missing!"
