(* Failure recovery: a UDP flow crosses the fabric while a link on its
   path dies. LDP's missed-beacon detector notices within the LDM
   timeout, the fabric manager broadcasts the fault, and every switch
   locally recomputes its ECMP groups — the flow re-routes in tens of
   milliseconds, no spanning tree anywhere.

   Run with:  dune exec examples/failure_recovery.exe *)

open Portland
open Eventsim

let () =
  let fab = Fabric.create @@ Fabric.Config.fattree ~k:4 () in
  assert (Fabric.await_convergence fab);

  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in

  (* a 1000 packet/s probe flow *)
  let mux = Transport.Port_mux.attach dst in
  let rx = Transport.Udp_flow.Receiver.attach (Fabric.engine fab) mux ~flow_id:1 () in
  let tx =
    Transport.Udp_flow.Sender.start (Fabric.engine fab) src ~dst:(Host_agent.ip dst)
      ~flow_id:1 ~rate_pps:1000 ()
  in
  Fabric.run_for fab (Time.ms 300);

  (* find the links the flow currently rides and kill the first fabric one *)
  let probe = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:1000 ()) in
  (match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) probe with
   | Ok path ->
     Printf.printf "path before failure: %s\n"
       (String.concat " -> " (List.map string_of_int path));
     (match path with
      | _ :: sw1 :: sw2 :: _ ->
        Printf.printf "failing link %d -- %d\n" sw1 sw2;
        ignore (Fabric.fail_link_between fab ~a:sw1 ~b:sw2)
      | _ -> assert false)
   | Error e -> failwith e);
  let fail_at = Fabric.now fab in

  Fabric.run_for fab (Time.sec 1);
  Transport.Udp_flow.Sender.stop tx;

  (match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) probe with
   | Ok path ->
     Printf.printf "path after re-convergence: %s\n"
       (String.concat " -> " (List.map string_of_int path))
   | Error e -> Printf.printf "trace failed: %s\n" e);

  (match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_at - Time.ms 5) with
   | Some (at, gap) ->
     Printf.printf "flow outage: %s starting at %s (%d packets lost)\n" (Time.to_string gap)
       (Time.to_string at)
       (Transport.Udp_flow.Receiver.lost rx)
   | None -> print_endline "no outage measured");

  let c = Fabric_manager.counters (Fabric.fabric_manager fab) in
  Printf.printf
    "fabric manager: %d fault notice(s) received, %d fault update broadcast(s) sent\n"
    c.Fabric_manager.fault_notices c.Fabric_manager.fault_broadcasts
