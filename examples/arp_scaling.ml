(* ARP scaling: the reason PortLand proxies ARP at all.

   In a flat layer-2 network every ARP request is a broadcast that every
   host receives. In PortLand, edge switches answer from the fabric
   manager and hosts see exactly the replies meant for them. This example
   measures both on the same topology and workload.

   Run with:  dune exec examples/arp_scaling.exe *)

open Eventsim

let host_rx net hosts =
  List.fold_left
    (fun acc h ->
      let d = Switchfab.Net.device net (Portland.Host_agent.device_id h) in
      acc + (Switchfab.Net.device_counters d).Switchfab.Net.rx_frames)
    0 hosts

let workload_portland k =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~k () in
  assert (Portland.Fabric.await_convergence fab);
  let net = Portland.Fabric.net fab in
  let before = host_rx net (Portland.Fabric.hosts fab) in
  (* every host resolves and pings its successor *)
  let hosts = Array.of_list (Portland.Fabric.hosts fab) in
  Array.iteri
    (fun i h ->
      Portland.Host_agent.flush_arp_cache h;
      let peer = hosts.((i + 1) mod Array.length hosts) in
      let u = Netcore.Udp.make ~flow_id:i ~app_seq:0 ~payload_len:64 () in
      Portland.Host_agent.send_ip h ~dst:(Portland.Host_agent.ip peer) (Netcore.Ipv4_pkt.Udp u))
    hosts;
  Portland.Fabric.run_for fab (Time.ms 200);
  let frames = host_rx net (Portland.Fabric.hosts fab) - before in
  let c = Portland.Fabric_manager.counters (Portland.Fabric.fabric_manager fab) in
  (frames, c.Portland.Fabric_manager.arp_queries)

let workload_ethernet k =
  let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
  assert (Baselines.Ethernet_fabric.await_stp_convergence fab);
  let net = Baselines.Ethernet_fabric.net fab in
  let before = host_rx net (Baselines.Ethernet_fabric.hosts fab) in
  let hosts = Array.of_list (Baselines.Ethernet_fabric.hosts fab) in
  Array.iteri
    (fun i h ->
      Portland.Host_agent.flush_arp_cache h;
      let peer = hosts.((i + 1) mod Array.length hosts) in
      let u = Netcore.Udp.make ~flow_id:i ~app_seq:0 ~payload_len:64 () in
      Portland.Host_agent.send_ip h ~dst:(Portland.Host_agent.ip peer) (Netcore.Ipv4_pkt.Udp u))
    hosts;
  Baselines.Ethernet_fabric.run_for fab (Time.ms 200);
  (host_rx net (Baselines.Ethernet_fabric.hosts fab) - before, 0)

let () =
  print_endline "every host ARPs for + pings its successor; frames delivered to host NICs:";
  Printf.printf "%-4s %-7s %-22s %-22s\n" "k" "hosts" "flat L2 (host frames)" "PortLand (host frames / FM ARPs)";
  List.iter
    (fun k ->
      let eth_frames, _ = workload_ethernet k in
      let pl_frames, pl_arps = workload_portland k in
      Printf.printf "%-4d %-7d %-22d %d / %d\n" k
        (Topology.Fattree.num_hosts ~k)
        eth_frames pl_frames pl_arps)
    [ 4; 6; 8 ];
  print_endline "\n(flat L2 interrupts every host with every ARP broadcast; PortLand unicasts";
  print_endline " one query to the fabric manager per miss and nothing anywhere else)"
