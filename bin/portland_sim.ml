(* Interactive driver: build a PortLand fabric, run a scenario, dump
   state. `portland_sim --help` for options. *)

open Cmdliner

(* ---------------- options shared by every subcommand ---------------- *)

type common = {
  k : int;
  topo : string;
  seed : int;
  verbose : bool;
  domains : int;
  fm_shards : int;
}

let k_arg =
  let doc = "Fat-tree arity (even, >= 2)." in
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)

let topology_arg =
  let doc =
    "Topology family member: plain (three-tier fat tree), ab (F10-style AB fat tree with \
     type-A/type-B pod striping), or two-layer (oversubscribed leaf-spine with K leaves and \
     K/2 spines)."
  in
  Arg.(value & opt string "plain" & info [ "topology" ] ~docv:"FAMILY" ~doc)

let seed_arg =
  let doc = "Deterministic random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Dump per-switch state and counters at the end." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let domains_arg =
  let doc =
    "Run the fabric on the sharded parallel engine with $(docv) OS domains (one logical \
     shard per pod plus a core/fabric-manager shard; the run is bit-identical for every \
     positive $(docv)). 0 (the default) uses the classic sequential engine."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N" ~doc)

let fm_shards_arg =
  let doc =
    "Partition fabric-manager soft state (bindings, pending ARPs, fault rows, multicast \
     membership) across $(docv) pod shards plus one core shard, each with its own \
     replayable replication log. Purely a state-layout choice: every run is bit-identical \
     for every $(docv) >= 1. Default 1 (monolithic)."
  in
  Arg.(value & opt int 1 & info [ "fm-shards" ] ~docv:"N" ~doc)

(* the single definition AND validation site for the option bundle every
   subcommand shares — run/stats/verify/chaos/mc/policy all reuse this
   term, so a bad --domains or --fm-shards is rejected identically
   everywhere instead of each scenario re-checking its own copy *)
let common_term =
  Term.(
    const (fun k topo seed verbose domains fm_shards ->
        if domains < 0 then begin
          prerr_endline "--domains must be >= 0";
          Stdlib.exit 2
        end;
        if fm_shards < 1 then begin
          prerr_endline "--fm-shards must be >= 1";
          Stdlib.exit 2
        end;
        { k; topo; seed; verbose; domains; fm_shards })
    $ k_arg $ topology_arg $ seed_arg $ verbose_arg $ domains_arg $ fm_shards_arg)

let family_of { k; topo; _ } =
  match Topology.Topo.Family.of_string ~k topo with
  | Ok f -> f
  | Error e ->
    prerr_endline e;
    exit 2

let create_fabric ?obs ?spare_slots c =
  Portland.Fabric.create
    (Portland.Fabric.Config.of_family ?obs ?spare_slots ~seed:c.seed ~domains:c.domains
       ~fm_shards:c.fm_shards (family_of c))

let reject_domains c ~what =
  if c.domains > 0 then begin
    Printf.eprintf "%s requires the sequential engine; drop --domains\n" what;
    exit 2
  end

let describe_fabric c fab =
  let spec = Portland.Fabric.spec fab in
  let module MR = Topology.Multirooted in
  Printf.sprintf "k=%d %s (%d hosts, %d switches)" c.k
    (Topology.Topo.Family.to_string (family_of c))
    (spec.MR.num_pods * spec.MR.edges_per_pod * spec.MR.hosts_per_edge)
    ((spec.MR.num_pods * (spec.MR.edges_per_pod + spec.MR.aggs_per_pod)) + spec.MR.num_cores)

let duration_arg =
  let doc = "Scenario duration after convergence, in milliseconds." in
  Arg.(value & opt int 1000 & info [ "duration-ms" ] ~docv:"MS" ~doc)

let metrics_out_arg =
  let doc = "Write the final metrics snapshot as JSON to this file." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let dump_switch_state fab =
  List.iter
    (fun a ->
      Printf.printf "  switch %d: %s, %d table entries\n"
        (Portland.Switch_agent.switch_id a)
        (match Portland.Switch_agent.coords a with
         | Some c -> Format.asprintf "%a" Portland.Coords.pp c
         | None -> "unplaced")
        (Portland.Switch_agent.table_size a))
    (List.sort
       (fun a b ->
         compare (Portland.Switch_agent.switch_id a) (Portland.Switch_agent.switch_id b))
       (Portland.Fabric.agents fab))

(* one 64-byte UDP datagram from each host to the next, ring order *)
let ping_all fab =
  let hosts = Array.of_list (Portland.Fabric.hosts fab) in
  let received = ref 0 in
  Array.iter (fun h -> Portland.Host_agent.set_rx h (fun _ -> incr received)) hosts;
  let sent = ref 0 in
  Array.iteri
    (fun i h ->
      let peer = hosts.((i + 1) mod Array.length hosts) in
      let u = Netcore.Udp.make ~flow_id:i ~app_seq:0 ~payload_len:64 () in
      Portland.Host_agent.send_ip h ~dst:(Portland.Host_agent.ip peer)
        (Netcore.Ipv4_pkt.Udp u);
      incr sent)
    hosts;
  (!sent, received)

let write_metrics obs = function
  | None -> ()
  | Some path ->
    Obs.write_json obs ~path;
    Printf.printf "wrote metrics snapshot to %s\n" path

(* ---------------- scenarios ---------------- *)

let run_scenario ({ k; verbose; _ } as c) ~duration_ms ~scenario ~pcap_file ~dot_file
    ~metrics_out =
  let open Eventsim in
  (* the transport-driven scenarios pump a client loop on one engine, and
     pcap taps record frames from every shard: both need the classic engine *)
  (match scenario with
   | "migrate" | "failure" -> reject_domains c ~what:("the " ^ scenario ^ " scenario")
   | _ -> ());
  if pcap_file <> None then reject_domains c ~what:"--pcap capture";
  let obs = Obs.create () in
  let fab = create_fabric ~obs c in
  (match dot_file with
   | Some path ->
     let oc = open_out path in
     output_string oc
       (Topology.Topo.to_dot
          ~name:(Printf.sprintf "%s-k%d" (Topology.Topo.Family.to_string (family_of c)) k)
          (Portland.Fabric.tree fab).Topology.Multirooted.topo);
     close_out oc;
     Printf.printf "wrote topology graph to %s (render with: dot -Tsvg %s)\n" path path
   | None -> ());
  Printf.printf "built %s\n%!" (describe_fabric c fab);
  let capture =
    match pcap_file with
    | None -> None
    | Some _ ->
      let cap = Switchfab.Capture.create (Portland.Fabric.net fab) in
      List.iter
        (fun h ->
          Switchfab.Capture.tap cap ~device:(Portland.Host_agent.device_id h)
            ~side:Switchfab.Capture.Both ())
        (Portland.Fabric.hosts fab);
      Some cap
  in
  if not (Portland.Fabric.await_convergence fab) then begin
    prerr_endline "fabric failed to converge";
    exit 1
  end;
  Printf.printf "converged at %s (LDP + fabric manager assignments complete)\n%!"
    (Time.to_string (Portland.Fabric.now fab));
  (match scenario with
   | "idle" -> Portland.Fabric.run_for fab (Time.ms duration_ms)
   | "ping-all" ->
     let sent, received = ping_all fab in
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     Printf.printf "ping-all: %d sent, %d received\n" sent !received
   | "migrate" ->
     (* needs a spare slot: rebuild the fabric with one; its probes
        supersede the first fabric's under the same obs *)
     Printf.printf "(migrate scenario uses its own fabric with a spare slot in pod 1)\n";
     let fab = create_fabric ~obs ~spare_slots:[ (1, 0, 0) ] c in
     assert (Portland.Fabric.await_convergence fab);
     let client = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
     let vm = Portland.Fabric.host fab ~pod:(k - 1) ~edge:0 ~slot:1 in
     let m_client = Transport.Port_mux.attach client in
     let m_vm = Transport.Port_mux.attach vm in
     let conn = Transport.Tcp.connect (Portland.Fabric.engine fab) ~src:m_client ~dst:m_vm () in
     Portland.Fabric.run_for fab (Time.sec 1);
     Printf.printf "migrating %s to pod 1 (200 ms downtime)\n"
       (Netcore.Ipv4_addr.to_string (Portland.Host_agent.ip vm));
     Portland.Fabric.migrate fab ~vm ~to_:(1, 0, 0) ~downtime:(Time.ms 200) ();
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     let s = Transport.Tcp.stats conn in
     Printf.printf "delivered %.1f MB; %d retransmission timeout(s)\n"
       (float_of_int s.Transport.Tcp.bytes_delivered /. 1e6)
       s.Transport.Tcp.timeouts;
     Format.printf "trace tail:@.";
     List.iter
       (fun e -> Format.printf "  %a@." Eventsim.Trace.pp_entry e)
       (let es = Eventsim.Trace.entries (Portland.Fabric.trace fab) in
        let n = List.length es in
        List.filteri (fun i _ -> i >= n - 5) es)
   | "fm-restart" ->
     Portland.Fabric.restart_fabric_manager fab;
     Printf.printf "fabric manager restarted; resyncing...\n";
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     Printf.printf "bindings after resync: %d\n"
       (Portland.Fabric_manager.binding_count (Portland.Fabric.fabric_manager fab))
   | "failure" ->
     let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
     let dst = Portland.Fabric.host fab ~pod:(k - 1) ~edge:0 ~slot:0 in
     let mux = Transport.Port_mux.attach dst in
     let rx = Transport.Udp_flow.Receiver.attach (Portland.Fabric.engine fab) mux ~flow_id:1 () in
     let tx =
       Transport.Udp_flow.Sender.start (Portland.Fabric.engine fab) src
         ~dst:(Portland.Host_agent.ip dst) ~flow_id:1 ~rate_pps:1000 ()
     in
     Portland.Fabric.run_for fab (Time.ms 300);
     let probe = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()) in
     (match Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe with
      | Ok (_ :: a :: b :: _) ->
        Printf.printf "failing on-path link %d--%d\n" a b;
        ignore (Portland.Fabric.fail_link_between fab ~a ~b)
      | Ok _ | Error _ -> prerr_endline "could not trace the flow");
     let fail_at = Portland.Fabric.now fab in
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     Transport.Udp_flow.Sender.stop tx;
     (match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_at - Time.ms 5) with
      | Some (_, gap) -> Printf.printf "convergence: %s\n" (Time.to_string gap)
      | None -> print_endline "no gap measured")
   | other ->
     Printf.eprintf "unknown scenario %s (idle | ping-all | failure | migrate | fm-restart)\n"
       other;
     exit 1);
  (match (capture, pcap_file) with
   | Some cap, Some path ->
     Switchfab.Capture.write_file cap path;
     Printf.printf "wrote %d frames (host-side, both directions) to %s\n"
       (Switchfab.Capture.frame_count cap) path
   | _ -> ());
  write_metrics obs metrics_out;
  if verbose then begin
    let c = Switchfab.Net.total_counters (Portland.Fabric.net fab) in
    Printf.printf "frames: tx=%d rx=%d queue_drops=%d down_drops=%d\n"
      c.Switchfab.Net.tx_frames c.Switchfab.Net.rx_frames c.Switchfab.Net.queue_drops
      c.Switchfab.Net.down_drops;
    let fm = Portland.Fabric.fabric_manager fab in
    let fc = Portland.Fabric_manager.counters fm in
    Printf.printf
      "fabric manager: %d reports, %d ARP queries (%d hits), %d announces, %d fault notices\n"
      fc.Portland.Fabric_manager.reports fc.Portland.Fabric_manager.arp_queries
      fc.Portland.Fabric_manager.arp_hits fc.Portland.Fabric_manager.host_announces
      fc.Portland.Fabric_manager.fault_notices;
    Format.printf "trace (last 10 entries):@.";
    (let es = Eventsim.Trace.entries (Portland.Fabric.trace fab) in
     let n = List.length es in
     List.iteri
       (fun i e -> if i >= n - 10 then Format.printf "  %a@." Eventsim.Trace.pp_entry e)
       es);
    dump_switch_state fab
  end

(* ---------------- metrics snapshot ---------------- *)

let run_stats ({ verbose; _ } as c) ~duration_ms ~metrics_out ~csv_out =
  let open Eventsim in
  let obs = Obs.create () in
  let fab = create_fabric ~obs c in
  if not (Portland.Fabric.await_convergence fab) then begin
    prerr_endline "fabric failed to converge";
    exit 1
  end;
  let sent, received = ping_all fab in
  Portland.Fabric.run_for fab (Time.ms duration_ms);
  Printf.printf "%s, converged at %s; ping-all warm-up: %d sent, %d received\n%!"
    (describe_fabric c fab)
    (Time.to_string (Portland.Fabric.now fab))
    sent !received;
  Format.printf "%a" Obs.pp_snapshot obs;
  write_metrics obs metrics_out;
  (match csv_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (Obs.to_csv obs);
     close_out oc;
     Printf.printf "wrote metrics CSV to %s\n" path);
  if verbose then dump_switch_state fab

(* ---------------- static verification ---------------- *)

let run_verify ({ k; verbose; _ } as c) ~inject ~corrupt ~json_out =
  let open Eventsim in
  let module MR = Topology.Multirooted in
  let module FT = Switchfab.Flow_table in
  let module Verify = Portland_verify.Verify in
  let fab = create_fabric c in
  if not (Portland.Fabric.await_convergence fab) then begin
    prerr_endline "fabric failed to converge";
    exit 2
  end;
  Printf.printf "%s converged at %s\n%!" (describe_fabric c fab)
    (Time.to_string (Portland.Fabric.now fab));
  let mt = Portland.Fabric.tree fab in
  let spec = Portland.Fabric.spec fab in
  (* the first uplink peer of edge (p, 0): an agg, or a spine under flat *)
  let first_up p =
    if spec.MR.wiring = MR.Flat then mt.MR.cores.(0) else mt.MR.aggs.(p).(0)
  in
  if inject > 0 then begin
    (* deterministic, non-partitioning failures: one uplink of edge (p, 0)
       in each of the first [inject] pods, then let the fabric reconverge *)
    let n = min inject (Array.length mt.MR.edges) in
    for p = 0 to n - 1 do
      ignore (Portland.Fabric.fail_link_between fab ~a:mt.MR.edges.(p).(0) ~b:(first_up p))
    done;
    Portland.Fabric.run_for fab (Time.ms 300);
    Printf.printf "injected %d uplink failure(s) and reconverged\n%!" n
  end;
  let binding_of ~pod =
    let h = Portland.Fabric.host fab ~pod ~edge:0 ~slot:0 in
    match
      Portland.Fabric_manager.lookup_binding
        (Portland.Fabric.fabric_manager fab)
        (Portland.Host_agent.ip h)
    with
    | Some b -> b
    | None ->
      prerr_endline "host not registered at the fabric manager";
      exit 2
  in
  let exact_match (b : Portland.Msg.host_binding) =
    FT.match_dst_prefix
      ~value:(Netcore.Mac_addr.to_int (Portland.Pmac.to_mac b.Portland.Msg.pmac))
      ~mask:0xFFFFFFFFFFFF
  in
  let faults =
    match corrupt with
    | None -> None
    | Some "wrong-port" ->
      (* re-point a host's exact-match entry at the neighbouring host port *)
      let b = binding_of ~pod:0 in
      let table =
        Portland.Switch_agent.table (Portland.Fabric.agent fab b.Portland.Msg.edge_switch)
      in
      let pmac_int = Netcore.Mac_addr.to_int (Portland.Pmac.to_mac b.Portland.Msg.pmac) in
      FT.install table
        { FT.name = Printf.sprintf "host:%d" pmac_int;
          priority = 90;
          mtch = exact_match b;
          actions =
            [ FT.Set_dst_mac b.Portland.Msg.amac;
              FT.Output
                ((b.Portland.Msg.pmac.Portland.Pmac.port + 1) mod spec.MR.hosts_per_edge) ] };
      Printf.printf "corrupted: host entry on switch %d points at the wrong port\n%!"
        b.Portland.Msg.edge_switch;
      None
    | Some "loop" ->
      (* bounce a remote pod's class between edge(0,0) and its first
         uplink peer (agg(0,0), or spine 0 under flat wiring) *)
      let b = binding_of ~pod:(k - 1) in
      let up_port = spec.MR.hosts_per_edge (* first uplink: host ports come first *) in
      FT.install
        (Portland.Switch_agent.table (Portland.Fabric.agent fab mt.MR.edges.(0).(0)))
        { FT.name = "evil-up"; priority = 200; mtch = exact_match b;
          actions = [ FT.Output up_port ] };
      FT.install
        (Portland.Switch_agent.table (Portland.Fabric.agent fab (first_up 0)))
        { FT.name = "evil-down"; priority = 200; mtch = exact_match b;
          actions = [ FT.Output 0 ] };
      Printf.printf "corrupted: looping entry pair installed on edge(0,0) and its uplink\n%!";
      None
    | Some "stale-fault" ->
      (* verify against a fault matrix naming a demonstrably alive link *)
      let stale =
        match
          ( Portland.Switch_agent.coords (Portland.Fabric.agent fab mt.MR.edges.(0).(0)),
            Portland.Switch_agent.coords (Portland.Fabric.agent fab (first_up 0)) )
        with
        | Some (Portland.Coords.Edge { pod; position }), Some (Portland.Coords.Agg { stripe; _ })
          ->
          Portland.Fault.Edge_agg { pod; edge_pos = position; stripe }
        | Some (Portland.Coords.Edge { pod; _ }), Some (Portland.Coords.Core { stripe; member })
          ->
          Portland.Fault.Agg_core { pod; stripe; member }
        | _ ->
          prerr_endline "switches have no coordinates";
          exit 2
      in
      Printf.printf "corrupted: fault matrix claims a live link is down\n%!";
      Some
        (stale
        :: Portland.Fabric_manager.fault_set (Portland.Fabric.fabric_manager fab))
    | Some other ->
      Printf.eprintf "unknown corruption %s (wrong-port | loop | stale-fault)\n" other;
      exit 2
  in
  if verbose then dump_switch_state fab;
  let report = Verify.run ?faults fab in
  Format.printf "%a@." Verify.pp_report report;
  (match json_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (Obs.Json.to_string (Verify.report_to_json report));
     output_char oc '\n';
     close_out oc;
     Printf.printf "wrote verification report to %s\n" path);
  exit (if Verify.ok report then 0 else 1)

(* ---------------- policy compilation & differential check ---------------- *)

let run_policy ({ verbose; _ } as c) ~check ~corrupt ~json_out =
  let open Eventsim in
  let module P = Portland_policy.Policy in
  let fab = create_fabric c in
  if not (Portland.Fabric.await_convergence fab) then begin
    prerr_endline "fabric failed to converge";
    exit 2
  end;
  Printf.printf "%s converged at %s\n%!" (describe_fabric c fab)
    (Time.to_string (Portland.Fabric.now fab));
  let pol = P.baseline fab in
  let pol, corrupted =
    match corrupt with
    | None -> (pol, false)
    | Some kind ->
      (match P.corruption_of_string kind with
       | Some cz ->
         Printf.printf "corrupted policy: %s\n%!" (P.corruption_to_string cz);
         (P.corrupt cz pol, true)
       | None ->
         Printf.eprintf "unknown corruption %s (wrong-prefix | drop-ecmp)\n" kind;
         exit 2)
  in
  match P.compile pol with
  | Error e ->
    Format.eprintf "policy does not compile: %a@." P.pp_error e;
    exit 2
  | Ok compiled ->
    Printf.printf "compiled baseline policy: %d switches, %d entries, %d groups\n%!"
      (List.length (P.switches compiled))
      (P.entry_count compiled) (P.group_count compiled);
    if verbose then
      List.iter
        (fun sw ->
          match P.table compiled sw with
          | Some t ->
            Printf.printf "  switch %d: %d entries, digest %s\n" sw
              (Switchfab.Flow_table.size t) (P.Check.table_digest t)
          | None -> ())
        (P.switches compiled);
    if not (check || corrupted || json_out <> None) then exit 0;
    let report = P.Check.differential fab compiled in
    Format.printf "%a@." P.Check.pp_report report;
    if not (P.Check.ok report) then begin
      let spans = P.spans (P.Check.shrink fab pol) in
      Printf.printf "shrunk reproducer: %d clause(s)\n" (List.length spans);
      List.iter (fun s -> Printf.printf "  %s\n" s) spans
    end;
    (match json_out with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Obs.Json.to_string (P.Check.report_to_json report));
       output_char oc '\n';
       close_out oc;
       Printf.printf "wrote policy differential report to %s\n" path);
    exit (if P.Check.ok report then 0 else 1)

(* ---------------- chaos campaigns ---------------- *)

let run_chaos ({ seed; verbose; _ } as c) ~duration_ms ~campaign ~verify_every_update
    ~check_policy ~json_out =
  let open Eventsim in
  let profile =
    match Chaos.profile_of_string campaign with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown campaign %s (mixed | link-flaps | switch-churn | loss-ramps)\n"
        campaign;
      exit 2
  in
  if verify_every_update then
    reject_domains c ~what:"--verify-every-update (the update journal)";
  let obs = Obs.create () in
  let fab = create_fabric ~obs c in
  if not (Portland.Fabric.await_convergence fab) then begin
    prerr_endline "fabric failed to converge";
    exit 2
  end;
  Printf.printf "%s converged at %s; campaign=%s duration=%dms seed=%d\n%!"
    (describe_fabric c fab)
    (Time.to_string (Portland.Fabric.now fab))
    campaign duration_ms seed;
  let plan =
    Chaos.generate ~profile ~seed ~duration:(Time.ms duration_ms) (Portland.Fabric.tree fab)
  in
  let report =
    Chaos.run_campaign ~label:campaign ~verify_every_update ~check_policy ~seed fab plan
  in
  if verify_every_update then
    Printf.printf "incremental verifier: %d updates verified, %d divergences\n"
      report.Chaos.rep_updates_verified report.Chaos.rep_incremental_divergences;
  if check_policy then
    Printf.printf "policy differential: %d checks, %d divergences\n"
      report.Chaos.rep_policy_checks report.Chaos.rep_policy_divergences;
  if verbose then Format.printf "%a" Chaos.pp_report report
  else begin
    let bad =
      List.filter
        (fun c ->
          (not c.Chaos.chk_converged)
          || c.Chaos.chk_violations <> []
          || c.Chaos.chk_probes_ok <> c.Chaos.chk_probes)
        report.Chaos.rep_checks
    in
    Printf.printf "%d events, %d quiescent checks (%d bad), peak faults %d\n"
      (List.length report.Chaos.rep_events)
      (List.length report.Chaos.rep_checks)
      (List.length bad) report.Chaos.rep_faults_peak;
    List.iter
      (fun c ->
        Format.printf "  check @%.1fms: converged=%b probes=%d/%d@." c.Chaos.chk_ms
          c.Chaos.chk_converged c.Chaos.chk_probes_ok c.Chaos.chk_probes;
        List.iter (fun v -> Format.printf "    violation: %s@." v) c.Chaos.chk_violations)
      bad
  end;
  (match json_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (Obs.Json.to_string (Chaos.report_to_json report));
     output_char oc '\n';
     close_out oc;
     Printf.printf "wrote campaign report to %s\n" path);
  if Chaos.report_ok report then print_endline "campaign OK"
  else print_endline "campaign FAILED";
  exit (if Chaos.report_ok report then 0 else 1)

(* ---------------- model checking ---------------- *)

let run_mc ({ k; topo; seed; verbose; fm_shards; _ } as c) ~depth ~max_step ~delay_budget
    ~quantum_us ~scenario ~corrupt ~no_prune ~replay ~json_out =
  let open Eventsim in
  (* the interleaving explorer intercepts control deliveries sequentially *)
  reject_domains c ~what:"mc";
  match replay with
  | Some token ->
    (* the token is self-contained: every behaviour-affecting parameter
       comes from it, so the reproduction is byte-exact no matter what
       else is on the command line. --fm-shards still applies — it is a
       state-layout choice the token deliberately omits, and the replay
       must come out identical under any value *)
    (match Mc.Token.of_string token with
     | Error e ->
       Printf.eprintf "bad --replay token: %s\n" e;
       exit 2
     | Ok (p, sched) ->
       let p = { p with Mc.fm_shards } in
       let r = Mc.run_schedule p sched in
       Format.printf "%a@." Mc.pp_run r;
       exit 0)
  | None ->
    let scenario =
      match Mc.scenario_of_string scenario with
      | Some s -> s
      | None ->
        Printf.eprintf "unknown scenario %s (boot | fault | reboot)\n" scenario;
        exit 2
    in
    let corrupt =
      match corrupt with
      | None -> None
      | Some c ->
        (match Mc.corruption_of_string c with
         | Some _ as c -> c
         | None ->
           Printf.eprintf "unknown corruption %s (binding | wrong-port)\n" c;
           exit 2)
    in
    let p =
      { Mc.k;
        topo;
        seed;
        scenario;
        depth;
        max_step;
        delay_budget;
        quantum = Time.us quantum_us;
        prune = not no_prune;
        corrupt;
        fm_shards }
    in
    Printf.printf
      "mc: k=%d topo=%s seed=%d scenario=%s depth=%d max_step=%d budget=%d quantum=%dus \
       prune=%b corrupt=%s fm_shards=%d\n%!"
      p.Mc.k p.Mc.topo p.Mc.seed
      (Mc.scenario_to_string p.Mc.scenario)
      p.Mc.depth p.Mc.max_step p.Mc.delay_budget (p.Mc.quantum / 1000) p.Mc.prune
      (Mc.corruption_to_string p.Mc.corrupt)
      p.Mc.fm_shards;
    let rep = Mc.explore p in
    Printf.printf "schedules run: %d\n" rep.Mc.rep_schedules_run;
    Printf.printf "distinct interleavings: %d (first %d deliveries)\n" rep.Mc.rep_interleavings
      rep.Mc.rep_window_cap;
    Printf.printf "pruned delay choices: %d\n" rep.Mc.rep_pruned;
    Printf.printf "decision slots offered: %d of %d\n" rep.Mc.rep_decisions_seen p.Mc.depth;
    Printf.printf "violating schedules: %d\n" rep.Mc.rep_violating;
    (match rep.Mc.rep_counterexample with
     | None -> ()
     | Some cx ->
       Printf.printf "counterexample (shrunk): %s\n" cx.Mc.cx_token;
       List.iter (fun v -> Printf.printf "  violation: %s\n" v) cx.Mc.cx_violations;
       if verbose then
         Format.printf "--- replay of shrunk schedule ---@.%a@." Mc.pp_run
           (Mc.run_schedule p cx.Mc.cx_schedule));
    (match json_out with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Obs.Json.to_string (Mc.report_to_json rep));
       output_char oc '\n';
       close_out oc;
       Printf.printf "wrote mc report to %s\n" path);
    if Mc.report_ok rep then print_endline "mc OK" else print_endline "mc FAILED";
    exit (if Mc.report_ok rep then 0 else 1)

(* ---------------- command line ---------------- *)

let scenario_arg =
  let doc = "Scenario: idle, ping-all, failure, migrate, or fm-restart." in
  Arg.(value & pos 0 string "ping-all" & info [] ~docv:"SCENARIO" ~doc)

let pcap_arg =
  let doc = "Capture all host-side traffic to this pcap file (Wireshark-compatible)." in
  Arg.(value & opt (some string) None & info [ "pcap" ] ~docv:"FILE" ~doc)

let dot_arg =
  let doc = "Write the topology as a Graphviz file." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let inject_arg =
  let doc =
    "Before verifying, fail one edge-agg link in each of the first $(docv) pods and let the \
     fabric reconverge."
  in
  Arg.(value & opt int 0 & info [ "inject" ] ~docv:"N" ~doc)

let corrupt_arg =
  let doc =
    "Seed a deliberate corruption before verifying (the report must then be non-empty): \
     wrong-port, loop, or stale-fault."
  in
  Arg.(value & opt (some string) None & info [ "corrupt" ] ~docv:"KIND" ~doc)

let csv_out_arg =
  let doc = "Write the final metrics snapshot as CSV to this file." in
  Arg.(value & opt (some string) None & info [ "csv-out" ] ~docv:"FILE" ~doc)

let scenario_term =
  Term.(
    const (fun common duration_ms scenario pcap_file dot_file metrics_out ->
        run_scenario common ~duration_ms ~scenario ~pcap_file ~dot_file ~metrics_out)
    $ common_term $ duration_arg $ scenario_arg $ pcap_arg $ dot_arg $ metrics_out_arg)

let run_cmd =
  let doc = "run a traffic scenario (idle | ping-all | failure | migrate | fm-restart)" in
  Cmd.v (Cmd.info "run" ~doc) scenario_term

let stats_cmd =
  let doc =
    "build a fabric with a live metrics registry, converge, run a ping-all warm-up, and \
     print the full metrics snapshot (optionally exporting JSON/CSV)"
  in
  let term =
    Term.(
      const (fun common duration_ms metrics_out csv_out ->
          run_stats common ~duration_ms ~metrics_out ~csv_out)
      $ common_term $ duration_arg $ metrics_out_arg $ csv_out_arg)
  in
  Cmd.v (Cmd.info "stats" ~doc) term

let verify_json_arg =
  let doc =
    "Write the verification report as JSON to this file: kind-tagged violations and notes, \
     coverage counts and the canonical verdict digest (byte-stable for a given fabric \
     state)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let verify_cmd =
  let doc =
    "statically verify the installed forwarding state: loop freedom, blackhole freedom, \
     PMAC rewrite correctness, ECMP group liveness and fault-matrix consistency. Exits 0 \
     iff no violations."
  in
  let term =
    Term.(
      const (fun common inject corrupt json_out ->
          run_verify common ~inject ~corrupt ~json_out)
      $ common_term $ inject_arg $ corrupt_arg $ verify_json_arg)
  in
  Cmd.v (Cmd.info "verify" ~doc) term

let campaign_arg =
  let doc = "Campaign profile: mixed, link-flaps, switch-churn, or loss-ramps." in
  Arg.(value & opt string "mixed" & info [ "campaign" ] ~docv:"PROFILE" ~doc)

let chaos_duration_arg =
  let doc =
    "Campaign length in simulated milliseconds. The mixed profile needs roughly 6000 ms to \
     fit its mandatory switch-crash and fabric-manager-restart episodes."
  in
  Arg.(value & opt int 6000 & info [ "duration-ms" ] ~docv:"MS" ~doc)

let json_out_arg =
  let doc = "Write the campaign report as JSON to this file (byte-stable for a given seed)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let verify_every_update_arg =
  let doc =
    "Attach a persistent incremental verifier for the whole campaign: re-verify the \
     affected destination classes after every applied action, and at every quiescent check \
     compare its verdict digest against a fresh full verification (any divergence fails \
     the campaign)."
  in
  Arg.(value & flag & info [ "verify-every-update" ] ~doc)

let check_policy_arg =
  let doc =
    "Re-run the policy-as-program differential at every quiescent check: recompile the \
     declarative baseline policy against the fabric's current control-plane state and \
     prove the compiled tables equivalent to the live handwritten ones. Any \
     counterexample fails the campaign."
  in
  Arg.(value & flag & info [ "check-policy" ] ~doc)

let chaos_cmd =
  let doc =
    "generate a seed-deterministic fault campaign (link flaps, switch crash/reboot cycles, \
     fabric-manager restarts, loss ramps, stripe outages), execute it against a live \
     fabric, and verify the dataplane at every quiescent point. Exits 0 iff every check \
     converged with zero violations and full probe reachability."
  in
  let term =
    Term.(
      const (fun common duration_ms campaign verify_every_update check_policy json_out ->
          run_chaos common ~duration_ms ~campaign ~verify_every_update ~check_policy
            ~json_out)
      $ common_term $ chaos_duration_arg $ campaign_arg $ verify_every_update_arg
      $ check_policy_arg $ json_out_arg)
  in
  Cmd.v (Cmd.info "chaos" ~doc) term

let policy_check_arg =
  let doc =
    "Run the static differential check: prove the compiled tables equivalent to the live \
     handwritten switch programming, per-switch canonical digests plus class-by-class \
     symbolic comparison. Implied by --corrupt and --json."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let policy_corrupt_arg =
  let doc =
    "Seed a deliberate bug into the policy before compiling (the differential must then \
     produce a counterexample and a shrunk reproducer): wrong-prefix, or drop-ecmp."
  in
  Arg.(value & opt (some string) None & info [ "corrupt" ] ~docv:"KIND" ~doc)

let policy_json_arg =
  let doc =
    "Write the differential report as JSON to this file (byte-stable for a given fabric \
     state)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let policy_cmd =
  let doc =
    "compile the declarative NetCore-style baseline forwarding policy for the fabric's \
     current control-plane state and, with --check, statically prove the compiled flow \
     tables equivalent to the handwritten switch-agent programming; divergences come with \
     typed counterexamples (switch, PMAC class, entry, policy source span) and a \
     ddmin-shrunk reproducer. Exits 0 iff the check passes (or was not requested)."
  in
  let term =
    Term.(
      const (fun common check corrupt json_out -> run_policy common ~check ~corrupt ~json_out)
      $ common_term $ policy_check_arg $ policy_corrupt_arg $ policy_json_arg)
  in
  Cmd.v (Cmd.info "policy" ~doc) term

let mc_depth_arg =
  let doc = "Number of reorderable control-plane actions given a delay decision." in
  Arg.(value & opt int 6 & info [ "depth" ] ~docv:"N" ~doc)

let mc_max_step_arg =
  let doc = "Maximum extra delay per action, in quanta." in
  Arg.(value & opt int 3 & info [ "max-step" ] ~docv:"N" ~doc)

let mc_budget_arg =
  let doc = "Bound on the sum of extra-delay steps over one schedule." in
  Arg.(value & opt int 10 & info [ "delay-budget" ] ~docv:"N" ~doc)

let mc_quantum_arg =
  let doc =
    "Delay quantum in microseconds. Keep it of the same order as the window's \
     inter-delivery spacing, or every step hops past the whole burst and the pruner \
     collapses the search."
  in
  Arg.(value & opt int 2 & info [ "quantum-us" ] ~docv:"US" ~doc)

let mc_scenario_arg =
  let doc = "Race to explore: boot (self-configuration storm), fault (link fail/recover), or \
             reboot (switch cold reboot)." in
  Arg.(value & opt string "boot" & info [ "scenario" ] ~docv:"KIND" ~doc)

let mc_corrupt_arg =
  let doc =
    "Seed a state corruption after each schedule quiesces (the invariant pack must then \
     flag every schedule): binding, or wrong-port."
  in
  Arg.(value & opt (some string) None & info [ "corrupt" ] ~docv:"KIND" ~doc)

let mc_no_prune_arg =
  let doc = "Disable the sleep-set-style pruning and run the full bounded product." in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let mc_replay_arg =
  let doc =
    "Replay one schedule token (as printed for counterexamples) instead of exploring; the \
     output is byte-identical on every invocation of the same token."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"TOKEN" ~doc)

let mc_json_arg =
  let doc = "Write the exploration report as JSON to this file (byte-stable for a given \
             parameter set)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let mc_cmd =
  let doc =
    "systematically explore control-plane message interleavings on a small fabric: tag \
     every control delivery as a reorderable action, enumerate bounded delay schedules \
     (DFS with delay-bounding pruning), assert the invariant pack at every quiescent \
     schedule, and shrink any violation to a minimal replayable schedule token. Exits 0 \
     iff every explored schedule satisfied every invariant."
  in
  let term =
    Term.(
      const (fun common depth max_step delay_budget quantum_us scenario corrupt no_prune
                 replay json_out ->
          run_mc common ~depth ~max_step ~delay_budget ~quantum_us ~scenario ~corrupt
            ~no_prune ~replay ~json_out)
      $ common_term $ mc_depth_arg $ mc_max_step_arg $ mc_budget_arg $ mc_quantum_arg
      $ mc_scenario_arg $ mc_corrupt_arg $ mc_no_prune_arg $ mc_replay_arg $ mc_json_arg)
  in
  Cmd.v (Cmd.info "mc" ~doc) term

let cmd =
  let doc = "simulate a PortLand fabric" in
  Cmd.group ~default:scenario_term (Cmd.info "portland_sim" ~doc)
    [ run_cmd; stats_cmd; verify_cmd; chaos_cmd; mc_cmd; policy_cmd ]

let () = exit (Cmd.eval cmd)
