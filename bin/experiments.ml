(* Runs the paper's experiments: all of them, or the ones named on the
   command line. `--quick` trims trial counts, `--seed N` changes the
   deterministic seed, `--list` shows the index, `--json` emits one
   JSON object per experiment instead of rendered tables. *)

let usage () =
  print_endline
    "usage: experiments [--quick] [--seed N] [--json] [--list] [EXPERIMENT...]";
  print_endline "experiments:";
  List.iter
    (fun (id, descr) -> Printf.printf "  %-16s %s\n" id descr)
    Harness.Experiments.all

let () =
  let quick = ref false in
  let seed = ref 42 in
  let json = ref false in
  let list_only = ref false in
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: n :: rest ->
      seed := int_of_string n;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--list" :: rest ->
      list_only := true;
      parse rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | id :: rest ->
      chosen := id :: !chosen;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then usage ()
  else begin
    let quick = !quick and seed = !seed in
    let unknown id =
      Printf.eprintf "unknown experiment: %s\n" id;
      usage ();
      exit 1
    in
    if !json then begin
      let emit j = print_endline (Obs.Json.to_string j) in
      match List.rev !chosen with
      | [] -> List.iter emit (Harness.Experiments.run_all_json ~quick ~seed ())
      | ids ->
        List.iter
          (fun id ->
            match Harness.Experiments.run_one_json ~quick ~seed id with
            | Some j -> emit j
            | None -> unknown id)
          ids
    end
    else begin
      let fmt = Format.std_formatter in
      match List.rev !chosen with
      | [] -> Harness.Experiments.run_all ~quick ~seed fmt
      | ids ->
        List.iter
          (fun id -> if not (Harness.Experiments.run_one ~quick ~seed fmt id) then unknown id)
          ids
    end
  end
