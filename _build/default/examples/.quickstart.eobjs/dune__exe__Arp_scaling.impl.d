examples/arp_scaling.ml: Array Baselines Eventsim List Netcore Portland Printf Switchfab Time Topology
