examples/vm_migration.ml: Array Eventsim Fabric Fabric_manager Format Host_agent Netcore Pmac Portland Printf Stats Time Transport
