examples/quickstart.ml: Coords Eventsim Fabric Fabric_manager Format Host_agent List Netcore Portland Printf String Switch_agent Time Topology
