examples/quickstart.mli:
