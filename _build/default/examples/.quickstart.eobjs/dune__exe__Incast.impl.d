examples/incast.ml: Eventsim Fabric Host_agent List Portland Printf Switchfab Time Transport
