examples/arp_scaling.mli:
