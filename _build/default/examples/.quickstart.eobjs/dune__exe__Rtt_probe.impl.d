examples/rtt_probe.ml: Eventsim Fabric Format Host_agent List Netcore Portland Printf Time Transport
