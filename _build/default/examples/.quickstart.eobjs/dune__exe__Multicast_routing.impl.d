examples/multicast_routing.ml: Coords Eventsim Fabric Fabric_manager Host_agent List Netcore Portland Printf Switch_agent Time Timer
