examples/incast.mli:
