examples/rtt_probe.mli:
