examples/multicast_routing.mli:
