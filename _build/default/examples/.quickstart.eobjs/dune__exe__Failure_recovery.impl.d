examples/failure_recovery.ml: Eventsim Fabric Fabric_manager Host_agent List Netcore Portland Printf String Time Transport
