(* Runs the paper's experiments: all of them, or the ones named on the
   command line. `--quick` trims trial counts, `--seed N` changes the
   deterministic seed, `--list` shows the index. *)

let usage () =
  print_endline "usage: experiments [--quick] [--seed N] [--list] [EXPERIMENT...]";
  print_endline "experiments:";
  List.iter
    (fun (id, descr) -> Printf.printf "  %-16s %s\n" id descr)
    Harness.Experiments.all

let () =
  let quick = ref false in
  let seed = ref 42 in
  let list_only = ref false in
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: n :: rest ->
      seed := int_of_string n;
      parse rest
    | "--list" :: rest ->
      list_only := true;
      parse rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | id :: rest ->
      chosen := id :: !chosen;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then usage ()
  else begin
    let fmt = Format.std_formatter in
    match List.rev !chosen with
    | [] -> Harness.Experiments.run_all ~quick:!quick ~seed:!seed fmt
    | ids ->
      List.iter
        (fun id ->
          if not (Harness.Experiments.run_one ~quick:!quick ~seed:!seed fmt id) then begin
            Printf.eprintf "unknown experiment: %s\n" id;
            usage ();
            exit 1
          end)
        ids
  end
