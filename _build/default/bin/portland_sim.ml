(* Interactive driver: build a PortLand fabric, run a scenario, dump
   state. `portland_sim --help` for options. *)

open Cmdliner

let run_scenario ~k ~seed ~duration_ms ~scenario ~verbose ~pcap_file ~dot_file =
  let open Eventsim in
  let fab = Portland.Fabric.create_fattree ~seed ~k () in
  (match dot_file with
   | Some path ->
     let oc = open_out path in
     output_string oc
       (Topology.Topo.to_dot ~name:(Printf.sprintf "fattree-k%d" k)
          (Topology.Multirooted.build (Topology.Fattree.spec ~k)).Topology.Multirooted.topo);
     close_out oc;
     Printf.printf "wrote topology graph to %s (render with: dot -Tsvg %s)\n" path path
   | None -> ());
  Printf.printf "built k=%d fat tree: %d hosts, %d switches\n%!" k
    (Topology.Fattree.num_hosts ~k)
    (Topology.Fattree.num_switches ~k);
  let capture =
    match pcap_file with
    | None -> None
    | Some _ ->
      let cap = Switchfab.Capture.create (Portland.Fabric.net fab) in
      List.iter
        (fun h ->
          Switchfab.Capture.tap cap ~device:(Portland.Host_agent.device_id h)
            ~side:Switchfab.Capture.Both ())
        (Portland.Fabric.hosts fab);
      Some cap
  in
  if not (Portland.Fabric.await_convergence fab) then begin
    prerr_endline "fabric failed to converge";
    exit 1
  end;
  Printf.printf "converged at %s (LDP + fabric manager assignments complete)\n%!"
    (Time.to_string (Portland.Fabric.now fab));
  (match scenario with
   | "idle" -> Portland.Fabric.run_for fab (Time.ms duration_ms)
   | "ping-all" ->
     let hosts = Array.of_list (Portland.Fabric.hosts fab) in
     let received = ref 0 in
     Array.iter
       (fun h -> Portland.Host_agent.set_rx h (fun _ -> incr received))
       hosts;
     let sent = ref 0 in
     Array.iteri
       (fun i h ->
         let peer = hosts.((i + 1) mod Array.length hosts) in
         let u = Netcore.Udp.make ~flow_id:i ~app_seq:0 ~payload_len:64 () in
         Portland.Host_agent.send_ip h ~dst:(Portland.Host_agent.ip peer)
           (Netcore.Ipv4_pkt.Udp u);
         incr sent)
       hosts;
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     Printf.printf "ping-all: %d sent, %d received\n" !sent !received
   | "migrate" ->
     (* needs a spare slot: rebuild the fabric with one *)
     Printf.printf "(migrate scenario uses its own fabric with a spare slot in pod 1)\n";
     let fab = Portland.Fabric.create_fattree ~seed ~k ~spare_slots:[ (1, 0, 0) ] () in
     assert (Portland.Fabric.await_convergence fab);
     let client = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
     let vm = Portland.Fabric.host fab ~pod:(k - 1) ~edge:0 ~slot:1 in
     let m_client = Transport.Port_mux.attach client in
     let m_vm = Transport.Port_mux.attach vm in
     let conn = Transport.Tcp.connect (Portland.Fabric.engine fab) ~src:m_client ~dst:m_vm () in
     Portland.Fabric.run_for fab (Time.sec 1);
     Printf.printf "migrating %s to pod 1 (200 ms downtime)\n"
       (Netcore.Ipv4_addr.to_string (Portland.Host_agent.ip vm));
     Portland.Fabric.migrate fab ~vm ~to_:(1, 0, 0) ~downtime:(Time.ms 200) ();
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     let s = Transport.Tcp.stats conn in
     Printf.printf "delivered %.1f MB; %d retransmission timeout(s)\n"
       (float_of_int s.Transport.Tcp.bytes_delivered /. 1e6)
       s.Transport.Tcp.timeouts;
     Format.printf "trace tail:@.";
     List.iter
       (fun e -> Format.printf "  %a@." Eventsim.Trace.pp_entry e)
       (let es = Eventsim.Trace.entries (Portland.Fabric.trace fab) in
        let n = List.length es in
        List.filteri (fun i _ -> i >= n - 5) es)
   | "fm-restart" ->
     Portland.Fabric.restart_fabric_manager fab;
     Printf.printf "fabric manager restarted; resyncing...\n";
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     Printf.printf "bindings after resync: %d\n"
       (Portland.Fabric_manager.binding_count (Portland.Fabric.fabric_manager fab))
   | "failure" ->
     let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
     let dst = Portland.Fabric.host fab ~pod:(k - 1) ~edge:0 ~slot:0 in
     let mux = Transport.Port_mux.attach dst in
     let rx = Transport.Udp_flow.Receiver.attach (Portland.Fabric.engine fab) mux ~flow_id:1 () in
     let tx =
       Transport.Udp_flow.Sender.start (Portland.Fabric.engine fab) src
         ~dst:(Portland.Host_agent.ip dst) ~flow_id:1 ~rate_pps:1000 ()
     in
     Portland.Fabric.run_for fab (Time.ms 300);
     let probe = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()) in
     (match Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe with
      | Ok (_ :: a :: b :: _) ->
        Printf.printf "failing on-path link %d--%d\n" a b;
        ignore (Portland.Fabric.fail_link_between fab ~a ~b)
      | Ok _ | Error _ -> prerr_endline "could not trace the flow");
     let fail_at = Portland.Fabric.now fab in
     Portland.Fabric.run_for fab (Time.ms duration_ms);
     Transport.Udp_flow.Sender.stop tx;
     (match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_at - Time.ms 5) with
      | Some (_, gap) -> Printf.printf "convergence: %s\n" (Time.to_string gap)
      | None -> print_endline "no gap measured")
   | other ->
     Printf.eprintf "unknown scenario %s (idle | ping-all | failure | migrate | fm-restart)\n"
       other;
     exit 1);
  (match (capture, pcap_file) with
   | Some cap, Some path ->
     Switchfab.Capture.write_file cap path;
     Printf.printf "wrote %d frames (host-side, both directions) to %s\n"
       (Switchfab.Capture.frame_count cap) path
   | _ -> ());
  if verbose then begin
    let c = Switchfab.Net.total_counters (Portland.Fabric.net fab) in
    Printf.printf "frames: tx=%d rx=%d queue_drops=%d down_drops=%d\n"
      c.Switchfab.Net.tx_frames c.Switchfab.Net.rx_frames c.Switchfab.Net.queue_drops
      c.Switchfab.Net.down_drops;
    let fm = Portland.Fabric.fabric_manager fab in
    let fc = Portland.Fabric_manager.counters fm in
    Printf.printf
      "fabric manager: %d reports, %d ARP queries (%d hits), %d announces, %d fault notices\n"
      fc.Portland.Fabric_manager.reports fc.Portland.Fabric_manager.arp_queries
      fc.Portland.Fabric_manager.arp_hits fc.Portland.Fabric_manager.host_announces
      fc.Portland.Fabric_manager.fault_notices;
    Format.printf "trace (last 10 entries):@.";
    (let es = Eventsim.Trace.entries (Portland.Fabric.trace fab) in
     let n = List.length es in
     List.iteri
       (fun i e -> if i >= n - 10 then Format.printf "  %a@." Eventsim.Trace.pp_entry e)
       es);
    List.iter
      (fun a ->
        Printf.printf "  switch %d: %s, %d table entries\n"
          (Portland.Switch_agent.switch_id a)
          (match Portland.Switch_agent.coords a with
           | Some c -> Format.asprintf "%a" Portland.Coords.pp c
           | None -> "unplaced")
          (Portland.Switch_agent.table_size a))
      (List.sort
         (fun a b ->
           compare (Portland.Switch_agent.switch_id a) (Portland.Switch_agent.switch_id b))
         (Portland.Fabric.agents fab))
  end

let k_arg =
  let doc = "Fat-tree arity (even, >= 2)." in
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)

let seed_arg =
  let doc = "Deterministic random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration_arg =
  let doc = "Scenario duration after convergence, in milliseconds." in
  Arg.(value & opt int 1000 & info [ "duration-ms" ] ~docv:"MS" ~doc)

let scenario_arg =
  let doc = "Scenario: idle, ping-all, failure, migrate, or fm-restart." in
  Arg.(value & pos 0 string "ping-all" & info [] ~docv:"SCENARIO" ~doc)

let verbose_arg =
  let doc = "Dump per-switch state and counters at the end." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let pcap_arg =
  let doc = "Capture all host-side traffic to this pcap file (Wireshark-compatible)." in
  Arg.(value & opt (some string) None & info [ "pcap" ] ~docv:"FILE" ~doc)

let dot_arg =
  let doc = "Write the topology as a Graphviz file." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "simulate a PortLand fabric" in
  let term =
    Term.(
      const (fun k seed duration_ms scenario verbose pcap_file dot_file ->
          run_scenario ~k ~seed ~duration_ms ~scenario ~verbose ~pcap_file ~dot_file)
      $ k_arg $ seed_arg $ duration_arg $ scenario_arg $ verbose_arg $ pcap_arg $ dot_arg)
  in
  Cmd.v (Cmd.info "portland_sim" ~doc) term

let () = exit (Cmd.eval cmd)
