open Eventsim
open Netcore
open Baselines

(* ---------------- Mac_table ---------------- *)

let test_mac_table_learn_lookup () =
  let engine = Engine.create () in
  let t = Mac_table.create engine () in
  let mac = Mac_addr.of_int 42 in
  Mac_table.learn t ~mac ~port:3;
  Testutil.check_bool "lookup" true (Mac_table.lookup t mac = Some 3);
  Mac_table.learn t ~mac ~port:5;
  Testutil.check_bool "relearn moves" true (Mac_table.lookup t mac = Some 5);
  Testutil.check_int "size" 1 (Mac_table.size t)

let test_mac_table_aging () =
  let engine = Engine.create () in
  let t = Mac_table.create engine ~aging:(Time.sec 1) () in
  Mac_table.learn t ~mac:(Mac_addr.of_int 1) ~port:0;
  (* advance simulated time past the aging horizon *)
  ignore (Engine.schedule engine ~delay:(Time.sec 2) (fun () -> ()));
  Engine.run engine;
  Testutil.check_bool "aged out" true (Mac_table.lookup t (Mac_addr.of_int 1) = None);
  Testutil.check_int "size sweeps" 0 (Mac_table.size t)

let test_mac_table_flush_port () =
  let engine = Engine.create () in
  let t = Mac_table.create engine () in
  Mac_table.learn t ~mac:(Mac_addr.of_int 1) ~port:0;
  Mac_table.learn t ~mac:(Mac_addr.of_int 2) ~port:1;
  Mac_table.flush_port t 0;
  Testutil.check_bool "port 0 gone" true (Mac_table.lookup t (Mac_addr.of_int 1) = None);
  Testutil.check_bool "port 1 kept" true (Mac_table.lookup t (Mac_addr.of_int 2) = Some 1);
  Mac_table.flush t;
  Testutil.check_int "flushed" 0 (Mac_table.size t)

(* ---------------- STP on small topologies ---------------- *)

(* a ring of three switches: exactly one link must end up blocked *)
let ring_fabric () =
  let engine = Engine.create () in
  let nodes =
    List.init 3 (fun i ->
        { Topology.Topo.id = i; kind = Topology.Topo.Edge_switch;
          name = Printf.sprintf "s%d" i; nports = 2 })
  in
  let links =
    [ { Topology.Topo.a = { Topology.Topo.node = 0; port = 0 };
        b = { Topology.Topo.node = 1; port = 0 } };
      { Topology.Topo.a = { Topology.Topo.node = 1; port = 1 };
        b = { Topology.Topo.node = 2; port = 0 } };
      { Topology.Topo.a = { Topology.Topo.node = 2; port = 1 };
        b = { Topology.Topo.node = 0; port = 1 } } ]
  in
  let topo = Topology.Topo.create ~nodes ~links in
  let net = Switchfab.Net.create engine topo in
  let switches =
    List.init 3 (fun i ->
        let sw = Learning_switch.attach engine net ~device:i ~stp:true () in
        Learning_switch.start sw;
        sw)
  in
  (engine, net, switches)

let test_stp_ring_blocks_one () =
  let engine, _net, switches = ring_fabric () in
  Engine.run ~until:(Time.sec 60) engine;
  let blocked = ref 0 and forwarding = ref 0 in
  List.iter
    (fun sw ->
      let stp = Option.get (Learning_switch.stp sw) in
      for p = 0 to 1 do
        if Stp.role stp ~port:p = Stp.Blocked then incr blocked
        else if Stp.forwarding stp ~port:p then incr forwarding
      done)
    switches;
  Testutil.check_int "one blocked port" 1 !blocked;
  Testutil.check_int "rest forwarding" 5 !forwarding;
  (* root is the lowest bridge id, and everyone agrees *)
  List.iter
    (fun sw ->
      let stp = Option.get (Learning_switch.stp sw) in
      Testutil.check_int "agreed root" 0 (Stp.root_id stp))
    switches;
  Testutil.check_bool "root bridge knows" true
    (Stp.is_root_bridge (Option.get (Learning_switch.stp (List.hd switches))))

let test_stp_converged_predicate () =
  let engine, _net, switches = ring_fabric () in
  let stp0 = Option.get (Learning_switch.stp (List.hd switches)) in
  Testutil.check_bool "not converged at boot" false (Stp.converged stp0);
  Engine.run ~until:(Time.sec 60) engine;
  List.iter
    (fun sw -> Testutil.check_bool "converged" true (Stp.converged (Option.get (Learning_switch.stp sw))))
    switches

(* ---------------- Learning switch behaviour ---------------- *)

let test_learning_unicast_after_flood () =
  let engine, net, hosts = Testutil.tiny_lan ~n:3 () in
  let h = Array.of_list hosts in
  (* h0 -> h1 resolves by ARP (flooded), then data flows unicast *)
  let got1 = ref 0 in
  Portland.Host_agent.set_rx h.(1) (fun _ -> incr got1);
  (* forget the boot-time gratuitous-ARP learning so h0 must flood one
     ARP request *)
  Portland.Host_agent.flush_arp_cache h.(0);
  (* count raw frames reaching h2's NIC to verify no data flooding *)
  let d2 = Switchfab.Net.device net (Portland.Host_agent.device_id h.(2)) in
  let before = (Switchfab.Net.device_counters d2).Switchfab.Net.rx_frames in
  Portland.Host_agent.send_ip h.(0) ~dst:(Portland.Host_agent.ip h.(1))
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  Testutil.run_ms engine 50;
  for i = 1 to 5 do
    Portland.Host_agent.send_ip h.(0) ~dst:(Portland.Host_agent.ip h.(1))
      (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:i ~payload_len:64 ()))
  done;
  Testutil.run_ms engine 50;
  Testutil.check_int "all delivered" 6 !got1;
  let h2_frames = (Switchfab.Net.device_counters d2).Switchfab.Net.rx_frames - before in
  (* h2 sees only the single flooded ARP request, none of the data *)
  Testutil.check_int "no data flooding after learning" 1 h2_frames

let test_broadcast_storm_without_stp () =
  let fab = Ethernet_fabric.create_fattree ~stp:false ~k:4 () in
  let h = Ethernet_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  Portland.Host_agent.announce h;
  let consumed = Ethernet_fabric.run_bounded fab ~max_events:100_000 in
  Testutil.check_int "storm consumes the whole budget" 100_000 consumed

let test_no_storm_with_stp () =
  let fab = Ethernet_fabric.create_fattree ~stp:true ~k:4 () in
  Testutil.check_bool "stp converges" true (Ethernet_fabric.await_stp_convergence fab);
  let before = Engine.events_processed (Ethernet_fabric.engine fab) in
  let h = Ethernet_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  Portland.Host_agent.announce h;
  Ethernet_fabric.run_for fab (Time.ms 100);
  let used = Engine.events_processed (Ethernet_fabric.engine fab) - before in
  Testutil.check_bool "bounded broadcast" true (used < 10_000)

let test_ethernet_fabric_connectivity () =
  let fab = Ethernet_fabric.create_fattree ~stp:true ~k:4 () in
  Testutil.check_bool "stp converges" true (Ethernet_fabric.await_stp_convergence fab);
  let src = Ethernet_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Ethernet_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let got = ref 0 in
  Portland.Host_agent.set_rx dst (fun _ -> incr got);
  Portland.Host_agent.send_ip src ~dst:(Portland.Host_agent.ip dst)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  Ethernet_fabric.run_for fab (Time.ms 500);
  Testutil.check_int "delivered across pods" 1 !got;
  Testutil.check_bool "mac tables populated" true
    (List.exists (fun s -> s > 0) (Ethernet_fabric.mac_table_sizes fab))

(* ---------------- L3 fabric ---------------- *)

let test_l3_connectivity () =
  let fab = L3_fabric.create_fattree ~k:4 () in
  let src = L3_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = L3_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  L3_fabric.Host.send_ip src ~dst:(L3_fabric.Host.ip dst)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  L3_fabric.run_for fab (Time.ms 100);
  Testutil.check_int "delivered" 1 (L3_fabric.Host.received dst);
  (* same pod too *)
  let near = L3_fabric.host fab ~pod:0 ~edge:1 ~slot:0 in
  L3_fabric.Host.send_ip src ~dst:(L3_fabric.Host.ip near)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:1 ~payload_len:64 ()));
  L3_fabric.run_for fab (Time.ms 100);
  Testutil.check_int "same pod" 1 (L3_fabric.Host.received near)

let test_l3_migration_breaks () =
  let fab = L3_fabric.create_fattree ~k:4 () in
  let src = L3_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = L3_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  L3_fabric.migrate_keeping_ip fab vm ~to_:(1, 0, 0);
  L3_fabric.Host.send_ip src ~dst:(L3_fabric.Host.ip vm)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  L3_fabric.run_for fab (Time.ms 100);
  Testutil.check_int "unreachable after move" 0 (L3_fabric.Host.received vm)

let test_l3_config_burden () =
  let fab = L3_fabric.create_fattree ~k:4 () in
  (* edges: 8 x (2 host routes + default) = 24; aggs: 8 x (2 + 1) = 24;
     cores: 4 x 4 = 16 *)
  Testutil.check_int "static entries" 64 (L3_fabric.config_entry_count fab)

let test_l3_local_ecmp_repair () =
  let fab = L3_fabric.create_fattree ~k:4 () in
  let mt = Topology.Fattree.build ~k:4 in
  let src = L3_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = L3_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  (* kill one uplink of the source edge router: the router's local repair
     must route around it *)
  ignore
    (L3_fabric.fail_link_between fab ~a:mt.Topology.Multirooted.edges.(0).(0)
       ~b:mt.Topology.Multirooted.aggs.(0).(0));
  L3_fabric.Host.send_ip src ~dst:(L3_fabric.Host.ip dst)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  L3_fabric.run_for fab (Time.ms 100);
  Testutil.check_int "local repair works" 1 (L3_fabric.Host.received dst)

(* ---------------- VLAN fabric ---------------- *)

let vlan_ping fab ~src ~dst =
  let got = ref 0 in
  Portland.Host_agent.set_rx dst (fun _ -> incr got);
  Portland.Host_agent.send_ip src ~dst:(Portland.Host_agent.ip dst)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  Vlan_fabric.run_for fab (Time.ms 300);
  !got > 0

let test_vlan_same_pod_connectivity () =
  let fab = Vlan_fabric.create_fattree ~stp:true ~k:4 () in
  Testutil.check_bool "stp" true (Vlan_fabric.await_stp_convergence fab);
  Testutil.check_bool "same pod, same VLAN" true
    (vlan_ping fab
       ~src:(Vlan_fabric.host fab ~pod:1 ~edge:0 ~slot:0)
       ~dst:(Vlan_fabric.host fab ~pod:1 ~edge:1 ~slot:1))

let test_vlan_isolation () =
  let fab = Vlan_fabric.create_fattree ~stp:true ~k:4 () in
  Testutil.check_bool "stp" true (Vlan_fabric.await_stp_convergence fab);
  Testutil.check_bool "cross-pod VLANs are isolated" false
    (vlan_ping fab
       ~src:(Vlan_fabric.host fab ~pod:0 ~edge:0 ~slot:0)
       ~dst:(Vlan_fabric.host fab ~pod:3 ~edge:0 ~slot:0))

let test_vlan_tags_on_trunks () =
  let fab = Vlan_fabric.create_fattree ~stp:true ~k:4 () in
  Testutil.check_bool "stp" true (Vlan_fabric.await_stp_convergence fab);
  (* capture at an aggregation switch: data frames must carry 802.1Q tags *)
  let mt = Vlan_fabric.tree fab in
  let cap = Switchfab.Capture.create (Vlan_fabric.net fab) in
  Switchfab.Capture.tap cap ~device:mt.Topology.Multirooted.aggs.(1).(0) ();
  Switchfab.Capture.tap cap ~device:mt.Topology.Multirooted.aggs.(1).(1) ();
  ignore
    (vlan_ping fab
       ~src:(Vlan_fabric.host fab ~pod:1 ~edge:0 ~slot:0)
       ~dst:(Vlan_fabric.host fab ~pod:1 ~edge:1 ~slot:0));
  let bytes = Netcore.Pcap.contents (Switchfab.Capture.pcap cap) in
  Testutil.check_bool "frames crossed the agg layer" true
    (Switchfab.Capture.frame_count cap > 0);
  (* first captured record: decode and check the tag *)
  let len =
    Char.code (Bytes.get bytes 32)
    lor (Char.code (Bytes.get bytes 33) lsl 8)
  in
  (match Netcore.Codec.decode (Bytes.sub bytes 40 len) with
   | Ok f -> Testutil.check_bool "tagged with pod VLAN" true (f.Eth.vlan = Some 2)
   | Error e -> Alcotest.fail e)

let test_vlan_migration_scope () =
  let fab = Vlan_fabric.create_fattree ~stp:true ~k:4 () in
  Testutil.check_bool "stp" true (Vlan_fabric.await_stp_convergence fab);
  let src = Vlan_fabric.host fab ~pod:1 ~edge:0 ~slot:0 in
  let vm = Vlan_fabric.host fab ~pod:1 ~edge:1 ~slot:1 in
  Testutil.check_bool "before" true (vlan_ping fab ~src ~dst:vm);
  (* within the VLAN (same pod): fine *)
  Vlan_fabric.migrate_host fab vm ~to_:(1, 0, 1);
  Vlan_fabric.run_for fab (Time.ms 100);
  Testutil.check_bool "intra-VLAN migration works" true (vlan_ping fab ~src ~dst:vm);
  (* across pods: the new access port is in another VLAN — unreachable *)
  Vlan_fabric.migrate_host fab vm ~to_:(2, 0, 0);
  Vlan_fabric.run_for fab (Time.ms 100);
  Testutil.check_bool "cross-VLAN migration breaks" false (vlan_ping fab ~src ~dst:vm)

let test_vlan_config_burden () =
  let fab = Vlan_fabric.create_fattree ~stp:true ~k:4 () in
  (* 8 edge switches x 2 host ports *)
  Testutil.check_int "access-port assignments" 16 (Vlan_fabric.config_entry_count fab)

let test_vlan_unaware_ignores_tags () =
  (* classic mode forwards tagged frames like any other *)
  let engine, net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let got = ref 0 in
  Portland.Host_agent.set_rx h1 (fun _ -> incr got);
  ignore net;
  (* hand-craft a tagged frame from h0's NIC *)
  let pkt =
    Ipv4_pkt.udp ~src:(Portland.Host_agent.ip h0) ~dst:(Portland.Host_agent.ip h1)
      (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ())
  in
  let frame =
    Eth.make ~vlan:7 ~dst:(Portland.Host_agent.amac h1) ~src:(Portland.Host_agent.amac h0)
      (Eth.Ipv4 pkt)
  in
  Switchfab.Net.transmit net ~node:(Portland.Host_agent.device_id h0) ~port:0 frame;
  Testutil.run_ms engine 10;
  Testutil.check_int "delivered despite tag" 1 !got

let () =
  Alcotest.run "baselines"
    [ ( "mac table",
        [ Alcotest.test_case "learn & lookup" `Quick test_mac_table_learn_lookup;
          Alcotest.test_case "aging" `Quick test_mac_table_aging;
          Alcotest.test_case "flush" `Quick test_mac_table_flush_port ] );
      ( "spanning tree",
        [ Alcotest.test_case "ring blocks one port" `Quick test_stp_ring_blocks_one;
          Alcotest.test_case "convergence predicate" `Quick test_stp_converged_predicate ] );
      ( "learning switch",
        [ Alcotest.test_case "unicast after learning" `Quick test_learning_unicast_after_flood;
          Alcotest.test_case "broadcast storm without stp" `Quick
            test_broadcast_storm_without_stp;
          Alcotest.test_case "no storm with stp" `Quick test_no_storm_with_stp;
          Alcotest.test_case "fat-tree connectivity" `Quick test_ethernet_fabric_connectivity ] );
      ( "vlan fabric",
        [ Alcotest.test_case "same-pod connectivity" `Quick test_vlan_same_pod_connectivity;
          Alcotest.test_case "cross-VLAN isolation" `Quick test_vlan_isolation;
          Alcotest.test_case "tags on trunks" `Quick test_vlan_tags_on_trunks;
          Alcotest.test_case "migration scoped to VLAN" `Quick test_vlan_migration_scope;
          Alcotest.test_case "configuration burden" `Quick test_vlan_config_burden;
          Alcotest.test_case "classic mode ignores tags" `Quick test_vlan_unaware_ignores_tags ] );
      ( "l3 fabric",
        [ Alcotest.test_case "connectivity" `Quick test_l3_connectivity;
          Alcotest.test_case "migration breaks addressing" `Quick test_l3_migration_breaks;
          Alcotest.test_case "configuration burden" `Quick test_l3_config_burden;
          Alcotest.test_case "local ecmp repair" `Quick test_l3_local_ecmp_repair ] ) ]
