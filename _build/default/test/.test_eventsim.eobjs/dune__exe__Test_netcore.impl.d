test/test_netcore.ml: Alcotest Arp Bpdu Bytes Char Codec Eth Icmp Igmp Ipv4_addr Ipv4_pkt Ldp_msg List Mac_addr Netcore Pcap QCheck2 Result String Tcp_seg Testutil Udp
