test/test_harness.ml: Alcotest Buffer Eventsim Format Harness List String Testutil
