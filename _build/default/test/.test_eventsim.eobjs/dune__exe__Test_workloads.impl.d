test/test_workloads.ml: Alcotest Array Eventsim Failure_plan List QCheck2 Testutil Topology Traffic Workloads
