test/test_switchfab.mli:
