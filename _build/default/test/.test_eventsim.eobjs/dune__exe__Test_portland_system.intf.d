test/test_portland_system.mli:
