test/test_topology.ml: Alcotest Array Fattree List Multirooted Option Paths QCheck2 Result String Testutil Topo Topology
