test/test_portland_units.mli:
