test/test_switchfab.ml: Alcotest Arp Array Bytes Capture Char Dataplane Eth Eventsim Flow_table Format Ipv4_addr Ipv4_pkt List Mac_addr Net Netcore Option String Switchfab Testutil Topology Udp
