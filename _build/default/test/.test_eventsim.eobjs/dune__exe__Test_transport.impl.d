test/test_transport.ml: Alcotest Array Baselines Engine Eventsim Icmp Ipv4_addr Ipv4_pkt List Mac_addr Netcore Option Portland Stats Switchfab Tcp_seg Testutil Time Topology Transport Udp
