test/testutil.ml: Alcotest Baselines Eventsim List Netcore Portland Printf QCheck2 QCheck_alcotest Switchfab Topology
