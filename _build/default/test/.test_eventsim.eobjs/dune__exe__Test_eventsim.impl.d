test/test_eventsim.ml: Alcotest Array Engine Eventsim Heap Lazy List Prng QCheck2 Stats Testutil Time Timer Trace
