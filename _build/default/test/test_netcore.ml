open Netcore

(* ---------------- Mac_addr ---------------- *)

let test_mac_string_roundtrip () =
  let s = "aa:bb:cc:dd:ee:ff" in
  Testutil.check_string "roundtrip" s (Mac_addr.to_string (Mac_addr.of_string_exn s));
  Testutil.check_string "zero-padded" "00:00:00:00:00:01"
    (Mac_addr.to_string (Mac_addr.of_int 1))

let test_mac_invalid () =
  Testutil.check_bool "too few parts" true (Result.is_error (Mac_addr.of_string "aa:bb"));
  Testutil.check_bool "garbage" true (Result.is_error (Mac_addr.of_string "zz:bb:cc:dd:ee:ff"));
  (try
     ignore (Mac_addr.of_int (-1));
     Alcotest.fail "negative accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Mac_addr.of_int (1 lsl 48));
    Alcotest.fail "overflow accepted"
  with Invalid_argument _ -> ()

let test_mac_flags () =
  Testutil.check_bool "broadcast" true (Mac_addr.is_broadcast Mac_addr.broadcast);
  Testutil.check_bool "broadcast is multicast" true (Mac_addr.is_multicast Mac_addr.broadcast);
  Testutil.check_bool "unicast" false
    (Mac_addr.is_multicast (Mac_addr.of_string_exn "02:00:00:00:00:01"));
  let m = Mac_addr.multicast_of_group 0x123456 in
  Testutil.check_bool "group mac multicast" true (Mac_addr.is_multicast m);
  Testutil.check_string "group mac prefix" "01:00:5e:12:34:56" (Mac_addr.to_string m)

let prop_mac_bytes_roundtrip =
  Testutil.prop "mac bytes roundtrip"
    QCheck2.Gen.(int_bound ((1 lsl 30) - 1))
    (fun v ->
      let mac = Mac_addr.of_int v in
      Mac_addr.equal mac (Mac_addr.of_bytes_exn (Mac_addr.to_bytes mac)))

(* ---------------- Ipv4_addr ---------------- *)

let test_ip_basics () =
  let ip = Ipv4_addr.of_octets 10 1 2 3 in
  Testutil.check_string "to_string" "10.1.2.3" (Ipv4_addr.to_string ip);
  Testutil.check_bool "of_string" true
    (Ipv4_addr.equal ip (Ipv4_addr.of_string_exn "10.1.2.3"));
  Testutil.check_bool "bad string" true (Result.is_error (Ipv4_addr.of_string "10.1.2"));
  Testutil.check_bool "bad octet" true (Result.is_error (Ipv4_addr.of_string "10.1.2.300"))

let test_ip_multicast () =
  let g = Ipv4_addr.of_string_exn "230.1.2.3" in
  Testutil.check_bool "is multicast" true (Ipv4_addr.is_multicast g);
  Testutil.check_bool "unicast" false (Ipv4_addr.is_multicast (Ipv4_addr.of_octets 10 0 0 1));
  let group = Ipv4_addr.multicast_group g in
  Testutil.check_bool "group roundtrip" true
    (Ipv4_addr.equal g (Ipv4_addr.of_multicast_group group))

(* ---------------- ARP ---------------- *)

let test_arp () =
  let mac = Mac_addr.of_int 0x020000000001 in
  let ip = Ipv4_addr.of_octets 10 0 0 2 in
  let target = Ipv4_addr.of_octets 10 0 0 3 in
  let req = Arp.request ~sender_mac:mac ~sender_ip:ip ~target_ip:target in
  Testutil.check_bool "request not gratuitous" false (Arp.is_gratuitous req);
  Testutil.check_bool "target mac zero" true (Mac_addr.equal req.Arp.target_mac Mac_addr.zero);
  let g = Arp.gratuitous ~mac ~ip in
  Testutil.check_bool "gratuitous" true (Arp.is_gratuitous g);
  Testutil.check_int "wire len" 28 Arp.wire_len

(* ---------------- UDP / TCP segments ---------------- *)

let test_udp_validation () =
  let u = Udp.make ~flow_id:1 ~app_seq:2 ~payload_len:100 () in
  Testutil.check_int "wire" 108 (Udp.wire_len u);
  (try
     ignore (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:4 ());
     Alcotest.fail "tiny payload accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Udp.make ~src_port:70000 ~flow_id:1 ~app_seq:0 ~payload_len:100 ());
    Alcotest.fail "bad port accepted"
  with Invalid_argument _ -> ()

let test_tcp_seg () =
  let s = Tcp_seg.make ~seq:1000 ~ack_num:0 ~payload_len:1460 () in
  Testutil.check_int "wire" 1480 (Tcp_seg.wire_len s);
  Testutil.check_bool "default ack flag" true s.Tcp_seg.flags.Tcp_seg.ack;
  try
    ignore (Tcp_seg.make ~seq:(-1) ~ack_num:0 ~payload_len:0 ());
    Alcotest.fail "negative seq accepted"
  with Invalid_argument _ -> ()

let test_igmp () =
  let g = Ipv4_addr.of_string_exn "231.0.0.5" in
  let j = Igmp.join g in
  Testutil.check_bool "join op" true (j.Igmp.op = Igmp.Join);
  try
    ignore (Igmp.join (Ipv4_addr.of_octets 10 0 0 1));
    Alcotest.fail "unicast group accepted"
  with Invalid_argument _ -> ()

(* ---------------- IPv4 packets ---------------- *)

let test_ipv4_pkt () =
  let src = Ipv4_addr.of_octets 10 0 0 2 and dst = Ipv4_addr.of_octets 10 1 0 2 in
  let u = Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:100 () in
  let p = Ipv4_pkt.udp ~src ~dst u in
  Testutil.check_int "proto" 17 (Ipv4_pkt.proto_number p.Ipv4_pkt.payload);
  Testutil.check_int "wire" (20 + 108) (Ipv4_pkt.wire_len p);
  Testutil.check_int "default ttl" 64 p.Ipv4_pkt.ttl

let test_ttl_decrement () =
  let src = Ipv4_addr.of_octets 10 0 0 2 and dst = Ipv4_addr.of_octets 10 1 0 2 in
  let p = Ipv4_pkt.make ~ttl:2 ~src ~dst (Ipv4_pkt.Raw { proto = 99; len = 10 }) in
  match Ipv4_pkt.decrement_ttl p with
  | Some p1 ->
    Testutil.check_int "ttl 1" 1 p1.Ipv4_pkt.ttl;
    Testutil.check_bool "drops at 1" true (Ipv4_pkt.decrement_ttl p1 = None)
  | None -> Alcotest.fail "ttl 2 dropped"

(* ---------------- Ethernet ---------------- *)

let test_eth_padding () =
  let dst = Mac_addr.of_int 1 and src = Mac_addr.of_int 2 in
  let tiny = Eth.make ~dst ~src (Eth.Raw { ethertype = 0x9999; len = 1 }) in
  Testutil.check_int "padded to minimum" Eth.min_frame_len (Eth.wire_len tiny);
  let u = Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:1000 () in
  let big =
    Eth.make ~dst ~src
      (Eth.Ipv4 (Ipv4_pkt.udp ~src:(Ipv4_addr.of_int 1) ~dst:(Ipv4_addr.of_int 2) u))
  in
  Testutil.check_int "big frame" (14 + 20 + 1008 + 4) (Eth.wire_len big)

let test_eth_ethertype () =
  let dst = Mac_addr.of_int 1 and src = Mac_addr.of_int 2 in
  let mk payload = Eth.ethertype (Eth.make ~dst ~src payload).Eth.payload in
  Testutil.check_int "arp" 0x0806
    (mk (Eth.Arp (Arp.gratuitous ~mac:src ~ip:(Ipv4_addr.of_int 5))));
  Testutil.check_int "ldp" 0x88B5 (mk (Eth.Ldp (Ldp_msg.initial ~switch_id:1 ~out_port:0)));
  Testutil.check_int "raw" 0x1234 (mk (Eth.Raw { ethertype = 0x1234; len = 0 }))

let test_bpdu_better () =
  let b ~root ~cost ~bridge ~port =
    { Bpdu.root_id = root; root_cost = cost; bridge_id = bridge; port }
  in
  Testutil.check_bool "lower root wins" true
    (Bpdu.better (b ~root:1 ~cost:9 ~bridge:9 ~port:9) (b ~root:2 ~cost:0 ~bridge:0 ~port:0));
  Testutil.check_bool "lower cost wins" true
    (Bpdu.better (b ~root:1 ~cost:1 ~bridge:9 ~port:9) (b ~root:1 ~cost:2 ~bridge:0 ~port:0));
  Testutil.check_bool "tie is not better" false
    (Bpdu.better (b ~root:1 ~cost:1 ~bridge:1 ~port:1) (b ~root:1 ~cost:1 ~bridge:1 ~port:1))

(* ---------------- Codec ---------------- *)

let roundtrip frame =
  match Codec.decode (Codec.encode frame) with
  | Ok f -> f
  | Error e -> Alcotest.failf "decode failed: %s" e

let frame_eq name a b = Testutil.check_bool name true (Eth.equal a b)

let dst = Mac_addr.of_string_exn "02:00:00:00:00:aa"
let src = Mac_addr.of_string_exn "02:00:00:00:00:bb"

let test_codec_arp () =
  let a =
    Arp.reply
      ~sender_mac:(Mac_addr.of_int 0x112233445566)
      ~sender_ip:(Ipv4_addr.of_octets 10 1 2 3)
      ~target_mac:(Mac_addr.of_int 0x0200AB00CD01)
      ~target_ip:(Ipv4_addr.of_octets 10 3 2 1)
  in
  let f = Eth.make ~dst ~src (Eth.Arp a) in
  frame_eq "arp roundtrip" f (roundtrip f)

let test_codec_udp () =
  let u =
    Udp.make ~src_port:1234 ~dst_port:80 ~flow_id:77 ~app_seq:123456789 ~payload_len:200 ()
  in
  let p =
    Ipv4_pkt.udp ~src:(Ipv4_addr.of_octets 10 0 0 2) ~dst:(Ipv4_addr.of_octets 10 1 1 2) u
  in
  let f = Eth.make ~dst ~src (Eth.Ipv4 p) in
  frame_eq "udp roundtrip" f (roundtrip f)

let test_codec_tcp () =
  let s =
    Tcp_seg.make ~src_port:5001 ~dst_port:5002
      ~flags:{ Tcp_seg.syn = true; ack = true; fin = false; rst = false }
      ~window:4096 ~seq:99999 ~ack_num:1234 ~payload_len:33 ()
  in
  let p =
    Ipv4_pkt.tcp ~src:(Ipv4_addr.of_octets 10 0 0 2) ~dst:(Ipv4_addr.of_octets 10 1 1 2) s
  in
  let f = Eth.make ~dst ~src (Eth.Ipv4 p) in
  frame_eq "tcp roundtrip" f (roundtrip f)

let test_codec_icmp () =
  let req = Icmp.echo_request ~payload_len:56 ~ident:77 ~seq:3 () in
  let f =
    Eth.make ~dst ~src
      (Eth.Ipv4
         (Ipv4_pkt.icmp ~src:(Ipv4_addr.of_octets 10 0 0 2) ~dst:(Ipv4_addr.of_octets 10 1 0 2)
            req))
  in
  frame_eq "icmp request roundtrip" f (roundtrip f);
  let rep = Icmp.reply_to req in
  let f2 =
    Eth.make ~dst ~src
      (Eth.Ipv4
         (Ipv4_pkt.icmp ~src:(Ipv4_addr.of_octets 10 1 0 2) ~dst:(Ipv4_addr.of_octets 10 0 0 2)
            rep))
  in
  frame_eq "icmp reply roundtrip" f2 (roundtrip f2);
  (try
     ignore (Icmp.reply_to rep);
     Alcotest.fail "reply_to reply accepted"
   with Invalid_argument _ -> ())

let test_codec_vlan_tag () =
  let f =
    Eth.make ~vlan:42 ~dst ~src
      (Eth.Ipv4
         (Ipv4_pkt.udp ~src:(Ipv4_addr.of_octets 10 0 0 2) ~dst:(Ipv4_addr.of_octets 10 1 0 2)
            (Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:100 ())))
  in
  frame_eq "tagged roundtrip" f (roundtrip f);
  Testutil.check_int "tag adds 4 bytes" (Eth.wire_len (Eth.with_vlan f None) + 4)
    (Eth.wire_len f);
  (* the TPID is on the wire where 802.1Q puts it *)
  let b = Codec.encode f in
  Testutil.check_int "tpid" 0x81 (Char.code (Bytes.get b 12));
  Testutil.check_int "tpid lo" 0x00 (Char.code (Bytes.get b 13));
  Testutil.check_int "vid" 42 (Char.code (Bytes.get b 15));
  try
    ignore (Eth.make ~vlan:5000 ~dst ~src (Eth.Raw { ethertype = 1; len = 0 }));
    Alcotest.fail "vid 5000 accepted"
  with Invalid_argument _ -> ()

let test_codec_igmp () =
  let m = Igmp.leave (Ipv4_addr.of_string_exn "239.1.2.3") in
  let f =
    Eth.make ~dst ~src (Eth.Ipv4 (Ipv4_pkt.igmp ~src:(Ipv4_addr.of_octets 10 0 0 2) m))
  in
  frame_eq "igmp roundtrip" f (roundtrip f)

let test_codec_ldp () =
  let l =
    { Ldp_msg.switch_id = 4242;
      level = Some Ldp_msg.Aggregation;
      pod = Some 3;
      position = Some 1;
      dir = Ldp_msg.Up;
      out_port = 7 }
  in
  let f = Eth.make ~dst ~src (Eth.Ldp l) in
  frame_eq "ldp roundtrip" f (roundtrip f);
  let unknowns = Ldp_msg.initial ~switch_id:1 ~out_port:0 in
  let f2 = Eth.make ~dst ~src (Eth.Ldp unknowns) in
  frame_eq "ldp unknowns roundtrip" f2 (roundtrip f2)

let test_codec_bpdu () =
  let b = { Bpdu.root_id = 1; root_cost = 2; bridge_id = 3; port = 4 } in
  let f = Eth.make ~dst ~src (Eth.Bpdu b) in
  frame_eq "bpdu roundtrip" f (roundtrip f)

let test_codec_raw () =
  let f = Eth.make ~dst ~src (Eth.Raw { ethertype = 0x9000; len = 80 }) in
  frame_eq "raw roundtrip" f (roundtrip f)

let test_codec_fcs_corruption () =
  let f = Eth.make ~dst ~src (Eth.Raw { ethertype = 0x9000; len = 80 }) in
  let bytes = Codec.encode f in
  Bytes.set bytes 20 (Char.chr (Char.code (Bytes.get bytes 20) lxor 0xff));
  Testutil.check_bool "fcs catches corruption" true (Result.is_error (Codec.decode bytes))

let test_codec_truncated () =
  Testutil.check_bool "short buffer rejected" true
    (Result.is_error (Codec.decode (Bytes.create 10)))

let test_crc32_vector () =
  (* the classic CRC-32 check value for "123456789" *)
  let b = Bytes.of_string "123456789" in
  Testutil.check_int "crc32" 0xCBF43926 (Codec.crc32 b 0 9)

let test_ipv4_checksum_self () =
  let f =
    Eth.make ~dst ~src
      (Eth.Ipv4
         (Ipv4_pkt.make ~src:(Ipv4_addr.of_octets 1 2 3 4) ~dst:(Ipv4_addr.of_octets 5 6 7 8)
            (Ipv4_pkt.Raw { proto = 50; len = 8 })))
  in
  let bytes = Codec.encode f in
  (* IPv4 header starts after the 14-byte Ethernet header; a correct
     header checksums to zero *)
  Testutil.check_int "header sums to zero" 0 (Codec.ipv4_checksum bytes 14 20)

let gen_frame : Eth.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let mac = map (fun v -> Mac_addr.of_int v) (int_bound ((1 lsl 30) - 1)) in
  let ip = map (fun v -> Ipv4_addr.of_int v) (int_bound 0xFFFFFF) in
  let arp =
    let* sender_mac = mac in
    let* sender_ip = ip in
    let* target_ip = ip in
    return (Eth.Arp (Arp.request ~sender_mac ~sender_ip ~target_ip))
  in
  let udp =
    let* s = ip in
    let* d = ip in
    let* fl = int_bound 0xFFFF in
    let* seq = int_bound 1_000_000 in
    let* len = int_range 12 1400 in
    return
      (Eth.Ipv4 (Ipv4_pkt.udp ~src:s ~dst:d (Udp.make ~flow_id:fl ~app_seq:seq ~payload_len:len ())))
  in
  let tcp =
    let* s = ip in
    let* d = ip in
    let* seq = int_bound 0xFFFFFF in
    let* ack = int_bound 0xFFFFFF in
    let* len = int_bound 1400 in
    return
      (Eth.Ipv4 (Ipv4_pkt.tcp ~src:s ~dst:d (Tcp_seg.make ~seq ~ack_num:ack ~payload_len:len ())))
  in
  let ldp =
    let* swid = int_bound 0xFFFF in
    let* port = int_bound 63 in
    return (Eth.Ldp (Ldp_msg.initial ~switch_id:swid ~out_port:port))
  in
  let* payload = oneof [ arp; udp; tcp; ldp ] in
  let* d = mac in
  let* s = mac in
  return (Eth.make ~dst:d ~src:s payload)

let prop_codec_roundtrip =
  Testutil.prop "codec roundtrip (random frames)" ~count:300 gen_frame (fun f ->
      match Codec.decode (Codec.encode f) with
      | Ok f' -> Eth.equal f f'
      | Error _ -> false)

let prop_codec_length =
  Testutil.prop "encoded length = wire_len" ~count:300 gen_frame (fun f ->
      Bytes.length (Codec.encode f) = Eth.wire_len f)

let prop_decode_never_raises =
  (* a decoder fed hostile bytes must fail cleanly, never crash *)
  Testutil.prop "decode is total on random bytes" ~count:500
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 255))
    (fun byte_list ->
      let b = Bytes.of_string (String.init (List.length byte_list)
                                 (fun i -> Char.chr (List.nth byte_list i))) in
      match Codec.decode b with Ok _ | Error _ -> true)

let prop_decode_bitflip_never_raises =
  (* corrupting a valid frame anywhere must also fail cleanly (usually an
     FCS error) or decode to something *)
  Testutil.prop "decode survives bit flips" ~count:300
    QCheck2.Gen.(pair gen_frame (pair (int_bound 10_000) (int_bound 7)))
    (fun (f, (pos, bit)) ->
      let b = Codec.encode f in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Codec.decode b with Ok _ | Error _ -> true)

(* ---------------- Pcap ---------------- *)

let u32le b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let test_pcap_header () =
  let p = Pcap.create () in
  let b = Pcap.contents p in
  Testutil.check_int "header only" 24 (Bytes.length b);
  Testutil.check_int "nanosecond magic" 0xa1b23c4d (u32le b 0);
  Testutil.check_int "version major" 2 (u32le b 4 land 0xffff);
  Testutil.check_int "snaplen" 65535 (u32le b 16);
  Testutil.check_int "linktype ethernet" 1 (u32le b 20)

let test_pcap_records_roundtrip () =
  let p = Pcap.create () in
  let f1 =
    Eth.make ~dst ~src (Eth.Arp (Arp.gratuitous ~mac:src ~ip:(Ipv4_addr.of_octets 10 0 0 2)))
  in
  let f2 =
    Eth.make ~dst ~src
      (Eth.Ipv4
         (Ipv4_pkt.udp ~src:(Ipv4_addr.of_octets 10 0 0 2) ~dst:(Ipv4_addr.of_octets 10 1 0 2)
            (Udp.make ~flow_id:1 ~app_seq:7 ~payload_len:100 ())))
  in
  Pcap.add_frame p ~time_ns:1_500_000_123 f1;
  Pcap.add_frame p ~time_ns:2_000_000_456 f2;
  Testutil.check_int "count" 2 (Pcap.frame_count p);
  let b = Pcap.contents p in
  (* first record header *)
  Testutil.check_int "ts_sec" 1 (u32le b 24);
  Testutil.check_int "ts_nsec" 500_000_123 (u32le b 28);
  let len1 = u32le b 32 in
  Testutil.check_int "incl = orig" len1 (u32le b 36);
  Testutil.check_int "len is wire len" (Eth.wire_len f1) len1;
  (* the embedded bytes decode back to the original frame *)
  let frame_bytes = Bytes.sub b 40 len1 in
  (match Codec.decode frame_bytes with
   | Ok f -> Testutil.check_bool "frame 1 roundtrip" true (Eth.equal f f1)
   | Error e -> Alcotest.fail e);
  (* second record follows immediately *)
  let off2 = 40 + len1 in
  Testutil.check_int "ts_sec 2" 2 (u32le b off2);
  let len2 = u32le b (off2 + 8) in
  match Codec.decode (Bytes.sub b (off2 + 16) len2) with
  | Ok f -> Testutil.check_bool "frame 2 roundtrip" true (Eth.equal f f2)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "netcore"
    [ ( "mac",
        [ Alcotest.test_case "string roundtrip" `Quick test_mac_string_roundtrip;
          Alcotest.test_case "invalid inputs" `Quick test_mac_invalid;
          Alcotest.test_case "broadcast & multicast" `Quick test_mac_flags;
          prop_mac_bytes_roundtrip ] );
      ( "ipv4",
        [ Alcotest.test_case "basics" `Quick test_ip_basics;
          Alcotest.test_case "multicast" `Quick test_ip_multicast ] );
      ("arp", [ Alcotest.test_case "construction" `Quick test_arp ]);
      ( "transport segments",
        [ Alcotest.test_case "udp validation" `Quick test_udp_validation;
          Alcotest.test_case "tcp segment" `Quick test_tcp_seg;
          Alcotest.test_case "igmp" `Quick test_igmp ] );
      ( "ipv4 packet",
        [ Alcotest.test_case "construction" `Quick test_ipv4_pkt;
          Alcotest.test_case "ttl decrement" `Quick test_ttl_decrement ] );
      ( "ethernet",
        [ Alcotest.test_case "padding to minimum" `Quick test_eth_padding;
          Alcotest.test_case "ethertypes" `Quick test_eth_ethertype;
          Alcotest.test_case "bpdu ordering" `Quick test_bpdu_better ] );
      ( "codec",
        [ Alcotest.test_case "arp" `Quick test_codec_arp;
          Alcotest.test_case "udp" `Quick test_codec_udp;
          Alcotest.test_case "tcp" `Quick test_codec_tcp;
          Alcotest.test_case "icmp" `Quick test_codec_icmp;
          Alcotest.test_case "802.1q tag" `Quick test_codec_vlan_tag;
          Alcotest.test_case "igmp" `Quick test_codec_igmp;
          Alcotest.test_case "ldp" `Quick test_codec_ldp;
          Alcotest.test_case "bpdu" `Quick test_codec_bpdu;
          Alcotest.test_case "raw" `Quick test_codec_raw;
          Alcotest.test_case "fcs corruption" `Quick test_codec_fcs_corruption;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "crc32 known vector" `Quick test_crc32_vector;
          Alcotest.test_case "ipv4 checksum" `Quick test_ipv4_checksum_self;
          prop_codec_roundtrip;
          prop_codec_length;
          prop_decode_never_raises;
          prop_decode_bitflip_never_raises ] );
      ( "pcap",
        [ Alcotest.test_case "global header" `Quick test_pcap_header;
          Alcotest.test_case "records roundtrip" `Quick test_pcap_records_roundtrip ] ) ]
