open Switchfab
open Netcore
module FT = Flow_table

let mac i = Mac_addr.of_int i
let ip i = Ipv4_addr.of_int i

let udp_frame ?(dst = mac 0x111111) ?(src = mac 0x222222) ?(sport = 1000) ?(dport = 2000)
    ?(ip_src = ip 1) ?(ip_dst = ip 2) () =
  let u = Udp.make ~src_port:sport ~dst_port:dport ~flow_id:1 ~app_seq:0 ~payload_len:100 () in
  Eth.make ~dst ~src (Eth.Ipv4 (Ipv4_pkt.udp ~src:ip_src ~dst:ip_dst u))

(* ---------------- Flow_table ---------------- *)

let test_ft_install_lookup () =
  let t = FT.create () in
  FT.install t
    { FT.name = "a"; priority = 10; mtch = FT.match_dst_prefix ~value:0x111111 ~mask:0xFFFFFF;
      actions = [ FT.Output 1 ] };
  Testutil.check_int "size" 1 (FT.size t);
  (match FT.lookup t (udp_frame ()) with
   | Some e -> Testutil.check_string "hit" "a" e.FT.name
   | None -> Alcotest.fail "expected match");
  Testutil.check_bool "miss on other dst" true
    (FT.lookup t (udp_frame ~dst:(mac 0x999999) ()) = None)

let test_ft_priority () =
  let t = FT.create () in
  FT.install t { FT.name = "low"; priority = 1; mtch = FT.match_any; actions = [ FT.Drop ] };
  FT.install t
    { FT.name = "high"; priority = 9; mtch = FT.match_any; actions = [ FT.Output 0 ] };
  (match FT.lookup t (udp_frame ()) with
   | Some e -> Testutil.check_string "high wins" "high" e.FT.name
   | None -> Alcotest.fail "no match");
  (* equal priority: later install wins *)
  FT.install t { FT.name = "newer"; priority = 9; mtch = FT.match_any; actions = [ FT.Drop ] };
  match FT.lookup t (udp_frame ()) with
  | Some e -> Testutil.check_string "later wins ties" "newer" e.FT.name
  | None -> Alcotest.fail "no match"

let test_ft_replace_remove () =
  let t = FT.create () in
  FT.install t { FT.name = "x"; priority = 1; mtch = FT.match_any; actions = [ FT.Drop ] };
  FT.install t { FT.name = "x"; priority = 2; mtch = FT.match_any; actions = [ FT.Output 3 ] };
  Testutil.check_int "replaced not duplicated" 1 (FT.size t);
  (match FT.lookup t (udp_frame ()) with
   | Some e -> Testutil.check_int "new actions" 2 e.FT.priority
   | None -> Alcotest.fail "no match");
  FT.remove t "x";
  Testutil.check_int "removed" 0 (FT.size t);
  FT.remove t "x" (* idempotent *)

let test_ft_field_matching () =
  let m_et = { FT.match_any with FT.ethertype = Some 0x0800 } in
  Testutil.check_bool "ethertype match" true (FT.matches m_et (udp_frame ()));
  let arp = Eth.make ~dst:(mac 1) ~src:(mac 2)
      (Eth.Arp (Arp.request ~sender_mac:(mac 2) ~sender_ip:(ip 1) ~target_ip:(ip 2)))
  in
  Testutil.check_bool "ethertype mismatch" false (FT.matches m_et arp);
  let m_proto = { FT.match_any with FT.ip_proto = Some 17 } in
  Testutil.check_bool "proto udp" true (FT.matches m_proto (udp_frame ()));
  Testutil.check_bool "proto on arp" false (FT.matches m_proto arp);
  let m_ipdst = { FT.match_any with FT.ip_dst = Some { FT.value = 2; mask = 0xFFFFFFFF } } in
  Testutil.check_bool "ip dst" true (FT.matches m_ipdst (udp_frame ()));
  Testutil.check_bool "ip dst other" false (FT.matches m_ipdst (udp_frame ~ip_dst:(ip 9) ()));
  let m_src = { FT.match_any with FT.src_mac = Some { FT.value = 0x222222; mask = 0xFFFFFF } } in
  Testutil.check_bool "src mac" true (FT.matches m_src (udp_frame ()))

let test_ft_mask_semantics () =
  (* pod-style prefix: top 16 bits of 48 *)
  let m = FT.match_dst_prefix ~value:(3 lsl 32) ~mask:0xFFFF00000000 in
  Testutil.check_bool "prefix hit" true
    (FT.matches m (udp_frame ~dst:(mac ((3 lsl 32) lor 0xABCDEF)) ()));
  Testutil.check_bool "prefix miss" false
    (FT.matches m (udp_frame ~dst:(mac ((4 lsl 32) lor 0xABCDEF)) ()))

let test_ft_groups () =
  let t = FT.create () in
  FT.set_group t 7 [| 2; 4; 6 |];
  (match FT.group_members t 7 with
   | Some m -> Testutil.check_int "members" 3 (Array.length m)
   | None -> Alcotest.fail "group missing");
  Testutil.check_bool "unknown group" true (FT.group_members t 8 = None);
  (* deterministic selection of a member *)
  let a = FT.select_member t ~group:7 ~hash:12345 in
  Testutil.check_bool "deterministic" true (a = FT.select_member t ~group:7 ~hash:12345);
  Testutil.check_bool "selects a member" true
    (match a with Some p -> p = 2 || p = 4 || p = 6 | None -> false);
  (* a different salt may change the choice but still picks a member *)
  FT.set_hash_salt t 99;
  Testutil.check_bool "salted still a member" true
    (match FT.select_member t ~group:7 ~hash:12345 with
     | Some p -> p = 2 || p = 4 || p = 6
     | None -> false);
  FT.set_hash_salt t 0;
  FT.set_group t 7 [||];
  Testutil.check_bool "empty group selects none" true (FT.select_member t ~group:7 ~hash:5 = None)

let test_ft_hit_counters_and_pp () =
  let t = FT.create () in
  FT.install t
    { FT.name = "a"; priority = 10; mtch = FT.match_dst_prefix ~value:0x111111 ~mask:0xFFFFFF;
      actions = [ FT.Output 1 ] };
  FT.install t { FT.name = "fall"; priority = 1; mtch = FT.match_any; actions = [ FT.Drop ] };
  Testutil.check_int "no hits yet" 0 (FT.hit_count t "a");
  ignore (FT.lookup t (udp_frame ()));
  ignore (FT.lookup t (udp_frame ()));
  ignore (FT.lookup t (udp_frame ~dst:(mac 0x999999) ()));
  Testutil.check_int "a hits" 2 (FT.hit_count t "a");
  Testutil.check_int "fallthrough hits" 1 (FT.hit_count t "fall");
  Testutil.check_int "unknown name" 0 (FT.hit_count t "nope");
  let dump = Format.asprintf "%a" FT.pp t in
  Testutil.check_bool "dump has entry" true
    (let needle = "hits=2" in
     let nl = String.length needle and hl = String.length dump in
     let rec go i = i + nl <= hl && (String.sub dump i nl = needle || go (i + 1)) in
     go 0);
  FT.remove t "a";
  Testutil.check_int "hits reset on remove" 0 (FT.hit_count t "a")

let test_flow_hash () =
  let f1 = udp_frame ~sport:1000 () and f2 = udp_frame ~sport:1000 () in
  Testutil.check_int "stable" (FT.flow_hash f1) (FT.flow_hash f2);
  let f3 = udp_frame ~sport:1001 () in
  Testutil.check_bool "port changes hash" true (FT.flow_hash f1 <> FT.flow_hash f3);
  Testutil.check_bool "non-negative" true (FT.flow_hash f1 >= 0)

let test_ft_clear_names () =
  let t = FT.create () in
  FT.install t { FT.name = "a"; priority = 2; mtch = FT.match_any; actions = [] };
  FT.install t { FT.name = "b"; priority = 1; mtch = FT.match_any; actions = [] };
  Alcotest.(check (list string)) "names by priority" [ "a"; "b" ] (FT.entry_names t);
  FT.clear t;
  Testutil.check_int "cleared" 0 (FT.size t)

(* ---------------- Net ---------------- *)

let three_node_net () =
  (* h0 -- sw -- h1, 1 Gb/s, 1 us *)
  let nodes =
    [ { Topology.Topo.id = 0; kind = Topology.Topo.Host; name = "h0"; nports = 1 };
      { Topology.Topo.id = 1; kind = Topology.Topo.Edge_switch; name = "sw"; nports = 2 };
      { Topology.Topo.id = 2; kind = Topology.Topo.Host; name = "h1"; nports = 1 } ]
  in
  let links =
    [ { Topology.Topo.a = { Topology.Topo.node = 0; port = 0 };
        b = { Topology.Topo.node = 1; port = 0 } };
      { Topology.Topo.a = { Topology.Topo.node = 1; port = 1 };
        b = { Topology.Topo.node = 2; port = 0 } } ]
  in
  let topo = Topology.Topo.create ~nodes ~links in
  let engine = Eventsim.Engine.create () in
  (engine, Net.create engine topo)

let test_net_delivery_timing () =
  let engine, net = three_node_net () in
  let arrived = ref (-1) in
  Net.set_handler (Net.device net 1) (fun _ _ -> arrived := Eventsim.Engine.now engine);
  let frame = udp_frame () in
  Net.transmit net ~node:0 ~port:0 frame;
  Eventsim.Engine.run engine;
  (* serialization at 1 Gb/s: wire_len*8 ns; prop delay 1 us *)
  let expect = (Eth.wire_len frame * 8) + 1_000 in
  Testutil.check_int "arrival time" expect !arrived

let test_net_fifo_backlog () =
  let engine, net = three_node_net () in
  let arrivals = ref [] in
  Net.set_handler (Net.device net 1) (fun _ f -> arrivals := (Eventsim.Engine.now engine, f) :: !arrivals);
  let f1 = udp_frame ~sport:1 () and f2 = udp_frame ~sport:2 () in
  Net.transmit net ~node:0 ~port:0 f1;
  Net.transmit net ~node:0 ~port:0 f2;
  Eventsim.Engine.run engine;
  match List.rev !arrivals with
  | [ (t1, _); (t2, _) ] ->
    let tx = Eth.wire_len f1 * 8 in
    Testutil.check_int "first" (tx + 1_000) t1;
    Testutil.check_int "second queued behind first" ((2 * tx) + 1_000) t2
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_net_queue_overflow () =
  let engine = Eventsim.Engine.create () in
  let nodes =
    [ { Topology.Topo.id = 0; kind = Topology.Topo.Host; name = "h0"; nports = 1 };
      { Topology.Topo.id = 1; kind = Topology.Topo.Host; name = "h1"; nports = 1 } ]
  in
  let links =
    [ { Topology.Topo.a = { Topology.Topo.node = 0; port = 0 };
        b = { Topology.Topo.node = 1; port = 0 } } ]
  in
  let topo = Topology.Topo.create ~nodes ~links in
  let params = { Net.default_link_params with Net.queue_cap_bytes = 300 } in
  let net = Net.create ~params engine topo in
  (* burst far beyond 3000 bytes of buffer *)
  for _ = 1 to 10 do
    Net.transmit net ~node:0 ~port:0 (udp_frame ())
  done;
  let c = Net.device_counters (Net.device net 0) in
  Testutil.check_bool "drops counted" true (c.Net.queue_drops > 0);
  Testutil.check_int "tx + drops = 10" 10 (c.Net.tx_frames + c.Net.queue_drops)

let test_net_link_failure () =
  let engine, net = three_node_net () in
  let got = ref 0 in
  Net.set_handler (Net.device net 1) (fun _ _ -> incr got);
  let l = Option.get (Net.link_between net 0 1) in
  Net.fail_link net l;
  Testutil.check_bool "down" false (Net.link_is_up l);
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "nothing delivered" 0 !got;
  Testutil.check_int "down drop counted" 1 (Net.device_counters (Net.device net 0)).Net.down_drops;
  Net.recover_link net l;
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "delivered after recovery" 1 !got

let test_net_inflight_loss_on_failure () =
  (* a frame already in flight is lost if the link dies before arrival *)
  let engine, net = three_node_net () in
  let got = ref 0 in
  Net.set_handler (Net.device net 1) (fun _ _ -> incr got);
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  let l = Option.get (Net.link_between net 0 1) in
  ignore (Eventsim.Engine.schedule engine ~delay:100 (fun () -> Net.fail_link net l));
  Eventsim.Engine.run engine;
  Testutil.check_int "in-flight frame lost" 0 !got

let test_net_device_failure () =
  let engine, net = three_node_net () in
  let got = ref 0 in
  Net.set_handler (Net.device net 1) (fun _ _ -> incr got);
  Net.fail_device net 1;
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "down device drops" 0 !got;
  Net.recover_device net 1;
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "up again" 1 !got

let test_net_unplug_plug () =
  let engine, net = three_node_net () in
  Testutil.check_bool "peer before" true (Net.peer_of net ~node:0 ~port:0 = Some (1, 0));
  Net.unplug net ~node:0 ~port:0;
  Testutil.check_bool "unplugged" true (Net.peer_of net ~node:0 ~port:0 = None);
  Testutil.check_bool "other end unplugged" true (Net.peer_of net ~node:1 ~port:0 = None);
  let _l = Net.plug net ~a:(0, 0) ~b:(1, 0) in
  Testutil.check_bool "replugged" true (Net.peer_of net ~node:0 ~port:0 = Some (1, 0));
  (try
     ignore (Net.plug net ~a:(0, 0) ~b:(1, 0));
     Alcotest.fail "double plug accepted"
   with Invalid_argument _ -> ());
  ignore engine

let test_net_flood () =
  let engine, net = three_node_net () in
  let got0 = ref 0 and got2 = ref 0 in
  Net.set_handler (Net.device net 0) (fun _ _ -> incr got0);
  Net.set_handler (Net.device net 2) (fun _ _ -> incr got2);
  (* flood from the switch, excluding port 0 *)
  Net.flood net ~node:1 ~except:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "excluded port silent" 0 !got0;
  Testutil.check_int "other port got it" 1 !got2

(* ---------------- Dataplane ---------------- *)

let test_dp_pipeline () =
  let engine, net = three_node_net () in
  let table = FT.create () in
  FT.install table
    { FT.name = "rewrite+out"; priority = 5;
      mtch = FT.match_dst_prefix ~value:0x111111 ~mask:0xFFFFFFFFFFFF;
      actions = [ FT.Set_dst_mac (mac 0xAAAAAA); FT.Output 1 ] };
  let _dp = Dataplane.attach net ~device:1 ~table ~miss:Dataplane.Miss_drop () in
  let seen = ref None in
  Net.set_handler (Net.device net 2) (fun _ f -> seen := Some f);
  Net.transmit net ~node:0 ~port:0 (udp_frame ~dst:(mac 0x111111) ());
  Eventsim.Engine.run engine;
  match !seen with
  | Some f -> Testutil.check_bool "dst rewritten" true (Mac_addr.equal f.Eth.dst (mac 0xAAAAAA))
  | None -> Alcotest.fail "frame not forwarded"

let test_dp_miss_policies () =
  let engine, net = three_node_net () in
  let table = FT.create () in
  let punted = ref 0 in
  let dp =
    Dataplane.attach net ~device:1 ~table ~miss:Dataplane.Miss_punt
      ~on_punt:(fun ~in_port:_ _ -> incr punted)
      ()
  in
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "punted" 1 !punted;
  let s = Dataplane.stats dp in
  Testutil.check_int "missed" 1 s.Dataplane.missed;
  Testutil.check_int "punts" 1 s.Dataplane.punts

let test_dp_miss_flood () =
  let engine, net = three_node_net () in
  let table = FT.create () in
  let _dp = Dataplane.attach net ~device:1 ~table ~miss:Dataplane.Miss_flood () in
  let got = ref 0 in
  Net.set_handler (Net.device net 2) (fun _ _ -> incr got);
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "flooded to other port" 1 !got

let test_dp_group_and_multi () =
  let engine, net = three_node_net () in
  let table = FT.create () in
  FT.set_group table 1 [| 1 |];
  FT.install table
    { FT.name = "grp"; priority = 5; mtch = { FT.match_any with FT.ethertype = Some 0x0800 };
      actions = [ FT.Group 1 ] };
  let _dp = Dataplane.attach net ~device:1 ~table ~miss:Dataplane.Miss_drop () in
  let got = ref 0 in
  Net.set_handler (Net.device net 2) (fun _ _ -> incr got);
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "group output" 1 !got;
  (* Multi excludes the ingress port *)
  FT.install table
    { FT.name = "multi"; priority = 9; mtch = FT.match_any; actions = [ FT.Multi [ 0; 1 ] ] };
  let back = ref 0 in
  Net.set_handler (Net.device net 0) (fun _ _ -> incr back);
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "multi forwarded on" 2 !got;
  Testutil.check_int "multi not bounced to ingress" 0 !back

let test_dp_inject_forward_out () =
  let engine, net = three_node_net () in
  let table = FT.create () in
  FT.install table
    { FT.name = "to2"; priority = 5; mtch = FT.match_any; actions = [ FT.Output 1 ] };
  let dp = Dataplane.attach net ~device:1 ~table ~miss:Dataplane.Miss_drop () in
  let got = ref 0 in
  Net.set_handler (Net.device net 2) (fun _ _ -> incr got);
  Dataplane.inject dp ~in_port:0 (udp_frame ());
  Dataplane.forward_out dp ~out_port:1 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "both delivered" 2 !got;
  Testutil.check_int "one matched" 1 (Dataplane.stats dp).Dataplane.matched

let test_net_random_loss () =
  let engine = Eventsim.Engine.create () in
  let nodes =
    [ { Topology.Topo.id = 0; kind = Topology.Topo.Host; name = "h0"; nports = 1 };
      { Topology.Topo.id = 1; kind = Topology.Topo.Host; name = "h1"; nports = 1 } ]
  in
  let links =
    [ { Topology.Topo.a = { Topology.Topo.node = 0; port = 0 };
        b = { Topology.Topo.node = 1; port = 0 } } ]
  in
  let topo = Topology.Topo.create ~nodes ~links in
  let params = { Net.default_link_params with Net.loss_rate = 0.3 } in
  let net = Net.create ~params ~loss_seed:3 engine topo in
  let got = ref 0 in
  Net.set_handler (Net.device net 1) (fun _ _ -> incr got);
  let n = 1000 in
  for i = 0 to n - 1 do
    ignore (Eventsim.Engine.schedule engine ~delay:(i * 100_000) (fun () ->
        Net.transmit net ~node:0 ~port:0 (udp_frame ())))
  done;
  Eventsim.Engine.run engine;
  let c = Net.device_counters (Net.device net 0) in
  Testutil.check_int "deliveries + losses = sent" n (!got + c.Net.loss_drops);
  (* ~30% loss, generously bounded *)
  Testutil.check_bool "loss near configured rate" true
    (c.Net.loss_drops > 200 && c.Net.loss_drops < 400);
  (* determinism: same seed, same losses *)
  let net2 = Net.create ~params ~loss_seed:3 engine topo in
  let got2 = ref 0 in
  Net.set_handler (Net.device net2 1) (fun _ _ -> incr got2);
  for _ = 0 to n - 1 do
    Net.transmit net2 ~node:0 ~port:0 (udp_frame ())
  done;
  Eventsim.Engine.run engine;
  Testutil.check_int "deterministic losses" c.Net.loss_drops
    (Net.device_counters (Net.device net2 0)).Net.loss_drops

(* ---------------- Capture ---------------- *)

let test_capture_taps () =
  let engine, net = three_node_net () in
  let cap = Capture.create net in
  Capture.tap cap ~device:1 ();
  (* default side: Rx only — the switch receives two frames *)
  Net.set_handler (Net.device net 1) (fun _ _ -> ());
  Net.transmit net ~node:0 ~port:0 (udp_frame ~sport:1 ());
  Net.transmit net ~node:0 ~port:0 (udp_frame ~sport:2 ());
  Eventsim.Engine.run engine;
  Testutil.check_int "two frames captured" 2 (Capture.frame_count cap);
  (* the capture is a valid pcap whose frames decode *)
  let bytes = Netcore.Pcap.contents (Capture.pcap cap) in
  Testutil.check_bool "pcap bigger than header" true (Bytes.length bytes > 24);
  let len1 =
    Char.code (Bytes.get bytes 32)
    lor (Char.code (Bytes.get bytes 33) lsl 8)
    lor (Char.code (Bytes.get bytes 34) lsl 16)
  in
  (match Netcore.Codec.decode (Bytes.sub bytes 40 len1) with
   | Ok f -> Testutil.check_bool "captured frame decodes" true
               (Netcore.Mac_addr.equal f.Eth.dst (mac 0x111111))
   | Error e -> Alcotest.fail e)

let test_capture_tx_side () =
  let engine, net = three_node_net () in
  let cap = Capture.create net in
  Capture.tap cap ~device:0 ~side:Capture.Tx_only ();
  Net.transmit net ~node:0 ~port:0 (udp_frame ());
  Eventsim.Engine.run engine;
  Testutil.check_int "tx captured at sender" 1 (Capture.frame_count cap)

let () =
  Alcotest.run "switchfab"
    [ ( "flow table",
        [ Alcotest.test_case "install & lookup" `Quick test_ft_install_lookup;
          Alcotest.test_case "priorities & ties" `Quick test_ft_priority;
          Alcotest.test_case "replace & remove" `Quick test_ft_replace_remove;
          Alcotest.test_case "field matching" `Quick test_ft_field_matching;
          Alcotest.test_case "mask semantics" `Quick test_ft_mask_semantics;
          Alcotest.test_case "select groups" `Quick test_ft_groups;
          Alcotest.test_case "hit counters & dump" `Quick test_ft_hit_counters_and_pp;
          Alcotest.test_case "flow hash" `Quick test_flow_hash;
          Alcotest.test_case "clear & names" `Quick test_ft_clear_names ] );
      ( "net",
        [ Alcotest.test_case "delivery timing" `Quick test_net_delivery_timing;
          Alcotest.test_case "FIFO backlog" `Quick test_net_fifo_backlog;
          Alcotest.test_case "queue overflow" `Quick test_net_queue_overflow;
          Alcotest.test_case "link failure & recovery" `Quick test_net_link_failure;
          Alcotest.test_case "in-flight loss" `Quick test_net_inflight_loss_on_failure;
          Alcotest.test_case "device failure" `Quick test_net_device_failure;
          Alcotest.test_case "unplug & plug" `Quick test_net_unplug_plug;
          Alcotest.test_case "flood" `Quick test_net_flood;
          Alcotest.test_case "random loss" `Quick test_net_random_loss ] );
      ( "dataplane",
        [ Alcotest.test_case "rewrite then output" `Quick test_dp_pipeline;
          Alcotest.test_case "miss punt" `Quick test_dp_miss_policies;
          Alcotest.test_case "miss flood" `Quick test_dp_miss_flood;
          Alcotest.test_case "groups & multi" `Quick test_dp_group_and_multi;
          Alcotest.test_case "inject & forward_out" `Quick test_dp_inject_forward_out ] );
      ( "capture",
        [ Alcotest.test_case "rx taps into pcap" `Quick test_capture_taps;
          Alcotest.test_case "tx side" `Quick test_capture_tx_side ] ) ]
