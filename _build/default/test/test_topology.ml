open Topology

let node id kind name nports = { Topo.id; kind; name; nports }
let link a ap b bp = { Topo.a = { Topo.node = a; port = ap }; b = { Topo.node = b; port = bp } }

(* ---------------- Topo ---------------- *)

let small_topo () =
  Topo.create
    ~nodes:
      [ node 0 Topo.Host "h0" 1;
        node 1 Topo.Edge_switch "e0" 2;
        node 2 Topo.Host "h1" 1 ]
    ~links:[ link 0 0 1 0; link 2 0 1 1 ]

let test_topo_basic () =
  let t = small_topo () in
  Testutil.check_int "nodes" 3 (Topo.node_count t);
  Testutil.check_int "links" 2 (Topo.link_count t);
  Testutil.check_int "degree switch" 2 (Topo.degree t 1);
  Testutil.check_int "degree host" 1 (Topo.degree t 0);
  Testutil.check_bool "connected" true (Topo.is_connected t);
  (match Topo.find_by_name t "e0" with
   | Some n -> Testutil.check_int "by name" 1 n.Topo.id
   | None -> Alcotest.fail "name lookup");
  Testutil.check_bool "absent name" true (Topo.find_by_name t "nope" = None)

let test_topo_peer () =
  let t = small_topo () in
  (match Topo.peer t ~node:0 ~port:0 with
   | Some e ->
     Testutil.check_int "peer node" 1 e.Topo.node;
     Testutil.check_int "peer port" 0 e.Topo.port
   | None -> Alcotest.fail "no peer");
  (* symmetric *)
  (match Topo.peer t ~node:1 ~port:1 with
   | Some e -> Testutil.check_int "reverse peer" 2 e.Topo.node
   | None -> Alcotest.fail "no reverse peer");
  Testutil.check_bool "out of range" true (Topo.peer t ~node:0 ~port:5 = None)

let test_topo_validation () =
  let bad_id () =
    ignore
      (Topo.create ~nodes:[ node 1 Topo.Host "h" 1 ] ~links:[])
  in
  (try
     bad_id ();
     Alcotest.fail "bad id accepted"
   with Invalid_argument _ -> ());
  let dup_name () =
    ignore
      (Topo.create
         ~nodes:[ node 0 Topo.Host "h" 1; node 1 Topo.Host "h" 1 ]
         ~links:[])
  in
  (try
     dup_name ();
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ());
  let double_wire () =
    ignore
      (Topo.create
         ~nodes:[ node 0 Topo.Host "h0" 1; node 1 Topo.Host "h1" 1; node 2 Topo.Host "h2" 1 ]
         ~links:[ link 0 0 1 0; link 0 0 2 0 ])
  in
  (try
     double_wire ();
     Alcotest.fail "double wiring accepted"
   with Invalid_argument _ -> ());
  let bad_port () =
    ignore
      (Topo.create ~nodes:[ node 0 Topo.Host "h0" 1; node 1 Topo.Host "h1" 1 ]
         ~links:[ link 0 3 1 0 ])
  in
  try
    bad_port ();
    Alcotest.fail "bad port accepted"
  with Invalid_argument _ -> ()

let test_topo_disconnected () =
  let t =
    Topo.create
      ~nodes:[ node 0 Topo.Host "h0" 1; node 1 Topo.Host "h1" 1 ]
      ~links:[]
  in
  Testutil.check_bool "disconnected" false (Topo.is_connected t)

(* ---------------- Fat tree ---------------- *)

let test_fattree_counts () =
  List.iter
    (fun k ->
      let ft = Fattree.build ~k in
      let topo = ft.Multirooted.topo in
      let hosts = Topo.nodes_of_kind topo Topo.Host in
      let edges = Topo.nodes_of_kind topo Topo.Edge_switch in
      let aggs = Topo.nodes_of_kind topo Topo.Agg_switch in
      let cores = Topo.nodes_of_kind topo Topo.Core_switch in
      Testutil.check_int "hosts" (k * k * k / 4) (List.length hosts);
      Testutil.check_int "edges" (k * k / 2) (List.length edges);
      Testutil.check_int "aggs" (k * k / 2) (List.length aggs);
      Testutil.check_int "cores" (k * k / 4) (List.length cores);
      (* links: host + edge-agg + agg-core *)
      let expected_links = (k * k * k / 4) + (k * (k / 2) * (k / 2)) + (k * (k / 2) * (k / 2)) in
      Testutil.check_int "links" expected_links (Topo.link_count topo);
      Testutil.check_bool "connected" true (Topo.is_connected topo))
    [ 2; 4; 6; 8 ]

let test_fattree_degrees () =
  let k = 4 in
  let ft = Fattree.build ~k in
  let topo = ft.Multirooted.topo in
  Array.iter
    (fun (n : Topo.node) ->
      match n.Topo.kind with
      | Topo.Host -> Testutil.check_int "host degree" 1 (Topo.degree topo n.Topo.id)
      | Topo.Edge_switch | Topo.Agg_switch | Topo.Core_switch ->
        Testutil.check_int "switch degree" k (Topo.degree topo n.Topo.id))
    (Topo.nodes topo)

let test_fattree_core_per_pod () =
  let k = 4 in
  let ft = Fattree.build ~k in
  let topo = ft.Multirooted.topo in
  (* every core connects to exactly one agg in every pod *)
  Array.iter
    (fun core ->
      let pods_touched =
        List.map
          (fun (_, (e : Topo.endpoint)) ->
            let agg = e.Topo.node in
            (* find which pod this agg belongs to *)
            let pod = ref (-1) in
            Array.iteri
              (fun p aggs -> if Array.exists (fun a -> a = agg) aggs then pod := p)
              ft.Multirooted.aggs;
            !pod)
          (Topo.neighbors topo core)
      in
      Testutil.check_int "one per pod" k (List.length (List.sort_uniq compare pods_touched)))
    ft.Multirooted.cores

let test_fattree_accessors () =
  let ft = Fattree.build ~k:4 in
  Testutil.check_int "k" 4 (Fattree.k ft);
  Testutil.check_int "num_hosts" 16 (Fattree.num_hosts ~k:4);
  Testutil.check_int "num_switches" 20 (Fattree.num_switches ~k:4);
  let h = Fattree.host ft ~pod:1 ~edge:1 ~slot:1 in
  Testutil.check_string "host name" "host-1-1-1" (Topo.node ft.Multirooted.topo h).Topo.name;
  let e = Fattree.edge ft ~pod:2 ~pos:0 in
  Testutil.check_string "edge name" "edge-2-0" (Topo.node ft.Multirooted.topo e).Topo.name;
  try
    ignore (Fattree.host ft ~pod:9 ~edge:0 ~slot:0);
    Alcotest.fail "out of range accepted"
  with Invalid_argument _ -> ()

let test_fattree_invalid_k () =
  (try
     ignore (Fattree.build ~k:3);
     Alcotest.fail "odd k accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Fattree.build ~k:0);
    Alcotest.fail "k=0 accepted"
  with Invalid_argument _ -> ()

let prop_fattree_structure =
  Testutil.prop "fat tree structural invariants" ~count:4
    (QCheck2.Gen.map (fun i -> 2 * (i + 1)) (QCheck2.Gen.int_bound 4))
    (fun k ->
      let ft = Fattree.build ~k in
      let topo = ft.Multirooted.topo in
      Topo.is_connected topo
      && Array.for_all (fun h -> Topo.degree topo h = 1) ft.Multirooted.hosts
      && Array.for_all (fun c -> Topo.degree topo c = k) ft.Multirooted.cores)

let test_to_dot () =
  let ft = Fattree.build ~k:4 in
  let dot = Topo.to_dot ~name:"k4" ft.Multirooted.topo in
  let contains needle =
    let nl = String.length needle and hl = String.length dot in
    let rec go i = i + nl <= hl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  Testutil.check_bool "graph header" true (contains "graph \"k4\"");
  Testutil.check_bool "host node" true (contains "host-0-0-0");
  Testutil.check_bool "core node" true (contains "core-3");
  Testutil.check_bool "an edge-agg link" true (contains "\"edge-0-0\" -- \"agg-0-0\"");
  (* one line per link *)
  let count_links =
    String.fold_left (fun (acc, prev) c ->
        if prev = '-' && c = '-' then (acc + 1, ' ') else (acc, c))
      (0, ' ') dot
    |> fst
  in
  Testutil.check_int "link lines" (Topo.link_count ft.Multirooted.topo) count_links

(* ---------------- Multirooted ---------------- *)

let test_multirooted_validation () =
  let bad =
    { Multirooted.num_pods = 4; edges_per_pod = 2; aggs_per_pod = 3; hosts_per_edge = 2;
      num_cores = 4 }
  in
  Testutil.check_bool "indivisible stripes" true (Result.is_error (Multirooted.validate_spec bad));
  let bad2 = { bad with Multirooted.aggs_per_pod = 2; num_pods = 0 } in
  Testutil.check_bool "zero pods" true (Result.is_error (Multirooted.validate_spec bad2))

let test_multirooted_asymmetric () =
  (* a non-fat-tree multi-rooted tree: 3 pods, oversubscribed edges *)
  let spec =
    { Multirooted.num_pods = 3; edges_per_pod = 2; aggs_per_pod = 2; hosts_per_edge = 4;
      num_cores = 4 }
  in
  let mt = Multirooted.build spec in
  let topo = mt.Multirooted.topo in
  Testutil.check_int "hosts" 24 (List.length (Topo.nodes_of_kind topo Topo.Host));
  Testutil.check_int "cores" 4 (List.length (Topo.nodes_of_kind topo Topo.Core_switch));
  Testutil.check_bool "connected" true (Topo.is_connected topo);
  Testutil.check_int "uplinks per agg" 2 (Multirooted.uplinks_per_agg spec);
  (* every core has one link per pod *)
  Array.iter (fun c -> Testutil.check_int "core degree" 3 (Topo.degree topo c)) mt.Multirooted.cores

let test_host_location () =
  let ft = Fattree.build ~k:4 in
  let h = Fattree.host ft ~pod:2 ~edge:1 ~slot:0 in
  (match Multirooted.host_location ft h with
   | Some (p, e, s) ->
     Testutil.check_int "pod" 2 p;
     Testutil.check_int "edge" 1 e;
     Testutil.check_int "slot" 0 s
   | None -> Alcotest.fail "host not located");
  Testutil.check_bool "non-host" true (Multirooted.host_location ft ft.Multirooted.cores.(0) = None)

(* ---------------- Paths ---------------- *)

let test_paths_distances () =
  let ft = Fattree.build ~k:4 in
  let topo = ft.Multirooted.topo in
  let h000 = Fattree.host ft ~pod:0 ~edge:0 ~slot:0 in
  let h001 = Fattree.host ft ~pod:0 ~edge:0 ~slot:1 in
  let h010 = Fattree.host ft ~pod:0 ~edge:1 ~slot:0 in
  let h300 = Fattree.host ft ~pod:3 ~edge:0 ~slot:0 in
  Testutil.check_int "same edge" 2 (Option.get (Paths.distance topo ~src:h000 ~dst:h001));
  Testutil.check_int "same pod" 4 (Option.get (Paths.distance topo ~src:h000 ~dst:h010));
  Testutil.check_int "inter pod" 6 (Option.get (Paths.distance topo ~src:h000 ~dst:h300));
  Testutil.check_int "self" 0 (Option.get (Paths.distance topo ~src:h000 ~dst:h000))

let test_paths_exclusion () =
  let ft = Fattree.build ~k:4 in
  let topo = ft.Multirooted.topo in
  let h0 = Fattree.host ft ~pod:0 ~edge:0 ~slot:0 in
  let h3 = Fattree.host ft ~pod:3 ~edge:0 ~slot:0 in
  let path = Option.get (Paths.shortest topo ~src:h0 ~dst:h3) in
  let links = Paths.links_on_path topo path in
  Testutil.check_int "links on 6-hop path" 6 (List.length links);
  (* exclude the host's only access link: unreachable *)
  let access = List.hd links in
  Testutil.check_bool "unreachable without access link" false
    (Paths.reachable ~excluded_links:[ access ] topo ~src:h0 ~dst:h3);
  (* exclude an interior link: still reachable via another path *)
  let interior = List.nth links 2 in
  Testutil.check_bool "reachable around interior failure" true
    (Paths.reachable ~excluded_links:[ interior ] topo ~src:h0 ~dst:h3)

let test_edge_disjoint () =
  let ft = Fattree.build ~k:4 in
  let topo = ft.Multirooted.topo in
  let h0 = Fattree.host ft ~pod:0 ~edge:0 ~slot:0 in
  let h3 = Fattree.host ft ~pod:3 ~edge:0 ~slot:0 in
  (* hosts have one NIC: exactly one disjoint path *)
  Testutil.check_int "host pair" 1 (Paths.edge_disjoint_count topo ~src:h0 ~dst:h3);
  (* edge switches in different pods have k/2 = 2 disjoint paths *)
  let e0 = Fattree.edge ft ~pod:0 ~pos:0 in
  let e3 = Fattree.edge ft ~pod:3 ~pos:0 in
  Testutil.check_int "edge pair" 2 (Paths.edge_disjoint_count topo ~src:e0 ~dst:e3)

let test_average_shortest_path () =
  let ft = Fattree.build ~k:4 in
  let avg = Paths.average_shortest_path ft.Multirooted.topo ~between:Topo.Host in
  (* 16 hosts: 1/15 same edge (2 hops), 2/15 same pod (4), 12/15 inter-pod (6) *)
  Testutil.check_float_eps "k=4 host average" ~eps:0.01 5.4666 avg

let prop_paths_symmetric =
  Testutil.prop "distance is symmetric" ~count:30
    QCheck2.Gen.(pair (int_bound 15) (int_bound 15))
    (fun (a, b) ->
      let ft = Fattree.build ~k:4 in
      let topo = ft.Multirooted.topo in
      let ha = ft.Multirooted.hosts.(a) and hb = ft.Multirooted.hosts.(b) in
      Paths.distance topo ~src:ha ~dst:hb = Paths.distance topo ~src:hb ~dst:ha)

let () =
  Alcotest.run "topology"
    [ ( "topo",
        [ Alcotest.test_case "basics" `Quick test_topo_basic;
          Alcotest.test_case "peer lookup" `Quick test_topo_peer;
          Alcotest.test_case "validation" `Quick test_topo_validation;
          Alcotest.test_case "disconnected" `Quick test_topo_disconnected;
          Alcotest.test_case "dot export" `Quick test_to_dot ] );
      ( "fattree",
        [ Alcotest.test_case "counts" `Quick test_fattree_counts;
          Alcotest.test_case "degrees" `Quick test_fattree_degrees;
          Alcotest.test_case "core per pod" `Quick test_fattree_core_per_pod;
          Alcotest.test_case "accessors" `Quick test_fattree_accessors;
          Alcotest.test_case "invalid k" `Quick test_fattree_invalid_k;
          prop_fattree_structure ] );
      ( "multirooted",
        [ Alcotest.test_case "spec validation" `Quick test_multirooted_validation;
          Alcotest.test_case "asymmetric spec" `Quick test_multirooted_asymmetric;
          Alcotest.test_case "host location" `Quick test_host_location ] );
      ( "paths",
        [ Alcotest.test_case "fat-tree distances" `Quick test_paths_distances;
          Alcotest.test_case "link exclusion" `Quick test_paths_exclusion;
          Alcotest.test_case "edge-disjoint paths" `Quick test_edge_disjoint;
          Alcotest.test_case "average shortest path" `Quick test_average_shortest_path;
          prop_paths_symmetric ] ) ]
