(** Pseudo MAC addresses (PortLand §3.1).

    A PMAC encodes a host's topological location in 48 bits:

    {v pod (16 bits) . position (8 bits) . port (8 bits) . vmid (16 bits) v}

    [pod] is the host's pod, [position] its edge switch's position within
    the pod, [port] the edge-switch port the host hangs off, and [vmid] a
    per-port virtual machine index assigned by the edge switch. Fabric
    forwarding matches PMAC prefixes, so core switches need one entry per
    pod and aggregation switches one per edge position — O(k) state.

    To keep PMACs valid unicast MACs, [pod] is restricted to [< 256] here
    (pods [>= 256] would set the Ethernet group bit; the paper does not
    discuss this corner and no realistic fat tree reaches it — k = 510
    would). Hosts' real AMACs are locally-administered (second bit of the
    first octet), so the two spaces never collide. *)

type t = { pod : int; position : int; port : int; vmid : int }

val make : pod:int -> position:int -> port:int -> vmid:int -> t
(** Range-checks every field ([pod < 256], [position < 256], [port < 256],
    [vmid < 65536], all non-negative; [vmid >= 1] — vmid 0 is reserved so
    a PMAC is never all-zero). *)

val to_mac : t -> Netcore.Mac_addr.t
val of_mac : Netcore.Mac_addr.t -> t

val is_pmac : Netcore.Mac_addr.t -> bool
(** True when the address lies in the PMAC space (first octet's group and
    local bits clear), i.e. cannot be one of this simulator's AMACs. *)

(** {1 Prefix masks for flow-table matches} *)

val pod_prefix : pod:int -> Switchfab.Flow_table.mask_match
(** Matches every PMAC in a pod (mask [ffff:0000:0000]). *)

val position_prefix : pod:int -> position:int -> Switchfab.Flow_table.mask_match
(** Matches every PMAC behind one edge switch (mask [ffff:ff00:0000]). *)

val port_prefix : pod:int -> position:int -> port:int -> Switchfab.Flow_table.mask_match
(** Matches every VM on one physical port (mask [ffff:ffff:0000]). *)

val exact : t -> Switchfab.Flow_table.mask_match

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
