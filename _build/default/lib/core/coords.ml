type t =
  | Edge of { pod : int; position : int }
  | Agg of { pod : int; stripe : int }
  | Core of { stripe : int; member : int }

let level = function
  | Edge _ -> Netcore.Ldp_msg.Edge
  | Agg _ -> Netcore.Ldp_msg.Aggregation
  | Core _ -> Netcore.Ldp_msg.Core

let to_ldm_fields = function
  | Edge { pod; position } -> (Some pod, Some position)
  | Agg { pod; stripe } -> (Some pod, Some stripe)
  | Core { stripe; member } -> (Some stripe, Some member)

let of_ldm_fields ~level ~pod ~position =
  match (level, pod, position) with
  | Netcore.Ldp_msg.Edge, Some pod, Some position -> Some (Edge { pod; position })
  | Netcore.Ldp_msg.Aggregation, Some pod, Some stripe -> Some (Agg { pod; stripe })
  | Netcore.Ldp_msg.Core, Some stripe, Some member -> Some (Core { stripe; member })
  | _, _, _ -> None

let equal a b = a = b

let pp fmt = function
  | Edge { pod; position } -> Format.fprintf fmt "edge(pod=%d,pos=%d)" pod position
  | Agg { pod; stripe } -> Format.fprintf fmt "agg(pod=%d,stripe=%d)" pod stripe
  | Core { stripe; member } -> Format.fprintf fmt "core(stripe=%d,member=%d)" stripe member
