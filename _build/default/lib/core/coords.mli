(** A switch's discovered location in the multi-rooted tree.

    Levels are inferred locally by LDP; pods, edge positions, stripe labels
    and core member indexes are assigned (or verified) by the fabric
    manager. A *stripe* is the set of cores wired to the same aggregation
    position in every pod; [member] numbers the cores within one stripe.
    Stripe and member labels are global, which is what lets any switch
    translate a coordinate fault ({!Fault.t}) into a local rerouting
    decision. *)

type t =
  | Edge of { pod : int; position : int }
  | Agg of { pod : int; stripe : int }
  | Core of { stripe : int; member : int }

val level : t -> Netcore.Ldp_msg.level

val to_ldm_fields : t -> int option * int option
(** [(pod, position)] as carried in LDMs. For aggregation switches the
    position field carries the stripe; for cores the pod field carries the
    stripe and the position field the member index. *)

val of_ldm_fields :
  level:Netcore.Ldp_msg.level -> pod:int option -> position:int option -> t option
(** Inverse of {!to_ldm_fields}; [None] until both fields are present. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
