lib/core/fabric_manager.ml: Array Config Coords Ctrl Eventsim Fault Hashtbl Ipv4_addr Ldp_msg List Msg Netcore Pmac Topology Uf
