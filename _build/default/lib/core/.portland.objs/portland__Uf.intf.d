lib/core/uf.mli:
