lib/core/switch_agent.mli: Config Coords Ctrl Eventsim Ldp Netcore Switchfab Topology
