lib/core/fabric_manager.mli: Config Coords Ctrl Eventsim Fault Msg Netcore Pmac Topology
