lib/core/fabric.mli: Config Ctrl Eventsim Fabric_manager Host_agent Netcore Switch_agent Switchfab Topology
