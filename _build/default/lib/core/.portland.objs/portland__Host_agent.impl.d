lib/core/host_agent.ml: Arp Config Engine Eth Eventsim Hashtbl Icmp Igmp Ipv4_addr Ipv4_pkt List Mac_addr Netcore Option Switchfab Time Timer
