lib/core/config.ml: Eventsim Format Time
