lib/core/fabric.ml: Array Config Ctrl Engine Eth Eventsim Fabric_manager Hashtbl Host_agent Ipv4_addr Ipv4_pkt List Mac_addr Netcore Pmac Printf Prng Switch_agent Switchfab Time Topology
