lib/core/ldp.mli: Config Coords Eventsim Netcore
