lib/core/msg.mli: Coords Fault Format Netcore Pmac
