lib/core/msg_codec.ml: Bytes Coords Fault Ldp_msg List Msg Netcore Pmac Printf Wire
