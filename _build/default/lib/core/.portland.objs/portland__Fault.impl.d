lib/core/fault.ml: Format Hashtbl List Stdlib
