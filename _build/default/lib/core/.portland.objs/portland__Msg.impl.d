lib/core/msg.ml: Coords Fault Format List Netcore Pmac String
