lib/core/pmac.mli: Format Netcore Switchfab
