lib/core/ldp.ml: Array Config Coords Engine Eventsim Ldp_msg Netcore Option Printf Time Timer
