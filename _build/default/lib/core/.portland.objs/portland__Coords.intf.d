lib/core/coords.mli: Format Netcore
