lib/core/switch_agent.ml: Arp Array Config Coords Ctrl Engine Eth Eventsim Fault Hashtbl Igmp Ipv4_addr Ipv4_pkt Ldp Ldp_msg List Mac_addr Msg Netcore Pmac Printf Prng Switchfab Time Topology
