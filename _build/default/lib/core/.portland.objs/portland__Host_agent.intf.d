lib/core/host_agent.mli: Config Eventsim Netcore Switchfab
