lib/core/config.mli: Eventsim Format
