lib/core/coords.ml: Format Netcore
