lib/core/pmac.ml: Format Mac_addr Netcore Printf Stdlib Switchfab
