lib/core/ctrl.mli: Eventsim Msg
