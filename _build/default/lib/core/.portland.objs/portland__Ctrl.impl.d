lib/core/ctrl.ml: Engine Eventsim Hashtbl List Msg Msg_codec Time
