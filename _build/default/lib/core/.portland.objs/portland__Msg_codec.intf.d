lib/core/msg_codec.mli: Msg
