lib/core/uf.ml: Hashtbl
