open Netcore

type t = { pod : int; position : int; port : int; vmid : int }

let make ~pod ~position ~port ~vmid =
  let check name v bound =
    if v < 0 || v >= bound then invalid_arg (Printf.sprintf "Pmac.make: %s out of range" name)
  in
  check "pod" pod 256;
  check "position" position 256;
  check "port" port 256;
  check "vmid" vmid 65536;
  if vmid < 1 then invalid_arg "Pmac.make: vmid 0 is reserved";
  { pod; position; port; vmid }

let to_mac t =
  Mac_addr.of_int ((t.pod lsl 32) lor (t.position lsl 24) lor (t.port lsl 16) lor t.vmid)

let of_mac mac =
  let v = Mac_addr.to_int mac in
  { pod = (v lsr 32) land 0xFFFF;
    position = (v lsr 24) land 0xFF;
    port = (v lsr 16) land 0xFF;
    vmid = v land 0xFFFF }

let is_pmac mac =
  let first_octet = Mac_addr.to_int mac lsr 40 in
  first_octet land 0x03 = 0

let pod_prefix ~pod = { Switchfab.Flow_table.value = pod lsl 32; mask = 0xFFFF00000000 }

let position_prefix ~pod ~position =
  { Switchfab.Flow_table.value = (pod lsl 32) lor (position lsl 24); mask = 0xFFFFFF000000 }

let port_prefix ~pod ~position ~port =
  { Switchfab.Flow_table.value = (pod lsl 32) lor (position lsl 24) lor (port lsl 16);
    mask = 0xFFFFFFFF0000 }

let exact t =
  { Switchfab.Flow_table.value = Mac_addr.to_int (to_mac t); mask = 0xFFFFFFFFFFFF }

let equal a b = a = b
let compare = Stdlib.compare

let pp fmt t = Format.fprintf fmt "pmac(%d.%d.%d.%d)" t.pod t.position t.port t.vmid
let to_string t = Format.asprintf "%a" pp t
