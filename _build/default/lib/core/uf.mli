(** Union-find over integer keys (hashtable-backed, path-halving).

    The fabric manager uses one instance to group edge and aggregation
    switches into pods (components of the edge–agg adjacency) and another
    to group aggregation and core switches into stripes (components of the
    agg–core adjacency). *)

type t

val create : unit -> t

val find : t -> int -> int
(** Representative of the key's component (a key is its own component
    until unioned). *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val members : t -> int -> int list
(** All keys ever seen that share the given key's component. *)
