type t = { parent : (int, int) Hashtbl.t; rank : (int, int) Hashtbl.t }

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None ->
    Hashtbl.replace t.parent x x;
    x
  | Some p when p = x -> x
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let rank x = try Hashtbl.find t.rank x with Not_found -> 0 in
    let ka = rank ra and kb = rank rb in
    if ka < kb then Hashtbl.replace t.parent ra rb
    else if ka > kb then Hashtbl.replace t.parent rb ra
    else begin
      Hashtbl.replace t.parent rb ra;
      Hashtbl.replace t.rank ra (ka + 1)
    end
  end

let same t a b = find t a = find t b

let members t x =
  let root = find t x in
  Hashtbl.fold (fun k _ acc -> if find t k = root then k :: acc else acc) t.parent []
