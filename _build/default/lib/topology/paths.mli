(** Path and reachability queries over a {!Topo.t}, with optional link
    exclusions (used by tests to reason about failure scenarios and by the
    experiment harness to choose on-path links to fail). *)

val shortest : ?excluded_links:int list -> Topo.t -> src:int -> dst:int -> int list option
(** BFS shortest path as a node list [src; …; dst]. [excluded_links] are
    indexes into [Topo.links] treated as absent. [None] when unreachable. *)

val distance : ?excluded_links:int list -> Topo.t -> src:int -> dst:int -> int option
(** Hop count of {!shortest}. *)

val reachable : ?excluded_links:int list -> Topo.t -> src:int -> dst:int -> bool

val links_on_path : Topo.t -> int list -> int list
(** Link indexes traversed by a node path; raises [Invalid_argument] when
    consecutive nodes are not adjacent. *)

val average_shortest_path :
  ?sample:int -> ?seed:int -> Topo.t -> between:Topo.kind -> float
(** Mean hop distance between (a sample of) node pairs of the given kind.
    [sample] bounds the number of pairs (default 2000). *)

val edge_disjoint_count : Topo.t -> src:int -> dst:int -> int
(** Number of pairwise link-disjoint paths between two nodes, computed by
    iterated BFS with link removal (exact for unit-capacity max-flow on
    these small graphs' purposes; used by fault-tolerance tests). *)
