(** Generalized multi-rooted tree builder.

    PortLand targets any multi-rooted tree, of which the k-ary fat tree is
    the canonical instance ({!Fattree} is a thin wrapper over this module).
    A spec describes a three-tier topology:

    - [num_pods] pods, each with [edges_per_pod] edge switches and
      [aggs_per_pod] aggregation switches, fully bipartitely wired inside
      the pod;
    - [hosts_per_edge] hosts per edge switch;
    - [num_cores] core switches, wired in stripes: aggregation switch at
      position [a] (in every pod) connects to cores
      [a*u .. a*u+u-1] where [u = num_cores / aggs_per_pod], and every core
      has exactly one link to every pod.

    Port conventions (relied upon throughout the PortLand layer):
    - edge switch: ports [0 .. hosts_per_edge-1] face hosts (down), ports
      [hosts_per_edge ..] face aggregation switches (up, one per agg
      position, in order);
    - aggregation switch: ports [0 .. edges_per_pod-1] face edge switches
      (down, indexed by edge position), remaining ports face its core
      stripe (up, in order);
    - core switch: port [p] faces pod [p];
    - host: single port (0) to its edge switch. *)

type spec = {
  num_pods : int;
  edges_per_pod : int;
  aggs_per_pod : int;
  hosts_per_edge : int;
  num_cores : int;
}

type t = {
  spec : spec;
  topo : Topo.t;
  hosts : int array;        (** node id of host [pod*epp*hpe + edge*hpe + slot] *)
  edges : int array array;  (** [edges.(pod).(pos)] *)
  aggs : int array array;   (** [aggs.(pod).(pos)] *)
  cores : int array;        (** [cores.(a*u + j)] is stripe [a], member [j] *)
}

val validate_spec : spec -> (unit, string) result
(** All counts positive, [num_cores] divisible by [aggs_per_pod], and
    core degree = [num_pods] consistent with stripe wiring. *)

val build : spec -> t
(** Raises [Invalid_argument] when {!validate_spec} fails. *)

val uplinks_per_agg : spec -> int
(** [num_cores / aggs_per_pod]. *)

val host_ids : t -> int list
val edge_uplink_port : t -> agg_pos:int -> int
(** Edge-switch port facing the aggregation switch at [agg_pos]. *)

val agg_uplink_port : t -> stripe_member:int -> int
(** Aggregation-switch port facing member [stripe_member] of its core
    stripe. *)

val core_of_stripe : t -> agg_pos:int -> member:int -> int
(** Node id of that core switch. *)

val host_location : t -> int -> (int * int * int) option
(** [host_location t id] is [(pod, edge_pos, slot)] when [id] is a host. *)
