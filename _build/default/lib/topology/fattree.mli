(** Canonical k-ary fat tree (Al-Fares et al., SIGCOMM 2008) — the
    substrate PortLand's evaluation runs on.

    For even [k >= 2]: [k] pods; each pod has [k/2] edge and [k/2]
    aggregation switches of [k] ports each; [(k/2)^2] core switches;
    [k^3/4] hosts. A thin specialization of {!Multirooted}. *)

type t = Multirooted.t

val spec : k:int -> Multirooted.spec
(** Raises [Invalid_argument] unless [k] is even and [>= 2]. *)

val build : k:int -> t

val k : t -> int
(** Recovered from the spec ([2 * edges_per_pod]). *)

val num_hosts : k:int -> int
(** [k^3/4]. *)

val num_switches : k:int -> int
(** [k*k + (k/2)^2] (edge + agg + core). *)

val host : t -> pod:int -> edge:int -> slot:int -> int
(** Node id; raises [Invalid_argument] when out of range. *)

val edge : t -> pod:int -> pos:int -> int
val agg : t -> pod:int -> pos:int -> int
val core : t -> index:int -> int
