let bfs_parents ?(excluded_links = []) topo ~src =
  let n = Topo.node_count topo in
  let excluded = Hashtbl.create (List.length excluded_links) in
  List.iter (fun l -> Hashtbl.replace excluded l ()) excluded_links;
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (port, (e : Topo.endpoint)) ->
        let link_ok =
          match Topo.link_index topo ~node:u ~port with
          | Some idx -> not (Hashtbl.mem excluded idx)
          | None -> false
        in
        if link_ok && not seen.(e.Topo.node) then begin
          seen.(e.Topo.node) <- true;
          parent.(e.Topo.node) <- u;
          Queue.push e.Topo.node queue
        end)
      (Topo.neighbors topo u)
  done;
  (parent, seen)

let shortest ?excluded_links topo ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let parent, seen = bfs_parents ?excluded_links topo ~src in
    if not seen.(dst) then None
    else begin
      let rec walk acc v = if v = src then src :: acc else walk (v :: acc) parent.(v) in
      Some (walk [] dst)
    end
  end

let distance ?excluded_links topo ~src ~dst =
  match shortest ?excluded_links topo ~src ~dst with
  | Some path -> Some (List.length path - 1)
  | None -> None

let reachable ?excluded_links topo ~src ~dst =
  match distance ?excluded_links topo ~src ~dst with Some _ -> true | None -> false

let links_on_path topo path =
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | u :: (v :: _ as rest) ->
      let link =
        List.find_map
          (fun (port, (e : Topo.endpoint)) ->
            if e.Topo.node = v then Topo.link_index topo ~node:u ~port else None)
          (Topo.neighbors topo u)
      in
      (match link with
       | Some idx -> go (idx :: acc) rest
       | None ->
         invalid_arg (Printf.sprintf "Paths.links_on_path: %d and %d not adjacent" u v))
  in
  go [] path

let average_shortest_path ?(sample = 2000) ?(seed = 42) topo ~between =
  let ids = Topo.nodes_of_kind topo between |> List.map (fun n -> n.Topo.id) |> Array.of_list in
  let n = Array.length ids in
  if n < 2 then 0.0
  else begin
    let prng = Eventsim.Prng.create seed in
    let total_pairs = n * (n - 1) in
    let count = min sample total_pairs in
    let sum = ref 0 and measured = ref 0 in
    (* exhaustively when small, sampled otherwise *)
    if total_pairs <= sample then
      Array.iter
        (fun s ->
          Array.iter
            (fun d ->
              if s <> d then
                match distance topo ~src:s ~dst:d with
                | Some h ->
                  sum := !sum + h;
                  incr measured
                | None -> ())
            ids)
        ids
    else
      for _ = 1 to count do
        let s = Eventsim.Prng.pick prng ids in
        let d = ref (Eventsim.Prng.pick prng ids) in
        while !d = s do
          d := Eventsim.Prng.pick prng ids
        done;
        match distance topo ~src:s ~dst:!d with
        | Some h ->
          sum := !sum + h;
          incr measured
        | None -> ()
      done;
    if !measured = 0 then 0.0 else float_of_int !sum /. float_of_int !measured
  end

let edge_disjoint_count topo ~src ~dst =
  if src = dst then 0
  else begin
    let removed = ref [] in
    let count = ref 0 in
    let continue = ref true in
    while !continue do
      match shortest ~excluded_links:!removed topo ~src ~dst with
      | None -> continue := false
      | Some path ->
        incr count;
        removed := links_on_path topo path @ !removed
    done;
    !count
  end
