type spec = {
  num_pods : int;
  edges_per_pod : int;
  aggs_per_pod : int;
  hosts_per_edge : int;
  num_cores : int;
}

type t = {
  spec : spec;
  topo : Topo.t;
  hosts : int array;
  edges : int array array;
  aggs : int array array;
  cores : int array;
}

let uplinks_per_agg s = s.num_cores / s.aggs_per_pod

let validate_spec s =
  if s.num_pods <= 0 then Error "num_pods must be positive"
  else if s.edges_per_pod <= 0 then Error "edges_per_pod must be positive"
  else if s.aggs_per_pod <= 0 then Error "aggs_per_pod must be positive"
  else if s.hosts_per_edge <= 0 then Error "hosts_per_edge must be positive"
  else if s.num_cores <= 0 then Error "num_cores must be positive"
  else if s.num_cores mod s.aggs_per_pod <> 0 then
    Error "num_cores must be divisible by aggs_per_pod (stripe wiring)"
  else Ok ()

let build s =
  (match validate_spec s with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Multirooted.build: " ^ msg));
  let u = uplinks_per_agg s in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let nodes = ref [] in
  let add_node kind name nports =
    let id = fresh () in
    nodes := { Topo.id; kind; name; nports } :: !nodes;
    id
  in
  (* hosts first, then edges, aggs, cores — ids are dense in that order *)
  let hosts =
    Array.init (s.num_pods * s.edges_per_pod * s.hosts_per_edge) (fun i ->
        let pod = i / (s.edges_per_pod * s.hosts_per_edge) in
        let rem = i mod (s.edges_per_pod * s.hosts_per_edge) in
        let edge = rem / s.hosts_per_edge in
        let slot = rem mod s.hosts_per_edge in
        add_node Topo.Host (Printf.sprintf "host-%d-%d-%d" pod edge slot) 1)
  in
  let edges =
    Array.init s.num_pods (fun pod ->
        Array.init s.edges_per_pod (fun pos ->
            add_node Topo.Edge_switch
              (Printf.sprintf "edge-%d-%d" pod pos)
              (s.hosts_per_edge + s.aggs_per_pod)))
  in
  let aggs =
    Array.init s.num_pods (fun pod ->
        Array.init s.aggs_per_pod (fun pos ->
            add_node Topo.Agg_switch (Printf.sprintf "agg-%d-%d" pod pos) (s.edges_per_pod + u)))
  in
  let cores =
    Array.init s.num_cores (fun c ->
        add_node Topo.Core_switch (Printf.sprintf "core-%d" c) s.num_pods)
  in
  let links = ref [] in
  let connect a ap b bp =
    links := { Topo.a = { Topo.node = a; port = ap }; b = { Topo.node = b; port = bp } } :: !links
  in
  (* host <-> edge *)
  Array.iteri
    (fun i host ->
      let pod = i / (s.edges_per_pod * s.hosts_per_edge) in
      let rem = i mod (s.edges_per_pod * s.hosts_per_edge) in
      let edge = rem / s.hosts_per_edge in
      let slot = rem mod s.hosts_per_edge in
      connect host 0 edges.(pod).(edge) slot)
    hosts;
  (* edge <-> agg, full bipartite within pod *)
  for pod = 0 to s.num_pods - 1 do
    for e = 0 to s.edges_per_pod - 1 do
      for a = 0 to s.aggs_per_pod - 1 do
        connect edges.(pod).(e) (s.hosts_per_edge + a) aggs.(pod).(a) e
      done
    done
  done;
  (* agg <-> core stripes: agg position a owns cores a*u .. a*u+u-1 *)
  for pod = 0 to s.num_pods - 1 do
    for a = 0 to s.aggs_per_pod - 1 do
      for j = 0 to u - 1 do
        let core = cores.((a * u) + j) in
        connect aggs.(pod).(a) (s.edges_per_pod + j) core pod
      done
    done
  done;
  let topo = Topo.create ~nodes:(List.rev !nodes) ~links:(List.rev !links) in
  { spec = s; topo; hosts; edges; aggs; cores }

let host_ids t = Array.to_list t.hosts
let edge_uplink_port t ~agg_pos = t.spec.hosts_per_edge + agg_pos
let agg_uplink_port t ~stripe_member = t.spec.edges_per_pod + stripe_member

let core_of_stripe t ~agg_pos ~member =
  let u = uplinks_per_agg t.spec in
  if agg_pos < 0 || agg_pos >= t.spec.aggs_per_pod || member < 0 || member >= u then
    invalid_arg "Multirooted.core_of_stripe: out of range";
  t.cores.((agg_pos * u) + member)

let host_location t id =
  let n = Array.length t.hosts in
  (* hosts occupy ids [0, n): dense construction order *)
  if id < 0 || id >= n || t.hosts.(id) <> id then None
  else begin
    let per_pod = t.spec.edges_per_pod * t.spec.hosts_per_edge in
    let pod = id / per_pod in
    let rem = id mod per_pod in
    Some (pod, rem / t.spec.hosts_per_edge, rem mod t.spec.hosts_per_edge)
  end
