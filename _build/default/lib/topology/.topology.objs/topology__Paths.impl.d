lib/topology/paths.ml: Array Eventsim Hashtbl List Printf Queue Topo
