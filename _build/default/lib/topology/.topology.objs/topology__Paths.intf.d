lib/topology/paths.mli: Topo
