lib/topology/multirooted.mli: Topo
