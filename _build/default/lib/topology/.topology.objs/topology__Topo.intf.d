lib/topology/topo.mli: Format
