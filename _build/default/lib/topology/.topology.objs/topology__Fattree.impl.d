lib/topology/fattree.ml: Array Multirooted Printf
