lib/topology/topo.ml: Array Buffer Format Hashtbl List Printf Queue String
