lib/topology/fattree.mli: Multirooted
