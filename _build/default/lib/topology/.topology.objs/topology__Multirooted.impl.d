lib/topology/multirooted.ml: Array List Printf Topo
