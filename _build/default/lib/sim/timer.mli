(** Recurring timers on top of {!Engine}.

    Protocol periodics (LDM beacons, ARP-cache sweeps, traffic sources) are
    built on this module so that they can be stopped cleanly when a device
    fails or a scenario ends. *)

type t

val every :
  Engine.t -> period:Time.t -> ?start_delay:Time.t -> ?jitter:(unit -> Time.t) ->
  (unit -> unit) -> t
(** [every engine ~period f] calls [f] every [period], first at
    [start_delay] (default: one [period]) from now. If [jitter] is given,
    each firing is displaced by [jitter ()] (must keep the effective delay
    non-negative). The callback may call {!stop} on its own timer. *)

val after : Engine.t -> delay:Time.t -> (unit -> unit) -> t
(** One-shot timer; equivalent to [Engine.schedule] but stoppable through
    the same {!stop} interface. *)

val stop : t -> unit
(** Stop the timer; pending and future firings are suppressed. Idempotent. *)

val active : t -> bool
(** True until {!stop} is called (and, for one-shots, until it fires). *)
