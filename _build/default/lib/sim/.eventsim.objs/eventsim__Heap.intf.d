lib/sim/heap.mli:
