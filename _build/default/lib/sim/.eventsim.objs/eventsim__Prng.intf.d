lib/sim/prng.mli:
