(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through an explicit
    [Prng.t] so that experiments are exactly reproducible from a seed, and
    independent components can be given independent substreams with
    {!split} without perturbing each other's sequences. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** An independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent substream and
    advances [t]. Use one substream per component. *)

val next_int64 : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniformly chosen element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t n xs] is [n] distinct elements of [xs]
    (or all of [xs] if it is shorter), in random order. *)
