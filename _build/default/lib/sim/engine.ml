type event = {
  time : Time.t;
  seq : int;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  queue : event Heap.t;
}

let leq_event (a : event) (b : event) =
  a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(now = 0) () =
  { clock = now; next_seq = 0; fired = 0; queue = Heap.create ~leq:leq_event () }

let now t = t.clock

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)" time t.clock);
  let ev = { time; seq = t.next_seq; thunk; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay thunk =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) thunk

let cancel _t handle = handle.cancelled <- true
let is_pending handle = not handle.cancelled
let pending_count t = Heap.length t.queue

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if ev.cancelled then step t
    else begin
      t.clock <- ev.time;
      t.fired <- t.fired + 1;
      ev.thunk ();
      true
    end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev when ev.cancelled ->
      ignore (Heap.pop t.queue)
    | Some ev ->
      (match until with
       | Some bound when ev.time > bound ->
         t.clock <- bound;
         continue := false
       | _ ->
         ignore (step t);
         decr budget)
  done

let events_processed t = t.fired
