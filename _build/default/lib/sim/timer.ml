type t = {
  engine : Engine.t;
  mutable stopped : bool;
  mutable handle : Engine.handle option;
}

let stop t =
  t.stopped <- true;
  match t.handle with
  | Some h ->
    Engine.cancel t.engine h;
    t.handle <- None
  | None -> ()

let active t = not t.stopped

let every engine ~period ?start_delay ?jitter f =
  if period <= 0 then invalid_arg "Timer.every: period must be positive";
  let t = { engine; stopped = false; handle = None } in
  let delay_of base =
    match jitter with
    | None -> base
    | Some j -> max 0 (base + j ())
  in
  let rec arm delay =
    if not t.stopped then
      t.handle <- Some (Engine.schedule engine ~delay (fun () ->
        t.handle <- None;
        if not t.stopped then begin
          f ();
          if not t.stopped then arm (delay_of period)
        end))
  in
  let first = match start_delay with Some d -> d | None -> period in
  arm (delay_of first);
  t

let after engine ~delay f =
  let t = { engine; stopped = false; handle = None } in
  t.handle <- Some (Engine.schedule engine ~delay (fun () ->
    t.handle <- None;
    if not t.stopped then begin
      t.stopped <- true;
      f ()
    end));
  t
