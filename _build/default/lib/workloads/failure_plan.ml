module MR = Topology.Multirooted
module T = Topology.Topo

let switch_links (mt : MR.t) =
  Array.to_list (T.links mt.MR.topo)
  |> List.filter_map (fun (l : T.link) ->
         let a = l.T.a.T.node and b = l.T.b.T.node in
         let is_switch n = (T.node mt.MR.topo n).T.kind <> T.Host in
         if is_switch a && is_switch b then Some (a, b) else None)

let pod_of_host (mt : MR.t) host =
  match MR.host_location mt host with
  | Some (pod, edge, _) -> (pod, edge)
  | None -> invalid_arg "Failure_plan: not a host id"

let flow_relevant_links (mt : MR.t) ~src_host ~dst_host =
  let src_pod, src_edge = pod_of_host mt src_host in
  let dst_pod, dst_edge = pod_of_host mt dst_host in
  let src_edge_sw = mt.MR.edges.(src_pod).(src_edge) in
  let dst_edge_sw = mt.MR.edges.(dst_pod).(dst_edge) in
  let relevant (a, b) =
    let touches sw = a = sw || b = sw in
    let is_agg_of pod sw = Array.exists (fun x -> x = sw) mt.MR.aggs.(pod) in
    let is_core sw = Array.exists (fun x -> x = sw) mt.MR.cores in
    touches src_edge_sw || touches dst_edge_sw
    || ((is_agg_of src_pod a || is_agg_of dst_pod a) && is_core b)
    || ((is_agg_of src_pod b || is_agg_of dst_pod b) && is_core a)
  in
  List.filter relevant (switch_links mt)

let link_index_between (mt : MR.t) a b =
  let links = T.links mt.MR.topo in
  let found = ref None in
  Array.iteri
    (fun i (l : T.link) ->
      let la = l.T.a.T.node and lb = l.T.b.T.node in
      if (la = a && lb = b) || (la = b && lb = a) then found := Some i)
    links;
  !found

let pick_survivable prng mt ~candidates ~src_host ~dst_host ~n =
  let arr = Array.of_list candidates in
  if Array.length arr < n then None
  else begin
    let attempt () =
      let copy = Array.copy arr in
      Eventsim.Prng.shuffle prng copy;
      let chosen = Array.to_list (Array.sub copy 0 n) in
      let excluded = List.filter_map (fun (a, b) -> link_index_between mt a b) chosen in
      if Topology.Paths.reachable ~excluded_links:excluded mt.MR.topo ~src:src_host ~dst:dst_host
      then Some chosen
      else None
    in
    let rec go tries = if tries = 0 then None else
        match attempt () with Some c -> Some c | None -> go (tries - 1)
    in
    go 200
  end
