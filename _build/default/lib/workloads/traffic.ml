let random_permutation prng hosts =
  let n = Array.length hosts in
  if n < 2 then invalid_arg "Traffic.random_permutation: need at least 2 hosts";
  (* sattolo's algorithm produces a uniformly random single cycle, which is
     in particular a derangement *)
  let idx = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Eventsim.Prng.int prng i in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  List.init n (fun i -> (hosts.(i), hosts.(idx.(i))))

let stride hosts ~stride =
  let n = Array.length hosts in
  if n = 0 then []
  else
    List.filter_map
      (fun i ->
        let j = (i + stride) mod n in
        let j = if j < 0 then j + n else j in
        if j = i then None else Some (hosts.(i), hosts.(j)))
      (List.init n (fun i -> i))

let all_pairs hosts =
  let n = Array.length hosts in
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j -> if i = j then None else Some (hosts.(i), hosts.(j)))
        (List.init n (fun j -> j)))
    (List.init n (fun i -> i))

let hotspot hosts ~target_index =
  let n = Array.length hosts in
  if target_index < 0 || target_index >= n then invalid_arg "Traffic.hotspot: bad target";
  List.filter_map
    (fun i -> if i = target_index then None else Some (hosts.(i), hosts.(target_index)))
    (List.init n (fun i -> i))

let sample_pairs prng hosts ~n =
  let len = Array.length hosts in
  if len < 2 then invalid_arg "Traffic.sample_pairs: need at least 2 hosts";
  List.init n (fun _ ->
      let i = Eventsim.Prng.int prng len in
      let j = ref (Eventsim.Prng.int prng len) in
      while !j = i do
        j := Eventsim.Prng.int prng len
      done;
      (hosts.(i), hosts.(!j)))
