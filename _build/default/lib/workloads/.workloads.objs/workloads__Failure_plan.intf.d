lib/workloads/failure_plan.mli: Eventsim Topology
