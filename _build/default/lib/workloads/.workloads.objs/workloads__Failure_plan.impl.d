lib/workloads/failure_plan.ml: Array Eventsim List Topology
