lib/workloads/traffic.ml: Array Eventsim List
