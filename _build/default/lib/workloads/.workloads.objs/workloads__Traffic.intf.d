lib/workloads/traffic.mli: Eventsim
