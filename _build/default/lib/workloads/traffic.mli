(** Communication patterns over a set of hosts.

    Pure pair-list generators, parameterized by an explicit PRNG where
    randomized; experiments turn the pairs into UDP/TCP flows. *)

val random_permutation : Eventsim.Prng.t -> 'a array -> ('a * 'a) list
(** Each host sends to exactly one other and receives from exactly one
    other (a derangement: nobody talks to itself). Needs at least two
    hosts. *)

val stride : 'a array -> stride:int -> ('a * 'a) list
(** Host [i] sends to host [(i + stride) mod n], skipping self-pairs. *)

val all_pairs : 'a array -> ('a * 'a) list
(** Every ordered pair of distinct hosts. O(n²). *)

val hotspot : 'a array -> target_index:int -> ('a * 'a) list
(** Every other host sends to the host at [target_index]. *)

val sample_pairs : Eventsim.Prng.t -> 'a array -> n:int -> ('a * 'a) list
(** [n] random ordered pairs of distinct hosts (with replacement across
    pairs). *)
