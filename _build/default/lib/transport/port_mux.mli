(** Per-host transport demultiplexer.

    Claims the host agent's receive callback and dispatches incoming IP
    packets to registered UDP/TCP endpoints by destination port. One mux
    per host; endpoints from {!Udp_flow} and {!Tcp} register here. *)

type t

val attach : Portland.Host_agent.t -> t
(** Install the mux as the host's receive callback (replacing any previous
    one) and return it. Calling twice on the same host returns a fresh mux
    that supersedes the old one. *)

val host : t -> Portland.Host_agent.t

val register_udp :
  t -> port:int -> (src:Netcore.Ipv4_addr.t -> Netcore.Udp.t -> unit) -> unit
(** Receive UDP datagrams whose destination port matches. Replaces any
    previous registration on that port. *)

val register_tcp :
  t -> port:int -> (src:Netcore.Ipv4_addr.t -> Netcore.Tcp_seg.t -> unit) -> unit

val set_icmp_handler : t -> (src:Netcore.Ipv4_addr.t -> Netcore.Icmp.t -> unit) -> unit
(** Receive ICMP messages delivered to the host (in practice: echo
    replies — requests are answered inside {!Portland.Host_agent} before
    the mux ever sees them, as a kernel would). *)

val unregister_udp : t -> port:int -> unit
val unregister_tcp : t -> port:int -> unit

val unmatched : t -> int
(** Packets that arrived for no registered endpoint. *)
