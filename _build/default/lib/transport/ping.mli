(** ICMP echo measurement — ping(8) for the simulator.

    Sends sequence-numbered echo requests at an interval and matches the
    kernel-answered replies by (identifier, sequence), collecting the
    round-trip times into an {!Eventsim.Stats.Distribution}. On a fat
    tree the RTT distribution cleanly exposes the three locality tiers
    (same edge switch, same pod, across pods). *)

type t

val create : Eventsim.Engine.t -> Port_mux.t -> dst:Netcore.Ipv4_addr.t -> ?ident:int -> unit -> t
(** Bind a pinger on the mux's host toward a destination. [ident]
    defaults to a value derived from the host's device id. Claims the
    mux's ICMP handler. *)

val start : t -> ?count:int -> ?interval:Eventsim.Time.t -> ?payload_len:int -> unit -> unit
(** Begin probing: [count] requests (default 10) every [interval]
    (default 10 ms), [payload_len] echo bytes (default 56). *)

val stop : t -> unit

val sent : t -> int
val received : t -> int
val lost : t -> int
(** Requests sent whose reply has not (yet) arrived. *)

val rtt : t -> Eventsim.Stats.Distribution.t
(** Round-trip times in microseconds. *)

val pp_summary : Format.formatter -> t -> unit
(** ping(8)-style one-liner: sent/received plus min/avg/max RTT. *)
