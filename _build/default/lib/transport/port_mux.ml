open Netcore

type t = {
  host : Portland.Host_agent.t;
  udp : (int, src:Ipv4_addr.t -> Udp.t -> unit) Hashtbl.t;
  tcp : (int, src:Ipv4_addr.t -> Tcp_seg.t -> unit) Hashtbl.t;
  mutable icmp : (src:Ipv4_addr.t -> Icmp.t -> unit) option;
  mutable unmatched : int;
}

let host t = t.host

let dispatch t (pkt : Ipv4_pkt.t) =
  match pkt.Ipv4_pkt.payload with
  | Ipv4_pkt.Udp u ->
    (match Hashtbl.find_opt t.udp u.Udp.dst_port with
     | Some f -> f ~src:pkt.Ipv4_pkt.src u
     | None -> t.unmatched <- t.unmatched + 1)
  | Ipv4_pkt.Tcp s ->
    (match Hashtbl.find_opt t.tcp s.Tcp_seg.dst_port with
     | Some f -> f ~src:pkt.Ipv4_pkt.src s
     | None -> t.unmatched <- t.unmatched + 1)
  | Ipv4_pkt.Icmp m ->
    (match t.icmp with
     | Some f -> f ~src:pkt.Ipv4_pkt.src m
     | None -> t.unmatched <- t.unmatched + 1)
  | Ipv4_pkt.Igmp _ | Ipv4_pkt.Raw _ -> t.unmatched <- t.unmatched + 1

let attach host =
  let t =
    { host; udp = Hashtbl.create 4; tcp = Hashtbl.create 4; icmp = None; unmatched = 0 }
  in
  Portland.Host_agent.set_rx host (fun pkt -> dispatch t pkt);
  t

let register_udp t ~port f = Hashtbl.replace t.udp port f
let register_tcp t ~port f = Hashtbl.replace t.tcp port f
let set_icmp_handler t f = t.icmp <- Some f
let unregister_udp t ~port = Hashtbl.remove t.udp port
let unregister_tcp t ~port = Hashtbl.remove t.tcp port
let unmatched t = t.unmatched
