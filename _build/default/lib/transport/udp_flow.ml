open Eventsim
open Netcore

module Sender = struct
  type t = {
    timer : Timer.t;
    mutable count : int;
  }

  let start engine host ~dst ?(src_port = 9000) ?(dst_port = 9000) ?(payload_len = 1000)
      ~flow_id ~rate_pps () =
    if rate_pps <= 0 then invalid_arg "Udp_flow.Sender.start: rate must be positive";
    let period = max 1 (1_000_000_000 / rate_pps) in
    let rec t = lazy { timer = Timer.every engine ~period ~start_delay:period tick; count = 0 }
    and tick () =
      let t = Lazy.force t in
      let u = Udp.make ~src_port ~dst_port ~flow_id ~app_seq:t.count ~payload_len () in
      Portland.Host_agent.send_ip host ~dst (Ipv4_pkt.Udp u);
      t.count <- t.count + 1
    in
    Lazy.force t

  let stop t = Timer.stop t.timer
  let sent t = t.count
end

module Receiver = struct
  type t = {
    flow_id : int;
    arrivals : Stats.Series.t;
    mutable received : int;
    mutable lost : int;
    mutable duplicate : int;
    mutable next_expected : int;
  }

  let attach engine mux ?(port = 9000) ~flow_id () =
    let t =
      { flow_id;
        arrivals = Stats.Series.create ~name:"udp-arrivals" ();
        received = 0; lost = 0; duplicate = 0; next_expected = 0 }
    in
    Port_mux.register_udp mux ~port (fun ~src:_ (u : Udp.t) ->
        if u.Udp.flow_id = t.flow_id then begin
          t.received <- t.received + 1;
          Stats.Series.add t.arrivals ~time:(Engine.now engine) (float_of_int u.Udp.app_seq);
          if u.Udp.app_seq >= t.next_expected then begin
            t.lost <- t.lost + (u.Udp.app_seq - t.next_expected);
            t.next_expected <- u.Udp.app_seq + 1
          end
          else t.duplicate <- t.duplicate + 1
        end);
    t

  let received t = t.received
  let lost t = t.lost
  let duplicate t = t.duplicate
  let arrivals t = t.arrivals

  let max_gap t ~after =
    let pts = Stats.Series.points t.arrivals in
    let n = Array.length pts in
    if n < 2 then None
    else begin
      let best = ref None in
      for i = 1 to n - 1 do
        let t0, _ = pts.(i - 1) and t1, _ = pts.(i) in
        if t0 >= after then begin
          let gap = t1 - t0 in
          match !best with
          | Some (_, g) when g >= gap -> ()
          | _ -> best := Some (t0, gap)
        end
      done;
      !best
    end
end
