open Eventsim
open Netcore

type params = {
  mss : int;
  init_cwnd_mss : int;
  init_ssthresh : int;
  rto_min : Time.t;
  rto_init : Time.t;
  rto_max : Time.t;
  dupack_threshold : int;
  rcv_window : int;
  delayed_ack : bool;
}

let default_params =
  { mss = 1460;
    init_cwnd_mss = 2;
    init_ssthresh = 65535;
    rto_min = Time.ms 200;
    rto_init = Time.sec 1;
    rto_max = Time.sec 60;
    dupack_threshold = 3;
    rcv_window = 65535;
    delayed_ack = false }

type tcp_stats = {
  bytes_acked : int;
  bytes_delivered : int;
  segments_sent : int;
  acks_sent : int;
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  cwnd_bytes : int;
  srtt : Time.t option;
}

type t = {
  engine : Engine.t;
  p : params;
  src_host : Portland.Host_agent.t;
  dst_host : Portland.Host_agent.t;
  src_port : int;
  dst_port : int;
  total : int option;
  (* sender state *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable high_water : int; (* highest byte ever sent; sends below it are retransmissions *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable srtt : Time.t option;
  mutable rttvar : Time.t;
  mutable rto_backoff : int;
  mutable rto_timer : Timer.t option;
  mutable timed_seq : int;       (* ack covering this ends the sample *)
  mutable timed_start : Time.t;
  mutable timed_valid : bool;
  mutable stopped : bool;
  (* receiver state *)
  mutable rcv_nxt : int;
  ooo : (int, int) Hashtbl.t; (* seq -> len *)
  mutable unacked_segs : int;
  mutable delack_timer : Timer.t option;
  trace : Stats.Series.t;
  cwnd_series : Stats.Series.t;
  (* stats *)
  mutable s_segments : int;
  mutable s_acks_sent : int;
  mutable s_retransmits : int;
  mutable s_fast_retransmits : int;
  mutable s_timeouts : int;
}

let finished t =
  match t.total with Some total -> t.snd_una >= total | None -> false

let stats t =
  { bytes_acked = t.snd_una;
    bytes_delivered = t.rcv_nxt;
    segments_sent = t.s_segments;
    acks_sent = t.s_acks_sent;
    retransmits = t.s_retransmits;
    fast_retransmits = t.s_fast_retransmits;
    timeouts = t.s_timeouts;
    cwnd_bytes = t.cwnd;
    srtt = t.srtt }

let delivery_trace t = t.trace
let cwnd_trace t = t.cwnd_series

let set_cwnd t v =
  if v <> t.cwnd then begin
    t.cwnd <- v;
    Stats.Series.add t.cwnd_series ~time:(Engine.now t.engine) (float_of_int v)
  end

let goodput_bps t ~window =
  if window <= 0 then invalid_arg "Tcp.goodput_bps: window must be positive";
  let pts = Stats.Series.points t.trace in
  if Array.length pts = 0 then []
  else begin
    (* per-window delivered deltas from the cumulative trace *)
    let tbl = Hashtbl.create 64 in
    let prev = ref 0.0 in
    Array.iter
      (fun (time, v) ->
        let b = time / window in
        let delta = v -. !prev in
        prev := v;
        let cur = try Hashtbl.find tbl b with Not_found -> 0.0 in
        Hashtbl.replace tbl b (cur +. delta))
      pts;
    Hashtbl.fold (fun b v acc -> (b, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (b, bytes) -> (b * window, bytes *. 8.0 *. (1e9 /. float_of_int window)))
  end

(* ---------------- sender internals ---------------- *)

let current_rto t =
  let base =
    match t.srtt with
    | Some srtt -> max t.p.rto_min (srtt + (4 * t.rttvar))
    | None -> t.p.rto_init
  in
  min t.p.rto_max (base * t.rto_backoff)

let cancel_rto t =
  Option.iter Timer.stop t.rto_timer;
  t.rto_timer <- None

let seg_len t seq =
  let upper = match t.total with Some total -> total | None -> max_int in
  max 0 (min t.p.mss (upper - seq))

let send_segment t ~seq ~len ~retransmission =
  t.s_segments <- t.s_segments + 1;
  if retransmission then t.s_retransmits <- t.s_retransmits + 1;
  if retransmission && t.timed_valid && seq <= t.timed_seq then t.timed_valid <- false
  else if (not retransmission) && not t.timed_valid then begin
    t.timed_valid <- true;
    t.timed_seq <- seq + len;
    t.timed_start <- Engine.now t.engine
  end;
  let seg =
    Tcp_seg.make ~src_port:t.src_port ~dst_port:t.dst_port ~seq ~ack_num:0
      ~window:t.p.rcv_window ~payload_len:len ()
  in
  Portland.Host_agent.send_ip t.src_host ~dst:(Portland.Host_agent.ip t.dst_host)
    (Ipv4_pkt.Tcp seg)

let rec arm_rto t =
  cancel_rto t;
  if t.snd_nxt > t.snd_una && not t.stopped then
    t.rto_timer <- Some (Timer.after t.engine ~delay:(current_rto t) (fun () -> on_rto t))

and send_more t =
  if not t.stopped then begin
    let window = min t.cwnd t.p.rcv_window in
    let continue = ref true in
    while !continue do
      let inflight = t.snd_nxt - t.snd_una in
      let len = seg_len t t.snd_nxt in
      if len > 0 && inflight + len <= window then begin
        send_segment t ~seq:t.snd_nxt ~len ~retransmission:(t.snd_nxt < t.high_water);
        t.snd_nxt <- t.snd_nxt + len;
        if t.snd_nxt > t.high_water then t.high_water <- t.snd_nxt
      end
      else continue := false
    done;
    if t.rto_timer = None && t.snd_nxt > t.snd_una then arm_rto t
  end

and on_rto t =
  t.rto_timer <- None;
  if t.snd_nxt > t.snd_una && not t.stopped then begin
    t.s_timeouts <- t.s_timeouts + 1;
    let inflight = t.snd_nxt - t.snd_una in
    t.ssthresh <- max (inflight / 2) (2 * t.p.mss);
    set_cwnd t t.p.mss;
    t.in_recovery <- false;
    t.dup_acks <- 0;
    t.timed_valid <- false;
    t.rto_backoff <- min 64 (t.rto_backoff * 2);
    (* go-back-N: rewind and let send_more retransmit from the hole *)
    t.snd_nxt <- t.snd_una;
    send_more t;
    arm_rto t
  end

let sample_rtt t =
  let sample = Engine.now t.engine - t.timed_start in
  (match t.srtt with
   | None ->
     t.srtt <- Some sample;
     t.rttvar <- sample / 2
   | Some srtt ->
     let err = abs (srtt - sample) in
     t.rttvar <- ((3 * t.rttvar) + err) / 4;
     t.srtt <- Some (((7 * srtt) + sample) / 8));
  t.timed_valid <- false

let on_ack t (seg : Tcp_seg.t) =
  if not t.stopped then begin
    let ack = seg.Tcp_seg.ack_num in
    if ack > t.snd_una then begin
      if t.timed_valid && ack >= t.timed_seq then sample_rtt t;
      let newly = ack - t.snd_una in
      t.snd_una <- ack;
      t.rto_backoff <- 1;
      t.dup_acks <- 0;
      if t.in_recovery then begin
        if ack >= t.recover then begin
          (* full recovery: deflate *)
          t.in_recovery <- false;
          set_cwnd t t.ssthresh
        end
        else begin
          (* NewReno partial ack: retransmit the next hole, stay in
             recovery, partial deflation *)
          let len = min t.p.mss (t.snd_nxt - t.snd_una) in
          if len > 0 then send_segment t ~seq:t.snd_una ~len ~retransmission:true;
          set_cwnd t (max t.p.mss (t.cwnd - newly + t.p.mss))
        end
      end
      else if t.cwnd < t.ssthresh then set_cwnd t (t.cwnd + min newly t.p.mss)
      else set_cwnd t (t.cwnd + max 1 (t.p.mss * t.p.mss / t.cwnd));
      if t.snd_nxt > t.snd_una then arm_rto t else cancel_rto t;
      send_more t
    end
    else if t.snd_nxt > t.snd_una then begin
      t.dup_acks <- t.dup_acks + 1;
      if (not t.in_recovery) && t.dup_acks = t.p.dupack_threshold then begin
        t.s_fast_retransmits <- t.s_fast_retransmits + 1;
        let inflight = t.snd_nxt - t.snd_una in
        t.ssthresh <- max (inflight / 2) (2 * t.p.mss);
        let len = min t.p.mss (t.snd_nxt - t.snd_una) in
        send_segment t ~seq:t.snd_una ~len ~retransmission:true;
        set_cwnd t (t.ssthresh + (t.p.dupack_threshold * t.p.mss));
        t.in_recovery <- true;
        t.recover <- t.snd_nxt;
        arm_rto t
      end
      else if t.in_recovery then begin
        set_cwnd t (t.cwnd + t.p.mss);
        send_more t
      end
    end
  end

(* ---------------- receiver internals ---------------- *)

let send_ack t =
  t.s_acks_sent <- t.s_acks_sent + 1;
  t.unacked_segs <- 0;
  Option.iter Timer.stop t.delack_timer;
  t.delack_timer <- None;
  let seg =
    Tcp_seg.make ~src_port:t.dst_port ~dst_port:t.src_port ~seq:0 ~ack_num:t.rcv_nxt
      ~window:t.p.rcv_window ~payload_len:0 ()
  in
  Portland.Host_agent.send_ip t.dst_host ~dst:(Portland.Host_agent.ip t.src_host)
    (Ipv4_pkt.Tcp seg)

let maybe_ack t ~in_order =
  if not t.p.delayed_ack then send_ack t
  else if not in_order then send_ack t (* out-of-order: immediate dup ACK *)
  else begin
    t.unacked_segs <- t.unacked_segs + 1;
    if t.unacked_segs >= 2 then send_ack t
    else if t.delack_timer = None then
      t.delack_timer <- Some (Timer.after t.engine ~delay:(Time.ms 40) (fun () ->
          t.delack_timer <- None;
          if t.unacked_segs > 0 then send_ack t))
  end

let on_data t (seg : Tcp_seg.t) =
  if seg.Tcp_seg.payload_len > 0 then begin
    let seq = seg.Tcp_seg.seq and len = seg.Tcp_seg.payload_len in
    if seq = t.rcv_nxt then begin
      t.rcv_nxt <- t.rcv_nxt + len;
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt t.ooo t.rcv_nxt with
        | Some l ->
          Hashtbl.remove t.ooo t.rcv_nxt;
          t.rcv_nxt <- t.rcv_nxt + l
        | None -> continue := false
      done;
      Stats.Series.add t.trace ~time:(Engine.now t.engine) (float_of_int t.rcv_nxt);
      maybe_ack t ~in_order:true
    end
    else begin
      if seq > t.rcv_nxt then Hashtbl.replace t.ooo seq len;
      maybe_ack t ~in_order:false
    end
  end

(* ---------------- lifecycle ---------------- *)

let stop t =
  t.stopped <- true;
  Option.iter Timer.stop t.delack_timer;
  t.delack_timer <- None;
  cancel_rto t

let connect engine ?(params = default_params) ~src ~dst ?(src_port = 5001) ?(dst_port = 5001)
    ?total_bytes () =
  let t =
    { engine; p = params;
      src_host = Port_mux.host src;
      dst_host = Port_mux.host dst;
      src_port; dst_port;
      total = total_bytes;
      snd_una = 0; snd_nxt = 0; high_water = 0;
      cwnd = params.init_cwnd_mss * params.mss;
      ssthresh = params.init_ssthresh;
      dup_acks = 0; in_recovery = false; recover = 0;
      srtt = None; rttvar = 0; rto_backoff = 1; rto_timer = None;
      timed_seq = 0; timed_start = 0; timed_valid = false;
      stopped = false;
      rcv_nxt = 0; ooo = Hashtbl.create 32; unacked_segs = 0; delack_timer = None;
      trace = Stats.Series.create ~name:"tcp-delivered" ();
      cwnd_series = Stats.Series.create ~name:"tcp-cwnd" ();
      s_segments = 0; s_acks_sent = 0; s_retransmits = 0; s_fast_retransmits = 0;
      s_timeouts = 0 }
  in
  Port_mux.register_tcp src ~port:src_port (fun ~src:_ seg ->
      if seg.Tcp_seg.flags.Tcp_seg.ack then on_ack t seg);
  Port_mux.register_tcp dst ~port:dst_port (fun ~src:_ seg -> on_data t seg);
  ignore (Engine.schedule engine ~delay:0 (fun () -> send_more t));
  t
