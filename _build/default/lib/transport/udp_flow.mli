(** Constant-rate UDP flows with loss and outage accounting — the probe
    traffic of the paper's UDP convergence experiment.

    A sender emits sequence-numbered datagrams at a fixed rate; the
    receiver records arrival times and sequence numbers, from which the
    experiment extracts the outage window (the longest inter-arrival gap)
    and the number of lost packets. *)

module Sender : sig
  type t

  val start :
    Eventsim.Engine.t -> Portland.Host_agent.t -> dst:Netcore.Ipv4_addr.t ->
    ?src_port:int -> ?dst_port:int -> ?payload_len:int -> flow_id:int -> rate_pps:int ->
    unit -> t
  (** Begin sending immediately; [payload_len] defaults to 1000 bytes. *)

  val stop : t -> unit
  val sent : t -> int
end

module Receiver : sig
  type t

  val attach : Eventsim.Engine.t -> Port_mux.t -> ?port:int -> flow_id:int -> unit -> t
  (** Listen on [port] (default 9000) for datagrams of the given flow. *)

  val received : t -> int
  val lost : t -> int
  (** Sequence numbers skipped so far (assumes in-order delivery, which
      holds per flow because ECMP pins a flow to one path). *)

  val duplicate : t -> int

  val arrivals : t -> Eventsim.Stats.Series.t
  (** One point per datagram: (arrival time, sequence number). *)

  val max_gap : t -> after:Eventsim.Time.t -> (Eventsim.Time.t * Eventsim.Time.t) option
  (** Longest inter-arrival gap whose start is at or after the given time:
      [(gap_start, gap_length)]. [None] with fewer than 2 arrivals. *)
end
