lib/transport/port_mux.mli: Netcore Portland
