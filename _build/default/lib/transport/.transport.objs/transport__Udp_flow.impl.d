lib/transport/udp_flow.ml: Array Engine Eventsim Ipv4_pkt Lazy Netcore Port_mux Portland Stats Timer Udp
