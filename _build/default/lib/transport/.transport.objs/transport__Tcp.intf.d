lib/transport/tcp.mli: Eventsim Port_mux
