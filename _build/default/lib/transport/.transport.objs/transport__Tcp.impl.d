lib/transport/tcp.ml: Array Engine Eventsim Hashtbl Ipv4_pkt List Netcore Option Port_mux Portland Stats Tcp_seg Time Timer
