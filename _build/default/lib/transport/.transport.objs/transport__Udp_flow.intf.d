lib/transport/udp_flow.mli: Eventsim Netcore Port_mux Portland
