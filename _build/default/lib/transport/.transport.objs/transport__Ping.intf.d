lib/transport/ping.mli: Eventsim Format Netcore Port_mux
