lib/transport/port_mux.ml: Hashtbl Icmp Ipv4_addr Ipv4_pkt Netcore Portland Tcp_seg Udp
