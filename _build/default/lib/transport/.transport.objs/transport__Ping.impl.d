lib/transport/ping.ml: Engine Eventsim Format Hashtbl Icmp Ipv4_addr Ipv4_pkt Netcore Option Port_mux Portland Stats Time Timer
