(** Simplified TCP — everything the paper's evaluation depends on, nothing
    it doesn't.

    Implemented: byte-sequence transfer with cumulative ACKs, slow start
    and congestion avoidance, triple-duplicate-ACK fast retransmit with
    fast recovery, SRTT/RTTVAR estimation (Karn's rule: retransmitted
    segments don't update the estimate), retransmission timeouts with
    exponential backoff and the classical {b 200 ms minimum RTO} — the
    constant that bounds the paper's TCP convergence and VM migration
    results. Omitted (documented in DESIGN.md): connection establishment
    and teardown (endpoints are pre-associated), delayed ACKs, SACK,
    window scaling beyond the configured receive window.

    A connection is one sender and one receiver pinned to two hosts. The
    receiver records a [(time, contiguous bytes delivered)] trace — the
    sequence-vs-time figure of the paper — and both ends count
    retransmission events. *)

type params = {
  mss : int;               (** payload bytes per segment (default 1460) *)
  init_cwnd_mss : int;     (** initial congestion window, in MSS (2) *)
  init_ssthresh : int;     (** bytes (65535) *)
  rto_min : Eventsim.Time.t;  (** 200 ms *)
  rto_init : Eventsim.Time.t; (** 1 s, before the first RTT sample *)
  rto_max : Eventsim.Time.t;  (** backoff cap, 60 s *)
  dupack_threshold : int;  (** 3 *)
  rcv_window : int;        (** receiver's advertised window, bytes *)
  delayed_ack : bool;      (** ACK every second in-order segment, with a
                               40 ms delayed-ACK timer (off by default,
                               matching the rest of the evaluation) *)
}

val default_params : params

type t

type tcp_stats = {
  bytes_acked : int;          (** delivered & acknowledged at the sender *)
  bytes_delivered : int;      (** contiguous bytes at the receiver *)
  segments_sent : int;
  acks_sent : int;            (** pure ACKs emitted by the receiver *)
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  cwnd_bytes : int;
  srtt : Eventsim.Time.t option;
}

val connect :
  Eventsim.Engine.t -> ?params:params -> src:Port_mux.t -> dst:Port_mux.t ->
  ?src_port:int -> ?dst_port:int -> ?total_bytes:int -> unit -> t
(** Associate a sender on [src]'s host with a receiver on [dst]'s host and
    start transferring immediately. [total_bytes] absent means an
    unbounded stream.

    The connection follows the {e receiver's host} wherever it goes: the
    sender addresses the destination IP, so a migrated VM keeps receiving
    once ARP state heals — exactly the property the migration experiment
    demonstrates. *)

val stop : t -> unit
(** Stop transmitting and cancel timers. *)

val finished : t -> bool
(** True when [total_bytes] was given and fully acknowledged. *)

val stats : t -> tcp_stats

val delivery_trace : t -> Eventsim.Stats.Series.t
(** Receiver-side (time, contiguous bytes) points — one per segment that
    advanced delivery. *)

val goodput_bps : t -> window:Eventsim.Time.t -> (Eventsim.Time.t * float) list
(** Delivered-bytes trace differentiated into a bits-per-second series
    over windows of the given width. *)

val cwnd_trace : t -> Eventsim.Stats.Series.t
(** Sender-side (time, congestion-window bytes) points, one per change —
    slow start, fast recovery and RTO collapses are all visible. *)
