open Eventsim
open Netcore

type t = {
  engine : Engine.t;
  mux : Port_mux.t;
  dst : Ipv4_addr.t;
  ident : int;
  outstanding : (int, Time.t) Hashtbl.t; (* seq -> send time *)
  rtt : Stats.Distribution.t;
  mutable next_seq : int;
  mutable received : int;
  mutable timer : Timer.t option;
}

let create engine mux ~dst ?ident () =
  let ident =
    match ident with
    | Some i -> i
    | None -> Portland.Host_agent.device_id (Port_mux.host mux) land 0xFFFF
  in
  let t =
    { engine; mux; dst; ident;
      outstanding = Hashtbl.create 16;
      rtt = Stats.Distribution.create ();
      next_seq = 0; received = 0; timer = None }
  in
  Port_mux.set_icmp_handler mux (fun ~src (m : Icmp.t) ->
      match m with
      | Icmp.Echo_reply { ident; seq; _ }
        when ident = t.ident && Ipv4_addr.equal src t.dst ->
        (match Hashtbl.find_opt t.outstanding seq with
         | Some sent_at ->
           Hashtbl.remove t.outstanding seq;
           t.received <- t.received + 1;
           Stats.Distribution.add t.rtt (Time.to_us_f (Engine.now engine - sent_at))
         | None -> ())
      | Icmp.Echo_reply _ | Icmp.Echo_request _ -> ());
  t

let send_one t ~payload_len =
  let seq = t.next_seq land 0xFFFF in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.outstanding seq (Engine.now t.engine);
  let req = Icmp.echo_request ~payload_len ~ident:t.ident ~seq () in
  Portland.Host_agent.send_ip (Port_mux.host t.mux) ~dst:t.dst (Ipv4_pkt.Icmp req)

let stop t =
  Option.iter Timer.stop t.timer;
  t.timer <- None

let start t ?(count = 10) ?(interval = Time.ms 10) ?(payload_len = 56) () =
  stop t;
  let remaining = ref count in
  t.timer <-
    Some
      (Timer.every t.engine ~period:interval ~start_delay:1 (fun () ->
           if !remaining > 0 then begin
             send_one t ~payload_len;
             decr remaining
           end
           else stop t))

let sent t = t.next_seq
let received t = t.received
let lost t = Hashtbl.length t.outstanding
let rtt t = t.rtt

let pp_summary fmt t =
  if Stats.Distribution.count t.rtt = 0 then
    Format.fprintf fmt "%d sent, 0 received" (sent t)
  else
    Format.fprintf fmt "%d sent, %d received; rtt min/avg/max = %.1f/%.1f/%.1f us" (sent t)
      (received t)
      (Stats.Distribution.min t.rtt)
      (Stats.Distribution.mean t.rtt)
      (Stats.Distribution.max t.rtt)
