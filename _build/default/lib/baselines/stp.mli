(** Simplified IEEE 802.1D spanning tree.

    The baseline PortLand is compared against: conventional layer-2
    switches must run spanning tree to avoid broadcast storms on looped
    topologies like fat trees, at the cost of (a) deactivating all but a
    tree's worth of links and (b) re-convergence times measured in tens of
    seconds (max-age expiry plus two forward-delay stages) — against
    PortLand's tens of milliseconds.

    Modelled: root election over configuration BPDUs, root/designated/
    blocked port roles, listening→learning→forwarding transitions gated
    by the forward delay, hello refresh and max-age expiry of stale
    information. Not modelled (unneeded for the comparison): topology
    change notifications, path costs other than hop count, RSTP. *)

type port_role = Root_port | Designated | Blocked

type port_phase = Listening | Learning | Forwarding

type t

val create :
  Eventsim.Engine.t -> bridge_id:int -> nports:int ->
  ?hello:Eventsim.Time.t -> ?forward_delay:Eventsim.Time.t -> ?max_age:Eventsim.Time.t ->
  ?on_topology_change:(unit -> unit) ->
  send:(port:int -> Netcore.Bpdu.t -> unit) -> unit -> t
(** Defaults: hello 2 s, forward delay 15 s, max age 20 s.
    [on_topology_change] fires whenever any port's role changes — the
    hook {!Learning_switch} uses to flush its MAC table, standing in for
    802.1D topology-change notifications. *)

val start : t -> unit
val stop : t -> unit

val on_bpdu : t -> port:int -> Netcore.Bpdu.t -> unit

val port_down : t -> port:int -> unit
(** Loss-of-carrier notification: discard the port's stored BPDU and
    recompute roles immediately (802.1D reacts to local link-down without
    waiting for max-age expiry). *)

val forwarding : t -> port:int -> bool
(** May the dataplane forward on this port? (Blocked, listening and
    learning ports may not.) *)

val learning_allowed : t -> port:int -> bool
(** May the MAC table learn from this port? (Learning and forwarding.) *)

val role : t -> port:int -> port_role
val phase : t -> port:int -> port_phase
val is_root_bridge : t -> bool
val root_id : t -> int

val converged : t -> bool
(** Every non-blocked port has reached the forwarding phase. *)
