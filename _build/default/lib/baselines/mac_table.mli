(** MAC learning table with aging — the forwarding state of a conventional
    Ethernet switch. Its size grows with the number of communicating
    hosts, which is exactly the scaling problem PortLand's PMAC prefixes
    eliminate (the switch-state experiment contrasts the two). *)

type t

val create : Eventsim.Engine.t -> ?aging:Eventsim.Time.t -> unit -> t
(** Default aging time 300 s, as in 802.1D. *)

val learn : ?vlan:int -> t -> mac:Netcore.Mac_addr.t -> port:int -> unit
(** [vlan] scopes the entry (802.1Q independent-VLAN learning); default
    scope 0 is the untagged/no-VLAN table. *)

val lookup : ?vlan:int -> t -> Netcore.Mac_addr.t -> int option
(** [None] once the entry has aged out. *)

val size : t -> int
(** Unexpired entries (expired ones are swept lazily). *)

val flush : t -> unit
val flush_port : t -> int -> unit
(** Forget everything learned on one port (topology change). *)
