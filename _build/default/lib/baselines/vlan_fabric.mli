(** VLAN-partitioned layer 2 — the remaining column of the paper's
    requirements matrix.

    The classic enterprise answer to flat-L2 scaling: carve the fabric
    into per-pod VLANs. Host-facing edge ports are access ports in their
    pod's VLAN; every switch–switch port is a trunk. This buys broadcast
    isolation (storms and ARP stay inside a VLAN) at the paper's listed
    costs: every access port must be {e configured}
    ({!config_entry_count}), layer-2 reachability stops at the VLAN
    boundary (inter-VLAN traffic needs routers this baseline deliberately
    omits), and a VM can only migrate {e within} its VLAN without
    renumbering. *)

type t

val create :
  ?config:Portland.Config.t -> ?stp:bool -> ?link_params:Switchfab.Net.link_params ->
  Topology.Multirooted.spec -> t
(** One VLAN per pod (VID = pod + 1). *)

val create_fattree : ?config:Portland.Config.t -> ?stp:bool -> k:int -> unit -> t

val engine : t -> Eventsim.Engine.t
val net : t -> Switchfab.Net.t
val tree : t -> Topology.Multirooted.t
val host : t -> pod:int -> edge:int -> slot:int -> Portland.Host_agent.t
val run_for : t -> Eventsim.Time.t -> unit
val await_stp_convergence : ?timeout:Eventsim.Time.t -> t -> bool

val config_entry_count : t -> int
(** Access-port VLAN assignments a human/provisioning system must supply
    (one per host-facing port). *)

val migrate_host : t -> Portland.Host_agent.t -> to_:int * int * int -> unit
(** Re-plug a host at another position (instantaneous) and let it
    announce itself; the destination port keeps {e its own} VLAN, so
    migration works iff source and target pods share a VLAN. *)
