(** A complete conventional layer-2 deployment on the same topology —
    flood-and-learn switches (with or without spanning tree) plus
    unmodified hosts. The comparator for the requirements matrix, the
    switch-state experiment and the failure-recovery comparison.

    Hosts reuse [Portland.Host_agent] unchanged: in a flat layer 2
    network, its broadcast ARP requests simply flood to the real target,
    which replies with its actual MAC. *)

type t

val create :
  ?config:Portland.Config.t -> ?stp:bool -> ?link_params:Switchfab.Net.link_params ->
  Topology.Multirooted.spec -> t
(** [stp] defaults to true. With [stp:false] on a multi-rooted tree the
    first broadcast triggers a storm — callable on purpose, with
    [run_bounded] to keep the event count finite. *)

val create_fattree : ?config:Portland.Config.t -> ?stp:bool -> k:int -> unit -> t

val engine : t -> Eventsim.Engine.t
val net : t -> Switchfab.Net.t
val tree : t -> Topology.Multirooted.t
val host : t -> pod:int -> edge:int -> slot:int -> Portland.Host_agent.t
val hosts : t -> Portland.Host_agent.t list
val switches : t -> Learning_switch.t list

val run_until : t -> Eventsim.Time.t -> unit
val run_for : t -> Eventsim.Time.t -> unit

val run_bounded : t -> max_events:int -> int
(** Run at most that many engine events (storm containment); returns the
    number actually processed. *)

val await_stp_convergence : ?timeout:Eventsim.Time.t -> t -> bool
(** Advance until every switch's spanning tree has converged (default
    timeout 120 s of simulated time). Immediately true when built with
    [stp:false]. *)

val total_frames_handled : t -> int
val mac_table_sizes : t -> int list
val fail_link_between : t -> a:int -> b:int -> bool
