(** Conventional flood-and-learn Ethernet switch, optionally protected by
    {!Stp}.

    Forwarding: learn the source MAC's port; unicast to the learned port
    when known, flood otherwise; always flood broadcast/multicast. With
    STP disabled on a looped topology this produces the broadcast storms
    the requirements-matrix experiment demonstrates; with STP enabled it
    is the classic baseline whose state grows with the number of hosts and
    whose failure recovery takes tens of seconds. *)

type t

val attach :
  Eventsim.Engine.t -> Switchfab.Net.t -> device:int -> ?stp:bool ->
  ?vlans:int option array -> unit -> t
(** Install the switch behaviour on a device ([stp] defaults to true).

    [vlans] switches on 802.1Q mode: one entry per port, [Some v] for an
    access port in VLAN [v] (frames arrive/leave untagged) and [None] for
    a trunk (frames arrive/leave tagged; untagged frames on a trunk are
    dropped — no native VLAN). Learning and forwarding are then scoped
    per VLAN, and frames never cross VLAN boundaries. Without [vlans]
    the switch is a classic VLAN-unaware bridge. Spanning tree, when
    enabled, is a single shared tree (BPDUs untagged), as in 802.1D. *)

val start : t -> unit
val stop : t -> unit

val device : t -> int
val mac_table : t -> Mac_table.t
val stp : t -> Stp.t option
val frames_handled : t -> int
val floods : t -> int
