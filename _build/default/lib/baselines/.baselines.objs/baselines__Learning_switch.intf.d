lib/baselines/learning_switch.mli: Eventsim Mac_table Stp Switchfab
