lib/baselines/learning_switch.ml: Array Eth Eventsim Mac_addr Mac_table Netcore Option Stp Switchfab
