lib/baselines/l3_fabric.ml: Array Eth Eventsim Hashtbl Ipv4_addr Ipv4_pkt List Mac_addr Netcore Option Switchfab Topology
