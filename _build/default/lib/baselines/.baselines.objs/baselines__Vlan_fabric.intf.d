lib/baselines/vlan_fabric.mli: Eventsim Portland Switchfab Topology
