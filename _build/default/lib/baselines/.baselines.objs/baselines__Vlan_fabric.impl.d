lib/baselines/vlan_fabric.ml: Array Engine Eventsim Hashtbl Learning_switch List Netcore Portland Stp Switchfab Time Topology
