lib/baselines/mac_table.mli: Eventsim Netcore
