lib/baselines/ethernet_fabric.ml: Array Engine Eventsim Hashtbl Learning_switch List Mac_table Netcore Portland Stp Switchfab Time Topology
