lib/baselines/stp.ml: Array Bpdu Engine Eventsim Netcore Option Time Timer
