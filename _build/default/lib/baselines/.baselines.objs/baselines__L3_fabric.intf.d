lib/baselines/l3_fabric.mli: Eventsim Netcore Switchfab Topology
