lib/baselines/stp.mli: Eventsim Netcore
