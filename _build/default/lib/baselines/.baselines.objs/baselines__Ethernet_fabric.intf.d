lib/baselines/ethernet_fabric.mli: Eventsim Learning_switch Portland Switchfab Topology
