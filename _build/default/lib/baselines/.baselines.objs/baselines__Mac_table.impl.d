lib/baselines/mac_table.ml: Engine Eventsim Hashtbl List Netcore Time
