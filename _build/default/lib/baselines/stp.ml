open Eventsim
open Netcore

type port_role = Root_port | Designated | Blocked

type port_phase = Listening | Learning | Forwarding

type received = { bpdu : Bpdu.t; expires : Time.t }

type port = {
  mutable stored : received option;
  mutable prole : port_role;
  mutable phase : port_phase;
  mutable phase_since : Time.t;
}

type t = {
  engine : Engine.t;
  bridge_id : int;
  nports : int;
  hello : Time.t;
  forward_delay : Time.t;
  max_age : Time.t;
  send : port:int -> Bpdu.t -> unit;
  on_topology_change : unit -> unit;
  ports : port array;
  mutable root_id : int;
  mutable root_cost : int;
  mutable root_port : int option;
  mutable hello_timer : Timer.t option;
  mutable tick_timer : Timer.t option;
}

let create engine ~bridge_id ~nports ?(hello = Time.sec 2) ?(forward_delay = Time.sec 15)
    ?(max_age = Time.sec 20) ?(on_topology_change = fun () -> ()) ~send () =
  { engine; bridge_id; nports; hello; forward_delay; max_age; send; on_topology_change;
    ports =
      Array.init nports (fun _ ->
          { stored = None; prole = Designated; phase = Listening; phase_since = 0 });
    root_id = bridge_id;
    root_cost = 0;
    root_port = None;
    hello_timer = None;
    tick_timer = None }

let my_bpdu t ~port = { Bpdu.root_id = t.root_id; root_cost = t.root_cost; bridge_id = t.bridge_id; port }

let set_role t i role =
  let p = t.ports.(i) in
  if p.prole <> role then begin
    p.prole <- role;
    (* any role change restarts the forwarding state machine *)
    p.phase <- Listening;
    p.phase_since <- Engine.now t.engine;
    t.on_topology_change ()
  end

(* recompute root, root port and per-port roles from stored BPDUs *)
let recompute t =
  let now = Engine.now t.engine in
  (* expire stale info *)
  Array.iter
    (fun p ->
      match p.stored with
      | Some r when r.expires <= now -> p.stored <- None
      | Some _ | None -> ())
    t.ports;
  (* best received offer, augmented by one hop of cost *)
  let best = ref None in
  Array.iteri
    (fun i p ->
      match p.stored with
      | None -> ()
      | Some { bpdu; _ } ->
        let offer = { bpdu with Bpdu.root_cost = bpdu.Bpdu.root_cost + 1 } in
        (match !best with
         | Some (_, cur) when not (Bpdu.better offer cur) -> ()
         | Some _ | None -> best := Some (i, offer)))
    t.ports;
  let own = { Bpdu.root_id = t.bridge_id; root_cost = 0; bridge_id = t.bridge_id; port = 0 } in
  (match !best with
   | Some (i, offer) when Bpdu.better offer own ->
     t.root_id <- offer.Bpdu.root_id;
     t.root_cost <- offer.Bpdu.root_cost;
     t.root_port <- Some i
   | Some _ | None ->
     t.root_id <- t.bridge_id;
     t.root_cost <- 0;
     t.root_port <- None);
  Array.iteri
    (fun i p ->
      if t.root_port = Some i then set_role t i Root_port
      else begin
        let mine = my_bpdu t ~port:i in
        match p.stored with
        | None -> set_role t i Designated
        | Some { bpdu; _ } -> set_role t i (if Bpdu.better mine bpdu then Designated else Blocked)
      end)
    t.ports

let advance_phases t =
  let now = Engine.now t.engine in
  Array.iter
    (fun p ->
      match p.prole with
      | Blocked -> ()
      | Root_port | Designated ->
        if p.phase = Listening && now - p.phase_since >= t.forward_delay then begin
          p.phase <- Learning;
          p.phase_since <- now
        end
        else if p.phase = Learning && now - p.phase_since >= t.forward_delay then
          p.phase <- Forwarding)
    t.ports

let send_hellos t =
  Array.iteri
    (fun i p -> if p.prole = Designated then t.send ~port:i (my_bpdu t ~port:i))
    t.ports

let on_bpdu t ~port (b : Bpdu.t) =
  if port >= 0 && port < t.nports then begin
    t.ports.(port).stored <- Some { bpdu = b; expires = Engine.now t.engine + t.max_age };
    recompute t
  end

let port_down t ~port =
  if port >= 0 && port < t.nports then begin
    t.ports.(port).stored <- None;
    recompute t
  end

let start t =
  if t.hello_timer = None then begin
    let phase = 1 + (t.bridge_id * 2377 mod t.hello) in
    t.hello_timer <-
      Some (Timer.every t.engine ~period:t.hello ~start_delay:phase (fun () ->
                recompute t;
                send_hellos t));
    t.tick_timer <-
      Some (Timer.every t.engine ~period:(Time.sec 1) ~start_delay:(phase / 2 + 1) (fun () ->
                recompute t;
                advance_phases t))
  end

let stop t =
  Option.iter Timer.stop t.hello_timer;
  Option.iter Timer.stop t.tick_timer;
  t.hello_timer <- None;
  t.tick_timer <- None

let forwarding t ~port = t.ports.(port).prole <> Blocked && t.ports.(port).phase = Forwarding

let learning_allowed t ~port =
  t.ports.(port).prole <> Blocked
  && (t.ports.(port).phase = Learning || t.ports.(port).phase = Forwarding)

let role t ~port = t.ports.(port).prole
let phase t ~port = t.ports.(port).phase
let is_root_bridge t = t.root_id = t.bridge_id
let root_id t = t.root_id

let converged t =
  Array.for_all (fun p -> p.prole = Blocked || p.phase = Forwarding) t.ports
