(** Static layer-3 (subnet-per-pod) fabric — the "Layer 3" column of the
    paper's requirements matrix.

    Every switch is a router with {e manually configured} static routes
    (the configuration burden is exposed as {!config_entry_count}, the
    state a human or provisioning system must supply before the network
    works — PortLand needs zero). Hosts live in per-edge /24 subnets
    ([10.pod.edge.0/24]); upward routes are static ECMP. Routers skip
    locally dead interfaces (fast local repair) but have no routing
    protocol, so remote failures can blackhole traffic; and a VM that
    migrates without renumbering becomes unreachable — the R1 violation
    the experiment demonstrates. *)

type t

(** Minimal layer-3 end host (default route to its edge router). *)
module Host : sig
  type h

  val ip : h -> Netcore.Ipv4_addr.t
  val send_ip : h -> dst:Netcore.Ipv4_addr.t -> Netcore.Ipv4_pkt.payload -> unit
  val set_rx : h -> (Netcore.Ipv4_pkt.t -> unit) -> unit
  val received : h -> int
end

val create : ?link_params:Switchfab.Net.link_params -> Topology.Multirooted.spec -> t
val create_fattree : ?link_params:Switchfab.Net.link_params -> k:int -> unit -> t

val engine : t -> Eventsim.Engine.t
val net : t -> Switchfab.Net.t
val host : t -> pod:int -> edge:int -> slot:int -> Host.h
val run_for : t -> Eventsim.Time.t -> unit
val fail_link_between : t -> a:int -> b:int -> bool

val migrate_keeping_ip : t -> Host.h -> to_:int * int * int -> unit
(** Re-plug the host under a different edge switch {e without} changing
    its address — instantaneous, to isolate the addressing problem. *)

val config_entry_count : t -> int
(** Total statically configured route entries across all routers. *)
