open Netcore

type t = {
  net : Switchfab.Net.t;
  device : int;
  nports : int;
  table : Mac_table.t;
  stp : Stp.t option;
  vlans : int option array option; (* per-port access VLAN; None entry = trunk *)
  link_up : bool array; (* last observed carrier per port *)
  mutable carrier_timer : Eventsim.Timer.t option;
  mutable frames : int;
  mutable floods : int;
}

let device t = t.device
let mac_table t = t.table
let stp t = t.stp
let frames_handled t = t.frames
let floods t = t.floods

let may_forward t port =
  match t.stp with Some s -> Stp.forwarding s ~port | None -> true

let may_learn t port =
  match t.stp with Some s -> Stp.learning_allowed s ~port | None -> true

(* VLAN classification: which VLAN does an arriving frame belong to?
   [None] = drop (tag/port mismatch); [Some 0] = VLAN-unaware mode. *)
let classify t in_port (frame : Eth.t) =
  match t.vlans with
  | None -> Some 0
  | Some cfg ->
    (match (cfg.(in_port), frame.Eth.vlan) with
     | Some access_vlan, None -> Some access_vlan
     | Some _, Some _ -> None (* tagged frame on an access port *)
     | None, Some tag -> Some tag
     | None, None -> None (* untagged on a trunk: no native VLAN *))

(* may this frame (in [vlan]) leave through [port], and how is it tagged? *)
let egress_frame t port ~vlan (frame : Eth.t) =
  match t.vlans with
  | None -> Some frame
  | Some cfg ->
    (match cfg.(port) with
     | Some access_vlan when access_vlan = vlan -> Some (Eth.with_vlan frame None)
     | Some _ -> None (* access port in a different VLAN *)
     | None -> Some (Eth.with_vlan frame (Some vlan)))

let send t port ~vlan frame =
  match egress_frame t port ~vlan frame with
  | Some out -> Switchfab.Net.transmit t.net ~node:t.device ~port out
  | None -> ()

let flood t ~except ~vlan frame =
  t.floods <- t.floods + 1;
  for port = 0 to t.nports - 1 do
    if port <> except && may_forward t port then send t port ~vlan frame
  done

let handle t in_port (frame : Eth.t) =
  t.frames <- t.frames + 1;
  match frame.Eth.payload with
  | Eth.Bpdu b -> Option.iter (fun s -> Stp.on_bpdu s ~port:in_port b) t.stp
  | Eth.Arp _ | Eth.Ipv4 _ | Eth.Ldp _ | Eth.Raw _ ->
    (match classify t in_port frame with
     | None -> ()
     | Some vlan ->
       if may_forward t in_port || may_learn t in_port then begin
         if may_learn t in_port then
           Mac_table.learn ~vlan t.table ~mac:frame.Eth.src ~port:in_port;
         if may_forward t in_port then begin
           if Mac_addr.is_broadcast frame.Eth.dst || Mac_addr.is_multicast frame.Eth.dst then
             flood t ~except:in_port ~vlan frame
           else begin
             match Mac_table.lookup ~vlan t.table frame.Eth.dst with
             | Some port when port <> in_port ->
               if may_forward t port then send t port ~vlan frame
             | Some _ -> () (* destination is back where it came from *)
             | None -> flood t ~except:in_port ~vlan frame
           end
         end
       end)

let attach engine net ~device ?(stp = true) ?vlans () =
  let dev = Switchfab.Net.device net device in
  let nports = Switchfab.Net.nports dev in
  (match vlans with
   | Some cfg when Array.length cfg <> nports ->
     invalid_arg "Learning_switch.attach: vlans must have one entry per port"
   | Some _ | None -> ());
  let table = Mac_table.create engine () in
  let stp_inst =
    if stp then
      Some
        (Stp.create engine ~bridge_id:device ~nports
           ~on_topology_change:(fun () -> Mac_table.flush table)
           ~send:(fun ~port bpdu ->
             Switchfab.Net.transmit net ~node:device ~port
               (Eth.make ~dst:Mac_addr.broadcast ~src:Mac_addr.zero (Eth.Bpdu bpdu)))
           ())
    else None
  in
  let t =
    { net; device; nports; table; stp = stp_inst; vlans; link_up = Array.make nports true;
      carrier_timer = None; frames = 0; floods = 0 }
  in
  Switchfab.Net.set_handler dev (fun in_port frame -> handle t in_port frame);
  let check_carrier () =
    for port = 0 to t.nports - 1 do
      let up =
        match Switchfab.Net.peer_of t.net ~node:t.device ~port with
        | None -> false
        | Some (peer, _) ->
          (match Switchfab.Net.link_between t.net t.device peer with
           | Some l -> Switchfab.Net.link_is_up l
           | None -> false)
      in
      if t.link_up.(port) && not up then begin
        (* loss of carrier: forget everything learned through this port *)
        Mac_table.flush_port t.table port;
        Option.iter (fun s -> Stp.port_down s ~port) t.stp
      end;
      t.link_up.(port) <- up
    done
  in
  t.carrier_timer <-
    Some (Eventsim.Timer.every engine ~period:(Eventsim.Time.ms 100) check_carrier);
  t

let start t = Option.iter Stp.start t.stp

let stop t =
  Option.iter Eventsim.Timer.stop t.carrier_timer;
  t.carrier_timer <- None;
  Option.iter Stp.stop t.stp
