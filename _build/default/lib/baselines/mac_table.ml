open Eventsim

type entry = { port : int; expires : Time.t }

type t = {
  engine : Engine.t;
  aging : Time.t;
  entries : (int * Netcore.Mac_addr.t, entry) Hashtbl.t; (* (vlan scope, mac) *)
}

let create engine ?(aging = Time.sec 300) () = { engine; aging; entries = Hashtbl.create 64 }

let learn ?(vlan = 0) t ~mac ~port =
  Hashtbl.replace t.entries (vlan, mac) { port; expires = Engine.now t.engine + t.aging }

let lookup ?(vlan = 0) t mac =
  match Hashtbl.find_opt t.entries (vlan, mac) with
  | Some e when e.expires > Engine.now t.engine -> Some e.port
  | Some _ ->
    Hashtbl.remove t.entries (vlan, mac);
    None
  | None -> None

let size t =
  let now = Engine.now t.engine in
  let stale =
    Hashtbl.fold (fun key e acc -> if e.expires <= now then key :: acc else acc) t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale;
  Hashtbl.length t.entries

let flush t = Hashtbl.reset t.entries

let flush_port t port =
  let doomed =
    Hashtbl.fold (fun key e acc -> if e.port = port then key :: acc else acc) t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed
