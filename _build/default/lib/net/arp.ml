type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac_addr.t;
  sender_ip : Ipv4_addr.t;
  target_mac : Mac_addr.t;
  target_ip : Ipv4_addr.t;
}

let request ~sender_mac ~sender_ip ~target_ip =
  { op = Request; sender_mac; sender_ip; target_mac = Mac_addr.zero; target_ip }

let reply ~sender_mac ~sender_ip ~target_mac ~target_ip =
  { op = Reply; sender_mac; sender_ip; target_mac; target_ip }

let gratuitous ~mac ~ip =
  { op = Request; sender_mac = mac; sender_ip = ip; target_mac = Mac_addr.zero; target_ip = ip }

let is_gratuitous t = Ipv4_addr.equal t.sender_ip t.target_ip

let wire_len = 28

let equal a b =
  a.op = b.op
  && Mac_addr.equal a.sender_mac b.sender_mac
  && Ipv4_addr.equal a.sender_ip b.sender_ip
  && Mac_addr.equal a.target_mac b.target_mac
  && Ipv4_addr.equal a.target_ip b.target_ip

let pp fmt t =
  match t.op with
  | Request ->
    Format.fprintf fmt "ARP who-has %a tell %a (%a)" Ipv4_addr.pp t.target_ip Ipv4_addr.pp
      t.sender_ip Mac_addr.pp t.sender_mac
  | Reply ->
    Format.fprintf fmt "ARP %a is-at %a (to %a)" Ipv4_addr.pp t.sender_ip Mac_addr.pp t.sender_mac
      Mac_addr.pp t.target_mac
