type payload =
  | Arp of Arp.t
  | Ipv4 of Ipv4_pkt.t
  | Ldp of Ldp_msg.t
  | Bpdu of Bpdu.t
  | Raw of { ethertype : int; len : int }

type t = { dst : Mac_addr.t; src : Mac_addr.t; vlan : int option; payload : payload }

let make ?vlan ~dst ~src payload =
  (match vlan with
   | Some v when v < 1 || v > 4094 -> invalid_arg "Eth.make: VLAN id out of range"
   | Some _ | None -> ());
  { dst; src; vlan; payload }

let with_vlan t vlan =
  (match vlan with
   | Some v when v < 1 || v > 4094 -> invalid_arg "Eth.with_vlan: VLAN id out of range"
   | Some _ | None -> ());
  { t with vlan }

let vlan_header_len = 4

let ldp_ethertype = 0x88B5
let bpdu_ethertype = 0x88B6

let ethertype = function
  | Arp _ -> 0x0806
  | Ipv4 _ -> 0x0800
  | Ldp _ -> ldp_ethertype
  | Bpdu _ -> bpdu_ethertype
  | Raw { ethertype; _ } -> ethertype

let header_len = 14
let min_frame_len = 64
let fcs_len = 4

let payload_len = function
  | Arp _ -> Arp.wire_len
  | Ipv4 p -> Ipv4_pkt.wire_len p
  | Ldp _ -> Ldp_msg.wire_len
  | Bpdu _ -> Bpdu.wire_len
  | Raw { len; _ } -> len

let wire_len t =
  let tag = match t.vlan with Some _ -> vlan_header_len | None -> 0 in
  max min_frame_len (header_len + tag + payload_len t.payload + fcs_len)

let is_broadcast t = Mac_addr.is_broadcast t.dst

let equal a b = a = b

let pp fmt t =
  let pp_payload fmt = function
    | Arp a -> Arp.pp fmt a
    | Ipv4 p -> Ipv4_pkt.pp fmt p
    | Ldp l -> Ldp_msg.pp fmt l
    | Bpdu b -> Bpdu.pp fmt b
    | Raw { ethertype; len } -> Format.fprintf fmt "raw type=0x%04x len=%d" ethertype len
  in
  let pp_vlan fmt = function
    | Some v -> Format.fprintf fmt " vlan=%d" v
    | None -> ()
  in
  Format.fprintf fmt "[%a -> %a%a] %a" Mac_addr.pp t.src Mac_addr.pp t.dst pp_vlan t.vlan
    pp_payload t.payload
