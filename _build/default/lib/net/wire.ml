module Writer = struct
  type t = { buf : Buffer.t }

  let create () = { buf = Buffer.create 128 }
  let u8 t v = Buffer.add_char t.buf (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let u64 t v =
    u32 t (v lsr 32);
    u32 t v

  let mac t m = Buffer.add_string t.buf (Mac_addr.to_bytes m)
  let ip t a = u32 t (Ipv4_addr.to_int a)
  let zeros t n = Buffer.add_string t.buf (String.make n '\000')
  let bytes t b = Buffer.add_bytes t.buf b
  let contents t = Buffer.to_bytes t.buf
  let length t = Buffer.length t.buf
  let buffer t = t.buf
end

module Reader = struct
  type t = { buf : bytes; mutable rpos : int; limit : int }

  exception Short

  let create ?(off = 0) ?len buf =
    let limit = match len with Some l -> off + l | None -> Bytes.length buf in
    { buf; rpos = off; limit }

  let remaining t = t.limit - t.rpos
  let pos t = t.rpos
  let raw t = t.buf

  let u8 t =
    if t.rpos >= t.limit then raise Short;
    let v = Char.code (Bytes.get t.buf t.rpos) in
    t.rpos <- t.rpos + 1;
    v

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let u64 t =
    let hi = u32 t in
    (hi lsl 32) lor u32 t

  let mac t =
    if remaining t < 6 then raise Short;
    let s = Bytes.sub_string t.buf t.rpos 6 in
    t.rpos <- t.rpos + 6;
    Mac_addr.of_bytes_exn s

  let ip t = Ipv4_addr.of_int (u32 t)

  let skip t n =
    if n < 0 || remaining t < n then raise Short;
    t.rpos <- t.rpos + n
end
