type op = Join | Leave

type t = { op : op; group : Ipv4_addr.t }

let check group =
  if not (Ipv4_addr.is_multicast group) then
    invalid_arg
      (Printf.sprintf "Igmp: %s is not a class-D multicast address" (Ipv4_addr.to_string group))

let join group =
  check group;
  { op = Join; group }

let leave group =
  check group;
  { op = Leave; group }

let wire_len = 8

let equal a b = a = b

let pp fmt t =
  let op = match t.op with Join -> "join" | Leave -> "leave" in
  Format.fprintf fmt "IGMP %s %a" op Ipv4_addr.pp t.group
