(** Ethernet frames — the unit the simulated dataplane forwards.

    The payload is structured; {!Codec} provides the bit-exact wire
    encoding. {!wire_len} is what links use for serialization delay, and
    includes header, payload, any padding up to the Ethernet minimum, and
    the FCS. *)

type payload =
  | Arp of Arp.t
  | Ipv4 of Ipv4_pkt.t
  | Ldp of Ldp_msg.t     (** PortLand location discovery, ethertype {!ldp_ethertype} *)
  | Bpdu of Bpdu.t       (** spanning-tree, for the baseline fabric *)
  | Raw of { ethertype : int; len : int }

type t = {
  dst : Mac_addr.t;
  src : Mac_addr.t;
  vlan : int option;  (** 802.1Q VID when tagged (1–4094) *)
  payload : payload;
}

val make : ?vlan:int -> dst:Mac_addr.t -> src:Mac_addr.t -> payload -> t
(** [vlan], when given, must be in [\[1, 4094\]]. *)

val with_vlan : t -> int option -> t
(** Tag or untag a frame (what a trunk/access port does on egress). *)

val vlan_header_len : int
(** 4 bytes of 802.1Q tag when present. *)

val ldp_ethertype : int
(** 0x88B5 (IEEE local experimental), used for LDMs. *)

val bpdu_ethertype : int
(** 0x88B6 — the baseline carries BPDUs in a plain tagged frame rather
    than LLC encapsulation, which changes nothing the experiments
    measure. *)

val ethertype : payload -> int

val header_len : int
(** 14. *)

val min_frame_len : int
(** 64, including FCS. *)

val fcs_len : int
(** 4. *)

val wire_len : t -> int
(** Header + payload + padding to the 64-byte minimum + FCS. *)

val is_broadcast : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
