(** Spanning-tree BPDUs (simplified 802.1D), used by the baseline flat
    layer-2 fabric that PortLand is compared against.

    Only the configuration-BPDU fields the baseline's root election and
    port-role computation need are modelled. *)

type t = {
  root_id : int;    (** sender's current belief of the root bridge id *)
  root_cost : int;  (** sender's cost to that root *)
  bridge_id : int;  (** sender's own bridge id *)
  port : int;       (** sender's egress port *)
}

val wire_len : int
(** 35 bytes, as in 802.1D configuration BPDUs. *)

val better : t -> t -> bool
(** [better a b] is true when [a] advertises a strictly better path:
    lower root id, then lower cost, then lower bridge id, then lower
    port. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
