type t = { root_id : int; root_cost : int; bridge_id : int; port : int }

let wire_len = 35

let better a b =
  compare (a.root_id, a.root_cost, a.bridge_id, a.port) (b.root_id, b.root_cost, b.bridge_id, b.port)
  < 0

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "BPDU{root=%d cost=%d bridge=%d port=%d}" t.root_id t.root_cost t.bridge_id
    t.port
