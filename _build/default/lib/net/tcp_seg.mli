(** TCP segments carried inside {!Ipv4_pkt}.

    Sequence and acknowledgement numbers count bytes, as in real TCP; the
    payload itself is modelled by its length only (its content never
    matters to the fabric). Flags cover what the simplified transport in
    [lib/transport] uses. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;          (** first payload byte's sequence number *)
  ack_num : int;      (** cumulative ACK (valid when [flags.ack]) *)
  window : int;       (** advertised receive window, bytes *)
  flags : flags;
  payload_len : int;  (** bytes of payload *)
}

val header_len : int
(** 20 bytes (no options modelled). *)

val no_flags : flags
val ack_flags : flags

val make :
  ?src_port:int -> ?dst_port:int -> ?flags:flags -> ?window:int -> seq:int -> ack_num:int ->
  payload_len:int -> unit -> t
(** Ports default to 5001/5001, flags to [ack_flags], window to 65535. *)

val wire_len : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
