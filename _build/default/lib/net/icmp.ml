type t =
  | Echo_request of { ident : int; seq : int; payload_len : int }
  | Echo_reply of { ident : int; seq : int; payload_len : int }

let check ~ident ~seq ~payload_len =
  if ident < 0 || ident > 0xFFFF then invalid_arg "Icmp: ident out of range";
  if seq < 0 || seq > 0xFFFF then invalid_arg "Icmp: seq out of range";
  if payload_len < 0 then invalid_arg "Icmp: negative payload length"

let echo_request ?(payload_len = 56) ~ident ~seq () =
  check ~ident ~seq ~payload_len;
  Echo_request { ident; seq; payload_len }

let reply_to = function
  | Echo_request { ident; seq; payload_len } -> Echo_reply { ident; seq; payload_len }
  | Echo_reply _ -> invalid_arg "Icmp.reply_to: already a reply"

let header_len = 8

let wire_len = function
  | Echo_request { payload_len; _ } | Echo_reply { payload_len; _ } ->
    header_len + payload_len

let equal a b = a = b

let pp fmt = function
  | Echo_request { ident; seq; payload_len } ->
    Format.fprintf fmt "ICMP echo-request id=%d seq=%d len=%d" ident seq payload_len
  | Echo_reply { ident; seq; payload_len } ->
    Format.fprintf fmt "ICMP echo-reply id=%d seq=%d len=%d" ident seq payload_len
