type t = int

let max_value = (1 lsl 48) - 1

let of_int v =
  if v < 0 || v > max_value then invalid_arg (Printf.sprintf "Mac_addr.of_int: %d out of range" v);
  v

let to_int t = t

let of_bytes_exn s =
  if String.length s <> 6 then invalid_arg "Mac_addr.of_bytes_exn: need exactly 6 bytes";
  let b i = Char.code s.[i] in
  (b 0 lsl 40) lor (b 1 lsl 32) lor (b 2 lsl 24) lor (b 3 lsl 16) lor (b 4 lsl 8) lor b 5

let to_bytes t =
  String.init 6 (fun i -> Char.chr ((t lsr ((5 - i) * 8)) land 0xff))

let of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then Error (Printf.sprintf "Mac_addr.of_string: %S" s)
  else
    try
      let v =
        List.fold_left
          (fun acc p ->
            if String.length p <> 2 then failwith "octet";
            (acc lsl 8) lor int_of_string ("0x" ^ p))
          0 parts
      in
      Ok v
    with _ -> Error (Printf.sprintf "Mac_addr.of_string: %S" s)

let of_string_exn s =
  match of_string s with Ok v -> v | Error e -> invalid_arg e

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff) ((t lsr 32) land 0xff)
    ((t lsr 24) land 0xff) ((t lsr 16) land 0xff) ((t lsr 8) land 0xff) (t land 0xff)

let broadcast = max_value
let zero = 0
let is_broadcast t = t = broadcast
let is_multicast t = (t lsr 40) land 0x01 = 1

let multicast_of_group g = 0x01005e000000 lor (g land 0x7fffff)

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.pp_print_string fmt (to_string t)
