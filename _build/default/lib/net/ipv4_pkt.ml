type payload =
  | Udp of Udp.t
  | Tcp of Tcp_seg.t
  | Igmp of Igmp.t
  | Icmp of Icmp.t
  | Raw of { proto : int; len : int }

type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  ttl : int;
  payload : payload;
}

let header_len = 20
let default_ttl = 64

let make ?(ttl = default_ttl) ~src ~dst payload =
  if ttl < 1 || ttl > 255 then invalid_arg "Ipv4_pkt.make: ttl out of range";
  { src; dst; ttl; payload }

let udp ~src ~dst u = make ~src ~dst (Udp u)
let tcp ~src ~dst t = make ~src ~dst (Tcp t)
let igmp ~src m = make ~src ~dst:m.Igmp.group (Igmp m)
let icmp ~src ~dst m = make ~src ~dst (Icmp m)

let proto_number = function
  | Udp _ -> 17
  | Tcp _ -> 6
  | Igmp _ -> 2
  | Icmp _ -> 1
  | Raw { proto; _ } -> proto

let payload_len = function
  | Udp u -> Udp.wire_len u
  | Tcp t -> Tcp_seg.wire_len t
  | Igmp _ -> Igmp.wire_len
  | Icmp m -> Icmp.wire_len m
  | Raw { len; _ } -> len

let wire_len t = header_len + payload_len t.payload

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let equal a b = a = b

let pp fmt t =
  let pp_payload fmt = function
    | Udp u -> Udp.pp fmt u
    | Tcp s -> Tcp_seg.pp fmt s
    | Igmp m -> Igmp.pp fmt m
    | Icmp m -> Icmp.pp fmt m
    | Raw { proto; len } -> Format.fprintf fmt "proto=%d len=%d" proto len
  in
  Format.fprintf fmt "IP %a->%a ttl=%d [%a]" Ipv4_addr.pp t.src Ipv4_addr.pp t.dst t.ttl pp_payload
    t.payload
