type level = Edge | Aggregation | Core

type dir = Up | Down | Unknown_dir

type t = {
  switch_id : int;
  level : level option;
  pod : int option;
  position : int option;
  dir : dir;
  out_port : int;
}

let initial ~switch_id ~out_port =
  { switch_id; level = None; pod = None; position = None; dir = Unknown_dir; out_port }

let wire_len = 16

let level_to_string = function
  | Edge -> "edge"
  | Aggregation -> "aggregation"
  | Core -> "core"

let equal a b = a = b

let pp_opt pp_v fmt = function
  | None -> Format.pp_print_string fmt "?"
  | Some v -> pp_v fmt v

let pp fmt t =
  let pp_level fmt l = Format.pp_print_string fmt (level_to_string l) in
  let pp_int fmt i = Format.pp_print_int fmt i in
  let dir_s = match t.dir with Up -> "up" | Down -> "down" | Unknown_dir -> "?" in
  Format.fprintf fmt "LDM{sw=%d level=%a pod=%a pos=%a dir=%s port=%d}" t.switch_id
    (pp_opt pp_level) t.level (pp_opt pp_int) t.pod (pp_opt pp_int) t.position dir_s t.out_port
