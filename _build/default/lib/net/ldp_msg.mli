(** Location Discovery Messages (PortLand §3.2).

    Switches emit an LDM on every port each LDM period. The message carries
    everything a neighbour needs to refine its own view: the sender's
    switch identifier, its current belief about its tree level, pod and
    position, and which direction the egress port faces. LDMs also act as
    liveness beacons: a port that misses LDMs for the liveness timeout is
    declared faulty. *)

type level = Edge | Aggregation | Core

type dir = Up | Down | Unknown_dir
(** Direction the sending port faces, once known: edge→agg and agg→core
    ports face [Up]; agg→edge and core→agg ports face [Down]. *)

type t = {
  switch_id : int;       (** unique, factory-style identifier *)
  level : level option;  (** [None] until inferred *)
  pod : int option;      (** [None] until assigned by the fabric manager *)
  position : int option; (** [None] until verified by the fabric manager *)
  dir : dir;
  out_port : int;        (** sender's port number the LDM left through *)
}

val initial : switch_id:int -> out_port:int -> t
(** The all-unknown LDM a freshly booted switch sends. *)

val wire_len : int
(** Fixed encoded size in bytes. *)

val level_to_string : level -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
