type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_num : int;
  window : int;
  flags : flags;
  payload_len : int;
}

let header_len = 20
let no_flags = { syn = false; ack = false; fin = false; rst = false }
let ack_flags = { no_flags with ack = true }

let make ?(src_port = 5001) ?(dst_port = 5001) ?(flags = ack_flags) ?(window = 65535) ~seq
    ~ack_num ~payload_len () =
  if src_port < 0 || src_port > 0xFFFF then invalid_arg "Tcp_seg.make: src_port out of range";
  if dst_port < 0 || dst_port > 0xFFFF then invalid_arg "Tcp_seg.make: dst_port out of range";
  if seq < 0 || ack_num < 0 then invalid_arg "Tcp_seg.make: negative sequence number";
  if payload_len < 0 then invalid_arg "Tcp_seg.make: negative payload_len";
  if window < 0 || window > 0xFFFFFFFF then invalid_arg "Tcp_seg.make: window out of range";
  { src_port; dst_port; seq; ack_num; window; flags; payload_len }

let wire_len t = header_len + t.payload_len

let equal a b = a = b

let pp fmt t =
  let flag b c = if b then c else "" in
  Format.fprintf fmt "TCP %d->%d seq=%d ack=%d len=%d win=%d %s%s%s%s" t.src_port t.dst_port t.seq
    t.ack_num t.payload_len t.window (flag t.flags.syn "S") (flag t.flags.ack "A")
    (flag t.flags.fin "F") (flag t.flags.rst "R")
