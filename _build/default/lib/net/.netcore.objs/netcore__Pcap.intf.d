lib/net/pcap.mli: Eth
