lib/net/wire.ml: Buffer Bytes Char Ipv4_addr Mac_addr String
