lib/net/wire.mli: Buffer Ipv4_addr Mac_addr
