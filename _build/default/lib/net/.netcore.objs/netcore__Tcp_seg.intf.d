lib/net/tcp_seg.mli: Format
