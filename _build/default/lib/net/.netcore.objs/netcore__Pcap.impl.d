lib/net/pcap.ml: Buffer Bytes Char Codec Fun List
