lib/net/bpdu.mli: Format
