lib/net/udp.ml: Format Printf
