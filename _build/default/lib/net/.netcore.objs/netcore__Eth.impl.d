lib/net/eth.ml: Arp Bpdu Format Ipv4_pkt Ldp_msg Mac_addr
