lib/net/bpdu.ml: Format
