lib/net/ipv4_pkt.ml: Format Icmp Igmp Ipv4_addr Tcp_seg Udp
