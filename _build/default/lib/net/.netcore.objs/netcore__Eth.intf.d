lib/net/eth.mli: Arp Bpdu Format Ipv4_pkt Ldp_msg Mac_addr
