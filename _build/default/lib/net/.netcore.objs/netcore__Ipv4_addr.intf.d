lib/net/ipv4_addr.mli: Format
