lib/net/codec.ml: Arp Array Bpdu Bytes Char Eth Icmp Igmp Ipv4_pkt Lazy Ldp_msg Printf Tcp_seg Udp Wire
