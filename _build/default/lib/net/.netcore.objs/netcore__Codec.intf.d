lib/net/codec.mli: Eth
