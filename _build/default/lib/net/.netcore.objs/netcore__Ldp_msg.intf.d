lib/net/ldp_msg.mli: Format
