lib/net/icmp.mli: Format
