lib/net/ipv4_addr.ml: Format Hashtbl Int Printf String
