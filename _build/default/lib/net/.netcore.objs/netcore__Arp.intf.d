lib/net/arp.mli: Format Ipv4_addr Mac_addr
