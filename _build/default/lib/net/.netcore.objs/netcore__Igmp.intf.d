lib/net/igmp.mli: Format Ipv4_addr
