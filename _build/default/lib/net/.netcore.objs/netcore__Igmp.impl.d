lib/net/igmp.ml: Format Ipv4_addr Printf
