lib/net/ipv4_pkt.mli: Format Icmp Igmp Ipv4_addr Tcp_seg Udp
