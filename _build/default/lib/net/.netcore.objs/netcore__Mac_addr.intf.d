lib/net/mac_addr.mli: Format
