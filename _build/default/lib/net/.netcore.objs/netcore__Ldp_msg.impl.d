lib/net/ldp_msg.ml: Format
