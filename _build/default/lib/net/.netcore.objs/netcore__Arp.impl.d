lib/net/arp.ml: Format Ipv4_addr Mac_addr
