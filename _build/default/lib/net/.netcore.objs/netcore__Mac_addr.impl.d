lib/net/mac_addr.ml: Char Format Hashtbl Int List Printf String
