lib/net/icmp.ml: Format
