lib/net/tcp_seg.ml: Format
