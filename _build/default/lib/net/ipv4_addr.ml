type t = int

let of_int v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Ipv4_addr.of_int: %d out of range" v);
  v

let to_int t = t

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4_addr.of_octets: octet out of range" in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    (try Ok (of_octets (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d))
     with _ -> Error (Printf.sprintf "Ipv4_addr.of_string: %S" s))
  | _ -> Error (Printf.sprintf "Ipv4_addr.of_string: %S" s)

let of_string_exn s =
  match of_string s with Ok v -> v | Error e -> invalid_arg e

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff) ((t lsr 8) land 0xff)
    (t land 0xff)

let is_multicast t = (t lsr 28) = 0xE
let broadcast = 0xFFFFFFFF
let is_broadcast t = t = broadcast
let multicast_group t = t land 0x0FFFFFFF
let of_multicast_group g = (0xE lsl 28) lor (g land 0x0FFFFFFF)

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.pp_print_string fmt (to_string t)
