(* Byte-level writer/reader helpers. All multi-byte integers are
   big-endian (network order). *)

module W = struct
  include Wire.Writer

  (* append raw pre-built bytes into the frame body *)
  let add_bytes t b = bytes t b
end

module R = struct
  include Wire.Reader

  exception Short = Wire.Reader.Short
end

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)              *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 buf off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* RFC 1071 ones'-complement checksum *)
let ipv4_checksum buf off len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + ((Char.code (Bytes.get buf !i) lsl 8) lor Char.code (Bytes.get buf (!i + 1)));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

(* ------------------------------------------------------------------ *)
(* Encoders                                                            *)

let encode_arp w (a : Arp.t) =
  W.u16 w 1 (* htype: ethernet *);
  W.u16 w 0x0800 (* ptype: ipv4 *);
  W.u8 w 6;
  W.u8 w 4;
  W.u16 w (match a.op with Arp.Request -> 1 | Arp.Reply -> 2);
  W.mac w a.sender_mac;
  W.ip w a.sender_ip;
  W.mac w a.target_mac;
  W.ip w a.target_ip

let encode_udp w (u : Udp.t) =
  W.u16 w u.src_port;
  W.u16 w u.dst_port;
  W.u16 w (Udp.wire_len u);
  W.u16 w 0 (* checksum: zero is legal for UDP/IPv4 *);
  W.u32 w u.flow_id;
  W.u64 w u.app_seq;
  W.zeros w (u.payload_len - Udp.meta_len)

let tcp_flag_bits (f : Tcp_seg.flags) =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor if f.ack then 0x10 else 0

let encode_tcp w (s : Tcp_seg.t) =
  W.u16 w s.src_port;
  W.u16 w s.dst_port;
  W.u32 w (s.seq land 0xFFFFFFFF);
  W.u32 w (s.ack_num land 0xFFFFFFFF);
  W.u8 w 0x50 (* data offset 5 words *);
  W.u8 w (tcp_flag_bits s.flags);
  W.u16 w s.window;
  W.u16 w 0 (* checksum: simplification, see Codec docs *);
  W.u16 w 0 (* urgent pointer *);
  W.zeros w s.payload_len

let encode_icmp w (m : Icmp.t) =
  (match m with
   | Icmp.Echo_request { ident; seq; payload_len } ->
     W.u8 w 8;
     W.u8 w 0;
     W.u16 w 0 (* checksum: simplification, see Codec docs *);
     W.u16 w ident;
     W.u16 w seq;
     W.zeros w payload_len
   | Icmp.Echo_reply { ident; seq; payload_len } ->
     W.u8 w 0;
     W.u8 w 0;
     W.u16 w 0;
     W.u16 w ident;
     W.u16 w seq;
     W.zeros w payload_len)

let encode_igmp w (m : Igmp.t) =
  W.u8 w (match m.op with Igmp.Join -> 0x16 | Igmp.Leave -> 0x17);
  W.u8 w 0;
  W.u16 w 0;
  W.ip w m.group

let encode_ipv4 w (p : Ipv4_pkt.t) =
  let header = W.create () in
  W.u8 header 0x45;
  W.u8 header 0;
  W.u16 header (Ipv4_pkt.wire_len p);
  W.u16 header 0 (* id *);
  W.u16 header 0x4000 (* DF *);
  W.u8 header p.ttl;
  W.u8 header (Ipv4_pkt.proto_number p.payload);
  W.u16 header 0 (* checksum placeholder *);
  W.ip header p.src;
  W.ip header p.dst;
  let hbytes = W.contents header in
  let csum = ipv4_checksum hbytes 0 Ipv4_pkt.header_len in
  Bytes.set hbytes 10 (Char.chr (csum lsr 8));
  Bytes.set hbytes 11 (Char.chr (csum land 0xff));
  W.add_bytes w hbytes;
  match p.payload with
  | Ipv4_pkt.Udp u -> encode_udp w u
  | Ipv4_pkt.Tcp s -> encode_tcp w s
  | Ipv4_pkt.Igmp m -> encode_igmp w m
  | Ipv4_pkt.Icmp m -> encode_icmp w m
  | Ipv4_pkt.Raw { len; _ } -> W.zeros w len

(* LDP fixed 16-byte layout:
   switch_id(4) level(1: 255=unknown,0=edge,1=agg,2=core) pod(2: 0xffff=unknown)
   position(1: 0xff=unknown) dir(1: 0=unknown,1=up,2=down) out_port(1) zeros(6) *)
let encode_ldp w (l : Ldp_msg.t) =
  W.u32 w l.switch_id;
  W.u8 w
    (match l.level with
     | None -> 0xff
     | Some Ldp_msg.Edge -> 0
     | Some Ldp_msg.Aggregation -> 1
     | Some Ldp_msg.Core -> 2);
  W.u16 w (match l.pod with None -> 0xffff | Some p -> p);
  W.u8 w (match l.position with None -> 0xff | Some p -> p);
  W.u8 w (match l.dir with Ldp_msg.Unknown_dir -> 0 | Ldp_msg.Up -> 1 | Ldp_msg.Down -> 2);
  W.u8 w l.out_port;
  W.zeros w 6

(* BPDU fixed 35-byte layout: root_id(4) root_cost(4) bridge_id(4) port(2) zeros(21) *)
let encode_bpdu w (b : Bpdu.t) =
  W.u32 w b.root_id;
  W.u32 w b.root_cost;
  W.u32 w b.bridge_id;
  W.u16 w b.port;
  W.zeros w 21

let encode (f : Eth.t) =
  let w = W.create () in
  W.mac w f.dst;
  W.mac w f.src;
  (match f.vlan with
   | Some vid ->
     W.u16 w 0x8100 (* 802.1Q TPID *);
     W.u16 w (vid land 0x0FFF) (* TCI: pcp/dei 0 *)
   | None -> ());
  W.u16 w (Eth.ethertype f.payload);
  (match f.payload with
   | Eth.Arp a -> encode_arp w a
   | Eth.Ipv4 p -> encode_ipv4 w p
   | Eth.Ldp l -> encode_ldp w l
   | Eth.Bpdu b -> encode_bpdu w b
   | Eth.Raw { len; _ } -> W.zeros w len);
  (* pad to minimum, then FCS *)
  let body_min = Eth.min_frame_len - Eth.fcs_len in
  let pad = max 0 (body_min - W.length w) in
  W.zeros w pad;
  let body = W.contents w in
  let fcs = crc32 body 0 (Bytes.length body) in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set out (Bytes.length body) (Char.chr ((fcs lsr 24) land 0xff));
  Bytes.set out (Bytes.length body + 1) (Char.chr ((fcs lsr 16) land 0xff));
  Bytes.set out (Bytes.length body + 2) (Char.chr ((fcs lsr 8) land 0xff));
  Bytes.set out (Bytes.length body + 3) (Char.chr (fcs land 0xff));
  out

(* ------------------------------------------------------------------ *)
(* Decoders                                                            *)

let decode_arp r =
  let htype = R.u16 r in
  let ptype = R.u16 r in
  let hlen = R.u8 r in
  let plen = R.u8 r in
  if htype <> 1 || ptype <> 0x0800 || hlen <> 6 || plen <> 4 then failwith "ARP: bad header";
  let op =
    match R.u16 r with
    | 1 -> Arp.Request
    | 2 -> Arp.Reply
    | n -> failwith (Printf.sprintf "ARP: unknown op %d" n)
  in
  let sender_mac = R.mac r in
  let sender_ip = R.ip r in
  let target_mac = R.mac r in
  let target_ip = R.ip r in
  { Arp.op; sender_mac; sender_ip; target_mac; target_ip }

let decode_udp r ~payload_total =
  let src_port = R.u16 r in
  let dst_port = R.u16 r in
  let len = R.u16 r in
  let _checksum = R.u16 r in
  if len <> payload_total then failwith "UDP: length mismatch";
  let flow_id = R.u32 r in
  let app_seq = R.u64 r in
  let payload_len = len - Udp.header_len in
  R.skip r (payload_len - Udp.meta_len);
  Udp.make ~src_port ~dst_port ~flow_id ~app_seq ~payload_len ()

let decode_tcp r ~payload_total =
  let src_port = R.u16 r in
  let dst_port = R.u16 r in
  let seq = R.u32 r in
  let ack_num = R.u32 r in
  let offset_byte = R.u8 r in
  if offset_byte lsr 4 <> 5 then failwith "TCP: options not supported";
  let bits = R.u8 r in
  let flags =
    { Tcp_seg.fin = bits land 0x01 <> 0;
      syn = bits land 0x02 <> 0;
      rst = bits land 0x04 <> 0;
      ack = bits land 0x10 <> 0 }
  in
  let window = R.u16 r in
  let _checksum = R.u16 r in
  let _urgent = R.u16 r in
  let payload_len = payload_total - Tcp_seg.header_len in
  if payload_len < 0 then failwith "TCP: truncated";
  R.skip r payload_len;
  Tcp_seg.make ~src_port ~dst_port ~flags ~window ~seq ~ack_num ~payload_len ()

let decode_icmp r ~payload_total =
  let ty = R.u8 r in
  let _code = R.u8 r in
  let _checksum = R.u16 r in
  let ident = R.u16 r in
  let seq = R.u16 r in
  let payload_len = payload_total - Icmp.header_len in
  if payload_len < 0 then failwith "ICMP: truncated";
  R.skip r payload_len;
  match ty with
  | 8 -> Icmp.Echo_request { ident; seq; payload_len }
  | 0 -> Icmp.Echo_reply { ident; seq; payload_len }
  | n -> failwith (Printf.sprintf "ICMP: unsupported type %d" n)

let decode_igmp r =
  let ty = R.u8 r in
  let _max_resp = R.u8 r in
  let _checksum = R.u16 r in
  let group = R.ip r in
  match ty with
  | 0x16 -> Igmp.join group
  | 0x17 -> Igmp.leave group
  | n -> failwith (Printf.sprintf "IGMP: unknown type 0x%02x" n)

let decode_ipv4 (r : R.t) =
  let header_start = R.pos r in
  let vihl = R.u8 r in
  if vihl <> 0x45 then failwith "IPv4: bad version/IHL";
  let _tos = R.u8 r in
  let total_len = R.u16 r in
  let _id = R.u16 r in
  let _frag = R.u16 r in
  let ttl = R.u8 r in
  let proto = R.u8 r in
  let _checksum = R.u16 r in
  let src = R.ip r in
  let dst = R.ip r in
  if ipv4_checksum (R.raw r) header_start Ipv4_pkt.header_len <> 0 then
    failwith "IPv4: header checksum mismatch";
  let payload_total = total_len - Ipv4_pkt.header_len in
  if payload_total < 0 || payload_total > R.remaining r then failwith "IPv4: bad total length";
  let payload =
    match proto with
    | 17 -> Ipv4_pkt.Udp (decode_udp r ~payload_total)
    | 6 -> Ipv4_pkt.Tcp (decode_tcp r ~payload_total)
    | 2 -> Ipv4_pkt.Igmp (decode_igmp r)
    | 1 -> Ipv4_pkt.Icmp (decode_icmp r ~payload_total)
    | p ->
      R.skip r payload_total;
      Ipv4_pkt.Raw { proto = p; len = payload_total }
  in
  Ipv4_pkt.make ~ttl ~src ~dst payload

let decode_ldp r =
  let switch_id = R.u32 r in
  let level =
    match R.u8 r with
    | 0xff -> None
    | 0 -> Some Ldp_msg.Edge
    | 1 -> Some Ldp_msg.Aggregation
    | 2 -> Some Ldp_msg.Core
    | n -> failwith (Printf.sprintf "LDP: unknown level %d" n)
  in
  let pod = match R.u16 r with 0xffff -> None | p -> Some p in
  let position = match R.u8 r with 0xff -> None | p -> Some p in
  let dir =
    match R.u8 r with
    | 0 -> Ldp_msg.Unknown_dir
    | 1 -> Ldp_msg.Up
    | 2 -> Ldp_msg.Down
    | n -> failwith (Printf.sprintf "LDP: unknown dir %d" n)
  in
  let out_port = R.u8 r in
  R.skip r 6;
  { Ldp_msg.switch_id; level; pod; position; dir; out_port }

let decode_bpdu r =
  let root_id = R.u32 r in
  let root_cost = R.u32 r in
  let bridge_id = R.u32 r in
  let port = R.u16 r in
  R.skip r 21;
  { Bpdu.root_id; root_cost; bridge_id; port }

let decode buf =
  try
    let total = Bytes.length buf in
    if total < Eth.min_frame_len then failwith "frame below Ethernet minimum";
    let body_len = total - Eth.fcs_len in
    let fcs_stored =
      (Char.code (Bytes.get buf body_len) lsl 24)
      lor (Char.code (Bytes.get buf (body_len + 1)) lsl 16)
      lor (Char.code (Bytes.get buf (body_len + 2)) lsl 8)
      lor Char.code (Bytes.get buf (body_len + 3))
    in
    if crc32 buf 0 body_len <> fcs_stored then failwith "FCS mismatch";
    let r = R.create ~len:body_len buf in
    let dst = R.mac r in
    let src = R.mac r in
    let first_type = R.u16 r in
    let vlan, ethertype =
      if first_type = 0x8100 then begin
        let tci = R.u16 r in
        (Some (tci land 0x0FFF), R.u16 r)
      end
      else (None, first_type)
    in
    let payload =
      if ethertype = 0x0806 then Eth.Arp (decode_arp r)
      else if ethertype = 0x0800 then Eth.Ipv4 (decode_ipv4 r)
      else if ethertype = Eth.ldp_ethertype then Eth.Ldp (decode_ldp r)
      else if ethertype = Eth.bpdu_ethertype then Eth.Bpdu (decode_bpdu r)
      else Eth.Raw { ethertype; len = R.remaining r }
    in
    Ok { Eth.dst; src; vlan; payload }
  with
  | Failure msg -> Error msg
  | R.Short -> Error "truncated frame"
  | Invalid_argument msg -> Error msg
