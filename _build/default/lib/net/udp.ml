type t = {
  src_port : int;
  dst_port : int;
  flow_id : int;
  app_seq : int;
  payload_len : int;
}

let meta_len = 12
let header_len = 8

let check_port p name =
  if p < 0 || p > 0xFFFF then invalid_arg (Printf.sprintf "Udp.make: %s out of range" name)

let make ?(src_port = 9000) ?(dst_port = 9000) ~flow_id ~app_seq ~payload_len () =
  check_port src_port "src_port";
  check_port dst_port "dst_port";
  if flow_id < 0 || flow_id > 0xFFFFFFFF then invalid_arg "Udp.make: flow_id out of range";
  if app_seq < 0 then invalid_arg "Udp.make: app_seq must be non-negative";
  if payload_len < meta_len then invalid_arg "Udp.make: payload_len below metadata size";
  { src_port; dst_port; flow_id; app_seq; payload_len }

let wire_len t = header_len + t.payload_len

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "UDP %d->%d flow=%d seq=%d len=%d" t.src_port t.dst_port t.flow_id t.app_seq
    t.payload_len
