(** UDP datagrams carried inside {!Ipv4_pkt}.

    The simulated application payload is structured rather than opaque: a
    flow identifier and an application sequence number, which is what the
    convergence experiments measure (gaps in received [app_seq] mark the
    packets lost during re-convergence). [payload_len] is the *wire* length
    of the UDP payload and may exceed the 12 bytes of metadata; the
    remainder models application data and affects serialization delay
    only. *)

type t = {
  src_port : int;
  dst_port : int;
  flow_id : int;       (** 32-bit application flow identifier *)
  app_seq : int;       (** application sequence number *)
  payload_len : int;   (** bytes of UDP payload, >= {!meta_len} *)
}

val meta_len : int
(** Bytes of structured metadata encoded at the head of the payload (12). *)

val header_len : int
(** UDP header bytes (8). *)

val make : ?src_port:int -> ?dst_port:int -> flow_id:int -> app_seq:int -> payload_len:int -> unit -> t
(** Ports default to 9000/9000. Raises [Invalid_argument] if
    [payload_len < meta_len] or any field is out of range. *)

val wire_len : t -> int
(** [header_len + payload_len]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
