(** ARP packets (RFC 826, Ethernet/IPv4 flavour only).

    In PortLand, ARP requests never reach other hosts: edge switches
    intercept them and proxy them to the fabric manager, which answers with
    the target's PMAC. Gratuitous ARPs (sender = target IP) are how hosts
    announce themselves at boot and after VM migration. *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac_addr.t;
  sender_ip : Ipv4_addr.t;
  target_mac : Mac_addr.t;  (** zero in requests *)
  target_ip : Ipv4_addr.t;
}

val request : sender_mac:Mac_addr.t -> sender_ip:Ipv4_addr.t -> target_ip:Ipv4_addr.t -> t
(** A broadcast who-has request ([target_mac] = zero). *)

val reply :
  sender_mac:Mac_addr.t -> sender_ip:Ipv4_addr.t -> target_mac:Mac_addr.t ->
  target_ip:Ipv4_addr.t -> t

val gratuitous : mac:Mac_addr.t -> ip:Ipv4_addr.t -> t
(** Gratuitous announcement: a request with sender = target = [ip]. *)

val is_gratuitous : t -> bool

val wire_len : int
(** 28 bytes on the wire. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
