(** 48-bit Ethernet MAC addresses.

    Represented as a non-negative [int] (fits easily in OCaml's 63-bit
    native ints). In PortLand terms an address may be an AMAC (a host's
    actual, factory-assigned MAC) or a PMAC (a fabric-assigned pseudo-MAC
    encoding location — see [Portland.Pmac], which layers structure on top
    of this module). *)

type t = private int

val of_int : int -> t
(** [of_int v] checks [0 <= v < 2^48]. Raises [Invalid_argument] otherwise. *)

val to_int : t -> int

val of_bytes_exn : string -> t
(** Big-endian, exactly 6 bytes. *)

val to_bytes : t -> string

val of_string : string -> (t, string) result
(** Parse ["aa:bb:cc:dd:ee:ff"]. *)

val of_string_exn : string -> t
val to_string : t -> string

val broadcast : t
(** ff:ff:ff:ff:ff:ff *)

val zero : t

val is_broadcast : t -> bool

val is_multicast : t -> bool
(** Group bit (least-significant bit of the first octet) set. *)

val multicast_of_group : int -> t
(** IPv4-multicast-style MAC [01:00:5e:…] derived from the low 23 bits of
    the group id, as Ethernet does for IP multicast. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
