(** IPv4 addresses, represented as a non-negative [int] in [\[0, 2^32)]. *)

type t = private int

val of_int : int -> t
(** Checks [0 <= v < 2^32]. Raises [Invalid_argument] otherwise. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]; each octet checked to be in
    [\[0, 255\]]. *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t
val to_string : t -> string

val is_multicast : t -> bool
(** Class-D: [224.0.0.0/4]. *)

val broadcast : t
(** The limited broadcast address [255.255.255.255]. *)

val is_broadcast : t -> bool

val multicast_group : t -> int
(** Low 28 bits of a class-D address (the group id). *)

val of_multicast_group : int -> t
(** [224.0.0.0] + low 28 bits of the group id. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
