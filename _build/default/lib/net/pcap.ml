type record = { time_ns : int; data : bytes }

type t = { mutable records : record list; mutable count : int }

let create () = { records = []; count = 0 }

let add_raw t ~time_ns data =
  t.records <- { time_ns; data } :: t.records;
  t.count <- t.count + 1

let add_frame t ~time_ns frame = add_raw t ~time_ns (Codec.encode frame)

let frame_count t = t.count

let le32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let le16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let contents t =
  let buf = Buffer.create (4096 + (t.count * 128)) in
  (* global header: nanosecond-resolution magic *)
  le32 buf 0xa1b23c4d;
  le16 buf 2 (* major *);
  le16 buf 4 (* minor *);
  le32 buf 0 (* thiszone *);
  le32 buf 0 (* sigfigs *);
  le32 buf 65535 (* snaplen *);
  le32 buf 1 (* LINKTYPE_ETHERNET *);
  List.iter
    (fun r ->
      le32 buf (r.time_ns / 1_000_000_000);
      le32 buf (r.time_ns mod 1_000_000_000);
      le32 buf (Bytes.length r.data);
      le32 buf (Bytes.length r.data);
      Buffer.add_bytes buf r.data)
    (List.rev t.records);
  Buffer.to_bytes buf

let write_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (contents t))
