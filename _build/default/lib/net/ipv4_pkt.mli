(** IPv4 packets.

    The payload is structured (one constructor per transport the simulator
    understands) rather than raw bytes; the wire codec in {!Codec} maps the
    structure to and from real header layouts. *)

type payload =
  | Udp of Udp.t
  | Tcp of Tcp_seg.t
  | Igmp of Igmp.t
  | Icmp of Icmp.t
  | Raw of { proto : int; len : int }
      (** Any other protocol: kept only as its protocol number and payload
          length, enough for forwarding and delay modelling. *)

type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  ttl : int;
  payload : payload;
}

val header_len : int
(** 20 bytes (no options). *)

val default_ttl : int
(** 64. *)

val make : ?ttl:int -> src:Ipv4_addr.t -> dst:Ipv4_addr.t -> payload -> t

val udp : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> Udp.t -> t
val tcp : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> Tcp_seg.t -> t
val igmp : src:Ipv4_addr.t -> Igmp.t -> t
(** Addressed to the group itself, as real IGMP reports are. *)

val icmp : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> Icmp.t -> t

val proto_number : payload -> int
(** 17 for UDP, 6 for TCP, 2 for IGMP, 1 for ICMP, the stored number for
    [Raw]. *)

val payload_len : payload -> int
val wire_len : t -> int
val decrement_ttl : t -> t option
(** [None] when the TTL would reach 0 (packet must be dropped). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
