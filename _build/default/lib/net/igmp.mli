(** IGMP-style multicast membership messages.

    PortLand edge switches intercept these and forward the membership
    change to the fabric manager, which maintains the group's distribution
    tree (paper §3.4). Only the two operations the fabric needs are
    modelled. *)

type op = Join | Leave

type t = { op : op; group : Ipv4_addr.t (** class-D group address *) }

val join : Ipv4_addr.t -> t
(** Raises [Invalid_argument] if the address is not class-D multicast. *)

val leave : Ipv4_addr.t -> t

val wire_len : int
(** 8 bytes, as in IGMPv2. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
