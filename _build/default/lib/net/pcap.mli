(** Classic libpcap capture-file writer (nanosecond variant,
    LINKTYPE_ETHERNET).

    Frames are serialized through {!Codec}, so a capture taken inside the
    simulator is a bit-exact, Wireshark-openable record of what the
    virtual wire carried — including LDMs, proxy-ARP exchanges and PMAC
    rewriting, which makes protocol debugging concrete. *)

type t

val create : unit -> t
(** An empty in-memory capture. *)

val add_frame : t -> time_ns:int -> Eth.t -> unit
(** Append a frame stamped with simulated time. *)

val add_raw : t -> time_ns:int -> bytes -> unit
(** Append pre-encoded frame bytes. *)

val frame_count : t -> int

val contents : t -> bytes
(** The complete capture file: global header + records, little-endian,
    magic [0xa1b23c4d] (nanosecond timestamps). *)

val write_file : t -> string -> unit
(** Write {!contents} to a path. *)
