(** ICMP echo (ping) — the two message types the simulator's hosts answer
    and measure with.

    [payload_len] counts the echo data bytes after the 8-byte ICMP
    header; replies echo the request's identifier, sequence number and
    payload length, which is how a pinger matches them up. *)

type t =
  | Echo_request of { ident : int; seq : int; payload_len : int }
  | Echo_reply of { ident : int; seq : int; payload_len : int }

val echo_request : ?payload_len:int -> ident:int -> seq:int -> unit -> t
(** Default payload 56 bytes, like the classic ping(8). Fields are
    range-checked (16-bit ident/seq, non-negative payload). *)

val reply_to : t -> t
(** The matching reply for a request; raises [Invalid_argument] on a
    reply. *)

val header_len : int
(** 8 bytes. *)

val wire_len : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
