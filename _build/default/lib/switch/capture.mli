(** Packet capture: tap devices and export what the virtual wire carried
    as a standard pcap file.

    A capture taps one or more devices and records frames (received,
    sent, or both) with their simulated timestamps into a
    {!Netcore.Pcap} buffer — `tcpdump` for the simulator. Because frames
    are serialized through the real wire codec, the resulting file opens
    in Wireshark with ARP, IPv4, UDP and TCP fully dissected. *)

type t

type side = Rx_only | Tx_only | Both

val create : Net.t -> t
(** An empty capture bound to a network (timestamps come from its
    engine). *)

val tap : t -> device:int -> ?side:side -> unit -> unit
(** Start recording the device's traffic ([side] defaults to [Rx_only],
    which sees every frame exactly once per receiving device). *)

val frame_count : t -> int
val pcap : t -> Netcore.Pcap.t
val write_file : t -> string -> unit
