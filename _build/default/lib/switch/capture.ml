type side = Rx_only | Tx_only | Both

type t = { net : Net.t; pcap : Netcore.Pcap.t }

let create net = { net; pcap = Netcore.Pcap.create () }

let tap t ~device ?(side = Rx_only) () =
  Net.add_tap t.net ~device (fun dir ~port:_ frame ->
      let wanted =
        match (side, dir) with
        | (Rx_only | Both), Net.Rx -> true
        | (Tx_only | Both), Net.Tx -> true
        | Rx_only, Net.Tx | Tx_only, Net.Rx -> false
      in
      if wanted then Netcore.Pcap.add_frame t.pcap ~time_ns:(Net.now t.net) frame)

let frame_count t = Netcore.Pcap.frame_count t.pcap
let pcap t = t.pcap
let write_file t path = Netcore.Pcap.write_file t.pcap path
