lib/switch/net.mli: Eventsim Netcore Topology
