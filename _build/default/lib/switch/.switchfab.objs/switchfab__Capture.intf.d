lib/switch/capture.mli: Net Netcore
