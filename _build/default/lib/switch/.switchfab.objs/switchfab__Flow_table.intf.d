lib/switch/flow_table.mli: Format Netcore
