lib/switch/net.ml: Array Engine Eventsim List Netcore Prng Time Topology
