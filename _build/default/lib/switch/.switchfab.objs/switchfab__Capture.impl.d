lib/switch/capture.ml: Net Netcore
