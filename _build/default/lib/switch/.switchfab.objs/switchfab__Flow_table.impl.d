lib/switch/flow_table.ml: Array Eth Format Hashtbl Ipv4_addr Ipv4_pkt List Mac_addr Netcore Option String Tcp_seg Udp
