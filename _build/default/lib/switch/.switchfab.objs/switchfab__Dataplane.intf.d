lib/switch/dataplane.mli: Flow_table Net Netcore
