lib/switch/dataplane.ml: Flow_table List Net Netcore
