let table fmt ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf fmt "  ";
        Format.fprintf fmt "%-*s" widths.(i) cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (ncols - 1)) in
  Format.fprintf fmt "%s@." (String.make rule '-');
  List.iter print_row rows

let series fmt ~title ~x_label ~y_label points =
  Format.fprintf fmt "%s@." title;
  Format.fprintf fmt "%-14s %-14s@." x_label y_label;
  List.iter (fun (x, y) -> Format.fprintf fmt "%-14.4g %-14.4g@." x y) points

let ms t = Printf.sprintf "%.1f" (Eventsim.Time.to_ms_f t)
let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

let heading fmt title =
  Format.fprintf fmt "@.%s@.%s@." title (String.make (String.length title) '=')
