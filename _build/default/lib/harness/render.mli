(** Plain-text rendering of experiment outputs: aligned tables and
    (time, value) series in the row/column style the paper's tables and
    figure data would take. *)

val table : Format.formatter -> header:string list -> rows:string list list -> unit
(** Column-aligned ASCII table with a rule under the header. *)

val series :
  Format.formatter -> title:string -> x_label:string -> y_label:string ->
  (float * float) list -> unit
(** Two-column numeric series with a title line. *)

val ms : Eventsim.Time.t -> string
(** Milliseconds with one decimal, e.g. ["52.4"]. *)

val f1 : float -> string
val f2 : float -> string
val heading : Format.formatter -> string -> unit
(** Underlined section heading. *)
