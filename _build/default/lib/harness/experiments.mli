(** Index of every reproduced table and figure.

    Each entry maps an experiment id (the names used in DESIGN.md and
    EXPERIMENTS.md) to a runner that executes the scenario and prints the
    paper-style rows or series. *)

val all : (string * string) list
(** [(id, one-line description)], in the order they appear in the paper. *)

val run_one : ?quick:bool -> ?seed:int -> Format.formatter -> string -> bool
(** Run one experiment by id; [false] for an unknown id. *)

val run_all : ?quick:bool -> ?seed:int -> Format.formatter -> unit
