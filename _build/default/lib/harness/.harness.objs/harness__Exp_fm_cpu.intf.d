lib/harness/exp_fm_cpu.mli: Format
