lib/harness/exp_fm_load.mli: Format
