lib/harness/exp_ecmp.mli: Format
