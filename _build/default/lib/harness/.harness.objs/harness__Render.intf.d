lib/harness/render.mli: Eventsim Format
