lib/harness/exp_ecmp.ml: Array Baselines Eventsim Format List Portland Printf Prng Render Switchfab Time Topology Transport Workloads
