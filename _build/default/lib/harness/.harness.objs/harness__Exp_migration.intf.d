lib/harness/exp_migration.mli: Format
