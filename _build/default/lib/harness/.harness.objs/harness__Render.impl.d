lib/harness/render.ml: Array Eventsim Format List Printf String
