lib/harness/exp_multicast.ml: Eventsim Format List Netcore Portland Printf Render Time Transport
