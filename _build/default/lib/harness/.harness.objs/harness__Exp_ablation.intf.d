lib/harness/exp_ablation.mli: Format
