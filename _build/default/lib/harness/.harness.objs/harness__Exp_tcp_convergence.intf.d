lib/harness/exp_tcp_convergence.mli: Format
