lib/harness/exp_fm_cpu.ml: Array Eventsim Format List Netcore Portland Printf Render Topology Unix
