lib/harness/exp_fm_load.ml: Eventsim Format List Portland Render Time Topology
