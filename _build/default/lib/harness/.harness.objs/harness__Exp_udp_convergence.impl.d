lib/harness/exp_udp_convergence.ml: Array Eventsim Format List Netcore Portland Printf Prng Render Time Topology Transport Workloads
