lib/harness/exp_migration.ml: Array Eventsim Format List Portland Printf Render Stats Time Transport
