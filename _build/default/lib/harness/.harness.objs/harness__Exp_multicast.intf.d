lib/harness/exp_multicast.mli: Format
