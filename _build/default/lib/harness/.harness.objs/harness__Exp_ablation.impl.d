lib/harness/exp_ablation.ml: Array Eventsim Format Hashtbl List Netcore Portland Printf Prng Render Switchfab Time Topology Transport
