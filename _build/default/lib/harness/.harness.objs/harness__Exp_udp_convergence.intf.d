lib/harness/exp_udp_convergence.mli: Format
