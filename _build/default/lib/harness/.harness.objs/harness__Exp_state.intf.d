lib/harness/exp_state.mli: Format
