lib/harness/exp_table1.ml: Array Baselines Engine Eventsim Exp_udp_convergence Format List Netcore Portland Printf Prng Render Switchfab Time Topology Transport
