lib/harness/exp_state.ml: Array Baselines Eventsim Format List Netcore Portland Prng Render Time Topology
