lib/harness/exp_tcp_convergence.ml: Array Eventsim Format List Netcore Portland Printf Render Stats Time Transport
