let all =
  [ ("table1", "requirements matrix: flat L2 vs static L3 vs PortLand (Table 1)");
    ("udp-convergence", "UDP convergence vs number of simultaneous failures");
    ("tcp-convergence", "TCP sequence trace across a link failure");
    ("multicast", "multicast convergence across two tree failures");
    ("migration", "TCP flow during VM migration (plus forward-stale ablation)");
    ("fm-load", "fabric manager control traffic: modelled ARP load + measured boot traffic");
    ("fm-cpu", "fabric manager CPU requirements for ARP service");
    ("state", "per-switch forwarding state: PortLand vs flat layer 2");
    ("ecmp", "multipath ablation: ECMP fat tree vs single spanning tree");
    ("ablation", "design-choice ablations: detection timeout sweep; ECMP hash salting") ]

let run_one ?quick ?seed fmt id =
  match id with
  | "table1" ->
    Exp_table1.print fmt (Exp_table1.run ?quick ?seed ());
    true
  | "udp-convergence" ->
    Exp_udp_convergence.print fmt (Exp_udp_convergence.run ?quick ?seed ());
    true
  | "tcp-convergence" ->
    Exp_tcp_convergence.print fmt (Exp_tcp_convergence.run ?quick ?seed ());
    true
  | "multicast" ->
    Exp_multicast.print fmt (Exp_multicast.run ?quick ?seed ());
    true
  | "migration" ->
    Exp_migration.print fmt (Exp_migration.run ?quick ?seed ());
    true
  | "fm-load" ->
    Exp_fm_load.print fmt (Exp_fm_load.run ?quick ?seed ());
    true
  | "fm-cpu" ->
    Exp_fm_cpu.print fmt (Exp_fm_cpu.run ?quick ?seed ());
    true
  | "state" ->
    Exp_state.print fmt (Exp_state.run ?quick ?seed ());
    true
  | "ecmp" ->
    Exp_ecmp.print fmt (Exp_ecmp.run ?quick ?seed ());
    true
  | "ablation" ->
    Exp_ablation.print fmt (Exp_ablation.run ?quick ?seed ());
    true
  | _ -> false

let run_all ?quick ?seed fmt =
  List.iter (fun (id, _) -> ignore (run_one ?quick ?seed fmt id)) all
