open Netcore
module MR = Topology.Multirooted
module SNet = Switchfab.Net

type route = { prefix : int; masklen : int; ports : int array }

type router = { routes : route list (* sorted longest-prefix first *) }

module Host = struct
  type h = {
    net : SNet.t;
    device : int;
    h_ip : Ipv4_addr.t;
    mutable rx : (Ipv4_pkt.t -> unit) option;
    mutable rx_count : int;
  }

  let ip h = h.h_ip

  let send_ip h ~dst payload =
    let pkt = Ipv4_pkt.make ~src:h.h_ip ~dst payload in
    SNet.transmit h.net ~node:h.device ~port:0
      (Eth.make ~dst:Mac_addr.zero ~src:Mac_addr.zero (Eth.Ipv4 pkt))

  let set_rx h f = h.rx <- Some f
  let received h = h.rx_count
end

type t = {
  engine : Eventsim.Engine.t;
  spec : MR.spec;
  mt : MR.t;
  net : SNet.t;
  routers : router list;
  host_handles : (int, Host.h) Hashtbl.t;
}

let mask_of len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let route_matches r ip = ip land mask_of r.masklen = r.prefix land mask_of r.masklen

let install_router t device routes =
  let sorted = List.sort (fun a b -> compare b.masklen a.masklen) routes in
  let router = { routes = sorted } in
  let handle in_port (frame : Eth.t) =
    ignore in_port;
    match frame.Eth.payload with
    | Eth.Ipv4 pkt ->
      (match Ipv4_pkt.decrement_ttl pkt with
       | None -> ()
       | Some pkt ->
         let dst = Ipv4_addr.to_int pkt.Ipv4_pkt.dst in
         (match List.find_opt (fun r -> route_matches r dst) router.routes with
          | None -> ()
          | Some r ->
            let n = Array.length r.ports in
            if n > 0 then begin
              let frame = Eth.make ~dst:frame.Eth.dst ~src:frame.Eth.src (Eth.Ipv4 pkt) in
              let h = Switchfab.Flow_table.flow_hash frame in
              (* skip locally dead interfaces: fast local repair *)
              let rec try_port i =
                if i < n then begin
                  let port = r.ports.((h + i) mod n) in
                  let alive =
                    match SNet.peer_of t.net ~node:device ~port with
                    | Some _ ->
                      (match SNet.link_between t.net device
                               (fst (Option.get (SNet.peer_of t.net ~node:device ~port)))
                       with
                       | Some l -> SNet.link_is_up l
                       | None -> false)
                    | None -> false
                  in
                  if alive then SNet.transmit t.net ~node:device ~port frame
                  else try_port (i + 1)
                end
              in
              try_port 0
            end))
    | Eth.Arp _ | Eth.Ldp _ | Eth.Bpdu _ | Eth.Raw _ -> ()
  in
  SNet.set_handler (SNet.device t.net device) handle;
  router

let create ?link_params spec =
  let engine = Eventsim.Engine.create () in
  let mt = MR.build spec in
  let net = SNet.create ?params:link_params engine mt.MR.topo in
  let t = { engine; spec; mt; net; routers = []; host_handles = Hashtbl.create 64 } in
  let u = MR.uplinks_per_agg spec in
  let subnet pod edge = Ipv4_addr.to_int (Ipv4_addr.of_octets 10 pod edge 0) in
  let pod_net pod = Ipv4_addr.to_int (Ipv4_addr.of_octets 10 pod 0 0) in
  let routers = ref [] in
  (* edge routers: /32 per host + default ECMP up *)
  Array.iteri
    (fun pod edges ->
      Array.iteri
        (fun edge device ->
          let host_routes =
            List.init spec.MR.hosts_per_edge (fun slot ->
                { prefix = Ipv4_addr.to_int (Ipv4_addr.of_octets 10 pod edge (slot + 2));
                  masklen = 32;
                  ports = [| slot |] })
          in
          let up_ports = Array.init spec.MR.aggs_per_pod (fun a -> spec.MR.hosts_per_edge + a) in
          let default = { prefix = 0; masklen = 0; ports = up_ports } in
          routers := install_router t device (default :: host_routes) :: !routers)
        edges)
    mt.MR.edges;
  (* aggregation routers: /24 per edge subnet + default ECMP up *)
  Array.iteri
    (fun pod aggs ->
      Array.iteri
        (fun _a device ->
          let down =
            List.init spec.MR.edges_per_pod (fun e ->
                { prefix = subnet pod e; masklen = 24; ports = [| e |] })
          in
          let up_ports = Array.init u (fun j -> spec.MR.edges_per_pod + j) in
          let default = { prefix = 0; masklen = 0; ports = up_ports } in
          routers := install_router t device (default :: down) :: !routers)
        aggs)
    mt.MR.aggs;
  (* core routers: /16 per pod *)
  Array.iter
    (fun device ->
      let routes =
        List.init spec.MR.num_pods (fun pod ->
            { prefix = pod_net pod; masklen = 16; ports = [| pod |] })
      in
      routers := install_router t device routes :: !routers)
    mt.MR.cores;
  (* hosts *)
  Array.iteri
    (fun idx device ->
      let per_pod = spec.MR.edges_per_pod * spec.MR.hosts_per_edge in
      let pod = idx / per_pod in
      let rem = idx mod per_pod in
      let edge = rem / spec.MR.hosts_per_edge in
      let slot = rem mod spec.MR.hosts_per_edge in
      let h =
        { Host.net; device; h_ip = Ipv4_addr.of_octets 10 pod edge (slot + 2); rx = None;
          rx_count = 0 }
      in
      SNet.set_handler (SNet.device net device) (fun _in_port frame ->
          match frame.Eth.payload with
          | Eth.Ipv4 pkt when Ipv4_addr.equal pkt.Ipv4_pkt.dst h.Host.h_ip ->
            h.Host.rx_count <- h.Host.rx_count + 1;
            (match h.Host.rx with Some f -> f pkt | None -> ())
          | _ -> ());
      Hashtbl.replace t.host_handles device h)
    mt.MR.hosts;
  { t with routers = !routers }

let create_fattree ?link_params ~k () = create ?link_params (Topology.Fattree.spec ~k)

let engine t = t.engine
let net t = t.net

let host t ~pod ~edge ~slot =
  let s = t.spec in
  let idx =
    (pod * s.MR.edges_per_pod * s.MR.hosts_per_edge) + (edge * s.MR.hosts_per_edge) + slot
  in
  Hashtbl.find t.host_handles t.mt.MR.hosts.(idx)

let run_for t d = Eventsim.Engine.run ~until:(Eventsim.Engine.now t.engine + d) t.engine

let fail_link_between t ~a ~b =
  match SNet.link_between t.net a b with
  | Some l ->
    SNet.fail_link t.net l;
    true
  | None -> false

let migrate_keeping_ip t h ~to_:(pod, edge, slot) =
  let device = h.Host.device in
  let target_edge = t.mt.MR.edges.(pod).(edge) in
  SNet.unplug t.net ~node:device ~port:0;
  (match SNet.peer_of t.net ~node:target_edge ~port:slot with
   | Some (other, _) -> SNet.unplug t.net ~node:other ~port:0
   | None -> ());
  ignore (SNet.plug t.net ~a:(device, 0) ~b:(target_edge, slot))

let config_entry_count t =
  List.fold_left (fun acc r -> acc + List.length r.routes) 0 t.routers
