open Eventsim
module MR = Topology.Multirooted

type t = {
  engine : Engine.t;
  spec : MR.spec;
  mt : MR.t;
  net : Switchfab.Net.t;
  switches : Learning_switch.t list;
  host_agents : (int, Portland.Host_agent.t) Hashtbl.t;
  config_entries : int;
}

let create ?(config = Portland.Config.default) ?(stp = true) ?link_params spec =
  let engine = Engine.create () in
  let mt = MR.build spec in
  let net = Switchfab.Net.create ?params:link_params engine mt.MR.topo in
  let config_entries = ref 0 in
  let switches = ref [] in
  (* edge switches: host-facing ports are access ports in the pod's VLAN *)
  Array.iteri
    (fun pod edges ->
      Array.iter
        (fun device ->
          let nports = spec.MR.hosts_per_edge + spec.MR.aggs_per_pod in
          let vlans =
            Array.init nports (fun p ->
                if p < spec.MR.hosts_per_edge then begin
                  incr config_entries;
                  Some (pod + 1)
                end
                else None)
          in
          let sw = Learning_switch.attach engine net ~device ~stp ~vlans () in
          Learning_switch.start sw;
          switches := sw :: !switches)
        edges)
    mt.MR.edges;
  (* aggregation and core switches: all ports trunk *)
  let attach_trunk device nports =
    let sw =
      Learning_switch.attach engine net ~device ~stp ~vlans:(Array.make nports None) ()
    in
    Learning_switch.start sw;
    switches := sw :: !switches
  in
  Array.iter
    (fun aggs ->
      Array.iter
        (fun device ->
          attach_trunk device (spec.MR.edges_per_pod + MR.uplinks_per_agg spec))
        aggs)
    mt.MR.aggs;
  Array.iter (fun device -> attach_trunk device spec.MR.num_pods) mt.MR.cores;
  let host_agents = Hashtbl.create 64 in
  Array.iteri
    (fun idx device ->
      let per_pod = spec.MR.edges_per_pod * spec.MR.hosts_per_edge in
      let pod = idx / per_pod in
      let rem = idx mod per_pod in
      let edge = rem / spec.MR.hosts_per_edge in
      let slot = rem mod spec.MR.hosts_per_edge in
      let ip = Netcore.Ipv4_addr.of_octets 10 pod edge (slot + 2) in
      let amac = Netcore.Mac_addr.of_int (0x020000000000 lor device) in
      let agent = Portland.Host_agent.create engine config net ~device ~amac ~ip () in
      Portland.Host_agent.start agent;
      Hashtbl.replace host_agents device agent)
    mt.MR.hosts;
  { engine; spec; mt; net; switches = !switches; host_agents;
    config_entries = !config_entries }

let create_fattree ?config ?stp ~k () = create ?config ?stp (Topology.Fattree.spec ~k)

let engine t = t.engine
let net t = t.net
let tree t = t.mt

let host t ~pod ~edge ~slot =
  let s = t.spec in
  let idx =
    (pod * s.MR.edges_per_pod * s.MR.hosts_per_edge) + (edge * s.MR.hosts_per_edge) + slot
  in
  Hashtbl.find t.host_agents t.mt.MR.hosts.(idx)

let run_for t d = Engine.run ~until:(Engine.now t.engine + d) t.engine

let await_stp_convergence ?(timeout = Time.sec 120) t =
  let deadline = Engine.now t.engine + timeout in
  let all () =
    List.for_all
      (fun sw -> match Learning_switch.stp sw with Some s -> Stp.converged s | None -> true)
      t.switches
  in
  let rec go () =
    if all () then true
    else if Engine.now t.engine >= deadline then false
    else begin
      run_for t (Time.sec 1);
      go ()
    end
  in
  go ()

let config_entry_count t = t.config_entries

let migrate_host t h ~to_:(pod, edge, slot) =
  let device = Portland.Host_agent.device_id h in
  let target_edge = t.mt.MR.edges.(pod).(edge) in
  (match Switchfab.Net.peer_of t.net ~node:target_edge ~port:slot with
   | Some (other, _) -> Switchfab.Net.unplug t.net ~node:other ~port:0
   | None -> ());
  Switchfab.Net.unplug t.net ~node:device ~port:0;
  ignore (Switchfab.Net.plug t.net ~a:(device, 0) ~b:(target_edge, slot));
  Portland.Host_agent.announce h
