open Eventsim
module MR = Topology.Multirooted

type t = {
  engine : Engine.t;
  spec : MR.spec;
  mt : MR.t;
  net : Switchfab.Net.t;
  switches : Learning_switch.t list;
  host_agents : (int, Portland.Host_agent.t) Hashtbl.t;
}

let create ?(config = Portland.Config.default) ?(stp = true) ?link_params spec =
  let engine = Engine.create () in
  let mt = MR.build spec in
  let net = Switchfab.Net.create ?params:link_params engine mt.MR.topo in
  let switches = ref [] in
  Array.iter
    (fun (n : Topology.Topo.node) ->
      match n.Topology.Topo.kind with
      | Topology.Topo.Edge_switch | Topology.Topo.Agg_switch | Topology.Topo.Core_switch ->
        let sw = Learning_switch.attach engine net ~device:n.Topology.Topo.id ~stp () in
        Learning_switch.start sw;
        switches := sw :: !switches
      | Topology.Topo.Host -> ())
    (Topology.Topo.nodes mt.MR.topo);
  let host_agents = Hashtbl.create 64 in
  Array.iteri
    (fun idx device ->
      let per_pod = spec.MR.edges_per_pod * spec.MR.hosts_per_edge in
      let pod = idx / per_pod in
      let rem = idx mod per_pod in
      let edge = rem / spec.MR.hosts_per_edge in
      let slot = rem mod spec.MR.hosts_per_edge in
      let ip = Netcore.Ipv4_addr.of_octets 10 pod edge (slot + 2) in
      let amac = Netcore.Mac_addr.of_int (0x020000000000 lor device) in
      let agent = Portland.Host_agent.create engine config net ~device ~amac ~ip () in
      Portland.Host_agent.start agent;
      Hashtbl.replace host_agents device agent)
    mt.MR.hosts;
  { engine; spec; mt; net; switches = !switches; host_agents }

let create_fattree ?config ?stp ~k () = create ?config ?stp (Topology.Fattree.spec ~k)

let engine t = t.engine
let net t = t.net
let tree t = t.mt

let host t ~pod ~edge ~slot =
  let s = t.spec in
  let idx =
    (pod * s.MR.edges_per_pod * s.MR.hosts_per_edge) + (edge * s.MR.hosts_per_edge) + slot
  in
  if idx < 0 || idx >= Array.length t.mt.MR.hosts then
    invalid_arg "Ethernet_fabric.host: out of range";
  Hashtbl.find t.host_agents t.mt.MR.hosts.(idx)

let hosts t = Hashtbl.fold (fun _ h acc -> h :: acc) t.host_agents []
let switches t = t.switches

let run_until t time = Engine.run ~until:time t.engine
let run_for t d = run_until t (Engine.now t.engine + d)

let run_bounded t ~max_events =
  let before = Engine.events_processed t.engine in
  Engine.run ~max_events t.engine;
  Engine.events_processed t.engine - before

let await_stp_convergence ?(timeout = Time.sec 120) t =
  let deadline = Engine.now t.engine + timeout in
  let all_converged () =
    List.for_all
      (fun sw -> match Learning_switch.stp sw with Some s -> Stp.converged s | None -> true)
      t.switches
  in
  let rec go () =
    if all_converged () then true
    else if Engine.now t.engine >= deadline then false
    else begin
      run_until t (min deadline (Engine.now t.engine + Time.sec 1));
      go ()
    end
  in
  go ()

let total_frames_handled t =
  List.fold_left (fun acc sw -> acc + Learning_switch.frames_handled sw) 0 t.switches

let mac_table_sizes t =
  List.map (fun sw -> Mac_table.size (Learning_switch.mac_table sw)) t.switches

let fail_link_between t ~a ~b =
  match Switchfab.Net.link_between t.net a b with
  | Some l ->
    Switchfab.Net.fail_link t.net l;
    true
  | None -> false
