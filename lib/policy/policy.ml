open Netcore
module FT = Switchfab.Flow_table
module SNet = Switchfab.Net
module Spec = Topology.Multirooted
module SA = Portland.Switch_agent
module Fabric = Portland.Fabric
module Fault = Portland.Fault
module Coords = Portland.Coords
module Ldp = Portland.Ldp
module Pmac = Portland.Pmac
module V = Portland_verify.Verify

(* ---------------- language ---------------- *)

type pred =
  | True
  | At_switch of int
  | In_port of int
  | Dst_mac of FT.mask_match
  | Dst_ip of FT.mask_match
  | Tenant of int
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type act =
  | Forward of int
  | Via_group of { gid : int; members : int list }
  | Multiport of int list
  | Rewrite_dst of Mac_addr.t
  | Rewrite_src of Mac_addr.t
  | Punt_fm
  | Deny

type clause = { span : string; name : string; prio : int; pred : pred; acts : act list }

type t =
  | Nothing
  | Rule of clause
  | Union of t * t
  | Seq of t * t
  | Restrict of t * pred

let rule ~span ~name ~prio pred acts = Rule { span; name; prio; pred; acts }
let union ps = List.fold_left (fun acc p -> if acc = Nothing then p else Union (acc, p)) Nothing ps
let seq a b = Seq (a, b)
let restrict p pred = Restrict (p, pred)

(* ---------------- normalization ---------------- *)

type error =
  | Unlocated of { span : string }
  | In_port_unsupported of { span : string }
  | Negation_unsupported of { span : string }
  | Seq_left_not_rewrite of { span : string }

let pp_error fmt = function
  | Unlocated { span } ->
    Format.fprintf fmt "clause %s: predicate does not pin down an ingress switch" span
  | In_port_unsupported { span } ->
    Format.fprintf fmt
      "clause %s: the flow-table dataplane has no ingress-port match (In_port)" span
  | Negation_unsupported { span } ->
    Format.fprintf fmt "clause %s: negation is not expressible as one TCAM row" span
  | Seq_left_not_rewrite { span } ->
    Format.fprintf fmt "clause %s: left side of a sequence may only rewrite" span

let ( let* ) = Result.bind

let is_rewrite = function Rewrite_dst _ | Rewrite_src _ -> true | _ -> false

(* flatten the combinator tree to self-contained clauses *)
let rec flatten = function
  | Nothing -> Ok []
  | Rule c -> Ok [ c ]
  | Union (a, b) ->
    let* ca = flatten a in
    let* cb = flatten b in
    Ok (ca @ cb)
  | Restrict (p, pr) ->
    let* cs = flatten p in
    Ok (List.map (fun c -> { c with pred = And (c.pred, pr) }) cs)
  | Seq (l, r) ->
    let* ls = flatten l in
    let* rs = flatten r in
    (match List.find_opt (fun c -> not (List.for_all is_rewrite c.acts)) ls with
     | Some c -> Error (Seq_left_not_rewrite { span = c.span })
     | None ->
       Ok
         (List.concat_map
            (fun lc ->
              List.map
                (fun rc ->
                  { span = lc.span;
                    name = lc.name;
                    prio = max lc.prio rc.prio;
                    pred = And (lc.pred, rc.pred);
                    acts = lc.acts @ rc.acts })
                rs)
            ls))

(* tenant-per-pod addressing convention: tag t = the 10.t.0.0/16 block *)
let tenant_match tag = { FT.value = (10 lsl 24) lor (tag lsl 16); mask = 0xFFFF0000 }

(* one conjunction of atomic matches *)
type conj = { c_switch : int option; c_dst : FT.mask_match option; c_ip : FT.mask_match option }

let conj_true = { c_switch = None; c_dst = None; c_ip = None }

(* intersection of two mask matches; None = contradiction *)
let inter (m1 : FT.mask_match) (m2 : FT.mask_match) =
  let common = m1.FT.mask land m2.FT.mask in
  if m1.FT.value land common <> m2.FT.value land common then None
  else
    Some
      { FT.value = (m1.FT.value land m1.FT.mask) lor (m2.FT.value land m2.FT.mask);
        mask = m1.FT.mask lor m2.FT.mask }

(* conjoin an atom onto a conj; None = contradiction (drops the disjunct) *)
let conj_add c atom =
  match atom with
  | `Sw s -> (
    match c.c_switch with
    | Some s' when s' <> s -> None
    | _ -> Some { c with c_switch = Some s })
  | `Dst mm -> (
    match c.c_dst with
    | None -> Some { c with c_dst = Some mm }
    | Some m0 -> Option.map (fun m -> { c with c_dst = Some m }) (inter m0 mm))
  | `Ip mm -> (
    match c.c_ip with
    | None -> Some { c with c_ip = Some mm }
    | Some m0 -> Option.map (fun m -> { c with c_ip = Some m }) (inter m0 mm))

(* predicate -> disjunctive normal form, each disjunct a conj *)
let dnf ~span p =
  let rec go = function
    | True -> Ok [ conj_true ]
    | At_switch s -> Ok [ { conj_true with c_switch = Some s } ]
    | In_port _ -> Error (In_port_unsupported { span })
    | Dst_mac mm -> Ok [ { conj_true with c_dst = Some mm } ]
    | Dst_ip mm -> Ok [ { conj_true with c_ip = Some mm } ]
    | Tenant tag -> Ok [ { conj_true with c_ip = Some (tenant_match tag) } ]
    | Not (Not p) -> go p
    | Not _ -> Error (Negation_unsupported { span })
    | Or (a, b) ->
      let* da = go a in
      let* db = go b in
      Ok (da @ db)
    | And (a, b) ->
      let* da = go a in
      let* db = go b in
      let merge ca cb =
        let with_sw =
          match cb.c_switch with None -> Some ca | Some s -> conj_add ca (`Sw s)
        in
        let with_dst =
          match (with_sw, cb.c_dst) with
          | None, _ -> None
          | Some c, None -> Some c
          | Some c, Some mm -> conj_add c (`Dst mm)
        in
        match (with_dst, cb.c_ip) with
        | None, _ -> None
        | Some c, None -> Some c
        | Some c, Some mm -> conj_add c (`Ip mm)
      in
      Ok (List.concat_map (fun ca -> List.filter_map (merge ca) db) da)
  in
  go p

(* a normalized, located, lowered clause *)
type nclause = {
  n_switch : int;
  n_name : string;
  n_prio : int;
  n_mtch : FT.mtch;
  n_actions : FT.action list;
  n_groups : (int * int list) list;
  n_span : string;
}

let lower_acts acts =
  List.fold_left
    (fun (fts, gs) a ->
      match a with
      | Forward p -> (FT.Output p :: fts, gs)
      | Via_group { gid; members } -> (FT.Group gid :: fts, (gid, members) :: gs)
      | Multiport ps -> (FT.Multi ps :: fts, gs)
      | Rewrite_dst m -> (FT.Set_dst_mac m :: fts, gs)
      | Rewrite_src m -> (FT.Set_src_mac m :: fts, gs)
      | Punt_fm -> (FT.Punt :: fts, gs)
      | Deny -> (FT.Drop :: fts, gs))
    ([], []) acts
  |> fun (fts, gs) -> (List.rev fts, List.rev gs)

let normalize p =
  let* clauses = flatten p in
  let* lowered =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* disjuncts = dnf ~span:c.span c.pred in
        let actions, groups = lower_acts c.acts in
        let n = List.length disjuncts in
        let* ncs =
          List.fold_left
            (fun (acc : (nclause list * int, error) result) conj ->
              let* ncs, i = acc in
              match conj.c_switch with
              | None -> Error (Unlocated { span = c.span })
              | Some sw ->
                (* disjuncts of one clause landing on the same switch would
                   collide by name; disambiguate all but the first *)
                let name = if n = 1 || i = 0 then c.name else Printf.sprintf "%s#%d" c.name i in
                let nc =
                  { n_switch = sw;
                    n_name = name;
                    n_prio = c.prio;
                    n_mtch = { FT.match_any with FT.dst_mac = conj.c_dst; FT.ip_dst = conj.c_ip };
                    n_actions = actions;
                    n_groups = groups;
                    n_span = c.span }
                in
                Ok (nc :: ncs, i + 1))
            (Ok ([], 0)) disjuncts
        in
        Ok (List.rev (fst ncs) :: acc))
      (Ok []) clauses
  in
  Ok (List.concat (List.rev lowered))

(* ---------------- compilation ---------------- *)

type compiled = {
  c_tables : (int, FT.t) Hashtbl.t;
  c_spans : (int * string, string) Hashtbl.t;
  c_switches : int list;
}

let compile p =
  let* ncs = normalize p in
  let tables = Hashtbl.create 64 in
  let spans = Hashtbl.create 256 in
  let table_for sw =
    match Hashtbl.find_opt tables sw with
    | Some t -> t
    | None ->
      let t = FT.create () in
      Hashtbl.add tables sw t;
      t
  in
  List.iter
    (fun nc ->
      let tbl = table_for nc.n_switch in
      List.iter (fun (gid, members) -> FT.set_group tbl gid (Array.of_list members)) nc.n_groups;
      FT.install tbl
        { FT.name = nc.n_name; priority = nc.n_prio; mtch = nc.n_mtch; actions = nc.n_actions };
      Hashtbl.replace spans (nc.n_switch, nc.n_name) nc.n_span)
    ncs;
  let switches = Hashtbl.fold (fun sw _ acc -> sw :: acc) tables [] |> List.sort compare in
  Ok { c_tables = tables; c_spans = spans; c_switches = switches }

let compile_exn p =
  match compile p with
  | Ok c -> c
  | Error e -> failwith (Format.asprintf "Policy.compile: %a" pp_error e)

let table c sw = Hashtbl.find_opt c.c_tables sw
let switches c = c.c_switches

let entry_count c = Hashtbl.fold (fun _ t acc -> acc + FT.size t) c.c_tables 0
let group_count c = Hashtbl.fold (fun _ t acc -> acc + List.length (FT.groups t)) c.c_tables 0

let span_of c ~switch ~entry = Hashtbl.find_opt c.c_spans (switch, entry)

let install fab c =
  List.iter
    (fun sw ->
      let ct = Hashtbl.find c.c_tables sw in
      let live = SA.table (Fabric.agent fab sw) in
      FT.clear live;
      List.iter
        (fun (gid, members) -> FT.set_group live gid members)
        (List.sort (fun (a, _) (b, _) -> compare (a : int) b) (FT.groups ct));
      (* FT.entries is lookup order (ties: later insertion first); reinstall
         oldest-first so the rebuilt table has the same tie order *)
      List.iter (FT.install live) (List.rev (FT.entries ct)))
    c.c_switches

(* ---------------- the baseline PortLand policy ---------------- *)

(* group-id scheme, mirroring the handwritten switch_agent programming *)
let gid_same e = 10_000 + e
let gid_pod p = 20_000 + p
let gid_ovr p e = 30_000 + (p * 256) + e

type upref = Via_agg of int | Via_core of int * int

let edge_up_ports a =
  List.filter_map
    (fun (port, (n : Ldp.neighbor)) ->
      match (n.Ldp.nbr_level, n.Ldp.nbr_pod, n.Ldp.nbr_position) with
      | Some Ldp_msg.Aggregation, _, Some stripe -> Some (Via_agg stripe, port)
      | Some Ldp_msg.Core, Some s, Some m -> Some (Via_core (s, m), port)
      | _ -> None)
    (Ldp.switch_ports (SA.ldp a))

let up_reaches_pod spec fset ~pod ~position ~dst_pod up =
  match up with
  | Via_agg stripe ->
    (not (Fault.Set.edge_agg_down fset ~pod ~edge_pos:position ~stripe))
    && List.exists
         (fun (s, m) ->
           (not (Fault.Set.agg_core_down fset ~pod ~stripe:s ~member:m))
           && not (Fault.Set.agg_core_down fset ~pod:dst_pod ~stripe:s ~member:m))
         (Spec.stripe_cores spec ~stripe)
  | Via_core (s, m) ->
    (not (Fault.Set.agg_core_down fset ~pod ~stripe:s ~member:m))
    && not (Fault.Set.agg_core_down fset ~pod:dst_pod ~stripe:s ~member:m)

let up_reaches_edge spec fset ~pod ~position ~dst_pod ~dst_edge up =
  let core_ok (s, m) =
    (not (Fault.Set.agg_core_down fset ~pod ~stripe:s ~member:m))
    && (not (Fault.Set.agg_core_down fset ~pod:dst_pod ~stripe:s ~member:m))
    && not
         (List.exists
            (fun stripe -> Fault.Set.edge_agg_down fset ~pod:dst_pod ~edge_pos:dst_edge ~stripe)
            (Spec.stripes_covering spec ~row:s ~member:m))
  in
  match up with
  | Via_agg stripe ->
    (not (Fault.Set.edge_agg_down fset ~pod ~edge_pos:position ~stripe))
    && List.exists core_ok (Spec.stripe_cores spec ~stripe)
  | Via_core (s, m) -> core_ok (s, m)

let bcast_int = Mac_addr.to_int Mac_addr.broadcast

let edge_policy spec a fset ~sw ~pod ~position =
  let ups = edge_up_ports a in
  let span what = Printf.sprintf "sw%d/edge%d.%d/%s" sw pod position what in
  let bcast =
    rule ~span:(span "bcast") ~name:"bcast" ~prio:150
      (Dst_mac { FT.value = bcast_int; mask = 0xFFFFFFFFFFFF })
      [ Punt_fm ]
  in
  let samepod =
    List.filter_map
      (fun e' ->
        if e' = position then None
        else
          let members =
            List.filter_map
              (fun (up, port) ->
                match up with
                | Via_agg stripe
                  when (not (Fault.Set.edge_agg_down fset ~pod ~edge_pos:position ~stripe))
                       && not (Fault.Set.edge_agg_down fset ~pod ~edge_pos:e' ~stripe) ->
                  Some port
                | Via_agg _ | Via_core _ -> None)
              ups
          in
          if members = [] then None
          else
            Some
              (rule
                 ~span:(span (Printf.sprintf "samepod:%d" e'))
                 ~name:(Printf.sprintf "samepod:%d" e')
                 ~prio:80
                 (Dst_mac (Pmac.position_prefix ~pod ~position:e'))
                 [ Via_group { gid = gid_same e'; members } ]))
      (List.init spec.Spec.edges_per_pod Fun.id)
  in
  let pods =
    List.filter_map
      (fun p' ->
        if p' = pod then None
        else
          let members =
            List.filter_map
              (fun (up, port) ->
                if up_reaches_pod spec fset ~pod ~position ~dst_pod:p' up then Some port else None)
              ups
          in
          if members = [] then None
          else
            Some
              (rule
                 ~span:(span (Printf.sprintf "pod:%d" p'))
                 ~name:(Printf.sprintf "pod:%d" p')
                 ~prio:70
                 (Dst_mac (Pmac.pod_prefix ~pod:p'))
                 [ Via_group { gid = gid_pod p'; members } ]))
      (List.init spec.Spec.num_pods Fun.id)
  in
  let overrides =
    List.filter_map
      (fun fault ->
        match fault with
        | Fault.Edge_agg { pod = p'; edge_pos = e'; stripe = _ } when p' <> pod ->
          let members =
            List.filter_map
              (fun (up, port) ->
                if up_reaches_edge spec fset ~pod ~position ~dst_pod:p' ~dst_edge:e' up then
                  Some port
                else None)
              ups
          in
          if members = [] then None
          else
            Some
              (rule
                 ~span:(span (Printf.sprintf "ovr:%d:%d" p' e'))
                 ~name:(Printf.sprintf "ovr:%d:%d" p' e')
                 ~prio:75
                 (Dst_mac (Pmac.position_prefix ~pod:p' ~position:e'))
                 [ Via_group { gid = gid_ovr p' e'; members } ])
        | Fault.Edge_agg _ | Fault.Agg_core _ | Fault.Host_edge _ -> None)
      (Fault.Set.elements fset)
  in
  (* host delivery: a rewrite stage sequenced with a forward stage *)
  let hosts =
    List.map
      (fun (b : Portland.Msg.host_binding) ->
        let pmac_int = Mac_addr.to_int (Pmac.to_mac b.Portland.Msg.pmac) in
        let name = Printf.sprintf "host:%d" pmac_int in
        seq
          (rule ~span:(span name) ~name ~prio:90
             (Dst_mac { FT.value = pmac_int; mask = 0xFFFFFFFFFFFF })
             [ Rewrite_dst b.Portland.Msg.amac ])
          (rule ~span:(span (name ^ "/deliver")) ~name:(name ^ "/deliver") ~prio:0 True
             [ Forward b.Portland.Msg.pmac.Pmac.port ]))
      (SA.host_bindings a)
  in
  let traps =
    List.map
      (fun (stale, _ip, _new_pmac) ->
        let name = Printf.sprintf "trap:%d" stale in
        rule ~span:(span name) ~name ~prio:90
          (Dst_mac { FT.value = stale; mask = 0xFFFFFFFFFFFF })
          [ Punt_fm ])
      (SA.trap_entries a)
  in
  (bcast :: samepod) @ pods @ overrides @ hosts @ traps

let agg_policy spec a fset ~sw ~pod ~stripe =
  let ports = Ldp.switch_ports (SA.ldp a) in
  let span what = Printf.sprintf "sw%d/agg%d.%d/%s" sw pod stripe what in
  let downs =
    List.filter_map
      (fun (port, (n : Ldp.neighbor)) ->
        match (n.Ldp.nbr_level, n.Ldp.nbr_position) with
        | Some Ldp_msg.Edge, Some e' ->
          if Fault.Set.edge_agg_down fset ~pod ~edge_pos:e' ~stripe then None
          else
            Some
              (rule
                 ~span:(span (Printf.sprintf "down:%d" e'))
                 ~name:(Printf.sprintf "down:%d" e')
                 ~prio:80
                 (Dst_mac (Pmac.position_prefix ~pod ~position:e'))
                 [ Forward port ])
        | _ -> None)
      ports
  in
  let core_ports =
    List.filter_map
      (fun (port, (n : Ldp.neighbor)) ->
        match (n.Ldp.nbr_level, n.Ldp.nbr_pod, n.Ldp.nbr_position) with
        | Some Ldp_msg.Core, Some s, Some m -> Some ((s, m), port)
        | _ -> None)
      ports
  in
  let pods =
    List.filter_map
      (fun p' ->
        if p' = pod then None
        else
          let members =
            List.filter_map
              (fun ((s, m), port) ->
                if
                  (not (Fault.Set.agg_core_down fset ~pod ~stripe:s ~member:m))
                  && not (Fault.Set.agg_core_down fset ~pod:p' ~stripe:s ~member:m)
                then Some port
                else None)
              core_ports
          in
          if members = [] then None
          else
            Some
              (rule
                 ~span:(span (Printf.sprintf "pod:%d" p'))
                 ~name:(Printf.sprintf "pod:%d" p')
                 ~prio:70
                 (Dst_mac (Pmac.pod_prefix ~pod:p'))
                 [ Via_group { gid = gid_pod p'; members } ]))
      (List.init spec.Spec.num_pods Fun.id)
  in
  downs @ pods

let core_policy a fset ~sw ~stripe ~member =
  let span what = Printf.sprintf "sw%d/core%d.%d/%s" sw stripe member what in
  List.filter_map
    (fun (port, (n : Ldp.neighbor)) ->
      let down_to p =
        if Fault.Set.agg_core_down fset ~pod:p ~stripe ~member then None
        else
          Some
            (rule
               ~span:(span (Printf.sprintf "pod:%d" p))
               ~name:(Printf.sprintf "pod:%d" p)
               ~prio:70
               (Dst_mac (Pmac.pod_prefix ~pod:p))
               [ Forward port ])
      in
      match (n.Ldp.nbr_level, n.Ldp.nbr_pod) with
      | Some Ldp_msg.Aggregation, Some p -> down_to p
      | Some Ldp_msg.Edge, Some p -> down_to p
      | _ -> None)
    (Ldp.switch_ports (SA.ldp a))

let mcast_policy a ~sw =
  List.map
    (fun (group, ports) ->
      let mac, prio =
        if Ipv4_addr.is_broadcast group then (Mac_addr.broadcast, 160)
        else (Mac_addr.multicast_of_group (Ipv4_addr.multicast_group group), 85)
      in
      let name = Printf.sprintf "mcast:%d" (Ipv4_addr.to_int group) in
      rule
        ~span:(Printf.sprintf "sw%d/mcast/%s" sw name)
        ~name ~prio
        (Dst_mac { FT.value = Mac_addr.to_int mac; mask = 0xFFFFFFFFFFFF })
        [ Multiport ports ])
    (SA.mcast_programming a)

let baseline fab =
  let spec = Fabric.spec fab in
  let net = Fabric.net fab in
  let audited a = SA.is_operational a && SNet.is_up (SNet.device net (SA.switch_id a)) in
  let agents =
    List.sort (fun a b -> compare (SA.switch_id a) (SA.switch_id b)) (Fabric.agents fab)
  in
  let progs =
    List.filter_map
      (fun a ->
        if not (audited a) then None
        else
          match SA.coords a with
          | None -> None
          | Some c ->
            let sw = SA.switch_id a in
            let fset = Fault.Set.of_list (SA.faults a) in
            let parts =
              match c with
              | Coords.Edge { pod; position } -> edge_policy spec a fset ~sw ~pod ~position
              | Coords.Agg { pod; stripe } -> agg_policy spec a fset ~sw ~pod ~stripe
              | Coords.Core { stripe; member } -> core_policy a fset ~sw ~stripe ~member
            in
            Some (restrict (union (parts @ mcast_policy a ~sw)) (At_switch sw)))
      agents
  in
  union progs

(* ---------------- seeded corruptions ---------------- *)

type corruption = Wrong_prefix_len | Drop_ecmp_branch

let corruption_of_string = function
  | "wrong-prefix" -> Some Wrong_prefix_len
  | "drop-ecmp" -> Some Drop_ecmp_branch
  | _ -> None

let corruption_to_string = function
  | Wrong_prefix_len -> "wrong-prefix"
  | Drop_ecmp_branch -> "drop-ecmp"

let pod_prefix_mask = (Pmac.pod_prefix ~pod:0).FT.mask
let position_prefix_mask = (Pmac.position_prefix ~pod:0 ~position:0).FT.mask

let corrupt which p =
  let done_ = ref false in
  let rec pred_widen = function
    | Dst_mac mm when (not !done_) && mm.FT.mask = pod_prefix_mask ->
      done_ := true;
      Dst_mac { mm with FT.mask = position_prefix_mask }
    | And (a, b) ->
      let a' = pred_widen a in
      And (a', if !done_ then b else pred_widen b)
    | Or (a, b) ->
      let a' = pred_widen a in
      Or (a', if !done_ then b else pred_widen b)
    | Not a -> Not (pred_widen a)
    | p -> p
  in
  let clause_fix c =
    match which with
    | Wrong_prefix_len -> if !done_ then c else { c with pred = pred_widen c.pred }
    | Drop_ecmp_branch ->
      if !done_ then c
      else
        let acts =
          List.map
            (fun a ->
              match a with
              | Via_group { gid; members } when (not !done_) && List.length members >= 2 ->
                done_ := true;
                Via_group
                  { gid; members = List.filteri (fun i _ -> i < List.length members - 1) members }
              | a -> a)
            c.acts
        in
        { c with acts }
  in
  let rec go = function
    | Nothing -> Nothing
    | Rule c -> Rule (clause_fix c)
    | Union (a, b) ->
      let a' = go a in
      Union (a', if !done_ then b else go b)
    | Seq (a, b) ->
      let a' = go a in
      Seq (a', if !done_ then b else go b)
    | Restrict (a, pr) -> Restrict (go a, pr)
  in
  go p

let spans p =
  let rec clauses = function
    | Nothing -> []
    | Rule c -> [ c ]
    | Union (a, b) | Seq (a, b) -> clauses a @ clauses b
    | Restrict (a, _) -> clauses a
  in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun c ->
      if Hashtbl.mem seen c.span then None
      else begin
        Hashtbl.add seen c.span ();
        Some c.span
      end)
    (clauses p)

(* ---------------- the static differential checker ---------------- *)

module Check = struct
  type counterexample = {
    cx_switch : int;
    cx_class : Pmac.t option;
    cx_entry : string;
    cx_compiled : string option;
    cx_installed : string option;
    cx_span : string option;
    cx_reason : string;
  }

  type report = {
    ck_switches : int;
    ck_classes : int;
    ck_entries : int;
    ck_groups : int;
    ck_digest_mismatches : int;
    ck_counterexamples : counterexample list;
  }

  let ok r = r.ck_counterexamples = []

  (* FNV-1a (offset truncated to 62 bits, as elsewhere in the repo) *)
  let fnv lines =
    let h = ref 0x3bf29ce484222325 in
    let feed_byte b = h := (!h lxor b) * 0x100000001b3 land max_int in
    List.iter
      (fun s ->
        String.iter (fun ch -> feed_byte (Char.code ch)) s;
        feed_byte 0)
      lines;
    Printf.sprintf "%016x" !h

  let table_digest t = fnv (FT.canonical_lines t)

  let render_members ms =
    Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int (Array.to_list ms)))

  let sorted_unique l = List.sort_uniq compare l

  (* the fate of destination class [d] in table [t], rendered: deciding
     entry plus the member lists of any groups it forwards through *)
  let decision t d =
    match FT.lookup_dst t d with
    | None -> (None, "miss")
    | Some e ->
      let groups =
        List.filter_map
          (function
            | FT.Group g ->
              Some
                (Printf.sprintf " g%d=%s" g
                   (match FT.group_members t g with
                    | Some ms -> render_members ms
                    | None -> "<undefined>"))
            | _ -> None)
          e.FT.actions
      in
      (Some e.FT.name, FT.render_entry e ^ String.concat "" groups)

  let differential fab compiled =
    let net = Fabric.net fab in
    let audited a = SA.is_operational a && SNet.is_up (SNet.device net (SA.switch_id a)) in
    let agents =
      Fabric.agents fab
      |> List.filter (fun a -> audited a && SA.coords a <> None)
      |> List.sort (fun a b -> compare (SA.switch_id a) (SA.switch_id b))
    in
    let cxs = ref [] in
    let n_entries = ref 0 and n_groups = ref 0 and n_mismatch = ref 0 in
    let cx c = cxs := c :: !cxs in
    List.iter
      (fun a ->
        let sw = SA.switch_id a in
        let live = SA.table a in
        match table compiled sw with
        | None ->
          if FT.size live > 0 then begin
            incr n_mismatch;
            cx
              { cx_switch = sw;
                cx_class = None;
                cx_entry = "<table>";
                cx_compiled = None;
                cx_installed = Some (table_digest live);
                cx_span = None;
                cx_reason = "policy compiled no table for this switch" }
          end
        | Some ct ->
          n_entries := !n_entries + FT.size ct;
          n_groups := !n_groups + List.length (FT.groups ct);
          if table_digest ct <> table_digest live then begin
            incr n_mismatch;
            (* name-by-name entry diff *)
            List.iter
              (fun name ->
                let ce = FT.find_entry ct name and le = FT.find_entry live name in
                let r = Option.map FT.render_entry in
                if r ce <> r le then
                  cx
                    { cx_switch = sw;
                      cx_class = None;
                      cx_entry = name;
                      cx_compiled = r ce;
                      cx_installed = r le;
                      cx_span = span_of compiled ~switch:sw ~entry:name;
                      cx_reason =
                        (match (ce, le) with
                         | Some _, None -> "compiled-only entry"
                         | None, Some _ -> "handwritten-only entry"
                         | _ -> "entry differs") })
              (sorted_unique (FT.entry_names ct @ FT.entry_names live));
            (* group diff *)
            List.iter
              (fun gid ->
                let cm = FT.group_members ct gid and lm = FT.group_members live gid in
                if cm <> lm then
                  cx
                    { cx_switch = sw;
                      cx_class = None;
                      cx_entry = Printf.sprintf "group:%d" gid;
                      cx_compiled = Option.map render_members cm;
                      cx_installed = Option.map render_members lm;
                      cx_span = None;
                      cx_reason = "group members differ" })
              (sorted_unique
                 (List.map fst (FT.groups ct) @ List.map fst (FT.groups live)))
          end)
      agents;
    (* symbolic class-by-class comparison over the verifier's universe *)
    let fm = Fabric.fabric_manager fab in
    let bindings =
      V.class_universe fab
      |> List.filter_map (Portland.Fabric_manager.lookup_binding fm)
      |> List.sort_uniq (fun (a : Portland.Msg.host_binding) b ->
             Ipv4_addr.compare a.Portland.Msg.ip b.Portland.Msg.ip)
    in
    List.iter
      (fun (b : Portland.Msg.host_binding) ->
        let pmac = b.Portland.Msg.pmac in
        let d = Mac_addr.to_int (Pmac.to_mac pmac) in
        List.iter
          (fun a ->
            let sw = SA.switch_id a in
            match table compiled sw with
            | None -> ()
            | Some ct ->
              let cname, cdec = decision ct d in
              let lname, ldec = decision (SA.table a) d in
              if cdec <> ldec then
                let entry =
                  match (cname, lname) with
                  | Some n, _ | None, Some n -> n
                  | None, None -> "<none>"
                in
                cx
                  { cx_switch = sw;
                    cx_class = Some pmac;
                    cx_entry = entry;
                    cx_compiled = Some cdec;
                    cx_installed = Some ldec;
                    cx_span = span_of compiled ~switch:sw ~entry;
                    cx_reason = "class decision diverges" })
          agents)
      bindings;
    { ck_switches = List.length agents;
      ck_classes = List.length bindings;
      ck_entries = !n_entries;
      ck_groups = !n_groups;
      ck_digest_mismatches = !n_mismatch;
      ck_counterexamples = List.rev !cxs }

  let run fab = differential fab (compile_exn (baseline fab))

  (* -------- ddmin policy shrinking -------- *)

  (* does the sub-policy still diverge, judged only on the entries and
     groups it compiles (scoped comparison)? *)
  let diverges fab p =
    match compile p with
    | Error _ -> false
    | Ok comp ->
      List.exists
        (fun sw ->
          let ct = Hashtbl.find comp.c_tables sw in
          let live = SA.table (Fabric.agent fab sw) in
          List.exists
            (fun (e : FT.entry) ->
              match FT.find_entry live e.FT.name with
              | None -> true
              | Some le -> FT.render_entry e <> FT.render_entry le)
            (FT.entries ct)
          || List.exists
               (fun (gid, ms) -> FT.group_members live gid <> Some ms)
               (FT.groups ct))
        comp.c_switches

  (* atomic shrink units: Rules and Seqs, with enclosing restrictions
     pushed in *)
  let rec units = function
    | Nothing -> []
    | Rule _ as p -> [ p ]
    | Seq _ as p -> [ p ]
    | Union (a, b) -> units a @ units b
    | Restrict (p, pr) -> List.map (fun u -> Restrict (u, pr)) (units p)

  let ddmin test xs =
    let split n l =
      let len = List.length l in
      let size = max 1 (len / n) in
      let rec go acc cur i = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | x :: rest ->
          if i = size && List.length acc < n - 1 then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (i + 1) rest
      in
      go [] [] 0 l
    in
    let rec go xs n =
      let len = List.length xs in
      if len <= 1 then xs
      else
        let chunks = split n xs in
        match List.find_opt test chunks with
        | Some c -> go c 2
        | None -> (
          let complements = List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks)) chunks in
          match List.find_opt (fun c -> c <> [] && test c) complements with
          | Some c -> go c (max 2 (n - 1))
          | None -> if n < len then go xs (min len (2 * n)) else xs)
    in
    go xs 2

  let shrink fab p =
    let us = units p in
    let test sub = sub <> [] && diverges fab (union sub) in
    if not (test us) then p else union (ddmin test us)

  (* -------- rendering & serialization -------- *)

  let pp_opt fmt = function None -> Format.pp_print_string fmt "-" | Some s -> Format.pp_print_string fmt s

  let pp_counterexample fmt c =
    Format.fprintf fmt "sw %d%a entry %s: %s@,  compiled:  %a@,  installed: %a%a" c.cx_switch
      (fun fmt -> function
        | None -> ()
        | Some p -> Format.fprintf fmt " class %a" Pmac.pp p)
      c.cx_class c.cx_entry c.cx_reason pp_opt c.cx_compiled pp_opt c.cx_installed
      (fun fmt -> function
        | None -> ()
        | Some s -> Format.fprintf fmt "@,  span: %s" s)
      c.cx_span

  let pp_report fmt r =
    Format.fprintf fmt "@[<v>policy differential: %s@,%d switches, %d classes, %d entries, %d groups compared, %d digest mismatches"
      (if ok r then "EQUIVALENT" else "DIVERGES")
      r.ck_switches r.ck_classes r.ck_entries r.ck_groups r.ck_digest_mismatches;
    List.iter (fun c -> Format.fprintf fmt "@,%a" pp_counterexample c) r.ck_counterexamples;
    Format.fprintf fmt "@]"

  let cx_line c = Format.asprintf "@[<h>%a@]" pp_counterexample c

  let digest_of_report r =
    fnv
      (List.map cx_line r.ck_counterexamples
      @ List.map string_of_int
          [ r.ck_switches; r.ck_classes; r.ck_entries; r.ck_groups; r.ck_digest_mismatches ])

  let counterexample_to_json c =
    let open Obs.Json in
    let opt = function None -> Null | Some s -> Str s in
    Obj
      [ ("switch", Int c.cx_switch);
        ("class", (match c.cx_class with None -> Null | Some p -> Str (Pmac.to_string p)));
        ("entry", Str c.cx_entry);
        ("compiled", opt c.cx_compiled);
        ("installed", opt c.cx_installed);
        ("span", opt c.cx_span);
        ("reason", Str c.cx_reason) ]

  let report_to_json r =
    let open Obs.Json in
    Obj
      [ ("ok", Bool (ok r));
        ("switches", Int r.ck_switches);
        ("classes", Int r.ck_classes);
        ("entries", Int r.ck_entries);
        ("groups", Int r.ck_groups);
        ("digest_mismatches", Int r.ck_digest_mismatches);
        ("counterexamples", List (List.map counterexample_to_json r.ck_counterexamples));
        ("digest", Str (digest_of_report r)) ]
end
