(** Policy-as-program: a NetCore-style declarative policy language over
    located packets, compiled to the per-switch PATRICIA flow tables.

    PortLand's forwarding behaviour is otherwise produced only by the
    handwritten {!Portland.Switch_agent} programming. This module gives
    it an independent specification: forwarding is expressed as a small
    typed policy — predicates over the packet's location (ingress
    switch) and headers (PMAC/AMAC prefix, destination IP, a vlan-like
    tenant tag), actions (forward, ECMP group, rewrite, punt-to-FM,
    drop), and the NetCore combinators union / sequence / restrict — and
    a normalizing compiler lowers it to per-switch {!Switchfab.Flow_table}s.
    Compiled tables are installed through the same
    {!Switchfab.Flow_table.set_journal} provenance path the incremental
    verifier consumes, so {!Portland_verify.Verify.Incremental} sessions
    run unchanged off compiled-table journals.

    {!Check} is the static safety net: a differential pass proving the
    compiled tables equivalent to the live handwritten programming —
    per-switch canonical table digests plus a symbolic class-by-class
    comparison over the verifier's PMAC equivalence classes — with typed
    counterexamples (switch, class, diverging entry, policy source span)
    and ddmin-style policy shrinking on mismatch. *)

(** {1 Predicates}

    Predicates classify {e located} packets: where the packet is
    ([At_switch], [In_port]) and what its headers look like. *)

type pred =
  | True                                     (** every packet *)
  | At_switch of int                         (** located at this switch *)
  | In_port of int
      (** entered through this port. Expressible in the language, but the
          flow-table dataplane has no ingress-port match, so clauses
          using it do not lower — {!compile} reports
          {!error.In_port_unsupported}; such clauses must stay on the
          controller. *)
  | Dst_mac of Switchfab.Flow_table.mask_match
      (** destination MAC mask match — PMAC prefixes
          ({!Portland.Pmac.pod_prefix} / [position_prefix] / [exact]) and
          AMAC exact matches *)
  | Dst_ip of Switchfab.Flow_table.mask_match
  | Tenant of int
      (** vlan-like tenant tag, lowered via the fabric's tenant-per-pod
          addressing convention to the [10.<tag>.0.0/16] IP prefix *)
  | And of pred * pred
  | Or of pred * pred                        (** normalized away (DNF) *)
  | Not of pred
      (** not expressible as a single TCAM row; {!compile} reports
          {!error.Negation_unsupported} (double negation cancels) *)

(** {1 Actions} *)

type act =
  | Forward of int                           (** output port *)
  | Via_group of { gid : int; members : int list }
      (** forward via an ECMP select group, defining its member ports *)
  | Multiport of int list                    (** multicast-tree copy set *)
  | Rewrite_dst of Netcore.Mac_addr.t
  | Rewrite_src of Netcore.Mac_addr.t
  | Punt_fm                                  (** hand to the control agent *)
  | Deny

(** {1 Policies} *)

type clause = {
  span : string;  (** source span, carried into counterexamples *)
  name : string;  (** lowers to the flow-table entry name *)
  prio : int;     (** lowers to the entry priority *)
  pred : pred;
  acts : act list;
}

type t =
  | Nothing                 (** the empty policy (unit of {!union}) *)
  | Rule of clause
  | Union of t * t          (** both sub-policies' clauses apply *)
  | Seq of t * t
      (** sequential composition: left stage rewrites, right stage
          forwards. The left side's clauses must consist of rewrite
          actions only ({!error.Seq_left_not_rewrite} otherwise); each
          left clause is merged with each right clause — conjoined
          predicate, concatenated actions, the left clause's name/span,
          the higher priority. *)
  | Restrict of t * pred    (** conjoin [pred] onto every clause *)

val rule : span:string -> name:string -> prio:int -> pred -> act list -> t
val union : t list -> t
val seq : t -> t -> t
val restrict : t -> pred -> t

(** {1 Compilation} *)

type error =
  | Unlocated of { span : string }
      (** a clause's predicate does not pin down an ingress switch *)
  | In_port_unsupported of { span : string }
  | Negation_unsupported of { span : string }
  | Seq_left_not_rewrite of { span : string }

val pp_error : Format.formatter -> error -> unit

type compiled

val compile : t -> (compiled, error) result
(** Normalize (flatten unions, merge sequences, push restrictions,
    predicates to DNF — contradictory conjunctions compile to nothing)
    and lower every clause to an entry in its switch's fresh flow table,
    installing the ECMP groups the clause's actions define. Entry names
    repeat the handwritten scheme, so compiled and handwritten tables
    are comparable name-by-name. *)

val compile_exn : t -> compiled
(** [compile], raising [Failure] with the rendered error. *)

val table : compiled -> int -> Switchfab.Flow_table.t option
val switches : compiled -> int list
(** Switches the policy programs, sorted. *)

val entry_count : compiled -> int
val group_count : compiled -> int

val span_of : compiled -> switch:int -> entry:string -> string option
(** Source span of the clause that produced the named entry. *)

val install : Portland.Fabric.t -> compiled -> unit
(** Replace each programmed switch's {e live} table contents (entries
    and groups) with the compiled ones. Mutations flow through the
    table's journal, so an attached {!Portland_verify.Verify.Incremental}
    session sees compiled-table provenance; its shadow-table diffing
    absorbs the clear+reinstall churn. *)

(** {1 The baseline policy} *)

val baseline : Portland.Fabric.t -> t
(** The full PortLand forwarding program for the fabric's {e current}
    control-plane state, as a declarative policy: per operational switch
    (any {!Topology.Topo.Family} member — plain/AB fat tree, two-layer
    leaf-spine), broadcast punt, same-pod / per-pod / override ECMP
    clauses recomputed from the switch's own LDP neighbor view and fault
    matrix, host rewrite-and-deliver sequences, migration traps and
    multicast trees. Compiling it must reproduce the handwritten tables
    exactly — {!Check} proves it. *)

type corruption =
  | Wrong_prefix_len
      (** widen the first pod-prefix match to position-prefix length —
          the classic fat-finger LPM bug *)
  | Drop_ecmp_branch  (** drop the last member of the first ECMP group *)

val corruption_of_string : string -> corruption option
val corruption_to_string : corruption -> string

val corrupt : corruption -> t -> t
(** Seed the bug into the policy (identity if no site qualifies). *)

val spans : t -> string list
(** The distinct source spans of the policy's clauses, in declaration
    order — what a shrunk reproducer prints. *)

(** {1 The static differential checker} *)

module Check : sig
  type counterexample = {
    cx_switch : int;
    cx_class : Portland.Pmac.t option;
        (** the diverging PMAC equivalence class, for class-level
            counterexamples; [None] for table/entry-level ones *)
    cx_entry : string;            (** diverging entry (or [group:<id>]) *)
    cx_compiled : string option;  (** rendered compiled-side evidence *)
    cx_installed : string option; (** rendered handwritten-side evidence *)
    cx_span : string option;      (** policy source span, when known *)
    cx_reason : string;
  }

  type report = {
    ck_switches : int;            (** audited switches compared *)
    ck_classes : int;             (** PMAC equivalence classes compared *)
    ck_entries : int;             (** compiled entries compared *)
    ck_groups : int;              (** compiled groups compared *)
    ck_digest_mismatches : int;   (** switches whose table digests differ *)
    ck_counterexamples : counterexample list;
  }

  val ok : report -> bool

  val table_digest : Switchfab.Flow_table.t -> string
  (** 16-hex-digit FNV-1a digest over
      {!Switchfab.Flow_table.canonical_lines} — the per-switch
      canonical-form fingerprint. *)

  val differential : Portland.Fabric.t -> compiled -> report
  (** Prove [compiled] equivalent to the live handwritten tables, on
      every audited (operational, device up) switch: (1) per-switch
      canonical digests, with name-by-name entry and group diffs on
      mismatch; (2) symbolic class-by-class comparison — for each of
      {!Portland_verify.Verify.class_universe}'s registered PMAC classes,
      the deciding trie lookup (entry, actions, resolved group members)
      must agree on every switch. *)

  val run : Portland.Fabric.t -> report
  (** [differential fab (compile_exn (baseline fab))] — the check the
      chaos engine re-runs at every quiescent point. *)

  val shrink : Portland.Fabric.t -> t -> t
  (** ddmin the policy to a minimal sub-policy that still diverges from
      the installed tables. Divergence is judged {e scoped} to the
      clauses the sub-policy keeps (its compiled entries/groups vs their
      same-named installed counterparts), so shrinking converges on the
      faulty clause instead of blaming every dropped one. *)

  val pp_counterexample : Format.formatter -> counterexample -> unit
  val pp_report : Format.formatter -> report -> unit

  val counterexample_to_json : counterexample -> Obs.Json.t
  val report_to_json : report -> Obs.Json.t
  (** [{"ok", "switches", "classes", "entries", "groups",
      "digest_mismatches", "counterexamples", "digest"}] —
      byte-deterministic for a given fabric state. *)

  val digest_of_report : report -> string
end
