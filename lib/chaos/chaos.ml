open Eventsim
module MR = Topology.Multirooted
module FS = Portland.Fault.Set
module F = Portland.Fabric
module V = Portland_verify.Verify
module P = Portland_policy.Policy

(* ---------------- plans ---------------- *)

type action =
  | Fail_link of { a : int; b : int }
  | Recover_link of { a : int; b : int }
  | Crash_switch of int
  | Restart_switch of int
  | Restart_fm
  | Failover_fm_shard of { pod : int }
  | Set_link_loss of { a : int; b : int; rate : float }

type event = { at : Time.t; action : action }
type plan = event list

let action_to_string = function
  | Fail_link { a; b } -> Printf.sprintf "fail-link %d-%d" a b
  | Recover_link { a; b } -> Printf.sprintf "recover-link %d-%d" a b
  | Crash_switch d -> Printf.sprintf "crash-switch %d" d
  | Restart_switch d -> Printf.sprintf "restart-switch %d" d
  | Restart_fm -> "restart-fm"
  | Failover_fm_shard { pod } -> Printf.sprintf "failover-fm-shard %d" pod
  | Set_link_loss { a; b; rate } ->
    if rate <= 0.0 then Printf.sprintf "clear-loss %d-%d" a b
    else Printf.sprintf "set-loss %d-%d %.3f" a b rate

let pp_event fmt ev =
  Format.fprintf fmt "%8.1fms %s" (Time.to_ms_f ev.at) (action_to_string ev.action)

type profile = Mixed | Link_flaps | Switch_churn | Loss_ramps

let profile_of_string = function
  | "mixed" -> Some Mixed
  | "link-flaps" -> Some Link_flaps
  | "switch-churn" -> Some Switch_churn
  | "loss-ramps" -> Some Loss_ramps
  | _ -> None

let profile_to_string = function
  | Mixed -> "mixed"
  | Link_flaps -> "link-flaps"
  | Switch_churn -> "switch-churn"
  | Loss_ramps -> "loss-ramps"

(* ---------------- fabric links in topology coordinates ---------------- *)

(* A failable fabric link: its two device ids plus the fault-matrix
   coordinate it maps to (the same coordinate the fabric manager derives
   from Fault_notice messages, so the generator's shadow set and the FM's
   matrix agree at quiescent points). *)
type flink = { la : int; lb : int; lfault : Portland.Fault.t }

(* Fault keys come from the builder's ground-truth labels
   ([agg_stripe_label], [core_label], [agg_uplink_core_index]), which the
   fabric manager's deterministic inference reproduces — so the
   generator's shadow set and the FM's matrix agree at quiescent points
   under every wiring discipline. *)
let edge_agg_link (mt : MR.t) ~pod ~edge_pos ~agg_pos =
  let stripe = MR.agg_stripe_label mt.MR.spec ~pod ~agg_pos in
  { la = mt.MR.edges.(pod).(edge_pos);
    lb = mt.MR.aggs.(pod).(agg_pos);
    lfault = Portland.Fault.Edge_agg { pod; edge_pos; stripe } }

let agg_core_link (mt : MR.t) ~pod ~agg_pos ~j =
  let s = mt.MR.spec in
  let idx = MR.agg_uplink_core_index s ~pod ~agg_pos ~j in
  let row, member = MR.core_label s ~index:idx in
  { la = mt.MR.aggs.(pod).(agg_pos);
    lb = mt.MR.cores.(idx);
    lfault = Portland.Fault.Agg_core { pod; stripe = row; member } }

(* flat wiring: a leaf's uplink [m] lands on spine [m] directly *)
let edge_core_link (mt : MR.t) ~pod ~m =
  let row, member = MR.core_label mt.MR.spec ~index:m in
  { la = mt.MR.edges.(pod).(0);
    lb = mt.MR.cores.(m);
    lfault = Portland.Fault.Agg_core { pod; stripe = row; member } }

let all_flinks (mt : MR.t) =
  let s = mt.MR.spec in
  let u = MR.uplinks_per_agg s in
  let acc = ref [] in
  if s.MR.wiring = MR.Flat then
    for pod = s.MR.num_pods - 1 downto 0 do
      for m = s.MR.num_cores - 1 downto 0 do
        acc := edge_core_link mt ~pod ~m :: !acc
      done
    done
  else
    for pod = s.MR.num_pods - 1 downto 0 do
      for agg_pos = s.MR.aggs_per_pod - 1 downto 0 do
        for j = u - 1 downto 0 do
          acc := agg_core_link mt ~pod ~agg_pos ~j :: !acc
        done;
        for edge_pos = s.MR.edges_per_pod - 1 downto 0 do
          acc := edge_agg_link mt ~pod ~edge_pos ~agg_pos :: !acc
        done
      done
    done;
  !acc

(* Crashing a switch downs all its fabric links at once. Only aggregation
   and core switches are crash candidates: a crashed edge switch strands
   its own hosts, which the verifier rightly reports as blackholes. *)
let crash_candidates (mt : MR.t) =
  let s = mt.MR.spec in
  let u = MR.uplinks_per_agg s in
  let acc = ref [] in
  for idx = s.MR.num_cores - 1 downto 0 do
    let row, member = MR.core_label s ~index:idx in
    let faults =
      List.init s.MR.num_pods (fun pod ->
          Portland.Fault.Agg_core { pod; stripe = row; member })
    in
    acc := (mt.MR.cores.(idx), faults) :: !acc
  done;
  for pod = s.MR.num_pods - 1 downto 0 do
    for agg_pos = s.MR.aggs_per_pod - 1 downto 0 do
      let faults =
        List.init s.MR.edges_per_pod (fun edge_pos ->
            (edge_agg_link mt ~pod ~edge_pos ~agg_pos).lfault)
        @ List.init u (fun j -> (agg_core_link mt ~pod ~agg_pos ~j).lfault)
      in
      acc := (mt.MR.aggs.(pod).(agg_pos), faults) :: !acc
    done
  done;
  !acc

(* ---------------- generation ---------------- *)

(* Episode windows. Each episode injects and fully recovers inside one
   window, leaving a tail for the executor's quiescent check. *)
let window = Time.ms 600

type kind =
  | K_flap
  | K_overlap
  | K_crash
  | K_fm_combo
  | K_shard_failover
  | K_stripe
  | K_loss

let generate ?(profile = Mixed) ~seed ~duration (mt : MR.t) =
  let spec = mt.MR.spec in
  let u = MR.uplinks_per_agg spec in
  let prng = Prng.create (seed lxor 0xC4A05) in
  let shadow = FS.create () in
  let seq = ref 0 in
  let events = ref [] in
  let emit at action =
    incr seq;
    events := (at, !seq, action) :: !events
  in
  let jit lo hi = Time.ms (Prng.int_in prng lo hi) in
  (* PortLand up/down routability of every edge pair under the shadow
     fault set — NOT mere physical connectivity (valley paths don't
     count). Same-pod pairs need an agg carrying both edges; cross-pod
     pairs need a core whose pod-side links and fronting edge–agg links
     are all up on both sides. *)
  let edge_ok pod e s = not (FS.edge_agg_down shadow ~pod ~edge_pos:e ~stripe:s) in
  let exists_agg pod f =
    let rec go a =
      a < spec.MR.aggs_per_pod && (f (MR.agg_stripe_label spec ~pod ~agg_pos:a) || go (a + 1))
    in
    go 0
  in
  (* can (pod, e) use core [idx]? its pod-side core link must be up and —
     under striped wirings — so must the edge–agg hop to the agg
     physically fronting that core in this pod *)
  let core_ok pod e idx =
    let row, member = MR.core_label spec ~index:idx in
    (not (FS.agg_core_down shadow ~pod ~stripe:row ~member))
    && (spec.MR.wiring = MR.Flat
        || edge_ok pod e (MR.pod_stripe_for_core spec ~pod ~row ~member))
  in
  let exists_core f =
    let rec go i = i < spec.MR.num_cores && (f i || go (i + 1)) in
    go 0
  in
  let pair_routable (p1, e1) (p2, e2) =
    if p1 = p2 then
      e1 = e2 || exists_agg p1 (fun s -> edge_ok p1 e1 s && edge_ok p1 e2 s)
    else exists_core (fun idx -> core_ok p1 e1 idx && core_ok p2 e2 idx)
  in
  let all_routable () =
    let ok = ref true in
    for p1 = 0 to spec.MR.num_pods - 1 do
      for e1 = 0 to spec.MR.edges_per_pod - 1 do
        for p2 = p1 to spec.MR.num_pods - 1 do
          for e2 = 0 to spec.MR.edges_per_pod - 1 do
            if ((p2 > p1) || e2 > e1) && !ok then ok := pair_routable (p1, e1) (p2, e2)
          done
        done
      done
    done;
    !ok
  in
  (* Admit an outage only when routability survives it. On success the
     faults stay in the shadow set until [heal] at the recovery event's
     generation; episodes never share a fault, so ownership is unique. *)
  let admit faults =
    if List.exists (FS.mem shadow) faults then false
    else begin
      List.iter (FS.add shadow) faults;
      let ok = all_routable () in
      if not ok then List.iter (FS.remove shadow) faults;
      ok
    end
  in
  let heal faults = List.iter (FS.remove shadow) faults in
  let links = all_flinks mt in
  let live_links () = List.filter (fun l -> not (FS.mem shadow l.lfault)) links in
  let rec pick_admissible n cands faults_of =
    if n = 0 || cands = [] then None
    else begin
      let c = Prng.pick_list prng cands in
      if admit (faults_of c) then Some c else pick_admissible (n - 1) cands faults_of
    end
  in
  (* -- episodes: each takes the window start and emits its events -- *)
  let flap_once t0 (l : flink) =
    let hold = jit 120 180 in
    emit t0 (Fail_link { a = l.la; b = l.lb });
    emit (t0 + hold) (Recover_link { a = l.la; b = l.lb });
    heal [ l.lfault ];
    t0 + hold
  in
  let ep_flap t0 =
    match pick_admissible 4 (live_links ()) (fun l -> [ l.lfault ]) with
    | None -> ()
    | Some l ->
      (* periodic flap with jitter: two fail/recover cycles of one link *)
      let r1 = flap_once (t0 + jit 0 40) l in
      if admit [ l.lfault ] then ignore (flap_once (r1 + jit 20 50) l)
  in
  let ep_overlap t0 =
    (* two different links down with overlapping lifetimes *)
    match pick_admissible 4 (live_links ()) (fun l -> [ l.lfault ]) with
    | None -> ()
    | Some l1 ->
      let t1 = t0 + jit 0 30 in
      emit t1 (Fail_link { a = l1.la; b = l1.lb });
      (match pick_admissible 4 (live_links ()) (fun l -> [ l.lfault ]) with
       | None ->
         emit (t1 + jit 120 180) (Recover_link { a = l1.la; b = l1.lb });
         heal [ l1.lfault ]
       | Some l2 ->
         let t2 = t1 + jit 20 60 in
         emit t2 (Fail_link { a = l2.la; b = l2.lb });
         emit (t1 + jit 150 200) (Recover_link { a = l1.la; b = l1.lb });
         heal [ l1.lfault ];
         emit (t2 + jit 150 200) (Recover_link { a = l2.la; b = l2.lb });
         heal [ l2.lfault ])
  in
  let ep_crash t0 =
    match pick_admissible 4 (crash_candidates mt) snd with
    | None -> ()
    | Some (dev, faults) ->
      let t1 = t0 + jit 0 40 in
      let hold = jit 260 340 in
      emit t1 (Crash_switch dev);
      emit (t1 + hold) (Restart_switch dev);
      heal faults
  in
  let ep_fm_combo t0 =
    (* a link fails, the fabric manager restarts while the fault is live,
       then the link recovers: exercises resync fault re-noticing *)
    match pick_admissible 4 (live_links ()) (fun l -> [ l.lfault ]) with
    | None -> emit (t0 + jit 0 40) Restart_fm
    | Some l ->
      let t1 = t0 + jit 0 20 in
      emit t1 (Fail_link { a = l.la; b = l.lb });
      emit (t1 + Time.ms 90) Restart_fm;
      emit (t1 + Time.ms 90 + jit 120 160) (Recover_link { a = l.la; b = l.lb });
      heal [ l.lfault ]
  in
  let ep_stripe t0 =
    (* correlated outage: one pod loses one agg's whole uplink bundle
       (all u agg-core links at once); no candidates under flat wiring *)
    let cands = ref [] in
    for pod = spec.MR.num_pods - 1 downto 0 do
      for agg_pos = spec.MR.aggs_per_pod - 1 downto 0 do
        cands := (pod, agg_pos) :: !cands
      done
    done;
    let links_of (pod, agg_pos) = List.init u (fun j -> agg_core_link mt ~pod ~agg_pos ~j) in
    let faults_of c = List.map (fun l -> l.lfault) (links_of c) in
    match pick_admissible 4 !cands faults_of with
    | None -> ()
    | Some c ->
      let t1 = t0 + jit 0 30 in
      let hold = jit 200 280 in
      let ls = links_of c in
      List.iteri (fun i l -> emit (t1 + Time.ms i) (Fail_link { a = l.la; b = l.lb })) ls;
      List.iteri
        (fun i l -> emit (t1 + hold + Time.ms i) (Recover_link { a = l.la; b = l.lb }))
        ls;
      heal (faults_of c)
  in
  let ep_loss t0 =
    (* degradation, not death: ramp one link's loss up and back to zero.
       Rates stay well below what could fake an LDM timeout (5 consecutive
       losses), so no fault ever materializes from a loss ramp. *)
    match live_links () with
    | [] -> ()
    | cands ->
      let l = Prng.pick_list prng cands in
      let rate = 0.01 +. (0.01 *. float_of_int (Prng.int_in prng 0 4)) in
      let t1 = t0 + jit 0 30 in
      emit t1 (Set_link_loss { a = l.la; b = l.lb; rate });
      emit (t1 + Time.ms 150) (Set_link_loss { a = l.la; b = l.lb; rate = rate /. 2.0 });
      emit (t1 + Time.ms 300) (Set_link_loss { a = l.la; b = l.lb; rate = 0.0 })
  in
  let ep_shard_failover t0 =
    (* FM-shard failover: wipe one pod's shard and rebuild it from the
       replication log mid-campaign. The shadow fault set is untouched —
       a correct rebuild is invisible to routability; the executor's
       quiescent check (full verifier + shard-integrity pack) is what
       judges it. Paired with a link flap in the same pod so the rebuilt
       fault rows are load-bearing, not vacuously empty. *)
    let pod = Prng.int prng spec.MR.num_pods in
    match
      pick_admissible 4
        (List.filter (fun l -> (Portland.Fault.pod_of l.lfault) = pod) (live_links ()))
        (fun l -> [ l.lfault ])
    with
    | None -> emit (t0 + jit 0 40) (Failover_fm_shard { pod })
    | Some l ->
      let t1 = t0 + jit 0 20 in
      emit t1 (Fail_link { a = l.la; b = l.lb });
      emit (t1 + Time.ms 90) (Failover_fm_shard { pod });
      emit (t1 + Time.ms 90 + jit 120 160) (Recover_link { a = l.la; b = l.lb });
      heal [ l.lfault ]
  in
  let run_kind t0 = function
    | K_flap -> ep_flap t0
    | K_overlap -> ep_overlap t0
    | K_crash -> ep_crash t0
    | K_fm_combo -> ep_fm_combo t0
    | K_shard_failover -> ep_shard_failover t0
    | K_stripe -> ep_stripe t0
    | K_loss -> ep_loss t0
  in
  let n = max 1 (duration / window) in
  let kinds = Array.make n K_flap in
  (match profile with
   | Link_flaps ->
     for i = 0 to n - 1 do
       kinds.(i) <- Prng.pick prng [| K_flap; K_flap; K_overlap |]
     done
   | Switch_churn ->
     for i = 0 to n - 1 do
       kinds.(i) <- K_crash
     done
   | Loss_ramps ->
     for i = 0 to n - 1 do
       kinds.(i) <- K_loss
     done
   | Mixed ->
     for i = 0 to n - 1 do
       kinds.(i) <- Prng.pick prng [| K_flap; K_flap; K_overlap; K_stripe; K_loss; K_flap |]
     done;
     (* mandatory quota in distinct windows: two switch crash/reboot
        cycles, exactly one fabric-manager restart, one FM-shard
        failover, one loss ramp *)
     let quota = [| K_crash; K_crash; K_fm_combo; K_shard_failover; K_loss |] in
     let slots =
       Prng.sample_without_replacement prng (min (Array.length quota) n)
         (List.init n (fun i -> i))
     in
     List.iteri (fun i slot -> kinds.(slot) <- quota.(i)) slots);
  for i = 0 to n - 1 do
    run_kind ((i * window) + Time.ms 50) kinds.(i)
  done;
  !events
  |> List.sort (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
  |> List.map (fun (at, _, action) -> { at; action })

(* ---------------- execution ---------------- *)

type check = {
  chk_ms : float;
  chk_converged : bool;
  chk_wait_ms : float;
  chk_violations : string list;
  chk_probes_ok : int;
  chk_probes : int;
}

type exec_event = { ev_ms : float; ev_desc : string; ev_applied : bool }

type report = {
  rep_seed : int;
  rep_profile : string;
  rep_events : exec_event list;
  rep_checks : check list;
  rep_faults_peak : int;
  rep_convergence : Obs.summary option;
  rep_end_ms : float;
  rep_updates_verified : int;
  rep_incremental_divergences : int;
  rep_policy_checks : int;
  rep_policy_divergences : int;
}

(* Long enough past an event for LDM timeouts (5 periods), fault
   broadcasts and table recomputation to land before we judge the state. *)
let settle = Time.ms 150

(* An inter-event gap this large marks a quiescent point worth checking. *)
let check_gap = Time.ms 250

let apply fab = function
  | Fail_link { a; b } -> F.fail_link_between fab ~a ~b
  | Recover_link { a; b } -> F.recover_link_between fab ~a ~b
  | Crash_switch d ->
    F.fail_switch fab d;
    true
  | Restart_switch d ->
    F.recover_switch fab d;
    true
  | Restart_fm ->
    F.restart_fabric_manager fab;
    true
  | Failover_fm_shard { pod } ->
    (* [applied] doubles as the failover's own integrity verdict: false
       means the digest-checked rebuild or the shard-integrity pack
       failed, which the quiescent check will also surface *)
    F.failover_fm_shard fab ~pod
  | Set_link_loss { a; b; rate } ->
    if rate <= 0.0 then F.clear_link_loss_between fab ~a ~b
    else F.set_link_loss_between fab ~a ~b rate

let run_campaign ?(probes_per_check = 4) ?(label = "custom") ?(verify_every_update = false)
    ?(check_policy = false) ~seed fab plan =
  let mt = F.tree fab in
  let spec = mt.MR.spec in
  let nh = Array.length mt.MR.hosts in
  let prng = Prng.create (seed lxor 0x9B0B5) in
  let probe_payload =
    Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ())
  in
  let host_at idx =
    let per_pod = spec.MR.edges_per_pod * spec.MR.hosts_per_edge in
    let rem = idx mod per_pod in
    F.host fab ~pod:(idx / per_pod) ~edge:(rem / spec.MR.hosts_per_edge)
      ~slot:(rem mod spec.MR.hosts_per_edge)
  in
  let run_probes () =
    let ok = ref 0 in
    for _ = 1 to probes_per_check do
      let i = Prng.int prng nh in
      let j = (i + 1 + Prng.int prng (nh - 1)) mod nh in
      match
        F.trace_route fab ~src:(host_at i)
          ~dst_ip:(Portland.Host_agent.ip (host_at j))
          probe_payload
      with
      | Ok _ -> incr ok
      | Error _ -> ()
    done;
    (!ok, probes_per_check)
  in
  let faults_peak = ref 0 in
  let note_faults () =
    let n = List.length (Portland.Fabric_manager.fault_set (F.fabric_manager fab)) in
    if n > !faults_peak then faults_peak := n
  in
  (* --verify-every-update: a persistent incremental verifier session
     tracks the fabric for the whole campaign, refreshed after every
     applied action (transient violations are expected mid-episode and
     not gated on); at every quiescent check its digest must equal a
     fresh full run's — the differential guarantee. *)
  let inc = if verify_every_update then Some (V.Incremental.attach fab) else None in
  let updates_verified = ref 0 in
  let divergences = ref 0 in
  let policy_checks = ref 0 in
  let policy_divergences = ref 0 in
  let checks = ref [] in
  let do_check () =
    let t0 = F.now fab in
    let converged = F.await_convergence fab in
    let wait = F.now fab - t0 in
    note_faults ();
    let vrep = V.run fab in
    let violations = List.map (Format.asprintf "%a" V.pp_violation) vrep.V.violations in
    let violations =
      match inc with
      | None -> violations
      | Some s ->
        let di = V.digest_of_report (V.Incremental.refresh s) in
        let df = V.digest_of_report vrep in
        if di = df then violations
        else begin
          incr divergences;
          violations
          @ [ Printf.sprintf "incremental/full divergence: incremental %s vs full %s" di df ]
        end
    in
    (* the FM's cross-shard integrity pack runs at every quiescent point:
       placement, sharded-lookup agreement, log-replay equivalence (both
       directions) and fault-row mirroring, whatever the shard count *)
    let violations =
      violations
      @ List.map (Printf.sprintf "shard integrity: %s")
          (Portland.Fabric_manager.shard_integrity (F.fabric_manager fab))
    in
    (* --check-policy: the policy-as-program differential — recompile the
       declarative baseline against the current control-plane state and
       prove it equivalent (digests + class-by-class) to the live
       handwritten tables, at every quiescent point *)
    let violations =
      if not check_policy then violations
      else begin
        incr policy_checks;
        let prep = P.Check.run fab in
        if P.Check.ok prep then violations
        else begin
          incr policy_divergences;
          violations
          @ List.map
              (fun c -> Format.asprintf "policy divergence: @[<h>%a@]" P.Check.pp_counterexample c)
              prep.P.Check.ck_counterexamples
        end
      end
    in
    let probes_ok, probes = run_probes () in
    checks :=
      { chk_ms = Time.to_ms_f (F.now fab);
        chk_converged = converged;
        chk_wait_ms = Time.to_ms_f wait;
        chk_violations = violations;
        chk_probes_ok = probes_ok;
        chk_probes = probes }
      :: !checks
  in
  let events = ref [] in
  let arr = Array.of_list plan in
  Array.iteri
    (fun i ev ->
      F.run_until fab (max (F.now fab) ev.at);
      let applied = apply fab ev.action in
      events :=
        { ev_ms = Time.to_ms_f ev.at; ev_desc = action_to_string ev.action;
          ev_applied = applied }
        :: !events;
      (match inc with
       | Some s when applied ->
         ignore (V.Incremental.refresh s);
         incr updates_verified
       | Some _ | None -> ());
      note_faults ();
      let quiescent =
        if i + 1 < Array.length arr then arr.(i + 1).at - ev.at >= check_gap else true
      in
      if quiescent then begin
        F.run_for fab settle;
        do_check ()
      end)
    arr;
  let convergence =
    match Obs.find (F.obs fab) ~subsystem:"fabric" ~name:"convergence_ms" () with
    | Some (Obs.Summary s) -> Some s
    | Some (Obs.Count _ | Obs.Value _) | None -> None
  in
  (match inc with Some s -> V.Incremental.detach s | None -> ());
  { rep_seed = seed;
    rep_profile = label;
    rep_events = List.rev !events;
    rep_checks = List.rev !checks;
    rep_faults_peak = !faults_peak;
    rep_convergence = convergence;
    rep_end_ms = Time.to_ms_f (F.now fab);
    rep_updates_verified = !updates_verified;
    rep_incremental_divergences = !divergences;
    rep_policy_checks = !policy_checks;
    rep_policy_divergences = !policy_divergences }

let report_ok r =
  r.rep_checks <> []
  && List.for_all
       (fun c -> c.chk_converged && c.chk_violations = [] && c.chk_probes_ok = c.chk_probes)
       r.rep_checks

(* ---------------- report rendering ---------------- *)

let json_of_summary (s : Obs.summary) =
  Obs.Json.Obj
    [ ("n", Obs.Json.Int s.Obs.n);
      ("mean", Obs.Json.Float s.Obs.mean);
      ("min", Obs.Json.Float s.Obs.vmin);
      ("max", Obs.Json.Float s.Obs.vmax);
      ("p50", Obs.Json.Float s.Obs.p50);
      ("p99", Obs.Json.Float s.Obs.p99) ]

let report_to_json r =
  let module J = Obs.Json in
  J.Obj
    [ ("seed", J.Int r.rep_seed);
      ("profile", J.Str r.rep_profile);
      ( "events",
        J.List
          (List.map
             (fun e ->
               J.Obj
                 [ ("at_ms", J.Float e.ev_ms);
                   ("action", J.Str e.ev_desc);
                   ("applied", J.Bool e.ev_applied) ])
             r.rep_events) );
      ( "checks",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [ ("at_ms", J.Float c.chk_ms);
                   ("converged", J.Bool c.chk_converged);
                   ("wait_ms", J.Float c.chk_wait_ms);
                   ("violations", J.List (List.map (fun v -> J.Str v) c.chk_violations));
                   ("probes_ok", J.Int c.chk_probes_ok);
                   ("probes", J.Int c.chk_probes) ])
             r.rep_checks) );
      ("faults_peak", J.Int r.rep_faults_peak);
      ( "convergence_ms",
        match r.rep_convergence with Some s -> json_of_summary s | None -> J.Null );
      ("end_ms", J.Float r.rep_end_ms);
      ("updates_verified", J.Int r.rep_updates_verified);
      ("incremental_divergences", J.Int r.rep_incremental_divergences);
      ("policy_checks", J.Int r.rep_policy_checks);
      ("policy_divergences", J.Int r.rep_policy_divergences);
      ("ok", J.Bool (report_ok r)) ]

let pp_report fmt r =
  Format.fprintf fmt "campaign seed=%d profile=%s: %d events, %d checks@." r.rep_seed
    r.rep_profile (List.length r.rep_events) (List.length r.rep_checks);
  List.iter
    (fun e -> Format.fprintf fmt "  %8.1fms %s%s@." e.ev_ms e.ev_desc
        (if e.ev_applied then "" else " (not applied)"))
    r.rep_events;
  List.iter
    (fun c ->
      Format.fprintf fmt "  check @%8.1fms: %s wait=%.1fms probes=%d/%d violations=%d@."
        c.chk_ms
        (if c.chk_converged then "converged" else "NOT CONVERGED")
        c.chk_wait_ms c.chk_probes_ok c.chk_probes (List.length c.chk_violations);
      List.iter (fun v -> Format.fprintf fmt "    violation: %s@." v) c.chk_violations)
    r.rep_checks;
  if r.rep_updates_verified > 0 then
    Format.fprintf fmt "  incremental: %d updates verified, %d divergences@."
      r.rep_updates_verified r.rep_incremental_divergences;
  if r.rep_policy_checks > 0 then
    Format.fprintf fmt "  policy: %d differential checks, %d divergences@." r.rep_policy_checks
      r.rep_policy_divergences;
  Format.fprintf fmt "  faults peak=%d end=%.1fms %s@." r.rep_faults_peak r.rep_end_ms
    (if report_ok r then "OK" else "FAILED")
