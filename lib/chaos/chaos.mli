(** Declarative fault-campaign engine ("chaos") for a PortLand deployment.

    The paper's fault-tolerance claims are about {e sequences} of failures
    and recoveries, not isolated ones. This module turns those sequences
    into data: a {e plan} is a timed schedule of fault actions (link
    flaps, switch crash + cold reboot, fabric-manager restarts,
    per-link loss-rate ramps, correlated stripe outages), either composed
    from {!Eventsim.Prng}-seeded generators or written out explicitly. An
    executor applies a plan to a live {!Portland.Fabric.t} and, at every
    quiescent point, re-checks convergence, runs the static verifier
    ({!Portland_verify.Verify}) and probes routed reachability, folding
    the results into a typed, JSON-exportable campaign report.

    Determinism is load-bearing: the same seed, topology and duration
    produce byte-identical plans, campaigns and JSON reports (no wall
    clock, no hash-order iteration feeds any output), so a campaign is a
    regression artifact, not a flaky stress test.

    {b Routing feasibility.} The generator never composes an outage set
    that disconnects any host pair {e under PortLand's up/down routing}.
    Physical reachability is not enough — a pair can stay physically
    connected through a "valley" (edge→agg→edge→agg→…) that PMAC-prefix
    routing can never use — so the generator maintains a shadow
    {!Portland.Fault.Set} in topology coordinates and only admits an
    outage when, for every edge-switch pair, some stripe still carries the
    pair: same-pod pairs need one stripe with both edges' uplinks alive;
    cross-pod pairs additionally need that stripe to reach the remote pod
    ({!Portland.Fault.Set.stripe_reaches_pod}). Crashed switches
    contribute the faults of all their links. Under this invariant, every
    verifier violation found at a quiescent point is a real dataplane bug,
    never an artifact of an impossible schedule. *)

(** {1 Plans} *)

(** One fault action, in device ids. [Set_link_loss] with [rate <= 0]
    clears the override. *)
type action =
  | Fail_link of { a : int; b : int }
  | Recover_link of { a : int; b : int }
  | Crash_switch of int       (** {!Portland.Fabric.fail_switch} *)
  | Restart_switch of int     (** {!Portland.Fabric.recover_switch} — cold reboot *)
  | Restart_fm                (** {!Portland.Fabric.restart_fabric_manager} *)
  | Failover_fm_shard of { pod : int }
      (** {!Portland.Fabric.failover_fm_shard}: wipe the FM shard owning
          [pod] and rebuild it from its replication log. [ev_applied]
          carries the failover's digest/integrity verdict. *)
  | Set_link_loss of { a : int; b : int; rate : float }

type event = { at : Eventsim.Time.t; action : action }

type plan = event list
(** Sorted by [at] (ties keep generation order). *)

val action_to_string : action -> string
val pp_event : Format.formatter -> event -> unit

(** Campaign shape. [Mixed] composes everything and guarantees at least
    two switch crash/reboot cycles, exactly one fabric-manager restart
    and one FM-shard failover (given enough duration); the others are
    single-dimension campaigns. *)
type profile = Mixed | Link_flaps | Switch_churn | Loss_ramps

val profile_of_string : string -> profile option
val profile_to_string : profile -> string

val generate :
  ?profile:profile -> seed:int -> duration:Eventsim.Time.t -> Topology.Multirooted.t -> plan
(** Compose a plan of episode windows (~600 ms each) over [duration].
    Every episode is self-contained — whatever it breaks it recovers
    before its window ends — so the plan ends with the fabric fully
    healed. Deterministic in [(profile, seed, duration, spec)]. A
    [duration] below ~2 s leaves no room for the [Mixed] mandatory
    episodes; 6 s and up yields the advertised 30+ events. *)

(** {1 Campaign execution} *)

(** Verdict of one quiescent-point check. *)
type check = {
  chk_ms : float;              (** sim time of the check *)
  chk_converged : bool;        (** {!Portland.Fabric.await_convergence} *)
  chk_wait_ms : float;         (** sim time spent reaching convergence *)
  chk_violations : string list;  (** rendered verifier violations *)
  chk_probes_ok : int;         (** routed host-pair probes that reached *)
  chk_probes : int;
}

type exec_event = {
  ev_ms : float;
  ev_desc : string;
  ev_applied : bool;  (** [false] = the action named a non-existent link *)
}

type report = {
  rep_seed : int;
  rep_profile : string;
  rep_events : exec_event list;
  rep_checks : check list;
  rep_faults_peak : int;
      (** largest fault-matrix cardinality observed at the fabric manager *)
  rep_convergence : Obs.summary option;
      (** digest of the [fabric/convergence_ms] histogram — one
          observation per convergence wait, including every check *)
  rep_end_ms : float;
  rep_updates_verified : int;
      (** incremental-verifier refreshes run after applied actions
          (0 unless [verify_every_update]) *)
  rep_incremental_divergences : int;
      (** quiescent checks where the incremental digest disagreed with a
          fresh full run — always 0 unless the incremental engine is
          broken; each divergence also appears as a check violation *)
  rep_policy_checks : int;
      (** policy differential checks run (one per quiescent check when
          [check_policy], else 0) *)
  rep_policy_divergences : int;
      (** checks where the compiled baseline policy disagreed with the
          handwritten tables — always 0 unless the compiler or the
          handwritten programming is broken; each counterexample also
          appears as a check violation *)
}

val run_campaign :
  ?probes_per_check:int -> ?label:string -> ?verify_every_update:bool ->
  ?check_policy:bool -> seed:int -> Portland.Fabric.t -> plan -> report
(** Execute the plan against a fabric that has already converged once.
    Each event runs the sim to its timestamp and applies it; whenever the
    gap to the next event exceeds the quiescence threshold (250 ms) — and
    after the final event — the executor settles 150 ms (past the LDM
    detection window plus fault broadcast and table recomputation), then
    checks: convergence, the full static verifier, the fabric manager's
    {!Portland.Fabric_manager.shard_integrity} pack (reported as
    ["shard integrity: ..."] violations), and [probes_per_check]
    (default 4) seed-deterministic host-pair {!Portland.Fabric.trace_route}
    probes. [seed] drives only probe-pair sampling; [label] (default
    ["custom"]) is recorded as [rep_profile].

    [verify_every_update] (default false) attaches a persistent
    {!Portland_verify.Verify.Incremental} session for the campaign's
    lifetime, refreshes it after {e every} applied action (mid-episode,
    before any settling — transient violations are tolerated there), and
    at every quiescent check compares its digest against the fresh full
    run's: any disagreement is recorded as a check violation and counted
    in [rep_incremental_divergences].

    [check_policy] (default false) re-runs the policy-as-program
    differential ({!Portland_policy.Policy.Check.run} — recompile the
    declarative baseline, prove it equivalent to the live handwritten
    tables) at every quiescent check; counterexamples are recorded as
    ["policy divergence: ..."] check violations and counted in
    [rep_policy_divergences]. *)

val report_ok : report -> bool
(** Every check converged with zero violations and all probes delivered,
    and at least one check ran. *)

val report_to_json : report -> Obs.Json.t
(** Stable shape (see EXPERIMENTS.md): byte-identical across runs with
    the same seed/topology/duration. *)

val pp_report : Format.formatter -> report -> unit
(** Operator-style summary: events, per-check verdicts, totals. *)
