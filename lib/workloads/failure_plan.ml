module MR = Topology.Multirooted
module T = Topology.Topo

let switch_links (mt : MR.t) =
  Array.to_list (T.links mt.MR.topo)
  |> List.filter_map (fun (l : T.link) ->
         let a = l.T.a.T.node and b = l.T.b.T.node in
         let is_switch n = (T.node mt.MR.topo n).T.kind <> T.Host in
         if is_switch a && is_switch b then Some (a, b) else None)

let pod_of_host (mt : MR.t) host =
  match MR.host_location mt host with
  | Some (pod, edge, _) -> (pod, edge)
  | None -> invalid_arg "Failure_plan: not a host id"

let flow_relevant_links (mt : MR.t) ~src_host ~dst_host =
  let src_pod, src_edge = pod_of_host mt src_host in
  let dst_pod, dst_edge = pod_of_host mt dst_host in
  let src_edge_sw = mt.MR.edges.(src_pod).(src_edge) in
  let dst_edge_sw = mt.MR.edges.(dst_pod).(dst_edge) in
  let relevant (a, b) =
    let touches sw = a = sw || b = sw in
    let is_agg_of pod sw = Array.exists (fun x -> x = sw) mt.MR.aggs.(pod) in
    let is_core sw = Array.exists (fun x -> x = sw) mt.MR.cores in
    touches src_edge_sw || touches dst_edge_sw
    || ((is_agg_of src_pod a || is_agg_of dst_pod a) && is_core b)
    || ((is_agg_of src_pod b || is_agg_of dst_pod b) && is_core a)
  in
  List.filter relevant (switch_links mt)

(* first match wins (historically this scanned on and returned the LAST
   matching link — silently wrong for parallel links), and the scan
   early-exits instead of walking every link *)
let link_index_between (mt : MR.t) a b =
  let links = T.links mt.MR.topo in
  let n = Array.length links in
  let rec go i =
    if i >= n then None
    else
      let l = links.(i) in
      let la = l.T.a.T.node and lb = l.T.b.T.node in
      if (la = a && lb = b) || (la = b && lb = a) then Some i else go (i + 1)
  in
  go 0

(* campaign-sized fan-out resolves thousands of endpoint pairs: precompute
   the (min endpoint, max endpoint) -> first link index map once *)
type link_index = (int * int, int) Hashtbl.t

let pair_key a b = if a <= b then (a, b) else (b, a)

let link_index (mt : MR.t) : link_index =
  let links = T.links mt.MR.topo in
  let idx = Hashtbl.create (2 * Array.length links) in
  Array.iteri
    (fun i (l : T.link) ->
      let key = pair_key l.T.a.T.node l.T.b.T.node in
      (* keep the FIRST topology index per pair, matching link_index_between *)
      if not (Hashtbl.mem idx key) then Hashtbl.replace idx key i)
    links;
  idx

let indexed_link_between idx a b = Hashtbl.find_opt idx (pair_key a b)

let pick_survivable prng mt ~candidates ~src_host ~dst_host ~n =
  let arr = Array.of_list candidates in
  if Array.length arr < n then None
  else begin
    let idx = link_index mt in
    let attempt () =
      let copy = Array.copy arr in
      Eventsim.Prng.shuffle prng copy;
      let chosen = Array.to_list (Array.sub copy 0 n) in
      let excluded = List.filter_map (fun (a, b) -> indexed_link_between idx a b) chosen in
      if Topology.Paths.reachable ~excluded_links:excluded mt.MR.topo ~src:src_host ~dst:dst_host
      then Some chosen
      else None
    in
    let rec go tries = if tries = 0 then None else
        match attempt () with Some c -> Some c | None -> go (tries - 1)
    in
    go 200
  end
