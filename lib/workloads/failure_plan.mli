(** Failure-scenario helpers: which links can fail, and which sets of
    simultaneous failures keep a source–destination pair connected. *)

val switch_links : Topology.Multirooted.t -> (int * int) list
(** All switch–switch links as (device, device) pairs — the links LDP can
    detect failures on (host access links carry no LDMs). *)

val flow_relevant_links :
  Topology.Multirooted.t -> src_host:int -> dst_host:int -> (int * int) list
(** The switch–switch links any ECMP path of the flow could traverse: the
    source edge's uplinks, core links touching the source or destination
    pod, and the destination edge's uplinks. Failing subsets of these is
    how the increasing-failures experiment stresses re-convergence. *)

val link_index_between : Topology.Multirooted.t -> int -> int -> int option
(** Topology index of the {e first} link directly connecting two device
    ids (early-exit scan). [None] when the devices are not adjacent. *)

type link_index
(** Precomputed endpoint-pair → first-link-index map, for resolving many
    pairs (failure campaigns) without an O(links) scan per call. *)

val link_index : Topology.Multirooted.t -> link_index
val indexed_link_between : link_index -> int -> int -> int option
(** Agrees with {!link_index_between} on every pair. *)

val pick_survivable :
  Eventsim.Prng.t -> Topology.Multirooted.t -> candidates:(int * int) list ->
  src_host:int -> dst_host:int -> n:int -> (int * int) list option
(** Choose [n] distinct candidate links, uniformly, such that the
    source and destination remain connected with all of them removed.
    [None] if 200 attempts find no survivable combination. *)
