open Eventsim

type t = {
  engine : Engine.t;
  latency : Time.t;
  mutable fm_handler : (from:int -> Msg.to_fm -> unit) option;
  switch_handlers : (int, Msg.to_switch -> unit) Hashtbl.t;
  mutable to_fm : int;
  mutable to_switch : int;
  mutable to_fm_bytes : int;
  mutable to_switch_bytes : int;
  mutable dropped : int;
}

let create engine ~latency =
  { engine; latency; fm_handler = None; switch_handlers = Hashtbl.create 64; to_fm = 0;
    to_switch = 0; to_fm_bytes = 0; to_switch_bytes = 0; dropped = 0 }

let register_fm t f = t.fm_handler <- Some f
let register_switch t id f = Hashtbl.replace t.switch_handlers id f
let unregister_switch t id = Hashtbl.remove t.switch_handlers id

(* Deliveries are tagged as reorderable actions whenever an engine
   interceptor (the model checker's controlled scheduler) is installed;
   on the normal path no descriptor string is ever built. *)
let deliver t ~tag thunk =
  if Engine.intercepting t.engine then
    ignore (Engine.schedule_tagged t.engine ~delay:t.latency ~tag:(tag ()) thunk)
  else ignore (Engine.schedule t.engine ~delay:t.latency thunk)

let send_to_fm t ~from msg =
  deliver t
    ~tag:(fun () -> Printf.sprintf "ctrl:fm<-%d:%s" from (Msg.describe_to_fm msg))
    (fun () ->
      match t.fm_handler with
      | Some f ->
        t.to_fm <- t.to_fm + 1;
        t.to_fm_bytes <- t.to_fm_bytes + Msg_codec.to_fm_wire_len msg;
        f ~from msg
      | None -> t.dropped <- t.dropped + 1)

let send_to_switch t id msg =
  deliver t
    ~tag:(fun () -> Printf.sprintf "ctrl:sw%d<-fm:%s" id (Msg.describe_to_switch msg))
    (fun () ->
      match Hashtbl.find_opt t.switch_handlers id with
      | Some f ->
        t.to_switch <- t.to_switch + 1;
        t.to_switch_bytes <- t.to_switch_bytes + Msg_codec.to_switch_wire_len msg;
        f msg
      | None -> t.dropped <- t.dropped + 1)

let broadcast_to_switches t msg =
  (* snapshot ids now; deliver individually so late registrations during
     the latency window are not surprised *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.switch_handlers [] in
  List.iter (fun id -> send_to_switch t id msg) ids

let to_fm_count t = t.to_fm
let to_switch_count t = t.to_switch
let to_fm_bytes t = t.to_fm_bytes
let to_switch_bytes t = t.to_switch_bytes
let dropped_count t = t.dropped
