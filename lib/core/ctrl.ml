open Eventsim

type route = {
  rt_fm_engine : Engine.t;
  rt_engine_of : int -> Engine.t;
  rt_shard_of : int -> int;
  rt_post : src:int -> dst:int -> time:Time.t -> (unit -> unit) -> unit;
}

type t = {
  engine : Engine.t;
  latency : Time.t;
  mutable route : route option;
  mutable fm_handler : (from:int -> Msg.to_fm -> unit) option;
  mutable unregister_hook : (int -> unit) option;
  switch_handlers : (int, Msg.to_switch -> unit) Hashtbl.t;
  (* counters are atomic: under sharded execution deliveries to switches
     run on the switches' shards while FM deliveries run on shard 0 *)
  to_fm : int Atomic.t;
  to_switch : int Atomic.t;
  to_fm_bytes : int Atomic.t;
  to_switch_bytes : int Atomic.t;
  dropped : int Atomic.t;
}

let create engine ~latency =
  { engine; latency; route = None; fm_handler = None; unregister_hook = None;
    switch_handlers = Hashtbl.create 64;
    to_fm = Atomic.make 0; to_switch = Atomic.make 0;
    to_fm_bytes = Atomic.make 0; to_switch_bytes = Atomic.make 0;
    dropped = Atomic.make 0 }

let set_route t r = t.route <- r

let register_fm t f = t.fm_handler <- Some f
let set_unregister_hook t f = t.unregister_hook <- Some f
let register_switch t id f = Hashtbl.replace t.switch_handlers id f

(* The hook fires after the handler is gone, so the fabric manager sees
   the switch as already dead when it flushes state keyed on it. *)
let unregister_switch t id =
  Hashtbl.remove t.switch_handlers id;
  match t.unregister_hook with None -> () | Some f -> f id

let has_switch t id = Hashtbl.mem t.switch_handlers id

let bump c = Atomic.incr c
let bump_by c n = ignore (Atomic.fetch_and_add c n)

(* Deliveries are tagged as reorderable actions whenever an engine
   interceptor (the model checker's controlled scheduler) is installed;
   on the normal path no descriptor string is ever built. *)
let deliver t ~tag thunk =
  if Engine.intercepting t.engine then
    ignore (Engine.schedule_tagged t.engine ~delay:t.latency ~tag:(tag ()) thunk)
  else ignore (Engine.schedule t.engine ~delay:t.latency thunk)

(* Sharded delivery: the thunk must run on the destination's shard. The
   control latency is at least the scheduler's lookahead, so cross-shard
   sends always land beyond the current window. *)
let deliver_routed r ~src_engine ~src_shard ~dst_engine ~dst_shard thunk ~latency =
  let time = Engine.now src_engine + latency in
  if src_shard = dst_shard then ignore (Engine.schedule_at dst_engine ~time thunk)
  else r.rt_post ~src:src_shard ~dst:dst_shard ~time thunk

let send_to_fm t ~from msg =
  let thunk () =
    match t.fm_handler with
    | Some f ->
      bump t.to_fm;
      bump_by t.to_fm_bytes (Msg_codec.to_fm_wire_len msg);
      f ~from msg
    | None -> bump t.dropped
  in
  match t.route with
  | Some r ->
    deliver_routed r ~src_engine:(r.rt_engine_of from)
      ~src_shard:(r.rt_shard_of from) ~dst_engine:r.rt_fm_engine ~dst_shard:0 thunk
      ~latency:t.latency
  | None ->
    deliver t
      ~tag:(fun () -> Printf.sprintf "ctrl:fm<-%d:%s" from (Msg.describe_to_fm msg))
      thunk

let send_to_switch t id msg =
  let thunk () =
    match Hashtbl.find_opt t.switch_handlers id with
    | Some f ->
      bump t.to_switch;
      bump_by t.to_switch_bytes (Msg_codec.to_switch_wire_len msg);
      f msg
    | None -> bump t.dropped
  in
  match t.route with
  | Some r ->
    deliver_routed r ~src_engine:r.rt_fm_engine ~src_shard:0
      ~dst_engine:(r.rt_engine_of id) ~dst_shard:(r.rt_shard_of id) thunk
      ~latency:t.latency
  | None ->
    deliver t
      ~tag:(fun () -> Printf.sprintf "ctrl:sw%d<-fm:%s" id (Msg.describe_to_switch msg))
      thunk

let broadcast_to_switches t msg =
  (* snapshot ids now; deliver individually so late registrations during
     the latency window are not surprised. Sorted so the send order (and
     hence per-destination scheduling order) is independent of hash-table
     iteration, which matters for cross-shard post ordering. *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.switch_handlers [] in
  let ids = List.sort compare ids in
  List.iter (fun id -> send_to_switch t id msg) ids

let to_fm_count t = Atomic.get t.to_fm
let to_switch_count t = Atomic.get t.to_switch
let to_fm_bytes t = Atomic.get t.to_fm_bytes
let to_switch_bytes t = Atomic.get t.to_switch_bytes
let dropped_count t = Atomic.get t.dropped
