open Eventsim
open Netcore

type neighbor = {
  switch_id : int;
  nbr_level : Ldp_msg.level option;
  nbr_pod : int option;
  nbr_position : int option;
  mutable their_port : int;
  mutable last_heard : Time.t;
}

type port_state =
  | Unknown
  | Switch_port of neighbor
  | Host_port
  | Dead_port of neighbor

type event =
  | Level_inferred of Ldp_msg.level
  | View_changed
  | Port_dead of { port : int; neighbor_id : int }
  | Port_recovered of { port : int; neighbor_id : int }

type t = {
  engine : Engine.t;
  config : Config.t;
  switch_id : int;
  nports : int;
  wiring : Topology.Multirooted.wiring;
  send : port:int -> Ldp_msg.t -> unit;
  notify : event -> unit;
  ports : port_state array;
  obs : Obs.t;
  m_ldm_tx : Obs.Counter.t;
  m_ldm_rx : Obs.Counter.t;
  m_port_dead : Obs.Counter.t;
  m_port_recovered : Obs.Counter.t;
  mutable self_level : Ldp_msg.level option;
  mutable self_coords : Coords.t option;
  mutable beacon : Timer.t option;
  mutable checker : Timer.t option;
}

let create engine config ~switch_id ~nports ?(wiring = Topology.Multirooted.Stripes) ~send
    ~notify ?(obs = Obs.null) () =
  let labels = [ Obs.Label.sw switch_id ] in
  let c name = Obs.counter obs ~subsystem:"ldp" ~name ~labels () in
  { engine; config; switch_id; nports; wiring; send; notify;
    ports = Array.make nports Unknown;
    obs;
    m_ldm_tx = c "ldm_tx"; m_ldm_rx = c "ldm_rx";
    m_port_dead = c "port_dead"; m_port_recovered = c "port_recovered";
    self_level = None; self_coords = None; beacon = None; checker = None }

let level t = t.self_level
let coords t = t.self_coords

let port_state t port =
  if port < 0 || port >= t.nports then invalid_arg "Ldp.port_state: port out of range";
  t.ports.(port)

let switch_ports t =
  let acc = ref [] in
  for p = t.nports - 1 downto 0 do
    match t.ports.(p) with
    | Switch_port n -> acc := (p, n) :: !acc
    | Unknown | Host_port | Dead_port _ -> ()
  done;
  !acc

let dead_ports t =
  let acc = ref [] in
  for p = t.nports - 1 downto 0 do
    match t.ports.(p) with
    | Dead_port n -> acc := (p, n) :: !acc
    | Unknown | Host_port | Switch_port _ -> ()
  done;
  !acc

let host_ports t =
  let acc = ref [] in
  for p = t.nports - 1 downto 0 do
    match t.ports.(p) with
    | Host_port -> acc := p :: !acc
    | Unknown | Switch_port _ | Dead_port _ -> ()
  done;
  !acc

(* Direction of a port, derivable once levels are known. A port nothing
   has ever been heard on stays Unknown_dir — only a confirmed host port
   counts as facing down. *)
let dir_of t port =
  match t.ports.(port) with
  | Unknown -> Ldp_msg.Unknown_dir
  | Host_port ->
    if t.self_level = Some Ldp_msg.Edge then Ldp_msg.Down else Ldp_msg.Unknown_dir
  | Switch_port n | Dead_port n ->
    (match (t.self_level, n.nbr_level) with
     | Some Ldp_msg.Edge, Some Ldp_msg.Aggregation -> Ldp_msg.Up
     | Some Ldp_msg.Aggregation, Some Ldp_msg.Core -> Ldp_msg.Up
     | Some Ldp_msg.Aggregation, Some Ldp_msg.Edge -> Ldp_msg.Down
     | Some Ldp_msg.Core, Some Ldp_msg.Aggregation -> Ldp_msg.Down
     (* two-layer wirings skip the aggregation tier entirely *)
     | Some Ldp_msg.Edge, Some Ldp_msg.Core -> Ldp_msg.Up
     | Some Ldp_msg.Core, Some Ldp_msg.Edge -> Ldp_msg.Down
     | _, _ -> Ldp_msg.Unknown_dir)

let current_ldm t ~out_port =
  let pod, position =
    match t.self_coords with
    | Some c -> Coords.to_ldm_fields c
    | None -> (None, None)
  in
  { Ldp_msg.switch_id = t.switch_id;
    level = t.self_level;
    pod;
    position;
    dir = dir_of t out_port;
    out_port }

let set_level t level =
  match t.self_level with
  | Some l when l = level -> ()
  | Some l ->
    invalid_arg
      (Printf.sprintf "Ldp: switch %d level changing from %s to %s" t.switch_id
         (Ldp_msg.level_to_string l) (Ldp_msg.level_to_string level))
  | None ->
    t.self_level <- Some level;
    t.notify (Level_inferred level)

let set_coords t c =
  t.self_coords <- Some c;
  if t.self_level = None then set_level t (Coords.level c)

(* Re-run level inference from the current port view. The paper's rules
   assume a three-tier wiring: host below -> Edge; an Edge or Core
   neighbor -> Aggregation; all ports facing aggs -> Core. Under a flat
   (two-layer) wiring there is no aggregation tier, so a switch hearing
   an Edge is a spine (Core) and one hearing a Core is a leaf (Edge). *)
let infer_level t =
  if t.self_level = None then begin
    let has_host = ref false in
    let n_agg_neighbors = ref 0 in
    let heard_edge = ref false in
    let heard_core = ref false in
    Array.iter
      (fun st ->
        match st with
        | Host_port -> has_host := true
        | Switch_port n | Dead_port n ->
          (match n.nbr_level with
           | Some Ldp_msg.Edge -> heard_edge := true
           | Some Ldp_msg.Core -> heard_core := true
           | Some Ldp_msg.Aggregation -> incr n_agg_neighbors
           | None -> ())
        | Unknown -> ())
      t.ports;
    match t.wiring with
    | Topology.Multirooted.Flat ->
      if !has_host then set_level t Ldp_msg.Edge
      else if !heard_edge then set_level t Ldp_msg.Core
      else if !heard_core then set_level t Ldp_msg.Edge
    | Topology.Multirooted.Stripes | Topology.Multirooted.Ab_stripes ->
      if !has_host then set_level t Ldp_msg.Edge
      else if !heard_edge || !heard_core then set_level t Ldp_msg.Aggregation
      else if !n_agg_neighbors = t.nports then set_level t Ldp_msg.Core
  end

(* [level] has only constant constructors, so physical equality is
   equality; the [int] annotations keep both comparisons unboxed *)
let level_opt_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (x : Ldp_msg.level), Some y -> x == y
  | _ -> false

let int_opt_eq a b =
  match (a, b) with None, None -> true | Some (x : int), Some y -> x = y | _ -> false

let on_ldm t ~port (msg : Ldp_msg.t) =
  if port < 0 || port >= t.nports then invalid_arg "Ldp.on_ldm: port out of range";
  Obs.Counter.incr t.m_ldm_rx;
  let now = Engine.now t.engine in
  match t.ports.(port) with
  | Switch_port old
    when old.switch_id = msg.Ldp_msg.switch_id
         && level_opt_eq old.nbr_level msg.Ldp_msg.level
         && int_opt_eq old.nbr_pod msg.Ldp_msg.pod
         && int_opt_eq old.nbr_position msg.Ldp_msg.position ->
    (* steady-state beacon from a known, unchanged neighbor: refresh
       liveness in place, no allocation and no view-change fanout *)
    old.their_port <- msg.Ldp_msg.out_port;
    old.last_heard <- now;
    infer_level t
  | prev ->
    let fresh =
      { switch_id = msg.Ldp_msg.switch_id;
        nbr_level = msg.Ldp_msg.level;
        nbr_pod = msg.Ldp_msg.pod;
        nbr_position = msg.Ldp_msg.position;
        their_port = msg.Ldp_msg.out_port;
        last_heard = now }
    in
    t.ports.(port) <- Switch_port fresh;
    (match prev with
     | Dead_port old ->
       Obs.Counter.incr t.m_port_recovered;
       Obs.eventf t.obs ~time:now ~subsystem:"ldp" "sw %d port %d: neighbor %d recovered"
         t.switch_id port old.switch_id;
       t.notify (Port_recovered { port; neighbor_id = old.switch_id })
     | Unknown | Host_port | Switch_port _ -> ());
    infer_level t;
    t.notify View_changed

let on_host_frame t ~port =
  if port < 0 || port >= t.nports then invalid_arg "Ldp.on_host_frame: port out of range";
  match t.ports.(port) with
  | Unknown ->
    t.ports.(port) <- Host_port;
    infer_level t;
    t.notify View_changed
  | Host_port | Switch_port _ | Dead_port _ -> ()

let beacon_all t =
  for p = 0 to t.nports - 1 do
    Obs.Counter.incr t.m_ldm_tx;
    t.send ~port:p (current_ldm t ~out_port:p)
  done

let check_liveness t =
  let now = Engine.now t.engine in
  for p = 0 to t.nports - 1 do
    match t.ports.(p) with
    | Switch_port n when now - n.last_heard > t.config.Config.ldm_timeout ->
      t.ports.(p) <- Dead_port n;
      Obs.Counter.incr t.m_port_dead;
      Obs.eventf t.obs ~time:now ~level:Eventsim.Trace.Warn ~subsystem:"ldp"
        "sw %d port %d: neighbor %d timed out" t.switch_id p n.switch_id;
      t.notify (Port_dead { port = p; neighbor_id = n.switch_id })
    | Switch_port _ | Unknown | Host_port | Dead_port _ -> ()
  done

let start t =
  if t.beacon = None then begin
    (* deterministic per-switch phase stagger avoids lock-step beacons *)
    let phase = 1 + (t.switch_id * 1619 mod t.config.Config.ldm_period) in
    t.beacon <-
      Some (Timer.every t.engine ~period:t.config.Config.ldm_period ~start_delay:phase (fun () ->
                beacon_all t));
    t.checker <-
      Some
        (Timer.every t.engine ~period:t.config.Config.ldm_period
           ~start_delay:(phase + (t.config.Config.ldm_period / 2)) (fun () -> check_liveness t))
  end

let stop t =
  Option.iter Timer.stop t.beacon;
  Option.iter Timer.stop t.checker;
  t.beacon <- None;
  t.checker <- None

(* Cold restart: a rebooted switch has no port view, no inferred level and
   no coordinates — everything must be re-discovered from live LDMs (and
   re-granted by the fabric manager). Timers are stopped; the owner calls
   [start] again once its handlers are back in place. *)
let reset t =
  stop t;
  Array.fill t.ports 0 t.nports Unknown;
  t.self_level <- None;
  t.self_coords <- None
