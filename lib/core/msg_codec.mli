(** Wire codec for the control protocol ({!Msg}).

    The paper's switches speak to the fabric manager over a real network
    (OpenFlow in its testbed); this codec gives every control message a
    concrete binary encoding so that (a) control-plane load can be
    reported in bytes, not just message counts (the {!Ctrl} channel
    meters both), and (b) the protocol is pinned by round-trip property
    tests like the dataplane formats are.

    Layout: a one-byte message tag, then fixed-width big-endian fields;
    lists are length-prefixed (u16). PMACs travel as their 6-byte MAC
    encoding; coordinates as a kind byte plus two u16s; faults as a kind
    byte plus three u16s. *)

(** Decoding never raises: any frame — truncated mid-field, carrying an
    unknown tag, padded with trailing bytes, or encoding an out-of-range
    field value — comes back as a typed error naming what went wrong and
    (when the tag byte survived) which message kind was being decoded. *)
type error =
  | Truncated of { tag : int option }
      (** the frame ended before the message did; [tag] is the message
          kind when at least the tag byte was present *)
  | Unknown_tag of int
  | Trailing_bytes of int  (** bytes left over after a complete message *)
  | Bad_field of { tag : int option; what : string }
      (** a complete but malformed field (bad level/coords/fault kind,
          out-of-range address...) *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val encode_to_fm : Msg.to_fm -> bytes
val decode_to_fm : bytes -> (Msg.to_fm, error) result

val encode_to_switch : Msg.to_switch -> bytes
val decode_to_switch : bytes -> (Msg.to_switch, error) result

val to_fm_wire_len : Msg.to_fm -> int
val to_switch_wire_len : Msg.to_switch -> int
