open Eventsim
open Netcore
module MR = Topology.Multirooted
module SNet = Switchfab.Net
module FT = Switchfab.Flow_table

module Proto = Config
(* protocol timers ({!Config}); [Config] below is the creation config *)

module Config = struct
  type t = {
    spec : MR.spec;
    proto : Proto.t;
    seed : int;
    link_params : SNet.link_params option;
    spare_slots : (int * int * int) list;
    boot_jitter : Time.t;
    obs : Obs.t option;
    domains : int;
    fm_shards : int;
  }

  let make ?(proto = Proto.default) ?(seed = 42) ?link_params ?(spare_slots = [])
      ?(boot_jitter = 0) ?obs ?(domains = 0) ?(fm_shards = 1) spec =
    { spec; proto; seed; link_params; spare_slots; boot_jitter; obs; domains; fm_shards }

  let default = make (Topology.Fattree.spec ~k:4)

  let fattree ?proto ?seed ?link_params ?spare_slots ?boot_jitter ?obs ?domains ?fm_shards
      ~k () =
    make ?proto ?seed ?link_params ?spare_slots ?boot_jitter ?obs ?domains ?fm_shards
      (Topology.Fattree.spec ~k)

  let of_family ?proto ?seed ?link_params ?spare_slots ?boot_jitter ?obs ?domains
      ?fm_shards family =
    make ?proto ?seed ?link_params ?spare_slots ?boot_jitter ?obs ?domains ?fm_shards
      (MR.spec_of_family family)
end

type host_slot = {
  agent : Host_agent.t;
  plugged : bool;
}

type t = {
  config : Config.t;
  engine : Engine.t; (* shard 0's engine; the only engine when domains = 0 *)
  sched : Sharded.t option;
  obs : Obs.t;
  spec : MR.spec;
  mt : MR.t;
  net : SNet.t;
  ctrl : Ctrl.t;
  mutable fm : Fabric_manager.t;
  switch_agents : (int, Switch_agent.t) Hashtbl.t;
  host_slots : (int, host_slot) Hashtbl.t; (* device id -> slot *)
  by_ip : (Ipv4_addr.t, int) Hashtbl.t; (* current IP -> host device id *)
  mutable journal : Journal.hook option;
}

let jemit t u = match t.journal with None -> () | Some f -> f u

let set_journal t hook =
  (match (hook, t.sched) with
   | Some _, Some _ ->
     invalid_arg
       "Fabric.set_journal: the update journal requires the single-domain engine \
        (Config.domains = 0)"
   | _ -> ());
  t.journal <- hook;
  Fabric_manager.set_journal t.fm hook;
  Hashtbl.iter (fun _ a -> Switch_agent.set_journal a hook) t.switch_agents

let host_ip ~pod ~edge ~slot = Ipv4_addr.of_octets 10 pod edge (slot + 2)

let host_amac device = Mac_addr.of_int (0x020000000000 lor device)

let engine t = t.engine
let sharded t = t.sched
let domains t = match t.sched with Some s -> Sharded.domains s | None -> 0
let obs t = t.obs
let trace t = Obs.trace t.obs
let net t = t.net
let ctrl t = t.ctrl
let fabric_manager t = t.fm
let config t = t.config
let proto_config t = t.config.Config.proto
let spec t = t.spec
let tree t = t.mt

let now t =
  match t.sched with Some s -> Sharded.now s | None -> Engine.now t.engine

let agent t device =
  match Hashtbl.find_opt t.switch_agents device with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Fabric.agent: device %d is not a switch" device)

let agents t = Hashtbl.fold (fun _ a acc -> a :: acc) t.switch_agents []

let host t ~pod ~edge ~slot =
  let s = t.spec in
  let idx =
    (pod * s.MR.edges_per_pod * s.MR.hosts_per_edge) + (edge * s.MR.hosts_per_edge) + slot
  in
  if pod < 0 || pod >= s.MR.num_pods || edge < 0 || edge >= s.MR.edges_per_pod || slot < 0
     || slot >= s.MR.hosts_per_edge
  then invalid_arg "Fabric.host: position out of range";
  let device = t.mt.MR.hosts.(idx) in
  match Hashtbl.find_opt t.host_slots device with
  | Some { plugged = true; agent } -> agent
  | Some { plugged = false; _ } -> invalid_arg "Fabric.host: that slot is a spare (unplugged)"
  | None -> invalid_arg "Fabric.host: no such host"

let host_by_ip t ip =
  match Hashtbl.find_opt t.by_ip ip with
  | Some device ->
    (match Hashtbl.find_opt t.host_slots device with
     | Some s -> Some s.agent
     | None -> None)
  | None -> None

let hosts t =
  Hashtbl.fold (fun _ s acc -> if s.plugged then s.agent :: acc else acc) t.host_slots []

let run_until t time =
  match t.sched with
  | Some s -> Sharded.run_until s time
  | None -> Engine.run ~until:time t.engine

let run_for t d = run_until t (now t + d)

let plugged_host_count t =
  Hashtbl.fold (fun _ s acc -> if s.plugged then acc + 1 else acc) t.host_slots 0

let converged t =
  let all_ops =
    Hashtbl.fold (fun _ a acc -> acc && Switch_agent.is_operational a) t.switch_agents true
  in
  all_ops && Fabric_manager.binding_count t.fm >= plugged_host_count t

let await_convergence ?(timeout = Time.sec 5) t =
  let sp = Obs.span t.obs ~time:(now t) ~subsystem:"fabric" ~name:"convergence" () in
  let deadline = now t + timeout in
  let rec go () =
    if converged t then begin
      (* settle: let one more LDM round refresh every neighbor claim so
         freshly assigned coordinates propagate into all tables *)
      run_for t (3 * t.config.Config.proto.Proto.ldm_period);
      Obs.finish sp ~time:(now t);
      Obs.Gauge.set
        (Obs.gauge t.obs ~subsystem:"fabric" ~name:"converged_at_ms" ())
        (Time.to_ms_f (now t));
      true
    end
    else if now t >= deadline then begin
      Obs.eventf t.obs ~time:(now t) ~level:Eventsim.Trace.Warn ~subsystem:"fabric"
        "convergence timed out after %s" (Time.to_string timeout);
      false
    end
    else begin
      run_until t (min deadline (now t + Time.ms 10));
      go ()
    end
  in
  go ()

let fail_link_between t ~a ~b =
  match SNet.link_between t.net a b with
  | Some l ->
    Obs.eventf t.obs ~time:(now t) ~level:Eventsim.Trace.Warn ~subsystem:"fabric"
      "link %d <-> %d failed" a b;
    SNet.fail_link t.net l;
    jemit t (Journal.Link_state { a; b; up = false });
    true
  | None -> false

let recover_link_between t ~a ~b =
  match SNet.link_between t.net a b with
  | Some l ->
    SNet.recover_link t.net l;
    jemit t (Journal.Link_state { a; b; up = true });
    true
  | None -> false

let restart_fabric_manager t =
  (* the old instance is simply abandoned: a fresh one registers itself on
     the control network (displacing the old handler) and asks every
     switch to resync — reconstructing all soft state. Its "fm" probe
     replaces the abandoned instance's in the registry. *)
  Obs.event t.obs ~time:(now t) ~level:Eventsim.Trace.Warn ~subsystem:"fabric"
    "fabric manager restarted; resync requested";
  t.fm <-
    Fabric_manager.create ~obs:t.obs ~fm_shards:t.config.Config.fm_shards t.engine
      t.config.Config.proto t.ctrl ~spec:t.spec;
  (* the fresh instance must inherit the journal subscription, and the
     subscriber must know every piece of soft state it cached is stale *)
  Fabric_manager.set_journal t.fm t.journal;
  jemit t Journal.Fm_restarted

let failover_fm_shard t ~pod =
  if pod < 0 || pod >= t.spec.MR.num_pods then
    invalid_arg "Fabric.failover_fm_shard: pod out of range";
  Obs.eventf t.obs ~time:(now t) ~level:Eventsim.Trace.Warn ~subsystem:"fabric"
    "fm shard for pod %d failed over (wipe + replay)" pod;
  (* the FM emits the [Journal.Fm_shard_failover] record itself *)
  Fabric_manager.failover_shard t.fm ~pod

let fail_switch t device =
  Obs.eventf t.obs ~time:(now t) ~level:Eventsim.Trace.Warn ~subsystem:"fabric"
    "switch %d failed" device;
  (match Hashtbl.find_opt t.switch_agents device with
   | Some a -> Switch_agent.stop a
   | None -> ());
  SNet.fail_device t.net device;
  jemit t (Journal.Device_state { device; up = false })

let recover_switch t device =
  Obs.eventf t.obs ~time:(now t) ~subsystem:"fabric" "switch %d recovered (cold reboot)" device;
  (match Hashtbl.find_opt t.switch_agents device with
   | Some a ->
     SNet.recover_device t.net device;
     jemit t (Journal.Device_state { device; up = true });
     Switch_agent.restart a
   | None -> invalid_arg (Printf.sprintf "Fabric.recover_switch: device %d is not a switch" device))

let set_link_loss_between t ~a ~b rate =
  match SNet.link_between t.net a b with
  | Some l ->
    if rate > 0.0 then
      Obs.eventf t.obs ~time:(now t) ~subsystem:"fabric" "link %d <-> %d loss set to %.3f" a b
        rate;
    SNet.set_link_loss t.net l rate;
    true
  | None -> false

let clear_link_loss_between t ~a ~b =
  match SNet.link_between t.net a b with
  | Some l ->
    SNet.clear_link_loss t.net l;
    true
  | None -> false

(* ---------------- routing inspection ---------------- *)

let trace_route t ~src ~dst_ip payload =
  (* what the wire would carry: destination PMAC from the source host's
     ARP cache (or, for inspection convenience, the fabric manager's
     table), source PMAC from the source's edge switch mapping *)
  let dst_mac =
    match Host_agent.arp_lookup src dst_ip with
    | Some mac -> Some mac
    | None ->
      (match Fabric_manager.resolve t.fm dst_ip with
       | Some pmac -> Some (Pmac.to_mac pmac)
       | None -> None)
  in
  match dst_mac with
  | None -> Error "destination IP unresolved (no ARP mapping anywhere)"
  | Some dst_mac ->
    let src_mac =
      match Fabric_manager.resolve t.fm (Host_agent.ip src) with
      | Some pmac -> Pmac.to_mac pmac
      | None -> Host_agent.amac src
    in
    let pkt = Ipv4_pkt.make ~src:(Host_agent.ip src) ~dst:dst_ip payload in
    let frame = ref (Eth.make ~dst:dst_mac ~src:src_mac (Eth.Ipv4 pkt)) in
    let here = ref (Host_agent.device_id src) in
    let out_port = ref 0 in
    let path = ref [ !here ] in
    let hops = ref 0 in
    let result = ref None in
    while !result = None do
      incr hops;
      if !hops > 32 then result := Some (Error "forwarding loop detected")
      else begin
        match SNet.peer_of t.net ~node:!here ~port:!out_port with
        | None -> result := Some (Error (Printf.sprintf "dead end at device %d" !here))
        | Some (next, _in_port) ->
          path := next :: !path;
          if Hashtbl.mem t.host_slots next then
            result := Some (Ok (List.rev !path))
          else begin
            match Hashtbl.find_opt t.switch_agents next with
            | None -> result := Some (Error (Printf.sprintf "device %d is not a switch" next))
            | Some a ->
              let table = Switch_agent.table a in
              (match FT.lookup table !frame with
               | None ->
                 result := Some (Error (Printf.sprintf "table miss at device %d" next))
               | Some entry ->
                 let port = ref None in
                 List.iter
                   (fun action ->
                     match action with
                     | FT.Output p -> if !port = None then port := Some p
                     | FT.Group g ->
                       if !port = None then
                         port := FT.select_member table ~group:g ~hash:(FT.flow_hash !frame)
                     | FT.Set_dst_mac m -> frame := { !frame with Eth.dst = m }
                     | FT.Set_src_mac m -> frame := { !frame with Eth.src = m }
                     | FT.Multi _ | FT.Flood | FT.Punt | FT.Drop -> ())
                   entry.FT.actions;
                 (match !port with
                  | Some p ->
                    here := next;
                    out_port := p
                  | None ->
                    result :=
                      Some (Error (Printf.sprintf "no forwarding action at device %d" next))))
          end
      end
    done;
    (match !result with Some r -> r | None -> Error "unreachable")

(* ---------------- migration ---------------- *)

let migrate t ~vm ~to_:(pod, edge, slot) ~downtime ?on_complete () =
  Obs.eventf t.obs ~time:(now t) ~subsystem:"fabric"
    "migrating VM %s to (%d,%d,%d), downtime %s"
    (Netcore.Ipv4_addr.to_string (Host_agent.ip vm))
    pod edge slot (Time.to_string downtime);
  let s = t.spec in
  if pod < 0 || pod >= s.MR.num_pods || edge < 0 || edge >= s.MR.edges_per_pod || slot < 0
     || slot >= s.MR.hosts_per_edge
  then invalid_arg "Fabric.migrate: target out of range";
  let device = Host_agent.device_id vm in
  let target_edge = t.mt.MR.edges.(pod).(edge) in
  (match SNet.peer_of t.net ~node:target_edge ~port:slot with
   | Some _ -> invalid_arg "Fabric.migrate: target port is occupied"
   | None -> ());
  let old_edge = SNet.peer_of t.net ~node:device ~port:0 in
  SNet.unplug t.net ~node:device ~port:0;
  (match old_edge with
   | Some (e, _) -> jemit t (Journal.Wiring { device = e })
   | None -> ());
  let replug () =
    ignore (SNet.plug t.net ~a:(device, 0) ~b:(target_edge, slot));
    jemit t (Journal.Wiring { device = target_edge });
    Host_agent.announce vm;
    match on_complete with Some f -> f () | None -> ()
  in
  match t.sched with
  | Some s ->
    (* rewiring mutates cross-shard structure: run it as a coordinator
       action, between windows, with every shard quiescent *)
    Sharded.schedule_coordinator s ~time:(now t + downtime) replug
  | None -> ignore (Engine.schedule t.engine ~delay:downtime replug)

(* ---------------- state metrics ---------------- *)

let switch_table_sizes t =
  Hashtbl.fold
    (fun _ a acc ->
      match Switch_agent.level a with
      | Some level -> (level, Switch_agent.table_size a) :: acc
      | None -> acc)
    t.switch_agents []

(* ---------------- control-state digest ---------------- *)

let control_state_lines t =
  let coords =
    agents t
    |> List.filter_map (fun a ->
        match Switch_agent.coords a with
        | None -> None
        | Some c ->
          Some (Format.asprintf "sw%d@%a" (Switch_agent.switch_id a) Coords.pp c))
  in
  let bindings =
    agents t
    |> List.concat_map (fun a ->
        List.map
          (fun (b : Msg.host_binding) ->
            Format.asprintf "bind %a amac=%a pmac=%a edge=%d" Ipv4_addr.pp b.Msg.ip
              Mac_addr.pp b.Msg.amac Pmac.pp b.Msg.pmac b.Msg.edge_switch)
          (Switch_agent.host_bindings a))
  in
  let faults =
    Fabric_manager.fault_set t.fm
    |> List.sort Fault.compare
    |> List.map (Format.asprintf "fault %a" Fault.pp)
  in
  let tables =
    agents t
    |> List.map (fun a ->
        Printf.sprintf "table sw%d=%d" (Switch_agent.switch_id a)
          (Switch_agent.table_size a))
  in
  List.sort String.compare coords
  @ List.sort String.compare bindings
  @ faults
  @ List.sort String.compare tables

let control_digest t =
  (* FNV-1a (offset truncated to 62 bits, as elsewhere in the repo) *)
  let h = ref 0x3bf29ce484222325 in
  let feed_byte b = h := (!h lxor b) * 0x100000001b3 land max_int in
  let feed_string s =
    String.iter (fun ch -> feed_byte (Char.code ch)) s;
    feed_byte 0
  in
  List.iter feed_string (control_state_lines t);
  Printf.sprintf "%016x" !h

(* ---------------- construction ---------------- *)

let create (cfg : Config.t) =
  let spec = cfg.Config.spec in
  (match MR.validate_spec spec with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Fabric.create: " ^ msg));
  let proto = cfg.Config.proto in
  let mt = MR.build spec in
  let device_count = Array.length (Topology.Topo.nodes mt.MR.topo) in
  (* Logical shards are fixed by the topology alone: shard 0 owns the
     core switches, the fabric manager and the control network; shard
     p+1 owns pod p (its edges, aggs and hosts). The domain count only
     maps logical shards onto OS domains, so the execution — event
     orders, digests, reports — is identical for every domains >= 1 and
     differs from the classic engine (domains = 0) only in that the
     classic engine interleaves shards event-by-event. *)
  let is_sharded = cfg.Config.domains > 0 in
  let num_shards = if is_sharded then spec.MR.num_pods + 1 else 1 in
  let shard_of_dev = Array.make device_count 0 in
  if is_sharded then begin
    Array.iteri
      (fun p row -> Array.iter (fun d -> shard_of_dev.(d) <- p + 1) row)
      mt.MR.edges;
    Array.iteri
      (fun p row -> Array.iter (fun d -> shard_of_dev.(d) <- p + 1) row)
      mt.MR.aggs;
    let per_pod = spec.MR.edges_per_pod * spec.MR.hosts_per_edge in
    Array.iteri (fun idx d -> shard_of_dev.(d) <- (idx / per_pod) + 1) mt.MR.hosts
  end;
  let engines = Array.init num_shards (fun _ -> Engine.create ()) in
  let engine = engines.(0) in
  let shard_of d = shard_of_dev.(d) in
  let engine_of d = engines.(shard_of_dev.(d)) in
  let sched =
    if not is_sharded then None
    else begin
      let link_delay =
        match cfg.Config.link_params with
        | Some p -> p.SNet.delay
        | None -> SNet.default_link_params.SNet.delay
      in
      let lookahead = min proto.Proto.ctrl_latency link_delay in
      if lookahead <= 0 then
        invalid_arg
          "Fabric.create: sharded execution (Config.domains > 0) requires positive \
           ctrl_latency and link delay (they bound the lookahead)";
      Some (Sharded.create ~domains:cfg.Config.domains ~lookahead engines)
    end
  in
  let obs = match cfg.Config.obs with Some o -> o | None -> Obs.create () in
  let boot_prng = Prng.create (cfg.Config.seed lxor 0x5eed) in
  let boot ~device f =
    if cfg.Config.boot_jitter <= 0 then f ()
    else
      ignore
        (Engine.schedule (engine_of device)
           ~delay:(Prng.int boot_prng cfg.Config.boot_jitter)
           f)
  in
  let net = SNet.create ?params:cfg.Config.link_params engine mt.MR.topo in
  let ctrl = Ctrl.create engine ~latency:proto.Proto.ctrl_latency in
  (match sched with
   | Some s ->
     let post ~src ~dst ~time thunk = Sharded.post s ~src ~dst ~time thunk in
     SNet.set_sched net
       (Some { SNet.sh_engine_of = engine_of; sh_shard_of = shard_of; sh_post = post });
     Ctrl.set_route ctrl
       (Some
          { Ctrl.rt_fm_engine = engine; rt_engine_of = engine_of;
            rt_shard_of = shard_of; rt_post = post })
   | None -> ());
  let fm = Fabric_manager.create ~obs ~fm_shards:cfg.Config.fm_shards engine proto ctrl ~spec in
  let t =
    { config = cfg; engine; sched; obs; spec; mt; net; ctrl; fm;
      switch_agents = Hashtbl.create 64;
      host_slots = Hashtbl.create 256;
      by_ip = Hashtbl.create 256;
      journal = None }
  in
  (* switches *)
  Array.iter
    (fun (n : Topology.Topo.node) ->
      match n.Topology.Topo.kind with
      | Topology.Topo.Edge_switch | Topology.Topo.Agg_switch | Topology.Topo.Core_switch ->
        let device = n.Topology.Topo.id in
        let a =
          Switch_agent.create (engine_of device) proto ctrl net ~spec ~device
            ~seed:cfg.Config.seed ~obs ()
        in
        Hashtbl.replace t.switch_agents device a;
        boot ~device (fun () -> Switch_agent.start a)
      | Topology.Topo.Host -> ())
    (Topology.Topo.nodes mt.MR.topo);
  (* hosts *)
  let spare = Hashtbl.create 8 in
  List.iter (fun (p, e, sl) -> Hashtbl.replace spare (p, e, sl) ()) cfg.Config.spare_slots;
  Array.iteri
    (fun idx device ->
      let per_pod = spec.MR.edges_per_pod * spec.MR.hosts_per_edge in
      let pod = idx / per_pod in
      let rem = idx mod per_pod in
      let edge = rem / spec.MR.hosts_per_edge in
      let slot = rem mod spec.MR.hosts_per_edge in
      let ip = host_ip ~pod ~edge ~slot in
      let agent =
        Host_agent.create (engine_of device) proto net ~device ~amac:(host_amac device)
          ~ip ~obs ()
      in
      let is_spare = Hashtbl.mem spare (pod, edge, slot) in
      Hashtbl.replace t.host_slots device { agent; plugged = not is_spare };
      if is_spare then SNet.unplug t.net ~node:device ~port:0
      else begin
        boot ~device (fun () -> Host_agent.start agent);
        Hashtbl.replace t.by_ip ip device
      end)
    mt.MR.hosts;
  Obs.add_probe obs ~name:"fabric" (fun () ->
      [ Obs.sample ~subsystem:"fabric" ~name:"switches"
          (Obs.Value (float_of_int (Hashtbl.length t.switch_agents)));
        Obs.sample ~subsystem:"fabric" ~name:"plugged_hosts"
          (Obs.Value (float_of_int (plugged_host_count t)));
        Obs.sample ~subsystem:"fabric" ~name:"now_ms" (Obs.Value (Time.to_ms_f (now t))) ]);
  t
