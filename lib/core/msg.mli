(** Messages on the out-of-band control network between switches and the
    fabric manager.

    The paper assumes a separate control network (its testbed used
    OpenFlow's control channel); this module is its message vocabulary.
    Everything here is *soft state* at the fabric manager — it can be
    reconstructed from switches re-reporting. *)

type host_binding = {
  ip : Netcore.Ipv4_addr.t;
  amac : Netcore.Mac_addr.t;
  pmac : Pmac.t;
  edge_switch : int;  (** device id of the edge switch holding the host *)
}

(** Switch → fabric manager. *)
type to_fm =
  | Neighbor_report of {
      switch_id : int;
      level : Netcore.Ldp_msg.level option;
      neighbors : (int * int * Netcore.Ldp_msg.level option) list;
          (** (local port, neighbor switch id, neighbor's claimed level) *)
      host_ports : int list;
    }  (** full current view; sent whenever it changes *)
  | Propose_position of { switch_id : int; position : int }
      (** edge switch proposes a position within its pod *)
  | Arp_query of {
      switch_id : int;
      requester_ip : Netcore.Ipv4_addr.t;
      requester_pmac : Pmac.t;
      requester_port : int;  (** edge port the request arrived on *)
      target_ip : Netcore.Ipv4_addr.t;
    }
  | Host_announce of host_binding
      (** edge switch learned (or re-learned, after migration) a host *)
  | Fault_notice of { switch_id : int; port : int; neighbor : int }
  | Recovery_notice of { switch_id : int; port : int; neighbor : int }
  | Mcast_join of { switch_id : int; group : Netcore.Ipv4_addr.t; port : int }
  | Mcast_leave of { switch_id : int; group : Netcore.Ipv4_addr.t; port : int }
  | Reclaim_coords of { switch_id : int; coords : Coords.t }
      (** resync after a fabric-manager restart: a switch that already
          holds granted coordinates re-registers them so the new instance
          adopts (rather than re-derives) the labelling *)
  | Coords_request of { switch_id : int }
      (** a rebooted switch (RAM lost, position not) asks whether the FM
          still holds coordinates for it. Known: the FM re-grants them
          and replays the switch's dependent state (fault matrix,
          multicast programming, host bindings). Unknown: silence — the
          ordinary discovery path places the switch from scratch. *)

(** Fabric manager → switch. *)
type to_switch =
  | Assign_coords of Coords.t
      (** for aggregation and core switches: complete coordinates; for
          edge switches: confirmation of a granted position (pod
          included) *)
  | Position_denied of { position : int }
      (** proposal collided; propose again *)
  | Arp_answer of {
      target_ip : Netcore.Ipv4_addr.t;
      target_pmac : Pmac.t option;  (** [None]: unknown — broadcast fallback begins *)
      requester_ip : Netcore.Ipv4_addr.t;
      requester_port : int;
      gen : int;
          (** the fabric-wide ARP generation this answer is valid for;
              edge switches cache the mapping stamped with it and stop
              serving the cached entry once a newer generation is
              announced (see {!Arp_gen}) *)
    }
  | Arp_flood of {
      requester_ip : Netcore.Ipv4_addr.t;
      requester_pmac : Pmac.t;
      target_ip : Netcore.Ipv4_addr.t;
    }  (** broadcast fallback: emit this who-has on all host ports *)
  | Fault_update of { faults : Fault.t list }
      (** complete current fault matrix; idempotent *)
  | Invalidate_pmac of { ip : Netcore.Ipv4_addr.t; old_pmac : Pmac.t; new_pmac : Pmac.t }
      (** a VM migrated away: trap its stale PMAC and correct senders *)
  | Mcast_program of { group : Netcore.Ipv4_addr.t; out_ports : int list }
      (** replace this switch's forwarding state for the group ([] =
          remove) *)
  | Resync_request
      (** a (re)started fabric manager asks the switch to re-report its
          neighbor view, re-register its coordinates and re-announce its
          hosts — how the paper's soft state survives FM failure *)
  | Host_restore of { bindings : host_binding list }
      (** replay of the IP↔PMAC↔AMAC bindings the FM holds for a rebooted
          edge switch (sorted by IP), letting it repopulate its host
          tables and vmid counters without waiting for host traffic *)
  | Arp_gen of { gen : int }
      (** broadcast when a VM migration bumps the fabric-wide ARP
          generation: cached ARP answers stamped with an older generation
          are stale and must be re-resolved through the fabric manager *)

val pp_to_fm : Format.formatter -> to_fm -> unit
val pp_to_switch : Format.formatter -> to_switch -> unit

val describe_to_fm : to_fm -> string
val describe_to_switch : to_switch -> string
(** Reorderable-action descriptors (the rendered {!pp_to_fm} /
    {!pp_to_switch} forms): stable strings tagged onto control-plane
    deliveries via {!Eventsim.Engine.schedule_tagged} so the model
    checker can identify, perturb and replay them. Only built while an
    engine interceptor is installed. *)
