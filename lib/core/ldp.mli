(** Location Discovery Protocol state machine (PortLand §3.2 and §3.5).

    One instance runs inside every switch agent. It periodically beacons
    LDMs on every port, digests incoming LDMs into a per-port neighbor
    view, infers the switch's own tree level from that view, and acts as
    the failure detector: a switch-facing port silent for the LDM timeout
    is declared dead (and recovers when LDMs resume).

    Level inference, exactly as the paper argues it:
    - a port that carries non-LDP traffic but never LDMs is host-facing,
      and any switch with a host-facing port is an {e edge} switch;
    - a switch hearing an edge (or core) neighbor is an {e aggregation}
      switch;
    - a switch all of whose ports hear aggregation neighbors is a
      {e core} switch (an edge switch can never satisfy this because its
      host ports carry no LDMs).

    Under a {!Topology.Multirooted.Flat} (two-layer leaf–spine) wiring
    there is no aggregation tier and the middle rule can never fire, so
    inference adapts: a switch with a host port is still an edge (leaf),
    a switch hearing an edge is a core (spine), and a switch hearing a
    core is an edge. The wiring is part of the deployment's static
    configuration (like the LDM period), not something discovered.

    Pod / position / stripe / member assignment is the fabric manager's
    job; the agent feeds granted coordinates back via {!set_coords} so
    subsequent LDMs advertise them. *)

type neighbor = {
  switch_id : int;
  nbr_level : Netcore.Ldp_msg.level option;
  nbr_pod : int option;       (** stripe for cores — see {!Coords.to_ldm_fields} *)
  nbr_position : int option;  (** member for cores *)
  mutable their_port : int;
  mutable last_heard : Eventsim.Time.t;
}

type port_state =
  | Unknown
  | Switch_port of neighbor
  | Host_port
  | Dead_port of neighbor  (** switch-facing, LDM timeout expired *)

type event =
  | Level_inferred of Netcore.Ldp_msg.level
  | View_changed  (** neighbor appeared or refined its claims *)
  | Port_dead of { port : int; neighbor_id : int }
  | Port_recovered of { port : int; neighbor_id : int }

type t

val create :
  Eventsim.Engine.t -> Config.t -> switch_id:int -> nports:int ->
  ?wiring:Topology.Multirooted.wiring ->
  send:(port:int -> Netcore.Ldp_msg.t -> unit) -> notify:(event -> unit) ->
  ?obs:Obs.t -> unit -> t
(** [wiring] (default [Stripes]) selects the level-inference rules — see
    the module comment. [obs] (default {!Obs.null}) receives the protocol counters
    [ldp/ldm_tx], [ldp/ldm_rx], [ldp/port_dead] and [ldp/port_recovered]
    (labelled [sw=switch_id]) plus trace events on fault detection and
    recovery. *)

val start : t -> unit
(** Arm the beacon and liveness timers. Beacons are phase-staggered
    deterministically by switch id. *)

val stop : t -> unit

val reset : t -> unit
(** Cold restart (switch crash + reboot): stop timers and wipe the entire
    port view, inferred level and coordinates, as a power-cycled switch
    would. Call {!start} afterwards to resume discovery from scratch. *)

val on_ldm : t -> port:int -> Netcore.Ldp_msg.t -> unit
val on_host_frame : t -> port:int -> unit
(** Tell LDP a non-LDP frame arrived, for host-port inference. Only
    meaningful on ports not already known to face a switch. *)

val level : t -> Netcore.Ldp_msg.level option
val set_coords : t -> Coords.t -> unit
(** Record fabric-manager-assigned coordinates; advertised in subsequent
    LDMs. Also fixes the level if not yet inferred. *)

val coords : t -> Coords.t option
val port_state : t -> int -> port_state
val switch_ports : t -> (int * neighbor) list
(** Live switch-facing ports only. *)

val dead_ports : t -> (int * neighbor) list
val host_ports : t -> int list
val current_ldm : t -> out_port:int -> Netcore.Ldp_msg.t
(** What the next beacon on that port will carry (exposed for tests). *)
