(** The fault matrix: which fabric links are currently down, expressed in
    topology coordinates (PortLand §3.5).

    The fabric manager translates fault notices (which name switch ids)
    into coordinates using its discovered topology view, and disseminates
    the resulting set. Coordinates — rather than raw switch ids — are what
    every switch needs to recompute its own forwarding state locally,
    because reachability of a remote pod depends on *which stripe* and
    *which member* of that stripe lost a link, and stripe/member labels
    are global. *)

type t =
  | Edge_agg of { pod : int; edge_pos : int; stripe : int }
      (** the link between edge switch [edge_pos] and the aggregation
          switch of stripe [stripe], inside [pod] *)
  | Agg_core of { pod : int; stripe : int; member : int }
      (** the link between [pod]'s aggregation switch of [stripe] and
          core [member] of that stripe *)
  | Host_edge of { pod : int; edge_pos : int; port : int }
      (** a host access link *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pod_of : t -> int
(** The pod a fault is keyed under — every fault variant carries one.
    This is the FM's sharding key for fault-matrix rows (see
    {!Fabric_manager}). *)

val pp : Format.formatter -> t -> unit

(** Mutable set of faults, with the queries table recomputation needs. *)
module Set : sig
  type fault = t
  type t

  val create : unit -> t
  val add : t -> fault -> unit
  val remove : t -> fault -> unit
  val mem : t -> fault -> bool
  val cardinal : t -> int

  (** Sorted by [compare] — never hash order — so fault dissemination
      ([Msg.Fault_update]) and reports are deterministic byte-for-byte. *)
  val elements : t -> fault list

  val of_list : fault list -> t
  val clear : t -> unit
  (** Wholesale reset. Unlike {!add}/{!remove} it does {e not} fire the
      change hook — callers that clear are replacing the set outright and
      journal that as a full reset themselves. *)

  val set_hook : t -> (fault -> bool -> unit) option -> unit
  (** Observe membership changes: the hook fires as [hook fault present]
      whenever {!add} inserts a fault that was absent ([present = true])
      or {!remove} deletes one that was present ([false]). No-op
      adds/removes do not fire. At most one subscriber; used by the
      incremental dataplane verifier to journal fault-matrix deltas. *)

  val edge_agg_down : t -> pod:int -> edge_pos:int -> stripe:int -> bool
  val agg_core_down : t -> pod:int -> stripe:int -> member:int -> bool

  val stripe_reaches_pod : t -> members:int -> src_pod:int -> stripe:int -> dst_pod:int -> bool
  (** Is there at least one of the stripe's [members] cores with live links
      to both pods? (For [src_pod = dst_pod], whether any member link from
      that pod's aggregation switch is alive.) *)
end
