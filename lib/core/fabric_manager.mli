(** The fabric manager (PortLand §3.1, §3.3–§3.6).

    A logically centralized process connected to every switch over the
    out-of-band control network. All of its state is soft — rebuilt from
    switch reports and host announcements:

    - {b Topology view & coordinate assignment.} Neighbor reports drive
      two union-finds: edge–agg adjacency components become pods,
      agg–core adjacency components become stripes. Edge switches propose
      positions which the FM grants iff unique within the pod; agg and
      core switches are assigned coordinates as soon as their components
      are labelled.
    - {b Proxy ARP.} IP → PMAC resolution for edge switches, with a
      broadcast fallback on miss and queued answers once the target
      announces.
    - {b Migration.} A host announcing an already-known IP from a new
      location updates the mapping and sends an invalidation to the
      previous edge switch.
    - {b Fault matrix.} Fault/recovery notices are translated to
      coordinate faults ({!Fault.t}) and the full matrix is re-broadcast
      on every change.
    - {b Multicast.} Group membership from edge switches; the FM maps
      each group to a viable core, computes the distribution tree and
      programs per-switch port sets, recomputing on membership or fault
      changes. *)

type t

type counters = {
  arp_queries : int;
  arp_hits : int;
  arp_misses : int;
  host_announces : int;
  migrations : int;       (** announces that moved an existing IP *)
  fault_notices : int;
  fault_broadcasts : int;
  mcast_recomputes : int;
  reports : int;
}

val create :
  ?obs:Obs.t -> Eventsim.Engine.t -> Config.t -> Ctrl.t ->
  spec:Topology.Multirooted.spec -> t
(** Registers itself as the control network's fabric manager. Significant
    events (coordinate grants, fault-matrix changes, migrations,
    multicast re-rooting) are traced through [obs] when a live registry is
    given; the FM also counts [fm/ctrl_msgs] and exports its {!counters}
    plus soft-state levels ([fm/bindings], [fm/known_switches],
    [fm/faults], [fm/pending_arps]) under the probe name ["fm"] — a
    restarted FM therefore supersedes its predecessor's readings instead
    of double-reporting. *)

val counters : t -> counters

val switch_coords : t -> int -> Coords.t option
(** Coordinates the FM has granted to a switch id, if any. *)

val known_switches : t -> int list
val fault_set : t -> Fault.t list
val binding_count : t -> int

(** {1 Direct access, used by benchmarks and tests}

    These bypass the control network and engine. *)

val resolve : t -> Netcore.Ipv4_addr.t -> Pmac.t option
(** The lookup at the heart of proxy ARP — benchmarked to reproduce the
    paper's fabric-manager CPU-requirements figure. *)

val lookup_binding : t -> Netcore.Ipv4_addr.t -> Msg.host_binding option

val insert_binding_for_test : t -> Msg.host_binding -> unit
(** Pre-populate the IP table without a network (benchmark setup). *)

val group_core : t -> Netcore.Ipv4_addr.t -> int option
(** Core switch currently serving a multicast group, if programmed. *)

val set_journal : t -> Journal.hook option -> unit
(** Subscribe to the fabric manager's state deltas: host-binding writes
    ({!Journal.update.Binding}) and fault-matrix changes
    ({!Journal.update.Fault_delta}, via the fault set's change hook).
    Normally installed through {!Fabric.set_journal}, which re-hooks a
    fresh instance after {!Fabric.restart_fabric_manager}. *)
