(** The fabric manager (PortLand §3.1, §3.3–§3.6).

    A logically centralized process connected to every switch over the
    out-of-band control network. All of its state is soft — rebuilt from
    switch reports and host announcements:

    - {b Topology view & coordinate assignment.} Neighbor reports drive
      two union-finds: edge–agg adjacency components become pods,
      agg–core adjacency components become stripes. Edge switches propose
      positions which the FM grants iff unique within the pod; agg and
      core switches are assigned coordinates as soon as their components
      are labelled.
    - {b Proxy ARP.} IP → PMAC resolution for edge switches, with a
      broadcast fallback on miss and queued answers once the target
      announces.
    - {b Migration.} A host announcing an already-known IP from a new
      location updates the mapping and sends an invalidation to the
      previous edge switch.
    - {b Fault matrix.} Fault/recovery notices are translated to
      coordinate faults ({!Fault.t}) and the full matrix is re-broadcast
      on every change.
    - {b Multicast.} Group membership from edge switches; the FM maps
      each group to a viable core, computes the distribution tree and
      programs per-switch port sets, recomputing on membership or fault
      changes.

    {b Sharding.} Soft state is partitioned across [fm_shards] pod
    shards plus one core shard: shard [p mod fm_shards] owns the
    bindings and pending ARPs of pod [p]'s hosts and pod [p]'s
    fault-matrix rows; the core shard owns multicast membership. Every
    durable write is appended to the owning shard's replication log, so
    {!failover_shard} can wipe a shard and rebuild it deterministically
    — checked against a pre-failure digest and the {!shard_integrity}
    pack. Sharding is a pure partition of the same state machine:
    observable behavior (and chaos/mc output) is byte-identical for
    every shard count.

    {b ARP generations.} Every VM migration advances a fabric-wide ARP
    generation, broadcast to all switches and stamped on every ARP
    answer; edge switches serve cached answers only at the current
    generation, so stale cached PMACs are re-resolved instead of
    silently used. *)

type t

type counters = {
  arp_queries : int;
  arp_hits : int;
  arp_misses : int;
  host_announces : int;
  migrations : int;       (** announces that moved an existing IP *)
  fault_notices : int;
  fault_broadcasts : int;
  mcast_recomputes : int;
  reports : int;
  pending_dropped : int;
      (** pending ARP entries discarded because the asking switch died,
          cold-rebooted, or its pod's shard failed over *)
  shard_failovers : int;
}

val create :
  ?obs:Obs.t -> ?fm_shards:int -> Eventsim.Engine.t -> Config.t -> Ctrl.t ->
  spec:Topology.Multirooted.spec -> t
(** Registers itself as the control network's fabric manager. Significant
    events (coordinate grants, fault-matrix changes, migrations,
    multicast re-rooting) are traced through [obs] when a live registry is
    given; the FM also counts [fm/ctrl_msgs] and exports its {!counters}
    plus soft-state levels ([fm/bindings], [fm/known_switches],
    [fm/faults], [fm/pending_arps]) under the probe name ["fm"] — a
    restarted FM therefore supersedes its predecessor's readings instead
    of double-reporting. *)

val counters : t -> counters

val switch_coords : t -> int -> Coords.t option
(** Coordinates the FM has granted to a switch id, if any. *)

val known_switches : t -> int list
val fault_set : t -> Fault.t list
val binding_count : t -> int

val pending_count : t -> int
(** Distinct target IPs with queued ARP waiters, across all shards. *)

val fm_shards : t -> int
(** Number of pod shards the soft state is partitioned into (>= 1). *)

val arp_generation : t -> int
(** Current ARP generation; advances on every migration. *)

val failover_shard : t -> pod:int -> bool
(** Fail over the shard owning [pod]: drop the pod's pending ARPs
    (counted in [pending_dropped]), wipe the shard's bindings and
    rebuild them from its replication log, then verify the rebuild —
    digest equality with the pre-failure state plus the full
    {!shard_integrity} pack. [true] iff the rebuilt state verified.
    Keyed by pod so a chaos plan means the same thing under every
    [fm_shards] count. *)

val shard_log_replays : t -> int array
(** How many times each shard's replication log has been replayed
    (pod shards first, core shard last) — by {!failover_shard}, by
    {!shard_integrity}, and by the shard-scoped resync that restores a
    rebooted edge switch's host bindings. The resync test asserts the
    last touches {e only} the rebooted switch's owning shard. *)

val shard_integrity : t -> string list
(** Cross-shard binding agreement, both directions: every binding lives
    on exactly its owning shard and the sharded lookup finds it; every
    shard's replication log replays to exactly its live table; fault
    rows and multicast membership match their owners' logs. Empty iff
    consistent. Run by the mc invariant pack and chaos quiescent
    checks. *)

(** {1 Direct access, used by benchmarks and tests}

    These bypass the control network and engine. *)

val resolve : t -> Netcore.Ipv4_addr.t -> Pmac.t option
(** The lookup at the heart of proxy ARP — benchmarked to reproduce the
    paper's fabric-manager CPU-requirements figure. *)

val resolve_batch : t -> Netcore.Ipv4_addr.t array -> Pmac.t option array
(** Batched {!resolve}: queries are grouped by owning shard and served
    shard-at-a-time from a flat read-optimized serving index (rebuilt
    lazily after binding writes), the access pattern of a sharded ARP
    service. The 1M/10M-binding bench rows measure this path, sharded
    vs monolithic. Agrees with {!resolve} on every input. *)

val lookup_binding : t -> Netcore.Ipv4_addr.t -> Msg.host_binding option

val insert_binding_for_test : t -> Msg.host_binding -> unit
(** Pre-populate the IP table without a network (benchmark setup). *)

val group_core : t -> Netcore.Ipv4_addr.t -> int option
(** Core switch currently serving a multicast group, if programmed. *)

val set_journal : t -> Journal.hook option -> unit
(** Subscribe to the fabric manager's state deltas: host-binding writes
    ({!Journal.update.Binding}) and fault-matrix changes
    ({!Journal.update.Fault_delta}, via the fault set's change hook).
    Normally installed through {!Fabric.set_journal}, which re-hooks a
    fresh instance after {!Fabric.restart_fabric_manager}. *)
