open Eventsim

type t = {
  ldm_period : Time.t;
  ldm_timeout : Time.t;
  ctrl_latency : Time.t;
  arp_cache_timeout : Time.t;
  arp_retry : Time.t;
  arp_retry_limit : int;
  arp_backoff : float;
  host_announce_delay : Time.t;
  fm_arp_service_time : Time.t;
  forward_stale : bool;
  host_pending_limit : int;
}

let default =
  { ldm_period = Time.ms 10;
    ldm_timeout = Time.ms 50;
    ctrl_latency = Time.us 50;
    arp_cache_timeout = Time.sec 60;
    arp_retry = Time.ms 100;
    arp_retry_limit = 8;
    arp_backoff = 2.0;
    host_announce_delay = Time.ms 100;
    fm_arp_service_time = Time.us 30;
    forward_stale = false;
    host_pending_limit = 64 }

let pp fmt t =
  Format.fprintf fmt
    "ldm_period=%a ldm_timeout=%a ctrl_latency=%a arp_cache=%a arp_retry=%a(x%d,b%.1f) \
     announce=%a fm_arp_service=%a forward_stale=%b pending_limit=%d"
    Time.pp t.ldm_period Time.pp t.ldm_timeout Time.pp t.ctrl_latency Time.pp t.arp_cache_timeout
    Time.pp t.arp_retry t.arp_retry_limit t.arp_backoff Time.pp t.host_announce_delay
    Time.pp t.fm_arp_service_time t.forward_stale t.host_pending_limit
