type t =
  | Edge_agg of { pod : int; edge_pos : int; stripe : int }
  | Agg_core of { pod : int; stripe : int; member : int }
  | Host_edge of { pod : int; edge_pos : int; port : int }

let equal a b = a = b
let compare = Stdlib.compare

let pod_of = function
  | Edge_agg { pod; _ } | Agg_core { pod; _ } | Host_edge { pod; _ } -> pod

let pp fmt = function
  | Edge_agg { pod; edge_pos; stripe } ->
    Format.fprintf fmt "edge%d/agg%d@pod%d" edge_pos stripe pod
  | Agg_core { pod; stripe; member } ->
    Format.fprintf fmt "agg%d@pod%d/core%d.%d" stripe pod stripe member
  | Host_edge { pod; edge_pos; port } ->
    Format.fprintf fmt "host@pod%d/edge%d:port%d" pod edge_pos port

module Set = struct
  type fault = t

  type nonrec t = {
    tbl : (t, unit) Hashtbl.t;
    mutable hook : (fault -> bool -> unit) option;
  }

  let create () = { tbl = Hashtbl.create 16; hook = None }
  let set_hook t h = t.hook <- h
  let fire t f present = match t.hook with None -> () | Some h -> h f present
  let mem t f = Hashtbl.mem t.tbl f

  let add t f =
    if not (mem t f) then begin
      Hashtbl.replace t.tbl f ();
      fire t f true
    end

  let remove t f =
    if mem t f then begin
      Hashtbl.remove t.tbl f;
      fire t f false
    end

  let cardinal t = Hashtbl.length t.tbl

  (* sorted, NOT hash order: the list feeds [Msg.Fault_update] broadcasts
     and JSON reports, which must be byte-identical across runs *)
  let elements t = List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t.tbl [])

  let of_list fs =
    let t = create () in
    List.iter (add t) fs;
    t

  (* wholesale replacement, not an observed delta stream: the hook is not
     fired (subscribers treat the enclosing operation as a full reset) *)
  let clear t = Hashtbl.reset t.tbl

  let edge_agg_down t ~pod ~edge_pos ~stripe = mem t (Edge_agg { pod; edge_pos; stripe })
  let agg_core_down t ~pod ~stripe ~member = mem t (Agg_core { pod; stripe; member })

  let stripe_reaches_pod t ~members ~src_pod ~stripe ~dst_pod =
    let alive m pod = not (agg_core_down t ~pod ~stripe ~member:m) in
    let rec go m =
      if m >= members then false
      else if alive m src_pod && alive m dst_pod then true
      else go (m + 1)
    in
    go 0
end
