open Eventsim
open Netcore
module FT = Switchfab.Flow_table
module Spec = Topology.Multirooted

type host_entry = { h_amac : Mac_addr.t; h_port : int; h_pmac : Pmac.t }

type trap_entry = { t_ip : Ipv4_addr.t; t_new_pmac : Pmac.t }

type agent_counters = {
  arps_proxied : int;
  arps_answered : int;
  arp_cache_hits : int;
  hosts_learned : int;
  trap_hits : int;
  corrective_arps : int;
  table_recomputes : int;
  faults_reported : int;
  recoveries_reported : int;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  ctrl : Ctrl.t;
  spec : Spec.spec;
  sw_id : int;
  m_rewrites : Obs.Counter.t;
  table : FT.t;
  mutable dp : Switchfab.Dataplane.t option;
  mutable ldp : Ldp.t option;
  prng : Prng.t;
  mutable coords : Coords.t option;
  mutable operational : bool;
  faults : Fault.Set.t;
  (* edge-only state *)
  amac_to_host : (Mac_addr.t, host_entry) Hashtbl.t;
  pmac_to_host : (int, host_entry) Hashtbl.t; (* key: PMAC as int *)
  ip_to_pmac : (Ipv4_addr.t, Pmac.t) Hashtbl.t; (* local hosts *)
  next_vmid : (int, int) Hashtbl.t; (* port -> next vmid *)
  traps : (int, trap_entry) Hashtbl.t; (* stale PMAC int -> trap *)
  (* generation-stamped ARP cache: target ip -> (pmac, gen, expiry).
     Served only while the entry's generation is current (>= the newest
     generation this switch has seen) and unexpired; a VM migration bumps
     the fabric-wide generation, so every cached answer predating it goes
     stale at once and the next request re-resolves through the FM. *)
  arp_cache : (Ipv4_addr.t, Pmac.t * int * Time.t) Hashtbl.t;
  mutable arp_gen_seen : int;
  mcast : (Ipv4_addr.t, int list) Hashtbl.t;
  mutable pending_learn : (int * Mac_addr.t * Ipv4_addr.t option) list;
  mutable position_candidate : int;
  mutable proposal_outstanding : bool;
  mutable report_scheduled : bool;
  (* counters *)
  mutable c_arps_proxied : int;
  mutable c_arps_answered : int;
  mutable c_arp_cache_hits : int;
  mutable c_hosts_learned : int;
  mutable c_trap_hits : int;
  mutable c_corrective_arps : int;
  mutable c_table_recomputes : int;
  mutable c_faults_reported : int;
  mutable c_recoveries_reported : int;
  mutable journal : Journal.hook option;
}

let jemit t u = match t.journal with None -> () | Some f -> f u

let set_journal t hook =
  t.journal <- hook;
  (* the flow table outlives stop/restart cycles, so wiring its journal
     once here covers the whole agent lifetime *)
  FT.set_journal t.table
    (match hook with
     | None -> None
     | Some f -> Some (fun change -> f (Journal.Flow { switch = t.sw_id; change })))

let switch_id t = t.sw_id
let coords t = t.coords
let faults t = Fault.Set.elements t.faults

(* the edge's local view of its hosts, as bindings comparable against the
   fabric manager's table (sorted by IP for deterministic iteration) *)
let host_bindings t =
  Hashtbl.fold
    (fun ip pmac acc ->
      match Hashtbl.find_opt t.pmac_to_host (Mac_addr.to_int (Pmac.to_mac pmac)) with
      | Some h -> { Msg.ip; amac = h.h_amac; pmac = h.h_pmac; edge_switch = t.sw_id } :: acc
      | None -> acc)
    t.ip_to_pmac []
  |> List.sort (fun (a : Msg.host_binding) b -> Ipv4_addr.compare a.Msg.ip b.Msg.ip)
(* currently-servable ARP cache entries (current generation, unexpired at
   [now]), sorted by IP for deterministic comparison in tests and mc *)
let arp_cache_entries t =
  let now = Engine.now t.engine in
  Hashtbl.fold
    (fun ip (pmac, gen, expiry) acc ->
      if gen >= t.arp_gen_seen && now <= expiry then (ip, pmac, gen) :: acc else acc)
    t.arp_cache []
  |> List.sort (fun (a, _, _) (b, _, _) -> Ipv4_addr.compare a b)

let arp_gen_seen t = t.arp_gen_seen

(* live migration traps, sorted by stale PMAC for deterministic iteration *)
let trap_entries t =
  Hashtbl.fold (fun stale tr acc -> (stale, tr.t_ip, tr.t_new_pmac) :: acc) t.traps []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare (a : int) b)

(* multicast programming (group -> out ports), sorted by group *)
let mcast_programming t =
  Hashtbl.fold (fun g ports acc -> (g, ports) :: acc) t.mcast []
  |> List.sort (fun (a, _) (b, _) -> Ipv4_addr.compare a b)
let table t = t.table
let table_size t = FT.size t.table
let is_operational t = t.operational

let get_ldp t =
  match t.ldp with Some l -> l | None -> invalid_arg "Switch_agent: not started"

let get_dp t =
  match t.dp with Some d -> d | None -> invalid_arg "Switch_agent: not started"

let ldp = get_ldp
let dataplane = get_dp
let level t = match t.ldp with Some l -> Ldp.level l | None -> None

let counters t =
  { arps_proxied = t.c_arps_proxied;
    arps_answered = t.c_arps_answered;
    arp_cache_hits = t.c_arp_cache_hits;
    hosts_learned = t.c_hosts_learned;
    trap_hits = t.c_trap_hits;
    corrective_arps = t.c_corrective_arps;
    table_recomputes = t.c_table_recomputes;
    faults_reported = t.c_faults_reported;
    recoveries_reported = t.c_recoveries_reported }

(* ---------------- group-id scheme ---------------- *)

let gid_same e = 10_000 + e
let gid_pod p = 20_000 + p
let gid_ovr p e = 30_000 + (p * 256) + e

(* ---------------- table programming ---------------- *)

(* What an edge switch's up port leads to: an aggregation switch (named
   by its stripe label, from its LDMs) or — flat wiring — a core directly
   (named by its (row, member) label). *)
type upref = Via_agg of int | Via_core of int * int

(* local up-port map at an edge, from neighbor LDMs *)
let edge_up_ports t =
  List.filter_map
    (fun (port, (n : Ldp.neighbor)) ->
      match (n.Ldp.nbr_level, n.Ldp.nbr_pod, n.Ldp.nbr_position) with
      | Some Ldp_msg.Aggregation, _, Some stripe -> Some (Via_agg stripe, port)
      | Some Ldp_msg.Core, Some s, Some m -> Some (Via_core (s, m), port)
      | _ -> None)
    (Ldp.switch_ports (get_ldp t))

(* Can traffic leaving this edge through [up] still reach some core that
   also reaches [dst_pod]? Everything is decided from the fault matrix and
   the wiring spec alone: an agg labelled [stripe] fronts exactly the
   cores [C(stripe)] (Spec.stripe_cores), whatever its pod's type. *)
let up_reaches_pod t ~pod ~position ~dst_pod up =
  match up with
  | Via_agg stripe ->
    (not (Fault.Set.edge_agg_down t.faults ~pod ~edge_pos:position ~stripe))
    && List.exists
         (fun (s, m) ->
           (not (Fault.Set.agg_core_down t.faults ~pod ~stripe:s ~member:m))
           && not (Fault.Set.agg_core_down t.faults ~pod:dst_pod ~stripe:s ~member:m))
         (Spec.stripe_cores t.spec ~stripe)
  | Via_core (s, m) ->
    (not (Fault.Set.agg_core_down t.faults ~pod ~stripe:s ~member:m))
    && not (Fault.Set.agg_core_down t.faults ~pod:dst_pod ~stripe:s ~member:m)

(* Stronger per-edge test for override entries: the landing agg in the
   destination pod must still reach the destination edge. The landing
   agg's label for a core [(s, m)] is one of [stripes_covering (s, m)]
   (at most one per pod type), so checking the remote pod's Edge_agg
   faults against that short list is exact — no remote pod-type
   knowledge needed. *)
let up_reaches_edge t ~pod ~position ~dst_pod ~dst_edge up =
  let core_ok (s, m) =
    (not (Fault.Set.agg_core_down t.faults ~pod ~stripe:s ~member:m))
    && (not (Fault.Set.agg_core_down t.faults ~pod:dst_pod ~stripe:s ~member:m))
    && not
         (List.exists
            (fun stripe ->
              Fault.Set.edge_agg_down t.faults ~pod:dst_pod ~edge_pos:dst_edge ~stripe)
            (Spec.stripes_covering t.spec ~row:s ~member:m))
  in
  match up with
  | Via_agg stripe ->
    (not (Fault.Set.edge_agg_down t.faults ~pod ~edge_pos:position ~stripe))
    && List.exists core_ok (Spec.stripe_cores t.spec ~stripe)
  | Via_core (s, m) -> core_ok (s, m)

let install_host_entry t (h : host_entry) =
  FT.install t.table
    { FT.name = Printf.sprintf "host:%d" (Mac_addr.to_int (Pmac.to_mac h.h_pmac));
      priority = 90;
      mtch = FT.match_dst_prefix ~value:(Mac_addr.to_int (Pmac.to_mac h.h_pmac))
               ~mask:0xFFFFFFFFFFFF;
      actions = [ FT.Set_dst_mac h.h_amac; FT.Output h.h_port ] }

let install_trap_entry t stale_pmac_int =
  FT.install t.table
    { FT.name = Printf.sprintf "trap:%d" stale_pmac_int;
      priority = 90;
      mtch = FT.match_dst_prefix ~value:stale_pmac_int ~mask:0xFFFFFFFFFFFF;
      actions = [ FT.Punt ] }

let install_mcast_entry t group ports =
  (* the limited-broadcast "group" matches the Ethernet broadcast address
     and must shadow the default punt-and-drop entry *)
  let mac, priority =
    if Ipv4_addr.is_broadcast group then (Mac_addr.broadcast, 160)
    else (Mac_addr.multicast_of_group (Ipv4_addr.multicast_group group), 85)
  in
  FT.install t.table
    { FT.name = Printf.sprintf "mcast:%d" (Ipv4_addr.to_int group);
      priority;
      mtch = FT.match_dst_prefix ~value:(Mac_addr.to_int mac) ~mask:0xFFFFFFFFFFFF;
      actions = [ FT.Multi ports ] }

let recompute_edge_tables t ~pod ~position =
  let ups = edge_up_ports t in
  (* broadcast frames go to the agent (which drops non-ARP broadcast) *)
  FT.install t.table
    { FT.name = "bcast";
      priority = 150;
      mtch = FT.match_dst_prefix ~value:(Mac_addr.to_int Mac_addr.broadcast) ~mask:0xFFFFFFFFFFFF;
      actions = [ FT.Punt ] };
  (* same-pod destinations, one entry per remote edge position *)
  for e' = 0 to t.spec.Spec.edges_per_pod - 1 do
    if e' <> position then begin
      let members =
        List.filter_map
          (fun (up, port) ->
            match up with
            | Via_agg stripe
              when (not (Fault.Set.edge_agg_down t.faults ~pod ~edge_pos:position ~stripe))
                   && not (Fault.Set.edge_agg_down t.faults ~pod ~edge_pos:e' ~stripe) ->
              Some port
            | Via_agg _ | Via_core _ -> None)
          ups
      in
      (* an entry whose group has no live members could only drop: leave it
         uninstalled so the table honestly says "no route" *)
      if members <> [] then begin
        FT.set_group t.table (gid_same e') (Array.of_list members);
        FT.install t.table
          { FT.name = Printf.sprintf "samepod:%d" e';
            priority = 80;
            mtch =
              { FT.match_any with FT.dst_mac = Some (Pmac.position_prefix ~pod ~position:e') };
            actions = [ FT.Group (gid_same e') ] }
      end
    end
  done;
  (* remote pods: default per-pod ECMP groups *)
  for p' = 0 to t.spec.Spec.num_pods - 1 do
    if p' <> pod then begin
      let members =
        List.filter_map
          (fun (up, port) ->
            if up_reaches_pod t ~pod ~position ~dst_pod:p' up then Some port else None)
          ups
      in
      if members <> [] then begin
        FT.set_group t.table (gid_pod p') (Array.of_list members);
        FT.install t.table
          { FT.name = Printf.sprintf "pod:%d" p';
            priority = 70;
            mtch = { FT.match_any with FT.dst_mac = Some (Pmac.pod_prefix ~pod:p') };
            actions = [ FT.Group (gid_pod p') ] }
      end
    end
  done;
  (* overrides for remote edge switches that lost an uplink: avoid the
     stripe whose last hop to that edge is dead *)
  List.iter
    (fun fault ->
      match fault with
      | Fault.Edge_agg { pod = p'; edge_pos = e'; stripe = _ } when p' <> pod ->
        let members =
          List.filter_map
            (fun (up, port) ->
              if up_reaches_edge t ~pod ~position ~dst_pod:p' ~dst_edge:e' up then Some port
              else None)
            ups
        in
        if members <> [] then begin
          FT.set_group t.table (gid_ovr p' e') (Array.of_list members);
          FT.install t.table
            { FT.name = Printf.sprintf "ovr:%d:%d" p' e';
              priority = 75;
              mtch =
                { FT.match_any with
                  FT.dst_mac = Some (Pmac.position_prefix ~pod:p' ~position:e') };
              actions = [ FT.Group (gid_ovr p' e') ] }
        end
      | Fault.Edge_agg _ | Fault.Agg_core _ | Fault.Host_edge _ -> ())
    (Fault.Set.elements t.faults);
  (* local hosts and traps *)
  Hashtbl.iter (fun _ h -> install_host_entry t h) t.pmac_to_host;
  Hashtbl.iter (fun stale _ -> install_trap_entry t stale) t.traps

let recompute_agg_tables t ~pod ~stripe =
  let ports = Ldp.switch_ports (get_ldp t) in
  (* downward: one entry per live edge neighbor *)
  List.iter
    (fun (port, (n : Ldp.neighbor)) ->
      match (n.Ldp.nbr_level, n.Ldp.nbr_position) with
      | Some Ldp_msg.Edge, Some e' ->
        if not (Fault.Set.edge_agg_down t.faults ~pod ~edge_pos:e' ~stripe) then
          FT.install t.table
            { FT.name = Printf.sprintf "down:%d" e';
              priority = 80;
              mtch =
                { FT.match_any with FT.dst_mac = Some (Pmac.position_prefix ~pod ~position:e') };
              actions = [ FT.Output port ] }
      | _ -> ())
    ports;
  (* upward: per-destination-pod ECMP over this agg's core bundle. Cores
     advertise their own (row, member) label — under AB wiring a column
     agg's cores span all rows, so the faults are keyed by the core's
     label, never by this agg's stripe. *)
  let core_ports =
    List.filter_map
      (fun (port, (n : Ldp.neighbor)) ->
        match (n.Ldp.nbr_level, n.Ldp.nbr_pod, n.Ldp.nbr_position) with
        | Some Ldp_msg.Core, Some s, Some m -> Some ((s, m), port)
        | _ -> None)
      ports
  in
  for p' = 0 to t.spec.Spec.num_pods - 1 do
    if p' <> pod then begin
      let members =
        List.filter_map
          (fun ((s, m), port) ->
            if
              (not (Fault.Set.agg_core_down t.faults ~pod ~stripe:s ~member:m))
              && not (Fault.Set.agg_core_down t.faults ~pod:p' ~stripe:s ~member:m)
            then Some port
            else None)
          core_ports
      in
      if members <> [] then begin
        FT.set_group t.table (gid_pod p') (Array.of_list members);
        FT.install t.table
          { FT.name = Printf.sprintf "pod:%d" p';
            priority = 70;
            mtch = { FT.match_any with FT.dst_mac = Some (Pmac.pod_prefix ~pod:p') };
            actions = [ FT.Group (gid_pod p') ] }
      end
    end
  done

let recompute_core_tables t ~stripe ~member =
  List.iter
    (fun (port, (n : Ldp.neighbor)) ->
      let down_to p =
        if not (Fault.Set.agg_core_down t.faults ~pod:p ~stripe ~member) then
          FT.install t.table
            { FT.name = Printf.sprintf "pod:%d" p;
              priority = 70;
              mtch = { FT.match_any with FT.dst_mac = Some (Pmac.pod_prefix ~pod:p) };
              actions = [ FT.Output port ] }
      in
      match (n.Ldp.nbr_level, n.Ldp.nbr_pod) with
      | Some Ldp_msg.Aggregation, Some p -> down_to p
      (* flat wiring: spines face leaves (edge switches) directly *)
      | Some Ldp_msg.Edge, Some p -> down_to p
      | _ -> ())
    (Ldp.switch_ports (get_ldp t))

let recompute_tables t =
  match t.coords with
  | None -> ()
  | Some c ->
    t.c_table_recomputes <- t.c_table_recomputes + 1;
    FT.clear t.table;
    (match c with
     | Coords.Edge { pod; position } -> recompute_edge_tables t ~pod ~position
     | Coords.Agg { pod; stripe } -> recompute_agg_tables t ~pod ~stripe
     | Coords.Core { stripe; member } -> recompute_core_tables t ~stripe ~member);
    Hashtbl.iter (fun group ports -> install_mcast_entry t group ports) t.mcast;
    t.operational <- true

(* ---------------- reporting & position proposals ---------------- *)

let send_report t =
  let l = get_ldp t in
  let neighbors =
    List.map
      (fun (port, (n : Ldp.neighbor)) -> (port, n.Ldp.switch_id, n.Ldp.nbr_level))
      (Ldp.switch_ports l)
  in
  Ctrl.send_to_fm t.ctrl ~from:t.sw_id
    (Msg.Neighbor_report
       { switch_id = t.sw_id;
         level = Ldp.level l;
         neighbors;
         host_ports = Ldp.host_ports l })

let schedule_report t =
  if not t.report_scheduled then begin
    t.report_scheduled <- true;
    ignore
      (Engine.schedule t.engine ~delay:(Time.ms 1) (fun () ->
           t.report_scheduled <- false;
           send_report t))
  end

(* an edge proposes a position only once it hears the tier above — aggs,
   or spines (cores) under flat wiring *)
let has_up_neighbor t =
  List.exists
    (fun (_, (n : Ldp.neighbor)) ->
      match n.Ldp.nbr_level with
      | Some Ldp_msg.Aggregation -> true
      | Some Ldp_msg.Core -> t.spec.Spec.wiring = Spec.Flat
      | _ -> false)
    (Ldp.switch_ports (get_ldp t))

let maybe_propose_position t =
  if
    t.coords = None
    && level t = Some Ldp_msg.Edge
    && (not t.proposal_outstanding)
    && has_up_neighbor t
  then begin
    t.proposal_outstanding <- true;
    (* a report always precedes the proposal so the fabric manager can
       place us in a pod component first *)
    send_report t;
    Ctrl.send_to_fm t.ctrl ~from:t.sw_id
      (Msg.Propose_position { switch_id = t.sw_id; position = t.position_candidate })
  end

(* ---------------- edge: host learning, ARP, IGMP ---------------- *)

let announce_host t (h : host_entry) ip =
  match t.coords with
  | Some (Coords.Edge _) ->
    Ctrl.send_to_fm t.ctrl ~from:t.sw_id
      (Msg.Host_announce { Msg.ip; amac = h.h_amac; pmac = h.h_pmac; edge_switch = t.sw_id })
  | _ -> ()

let learn_host t ~port ~amac ~ip =
  match t.coords with
  | Some (Coords.Edge { pod; position }) ->
    let entry =
      match Hashtbl.find_opt t.amac_to_host amac with
      | Some h -> h
      | None ->
        let vmid = match Hashtbl.find_opt t.next_vmid port with Some v -> v | None -> 1 in
        Hashtbl.replace t.next_vmid port (vmid + 1);
        let pmac = Pmac.make ~pod ~position ~port ~vmid in
        let h = { h_amac = amac; h_port = port; h_pmac = pmac } in
        Hashtbl.replace t.amac_to_host amac h;
        Hashtbl.replace t.pmac_to_host (Mac_addr.to_int (Pmac.to_mac pmac)) h;
        t.c_hosts_learned <- t.c_hosts_learned + 1;
        install_host_entry t h;
        h
    in
    (match ip with
     | Some ip ->
       let known = Hashtbl.find_opt t.ip_to_pmac ip in
       if known <> Some entry.h_pmac then begin
         Hashtbl.replace t.ip_to_pmac ip entry.h_pmac;
         announce_host t entry ip
       end
     | None -> ());
    Some entry
  | _ ->
    (* no coordinates yet: remember and learn when they arrive *)
    t.pending_learn <- (port, amac, ip) :: t.pending_learn;
    None

let flush_pending_learn t =
  let pending = List.rev t.pending_learn in
  t.pending_learn <- [];
  List.iter (fun (port, amac, ip) -> ignore (learn_host t ~port ~amac ~ip)) pending

let is_host_port t port = Ldp.port_state (get_ldp t) port = Ldp.Host_port

let handle_arp t ~in_port (frame : Eth.t) (a : Arp.t) =
  match t.coords with
  | Some (Coords.Edge _) when is_host_port t in_port ->
    let learned = learn_host t ~port:in_port ~amac:a.Arp.sender_mac ~ip:(Some a.Arp.sender_ip) in
    if Arp.is_gratuitous a then () (* announcement: consumed *)
    else begin
      match (a.Arp.op, learned) with
      | Arp.Request, Some h ->
        let query () =
          t.c_arps_proxied <- t.c_arps_proxied + 1;
          Ctrl.send_to_fm t.ctrl ~from:t.sw_id
            (Msg.Arp_query
               { switch_id = t.sw_id;
                 requester_ip = a.Arp.sender_ip;
                 requester_pmac = h.h_pmac;
                 requester_port = in_port;
                 target_ip = a.Arp.target_ip })
        in
        (match Hashtbl.find_opt t.arp_cache a.Arp.target_ip with
         | Some (pmac, gen, expiry)
           when gen >= t.arp_gen_seen && Engine.now t.engine <= expiry ->
           (* serve locally: the cached answer is from the current ARP
              generation, so no migration can have invalidated it *)
           t.c_arp_cache_hits <- t.c_arp_cache_hits + 1;
           t.c_arps_answered <- t.c_arps_answered + 1;
           let reply =
             Arp.reply ~sender_mac:(Pmac.to_mac pmac) ~sender_ip:a.Arp.target_ip
               ~target_mac:h.h_amac ~target_ip:a.Arp.sender_ip
           in
           let frame = Eth.make ~dst:h.h_amac ~src:(Pmac.to_mac pmac) (Eth.Arp reply) in
           Switchfab.Dataplane.forward_out (get_dp t) ~out_port:in_port frame
         | Some _ ->
           (* stale generation or expired: force re-resolution *)
           Hashtbl.remove t.arp_cache a.Arp.target_ip;
           query ()
         | None -> query ())
      | Arp.Request, None -> () (* coordinates pending; host will retry *)
      | Arp.Reply, _ -> () (* reply to a fallback flood: learning above is all we need *)
    end
  | None ->
    (* no coordinates yet: remember the sender so nothing is lost *)
    ignore (learn_host t ~port:in_port ~amac:a.Arp.sender_mac ~ip:(Some a.Arp.sender_ip))
  | Some (Coords.Edge _) | Some (Coords.Agg _) | Some (Coords.Core _) ->
    (* an ARP riding the fabric (e.g. a corrective gratuitous ARP headed
       for a stale sender): forward it like any unicast frame *)
    Switchfab.Dataplane.inject (get_dp t) ~in_port frame

let handle_igmp t ~in_port (m : Igmp.t) =
  match t.coords with
  | Some (Coords.Edge _) when is_host_port t in_port ->
    (match m.Igmp.op with
     | Igmp.Join ->
       Ctrl.send_to_fm t.ctrl ~from:t.sw_id
         (Msg.Mcast_join { switch_id = t.sw_id; group = m.Igmp.group; port = in_port })
     | Igmp.Leave ->
       Ctrl.send_to_fm t.ctrl ~from:t.sw_id
         (Msg.Mcast_leave { switch_id = t.sw_id; group = m.Igmp.group; port = in_port }))
  | _ -> ()

(* corrective gratuitous ARP to the sender of a trapped frame *)
let send_corrective_arp t ~in_port ~to_mac (trap : trap_entry) =
  t.c_corrective_arps <- t.c_corrective_arps + 1;
  let reply =
    Arp.reply
      ~sender_mac:(Pmac.to_mac trap.t_new_pmac)
      ~sender_ip:trap.t_ip ~target_mac:to_mac
      ~target_ip:Ipv4_addr.(of_int 0)
  in
  let frame = Eth.make ~dst:to_mac ~src:(Pmac.to_mac trap.t_new_pmac) (Eth.Arp reply) in
  (* route it like any unicast frame: through our own tables *)
  Switchfab.Dataplane.inject (get_dp t) ~in_port frame

let on_punt t ~in_port (frame : Eth.t) =
  let dst = Mac_addr.to_int frame.Eth.dst in
  match Hashtbl.find_opt t.traps dst with
  | Some trap ->
    t.c_trap_hits <- t.c_trap_hits + 1;
    send_corrective_arp t ~in_port ~to_mac:frame.Eth.src trap;
    if t.config.Config.forward_stale then begin
      let fixed = { frame with Eth.dst = Pmac.to_mac trap.t_new_pmac } in
      Switchfab.Dataplane.inject (get_dp t) ~in_port fixed
    end
  | None -> () (* broadcast or other punted frame: dropped *)

(* ---------------- fabric-manager messages ---------------- *)

let craft_arp_reply t ~target_ip ~target_pmac ~requester_ip ~requester_port =
  match Hashtbl.find_opt t.ip_to_pmac requester_ip with
  | None -> () (* requester vanished (migrated?) *)
  | Some req_pmac ->
    (match Hashtbl.find_opt t.pmac_to_host (Mac_addr.to_int (Pmac.to_mac req_pmac)) with
     | None -> ()
     | Some h ->
       t.c_arps_answered <- t.c_arps_answered + 1;
       let reply =
         Arp.reply ~sender_mac:(Pmac.to_mac target_pmac) ~sender_ip:target_ip
           ~target_mac:h.h_amac ~target_ip:requester_ip
       in
       let frame =
         Eth.make ~dst:h.h_amac ~src:(Pmac.to_mac target_pmac) (Eth.Arp reply)
       in
       Switchfab.Dataplane.forward_out (get_dp t) ~out_port:requester_port frame)

let emit_arp_flood t ~requester_ip ~requester_pmac ~target_ip =
  match t.coords with
  | Some (Coords.Edge _) ->
    let request =
      Arp.request ~sender_mac:(Pmac.to_mac requester_pmac) ~sender_ip:requester_ip ~target_ip
    in
    let frame =
      Eth.make ~dst:Mac_addr.broadcast ~src:(Pmac.to_mac requester_pmac) (Eth.Arp request)
    in
    List.iter
      (fun port -> Switchfab.Dataplane.forward_out (get_dp t) ~out_port:port frame)
      (Ldp.host_ports (get_ldp t))
  | _ -> ()

let on_invalidate t ~ip ~old_pmac ~new_pmac =
  Hashtbl.remove t.arp_cache ip;
  let old_int = Mac_addr.to_int (Pmac.to_mac old_pmac) in
  (match Hashtbl.find_opt t.pmac_to_host old_int with
   | Some h ->
     Hashtbl.remove t.amac_to_host h.h_amac;
     Hashtbl.remove t.pmac_to_host old_int;
     FT.remove t.table (Printf.sprintf "host:%d" old_int)
   | None -> ());
  (match Hashtbl.find_opt t.ip_to_pmac ip with
   | Some p when Pmac.equal p old_pmac -> Hashtbl.remove t.ip_to_pmac ip
   | Some _ | None -> ());
  Hashtbl.replace t.traps old_int { t_ip = ip; t_new_pmac = new_pmac };
  install_trap_entry t old_int;
  (* traps outlive the longest possible stale ARP cache entry, then die *)
  ignore
    (Engine.schedule t.engine ~delay:(2 * t.config.Config.arp_cache_timeout) (fun () ->
         Hashtbl.remove t.traps old_int;
         FT.remove t.table (Printf.sprintf "trap:%d" old_int)))

(* Replay of a host binding from the fabric manager after a reboot:
   rebuild the AMAC/PMAC/IP tables and the per-port vmid counter without
   waiting for host traffic, so PMACs survive the reboot unchanged. *)
let restore_host_binding t (b : Msg.host_binding) =
  if b.Msg.edge_switch = t.sw_id then begin
    let port = b.Msg.pmac.Pmac.port in
    let vmid = b.Msg.pmac.Pmac.vmid in
    let h = { h_amac = b.Msg.amac; h_port = port; h_pmac = b.Msg.pmac } in
    Hashtbl.replace t.amac_to_host b.Msg.amac h;
    Hashtbl.replace t.pmac_to_host (Mac_addr.to_int (Pmac.to_mac b.Msg.pmac)) h;
    Hashtbl.replace t.ip_to_pmac b.Msg.ip b.Msg.pmac;
    (match Hashtbl.find_opt t.next_vmid port with
     | Some v when v > vmid -> ()
     | Some _ | None -> Hashtbl.replace t.next_vmid port (vmid + 1));
    Ldp.on_host_frame (get_ldp t) ~port;
    install_host_entry t h
  end

let on_ctrl_msg t (msg : Msg.to_switch) =
  match msg with
  | Msg.Assign_coords c ->
    t.proposal_outstanding <- false;
    t.coords <- Some c;
    jemit t (Journal.Coords_assigned { switch = t.sw_id });
    Ldp.set_coords (get_ldp t) c;
    flush_pending_learn t;
    recompute_tables t
  | Msg.Position_denied { position = _ } ->
    t.proposal_outstanding <- false;
    t.position_candidate <- (t.position_candidate + 1) mod t.spec.Spec.edges_per_pod;
    maybe_propose_position t
  | Msg.Arp_answer { target_ip; target_pmac; requester_ip; requester_port; gen } ->
    if gen > t.arp_gen_seen then t.arp_gen_seen <- gen;
    (match target_pmac with
     | Some pmac ->
       (* cache the binding stamped with the generation it was resolved
          at; servable until expiry or a newer generation announcement *)
       Hashtbl.replace t.arp_cache target_ip
         (pmac, gen, Engine.now t.engine + t.config.Config.arp_cache_timeout);
       craft_arp_reply t ~target_ip ~target_pmac:pmac ~requester_ip ~requester_port
     | None -> ())
  | Msg.Arp_flood { requester_ip; requester_pmac; target_ip } ->
    emit_arp_flood t ~requester_ip ~requester_pmac ~target_ip
  | Msg.Fault_update { faults } ->
    Fault.Set.clear t.faults;
    List.iter (Fault.Set.add t.faults) faults;
    recompute_tables t
  | Msg.Invalidate_pmac { ip; old_pmac; new_pmac } -> on_invalidate t ~ip ~old_pmac ~new_pmac
  | Msg.Resync_request ->
    (match t.coords with
     | Some c ->
       Ctrl.send_to_fm t.ctrl ~from:t.sw_id
         (Msg.Reclaim_coords { switch_id = t.sw_id; coords = c });
       send_report t;
       (* edge switches also re-announce every local host binding *)
       Hashtbl.iter
         (fun ip pmac ->
           match Hashtbl.find_opt t.pmac_to_host (Mac_addr.to_int (Pmac.to_mac pmac)) with
           | Some h -> announce_host t h ip
           | None -> ())
         t.ip_to_pmac;
       (* ports our failure detector already declared dead produce no
          further timeouts the new instance could observe, so replay them.
          Delayed a beat so both endpoints' Reclaim_coords land first —
          fault translation needs coordinates for both ends. *)
       ignore
         (Engine.schedule t.engine ~delay:(Time.ms 1) (fun () ->
              List.iter
                (fun (port, (n : Ldp.neighbor)) ->
                  Ctrl.send_to_fm t.ctrl ~from:t.sw_id
                    (Msg.Fault_notice { switch_id = t.sw_id; port; neighbor = n.Ldp.switch_id }))
                (Ldp.dead_ports (get_ldp t))))
     | None ->
       (* any proposal in flight died with the old instance *)
       t.proposal_outstanding <- false;
       schedule_report t;
       maybe_propose_position t)
  | Msg.Mcast_program { group; out_ports } ->
    if out_ports = [] then begin
      Hashtbl.remove t.mcast group;
      FT.remove t.table (Printf.sprintf "mcast:%d" (Ipv4_addr.to_int group))
    end
    else begin
      Hashtbl.replace t.mcast group out_ports;
      install_mcast_entry t group out_ports
    end
  | Msg.Host_restore { bindings } -> List.iter (restore_host_binding t) bindings
  | Msg.Arp_gen { gen } ->
    (* a migration bumped the fabric-wide generation: entries stamped with
       an older one stop being served (removed lazily on next request) *)
    if gen > t.arp_gen_seen then t.arp_gen_seen <- gen

(* ---------------- LDP events ---------------- *)

let on_ldp_event t (ev : Ldp.event) =
  match ev with
  | Ldp.Level_inferred _ ->
    schedule_report t;
    maybe_propose_position t
  | Ldp.View_changed ->
    schedule_report t;
    maybe_propose_position t;
    if t.operational then recompute_tables t
  | Ldp.Port_dead { port; neighbor_id } ->
    t.c_faults_reported <- t.c_faults_reported + 1;
    Ctrl.send_to_fm t.ctrl ~from:t.sw_id
      (Msg.Fault_notice { switch_id = t.sw_id; port; neighbor = neighbor_id });
    (* react locally right away; the fabric manager's update follows *)
    recompute_tables t
  | Ldp.Port_recovered { port; neighbor_id } ->
    t.c_recoveries_reported <- t.c_recoveries_reported + 1;
    Ctrl.send_to_fm t.ctrl ~from:t.sw_id
      (Msg.Recovery_notice { switch_id = t.sw_id; port; neighbor = neighbor_id });
    recompute_tables t

(* ---------------- frame handler ---------------- *)

let handle_frame t in_port (frame : Eth.t) =
  match frame.Eth.payload with
  | Eth.Ldp msg -> Ldp.on_ldm (get_ldp t) ~port:in_port msg
  | Eth.Arp a ->
    Ldp.on_host_frame (get_ldp t) ~port:in_port;
    handle_arp t ~in_port frame a
  | Eth.Ipv4 { Ipv4_pkt.payload = Ipv4_pkt.Igmp m; _ } ->
    Ldp.on_host_frame (get_ldp t) ~port:in_port;
    handle_igmp t ~in_port m
  | Eth.Ipv4 p ->
    Ldp.on_host_frame (get_ldp t) ~port:in_port;
    let frame =
      (* ingress rewrite: frames entering the fabric from a host carry the
         host's PMAC as source *)
      if is_host_port t in_port then begin
        ignore (learn_host t ~port:in_port ~amac:frame.Eth.src ~ip:(Some p.Ipv4_pkt.src));
        match Hashtbl.find_opt t.amac_to_host frame.Eth.src with
        | Some h ->
          Obs.Counter.incr t.m_rewrites;
          { frame with Eth.src = Pmac.to_mac h.h_pmac }
        | None -> frame
      end
      else frame
    in
    Switchfab.Dataplane.inject (get_dp t) ~in_port frame
  | Eth.Bpdu _ -> () (* PortLand switches ignore spanning tree *)
  | Eth.Raw _ ->
    Ldp.on_host_frame (get_ldp t) ~port:in_port;
    Switchfab.Dataplane.inject (get_dp t) ~in_port frame

(* ---------------- lifecycle ---------------- *)

let create engine config ctrl net ~spec ~device ~seed ?(obs = Obs.null) () =
  let dev = Switchfab.Net.device net device in
  let prng = Prng.create (seed lxor (device * 7919)) in
  let t =
    { engine; config; ctrl; spec; sw_id = device;
      m_rewrites =
        Obs.counter obs ~subsystem:"switch" ~name:"ingress_rewrites"
          ~labels:[ Obs.Label.sw device ] ();
      table = FT.create ();
      dp = None; ldp = None; prng;
      coords = None; operational = false;
      faults = Fault.Set.create ();
      amac_to_host = Hashtbl.create 16;
      pmac_to_host = Hashtbl.create 16;
      ip_to_pmac = Hashtbl.create 16;
      next_vmid = Hashtbl.create 8;
      traps = Hashtbl.create 4;
      arp_cache = Hashtbl.create 16;
      arp_gen_seen = 0;
      mcast = Hashtbl.create 4;
      pending_learn = [];
      position_candidate = 0;
      proposal_outstanding = false;
      report_scheduled = false;
      c_arps_proxied = 0; c_arps_answered = 0; c_arp_cache_hits = 0;
      c_hosts_learned = 0; c_trap_hits = 0;
      c_corrective_arps = 0; c_table_recomputes = 0; c_faults_reported = 0;
      c_recoveries_reported = 0; journal = None }
  in
  t.position_candidate <- Prng.int t.prng spec.Spec.edges_per_pod;
  FT.set_hash_salt t.table (device * 0x85EBCA6B);
  let dp =
    Switchfab.Dataplane.attach net ~device ~table:t.table ~miss:Switchfab.Dataplane.Miss_drop
      ~on_punt:(fun ~in_port frame -> on_punt t ~in_port frame)
      ~obs ()
  in
  t.dp <- Some dp;
  let send ~port msg =
    Switchfab.Net.transmit net ~node:device ~port
      (Eth.make ~dst:Mac_addr.broadcast ~src:Mac_addr.zero (Eth.Ldp msg))
  in
  let ldp_inst =
    Ldp.create engine config ~switch_id:device ~nports:(Switchfab.Net.nports dev)
      ~wiring:spec.Spec.wiring ~send
      ~notify:(fun ev -> on_ldp_event t ev)
      ~obs ()
  in
  t.ldp <- Some ldp_inst;
  Obs.add_probe obs ~name:(Printf.sprintf "sw:%d" device) (fun () ->
      let labels = [ Obs.Label.sw device ] in
      let s name v = Obs.sample ~subsystem:"switch" ~name ~labels (Obs.Count v) in
      [ s "arps_proxied" t.c_arps_proxied;
        s "arps_answered" t.c_arps_answered;
        s "arp_cache_hits" t.c_arp_cache_hits;
        s "hosts_learned" t.c_hosts_learned;
        s "trap_hits" t.c_trap_hits;
        s "corrective_arps" t.c_corrective_arps;
        s "table_recomputes" t.c_table_recomputes;
        s "faults_reported" t.c_faults_reported;
        s "recoveries_reported" t.c_recoveries_reported ]);
  (* the agent's own handler wraps the dataplane (multi-table semantics) *)
  Switchfab.Net.set_handler dev (fun in_port frame -> handle_frame t in_port frame);
  Ctrl.register_switch ctrl device (fun msg -> on_ctrl_msg t msg);
  t

let start t = Ldp.start (get_ldp t)

let stop t =
  Ldp.stop (get_ldp t);
  Ctrl.unregister_switch t.ctrl t.sw_id

(* Cold reboot: RAM state — flow table, host tables, traps, fault matrix,
   pending work, granted coordinates — is lost; the chassis and its cabling
   survive. Discovery restarts from scratch, and a Coords_request asks the
   fabric manager to short-circuit re-labelling by replaying what its soft
   state still holds for this switch. *)
let restart t =
  FT.clear t.table;
  Hashtbl.reset t.amac_to_host;
  Hashtbl.reset t.pmac_to_host;
  Hashtbl.reset t.ip_to_pmac;
  Hashtbl.reset t.next_vmid;
  Hashtbl.reset t.traps;
  Hashtbl.reset t.arp_cache;
  t.arp_gen_seen <- 0;
  Hashtbl.reset t.mcast;
  Fault.Set.clear t.faults;
  t.pending_learn <- [];
  t.coords <- None;
  t.operational <- false;
  t.proposal_outstanding <- false;
  Ldp.reset (get_ldp t);
  Ctrl.register_switch t.ctrl t.sw_id (fun msg -> on_ctrl_msg t msg);
  Ldp.start (get_ldp t);
  Ctrl.send_to_fm t.ctrl ~from:t.sw_id (Msg.Coords_request { switch_id = t.sw_id })
