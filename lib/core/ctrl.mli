(** The out-of-band control network connecting every switch to the fabric
    manager.

    Modelled as point-to-point message delivery with a fixed one-way
    latency (see {!Config.t.ctrl_latency}), matching the paper's
    assumption of a separate control network. Delivery preserves per-pair
    FIFO order (the engine is FIFO for equal timestamps and latency is
    constant). Message counters feed the fabric-manager-load experiment.

    Every delivery is scheduled as a {e reorderable action} (tagged with
    a {!Msg.describe_to_fm} / {!Msg.describe_to_switch} descriptor via
    {!Eventsim.Engine.schedule_tagged}) whenever an engine interceptor is
    installed, letting the model checker ([lib/mc]) perturb delivery
    order systematically; without an interceptor the tagging — including
    descriptor construction — costs nothing. *)

type t

val create : Eventsim.Engine.t -> latency:Eventsim.Time.t -> t

type route = {
  rt_fm_engine : Eventsim.Engine.t;  (** shard 0: fabric manager + cores *)
  rt_engine_of : int -> Eventsim.Engine.t;  (** switch id → owning engine *)
  rt_shard_of : int -> int;                 (** switch id → shard index *)
  rt_post :
    src:int -> dst:int -> time:Eventsim.Time.t -> (unit -> unit) -> unit;
}
(** Shard routing for control messages under {!Eventsim.Sharded}
    execution: a delivery thunk runs on the destination's shard (the FM
    lives on shard 0). The control latency must be at least the
    scheduler's lookahead. *)

val set_route : t -> route option -> unit
(** With [None] (the default) every delivery is scheduled on the engine
    passed to {!create} — the classic mode that the model checker's
    interceptor relies on; deliveries are only tagged in classic mode. *)

val register_fm : t -> (from:int -> Msg.to_fm -> unit) -> unit
(** Install the fabric manager's receive callback. *)

val register_switch : t -> int -> (Msg.to_switch -> unit) -> unit
(** Install a switch agent's receive callback, keyed by switch id. *)

val unregister_switch : t -> int -> unit
(** Remove a switch's callback (death or the start of a cold reboot),
    then fire the unregister hook so the fabric manager can flush soft
    state keyed on the switch — e.g. pending ARP entries that would
    otherwise be answered to a dead switch. *)

val set_unregister_hook : t -> (int -> unit) -> unit
(** Called synchronously with the switch id on every
    {!unregister_switch}, after the handler is removed. One hook; a
    re-registration (fabric-manager restart) replaces it. *)

val has_switch : t -> int -> bool
(** Whether a switch is currently registered (alive and booted). *)

val send_to_fm : t -> from:int -> Msg.to_fm -> unit
(** Delivered to the fabric manager after one latency. Dropped (counted)
    when no fabric manager is registered. *)

val send_to_switch : t -> int -> Msg.to_switch -> unit
(** Delivered to that switch after one latency; dropped (counted) when the
    switch is not registered. *)

val broadcast_to_switches : t -> Msg.to_switch -> unit
(** One copy to every registered switch. *)

val to_fm_count : t -> int
(** Messages delivered to the fabric manager so far. *)

val to_switch_count : t -> int

val to_fm_bytes : t -> int
(** Wire bytes of delivered messages, per the {!Msg_codec} encoding —
    what the control network actually carries. *)

val to_switch_bytes : t -> int
val dropped_count : t -> int
