(** Top-level facade: a complete PortLand deployment in one value.

    Builds the runtime network from a multi-rooted-tree spec, attaches a
    {!Switch_agent} to every switch, a {!Host_agent} to every host, the
    {!Fabric_manager}, and the control network — then lets experiments
    drive time, inject failures, migrate VMs and inspect state.

    Hosts are addressed [10.pod.edge.(slot+2)] and carry
    locally-administered AMACs derived from their device id. *)

type t

module Proto = Config
(** Alias for the protocol-timer configuration ({!Config}); the nested
    {!module-Config} below is the fabric {e creation} configuration. *)

(** Everything {!create} needs, in one record — topology spec, protocol
    timers, seed, link parameters, spare slots, boot jitter, the
    observability capability and the execution mode — replacing the
    optional-argument sprawl of the former [create]/[create_fattree]/
    [create_family] entry points. Build one with {!Config.make} (or the
    {!Config.fattree} / {!Config.of_family} shorthands) and override
    fields with record update syntax:
    [{ Config.fattree ~k:16 () with Config.domains = 4; obs = Some Obs.null }]. *)
module Config : sig
  type t = {
    spec : Topology.Multirooted.spec;  (** the topology to build *)
    proto : Proto.t;        (** protocol timers (LDM period, ARP timeout, ...) *)
    seed : int;             (** master seed for boot jitter and agent PRNGs *)
    link_params : Switchfab.Net.link_params option;
        (** [None] = {!Switchfab.Net.default_link_params} *)
    spare_slots : (int * int * int) list;
        (** [(pod, edge, slot)] host positions left unplugged at boot —
            free ports that VM migration can land on *)
    boot_jitter : Eventsim.Time.t;
        (** delays every switch agent and host by an independent,
            seed-deterministic offset in [\[0, boot_jitter)] — the
            plug-and-play scenario where racks power on at different
            times. Discovery must (and does) converge regardless of
            arrival order. 0 = everyone boots at t=0. *)
    obs : Obs.t option;
        (** the single observability capability threaded into the fabric
            manager, every switch agent (and through it LDP and the
            dataplane) and every host agent. [None] = a fresh live
            {!Obs.create}[ ()]; pass [Some Obs.null] to disable
            instrumentation entirely, or share one registry between
            fabrics to aggregate. *)
    domains : int;
        (** execution mode. [0] (the default): the classic single
            {!Eventsim.Engine} — required by the model checker's
            interceptor and by the update journal. [n >= 1]: sharded
            execution on an {!Eventsim.Sharded} scheduler with one
            logical shard per pod plus a core/FM shard, run on [n] OS
            domains ([1] = the same sharded semantics, inline on the
            calling domain). All sharded runs produce identical results
            regardless of [n]. *)
    fm_shards : int;
        (** pod-shard count for the fabric manager's soft state (see
            {!Fabric_manager}): pod [p]'s bindings, fault-matrix rows
            and pending ARPs live on shard [p mod fm_shards], multicast
            membership on a core shard. Purely an internal layout of FM
            state — every observable behaviour (ARP answers, chaos
            campaign digests, model-checker verdicts) is identical for
            every [fm_shards >= 1]. Default 1 (monolithic). *)
  }

  val make :
    ?proto:Proto.t -> ?seed:int -> ?link_params:Switchfab.Net.link_params ->
    ?spare_slots:(int * int * int) list -> ?boot_jitter:Eventsim.Time.t ->
    ?obs:Obs.t -> ?domains:int -> ?fm_shards:int -> Topology.Multirooted.spec -> t
  (** Defaults: [Proto.default], seed 42, default link params, no spares,
      no jitter, fresh observability, [domains = 0], [fm_shards = 1]. *)

  val default : t
  (** [make (Topology.Fattree.spec ~k:4)]. *)

  val fattree :
    ?proto:Proto.t -> ?seed:int -> ?link_params:Switchfab.Net.link_params ->
    ?spare_slots:(int * int * int) list -> ?boot_jitter:Eventsim.Time.t ->
    ?obs:Obs.t -> ?domains:int -> ?fm_shards:int -> k:int -> unit -> t

  val of_family :
    ?proto:Proto.t -> ?seed:int -> ?link_params:Switchfab.Net.link_params ->
    ?spare_slots:(int * int * int) list -> ?boot_jitter:Eventsim.Time.t ->
    ?obs:Obs.t -> ?domains:int -> ?fm_shards:int -> Topology.Topo.Family.t -> t
  (** One entry point for every member of the topology family (plain fat
      tree, AB fat tree, two-layer leaf–spine). *)
end

val create : Config.t -> t
(** Build a complete deployment. With [Config.domains > 0] the fabric
    runs on a {!Eventsim.Sharded} scheduler (shard 0 = core switches +
    fabric manager + control network, shard p+1 = pod p); the protocol's
    control latency and the link propagation delay must both be positive
    (their minimum is the scheduler's lookahead) and the update journal
    is unavailable. Raises [Invalid_argument] on an invalid spec or an
    unsatisfiable sharding. *)

(** {1 Accessors} *)

val engine : t -> Eventsim.Engine.t
(** Shard 0's engine — the only engine when [Config.domains = 0]. Under
    sharded execution, schedule onto it directly only for work logically
    owned by the core/FM shard; drive time through {!run_until}, never
    through [Engine.run] on this engine. *)

val sharded : t -> Eventsim.Sharded.t option
(** The sharded scheduler, when [Config.domains > 0]. *)

val domains : t -> int
(** Domains the fabric executes on; 0 = classic single-engine mode. *)

val obs : t -> Obs.t
(** The deployment's observability registry; snapshot/export with
    {!Obs.snapshot}, {!Obs.to_json}, {!Obs.write_json}. *)

val trace : t -> Eventsim.Trace.t
(** The deployment's event trace ([Obs.trace (obs t)]): coordinate
    assignments, fault-matrix changes, migrations, multicast re-rooting,
    FM restarts. A ring buffer of the most recent 8192 entries unless a
    custom registry was passed at creation; dump with
    [Eventsim.Trace.dump]. *)

val net : t -> Switchfab.Net.t
val ctrl : t -> Ctrl.t
val fabric_manager : t -> Fabric_manager.t

val config : t -> Config.t
(** The full creation configuration. *)

val proto_config : t -> Proto.t
(** Shorthand for [(config t).Config.proto]. *)

val spec : t -> Topology.Multirooted.spec
val tree : t -> Topology.Multirooted.t

val agent : t -> int -> Switch_agent.t
(** Switch agent by device id; raises [Invalid_argument] for non-switch
    devices. *)

val agents : t -> Switch_agent.t list

val host : t -> pod:int -> edge:int -> slot:int -> Host_agent.t
(** Raises [Invalid_argument] for a spare slot. *)

val host_by_ip : t -> Netcore.Ipv4_addr.t -> Host_agent.t option
val hosts : t -> Host_agent.t list
val host_ip : pod:int -> edge:int -> slot:int -> Netcore.Ipv4_addr.t
(** The static address scheme (pure function of position at boot —
    migration moves the IP with the VM). *)

(** {1 Time} *)

val now : t -> Eventsim.Time.t
val run_until : t -> Eventsim.Time.t -> unit
val run_for : t -> Eventsim.Time.t -> unit

val await_convergence : ?timeout:Eventsim.Time.t -> t -> bool
(** Advance time until every switch agent is operational and every plugged
    host's binding is registered at the fabric manager (or [timeout],
    default 5 s, passes). *)

(** {1 Failures} *)

val fail_link_between : t -> a:int -> b:int -> bool
(** Fail the link directly connecting two device ids; [false] when no such
    link exists. *)

val recover_link_between : t -> a:int -> b:int -> bool
val fail_switch : t -> int -> unit
(** Stop the agent and silence the device (all its links appear dead to
    neighbours). *)

val recover_switch : t -> int -> unit
(** Cold reboot after {!fail_switch}: un-silence the device and restart
    its agent with all RAM state wiped ({!Switch_agent.restart}). The
    agent re-runs LDP discovery and asks the fabric manager to re-grant
    its coordinates and replay fault matrix, host bindings and multicast
    programming — the switch-recovery half of the paper's fail-over story.
    Raises [Invalid_argument] for non-switch devices. *)

val set_link_loss_between : t -> a:int -> b:int -> float -> bool
(** Override the loss probability of the link directly connecting two
    device ids (both directions); [false] when no such link exists. Used
    by failure campaigns to model degrading (not dead) links. *)

val clear_link_loss_between : t -> a:int -> b:int -> bool
(** Drop the loss override, restoring the construction-time rate. *)

val restart_fabric_manager : t -> unit
(** Simulate a fabric-manager crash + cold restart: a fresh instance with
    empty state takes over the control network and broadcasts a resync
    request. Switches re-register their coordinates, re-report their
    neighbor views and re-announce their hosts, reconstructing everything
    — the paper's "soft state" claim (§3.3). {!fabric_manager} returns
    the new instance afterwards. *)

val failover_fm_shard : t -> pod:int -> bool
(** Simulate the failure and recovery of the FM shard owning [pod]: its
    binding table is wiped, its pod-scoped pending ARPs are dropped
    (counted in [Fabric_manager.counters.pending_dropped]; host retry
    recovers them), and the bindings are rebuilt from the shard's
    replication log. Returns [true] iff the rebuilt state is
    digest-identical to the pre-failure state and the full
    {!Fabric_manager.shard_integrity} pack passes. Emits
    {!Journal.update.Fm_shard_failover}. Raises [Invalid_argument] for an
    out-of-range pod. *)

(** {1 Routing inspection} *)

val trace_route :
  t -> src:Host_agent.t -> dst_ip:Netcore.Ipv4_addr.t -> Netcore.Ipv4_pkt.payload ->
  (int list, string) result
(** Walk the switches' current tables (including ECMP hash decisions) for
    a hypothetical packet, without transmitting anything. Returns the
    device-id path from the source host to the destination host. Errors on
    unresolved ARP state, table misses, or (impossibly, see the loop-
    freedom property tests) a forwarding loop. *)

(** {1 VM migration} *)

val migrate :
  t -> vm:Host_agent.t -> to_:int * int * int -> downtime:Eventsim.Time.t ->
  ?on_complete:(unit -> unit) -> unit -> unit
(** Unplug the VM's machine, re-plug it at the (free) target position
    after [downtime], and let it announce itself. The target port must be
    unoccupied (a spare slot, or a slot freed by a previous migration). *)

(** {1 State metrics} *)

val switch_table_sizes : t -> (Netcore.Ldp_msg.level * int) list
(** [(level, flow-table entries)] for every operational switch. *)

val control_digest : t -> string
(** 16-hex-digit FNV-1a digest of all distributed control state at the
    current instant: switch coordinates, edge-local host bindings, the
    fabric manager's fault matrix and per-switch flow-table sizes, in a
    canonical (sorted) rendering. Two quiescent fabrics in the same
    logical state produce equal digests — the cross-domain determinism
    tests compare this (and the {!Portland_verify.Verify} report digest)
    across [Config.domains] values. *)

(** {1 Update journal} *)

val set_journal : t -> Journal.hook option -> unit
(** Subscribe one observer to the deployment's complete control-plane
    update stream ({!Journal.update}): flow-table deltas from every
    switch agent, fault-matrix and binding deltas from the fabric
    manager, plus the link/device/wiring/FM-restart events injected
    through this module's failure API. The subscription survives
    {!restart_fabric_manager} (the fresh instance is re-hooked and an
    {!Journal.update.Fm_restarted} marker is emitted). [None]
    unsubscribes everywhere. At most one subscriber at a time — the
    incremental dataplane verifier ({!Portland_verify}). *)
