type host_binding = {
  ip : Netcore.Ipv4_addr.t;
  amac : Netcore.Mac_addr.t;
  pmac : Pmac.t;
  edge_switch : int;
}

type to_fm =
  | Neighbor_report of {
      switch_id : int;
      level : Netcore.Ldp_msg.level option;
      neighbors : (int * int * Netcore.Ldp_msg.level option) list;
      host_ports : int list;
    }
  | Propose_position of { switch_id : int; position : int }
  | Arp_query of {
      switch_id : int;
      requester_ip : Netcore.Ipv4_addr.t;
      requester_pmac : Pmac.t;
      requester_port : int;
      target_ip : Netcore.Ipv4_addr.t;
    }
  | Host_announce of host_binding
  | Fault_notice of { switch_id : int; port : int; neighbor : int }
  | Recovery_notice of { switch_id : int; port : int; neighbor : int }
  | Mcast_join of { switch_id : int; group : Netcore.Ipv4_addr.t; port : int }
  | Mcast_leave of { switch_id : int; group : Netcore.Ipv4_addr.t; port : int }
  | Reclaim_coords of { switch_id : int; coords : Coords.t }
  | Coords_request of { switch_id : int }

type to_switch =
  | Assign_coords of Coords.t
  | Position_denied of { position : int }
  | Arp_answer of {
      target_ip : Netcore.Ipv4_addr.t;
      target_pmac : Pmac.t option;
      requester_ip : Netcore.Ipv4_addr.t;
      requester_port : int;
      gen : int; (* ARP generation the answer is valid for *)
    }
  | Arp_flood of {
      requester_ip : Netcore.Ipv4_addr.t;
      requester_pmac : Pmac.t;
      target_ip : Netcore.Ipv4_addr.t;
    }
  | Fault_update of { faults : Fault.t list }
  | Invalidate_pmac of { ip : Netcore.Ipv4_addr.t; old_pmac : Pmac.t; new_pmac : Pmac.t }
  | Mcast_program of { group : Netcore.Ipv4_addr.t; out_ports : int list }
  | Resync_request
  | Host_restore of { bindings : host_binding list }
  | Arp_gen of { gen : int }

let pp_to_fm fmt = function
  | Neighbor_report { switch_id; neighbors; host_ports; _ } ->
    Format.fprintf fmt "Neighbor_report{sw=%d nbrs=%d hosts=%d}" switch_id (List.length neighbors)
      (List.length host_ports)
  | Propose_position { switch_id; position } ->
    Format.fprintf fmt "Propose_position{sw=%d pos=%d}" switch_id position
  | Arp_query { switch_id; target_ip; _ } ->
    Format.fprintf fmt "Arp_query{sw=%d target=%a}" switch_id Netcore.Ipv4_addr.pp target_ip
  | Host_announce { ip; pmac; _ } ->
    Format.fprintf fmt "Host_announce{ip=%a pmac=%a}" Netcore.Ipv4_addr.pp ip Pmac.pp pmac
  | Fault_notice { switch_id; port; neighbor } ->
    Format.fprintf fmt "Fault_notice{sw=%d port=%d nbr=%d}" switch_id port neighbor
  | Recovery_notice { switch_id; port; neighbor } ->
    Format.fprintf fmt "Recovery_notice{sw=%d port=%d nbr=%d}" switch_id port neighbor
  | Mcast_join { switch_id; group; port } ->
    Format.fprintf fmt "Mcast_join{sw=%d group=%a port=%d}" switch_id Netcore.Ipv4_addr.pp group
      port
  | Mcast_leave { switch_id; group; port } ->
    Format.fprintf fmt "Mcast_leave{sw=%d group=%a port=%d}" switch_id Netcore.Ipv4_addr.pp group
      port
  | Reclaim_coords { switch_id; coords } ->
    Format.fprintf fmt "Reclaim_coords{sw=%d %a}" switch_id Coords.pp coords
  | Coords_request { switch_id } -> Format.fprintf fmt "Coords_request{sw=%d}" switch_id

(* Reorderable-action descriptors for the model checker: stable,
   human-readable, and cheap enough to build per message (only built
   while an Engine interceptor is installed). *)
let describe_to_fm m = Format.asprintf "%a" pp_to_fm m

let pp_to_switch fmt = function
  | Assign_coords c -> Format.fprintf fmt "Assign_coords{%a}" Coords.pp c
  | Position_denied { position } -> Format.fprintf fmt "Position_denied{pos=%d}" position
  | Arp_answer { target_ip; target_pmac; _ } ->
    Format.fprintf fmt "Arp_answer{target=%a pmac=%s}" Netcore.Ipv4_addr.pp target_ip
      (match target_pmac with Some p -> Pmac.to_string p | None -> "miss")
  | Arp_flood { target_ip; _ } ->
    Format.fprintf fmt "Arp_flood{target=%a}" Netcore.Ipv4_addr.pp target_ip
  | Fault_update { faults } -> Format.fprintf fmt "Fault_update{%d faults}" (List.length faults)
  | Invalidate_pmac { ip; old_pmac; new_pmac } ->
    Format.fprintf fmt "Invalidate_pmac{ip=%a %a->%a}" Netcore.Ipv4_addr.pp ip Pmac.pp old_pmac
      Pmac.pp new_pmac
  | Mcast_program { group; out_ports } ->
    Format.fprintf fmt "Mcast_program{group=%a ports=[%s]}" Netcore.Ipv4_addr.pp group
      (String.concat ";" (List.map string_of_int out_ports))
  | Resync_request -> Format.pp_print_string fmt "Resync_request"
  | Host_restore { bindings } ->
    Format.fprintf fmt "Host_restore{%d bindings}" (List.length bindings)
  | Arp_gen { gen } -> Format.fprintf fmt "Arp_gen{gen=%d}" gen

let describe_to_switch m = Format.asprintf "%a" pp_to_switch m
