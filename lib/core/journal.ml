(* The control-plane update journal: every dataplane-relevant mutation of
   a running deployment, as one typed record. See journal.mli. *)

type update =
  | Flow of { switch : int; change : Switchfab.Flow_table.update }
  | Fault_delta of { fault : Fault.t; active : bool }
  | Binding of { ip : Netcore.Ipv4_addr.t }
  | Coords_assigned of { switch : int }
  | Link_state of { a : int; b : int; up : bool }
  | Device_state of { device : int; up : bool }
  | Wiring of { device : int }
  | Fm_restarted
  | Fm_shard_failover of { pod : int }

type hook = update -> unit

let pp fmt = function
  | Flow { switch; change } ->
    Format.fprintf fmt "flow sw=%d: %a" switch Switchfab.Flow_table.pp_update change
  | Fault_delta { fault; active } ->
    Format.fprintf fmt "fault %a %s" Fault.pp fault (if active then "raised" else "cleared")
  | Binding { ip } -> Format.fprintf fmt "binding %a" Netcore.Ipv4_addr.pp ip
  | Coords_assigned { switch } -> Format.fprintf fmt "coords sw=%d" switch
  | Link_state { a; b; up } ->
    Format.fprintf fmt "link %d-%d %s" a b (if up then "up" else "down")
  | Device_state { device; up } ->
    Format.fprintf fmt "device %d %s" device (if up then "up" else "down")
  | Wiring { device } -> Format.fprintf fmt "wiring changed at device %d" device
  | Fm_restarted -> Format.pp_print_string fmt "fabric manager restarted"
  | Fm_shard_failover { pod } ->
    Format.fprintf fmt "fm shard failover (pod %d): rebuilt from replication log" pod
