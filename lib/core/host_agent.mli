(** End-host network stack.

    Hosts are completely unmodified by PortLand — this agent implements
    only what any Ethernet/IP host does: a boot-time gratuitous ARP, an
    ARP cache with expiry and retry, IP send/receive, IGMP membership
    reports, and acceptance of unsolicited (gratuitous) ARP replies —
    which is precisely the hook PortLand's migration support relies on.

    The transport library layers UDP/TCP endpoints on {!set_rx}. *)

type t

type host_counters = {
  tx_packets : int;
  rx_packets : int;
  arps_sent : int;
  pending_drops : int;
      (** packets dropped because the ARP queue overflowed, or because the
          resolution they were queued on was abandoned *)
  arp_abandoned : int;
      (** resolutions given up after [arp_retry_limit] retransmissions
          with exponential ([arp_backoff]) spacing *)
}

val create :
  Eventsim.Engine.t -> Config.t -> Switchfab.Net.t -> device:int ->
  amac:Netcore.Mac_addr.t -> ip:Netcore.Ipv4_addr.t -> ?obs:Obs.t -> unit -> t
(** [obs] (default {!Obs.null}) gets a pull-probe exporting the
    {!host_counters} as [host/*] samples labelled with the primary IP. *)

val start : t -> unit
(** Schedule the boot gratuitous ARP ([host_announce_delay] plus a small
    deterministic per-host stagger) and install the receive handler. *)

val announce : t -> unit
(** Send a gratuitous ARP immediately — what a freshly migrated VM does
    when it resumes on its new machine. *)

val ip : t -> Netcore.Ipv4_addr.t
(** The primary interface's address. *)

val amac : t -> Netcore.Mac_addr.t
val device_id : t -> int

(** {1 Virtual machines}

    A physical machine can host several VMs behind its one NIC; each VM
    has its own AMAC and IP. The edge switch assigns each a PMAC that
    differs only in the [vmid] field — precisely why PMAC carries one.
    Migration in this model moves the whole machine. *)

val add_vm : t -> amac:Netcore.Mac_addr.t -> ip:Netcore.Ipv4_addr.t -> unit
(** Attach a guest VM interface. Announces itself immediately when the
    host is already started. Raises [Invalid_argument] if the IP is
    already hosted here. *)

val vm_ips : t -> Netcore.Ipv4_addr.t list
(** Guest VM addresses (excludes the primary). *)

val send_ip_as :
  t -> src_ip:Netcore.Ipv4_addr.t -> dst:Netcore.Ipv4_addr.t -> Netcore.Ipv4_pkt.payload -> unit
(** Send sourced from a specific hosted interface (primary or VM). *)

val send_ip : t -> dst:Netcore.Ipv4_addr.t -> Netcore.Ipv4_pkt.payload -> unit
(** Resolve (or use the cached) destination MAC and transmit. While ARP is
    outstanding, up to [host_pending_limit] packets queue per
    destination. Multicast destinations map directly to group MACs. *)

val join_group : t -> Netcore.Ipv4_addr.t -> unit
val leave_group : t -> Netcore.Ipv4_addr.t -> unit

val set_rx : t -> (Netcore.Ipv4_pkt.t -> unit) -> unit
(** Callback for IP packets addressed to this host (or to a group). *)

val arp_lookup : t -> Netcore.Ipv4_addr.t -> Netcore.Mac_addr.t option
(** Current (unexpired) cache entry — exposed for tests. *)

val flush_arp_cache : t -> unit
val counters : t -> host_counters
