open Eventsim
open Netcore

type cache_entry = { mac : Mac_addr.t; expires : Time.t }

type iface = { if_amac : Mac_addr.t; if_ip : Ipv4_addr.t }

type resolving = {
  mutable queue : (iface * Ipv4_pkt.payload) list;
  mutable timer : Timer.t option;
  mutable attempts : int; (* retransmissions sent so far *)
}

type host_counters = {
  tx_packets : int;
  rx_packets : int;
  arps_sent : int;
  pending_drops : int;
  arp_abandoned : int;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  net : Switchfab.Net.t;
  device : int;
  h_amac : Mac_addr.t;
  h_ip : Ipv4_addr.t;
  mutable extra_ifaces : iface list; (* guest VMs beyond the primary interface *)
  cache : (Ipv4_addr.t, cache_entry) Hashtbl.t;
  resolving : (Ipv4_addr.t, resolving) Hashtbl.t;
  mutable rx : (Ipv4_pkt.t -> unit) option;
  mutable started : bool;
  mutable c_tx : int;
  mutable c_rx : int;
  mutable c_arps : int;
  mutable c_pending_drops : int;
  mutable c_arp_abandoned : int;
}

let ip t = t.h_ip
let amac t = t.h_amac
let device_id t = t.device

let primary_iface t = { if_amac = t.h_amac; if_ip = t.h_ip }
let ifaces t = primary_iface t :: t.extra_ifaces
let vm_ips t = List.map (fun i -> i.if_ip) t.extra_ifaces

let iface_owning_ip t ip =
  List.find_opt (fun i -> Ipv4_addr.equal i.if_ip ip) (ifaces t)

let counters t =
  { tx_packets = t.c_tx; rx_packets = t.c_rx; arps_sent = t.c_arps;
    pending_drops = t.c_pending_drops; arp_abandoned = t.c_arp_abandoned }

let set_rx t f = t.rx <- Some f

let transmit t frame = Switchfab.Net.transmit t.net ~node:t.device ~port:0 frame

let announce_iface t (i : iface) =
  let a = Arp.gratuitous ~mac:i.if_amac ~ip:i.if_ip in
  transmit t (Eth.make ~dst:Mac_addr.broadcast ~src:i.if_amac (Eth.Arp a))

let announce t = List.iter (announce_iface t) (ifaces t)

let arp_lookup t dst =
  match Hashtbl.find_opt t.cache dst with
  | Some e when e.expires > Engine.now t.engine -> Some e.mac
  | Some _ ->
    Hashtbl.remove t.cache dst;
    None
  | None -> None

let flush_arp_cache t = Hashtbl.reset t.cache

let send_frame_from t (i : iface) ~dst_mac ~dst payload =
  t.c_tx <- t.c_tx + 1;
  let pkt = Ipv4_pkt.make ~src:i.if_ip ~dst payload in
  transmit t (Eth.make ~dst:dst_mac ~src:i.if_amac (Eth.Ipv4 pkt))

let send_arp_request t (i : iface) ~target_ip =
  t.c_arps <- t.c_arps + 1;
  let a = Arp.request ~sender_mac:i.if_amac ~sender_ip:i.if_ip ~target_ip in
  transmit t (Eth.make ~dst:Mac_addr.broadcast ~src:i.if_amac (Eth.Arp a))

(* Capped exponential backoff replaces the historical retry-forever
   [Timer.every]: attempt [n] waits [arp_retry * arp_backoff^n], and after
   [arp_retry_limit] retransmissions the resolution is abandoned — queued
   packets are dropped (counted in [pending_drops]) and the abandonment
   itself shows up in [arp_abandoned]. *)
let abandon_resolution t dst (r : resolving) =
  Option.iter Timer.stop r.timer;
  r.timer <- None;
  Hashtbl.remove t.resolving dst;
  t.c_arp_abandoned <- t.c_arp_abandoned + 1;
  t.c_pending_drops <- t.c_pending_drops + List.length r.queue;
  r.queue <- []

let rec schedule_arp_retry t (i : iface) dst (r : resolving) =
  let delay =
    let scale = t.config.Config.arp_backoff ** float_of_int r.attempts in
    max 1 (int_of_float (float_of_int t.config.Config.arp_retry *. scale))
  in
  r.timer <-
    Some
      (Timer.after t.engine ~delay (fun () ->
           if r.attempts >= t.config.Config.arp_retry_limit then abandon_resolution t dst r
           else begin
             r.attempts <- r.attempts + 1;
             send_arp_request t i ~target_ip:dst;
             schedule_arp_retry t i dst r
           end))

let start_resolution t (i : iface) dst =
  match Hashtbl.find_opt t.resolving dst with
  | Some r -> r
  | None ->
    let r = { queue = []; timer = None; attempts = 0 } in
    Hashtbl.replace t.resolving dst r;
    send_arp_request t i ~target_ip:dst;
    schedule_arp_retry t i dst r;
    r

let send_ip_from t (i : iface) ~dst payload =
  if Ipv4_addr.is_broadcast dst then send_frame_from t i ~dst_mac:Mac_addr.broadcast ~dst payload
  else if Ipv4_addr.is_multicast dst then begin
    let mac = Mac_addr.multicast_of_group (Ipv4_addr.multicast_group dst) in
    send_frame_from t i ~dst_mac:mac ~dst payload
  end
  else begin
    match arp_lookup t dst with
    | Some mac -> send_frame_from t i ~dst_mac:mac ~dst payload
    | None ->
      let r = start_resolution t i dst in
      if List.length r.queue >= t.config.Config.host_pending_limit then
        t.c_pending_drops <- t.c_pending_drops + 1
      else r.queue <- (i, payload) :: r.queue
  end

let send_ip t ~dst payload = send_ip_from t (primary_iface t) ~dst payload

let send_ip_as t ~src_ip ~dst payload =
  match iface_owning_ip t src_ip with
  | Some i -> send_ip_from t i ~dst payload
  | None -> invalid_arg "Host_agent.send_ip_as: no interface owns that source IP"

let add_vm t ~amac ~ip =
  if iface_owning_ip t ip <> None then invalid_arg "Host_agent.add_vm: IP already hosted";
  let i = { if_amac = amac; if_ip = ip } in
  t.extra_ifaces <- t.extra_ifaces @ [ i ];
  if t.started then announce_iface t i

let learn_mapping t ~peer_ip ~mac =
  if not (Mac_addr.equal mac Mac_addr.zero) && iface_owning_ip t peer_ip = None then begin
    let expires = Engine.now t.engine + t.config.Config.arp_cache_timeout in
    Hashtbl.replace t.cache peer_ip { mac; expires };
    match Hashtbl.find_opt t.resolving peer_ip with
    | Some r ->
      Option.iter Timer.stop r.timer;
      Hashtbl.remove t.resolving peer_ip;
      List.iter
        (fun (i, payload) -> send_frame_from t i ~dst_mac:mac ~dst:peer_ip payload)
        (List.rev r.queue)
    | None -> ()
  end

let handle_arp t (a : Arp.t) =
  (* any ARP teaches us the sender's mapping — including unsolicited
     (gratuitous) replies, which is how migration corrections land *)
  learn_mapping t ~peer_ip:a.Arp.sender_ip ~mac:a.Arp.sender_mac;
  match a.Arp.op with
  | Arp.Request when not (Arp.is_gratuitous a) ->
    (match iface_owning_ip t a.Arp.target_ip with
     | Some i ->
       let reply =
         Arp.reply ~sender_mac:i.if_amac ~sender_ip:i.if_ip ~target_mac:a.Arp.sender_mac
           ~target_ip:a.Arp.sender_ip
       in
       transmit t (Eth.make ~dst:a.Arp.sender_mac ~src:i.if_amac (Eth.Arp reply))
     | None -> ())
  | Arp.Request | Arp.Reply -> ()

let handle_frame t _in_port (frame : Eth.t) =
  match frame.Eth.payload with
  | Eth.Arp a -> handle_arp t a
  | Eth.Ipv4 pkt ->
    let owner = iface_owning_ip t pkt.Ipv4_pkt.dst in
    if
      owner <> None
      || Ipv4_addr.is_multicast pkt.Ipv4_pkt.dst
      || Ipv4_addr.is_broadcast pkt.Ipv4_pkt.dst
    then begin
      t.c_rx <- t.c_rx + 1;
      match (pkt.Ipv4_pkt.payload, owner) with
      | Ipv4_pkt.Icmp (Icmp.Echo_request _ as req), Some i ->
        (* answered in the "kernel", as real hosts do *)
        send_ip_from t i ~dst:pkt.Ipv4_pkt.src (Ipv4_pkt.Icmp (Icmp.reply_to req))
      | _ -> (match t.rx with Some f -> f pkt | None -> ())
    end
  | Eth.Ldp _ | Eth.Bpdu _ | Eth.Raw _ -> ()

let create engine config net ~device ~amac ~ip ?(obs = Obs.null) () =
  let t =
    { engine; config; net; device; h_amac = amac; h_ip = ip; extra_ifaces = [];
      cache = Hashtbl.create 16; resolving = Hashtbl.create 4; rx = None; started = false;
      c_tx = 0; c_rx = 0; c_arps = 0; c_pending_drops = 0; c_arp_abandoned = 0 }
  in
  Obs.add_probe obs ~name:(Printf.sprintf "host:%d" device) (fun () ->
      let labels = [ Obs.Label.host (Ipv4_addr.to_string t.h_ip) ] in
      let s name v = Obs.sample ~subsystem:"host" ~name ~labels (Obs.Count v) in
      [ s "tx_packets" t.c_tx; s "rx_packets" t.c_rx;
        s "arps_sent" t.c_arps; s "pending_drops" t.c_pending_drops;
        s "arp_abandoned" t.c_arp_abandoned ]);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    Switchfab.Net.set_handler (Switchfab.Net.device t.net t.device) (fun in_port frame ->
        handle_frame t in_port frame);
    let stagger = Time.us (t.device * 37 mod 5000) in
    (* real stacks emit several gratuitous ARPs at boot so a single lost
       frame cannot leave the host unannounced *)
    for i = 0 to 2 do
      ignore
        (Engine.schedule t.engine
           ~delay:(t.config.Config.host_announce_delay + stagger + (i * t.config.Config.arp_retry))
           (fun () -> announce t))
    done
  end

let join_group t group =
  let m = Igmp.join group in
  let pkt = Ipv4_pkt.igmp ~src:t.h_ip m in
  let mac = Mac_addr.multicast_of_group (Ipv4_addr.multicast_group group) in
  transmit t (Eth.make ~dst:mac ~src:t.h_amac (Eth.Ipv4 pkt))

let leave_group t group =
  let m = Igmp.leave group in
  let pkt = Ipv4_pkt.igmp ~src:t.h_ip m in
  let mac = Mac_addr.multicast_of_group (Ipv4_addr.multicast_group group) in
  transmit t (Eth.make ~dst:mac ~src:t.h_amac (Eth.Ipv4 pkt))
