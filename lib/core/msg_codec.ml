open Netcore
module W = Wire.Writer
module R = Wire.Reader

(* ---------------- typed decode errors ---------------- *)

type error =
  | Truncated of { tag : int option }
  | Unknown_tag of int
  | Trailing_bytes of int
  | Bad_field of { tag : int option; what : string }

let pp_error fmt = function
  | Truncated { tag = None } -> Format.pp_print_string fmt "truncated frame (no tag byte)"
  | Truncated { tag = Some t } -> Format.fprintf fmt "truncated frame (tag %d)" t
  | Unknown_tag t -> Format.fprintf fmt "unknown message tag %d" t
  | Trailing_bytes n -> Format.fprintf fmt "%d trailing byte(s) after message" n
  | Bad_field { tag; what } ->
    Format.fprintf fmt "malformed field%s: %s"
      (match tag with Some t -> Printf.sprintf " (tag %d)" t | None -> "")
      what

let error_to_string e = Format.asprintf "%a" pp_error e

exception Unknown of int

(* Decode bodies signal malformed-but-complete fields via [failwith] and
   unrecognized tags via [Unknown]; [decode_with] maps every escape
   hatch — including reader exhaustion — to a typed error so no
   control-plane frame, however truncated or corrupted, can raise out of
   a decoder. *)
let decode_with r body =
  match R.u8 r with
  | exception R.Short -> Error (Truncated { tag = None })
  | tag ->
    (match body tag with
     | msg ->
       if R.remaining r <> 0 then Error (Trailing_bytes (R.remaining r)) else Ok msg
     | exception R.Short -> Error (Truncated { tag = Some tag })
     | exception Unknown t -> Error (Unknown_tag t)
     | exception Failure what -> Error (Bad_field { tag = Some tag; what })
     | exception Invalid_argument what -> Error (Bad_field { tag = Some tag; what }))

(* ---------------- shared field codecs ---------------- *)

let w_level w = function
  | None -> W.u8 w 0xff
  | Some Ldp_msg.Edge -> W.u8 w 0
  | Some Ldp_msg.Aggregation -> W.u8 w 1
  | Some Ldp_msg.Core -> W.u8 w 2

let r_level r =
  match R.u8 r with
  | 0xff -> None
  | 0 -> Some Ldp_msg.Edge
  | 1 -> Some Ldp_msg.Aggregation
  | 2 -> Some Ldp_msg.Core
  | n -> failwith (Printf.sprintf "level: %d" n)

let w_pmac w p = W.mac w (Pmac.to_mac p)
let r_pmac r = Pmac.of_mac (R.mac r)

let w_coords w = function
  | Coords.Edge { pod; position } ->
    W.u8 w 0;
    W.u16 w pod;
    W.u16 w position
  | Coords.Agg { pod; stripe } ->
    W.u8 w 1;
    W.u16 w pod;
    W.u16 w stripe
  | Coords.Core { stripe; member } ->
    W.u8 w 2;
    W.u16 w stripe;
    W.u16 w member

let r_coords r =
  let kind = R.u8 r in
  let a = R.u16 r in
  let b = R.u16 r in
  match kind with
  | 0 -> Coords.Edge { pod = a; position = b }
  | 1 -> Coords.Agg { pod = a; stripe = b }
  | 2 -> Coords.Core { stripe = a; member = b }
  | n -> failwith (Printf.sprintf "coords kind: %d" n)

let w_fault w = function
  | Fault.Edge_agg { pod; edge_pos; stripe } ->
    W.u8 w 0;
    W.u16 w pod;
    W.u16 w edge_pos;
    W.u16 w stripe
  | Fault.Agg_core { pod; stripe; member } ->
    W.u8 w 1;
    W.u16 w pod;
    W.u16 w stripe;
    W.u16 w member
  | Fault.Host_edge { pod; edge_pos; port } ->
    W.u8 w 2;
    W.u16 w pod;
    W.u16 w edge_pos;
    W.u16 w port

let r_fault r =
  let kind = R.u8 r in
  let a = R.u16 r in
  let b = R.u16 r in
  let c = R.u16 r in
  match kind with
  | 0 -> Fault.Edge_agg { pod = a; edge_pos = b; stripe = c }
  | 1 -> Fault.Agg_core { pod = a; stripe = b; member = c }
  | 2 -> Fault.Host_edge { pod = a; edge_pos = b; port = c }
  | n -> failwith (Printf.sprintf "fault kind: %d" n)

let w_binding w (b : Msg.host_binding) =
  W.ip w b.Msg.ip;
  W.mac w b.Msg.amac;
  w_pmac w b.Msg.pmac;
  W.u32 w b.Msg.edge_switch

let r_binding r =
  let ip = R.ip r in
  let amac = R.mac r in
  let pmac = r_pmac r in
  let edge_switch = R.u32 r in
  { Msg.ip; amac; pmac; edge_switch }

let w_list w f xs =
  W.u16 w (List.length xs);
  List.iter (f w) xs

let r_list r f =
  let n = R.u16 r in
  List.init n (fun _ -> f r)

(* ---------------- switch -> fabric manager ---------------- *)

let encode_to_fm (msg : Msg.to_fm) =
  let w = W.create () in
  (match msg with
   | Msg.Neighbor_report { switch_id; level; neighbors; host_ports } ->
     W.u8 w 1;
     W.u32 w switch_id;
     w_level w level;
     w_list w
       (fun w (port, nbr, nbr_level) ->
         W.u16 w port;
         W.u32 w nbr;
         w_level w nbr_level)
       neighbors;
     w_list w (fun w p -> W.u16 w p) host_ports
   | Msg.Propose_position { switch_id; position } ->
     W.u8 w 2;
     W.u32 w switch_id;
     W.u16 w position
   | Msg.Arp_query { switch_id; requester_ip; requester_pmac; requester_port; target_ip } ->
     W.u8 w 3;
     W.u32 w switch_id;
     W.ip w requester_ip;
     w_pmac w requester_pmac;
     W.u16 w requester_port;
     W.ip w target_ip
   | Msg.Host_announce b ->
     W.u8 w 4;
     w_binding w b
   | Msg.Fault_notice { switch_id; port; neighbor } ->
     W.u8 w 5;
     W.u32 w switch_id;
     W.u16 w port;
     W.u32 w neighbor
   | Msg.Recovery_notice { switch_id; port; neighbor } ->
     W.u8 w 6;
     W.u32 w switch_id;
     W.u16 w port;
     W.u32 w neighbor
   | Msg.Mcast_join { switch_id; group; port } ->
     W.u8 w 7;
     W.u32 w switch_id;
     W.ip w group;
     W.u16 w port
   | Msg.Mcast_leave { switch_id; group; port } ->
     W.u8 w 8;
     W.u32 w switch_id;
     W.ip w group;
     W.u16 w port
   | Msg.Reclaim_coords { switch_id; coords } ->
     W.u8 w 9;
     W.u32 w switch_id;
     w_coords w coords
   | Msg.Coords_request { switch_id } ->
     W.u8 w 10;
     W.u32 w switch_id);
  W.contents w

let decode_to_fm bytes_ =
  let r = R.create bytes_ in
  decode_with r (fun tag ->
      match tag with
      | 1 ->
        let switch_id = R.u32 r in
        let level = r_level r in
        let neighbors =
          r_list r (fun r ->
              let port = R.u16 r in
              let nbr = R.u32 r in
              let nbr_level = r_level r in
              (port, nbr, nbr_level))
        in
        let host_ports = r_list r (fun r -> R.u16 r) in
        Msg.Neighbor_report { switch_id; level; neighbors; host_ports }
      | 2 ->
        let switch_id = R.u32 r in
        let position = R.u16 r in
        Msg.Propose_position { switch_id; position }
      | 3 ->
        let switch_id = R.u32 r in
        let requester_ip = R.ip r in
        let requester_pmac = r_pmac r in
        let requester_port = R.u16 r in
        let target_ip = R.ip r in
        Msg.Arp_query { switch_id; requester_ip; requester_pmac; requester_port; target_ip }
      | 4 -> Msg.Host_announce (r_binding r)
      | 5 ->
        let switch_id = R.u32 r in
        let port = R.u16 r in
        let neighbor = R.u32 r in
        Msg.Fault_notice { switch_id; port; neighbor }
      | 6 ->
        let switch_id = R.u32 r in
        let port = R.u16 r in
        let neighbor = R.u32 r in
        Msg.Recovery_notice { switch_id; port; neighbor }
      | 7 ->
        let switch_id = R.u32 r in
        let group = R.ip r in
        let port = R.u16 r in
        Msg.Mcast_join { switch_id; group; port }
      | 8 ->
        let switch_id = R.u32 r in
        let group = R.ip r in
        let port = R.u16 r in
        Msg.Mcast_leave { switch_id; group; port }
      | 9 ->
        let switch_id = R.u32 r in
        let coords = r_coords r in
        Msg.Reclaim_coords { switch_id; coords }
      | 10 ->
        let switch_id = R.u32 r in
        Msg.Coords_request { switch_id }
      | n -> raise (Unknown n))

(* ---------------- fabric manager -> switch ---------------- *)

let encode_to_switch (msg : Msg.to_switch) =
  let w = W.create () in
  (match msg with
   | Msg.Assign_coords c ->
     W.u8 w 1;
     w_coords w c
   | Msg.Position_denied { position } ->
     W.u8 w 2;
     W.u16 w position
   | Msg.Arp_answer { target_ip; target_pmac; requester_ip; requester_port; gen } ->
     W.u8 w 3;
     W.ip w target_ip;
     (match target_pmac with
      | Some p ->
        W.u8 w 1;
        w_pmac w p
      | None -> W.u8 w 0);
     W.ip w requester_ip;
     W.u16 w requester_port;
     W.u32 w gen
   | Msg.Arp_flood { requester_ip; requester_pmac; target_ip } ->
     W.u8 w 4;
     W.ip w requester_ip;
     w_pmac w requester_pmac;
     W.ip w target_ip
   | Msg.Fault_update { faults } ->
     W.u8 w 5;
     w_list w w_fault faults
   | Msg.Invalidate_pmac { ip; old_pmac; new_pmac } ->
     W.u8 w 6;
     W.ip w ip;
     w_pmac w old_pmac;
     w_pmac w new_pmac
   | Msg.Mcast_program { group; out_ports } ->
     W.u8 w 7;
     W.ip w group;
     w_list w (fun w p -> W.u16 w p) out_ports
   | Msg.Resync_request -> W.u8 w 8
   | Msg.Host_restore { bindings } ->
     W.u8 w 9;
     w_list w w_binding bindings
   | Msg.Arp_gen { gen } ->
     W.u8 w 10;
     W.u32 w gen);
  W.contents w

let decode_to_switch bytes_ =
  let r = R.create bytes_ in
  decode_with r (fun tag ->
      match tag with
      | 1 -> Msg.Assign_coords (r_coords r)
      | 2 ->
        let position = R.u16 r in
        Msg.Position_denied { position }
      | 3 ->
        let target_ip = R.ip r in
        let target_pmac = match R.u8 r with 0 -> None | _ -> Some (r_pmac r) in
        let requester_ip = R.ip r in
        let requester_port = R.u16 r in
        let gen = R.u32 r in
        Msg.Arp_answer { target_ip; target_pmac; requester_ip; requester_port; gen }
      | 4 ->
        let requester_ip = R.ip r in
        let requester_pmac = r_pmac r in
        let target_ip = R.ip r in
        Msg.Arp_flood { requester_ip; requester_pmac; target_ip }
      | 5 -> Msg.Fault_update { faults = r_list r r_fault }
      | 6 ->
        let ip = R.ip r in
        let old_pmac = r_pmac r in
        let new_pmac = r_pmac r in
        Msg.Invalidate_pmac { ip; old_pmac; new_pmac }
      | 7 ->
        let group = R.ip r in
        let out_ports = r_list r (fun r -> R.u16 r) in
        Msg.Mcast_program { group; out_ports }
      | 8 -> Msg.Resync_request
      | 9 -> Msg.Host_restore { bindings = r_list r r_binding }
      | 10 ->
        let gen = R.u32 r in
        Msg.Arp_gen { gen }
      | n -> raise (Unknown n))

let to_fm_wire_len msg = Bytes.length (encode_to_fm msg)
let to_switch_wire_len msg = Bytes.length (encode_to_switch msg)
