(** The control-plane update journal.

    Every mutation that can change what the static dataplane verifier
    ({!Portland_verify}) would conclude — a flow-table delta, a
    fault-matrix delta, a host-binding change, a coordinate grant, a
    link/device liveness flip, a rewiring, a fabric-manager restart — is
    reported as one typed {!update}. {!Fabric.set_journal} aggregates the
    per-component streams ({!Switchfab.Flow_table.set_journal},
    {!Fault.Set.set_hook}, fabric-manager and switch-agent hooks) into a
    single subscriber, which is how the incremental verifier maps each
    update to the destination equivalence classes it can affect and
    re-walks only those. *)

type update =
  | Flow of { switch : int; change : Switchfab.Flow_table.update }
      (** A switch's flow table changed; [change] carries the trie-prefix
          provenance of the affected entry. *)
  | Fault_delta of { fault : Fault.t; active : bool }
      (** The fabric manager's fault matrix gained ([active]) or lost a
          coordinate fault. *)
  | Binding of { ip : Netcore.Ipv4_addr.t }
      (** The fabric manager's IP→PMAC binding for [ip] was written
          (registration, migration rewrite, or test corruption) — the
          class keyed by [ip] must be re-resolved. *)
  | Coords_assigned of { switch : int }
      (** The switch agent accepted coordinates (boot or re-grant after
          reboot). A fresh edge ingress potentially re-walks everything. *)
  | Link_state of { a : int; b : int; up : bool }
      (** The link between devices [a] and [b] failed or recovered. *)
  | Device_state of { device : int; up : bool }
      (** A device was silenced ({!Fabric.fail_switch}) or revived. *)
  | Wiring of { device : int }
      (** A port of [device] was plugged or unplugged (VM migration). *)
  | Fm_restarted
      (** The fabric manager was replaced wholesale; all soft state —
          bindings, fault matrix, coordinate grants — is rebuilding. *)
  | Fm_shard_failover of { pod : int }
      (** The FM shard owning [pod] was wiped and rebuilt from its
          replication log. The rebuild is digest-checked to be
          state-identical, so no dataplane re-verification is needed —
          the record exists for observability and campaign reports. *)

type hook = update -> unit

val pp : Format.formatter -> update -> unit
