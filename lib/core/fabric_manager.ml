open Netcore
module MR = Topology.Multirooted

type sw_info = {
  sw_id : int;
  mutable level : Ldp_msg.level option;
  mutable neighbors : (int * int * Ldp_msg.level option) list;
  mutable host_ports : int list;
  mutable coords : Coords.t option;
  mutable owning_shard : int option;
      (* the shard holding this edge switch's host bindings, learned from
         its announces. The FM's coordinate pod labels are assigned in
         discovery order and need not equal the IP-addressing pods, so
         the owning shard cannot be derived from [coords] — it must be
         remembered from the announced IPs. *)
}

type pending_arp = { from_sw : int; requester_ip : Ipv4_addr.t; requester_port : int }

(* One entry of the per-shard replication log: every durable soft-state
   write, in arrival order. Replaying a shard's log from scratch must
   rebuild exactly the shard's current state — that property is what
   [failover_shard] checks, and what would drive a standby replica in a
   real deployment. Pending ARPs are deliberately not logged: they are
   ephemeral (the host retry path re-creates them), so failover drops
   them instead. *)
type repl_entry =
  | R_bind of Msg.host_binding
  | R_fault of { fault : Fault.t; active : bool }
  | R_mcast of { group : Ipv4_addr.t; switch : int; port : int; join : bool }

(* One pod-keyed shard of the fabric manager's soft state. Shard [p]
   owns the bindings and pending ARPs of every IP whose pod ≡ p (mod
   fm_shards) and the fault-matrix rows of those pods; the extra core
   shard owns multicast group membership. *)
type shard = {
  sh_bindings : (Ipv4_addr.t, Msg.host_binding) Hashtbl.t;
  sh_pending : (Ipv4_addr.t, pending_arp list) Hashtbl.t;
  mutable sh_log : repl_entry list; (* newest first *)
  mutable sh_replays : int; (* times this shard's log was replayed *)
  mutable sh_serve : int array;
      (* read-optimized mirror of [sh_bindings] for batched resolution: a
         flat linear-probe table interleaving (ip+1, packed PMAC) slot
         pairs so a hit costs one cache line. [||] = stale; any binding
         write invalidates and the next batch rebuilds lazily. *)
}

type group_state = {
  receivers : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* edge switch id -> host port set *)
  mutable core_sw : int option;
  mutable programmed : (int * int list) list;
}

type counters = {
  arp_queries : int;
  arp_hits : int;
  arp_misses : int;
  host_announces : int;
  migrations : int;
  fault_notices : int;
  fault_broadcasts : int;
  mcast_recomputes : int;
  reports : int;
  pending_dropped : int;
  shard_failovers : int;
}

type counters_mut = {
  mutable m_arp_queries : int;
  mutable m_arp_hits : int;
  mutable m_arp_misses : int;
  mutable m_host_announces : int;
  mutable m_migrations : int;
  mutable m_fault_notices : int;
  mutable m_fault_broadcasts : int;
  mutable m_mcast_recomputes : int;
  mutable m_reports : int;
  mutable m_pending_dropped : int;
  mutable m_shard_failovers : int;
}

type t = {
  engine : Eventsim.Engine.t;
  config : Config.t;
  ctrl : Ctrl.t;
  obs : Obs.t;
  m_ctrl_msgs : Obs.Counter.t;
  spec : Topology.Multirooted.spec;
  switches : (int, sw_info) Hashtbl.t;
  pod_uf : Uf.t;
  stripe_uf : Uf.t;
  pod_ids : (int, int) Hashtbl.t; (* pod-component root -> pod number *)
  mutable next_pod : int;
  stripe_ids : (int, int) Hashtbl.t; (* stripe-component root -> stripe label *)
  mutable next_stripe : int;
  positions : (int, (int, int) Hashtbl.t) Hashtbl.t; (* pod -> position -> edge switch id *)
  members : (int, (int, int) Hashtbl.t) Hashtbl.t; (* stripe -> member -> core switch id *)
  fm_shards : int;
  shards : shard array; (* fm_shards pod shards, then one core shard *)
  mutable arp_gen : int; (* bumped on every migration; stamps ARP answers *)
  faults : Fault.Set.t;
  groups : (Ipv4_addr.t, group_state) Hashtbl.t;
  c : counters_mut;
  mutable journal : Journal.hook option;
  (* scratch for [resolve_batch]'s shard grouping, grown on demand so a
     batched ARP front end doing back-to-back calls never re-allocates *)
  mutable rb_idx : int array;
  mutable rb_shard : Bytes.t;
  mutable rb_counts : int array;
}

(* Host IPs are 10.pod.edge.slot (see Fabric), so the owning pod is a
   pure function of the address — which is what lets a pending ARP for a
   still-unbound IP be parked on the right shard. *)
let pod_of_ip ip = (Ipv4_addr.to_int ip lsr 16) land 0xff
let shard_index t ip = pod_of_ip ip mod t.fm_shards
let shard_of t ip = t.shards.(shard_index t ip)
let core_shard t = t.shards.(t.fm_shards)

let log_entry sh e = sh.sh_log <- e :: sh.sh_log

let replay_bindings sh tbl =
  sh.sh_replays <- sh.sh_replays + 1;
  List.iter
    (function R_bind b -> Hashtbl.replace tbl b.Msg.ip b | R_fault _ | R_mcast _ -> ())
    (List.rev sh.sh_log)

let shard_log_replays t = Array.map (fun sh -> sh.sh_replays) t.shards

let jemit t u = match t.journal with None -> () | Some f -> f u

let set_journal t hook =
  t.journal <- hook;
  (* fault-matrix deltas flow out of the set itself, so translate_fault /
     recovery handling stays oblivious to journalling *)
  Fault.Set.set_hook t.faults
    (match hook with
     | None -> None
     | Some f -> Some (fun fault active -> f (Journal.Fault_delta { fault; active })))

let tracef t level fmt =
  Obs.eventf t.obs ~time:(Eventsim.Engine.now t.engine) ~level ~subsystem:"fm" fmt

let counters t =
  { arp_queries = t.c.m_arp_queries;
    arp_hits = t.c.m_arp_hits;
    arp_misses = t.c.m_arp_misses;
    host_announces = t.c.m_host_announces;
    migrations = t.c.m_migrations;
    fault_notices = t.c.m_fault_notices;
    fault_broadcasts = t.c.m_fault_broadcasts;
    mcast_recomputes = t.c.m_mcast_recomputes;
    reports = t.c.m_reports;
    pending_dropped = t.c.m_pending_dropped;
    shard_failovers = t.c.m_shard_failovers }

let switch_coords t id =
  match Hashtbl.find_opt t.switches id with
  | Some sw -> sw.coords
  | None -> None

let known_switches t = Hashtbl.fold (fun id _ acc -> id :: acc) t.switches []
let fault_set t = Fault.Set.elements t.faults
let fm_shards t = t.fm_shards
let arp_generation t = t.arp_gen

let binding_count t =
  let n = ref 0 in
  for s = 0 to t.fm_shards - 1 do
    n := !n + Hashtbl.length t.shards.(s).sh_bindings
  done;
  !n

let pending_count t =
  let n = ref 0 in
  for s = 0 to t.fm_shards - 1 do
    n := !n + Hashtbl.length t.shards.(s).sh_pending
  done;
  !n

let resolve t ip =
  match Hashtbl.find_opt (shard_of t ip).sh_bindings ip with
  | Some b -> Some b.Msg.pmac
  | None -> None

(* Serving index for batched resolution. A PMAC is 40 bits of payload
   (pod < 256, position/port 8 bits, vmid 16), so a slot pair is the
   key (ip+1, never 0 = empty) next to the packed PMAC in one flat int
   array — a hit is one cache line instead of a bucket-chain walk, which
   is what lets the sharded rows beat the monolithic Hashtbl at 10M
   bindings. Fibonacci hashing scatters the pod-congruent IPs a shard
   owns; capacity keeps load <= 3/4 so linear probes stay short. *)
let pmac_pack (p : Pmac.t) =
  (p.Pmac.pod lsl 32) lor (p.Pmac.position lsl 24) lor (p.Pmac.port lsl 16) lor p.Pmac.vmid

let pmac_unpack v =
  { Pmac.pod = v lsr 32; position = (v lsr 24) land 0xff; port = (v lsr 16) land 0xff;
    vmid = v land 0xffff }

let serve_hash key mask = ((key * 0x2545F4914F6CDD1D) lsr 25) land mask

let serve_rebuild sh =
  let n = Hashtbl.length sh.sh_bindings in
  let cap = ref 16 in
  while !cap * 3 < n * 4 do
    cap := !cap * 2
  done;
  let mask = !cap - 1 in
  let slots = Array.make (2 * !cap) 0 in
  Hashtbl.iter
    (fun ip b ->
      let key = Ipv4_addr.to_int ip + 1 in
      let j = ref (serve_hash key mask) in
      while slots.(2 * !j) <> 0 do
        j := (!j + 1) land mask
      done;
      slots.(2 * !j) <- key;
      slots.((2 * !j) + 1) <- pmac_pack b.Msg.pmac)
    sh.sh_bindings;
  sh.sh_serve <- slots;
  slots

(* Batched lookup: group the queries by owning shard first, then drain
   shard by shard. One pass per shard keeps each shard's serving index
   hot in cache across its whole slice of the batch — this is the access
   pattern a real sharded FM would ship to its per-pod serving
   processes, and what the 1M/10M-binding bench rows measure. *)
let resolve_batch t ips =
  let n = Array.length ips in
  let out = Array.make n None in
  if t.fm_shards = 1 then
    for i = 0 to n - 1 do
      out.(i) <- resolve t ips.(i)
    done
  else begin
    (* counting-sort the batch by owning shard, then drain shard-at-a-time
       so consecutive lookups share one shard's table. The owning shard is
       a byte (pods are 8-bit), computed once per query and parked in
       [rb_shard]; [rb_idx]/[rb_counts] hold the grouped order. *)
    if Array.length t.rb_idx < n then begin
      t.rb_idx <- Array.make n 0;
      t.rb_shard <- Bytes.create n
    end;
    if Array.length t.rb_counts < t.fm_shards + 1 then
      t.rb_counts <- Array.make (t.fm_shards + 1) 0;
    let idx = t.rb_idx and sh = t.rb_shard and counts = t.rb_counts in
    Array.fill counts 0 (t.fm_shards + 1) 0;
    for i = 0 to n - 1 do
      let s = shard_index t (Array.unsafe_get ips i) in
      Bytes.unsafe_set sh i (Char.unsafe_chr s);
      counts.(s + 1) <- counts.(s + 1) + 1
    done;
    for s = 1 to t.fm_shards do
      counts.(s) <- counts.(s) + counts.(s - 1)
    done;
    (* after this fill pass [counts.(s)] has advanced from the start to the
       end of shard [s]'s slice of [idx] *)
    for i = 0 to n - 1 do
      let s = Char.code (Bytes.unsafe_get sh i) in
      Array.unsafe_set idx counts.(s) i;
      counts.(s) <- counts.(s) + 1
    done;
    let start = ref 0 in
    for s = 0 to t.fm_shards - 1 do
      let shd = t.shards.(s) in
      let slots = if Array.length shd.sh_serve = 0 then serve_rebuild shd else shd.sh_serve in
      let mask = (Array.length slots lsr 1) - 1 in
      let stop = counts.(s) in
      for jj = !start to stop - 1 do
        let i = Array.unsafe_get idx jj in
        let key = Ipv4_addr.to_int (Array.unsafe_get ips i) + 1 in
        let j = ref (serve_hash key mask) in
        let slot = ref (Array.unsafe_get slots (2 * !j)) in
        while !slot <> key && !slot <> 0 do
          j := (!j + 1) land mask;
          slot := Array.unsafe_get slots (2 * !j)
        done;
        if !slot = key then
          Array.unsafe_set out i (Some (pmac_unpack (Array.unsafe_get slots ((2 * !j) + 1))))
      done;
      start := stop
    done
  end;
  out

let lookup_binding t ip = Hashtbl.find_opt (shard_of t ip).sh_bindings ip

let insert_binding_for_test t (b : Msg.host_binding) =
  let sh = shard_of t b.Msg.ip in
  Hashtbl.replace sh.sh_bindings b.Msg.ip b;
  sh.sh_serve <- [||];
  log_entry sh (R_bind b);
  jemit t (Journal.Binding { ip = b.Msg.ip })

let group_core t group =
  match Hashtbl.find_opt t.groups group with
  | Some g -> g.core_sw
  | None -> None

(* ---------------- topology view helpers ---------------- *)

let get_sw t id =
  match Hashtbl.find_opt t.switches id with
  | Some sw -> sw
  | None ->
    let sw =
      { sw_id = id; level = None; neighbors = []; host_ports = []; coords = None;
        owning_shard = None }
    in
    Hashtbl.replace t.switches id sw;
    sw

let port_to sw nbr_id =
  List.find_map (fun (port, nbr, _) -> if nbr = nbr_id then Some port else None) sw.neighbors

let edges_of t = Hashtbl.fold (fun _ sw acc ->
    match sw.coords with Some (Coords.Edge _) -> sw :: acc | _ -> acc) t.switches []

let sorted_cores t =
  let cores =
    Hashtbl.fold
      (fun _ sw acc ->
        match sw.coords with
        | Some (Coords.Core c) -> (c.stripe, c.member, sw) :: acc
        | _ -> acc)
      t.switches []
  in
  List.sort (fun (s1, m1, _) (s2, m2, _) -> compare (s1, m1) (s2, m2)) cores

(* ---------------- coordinate assignment ---------------- *)

(* union that carries a component's label (pod or stripe number) onto the
   merged component's new root — required both for incremental discovery
   and for adopting labels reclaimed after a fabric-manager restart *)
let union_labelled uf labels a b =
  let ra = Uf.find uf a and rb = Uf.find uf b in
  if ra <> rb then begin
    let la = Hashtbl.find_opt labels ra and lb = Hashtbl.find_opt labels rb in
    Uf.union uf a b;
    let root = Uf.find uf a in
    Hashtbl.remove labels ra;
    Hashtbl.remove labels rb;
    match (la, lb) with
    | Some l, _ | None, Some l -> Hashtbl.replace labels root l
    | None, None -> ()
  end

let pod_of_component t root = Hashtbl.find_opt t.pod_ids root

let assign_coords t sw coords =
  sw.coords <- Some coords;
  tracef t Eventsim.Trace.Info "assigned %a to switch %d" Coords.pp coords sw.sw_id;
  Ctrl.send_to_switch t.ctrl sw.sw_id (Msg.Assign_coords coords)

(* Stripe labelling must wait until the whole stripe component has been
   discovered: labelling a partially formed component hands different
   labels to members that later merge, and coordinates already granted
   cannot be recalled. A component is structurally complete when it holds
   one aggregation switch per pod and every core of the stripe — both
   counts known from the spec. Member indexes are then the rank among the
   stripe's core switch ids: stable and identical from every pod. *)
let stripe_members_if_complete t root =
  let member_ids = Uf.members t.stripe_uf root in
  let aggs, cores =
    List.fold_left
      (fun (aggs, cores) id ->
        match Hashtbl.find_opt t.switches id with
        | Some sw when sw.level = Some Ldp_msg.Aggregation -> (sw :: aggs, cores)
        | Some sw when sw.level = Some Ldp_msg.Core -> (aggs, sw :: cores)
        | Some _ | None -> (aggs, cores))
      ([], []) member_ids
  in
  if
    List.length aggs = t.spec.Topology.Multirooted.num_pods
    && List.length cores = Topology.Multirooted.uplinks_per_agg t.spec
  then Some (aggs, cores)
  else None

let try_assign_stripe t sw =
  let root = Uf.find t.stripe_uf sw.sw_id in
  match stripe_members_if_complete t root with
  | None -> ()
  | Some (aggs, cores) ->
    let stripe =
      match Hashtbl.find_opt t.stripe_ids root with
      | Some s -> s
      | None ->
        let s = t.next_stripe in
        t.next_stripe <- s + 1;
        Hashtbl.replace t.stripe_ids root s;
        s
    in
    List.iter
      (fun (a : sw_info) ->
        if a.coords = None then
          match pod_of_component t (Uf.find t.pod_uf a.sw_id) with
          | Some pod -> assign_coords t a (Coords.Agg { pod; stripe })
          | None -> () (* its pod is not labelled yet; a later pass assigns *))
      aggs;
    let member_tbl =
      match Hashtbl.find_opt t.members stripe with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.members stripe tbl;
        tbl
    in
    List.iteri
      (fun member (c : sw_info) ->
        if c.coords = None then begin
          Hashtbl.replace member_tbl member c.sw_id;
          assign_coords t c (Coords.Core { stripe; member })
        end)
      (List.sort (fun (a : sw_info) b -> compare a.sw_id b.sw_id) cores)

let try_assign t sw =
  if sw.coords = None then begin
    match sw.level with
    | Some Ldp_msg.Aggregation | Some Ldp_msg.Core -> try_assign_stripe t sw
    | Some Ldp_msg.Edge | None -> () (* edges are assigned through position proposals *)
  end

let by_sw_id = List.sort (fun (a : sw_info) b -> compare a.sw_id b.sw_id)

let register_member t ~stripe ~member sw_id =
  let tbl =
    match Hashtbl.find_opt t.members stripe with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.members stripe tbl;
      tbl
  in
  Hashtbl.replace tbl member sw_id

let core_neighbor_ids sw =
  List.filter_map
    (fun (_, nbr, nl) -> if nl = Some Ldp_msg.Core then Some nbr else None)
    sw.neighbors
  |> List.sort_uniq (fun (a : int) b -> compare a b)

(* AB wiring: stripe components are useless here — every agg and core
   shares one agg–core adjacency component — so labels are inferred
   globally instead. The first-labelled pod (pod 0) is the reference: its
   aggregation switches in switch-id order define the core grid's rows,
   and each row agg's core neighbors in switch-id order get that row's
   member indexes. Every other aggregation switch is then classified by
   its core-neighbor label set — all in one row makes it a row agg with
   that row's label, all sharing one member index makes it a column agg
   labelled [u + member]. The whole scheme is a pure function of pod
   labels and switch ids, so a restarted fabric manager re-derives
   exactly the labels switches reclaim (and it stays internally
   consistent even if the physical reference pod is a type-B pod — the
   grid just comes out transposed). *)
let try_assign_ab t =
  let u = MR.uplinks_per_agg t.spec in
  let ref_aggs =
    Hashtbl.fold
      (fun _ sw acc ->
        if
          sw.level = Some Ldp_msg.Aggregation
          && pod_of_component t (Uf.find t.pod_uf sw.sw_id) = Some 0
        then sw :: acc
        else acc)
      t.switches []
    |> by_sw_id
  in
  if
    List.length ref_aggs = t.spec.MR.aggs_per_pod
    && List.for_all (fun a -> List.length (core_neighbor_ids a) = u) ref_aggs
  then begin
    List.iteri
      (fun row agg ->
        List.iteri
          (fun member cid ->
            let csw = get_sw t cid in
            if csw.coords = None then begin
              register_member t ~stripe:row ~member cid;
              assign_coords t csw (Coords.Core { stripe = row; member })
            end)
          (core_neighbor_ids agg))
      ref_aggs;
    let classify sw =
      let labels =
        List.filter_map
          (fun cid ->
            match Hashtbl.find_opt t.switches cid with
            | Some { coords = Some (Coords.Core c); _ } -> Some (c.stripe, c.member)
            | _ -> None)
          (core_neighbor_ids sw)
      in
      if List.length labels <> u then None
      else begin
        match
          (List.sort_uniq compare (List.map fst labels),
           List.sort_uniq compare (List.map snd labels))
        with
        | [ row ], _ -> Some row
        | _, [ member ] -> Some (u + member)
        | _, _ -> None
      end
    in
    let unlabelled =
      Hashtbl.fold
        (fun _ sw acc ->
          if sw.level = Some Ldp_msg.Aggregation && sw.coords = None then sw :: acc else acc)
        t.switches []
      |> by_sw_id
    in
    List.iter
      (fun sw ->
        match classify sw with
        | Some stripe ->
          (match pod_of_component t (Uf.find t.pod_uf sw.sw_id) with
           | Some pod -> assign_coords t sw (Coords.Agg { pod; stripe })
           | None -> ())
        | None -> ())
      unlabelled
  end

(* Flat wiring: spines have no aggregation adjacency at all, so they are
   labelled in one global pass — member = rank among spine switch ids,
   under the single pseudo-stripe 0 — once every spine has reported a
   level. Rank over the full spine set is deterministic in switch ids,
   so reclaimed labels always agree with re-derived ones. *)
let try_assign_flat t =
  let cores =
    Hashtbl.fold
      (fun _ sw acc -> if sw.level = Some Ldp_msg.Core then sw :: acc else acc)
      t.switches []
    |> by_sw_id
  in
  if List.length cores = t.spec.MR.num_cores then
    List.iteri
      (fun member sw ->
        if sw.coords = None then begin
          register_member t ~stripe:0 ~member sw.sw_id;
          assign_coords t sw (Coords.Core { stripe = 0; member })
        end)
      cores

let try_assign_all t =
  match t.spec.MR.wiring with
  | MR.Stripes -> Hashtbl.iter (fun _ sw -> try_assign t sw) t.switches
  | MR.Ab_stripes -> try_assign_ab t
  | MR.Flat -> try_assign_flat t

let on_report t ~switch_id ~level ~neighbors ~host_ports =
  t.c.m_reports <- t.c.m_reports + 1;
  let sw = get_sw t switch_id in
  sw.level <- level;
  sw.neighbors <- neighbors;
  sw.host_ports <- host_ports;
  List.iter
    (fun (_, nbr, nbr_level) ->
      match (level, nbr_level) with
      | Some Ldp_msg.Edge, Some Ldp_msg.Aggregation
      | Some Ldp_msg.Aggregation, Some Ldp_msg.Edge ->
        union_labelled t.pod_uf t.pod_ids switch_id nbr
      | Some Ldp_msg.Aggregation, Some Ldp_msg.Core
      | Some Ldp_msg.Core, Some Ldp_msg.Aggregation ->
        union_labelled t.stripe_uf t.stripe_ids switch_id nbr
      | _, _ -> ())
    neighbors;
  try_assign_all t

(* a switch re-registers coordinates granted by a previous fabric-manager
   incarnation: adopt its labels verbatim and advance the allocators so
   fresh assignments never collide with reclaimed ones *)
let on_reclaim t ~switch_id coords =
  let sw = get_sw t switch_id in
  sw.coords <- Some coords;
  sw.level <- Some (Coords.level coords);
  let claim_pod pod =
    Hashtbl.replace t.pod_ids (Uf.find t.pod_uf switch_id) pod;
    t.next_pod <- max t.next_pod (pod + 1)
  in
  let claim_stripe stripe =
    Hashtbl.replace t.stripe_ids (Uf.find t.stripe_uf switch_id) stripe;
    t.next_stripe <- max t.next_stripe (stripe + 1)
  in
  match coords with
  | Coords.Edge { pod; position } ->
    claim_pod pod;
    let taken =
      match Hashtbl.find_opt t.positions pod with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.positions pod tbl;
        tbl
    in
    Hashtbl.replace taken position switch_id
  | Coords.Agg { pod; stripe } ->
    claim_pod pod;
    claim_stripe stripe
  | Coords.Core { stripe; member } ->
    claim_stripe stripe;
    let tbl =
      match Hashtbl.find_opt t.members stripe with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.members stripe tbl;
        tbl
    in
    Hashtbl.replace tbl member switch_id

let on_propose_position t ~switch_id ~position =
  let sw = get_sw t switch_id in
  let deny () = Ctrl.send_to_switch t.ctrl switch_id (Msg.Position_denied { position }) in
  if sw.level <> Some Ldp_msg.Edge || position < 0 || position >= t.spec.Topology.Multirooted.edges_per_pod
  then deny ()
  else begin
    match sw.coords with
    | Some (Coords.Edge _ as c) -> Ctrl.send_to_switch t.ctrl switch_id (Msg.Assign_coords c)
    | Some _ -> deny ()
    | None ->
      let root = Uf.find t.pod_uf switch_id in
      let pod =
        match pod_of_component t root with
        | Some pod -> pod
        | None ->
          let pod = t.next_pod in
          t.next_pod <- pod + 1;
          Hashtbl.replace t.pod_ids root pod;
          pod
      in
      let taken =
        match Hashtbl.find_opt t.positions pod with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace t.positions pod tbl;
          tbl
      in
      (match Hashtbl.find_opt taken position with
       | Some owner when owner <> switch_id -> deny ()
       | Some _ | None ->
         Hashtbl.replace taken position switch_id;
         assign_coords t sw (Coords.Edge { pod; position });
         (* an edge joining a pod may unblock aggregation/core labelling *)
         try_assign_all t)
  end

(* ---------------- multicast ---------------- *)

let group_state t group =
  match Hashtbl.find_opt t.groups group with
  | Some g -> g
  | None ->
    let g = { receivers = Hashtbl.create 4; core_sw = None; programmed = [] } in
    Hashtbl.replace t.groups group g;
    g

let int_compare (a : int) b = compare a b

(* switch ids are unique within a group, so ordering by id alone matches
   the old tuple order without polymorphic comparisons on the port lists *)
let by_switch_id (a, _) (b, _) = int_compare a b

let receiver_list g =
  Hashtbl.fold
    (fun sw ports acc ->
      let ps = Hashtbl.fold (fun p () acc -> p :: acc) ports [] in
      if ps = [] then acc else (sw, List.sort int_compare ps) :: acc)
    g.receivers []
  |> List.sort by_switch_id

(* Transit map for tree construction: (core switch id, pod) -> the
   aggregation switch carrying that pod's traffic through that core.
   Physically unique under every striped wiring, and derivable from
   either endpoint's neighbor report, so fills from both sides agree. *)
let build_transit t =
  let transit = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ sw ->
      match sw.coords with
      | Some (Coords.Agg a) ->
        List.iter
          (fun (_, nbr, nl) ->
            if nl = Some Ldp_msg.Core && not (Hashtbl.mem transit (nbr, a.pod)) then
              Hashtbl.replace transit (nbr, a.pod) sw)
          sw.neighbors
      | Some (Coords.Core _) ->
        List.iter
          (fun (_, nbr, nl) ->
            if nl = Some Ldp_msg.Aggregation then
              match Hashtbl.find_opt t.switches nbr with
              | Some ({ coords = Some (Coords.Agg a); _ } as agg)
                when not (Hashtbl.mem transit (sw.sw_id, a.pod)) ->
                Hashtbl.replace transit (sw.sw_id, a.pod) agg
              | _ -> ())
          sw.neighbors
      | _ -> ())
    t.switches;
  transit

let core_viable t transit ~core_sw_id ~stripe ~member ~receiver_coords =
  List.for_all
    (fun (pod, edge_pos) ->
      (not (Fault.Set.agg_core_down t.faults ~pod ~stripe ~member))
      && (t.spec.MR.wiring = MR.Flat
          ||
          match Hashtbl.find_opt transit (core_sw_id, pod) with
          | Some (agg : sw_info) ->
            (match agg.coords with
             | Some (Coords.Agg a) ->
               not (Fault.Set.edge_agg_down t.faults ~pod ~edge_pos ~stripe:a.stripe)
             | _ -> false)
          | None -> false))
    receiver_coords

let send_programs t group (targets : (int * int list) list) g =
  (* clear switches no longer in the tree, then program current ones;
     hashed lookups keep the diff linear in the tree size *)
  let target_set = Hashtbl.create (List.length targets * 2) in
  List.iter (fun (sw, ports) -> Hashtbl.replace target_set sw ports) targets;
  let old_set = Hashtbl.create (List.length g.programmed * 2) in
  List.iter (fun (sw, ports) -> Hashtbl.replace old_set sw ports) g.programmed;
  List.iter
    (fun (sw, _) ->
      if not (Hashtbl.mem target_set sw) then
        Ctrl.send_to_switch t.ctrl sw (Msg.Mcast_program { group; out_ports = [] }))
    g.programmed;
  List.iter
    (fun (sw, ports) ->
      match Hashtbl.find_opt old_set sw with
      | Some old when old = ports -> ()
      | Some _ | None -> Ctrl.send_to_switch t.ctrl sw (Msg.Mcast_program { group; out_ports = ports }))
    targets;
  g.programmed <- targets

(* Broadcast receivers are derived from the reported host ports of the
   edge switches, not from joins, so they can be read straight off the
   switch table instead of materialising a receiver hash per edge. *)
let broadcast_receivers t =
  List.filter_map
    (fun sw ->
      if sw.host_ports = [] then None
      else Some (sw.sw_id, List.sort_uniq int_compare sw.host_ports))
    (edges_of t)
  |> List.sort by_switch_id

let recompute_group t group =
  t.c.m_mcast_recomputes <- t.c.m_mcast_recomputes + 1;
  let g = group_state t group in
  let receivers =
    if Ipv4_addr.is_broadcast group then broadcast_receivers t else receiver_list g
  in
  if receivers = [] then begin
    g.core_sw <- None;
    send_programs t group [] g
  end
  else begin
    let receiver_coords =
      List.filter_map
        (fun (sw, _) ->
          match switch_coords t sw with
          | Some (Coords.Edge e) -> Some (e.pod, e.position)
          | _ -> None)
        receivers
    in
    let transit = build_transit t in
    let cores = sorted_cores t in
    let n = List.length cores in
    let chosen =
      if n = 0 then None
      else begin
        let start = Ipv4_addr.multicast_group group mod n in
        let arr = Array.of_list cores in
        let rec probe i =
          if i >= n then None
          else begin
            let stripe, member, sw = arr.((start + i) mod n) in
            if core_viable t transit ~core_sw_id:sw.sw_id ~stripe ~member ~receiver_coords then
              Some (stripe, member, sw)
            else probe (i + 1)
          end
        in
        probe 0
      end
    in
    match chosen with
    | None ->
      g.core_sw <- None;
      send_programs t group [] g
    | Some (_stripe, _member, core_sw) ->
      (match g.core_sw with
       | Some prev when prev <> core_sw.sw_id ->
         tracef t Eventsim.Trace.Info "multicast group %a re-rooted: core %d -> %d" Ipv4_addr.pp
           group prev core_sw.sw_id
       | _ -> ());
      g.core_sw <- Some core_sw.sw_id;
      let receiver_pods = List.sort_uniq int_compare (List.map fst receiver_coords) in
      let flat = t.spec.MR.wiring = MR.Flat in
      (* the agg carrying a pod's traffic through the chosen core — under
         plain striping this is the pod's agg of the core's stripe, under
         AB whatever agg physically fronts the core in that pod *)
      let transit_agg pod = Hashtbl.find_opt transit (core_sw.sw_id, pod) in
      (* receiver edges grouped by pod, and their host ports by switch, so
         the per-agg and per-edge loops below stay linear in the tree *)
      let recv_by_pod = Hashtbl.create 16 in
      let recv_ports = Hashtbl.create (List.length receivers * 2) in
      List.iter
        (fun (rsw, ports) ->
          Hashtbl.replace recv_ports rsw ports;
          match switch_coords t rsw with
          | Some (Coords.Edge e) ->
            let prev = try Hashtbl.find recv_by_pod e.pod with Not_found -> [] in
            Hashtbl.replace recv_by_pod e.pod (rsw :: prev)
          | _ -> ())
        receivers;
      let targets = ref [] in
      let add sw ports =
        let ports = List.sort_uniq int_compare ports in
        if ports <> [] then targets := (sw, ports) :: !targets
      in
      (* core: one port per receiver pod — toward the pod's transit agg,
         or straight down to the pod's leaf under flat wiring *)
      let core_ports =
        List.filter_map
          (fun pod ->
            if flat then
              match (try Hashtbl.find recv_by_pod pod with Not_found -> []) with
              | rsw :: _ -> port_to core_sw rsw
              | [] -> None
            else
              match transit_agg pod with
              | Some agg -> port_to core_sw agg.sw_id
              | None -> None)
          receiver_pods
      in
      add core_sw.sw_id core_ports;
      (* transit aggregation switches, in every pod: uplink toward the
         chosen core (so local senders can go up), plus down-ports to
         receiver edges in their pod *)
      if not flat then
        Hashtbl.iter
          (fun _ sw ->
            match sw.coords with
            | Some (Coords.Agg a) -> (
              match transit_agg a.pod with
              | Some tsw when tsw.sw_id = sw.sw_id ->
                let up = match port_to sw core_sw.sw_id with Some p -> [ p ] | None -> [] in
                let down =
                  List.filter_map (port_to sw)
                    (try Hashtbl.find recv_by_pod a.pod with Not_found -> [])
                in
                add sw.sw_id (up @ down)
              | _ -> ())
            | _ -> ())
          t.switches;
      (* every edge switch: uplink toward its transit agg — or the chosen
         core itself under flat wiring (sender path) — plus local
         receiver host ports *)
      List.iter
        (fun sw ->
          match sw.coords with
          | Some (Coords.Edge e) ->
            let up =
              if flat then
                match port_to sw core_sw.sw_id with Some p -> [ p ] | None -> []
              else
                match transit_agg e.pod with
                | Some agg -> (match port_to sw agg.sw_id with Some p -> [ p ] | None -> [])
                | None -> []
            in
            let local = try Hashtbl.find recv_ports sw.sw_id with Not_found -> [] in
            add sw.sw_id (up @ local)
          | _ -> ())
        (edges_of t);
      send_programs t group (List.sort by_switch_id !targets) g
  end

let recompute_all_groups t = Hashtbl.iter (fun group _ -> recompute_group t group) t.groups

(* Broadcast is the special multicast group spanning every host (paper
   §3.4): its receiver set is derived from the reported host ports of all
   edge switches rather than from joins, and it rides the same tree
   computation and installation machinery. *)
let recompute_broadcast t = recompute_group t Ipv4_addr.broadcast

(* ---------------- faults ---------------- *)

let translate_fault t a b =
  let ca = switch_coords t a and cb = switch_coords t b in
  match (ca, cb) with
  | Some (Coords.Edge e), Some (Coords.Agg g) | Some (Coords.Agg g), Some (Coords.Edge e) ->
    if e.pod = g.pod then
      Some (Fault.Edge_agg { pod = e.pod; edge_pos = e.position; stripe = g.stripe })
    else None
  | Some (Coords.Agg g), Some (Coords.Core c) | Some (Coords.Core c), Some (Coords.Agg g) ->
    (* keyed by the core's own (row, member) label: (pod, core) pins down
       one physical link under every wiring. Under plain striping the
       core's row equals the agg's stripe, so the key is unchanged;
       under AB a column agg's cores span all rows and only the core's
       label is unambiguous. *)
    Some (Fault.Agg_core { pod = g.pod; stripe = c.stripe; member = c.member })
  | Some (Coords.Edge e), Some (Coords.Core c) | Some (Coords.Core c), Some (Coords.Edge e) ->
    (* flat wiring: leaf–spine links live in the same key space *)
    if t.spec.MR.wiring = MR.Flat then
      Some (Fault.Agg_core { pod = e.pod; stripe = c.stripe; member = c.member })
    else None
  | _, _ -> None

let broadcast_faults t =
  t.c.m_fault_broadcasts <- t.c.m_fault_broadcasts + 1;
  tracef t Eventsim.Trace.Warn "fault matrix now %d entries; broadcasting"
    (Fault.Set.cardinal t.faults);
  Ctrl.broadcast_to_switches t.ctrl (Msg.Fault_update { faults = Fault.Set.elements t.faults })

(* The fault matrix row of pod p is owned by shard [p mod fm_shards]:
   every delta is logged there, so a failed-over shard can rebuild its
   rows (the canonical [Fault.Set] stays whole for dissemination). *)
let log_fault t fault active =
  log_entry t.shards.(Fault.pod_of fault mod t.fm_shards) (R_fault { fault; active })

let on_fault_notice t ~switch_id ~neighbor =
  t.c.m_fault_notices <- t.c.m_fault_notices + 1;
  match translate_fault t switch_id neighbor with
  | Some f when not (Fault.Set.mem t.faults f) ->
    Fault.Set.add t.faults f;
    log_fault t f true;
    broadcast_faults t;
    recompute_all_groups t
  | Some _ | None -> ()

let on_recovery_notice t ~switch_id ~neighbor =
  match translate_fault t switch_id neighbor with
  | Some f ->
    (* broadcast the matrix even when the fault was never recorded here: a
       notice for an unknown fault means some switch's local copy has
       drifted (e.g. the recovery raced a fabric-manager or switch
       restart), and switches replace — not merge — their sets on
       Fault_update, so a broadcast heals the drift. Recoveries are rare
       enough that the extra traffic is negligible. *)
    if Fault.Set.mem t.faults f then begin
      Fault.Set.remove t.faults f;
      log_fault t f false
    end;
    broadcast_faults t;
    recompute_all_groups t
  | None -> ()

(* A rebooted switch lost its RAM but kept its place in the wiring:
   re-grant the coordinates this instance still holds and replay every
   piece of dependent soft state — fault matrix, host bindings (edges
   only), multicast programming — so the switch converges without full
   rediscovery. Unknown switch, or none granted yet: stay silent; the
   ordinary discovery path places it from scratch. *)
let on_coords_request t ~switch_id =
  match Hashtbl.find_opt t.switches switch_id with
  | Some ({ coords = Some c; _ } as swi) ->
    tracef t Eventsim.Trace.Info "switch %d rebooted; replaying state for %a" switch_id Coords.pp
      c;
    Ctrl.send_to_switch t.ctrl switch_id (Msg.Assign_coords c);
    Ctrl.send_to_switch t.ctrl switch_id
      (Msg.Fault_update { faults = Fault.Set.elements t.faults });
    (match c with
     | Coords.Edge _ ->
       (* shard-scoped resync: all of a rebooted edge's bindings live on
          the one shard its announced IPs hashed to, so replay only that
          shard's replication log — foreign shards are never read. A
          switch that never announced a host has nothing to restore. *)
       let bindings =
         match swi.owning_shard with
         | None -> []
         | Some s ->
           let tbl = Hashtbl.create 32 in
           replay_bindings t.shards.(s) tbl;
           Hashtbl.fold
             (fun _ (b : Msg.host_binding) acc ->
               if b.Msg.edge_switch = switch_id then b :: acc else acc)
             tbl []
           |> List.sort (fun (a : Msg.host_binding) b ->
                  int_compare (Ipv4_addr.to_int a.Msg.ip) (Ipv4_addr.to_int b.Msg.ip))
       in
       if bindings <> [] then
         Ctrl.send_to_switch t.ctrl switch_id (Msg.Host_restore { bindings })
     | Coords.Agg _ | Coords.Core _ -> ());
    Hashtbl.iter
      (fun group g ->
        match List.assoc_opt switch_id g.programmed with
        | Some ports when ports <> [] ->
          Ctrl.send_to_switch t.ctrl switch_id (Msg.Mcast_program { group; out_ports = ports })
        | Some _ | None -> ())
      t.groups
  | Some { coords = None; _ } | None -> ()

(* ---------------- ARP & host mappings ---------------- *)

let answer_arp t ~to_sw ~target_ip ~target_pmac ~requester_ip ~requester_port =
  Ctrl.send_to_switch t.ctrl to_sw
    (Msg.Arp_answer { target_ip; target_pmac; requester_ip; requester_port; gen = t.arp_gen })

let on_arp_query t ~from_sw ~requester_ip ~requester_pmac ~requester_port ~target_ip =
  t.c.m_arp_queries <- t.c.m_arp_queries + 1;
  let respond () =
    match resolve t target_ip with
    | Some pmac ->
      t.c.m_arp_hits <- t.c.m_arp_hits + 1;
      answer_arp t ~to_sw:from_sw ~target_ip ~target_pmac:(Some pmac) ~requester_ip
        ~requester_port
    | None ->
      t.c.m_arp_misses <- t.c.m_arp_misses + 1;
      let entry = { from_sw; requester_ip; requester_port } in
      let sh = shard_of t target_ip in
      let waiting = try Hashtbl.find sh.sh_pending target_ip with Not_found -> [] in
      (* a host retrying the same unresolved target re-misses here: keep
         one pending entry per (switch, requester, port) or the eventual
         announce would multiply the replies *)
      if not (List.mem entry waiting) then
        Hashtbl.replace sh.sh_pending target_ip (entry :: waiting);
      (* broadcast fallback: every edge switch re-emits the query on its
         host ports *)
      List.iter
        (fun sw ->
          Ctrl.send_to_switch t.ctrl sw.sw_id
            (Msg.Arp_flood { requester_ip; requester_pmac; target_ip }))
        (edges_of t)
  in
  (* model the fabric manager's per-request service time *)
  ignore (Eventsim.Engine.schedule t.engine ~delay:t.config.Config.fm_arp_service_time respond)

(* A dead or cold-rebooting edge switch must not be sent ARP replies: it
   lost the requester state the reply refers to (and under a reboot the
   reply would race the resync). Entries naming it are dropped — the
   requesting host's retry/backoff path re-resolves once the fabric
   heals. Fired from the control network when a switch unregisters. *)
let on_switch_unregistered t switch_id =
  for s = 0 to t.fm_shards - 1 do
    let sh = t.shards.(s) in
    let stale =
      Hashtbl.fold
        (fun ip waiting acc ->
          if List.exists (fun w -> w.from_sw = switch_id) waiting then (ip, waiting) :: acc
          else acc)
        sh.sh_pending []
    in
    List.iter
      (fun (ip, waiting) ->
        let keep, drop = List.partition (fun w -> w.from_sw <> switch_id) waiting in
        t.c.m_pending_dropped <- t.c.m_pending_dropped + List.length drop;
        if keep = [] then Hashtbl.remove sh.sh_pending ip
        else Hashtbl.replace sh.sh_pending ip keep)
      stale
  done

let on_host_announce t (b : Msg.host_binding) =
  t.c.m_host_announces <- t.c.m_host_announces + 1;
  let sh = shard_of t b.Msg.ip in
  (match Hashtbl.find_opt sh.sh_bindings b.Msg.ip with
   | Some old when not (Pmac.equal old.Msg.pmac b.Msg.pmac) ->
     (* the IP moved: a VM migration (or host re-plug). Invalidate at the
        previous edge switch so stale senders are corrected, and advance
        the ARP generation so every edge-cached answer fabric-wide goes
        stale and re-resolves. *)
     t.c.m_migrations <- t.c.m_migrations + 1;
     tracef t Eventsim.Trace.Info "migration: %a moved %a -> %a" Ipv4_addr.pp b.Msg.ip Pmac.pp
       old.Msg.pmac Pmac.pp b.Msg.pmac;
     Ctrl.send_to_switch t.ctrl old.Msg.edge_switch
       (Msg.Invalidate_pmac { ip = b.Msg.ip; old_pmac = old.Msg.pmac; new_pmac = b.Msg.pmac });
     t.arp_gen <- t.arp_gen + 1;
     Ctrl.broadcast_to_switches t.ctrl (Msg.Arp_gen { gen = t.arp_gen })
   | Some _ | None -> ());
  Hashtbl.replace sh.sh_bindings b.Msg.ip b;
  sh.sh_serve <- [||];
  log_entry sh (R_bind b);
  (* remember which shard holds this edge's bindings, for shard-scoped
     resync on reboot (host IPs of one edge all share its pod) *)
  (match Hashtbl.find_opt t.switches b.Msg.edge_switch with
   | Some swi -> swi.owning_shard <- Some (shard_index t b.Msg.ip)
   | None -> ());
  jemit t (Journal.Binding { ip = b.Msg.ip });
  (* answer anyone who was waiting on this mapping — except switches that
     died while the resolution was in flight *)
  match Hashtbl.find_opt sh.sh_pending b.Msg.ip with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove sh.sh_pending b.Msg.ip;
    List.iter
      (fun w ->
        if Ctrl.has_switch t.ctrl w.from_sw then
          answer_arp t ~to_sw:w.from_sw ~target_ip:b.Msg.ip ~target_pmac:(Some b.Msg.pmac)
            ~requester_ip:w.requester_ip ~requester_port:w.requester_port
        else t.c.m_pending_dropped <- t.c.m_pending_dropped + 1)
      waiting

(* ---------------- dispatch ---------------- *)

let handle t ~from:_ (msg : Msg.to_fm) =
  Obs.Counter.incr t.m_ctrl_msgs;
  match msg with
  | Msg.Neighbor_report { switch_id; level; neighbors; host_ports } ->
    on_report t ~switch_id ~level ~neighbors ~host_ports;
    recompute_broadcast t
  | Msg.Propose_position { switch_id; position } ->
    on_propose_position t ~switch_id ~position;
    (* a granted position may complete the broadcast tree's receiver set *)
    recompute_broadcast t
  | Msg.Arp_query { switch_id; requester_ip; requester_pmac; requester_port; target_ip } ->
    on_arp_query t ~from_sw:switch_id ~requester_ip ~requester_pmac ~requester_port ~target_ip
  | Msg.Host_announce b -> on_host_announce t b
  | Msg.Fault_notice { switch_id; neighbor; _ } -> on_fault_notice t ~switch_id ~neighbor
  | Msg.Recovery_notice { switch_id; neighbor; _ } -> on_recovery_notice t ~switch_id ~neighbor
  | Msg.Mcast_join { switch_id; group; port } ->
    let g = group_state t group in
    let ports =
      match Hashtbl.find_opt g.receivers switch_id with
      | Some ports -> ports
      | None ->
        let ports = Hashtbl.create 4 in
        Hashtbl.replace g.receivers switch_id ports;
        ports
    in
    Hashtbl.replace ports port ();
    log_entry (core_shard t) (R_mcast { group; switch = switch_id; port; join = true });
    recompute_group t group
  | Msg.Reclaim_coords { switch_id; coords } -> on_reclaim t ~switch_id coords
  | Msg.Coords_request { switch_id } -> on_coords_request t ~switch_id
  | Msg.Mcast_leave { switch_id; group; port } ->
    let g = group_state t group in
    (match Hashtbl.find_opt g.receivers switch_id with
     | Some ports ->
       Hashtbl.remove ports port;
       if Hashtbl.length ports = 0 then Hashtbl.remove g.receivers switch_id
     | None -> ());
    log_entry (core_shard t) (R_mcast { group; switch = switch_id; port; join = false });
    recompute_group t group

(* ---------------- shard failover & integrity ---------------- *)

let fnv1a_str h s =
  String.fold_left
    (fun h c -> (h lxor Char.code c) * 0x100000001b3 land max_int)
    h s

let render_binding (b : Msg.host_binding) =
  Printf.sprintf "%d:%d:%d:%d" (Ipv4_addr.to_int b.Msg.ip) (Mac_addr.to_int b.Msg.amac)
    (Mac_addr.to_int (Pmac.to_mac b.Msg.pmac))
    b.Msg.edge_switch

let shard_binding_digest sh =
  let rows = Hashtbl.fold (fun _ b acc -> render_binding b :: acc) sh.sh_bindings [] in
  Printf.sprintf "%016x"
    (* FNV offset basis truncated to 62 bits, as elsewhere in the repo *)
    (List.fold_left fnv1a_str 0x3bf29ce484222325 (List.sort compare rows))

let replay_faults sh =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | R_fault { fault; active } ->
        if active then Hashtbl.replace tbl fault () else Hashtbl.remove tbl fault
      | R_bind _ | R_mcast _ -> ())
    (List.rev sh.sh_log);
  Hashtbl.fold (fun f () acc -> f :: acc) tbl [] |> List.sort compare

let replay_mcast sh =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | R_mcast { group; switch; port; join } ->
        let key = (Ipv4_addr.to_int group, switch, port) in
        if join then Hashtbl.replace tbl key () else Hashtbl.remove tbl key
      | R_bind _ | R_fault _ -> ())
    (List.rev sh.sh_log);
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let live_mcast t =
  Hashtbl.fold
    (fun group g acc ->
      Hashtbl.fold
        (fun sw ports acc ->
          Hashtbl.fold (fun p () acc -> (Ipv4_addr.to_int group, sw, p) :: acc) ports acc)
        g.receivers acc)
    t.groups []
  |> List.sort compare

(* Cross-shard consistency, checked both directions: every live binding
   sits on (and only on) its owning shard and is reproduced by that
   shard's log; every logged final state is live. Also run by the mc
   invariant pack and the chaos quiescent checks. *)
let shard_integrity t =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  for s = 0 to t.fm_shards - 1 do
    let sh = t.shards.(s) in
    Hashtbl.iter
      (fun ip (b : Msg.host_binding) ->
        if shard_index t ip <> s then
          bad "fm-shard %d holds binding %s owned by shard %d" s
            (Ipv4_addr.to_string ip) (shard_index t ip);
        match lookup_binding t ip with
        | Some b' when b' = b -> ()
        | Some _ -> bad "sharded lookup disagrees with shard %d for %s" s (Ipv4_addr.to_string ip)
        | None -> bad "sharded lookup misses %s held by shard %d" (Ipv4_addr.to_string ip) s)
      sh.sh_bindings;
    (* the replication log must reproduce the live table, both ways *)
    let rebuilt = Hashtbl.create (Hashtbl.length sh.sh_bindings) in
    replay_bindings sh rebuilt;
    Hashtbl.iter
      (fun ip b ->
        match Hashtbl.find_opt sh.sh_bindings ip with
        | Some b' when b' = b -> ()
        | Some _ -> bad "shard %d: log and live binding differ for %s" s (Ipv4_addr.to_string ip)
        | None -> bad "shard %d: log has binding %s absent live" s (Ipv4_addr.to_string ip))
      rebuilt;
    Hashtbl.iter
      (fun ip _ ->
        if not (Hashtbl.mem rebuilt ip) then
          bad "shard %d: live binding %s absent from log" s (Ipv4_addr.to_string ip))
      sh.sh_bindings;
    (* fault rows owned by this shard match the canonical matrix *)
    let expected = replay_faults sh in
    let actual =
      List.filter (fun f -> Fault.pod_of f mod t.fm_shards = s) (Fault.Set.elements t.faults)
      |> List.sort compare
    in
    if expected <> actual then
      bad "shard %d: fault rows diverge (log %d, live %d)" s (List.length expected)
        (List.length actual)
  done;
  (* multicast membership is owned by the core shard *)
  if replay_mcast (core_shard t) <> live_mcast t then
    bad "core shard: multicast membership log diverges from live groups";
  List.rev !violations

(* First-class shard failover: the shard loses its RAM. Pending ARPs
   referencing the failed pod are dropped (the host retry path recovers
   them); bindings are wiped and rebuilt from the replication log; the
   rebuilt state is checkpointed against the pre-failure digest and the
   cross-shard integrity pack. Returns true iff the rebuild verified.
   Keyed by pod — not shard index — so chaos plans mean the same thing
   for every fm_shards count. *)
let failover_shard t ~pod =
  t.c.m_shard_failovers <- t.c.m_shard_failovers + 1;
  let s = pod mod t.fm_shards in
  let sh = t.shards.(s) in
  tracef t Eventsim.Trace.Warn "fm shard %d (pod %d) failing over: rebuilding from log" s pod;
  let stale =
    Hashtbl.fold
      (fun ip w acc -> if pod_of_ip ip = pod then (ip, w) :: acc else acc)
      sh.sh_pending []
  in
  List.iter
    (fun (ip, w) ->
      t.c.m_pending_dropped <- t.c.m_pending_dropped + List.length w;
      Hashtbl.remove sh.sh_pending ip)
    stale;
  let before = shard_binding_digest sh in
  Hashtbl.reset sh.sh_bindings;
  replay_bindings sh sh.sh_bindings;
  sh.sh_serve <- [||];
  let after = shard_binding_digest sh in
  jemit t (Journal.Fm_shard_failover { pod });
  before = after && shard_integrity t = []

let create ?(obs = Obs.null) ?(fm_shards = 1) engine config ctrl ~spec =
  let t =
    { engine; config; ctrl; obs;
      m_ctrl_msgs = Obs.counter obs ~subsystem:"fm" ~name:"ctrl_msgs" ();
      spec;
      switches = Hashtbl.create 128;
      pod_uf = Uf.create ();
      stripe_uf = Uf.create ();
      pod_ids = Hashtbl.create 16;
      next_pod = 0;
      stripe_ids = Hashtbl.create 16;
      next_stripe = 0;
      positions = Hashtbl.create 16;
      members = Hashtbl.create 16;
      fm_shards;
      shards =
        Array.init (fm_shards + 1) (fun _ ->
            { sh_bindings = Hashtbl.create 1024;
              sh_pending = Hashtbl.create 16;
              sh_log = [];
              sh_replays = 0;
              sh_serve = [||] });
      arp_gen = 0;
      faults = Fault.Set.create ();
      groups = Hashtbl.create 16;
      journal = None;
      rb_idx = [||];
      rb_shard = Bytes.empty;
      rb_counts = [||];
      c =
        { m_arp_queries = 0; m_arp_hits = 0; m_arp_misses = 0; m_host_announces = 0;
          m_migrations = 0; m_fault_notices = 0; m_fault_broadcasts = 0; m_mcast_recomputes = 0;
          m_reports = 0; m_pending_dropped = 0; m_shard_failovers = 0 } }
  in
  if fm_shards < 1 then invalid_arg "Fabric_manager.create: fm_shards must be >= 1";
  Obs.add_probe obs ~name:"fm" (fun () ->
      let c name v = Obs.sample ~subsystem:"fm" ~name (Obs.Count v) in
      let g name v = Obs.sample ~subsystem:"fm" ~name (Obs.Value (float_of_int v)) in
      [ c "arp_queries" t.c.m_arp_queries;
        c "arp_hits" t.c.m_arp_hits;
        c "arp_misses" t.c.m_arp_misses;
        c "host_announces" t.c.m_host_announces;
        c "migrations" t.c.m_migrations;
        c "fault_notices" t.c.m_fault_notices;
        c "fault_broadcasts" t.c.m_fault_broadcasts;
        c "mcast_recomputes" t.c.m_mcast_recomputes;
        c "reports" t.c.m_reports;
        c "pending_dropped" t.c.m_pending_dropped;
        c "shard_failovers" t.c.m_shard_failovers;
        g "bindings" (binding_count t);
        g "known_switches" (Hashtbl.length t.switches);
        g "faults" (Fault.Set.cardinal t.faults);
        g "pending_arps" (pending_count t);
        g "fm_shards" t.fm_shards;
        g "arp_gen" t.arp_gen ]);
  Ctrl.register_fm ctrl (fun ~from msg -> handle t ~from msg);
  Ctrl.set_unregister_hook ctrl (fun switch_id -> on_switch_unregistered t switch_id);
  (* (re)built instance: ask every reachable switch to resync, which is a
     no-op at first boot (nothing registered yet) and reconstructs the
     soft state after a fabric-manager restart *)
  Ctrl.broadcast_to_switches ctrl Msg.Resync_request;
  t
