(** Protocol constants for a PortLand deployment.

    Defaults follow the paper where it names a number (10 ms LDM period)
    and use stated assumptions elsewhere (out-of-band control network,
    modelled as a fixed one-way latency). Every experiment can override
    any field. *)

type t = {
  ldm_period : Eventsim.Time.t;
      (** interval between Location Discovery Messages on every port *)
  ldm_timeout : Eventsim.Time.t;
      (** silence on a switch-facing port after which it is declared
          faulty (the paper's failure detector) *)
  ctrl_latency : Eventsim.Time.t;
      (** one-way latency of the out-of-band control network between any
          switch and the fabric manager *)
  arp_cache_timeout : Eventsim.Time.t;
      (** host ARP cache entry lifetime *)
  arp_retry : Eventsim.Time.t;
      (** host re-sends an unanswered ARP request after this long (the
          first retry; later ones stretch by {!field-arp_backoff}) *)
  arp_retry_limit : int;
      (** retransmissions after which an unanswered resolution is
          abandoned (queued packets dropped, counted in
          [host/arp_abandoned]) — no more infinite fixed-period retry *)
  arp_backoff : float;
      (** exponential backoff multiplier applied to the retry interval
          after every retransmission; [1.0] reproduces the historical
          fixed-period behaviour *)
  host_announce_delay : Eventsim.Time.t;
      (** hosts send their boot-time gratuitous ARP this long after the
          simulation starts (small per-host jitter is added on top) *)
  fm_arp_service_time : Eventsim.Time.t;
      (** modelled fabric-manager processing time per ARP request *)
  forward_stale : bool;
      (** extension (off by default, as in the paper): edge switches
          re-forward packets trapped on a migrated VM's stale PMAC to the
          VM's new PMAC instead of dropping them *)
  host_pending_limit : int;
      (** packets a host queues per destination while ARP resolves *)
}

val default : t

val pp : Format.formatter -> t -> unit
