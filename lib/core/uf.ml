type t = {
  parent : (int, int) Hashtbl.t;
  rank : (int, int) Hashtbl.t;
  (* root -> every key of its component; merged on union so [members] is
     O(component size) rather than a scan of all keys ever seen *)
  comp : (int, int list) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64; comp = Hashtbl.create 64 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None ->
    Hashtbl.replace t.parent x x;
    Hashtbl.replace t.comp x [ x ];
    x
  | Some p when p = x -> x
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root

let comp_of t root = try Hashtbl.find t.comp root with Not_found -> [ root ]

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let rank x = try Hashtbl.find t.rank x with Not_found -> 0 in
    let ka = rank ra and kb = rank rb in
    let winner, loser =
      if ka < kb then (rb, ra)
      else if ka > kb then (ra, rb)
      else begin
        Hashtbl.replace t.rank ra (ka + 1);
        (ra, rb)
      end
    in
    Hashtbl.replace t.parent loser winner;
    Hashtbl.replace t.comp winner (List.rev_append (comp_of t loser) (comp_of t winner));
    Hashtbl.remove t.comp loser
  end

let same t a b = find t a = find t b

let members t x = comp_of t (find t x)
