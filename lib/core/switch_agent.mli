(** Per-switch PortLand control plane.

    One agent runs on every switch. It owns the switch's {!Ldp} instance,
    talks to the fabric manager over the control network, and programs the
    local {!Switchfab.Flow_table}. Its behaviour specializes once LDP and
    the fabric manager have placed the switch:

    - {b Edge switches} assign PMACs to hosts (one vmid counter per host
      port), announce IP↔PMAC↔AMAC bindings to the fabric manager,
      rewrite source AMAC→PMAC on frames entering the fabric and
      destination PMAC→AMAC on delivery, intercept every ARP (proxying
      who-has queries to the FM and emitting the FM's broadcast-fallback
      floods), intercept IGMP joins/leaves, and — after a VM migrates
      away — trap frames addressed to the stale PMAC, answering their
      senders with corrective gratuitous ARPs.
    - {b Aggregation switches} forward on (pod, position) prefixes
      downward and ECMP on per-destination-pod core groups upward.
    - {b Core switches} forward on pod prefixes.

    Forwarding state is recomputed locally — from the switch's own
    coordinates, its LDP neighbor view, and the fabric-manager-broadcast
    fault matrix — on every relevant change; total state is O(k) plus one
    entry per local host, per trap, and per multicast group, as the paper
    claims. *)

type t

type agent_counters = {
  arps_proxied : int;        (** who-has queries forwarded to the FM *)
  arps_answered : int;       (** ARP replies crafted for local hosts *)
  arp_cache_hits : int;
      (** replies served from the generation-stamped edge ARP cache
          without consulting the fabric manager *)
  hosts_learned : int;
  trap_hits : int;           (** frames caught on a stale PMAC *)
  corrective_arps : int;
  table_recomputes : int;
  faults_reported : int;
  recoveries_reported : int;
}

val create :
  Eventsim.Engine.t -> Config.t -> Ctrl.t -> Switchfab.Net.t ->
  spec:Topology.Multirooted.spec -> device:int -> seed:int -> ?obs:Obs.t -> unit -> t
(** Attach an agent to a switch device. Call {!start} to begin discovery.
    [obs] (default {!Obs.null}) is handed down to the agent's {!Ldp} and
    {!Switchfab.Dataplane}; the agent itself counts
    [switch/ingress_rewrites] and exports {!agent_counters} as
    [switch/*] samples, all labelled [sw=device]. *)

val start : t -> unit
val stop : t -> unit
(** Stop timers and detach (used when simulating a switch crash). *)

val restart : t -> unit
(** Cold reboot after {!stop}: wipe all RAM state (flow table, host
    tables, traps, local fault matrix, coordinates), reset LDP, re-attach
    to the control network and restart discovery. Sends
    [Msg.Coords_request] so the fabric manager can re-grant the old
    coordinates and replay fault matrix, host bindings and multicast
    programming from its soft state. Pair with
    {!Switchfab.Net.recover_device} — see {!Fabric.recover_switch}. *)

val switch_id : t -> int
val coords : t -> Coords.t option
val level : t -> Netcore.Ldp_msg.level option
val table : t -> Switchfab.Flow_table.t
val table_size : t -> int
val counters : t -> agent_counters
val ldp : t -> Ldp.t
val dataplane : t -> Switchfab.Dataplane.t

val is_operational : t -> bool
(** Coordinates assigned and forwarding state installed. *)

val faults : t -> Fault.t list
(** The switch's local copy of the fault matrix — what its current tables
    were computed from. Post-convergence this equals the fabric manager's
    matrix; the static verifier ({!Portland_verify}) cross-checks both. *)

val host_bindings : t -> Msg.host_binding list
(** The edge switch's local IP↔PMAC↔AMAC view, sorted by IP — empty for
    non-edge switches. Post-convergence every entry must agree with the
    fabric manager's binding table; the model checker ([lib/mc]) asserts
    that agreement at every quiescent schedule. *)

val arp_cache_entries : t -> (Netcore.Ipv4_addr.t * Pmac.t * int) list
(** The currently-servable entries of the edge's generation-stamped ARP
    cache — (target IP, cached PMAC, generation stamp), sorted by IP.
    Entries stamped with a generation older than the newest the switch
    has seen, or past their expiry, are excluded: the next request for
    them re-resolves through the fabric manager. Post-convergence every
    servable entry must agree with the fabric manager's binding table
    (asserted by the model checker's cross-shard invariant pack). *)

val arp_gen_seen : t -> int
(** The newest fabric-wide ARP generation this switch has observed (from
    [Msg.Arp_answer] stamps and [Msg.Arp_gen] broadcasts). *)

val trap_entries : t -> (int * Netcore.Ipv4_addr.t * Pmac.t) list
(** The edge's live migration traps as (stale PMAC integer, trapped IP,
    current PMAC), sorted by the stale PMAC — empty for non-edge
    switches. One ["trap:<stale>"] punt entry per element is installed in
    the flow table; {!Portland_policy.baseline} reads this to emit the
    equivalent declarative clauses. *)

val mcast_programming : t -> (Netcore.Ipv4_addr.t * int list) list
(** The switch's multicast programming as (group, out ports) sorted by
    group — the state behind its ["mcast:<group>"] entries (port order
    preserved; it is what the FM programmed). Read by
    {!Portland_policy.baseline}. *)

val set_journal : t -> Journal.hook option -> unit
(** Subscribe to this agent's control-plane updates: every flow-table
    mutation (forwarded from the agent's {!Switchfab.Flow_table} with
    prefix provenance) and every coordinate grant. The subscription is
    wired to the table once and survives {!stop}/{!restart} cycles.
    Normally installed fleet-wide through {!Fabric.set_journal}. *)
