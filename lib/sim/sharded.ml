(* Conservative-lookahead parallel execution over an array of per-shard
   engines. See sharded.mli for the protocol and determinism argument. *)

type coord = { co_time : Time.t; co_seq : int; co_thunk : unit -> unit }

let leq_coord a b =
  a.co_time < b.co_time || (a.co_time = b.co_time && a.co_seq <= b.co_seq)

type t = {
  engines : Engine.t array;
  lookahead : Time.t;
  domains : int;
  mutable clock : Time.t;
  (* outbox.(src).(dst): cross-shard events posted by shard [src] for
     shard [dst], newest first. Row [src] is written only by the domain
     currently executing shard [src] (or by the main domain at
     quiescence); all rows are drained by the main domain at barriers. *)
  outbox : (Time.t * (unit -> unit)) list array array;
  coord : coord Heap.t;
  mutable coord_seq : int;
  (* Parallel machinery. [win_end] and [stop_flag] are plain mutables
     published to workers by the [epoch] bump (atomics give
     release/acquire ordering); workers publish their heap mutations
     back via the [done_count] increment. Waiters spin for [spin_budget]
     iterations and then block on [cond] — the budget is 0 on a
     single-core host, where spinning can only burn the timeslice the
     other domain needs. *)
  epoch : int Atomic.t;
  done_count : int Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
  spin_budget : int;
  mutable win_end : Time.t;
  mutable stop_flag : bool;
  mutable running : bool;
  mutable windows : int;
}

let create ?(domains = 1) ~lookahead engines =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Sharded.create: no shards";
  if lookahead <= 0 then invalid_arg "Sharded.create: lookahead must be positive";
  let clock = Array.fold_left (fun acc e -> max acc (Engine.now e)) 0 engines in
  Array.iter (fun e -> Engine.advance_clock e ~time:clock) engines;
  { engines; lookahead; domains = max 1 (min domains n); clock;
    outbox = Array.init n (fun _ -> Array.make n []);
    coord = Heap.create ~leq:leq_coord (); coord_seq = 0;
    epoch = Atomic.make 0; done_count = Atomic.make 0;
    lock = Mutex.create (); cond = Condition.create ();
    spin_budget = (if Domain.recommended_domain_count () > 1 then 4096 else 0);
    win_end = clock; stop_flag = false; running = false; windows = 0 }

let shard_count t = Array.length t.engines
let domains t = t.domains
let lookahead t = t.lookahead
let now t = t.clock
let engine t s = t.engines.(s)
let windows_run t = t.windows

let events_processed t =
  Array.fold_left (fun acc e -> acc + Engine.events_processed e) 0 t.engines

let post t ~src ~dst ~time thunk =
  t.outbox.(src).(dst) <- (time, thunk) :: t.outbox.(src).(dst)

let schedule_coordinator t ~time thunk =
  if t.running && time < t.clock then
    invalid_arg "Sharded.schedule_coordinator: time in the past";
  t.coord_seq <- t.coord_seq + 1;
  Heap.push t.coord { co_time = max time t.clock; co_seq = t.coord_seq; co_thunk = thunk }

(* Drain every outbox into the owning engines. Events for one destination
   are ordered by (time, source shard, per-source posting order) — a key
   that does not depend on how shards were interleaved across domains, so
   the destination heap ends up identical for every domain count. *)
let flush t =
  let n = Array.length t.engines in
  for dst = 0 to n - 1 do
    let pending = ref [] in
    for src = 0 to n - 1 do
      match t.outbox.(src).(dst) with
      | [] -> ()
      | newest_first ->
        t.outbox.(src).(dst) <- [];
        let arr = Array.of_list (List.rev newest_first) in
        Array.iteri
          (fun idx (time, thunk) -> pending := (time, src, idx, thunk) :: !pending)
          arr
    done;
    match !pending with
    | [] -> ()
    | items ->
      let e = t.engines.(dst) in
      let clock = Engine.now e in
      let items =
        List.sort
          (fun (t1, s1, i1, _) (t2, s2, i2, _) -> compare (t1, s1, i1) (t2, s2, i2))
          items
      in
      List.iter
        (fun (time, src, _, thunk) ->
          if time < clock then
            failwith
              (Printf.sprintf
                 "Sharded: lookahead violation: shard %d posted an event at %d to \
                  shard %d whose clock is already %d"
                 src time dst clock);
          ignore (Engine.schedule_at e ~time thunk))
        items
  done

let run_share t w ~until =
  let n = Array.length t.engines in
  let i = ref w in
  while !i < n do
    Engine.run ~until t.engines.(!i);
    i := !i + t.domains
  done

(* Wait until [cond ()] holds: spin briefly (cheap when the other side
   is running on another core), then block on the condition variable.
   Correctness of the blocking path: every state change that can make
   [cond] true (epoch bump, done_count increment, stop) is followed by a
   broadcast taken under [t.lock], and the waiter re-checks [cond] under
   the same lock before sleeping — no missed wakeup. *)
let wait_for t cond =
  let spins = ref t.spin_budget in
  while (not (cond ())) && !spins > 0 do
    decr spins;
    Domain.cpu_relax ()
  done;
  if not (cond ()) then begin
    Mutex.lock t.lock;
    while not (cond ()) do Condition.wait t.cond t.lock done;
    Mutex.unlock t.lock
  end

let signal t =
  Mutex.lock t.lock;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let worker t w () =
  let seen = ref 0 in
  let live = ref true in
  while !live do
    let s = !seen in
    wait_for t (fun () -> Atomic.get t.epoch <> s);
    seen := s + 1;
    if t.stop_flag then live := false
    else begin
      run_share t w ~until:(t.win_end - 1);
      Atomic.incr t.done_count;
      signal t
    end
  done

(* Execute one window [_, win_end): every shard independently runs its
   local events with time < win_end, then all clocks are normalized to
   win_end - 1. Conservative lookahead guarantees no shard can receive a
   cross-shard event with time < win_end from work done in this window. *)
let exec_window t win_end =
  let until = win_end - 1 in
  if t.domains <= 1 then Array.iter (fun e -> Engine.run ~until e) t.engines
  else begin
    t.win_end <- win_end;
    Atomic.set t.done_count 0;
    Atomic.incr t.epoch;
    signal t;
    run_share t 0 ~until;
    wait_for t (fun () -> Atomic.get t.done_count >= t.domains - 1)
  end;
  Array.iter (fun e -> Engine.advance_clock e ~time:until) t.engines;
  t.clock <- until;
  t.windows <- t.windows + 1

let drive t target =
  (* Posts made from the main domain since the last run (host sends,
     fault injections, ...) must be delivered before computing horizons. *)
  flush t;
  let continue = ref true in
  while !continue do
    let next_ev =
      Array.fold_left
        (fun acc e ->
          match Engine.next_time e with
          | None -> acc
          | Some nt -> (match acc with None -> Some nt | Some a -> Some (min a nt)))
        None t.engines
    in
    let next_co =
      if Heap.is_empty t.coord then None else Some (Heap.peek_exn t.coord).co_time
    in
    let horizon =
      match (next_ev, next_co) with
      | None, None -> None
      | Some a, None -> Some a
      | None, Some b -> Some b
      | Some a, Some b -> Some (min a b)
    in
    match horizon with
    | None -> continue := false
    | Some h when h > target -> continue := false
    | Some h ->
      (match next_co with
       | Some c when c = h ->
         (* Coordinator actions run between windows, with every shard
            quiescent at exactly [c]; they may mutate cross-shard
            structure (e.g. rewire links) that in-window events must
            never observe mid-change. *)
         Array.iter (fun e -> Engine.advance_clock e ~time:c) t.engines;
         t.clock <- c;
         let rec pop () =
           if (not (Heap.is_empty t.coord)) && (Heap.peek_exn t.coord).co_time = c
           then begin
             let entry = Heap.pop_exn t.coord in
             entry.co_thunk ();
             pop ()
           end
         in
         pop ()
       | _ ->
         let win_end = min (h + t.lookahead) (target + 1) in
         let win_end =
           match next_co with Some c -> min win_end c | None -> win_end
         in
         exec_window t win_end);
      flush t
  done

let run_until t target =
  if target > t.clock then begin
    if t.running then failwith "Sharded.run_until: reentrant call";
    t.running <- true;
    Atomic.set t.epoch 0;
    let workers =
      if t.domains <= 1 then [||]
      else Array.init (t.domains - 1) (fun i -> Domain.spawn (worker t (i + 1)))
    in
    Fun.protect
      ~finally:(fun () ->
        t.stop_flag <- true;
        Atomic.incr t.epoch;
        signal t;
        Array.iter Domain.join workers;
        t.stop_flag <- false;
        t.running <- false)
      (fun () -> drive t target);
    Array.iter (fun e -> Engine.advance_clock e ~time:target) t.engines;
    t.clock <- target
  end
