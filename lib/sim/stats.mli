(** Measurement primitives used by devices, protocols and experiments. *)

(** Monotonically increasing event counter. Domain-safe: increments are
    atomic, so shards of a parallel run ({!Sharded}) can bump the same
    counter without losing updates. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Sample collector with order statistics.

    Stores every sample (growable array); suitable for the per-experiment
    sample counts in this repository (up to a few million). [add] is
    serialized under an internal mutex (no lost samples across domains);
    readers are meant for quiescent points — between {!Sharded} windows or
    after a run — not concurrently with writers. *)
module Distribution : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 on an empty distribution. *)

  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  val percentile : t -> float -> float
  (** [percentile d p] with [p] in [\[0, 100\]]; nearest-rank on the sorted
      samples. 0 on an empty distribution. *)

  val samples : t -> float array
  (** Copy of all samples in insertion order. *)

  val pp_summary : Format.formatter -> t -> unit
end

(** Append-only time series of [(time, value)] points. *)
module Series : sig
  type t

  val create : ?name:string -> unit -> t
  val add : t -> time:Time.t -> float -> unit
  val name : t -> string
  val length : t -> int
  val points : t -> (Time.t * float) array
  val last : t -> (Time.t * float) option

  val rate_per_sec : t -> bucket:Time.t -> (Time.t * float) list
  (** Bucket the points by [bucket]-wide windows and report, per window,
      the sum of values scaled to a per-second rate. Useful for turning a
      packet-arrival series into a throughput trace. *)
end
