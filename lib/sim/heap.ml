type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a array;
  mutable size : int;
}

let create ?capacity:_ ~leq () = { leq; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

(* Hole-based sifts: carry the moving element in [x] and write it once at
   its final slot, instead of swapping at every level. Halves the array
   stores and does one [leq] call per level (the engine's event order is
   total, so a non-strict move of equal elements is indistinguishable). *)
let sift_up h i x =
  let data = h.data in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = data.(parent) in
    if h.leq x p && not (h.leq p x) then begin
      data.(!i) <- p;
      i := parent
    end
    else continue := false
  done;
  data.(!i) <- x

let sift_down h x =
  let data = h.data and size = h.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      let c = if r < size && not (h.leq data.(l) data.(r)) then r else l in
      if not (h.leq x data.(c)) then begin
        data.(!i) <- data.(c);
        i := c
      end
      else continue := false
    end
  done;
  data.(!i) <- x

let push h x =
  grow h x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1) x

let peek h = if h.size = 0 then None else Some h.data.(0)
let peek_exn h = if h.size = 0 then invalid_arg "Heap.peek_exn: empty heap" else h.data.(0)

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let last = h.data.(h.size) in
    h.data.(h.size) <- top;
    (* keep slot initialized; value overwritten on next push *)
    sift_down h last
  end;
  top

let pop h = if h.size = 0 then None else Some (pop_exn h)

let clear h =
  h.data <- [||];
  h.size <- 0

let iter h f =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done
