(** Discrete-event simulation engine.

    The engine holds a virtual clock (nanoseconds, see {!Time}) and a
    priority queue of pending events. Events scheduled for the same instant
    fire in FIFO order of scheduling, which — together with the explicit
    {!Prng} — makes whole-simulation runs fully deterministic. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. Handles are the
    events themselves, never recycled slot indices: a handle stays valid
    (and inert) forever after its event fires or is cancelled, so a
    late {!cancel} can never hit an unrelated reused slot. *)

type interceptor = {
  on_schedule : tag:string -> now:Time.t -> due:Time.t -> Time.t;
      (** Called when a tagged event is scheduled; returns the actual
          delivery time (must be [>= now]; [due] is the natural time the
          caller asked for). Returning [due] leaves the schedule
          untouched. *)
  on_fire : tag:string -> time:Time.t -> unit;
      (** Called just before a tagged event's thunk runs — the realized
          delivery order, in order. *)
}
(** A controlled scheduler's view of {e reorderable actions}: events
    scheduled via {!schedule_tagged} (control-plane deliveries, tagged by
    their senders) are routed through the installed interceptor, which
    may perturb their delivery time and observes the order they actually
    fire in. Untagged events are never intercepted. Used by the
    model checker ([lib/mc]) to explore delivery interleavings. *)

val create : ?now:Time.t -> unit -> t
(** A fresh engine whose clock starts at [now] (default 0). *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative; a zero delay fires after all events already queued for
    the current instant. *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time] (>= [now t]). *)

val schedule_tagged : t -> delay:Time.t -> tag:string -> (unit -> unit) -> handle
(** Like {!schedule}, but marks the event as a reorderable action
    described by [tag]. With no interceptor installed this is exactly
    [schedule]; with one, the interceptor chooses the delivery time and
    is notified when the event fires. *)

val set_interceptor : t -> interceptor option -> unit
(** Install (or remove) the controlled scheduler. Affects only events
    scheduled through {!schedule_tagged} from this point on; already
    queued events keep their times. *)

val intercepting : t -> bool
(** True iff an interceptor is installed. Senders use this to skip
    building descriptor strings on the hot path when nobody listens. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling an already-fired or already-cancelled
    event is a no-op. *)

val is_pending : handle -> bool
(** [is_pending h] is true iff the event has neither fired nor been
    cancelled. *)

val pending_count : t -> int
(** Number of live (neither fired nor cancelled) events. Exact: cancelled
    events may linger in the internal queue until reached, but are never
    counted here. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run t] processes events in time order until the queue is empty, or the
    clock would pass [until], or [max_events] events have fired. The clock
    is left at the last fired event's time (or at [until] when that bound
    stopped the run). *)

val step : t -> bool
(** Fire the single next event. Returns [false] when the queue is empty. *)

val events_processed : t -> int
(** Total events fired since creation (cancelled events excluded). *)

val next_time : t -> Time.t option
(** Time of the earliest pending event, or [None] when idle. Cancelled
    events at the head of the queue are discarded on the way. *)

val advance_clock : t -> time:Time.t -> unit
(** Move the clock forward to [time] without firing anything. Used by the
    sharded scheduler ({!Sharded}) to normalize per-shard clocks at window
    boundaries. No-op when [time <= now]; raises [Invalid_argument] if an
    event is pending strictly before [time]. *)
