(** Discrete-event simulation engine.

    The engine holds a virtual clock (nanoseconds, see {!Time}) and a
    priority queue of pending events. Events scheduled for the same instant
    fire in FIFO order of scheduling, which — together with the explicit
    {!Prng} — makes whole-simulation runs fully deterministic. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : ?now:Time.t -> unit -> t
(** A fresh engine whose clock starts at [now] (default 0). *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative; a zero delay fires after all events already queued for
    the current instant. *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time] (>= [now t]). *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling an already-fired or already-cancelled
    event is a no-op. *)

val is_pending : handle -> bool
(** [is_pending h] is true iff the event has neither fired nor been
    cancelled. *)

val pending_count : t -> int
(** Number of live (neither fired nor cancelled) events. Exact: cancelled
    events may linger in the internal queue until reached, but are never
    counted here. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run t] processes events in time order until the queue is empty, or the
    clock would pass [until], or [max_events] events have fired. The clock
    is left at the last fired event's time (or at [until] when that bound
    stopped the run). *)

val step : t -> bool
(** Fire the single next event. Returns [false] when the queue is empty. *)

val events_processed : t -> int
(** Total events fired since creation (cancelled events excluded). *)
