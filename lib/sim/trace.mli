(** Lightweight simulation trace.

    A bounded ring buffer of timestamped messages. Tracing is off by
    default and cheap when disabled; experiments enable it to debug
    protocol interactions, and a few tests assert on recorded entries.
    The buffer is domain-safe: {!record}, {!entries} and {!clear} take an
    internal mutex, so shards of a parallel run ({!Sharded}) can share one
    trace (entry order across shards is scheduling-dependent). *)

type level = Debug | Info | Warn | Error

type entry = { time : Time.t; level : level; subsystem : string; message : string }

type t

val create : ?capacity:int -> ?min_level:level -> unit -> t
(** Ring buffer holding the last [capacity] entries (default 4096), keeping
    only entries at or above [min_level] (default [Info]). *)

val null : t
(** A shared sink that stores nothing; useful as a default.

    [null] is one value shared by every module that defaults to it, so it
    is contractually immutable: {!set_min_level}, {!record}, {!recordf}
    and {!clear} on [null] are guaranteed no-ops. [count null] is always
    [0] and [entries null] is always [[]]. *)

val set_min_level : t -> level -> unit
(** No-op on {!null}. *)

val record : t -> time:Time.t -> level -> subsystem:string -> string -> unit

val recordf :
  t -> time:Time.t -> level -> subsystem:string ->
  ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the message is only rendered when it will be kept. *)

val entries : t -> entry list
(** Oldest first. *)

val count : t -> int
(** Entries currently retained. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
(** Print all retained entries, oldest first. *)

val level_to_string : level -> string
