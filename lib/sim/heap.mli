(** Resizable binary min-heap.

    Generic over the element type; ordering is supplied at creation time.
    Used by {!Engine} for the pending-event queue, and reusable by any
    component that needs a priority queue (e.g. path search in
    [topology]). *)

type 'a t

val create : ?capacity:int -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] is an empty heap ordered by [leq] (a total preorder;
    [leq a b] means [a] sorts at or before [b]). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. Amortized O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val peek_exn : 'a t -> 'a
(** Like {!peek} but raises [Invalid_argument] on an empty heap.
    Allocation-free — the {!Engine} run loop uses it instead of {!peek}
    so that draining a large queue does not churn [Some] cells. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements (releases references). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Iterate over elements in unspecified order. *)
