module Counter = struct
  type t = { n : int Atomic.t }

  let create () = { n = Atomic.make 0 }
  let incr t = Atomic.incr t.n
  let add t k = ignore (Atomic.fetch_and_add t.n k)
  let value t = Atomic.get t.n
  let reset t = Atomic.set t.n 0
end

module Growable = struct
  type t = { mutable data : float array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let add t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let data = Array.make ncap 0.0 in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1

  let to_array t = Array.sub t.data 0 t.size
end

module Distribution = struct
  type t = {
    samples : Growable.t;
    lock : Mutex.t;
    mutable sum : float;
    mutable sum_sq : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    { samples = Growable.create (); lock = Mutex.create ();
      sum = 0.0; sum_sq = 0.0; mn = infinity; mx = neg_infinity }

  let add t x =
    Mutex.lock t.lock;
    Growable.add t.samples x;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    Mutex.unlock t.lock

  let count t = t.samples.Growable.size
  let mean t = if count t = 0 then 0.0 else t.sum /. float_of_int (count t)
  let min t = t.mn
  let max t = t.mx

  let stddev t =
    let n = count t in
    if n < 2 then 0.0
    else begin
      let m = mean t in
      let var = (t.sum_sq /. float_of_int n) -. (m *. m) in
      sqrt (Stdlib.max 0.0 var)
    end

  let percentile t p =
    let n = count t in
    if n = 0 then 0.0
    else begin
      let sorted = Growable.to_array t.samples in
      Array.sort compare sorted;
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let idx = Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)) in
      sorted.(idx)
    end

  let samples t = Growable.to_array t.samples

  let pp_summary fmt t =
    if count t = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt "n=%d mean=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g" (count t)
        (mean t) t.mn (percentile t 50.0) (percentile t 99.0) t.mx
end

module Series = struct
  type t = {
    name : string;
    mutable times : int array;
    mutable values : float array;
    mutable size : int;
  }

  let create ?(name = "") () = { name; times = [||]; values = [||]; size = 0 }

  let add t ~time v =
    let cap = Array.length t.times in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let times = Array.make ncap 0 and values = Array.make ncap 0.0 in
      Array.blit t.times 0 times 0 t.size;
      Array.blit t.values 0 values 0 t.size;
      t.times <- times;
      t.values <- values
    end;
    t.times.(t.size) <- time;
    t.values.(t.size) <- v;
    t.size <- t.size + 1

  let name t = t.name
  let length t = t.size
  let points t = Array.init t.size (fun i -> (t.times.(i), t.values.(i)))

  let last t =
    if t.size = 0 then None else Some (t.times.(t.size - 1), t.values.(t.size - 1))

  let rate_per_sec t ~bucket =
    if bucket <= 0 then invalid_arg "Series.rate_per_sec: bucket must be positive";
    if t.size = 0 then []
    else begin
      let tbl = Hashtbl.create 64 in
      for i = 0 to t.size - 1 do
        let b = t.times.(i) / bucket in
        let cur = try Hashtbl.find tbl b with Not_found -> 0.0 in
        Hashtbl.replace tbl b (cur +. t.values.(i))
      done;
      let buckets = Hashtbl.fold (fun b v acc -> (b, v) :: acc) tbl [] in
      let buckets = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
      let scale = 1e9 /. float_of_int bucket in
      List.map (fun (b, v) -> (b * bucket, v *. scale)) buckets
    end
end
