type level = Debug | Info | Warn | Error

type entry = { time : Time.t; level : level; subsystem : string; message : string }

type t = {
  capacity : int;
  lock : Mutex.t;
  mutable min_level : level;
  buffer : entry option array;
  mutable next : int;
  mutable stored : int;
}

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

let create ?(capacity = 4096) ?(min_level = Info) () =
  let capacity = max 1 capacity in
  { capacity; lock = Mutex.create (); min_level;
    buffer = Array.make capacity None; next = 0; stored = 0 }

let null = create ~capacity:1 ~min_level:Error ()

let set_min_level t l = if t != null then t.min_level <- l

let keeps t level = level_rank level >= level_rank t.min_level

let record t ~time level ~subsystem message =
  if keeps t level && t != null then begin
    Mutex.lock t.lock;
    t.buffer.(t.next) <- Some { time; level; subsystem; message };
    t.next <- (t.next + 1) mod t.capacity;
    if t.stored < t.capacity then t.stored <- t.stored + 1;
    Mutex.unlock t.lock
  end

let recordf t ~time level ~subsystem fmt =
  if keeps t level && t != null then
    Format.kasprintf (fun message -> record t ~time level ~subsystem message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  Mutex.lock t.lock;
  let acc = ref [] in
  for i = 0 to t.stored - 1 do
    (* walk backwards from the newest entry, prepending *)
    let idx = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
    match t.buffer.(idx) with
    | Some e -> acc := e :: !acc
    | None -> ()
  done;
  Mutex.unlock t.lock;
  !acc

let count t = t.stored

let clear t =
  if t != null then begin
    Mutex.lock t.lock;
    Array.fill t.buffer 0 t.capacity None;
    t.next <- 0;
    t.stored <- 0;
    Mutex.unlock t.lock
  end

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %-5s %s: %s" Time.pp e.time (level_to_string e.level) e.subsystem
    e.message

let dump fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)
