type state = Pending | Fired | Cancelled

type event = {
  time : Time.t;
  seq : int;
  tag : string option; (* reorderable-action descriptor, None for ordinary events *)
  thunk : unit -> unit;
  mutable state : state;
}

type handle = event

type interceptor = {
  on_schedule : tag:string -> now:Time.t -> due:Time.t -> Time.t;
  on_fire : tag:string -> time:Time.t -> unit;
}

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int; (* Pending events in [queue]; cancelled ones stay queued until popped *)
  mutable interceptor : interceptor option;
  queue : event Heap.t;
}

let leq_event (a : event) (b : event) =
  a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(now = 0) () =
  { clock = now; next_seq = 0; fired = 0; live = 0; interceptor = None;
    queue = Heap.create ~leq:leq_event () }

let now t = t.clock

let set_interceptor t i = t.interceptor <- i
let intercepting t = t.interceptor <> None

let enqueue t ~time ~tag thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)" time t.clock);
  let ev = { time; seq = t.next_seq; tag; thunk; state = Pending } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ev;
  ev

let schedule_at t ~time thunk = enqueue t ~time ~tag:None thunk

let schedule t ~delay thunk =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) thunk

let schedule_tagged t ~delay ~tag thunk =
  if delay < 0 then invalid_arg "Engine.schedule_tagged: negative delay";
  let due = t.clock + delay in
  let time =
    match t.interceptor with
    | None -> due
    | Some i ->
      let chosen = i.on_schedule ~tag ~now:t.clock ~due in
      if chosen < t.clock then
        invalid_arg
          (Printf.sprintf "Engine.schedule_tagged: interceptor chose time %d before now %d"
             chosen t.clock)
      else chosen
  in
  enqueue t ~time ~tag:(Some tag) thunk

let cancel t handle =
  if handle.state = Pending then begin
    handle.state <- Cancelled;
    t.live <- t.live - 1
  end

let is_pending handle = handle.state = Pending
let pending_count t = t.live

let fire t ev =
  ev.state <- Fired;
  t.live <- t.live - 1;
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  (match (ev.tag, t.interceptor) with
   | Some tag, Some i -> i.on_fire ~tag ~time:ev.time
   | _ -> ());
  ev.thunk ()

let rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let ev = Heap.pop_exn t.queue in
    if ev.state = Cancelled then step t
    else begin
      fire t ev;
      true
    end
  end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    if Heap.is_empty t.queue then continue := false
    else begin
      let ev = Heap.peek_exn t.queue in
      if ev.state = Cancelled then ignore (Heap.pop_exn t.queue)
      else
        match until with
        | Some bound when ev.time > bound ->
          t.clock <- bound;
          continue := false
        | _ ->
          ignore (Heap.pop_exn t.queue);
          fire t ev;
          decr budget
    end
  done

let events_processed t = t.fired

let rec next_time t =
  if Heap.is_empty t.queue then None
  else begin
    let ev = Heap.peek_exn t.queue in
    if ev.state = Cancelled then begin
      ignore (Heap.pop_exn t.queue);
      next_time t
    end else Some ev.time
  end

let advance_clock t ~time =
  if time > t.clock then begin
    (match next_time t with
     | Some pending when pending < time ->
       invalid_arg
         (Printf.sprintf
            "Engine.advance_clock: pending event at %d before target %d" pending time)
     | _ -> ());
    t.clock <- time
  end
