type state = Pending | Fired | Cancelled

type event = {
  time : Time.t;
  seq : int;
  thunk : unit -> unit;
  mutable state : state;
}

type handle = event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int; (* Pending events in [queue]; cancelled ones stay queued until popped *)
  queue : event Heap.t;
}

let leq_event (a : event) (b : event) =
  a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(now = 0) () =
  { clock = now; next_seq = 0; fired = 0; live = 0; queue = Heap.create ~leq:leq_event () }

let now t = t.clock

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)" time t.clock);
  let ev = { time; seq = t.next_seq; thunk; state = Pending } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay thunk =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) thunk

let cancel t handle =
  if handle.state = Pending then begin
    handle.state <- Cancelled;
    t.live <- t.live - 1
  end

let is_pending handle = handle.state = Pending
let pending_count t = t.live

let fire t ev =
  ev.state <- Fired;
  t.live <- t.live - 1;
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  ev.thunk ()

let rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let ev = Heap.pop_exn t.queue in
    if ev.state = Cancelled then step t
    else begin
      fire t ev;
      true
    end
  end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    if Heap.is_empty t.queue then continue := false
    else begin
      let ev = Heap.peek_exn t.queue in
      if ev.state = Cancelled then ignore (Heap.pop_exn t.queue)
      else
        match until with
        | Some bound when ev.time > bound ->
          t.clock <- bound;
          continue := false
        | _ ->
          ignore (Heap.pop_exn t.queue);
          fire t ev;
          decr budget
    end
  done

let events_processed t = t.fired
