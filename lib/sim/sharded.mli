(** Deterministic parallel execution over sharded {!Engine}s.

    A sharded scheduler owns an array of per-shard engines (logical
    shards — for a fat tree, one per pod plus one for the core layer and
    fabric manager) and executes them as a conservative-lookahead
    parallel discrete-event simulation:

    {b Window protocol.} Let [L] be the lookahead — a static lower bound
    on the latency of {e every} cross-shard interaction (inter-pod link
    delay, control-channel latency). The main domain repeatedly computes
    the global horizon [h] (earliest pending event across all shards),
    opens the window [[h, min (h + L) bounds)], and lets every shard run
    its local events inside the window in parallel. Because any event a
    shard executes at time [t >= h] can only make another shard's state
    change at [t + L >= h + L], no event inside the window can affect a
    different shard inside the same window — shards never need to
    communicate mid-window. Cross-shard effects are {!post}ed into
    per-[(src, dst)] outboxes and delivered at the barrier.

    {b Determinism.} Each shard runs its own events sequentially on its
    own engine, so a shard's execution is a function of its inbound
    events only. At every barrier the outboxes are drained in a canonical
    order — sorted by [(time, source shard, per-source posting order)] —
    which is independent of how shards were distributed across domains
    and of the wall-clock interleaving. Hence the whole run is
    byte-identical for every domain count, including [domains = 1]; the
    number of domains is purely an execution detail.

    {b Coordinator actions} ({!schedule_coordinator}) run between
    windows with all shards quiescent at exactly the action's time. They
    are the hook for cross-shard structural mutation (e.g. replugging a
    migrated host's port) that must never interleave with in-window
    event execution.

    Workers are spawned per {!run_until} call and synchronize on atomic
    epoch/done counters with [Domain.cpu_relax] spin-waits; with
    [domains = 1] everything runs inline on the caller's domain and no
    domain is ever spawned. *)

type t

val create : ?domains:int -> lookahead:Time.t -> Engine.t array -> t
(** [create ~domains ~lookahead engines] — [engines.(s)] is shard [s]'s
    engine (shards are assigned to domains round-robin: shard [s] runs
    on domain [s mod domains]). [domains] (default 1) is clamped to
    [1 .. Array.length engines]. [lookahead] must be positive; every
    {!post} from a window starting at [h] must carry [time >= h + L].
    Raises [Invalid_argument] on an empty shard array or non-positive
    lookahead. All engine clocks are normalized to their maximum. *)

val shard_count : t -> int
val domains : t -> int
val lookahead : t -> Time.t

val now : t -> Time.t
(** Global virtual time: all shard clocks agree on this value at every
    barrier and after {!run_until} returns. *)

val engine : t -> int -> Engine.t
(** The engine owning shard [s]. Schedule onto it directly only for
    same-shard work; cross-shard work must go through {!post}. *)

val post : t -> src:int -> dst:int -> time:Time.t -> (unit -> unit) -> unit
(** [post t ~src ~dst ~time f] records a cross-shard event: [f] will run
    at [time] on shard [dst]'s engine. Must be called either from an
    event executing on shard [src] (any domain) or from the main domain
    while the scheduler is quiescent (with [src] = the shard that
    logically originates the event). [time] must respect the lookahead
    bound; a violation is detected at the next barrier and fails the
    run. *)

val schedule_coordinator : t -> time:Time.t -> (unit -> unit) -> unit
(** Schedule a cross-shard structural action to run at [time] with every
    shard quiescent at exactly that instant (windows are fenced so none
    spans it). Actions at the same time run in scheduling order. Call
    only from the main domain (between runs or from another coordinator
    action). *)

val run_until : t -> Time.t -> unit
(** Advance global time to [target], running windows (in parallel when
    [domains > 1]) until no work at or before [target] remains, then
    normalize every shard clock to [target]. No-op if [target] is not in
    the future. Main-domain only; not reentrant. *)

val events_processed : t -> int
(** Sum of {!Engine.events_processed} over all shards. *)

val windows_run : t -> int
(** Number of synchronization windows executed so far (a measure of
    barrier overhead). *)
