open Eventsim
module F = Portland.Fabric
module FM = Portland.Fabric_manager
module SA = Portland.Switch_agent
module MR = Topology.Multirooted
module FT = Switchfab.Flow_table
module Verify = Portland_verify.Verify

(* ---------------- scenarios & corruptions ---------------- *)

type scenario = Boot | Fault | Reboot

let scenario_of_string = function
  | "boot" -> Some Boot
  | "fault" -> Some Fault
  | "reboot" -> Some Reboot
  | _ -> None

let scenario_to_string = function Boot -> "boot" | Fault -> "fault" | Reboot -> "reboot"

type corruption = Wrong_binding | Wrong_port

let corruption_of_string = function
  | "binding" -> Some Wrong_binding
  | "wrong-port" -> Some Wrong_port
  | _ -> None

let corruption_to_string = function
  | None -> "none"
  | Some Wrong_binding -> "binding"
  | Some Wrong_port -> "wrong-port"

type params = {
  k : int;
  topo : string;  (* topology family member: "plain", "ab" or "two-layer" *)
  seed : int;
  scenario : scenario;
  depth : int;
  max_step : int;
  delay_budget : int;
  quantum : Time.t;
  prune : bool;
  corrupt : corruption option;
  fm_shards : int;
      (* FM shard count used at fabric construction; excluded from replay
         tokens because every observable behaviour is identical across
         shard counts (the cross-shard pack below asserts exactly that) *)
}

let default_params =
  { k = 2;
    topo = "plain";
    seed = 42;
    scenario = Boot;
    depth = 6;
    max_step = 3;
    delay_budget = 10;
    quantum = Time.us 2;
    prune = true;
    corrupt = None;
    fm_shards = 1 }

let family_of p =
  match Topology.Topo.Family.of_string ~k:p.k p.topo with
  | Ok f -> f
  | Error e -> invalid_arg ("mc: " ^ e)

type schedule = int array

type run_result = {
  run_schedule : schedule;
  run_decisions : (string * Time.t) list;
  run_window : (string * Time.t) list;
  run_converged : bool;
  run_violations : string list;
  run_digest : string;
}

(* verdict work sharing across schedules: many interleavings converge to
   the same quiescent control state, so the invariant pack's result is
   cached under (control-state digest, incremental verdict digest) *)
type cache = {
  c_tbl : (string, string list) Hashtbl.t;
  mutable c_hits : int;
  mutable c_equiv_checks : int;
  mutable c_cross_shard : int;
}

let create_cache () =
  { c_tbl = Hashtbl.create 256; c_hits = 0; c_equiv_checks = 0; c_cross_shard = 0 }

(* How many realized deliveries identify an interleaving. Deliveries past
   the cap cannot distinguish two runs — the cap is reported, never
   hidden. *)
let window_cap_of p = max 24 (4 * p.depth)

(* ---------------- invariant pack ---------------- *)

let pp_binding fmt (b : Portland.Msg.host_binding) =
  Format.fprintf fmt "%a amac=%a pmac=%a edge=%d" Netcore.Ipv4_addr.pp b.Portland.Msg.ip
    Netcore.Mac_addr.pp b.Portland.Msg.amac Portland.Pmac.pp b.Portland.Msg.pmac
    b.Portland.Msg.edge_switch

(* One comparable digest of all distributed control state: agent
   coordinates, edge-local host bindings, the FM fault matrix and flow
   table sizes. Two quiescent fabrics in the same logical state produce
   equal digests. *)
let control_state_digest fab =
  let coords =
    F.agents fab
    |> List.filter_map (fun a ->
        match SA.coords a with
        | None -> None
        | Some c -> Some (Format.asprintf "sw%d@%a" (SA.switch_id a) Portland.Coords.pp c))
    |> List.sort compare
  in
  let bindings =
    F.agents fab
    |> List.concat_map (fun a ->
        List.map (Format.asprintf "%a" pp_binding) (SA.host_bindings a))
    |> List.sort compare
  in
  let faults =
    FM.fault_set (F.fabric_manager fab)
    |> List.sort Portland.Fault.compare
    |> List.map (Format.asprintf "%a" Portland.Fault.pp)
  in
  let tables =
    F.agents fab
    |> List.map (fun a -> (SA.switch_id a, SA.table_size a))
    |> List.sort compare
  in
  (coords, bindings, faults, tables)

let check_invariants_counted ?settle fab =
  let cfg = F.proto_config fab in
  let settle =
    match settle with Some s -> s | None -> 3 * cfg.Portland.Config.ldm_period
  in
  let violations = ref [] in
  let add fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let fm = F.fabric_manager fab in
  let agents = List.filter SA.is_operational (F.agents fab) in
  (* 1. coordinate (pod/position) uniqueness, and FM agreement on grants *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let id = SA.switch_id a in
      match SA.coords a with
      | None -> add "switch %d operational without coordinates" id
      | Some c ->
        let key = Format.asprintf "%a" Portland.Coords.pp c in
        (match Hashtbl.find_opt seen key with
         | Some other -> add "duplicate coordinates %s on switches %d and %d" key other id
         | None -> Hashtbl.add seen key id);
        (match FM.switch_coords fm id with
         | Some c' when Portland.Coords.equal c c' -> ()
         | Some c' ->
           add "switch %d holds %s but the FM granted %a" id key Portland.Coords.pp c'
         | None -> add "switch %d holds %s but the FM has no grant for it" id key))
    agents;
  (* 2. FM <-> edge agreement on IP->PMAC and host bindings, both ways *)
  List.iter
    (fun a ->
      List.iter
        (fun (b : Portland.Msg.host_binding) ->
          match FM.lookup_binding fm b.Portland.Msg.ip with
          | None ->
            add "edge %d binds %a but the FM has no binding for that IP" (SA.switch_id a)
              pp_binding b
          | Some fb ->
            if fb <> b then
              add "binding disagreement for %a: edge %d has [%a], FM has [%a]"
                Netcore.Ipv4_addr.pp b.Portland.Msg.ip (SA.switch_id a) pp_binding b
                pp_binding fb)
        (SA.host_bindings a))
    agents;
  List.iter
    (fun h ->
      let ip = Portland.Host_agent.ip h in
      match FM.lookup_binding fm ip with
      | None -> ()  (* convergence (not this pack) decides if that is late *)
      | Some fb ->
        let edge_view =
          match List.find_opt (fun a -> SA.switch_id a = fb.Portland.Msg.edge_switch) agents with
          | None -> None
          | Some a ->
            List.find_opt
              (fun (b : Portland.Msg.host_binding) -> b.Portland.Msg.ip = ip)
              (SA.host_bindings a)
        in
        (match edge_view with
         | Some b when b = fb -> ()
         | Some b ->
           add "FM binding [%a] disagrees with its edge switch's [%a]" pp_binding fb
             pp_binding b
         | None ->
           add "FM binds %a at edge %d, but that switch has no local entry"
             Netcore.Ipv4_addr.pp ip fb.Portland.Msg.edge_switch))
    (F.hosts fab);
  (* 2b. cross-shard agreement, both directions: the FM's pod-sharded
     binding store must be internally consistent (replaying each shard's
     replication log reproduces its live state), and every live
     generation-stamped edge ARP-cache entry must agree with the shard
     that owns its IP — while no edge may have seen an ARP generation the
     FM never issued. Runs (and holds) for every [fm_shards] count. *)
  let cross_shard = ref 1 in
  List.iter (fun s -> add "shard integrity: %s" s) (FM.shard_integrity fm);
  let fm_gen = FM.arp_generation fm in
  List.iter
    (fun a ->
      incr cross_shard;
      if SA.arp_gen_seen a > fm_gen then
        add "edge %d saw ARP generation %d but the FM only issued up to %d"
          (SA.switch_id a) (SA.arp_gen_seen a) fm_gen;
      List.iter
        (fun (ip, pmac, gen) ->
          incr cross_shard;
          match FM.lookup_binding fm ip with
          | Some b when Portland.Pmac.equal b.Portland.Msg.pmac pmac -> ()
          | Some b ->
            add "edge %d ARP-caches %a -> %a (gen %d) but the owning shard binds %a"
              (SA.switch_id a) Netcore.Ipv4_addr.pp ip Portland.Pmac.pp pmac gen
              Portland.Pmac.pp b.Portland.Msg.pmac
          | None ->
            add "edge %d ARP-caches %a -> %a (gen %d) but no shard binds that IP"
              (SA.switch_id a) Netcore.Ipv4_addr.pp ip Portland.Pmac.pp pmac gen)
        (SA.arp_cache_entries a))
    agents;
  (* 3. fault-matrix symmetry: every operational switch's local matrix
     equals the FM's *)
  let fm_faults = List.sort Portland.Fault.compare (FM.fault_set fm) in
  List.iter
    (fun a ->
      let local = List.sort Portland.Fault.compare (SA.faults a) in
      if local <> fm_faults then
        add "switch %d fault matrix (%d entries) differs from the FM's (%d entries)"
          (SA.switch_id a) (List.length local) (List.length fm_faults))
    agents;
  (* 4. convergence idempotence: extra settle time changes nothing *)
  let before = control_state_digest fab in
  F.run_for fab settle;
  if control_state_digest fab <> before then
    add "not idempotent: control state changed during %s of extra settle"
      (Time.to_string settle);
  (* 5. full static dataplane verification *)
  let report = Verify.run fab in
  if not (Verify.ok report) then begin
    let vs = report.Verify.violations in
    let n = List.length vs in
    List.iteri
      (fun i v -> if i < 8 then add "verify: %a" Verify.pp_violation v)
      vs;
    if n > 8 then add "verify: ... and %d more violation(s)" (n - 8)
  end;
  (List.rev !violations, !cross_shard)

let check_invariants ?settle fab = fst (check_invariants_counted ?settle fab)

(* ---------------- corruption seeding ---------------- *)

let first_binding fab =
  let ips =
    F.hosts fab |> List.map Portland.Host_agent.ip |> List.sort compare
  in
  List.find_map (fun ip -> FM.lookup_binding (F.fabric_manager fab) ip) ips

let apply_corruption fab = function
  | Wrong_binding ->
    (* re-point the FM's copy of a binding at a PMAC one port over; the
       edge switch still holds the truth, so FM<->edge agreement (and the
       dataplane walk over the FM's class set) must flag it *)
    (match first_binding fab with
     | None -> ()
     | Some b ->
       let pmac = { b.Portland.Msg.pmac with Portland.Pmac.port = b.Portland.Msg.pmac.Portland.Pmac.port + 1 } in
       FM.insert_binding_for_test (F.fabric_manager fab) { b with Portland.Msg.pmac = pmac })
  | Wrong_port ->
    (* shadow a host's exact-match entry with one that throws the frame
       back up the fabric: the class now bounces edge<->agg, which the
       static verifier must report as a loop *)
    (match first_binding fab with
     | None -> ()
     | Some b ->
       let table = SA.table (F.agent fab b.Portland.Msg.edge_switch) in
       let pmac_int = Netcore.Mac_addr.to_int (Portland.Pmac.to_mac b.Portland.Msg.pmac) in
       let first_uplink = (F.spec fab).MR.hosts_per_edge in
       FT.install table
         { FT.name = Printf.sprintf "mc-wrong-port:%d" pmac_int;
           priority = 200;
           mtch = FT.match_dst_prefix ~value:pmac_int ~mask:0xFFFFFFFFFFFF;
           actions = [ FT.Output first_uplink ] })

(* ---------------- one controlled run ---------------- *)

let run_schedule ?cache p sched =
  let fab =
    (* boot_jitter = 1 ns routes every agent start through the engine, so
       the boot burst is scheduled after the interceptor is installed
       instead of synchronously inside create *)
    F.create
      (F.Config.of_family ~seed:p.seed ~boot_jitter:(Time.ns 1) ~obs:Obs.null
         ~fm_shards:p.fm_shards (family_of p))
  in
  let eng = F.engine fab in
  Switchfab.Net.set_delivery_tagger (F.net fab)
    (Some
       (fun ~src ~dst frame ->
         match frame.Netcore.Eth.payload with
         | Netcore.Eth.Ldp _ -> Some (Printf.sprintf "ldm:%d>%d" src dst)
         | _ -> None));
  (* a persistent incremental verifier tracks the run end to end; each
     recorded delivery re-verifies only its delta classes *)
  let inc = Verify.Incremental.attach ~obs:Obs.null fab in
  let window_open = ref false in
  let cap = window_cap_of p in
  let decisions = ref [] and n_decisions = ref 0 in
  let window = ref [] and n_window = ref 0 in
  let interceptor =
    { Engine.on_schedule =
        (fun ~tag ~now:_ ~due ->
          if not !window_open then due
          else begin
            let i = !n_decisions in
            if i >= p.depth then due
            else begin
              incr n_decisions;
              decisions := (tag, due) :: !decisions;
              let steps = if i < Array.length sched then sched.(i) else 0 in
              due + (steps * p.quantum)
            end
          end);
      on_fire =
        (fun ~tag ~time ->
          if !window_open && !n_window < cap then begin
            incr n_window;
            window := (tag, time) :: !window;
            ignore (Verify.Incremental.refresh inc)
          end) }
  in
  Engine.set_interceptor eng (Some interceptor);
  (match p.scenario with
   | Boot ->
     (* the window opens on the self-configuration storm at t=0 *)
     window_open := true
   | Fault ->
     Engine.set_interceptor eng None;
     if not (F.await_convergence fab) then failwith "mc: fabric failed pre-fault convergence";
     let mt = F.tree fab in
     let a = mt.MR.edges.(0).(0) in
     (* first uplink hop: an agg under striped wirings, a spine under flat *)
     let b =
       if (F.spec fab).MR.wiring = MR.Flat then mt.MR.cores.(0) else mt.MR.aggs.(0).(0)
     in
     ignore (F.fail_link_between fab ~a ~b);
     (* LDP declares the link dead one ldm_timeout after the failure; open
        the window just before, so detection, matrix broadcast and the
        scheduled recovery race inside it *)
     let cfg = F.proto_config fab in
     F.run_for fab (cfg.Portland.Config.ldm_timeout - Time.ms 2);
     Engine.set_interceptor eng (Some interceptor);
     window_open := true;
     ignore
       (Engine.schedule eng ~delay:(Time.ms 5) (fun () ->
            ignore (F.recover_link_between fab ~a ~b)))
   | Reboot ->
     Engine.set_interceptor eng None;
     if not (F.await_convergence fab) then failwith "mc: fabric failed pre-reboot convergence";
     let mt = F.tree fab in
     let sw = mt.MR.edges.(0).(0) in
     F.fail_switch fab sw;
     F.run_for fab (Time.ms 100);
     Engine.set_interceptor eng (Some interceptor);
     window_open := true;
     F.recover_switch fab sw);
  let converged = F.await_convergence fab in
  Engine.set_interceptor eng None;
  (match p.corrupt with None -> () | Some c -> if converged then apply_corruption fab c);
  (* verdict digest at the quiescent point (corruption included: the
     seeded damage journals like any other update, so the digest of a
     corrupted state differs from the clean one's) *)
  let inc_digest = Verify.digest_of_report (Verify.Incremental.refresh inc) in
  let state_key () =
    let coords, bindings, faults, tables = control_state_digest fab in
    String.concat "|"
      (coords @ bindings @ faults
       @ List.map (fun (i, n) -> Printf.sprintf "%d:%d" i n) tables)
    ^ "#" ^ inc_digest
  in
  let violations =
    if not converged then [ "fabric did not converge under this schedule" ]
    else begin
      match cache with
      | None -> check_invariants fab
      | Some c ->
        let key = state_key () in
        (match Hashtbl.find_opt c.c_tbl key with
         | Some vs ->
           c.c_hits <- c.c_hits + 1;
           vs
         | None ->
           let vs, n_cross = check_invariants_counted fab in
           c.c_cross_shard <- c.c_cross_shard + n_cross;
           (* on every cache miss, prove the differential guarantee at
              this quiescent point before trusting the digest as a key *)
           c.c_equiv_checks <- c.c_equiv_checks + 1;
           let vs =
             if Verify.Incremental.check_against_full inc then vs
             else vs @ [ "incremental/full verifier divergence at quiescence" ]
           in
           Hashtbl.replace c.c_tbl key vs;
           vs)
    end
  in
  Verify.Incremental.detach inc;
  { run_schedule = Array.copy sched;
    run_decisions = List.rev !decisions;
    run_window = List.rev !window;
    run_converged = converged;
    run_violations = violations;
    run_digest = inc_digest }

(* ---------------- replay tokens ---------------- *)

module Token = struct
  type version = V1 | V2

  let version_to_string = function V1 -> "mc1" | V2 -> "mc2"

  (* plain runs keep the historical mc1 form (so old tokens round-trip
     byte-for-byte); non-plain members need the extra topo field -> mc2 *)
  let version_of p = if p.topo = "plain" then V1 else V2

  let sched_field sched =
    if Array.length sched = 0 then "-"
    else String.concat "." (List.map string_of_int (Array.to_list sched))

  let to_string p sched =
    match version_of p with
    | V1 ->
      Printf.sprintf
        "mc1:k=%d:seed=%d:scn=%s:depth=%d:step=%d:budget=%d:q=%d:corrupt=%s:d=%s" p.k
        p.seed (scenario_to_string p.scenario) p.depth p.max_step p.delay_budget p.quantum
        (corruption_to_string p.corrupt) (sched_field sched)
    | V2 ->
      Printf.sprintf
        "mc2:k=%d:topo=%s:seed=%d:scn=%s:depth=%d:step=%d:budget=%d:q=%d:corrupt=%s:d=%s"
        p.k p.topo p.seed (scenario_to_string p.scenario) p.depth p.max_step
        p.delay_budget p.quantum
        (corruption_to_string p.corrupt)
        (sched_field sched)

  let of_string s =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  let parse_fields ~topo k seed scn depth step budget q corrupt d =
    let field name v =
      match String.index_opt v '=' with
      | Some i when String.sub v 0 i = name ->
        Ok (String.sub v (i + 1) (String.length v - i - 1))
      | _ -> fail "expected %s=... in token, got %S" name v
    in
    let int_field name v =
      Result.bind (field name v) (fun x ->
          match int_of_string_opt x with
          | Some n -> Ok n
          | None -> fail "non-integer %s in token: %S" name x)
    in
    let ( let* ) = Result.bind in
    let* k = int_field "k" k in
    let* seed = int_field "seed" seed in
    let* scn = field "scn" scn in
    let* scenario =
      match scenario_of_string scn with
      | Some x -> Ok x
      | None -> fail "unknown scenario %S in token" scn
    in
    let* depth = int_field "depth" depth in
    let* max_step = int_field "step" step in
    let* delay_budget = int_field "budget" budget in
    let* quantum = int_field "q" q in
    let* corrupt_s = field "corrupt" corrupt in
    let* corrupt =
      if corrupt_s = "none" then Ok None
      else
        match corruption_of_string corrupt_s with
        | Some c -> Ok (Some c)
        | None -> fail "unknown corruption %S in token" corrupt_s
    in
    let* d = field "d" d in
    let* sched =
      if d = "-" then Ok [||]
      else
        let parts = String.split_on_char '.' d in
        let rec conv acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | x :: rest ->
            (match int_of_string_opt x with
             | Some n when n >= 0 -> conv (n :: acc) rest
             | _ -> fail "bad delay step %S in token" x)
        in
        conv [] parts
    in
    if k < 2 || k mod 2 <> 0 then fail "token k=%d is not a valid fat-tree arity" k
    else if
      (match Topology.Topo.Family.of_string ~k topo with Ok _ -> false | Error _ -> true)
    then fail "unknown topology %S in token" topo
    else if depth < 0 || max_step < 0 || delay_budget < 0 || quantum <= 0 then
      fail "token has negative bounds"
    else if Array.length sched > depth then
      fail "token schedule has %d steps but depth is %d" (Array.length sched) depth
    else
      Ok
        ( { k; topo; seed; scenario; depth; max_step; delay_budget; quantum;
            prune = true; corrupt; fm_shards = 1 },
          sched )
  in
  match String.split_on_char ':' s with
  | [ "mc1"; k; seed; scn; depth; step; budget; q; corrupt; d ] ->
    parse_fields ~topo:"plain" k seed scn depth step budget q corrupt d
  | [ "mc2"; k; topo; seed; scn; depth; step; budget; q; corrupt; d ] ->
    (match String.index_opt topo '=' with
     | Some i when String.sub topo 0 i = "topo" ->
       parse_fields
         ~topo:(String.sub topo (i + 1) (String.length topo - i - 1))
         k seed scn depth step budget q corrupt d
     | _ -> fail "expected topo=... in token, got %S" topo)
  | "mc1" :: _ -> fail "malformed mc1 token (expected 10 ':'-separated fields)"
  | "mc2" :: _ -> fail "malformed mc2 token (expected 11 ':'-separated fields)"
  | v :: _ -> fail "unknown token version %S (expected mc1 or mc2)" v
  | [] -> fail "empty token"
end

let token_of = Token.to_string
let parse_token = Token.of_string

(* ---------------- rendering ---------------- *)

let pp_run fmt r =
  let pp_sched fmt s =
    if Array.length s = 0 then Format.pp_print_string fmt "-"
    else
      Format.pp_print_string fmt
        (String.concat "." (List.map string_of_int (Array.to_list s)))
  in
  Format.fprintf fmt "schedule: %a@\n" pp_sched r.run_schedule;
  Format.fprintf fmt "decision slots: %d@\n" (List.length r.run_decisions);
  List.iteri
    (fun i (tag, due) ->
      let steps =
        if i < Array.length r.run_schedule then r.run_schedule.(i) else 0
      in
      Format.fprintf fmt "  [%d] +%d %s %s@\n" i steps (Time.to_string due) tag)
    r.run_decisions;
  Format.fprintf fmt "realized deliveries: %d@\n" (List.length r.run_window);
  List.iteri
    (fun i (tag, t) -> Format.fprintf fmt "  (%d) %s %s@\n" i (Time.to_string t) tag)
    r.run_window;
  Format.fprintf fmt "converged: %b@\n" r.run_converged;
  match r.run_violations with
  | [] -> Format.fprintf fmt "invariants: OK"
  | vs ->
    Format.fprintf fmt "invariants: %d violation(s)" (List.length vs);
    List.iter (fun v -> Format.fprintf fmt "@\n  %s" v) vs

(* ---------------- shrinking ---------------- *)

let violates p s = (run_schedule p s).run_violations <> []

let shrink p sched =
  let s = Array.copy sched in
  let changed = ref true in
  while !changed do
    changed := false;
    (* pass 1: zero whole entries (coarse ddmin step) *)
    Array.iteri
      (fun i x ->
        if x > 0 then begin
          s.(i) <- 0;
          if violates p s then changed := true else s.(i) <- x
        end)
      s;
    (* pass 2: only when nothing zeroes, decrement survivors *)
    if not !changed then
      Array.iteri
        (fun i x ->
          if x > 1 then begin
            s.(i) <- x - 1;
            if violates p s then changed := true else s.(i) <- x
          end)
        s
  done;
  s

(* ---------------- exploration ---------------- *)

type counterexample = {
  cx_schedule : schedule;
  cx_token : string;
  cx_violations : string list;
}

type report = {
  rep_params : params;
  rep_schedules_run : int;
  rep_interleavings : int;
  rep_pruned : int;
  rep_window_cap : int;
  rep_decisions_seen : int;
  rep_violating : int;
  rep_digest_hits : int;
  rep_equiv_checks : int;
  rep_cross_shard_checks : int;
  rep_counterexample : counterexample option;
}

let explore p =
  let distinct = Hashtbl.create 1024 in
  let cache = create_cache () in
  let runs = ref 0 and pruned = ref 0 and violating = ref 0 in
  let decisions_seen = ref 0 in
  let first_cx = ref None in
  let key_of r = String.concat "|" (List.map fst r.run_window) in
  let do_run sched =
    let r = run_schedule ~cache p sched in
    incr runs;
    Hashtbl.replace distinct (key_of r) ();
    decisions_seen := max !decisions_seen (List.length r.run_decisions);
    if r.run_violations <> [] then begin
      incr violating;
      if !first_cx = None then first_cx := Some (Array.copy sched)
    end;
    r
  in
  let v = Array.make (max p.depth 1) 0 in
  (* DFS over delay vectors. [parent] is the executed run for the current
     prefix with all deeper entries zero; its timeline drives the
     delay-bounding check for position [i]. *)
  let rec node i used parent =
    if i < p.depth && i < List.length parent.run_decisions then begin
      node (i + 1) used parent;
      let _, due = List.nth parent.run_decisions i in
      let max_e = min p.max_step (p.delay_budget - used) in
      for e = 1 to max_e do
        let keep =
          (not p.prune)
          ||
          (* sleep-set-style check: explore delay [e] only if, in the
             parent run, some other delivery lands inside the extra
             window it opens — otherwise the realized order provably
             matches a smaller delay's (modulo cascades past the
             recorded window, an approximation the docs own up to) *)
          let lo = due + ((e - 1) * p.quantum) and hi = due + (e * p.quantum) in
          if e = 1 then
            (* the decision itself fires at [due] in the parent: demand a
               second delivery in the inclusive first bucket *)
            List.length
              (List.filter (fun (_, t) -> t >= due && t <= hi) parent.run_window)
            > 1
          else List.exists (fun (_, t) -> t > lo && t <= hi) parent.run_window
        in
        if keep then begin
          v.(i) <- e;
          let r = do_run (Array.sub v 0 (i + 1)) in
          node (i + 1) (used + e) r;
          v.(i) <- 0
        end
        else incr pruned
      done
    end
  in
  let root = do_run [||] in
  node 0 0 root;
  let cx =
    Option.map
      (fun s0 ->
        let s = shrink p s0 in
        let r = run_schedule p s in
        { cx_schedule = s; cx_token = token_of p s; cx_violations = r.run_violations })
      !first_cx
  in
  { rep_params = p;
    rep_schedules_run = !runs;
    rep_interleavings = Hashtbl.length distinct;
    rep_pruned = !pruned;
    rep_window_cap = window_cap_of p;
    rep_decisions_seen = !decisions_seen;
    rep_violating = !violating;
    rep_digest_hits = cache.c_hits;
    rep_equiv_checks = cache.c_equiv_checks;
    rep_cross_shard_checks = cache.c_cross_shard;
    rep_counterexample = cx }

let report_ok r = r.rep_schedules_run > 0 && r.rep_violating = 0

let report_to_json r =
  let open Obs.Json in
  let p = r.rep_params in
  Obj
    [ ( "mc",
        Obj
          [ ("k", Int p.k);
            ("topology", Str p.topo);
            ("seed", Int p.seed);
            ("scenario", Str (scenario_to_string p.scenario));
            ("depth", Int p.depth);
            ("max_step", Int p.max_step);
            ("delay_budget", Int p.delay_budget);
            ("quantum_ns", Int p.quantum);
            ("prune", Bool p.prune);
            ("corrupt", Str (corruption_to_string p.corrupt));
            ("fm_shards", Int p.fm_shards);
            ("schedules_run", Int r.rep_schedules_run);
            ("distinct_interleavings", Int r.rep_interleavings);
            ("pruned_delays", Int r.rep_pruned);
            ("window_cap", Int r.rep_window_cap);
            ("decisions_seen", Int r.rep_decisions_seen);
            ("violating_schedules", Int r.rep_violating);
            ("digest_hits", Int r.rep_digest_hits);
            ("equiv_checks", Int r.rep_equiv_checks);
            ("cross_shard_checks", Int r.rep_cross_shard_checks);
            ( "counterexample",
              match r.rep_counterexample with
              | None -> Null
              | Some cx ->
                Obj
                  [ ("schedule", List (List.map (fun s -> Int s) (Array.to_list cx.cx_schedule)));
                    ("token", Str cx.cx_token);
                    ("violations", List (List.map (fun v -> Str v) cx.cx_violations)) ] ) ] ) ]
