(** Control-plane model checker: systematic interleaving exploration
    with counterexample shrinking.

    PortLand's fault tolerance rests on soft state kept consistent
    between the fabric manager and switch agents by asynchronous control
    messages. The static verifier ({!Portland_verify.Verify}) proves the
    dataplane correct {e at} a quiescent point; the chaos engine
    ([lib/chaos]) samples fault timings randomly. Neither answers the
    ordering question: does {e every} interleaving of control-message
    deliveries reach a correct quiescent point? This module does, for
    small fabrics (k=2/4), by turning the deterministic {!Eventsim.Engine}
    into a controlled scheduler.

    {b Action model.} Control-plane deliveries are {e reorderable
    actions}: every {!Portland.Ctrl} delivery (LDM-derived neighbor and
    fault/recovery reports, [Coords_request]/[Host_restore], proxy-ARP
    query/answer/flood legs, coordinate grants, fault-matrix broadcasts)
    and every in-fabric LDM frame delivery is tagged with a stable
    descriptor and routed through an {!Eventsim.Engine.interceptor}. A
    {e schedule} assigns each of the first [depth] actions after the
    scenario's perturbation window opens an extra delay of 0..[max_step]
    quanta (sum bounded by [delay_budget]); everything later runs
    undisturbed. One schedule = one fully deterministic simulation run.

    {b Exploration.} Bounded-depth DFS over delay vectors with a
    delay-bounding, sleep-set-style pruning pass: a candidate delay for
    decision [i] is explored only if, in the parent run's realized
    timeline, some {e other} action is delivered inside the extra window
    the delay opens — otherwise the delay provably (modulo cascades
    inside the skipped window, which the run log reports) realizes the
    same delivery order as a smaller one and is counted as pruned, never
    silently dropped. Interleaving identity is the realized delivery
    order of the first [window] actions after the window opens.

    {b Invariant pack}, asserted at every quiescent schedule:
    coordinate (pod/position) uniqueness; FM↔edge agreement on IP→PMAC
    and host bindings (both inclusions); fault-matrix symmetry (every
    operational switch's local matrix equals the FM's); convergence
    idempotence (extra settle time changes nothing); and the full
    {!Portland_verify.Verify.run} dataplane check.

    {b Counterexamples.} A violating schedule is shrunk (greedy ddmin
    over delay steps) to a minimal reordering and printed as a
    [--schedule] token that {!replay} reproduces byte-for-byte. *)

(** Which race the perturbation window opens on. *)
type scenario =
  | Boot  (** self-configuration: LDMs, position proposals, announces *)
  | Fault
      (** a converged fabric loses one edge–agg link; the window opens
          just before the LDM timeout fires, so fault detection, matrix
          broadcast and the scheduled recovery race each other *)
  | Reboot
      (** a converged fabric cold-reboots one edge switch; the window
          opens at recovery, so [Coords_request], [Host_restore], fault
          replay and re-discovery LDMs race *)

val scenario_of_string : string -> scenario option
val scenario_to_string : scenario -> string

(** State corruption seeded after quiescence, before the invariant pack
    runs — the invariants must catch it on every schedule. *)
type corruption =
  | Wrong_binding  (** FM binding re-pointed at a wrong PMAC port *)
  | Wrong_port     (** edge flow-table host entry re-pointed at a wrong port *)

val corruption_of_string : string -> corruption option
val corruption_to_string : corruption option -> string

type params = {
  k : int;             (** fat-tree arity (keep to 2 or 4) *)
  topo : string;       (** family member: "plain", "ab" or "two-layer" *)
  seed : int;
  scenario : scenario;
  depth : int;         (** reorderable actions given a delay decision *)
  max_step : int;      (** max extra-delay steps per action *)
  delay_budget : int;  (** bound on the sum of steps over a schedule *)
  quantum : Eventsim.Time.t;  (** ns per delay step *)
  prune : bool;        (** sleep-set-style pruning (off = plain product) *)
  corrupt : corruption option;
  fm_shards : int;
      (** fabric-manager shard count at construction. A pure state-layout
          choice: every observable behaviour is identical across counts,
          which the cross-shard invariant pack asserts on every schedule.
          Excluded from replay tokens for the same reason. *)
}

val default_params : params
(** k=2, seed=42, Boot, depth=6, max_step=3, budget=10, quantum=2 us,
    pruning on, no corruption, [fm_shards = 1]. The quantum is deliberately of the same
    order as the boot burst's inter-delivery spacing (~1.6 us at k=2), so
    successive delay steps realize genuinely different orders instead of
    all hopping past the whole burst. *)

type schedule = int array
(** Extra-delay steps for decisions [0..depth-1]; shorter arrays are
    implicitly zero-padded. *)

(** One deterministic run under a schedule. *)
type run_result = {
  run_schedule : schedule;
  run_decisions : (string * Eventsim.Time.t) list;
      (** the actions that consumed decision slots: descriptor and the
          natural (pre-perturbation) delivery time, in decision order *)
  run_window : (string * Eventsim.Time.t) list;
      (** realized deliveries after the window opened (capped), in fire
          order — the interleaving identity *)
  run_converged : bool;
  run_violations : string list;  (** empty iff the invariant pack held *)
  run_digest : string;
      (** {!Portland_verify.Verify} verdict digest at the quiescent
          point (post-corruption), maintained incrementally across the
          run — every recorded delivery re-verified only its delta
          classes *)
}

type cache
(** Invariant-pack verdict cache shared across schedules, keyed by
    (control-state digest, incremental verdict digest): interleavings
    that converge to the same quiescent state skip the pack. On every
    miss the incremental verdict is differentially checked against a
    fresh full {!Portland_verify.Verify.run} before the digest is
    trusted as a key. *)

val create_cache : unit -> cache

val run_schedule : ?cache:cache -> params -> schedule -> run_result

val check_invariants : ?settle:Eventsim.Time.t -> Portland.Fabric.t -> string list
(** The invariant pack alone, against an already-quiescent fabric:
    coordinate uniqueness, FM↔edge binding agreement, cross-shard
    agreement in both directions ({!Portland.Fabric_manager.shard_integrity}
    plus every live generation-stamped edge ARP-cache entry against the
    shard owning its IP, and no edge ahead of the FM's ARP generation),
    fault-matrix symmetry, convergence idempotence over [settle] (default
    3 LDM periods), and the full static dataplane verification. Also
    usable outside the explorer (tests, chaos checks). *)

type counterexample = {
  cx_schedule : schedule;  (** shrunk to a minimal reordering *)
  cx_token : string;
  cx_violations : string list;
}

type report = {
  rep_params : params;
  rep_schedules_run : int;     (** full simulations executed *)
  rep_interleavings : int;     (** distinct realized delivery orders *)
  rep_pruned : int;            (** delay choices skipped as order-preserving *)
  rep_window_cap : int;        (** deliveries recorded per run for identity *)
  rep_decisions_seen : int;    (** decision slots the scenario actually offered *)
  rep_violating : int;         (** schedules whose invariant pack failed *)
  rep_digest_hits : int;       (** schedules served from the verdict cache *)
  rep_equiv_checks : int;
      (** incremental-vs-full differential checks run (one per cache
          miss); a disagreement is itself reported as a violation *)
  rep_cross_shard_checks : int;
      (** cross-shard agreement assertions evaluated across all pack
          executions (shard-integrity packs plus per-agent / per-cache-entry
          FM↔edge comparisons); cache hits do not re-count *)
  rep_counterexample : counterexample option;  (** first violation, shrunk *)
}

val explore : params -> report
(** Run the bounded-depth DFS. Every schedule explored is a full
    simulation; counts are exact and pruning is reported, never silent.
    On the first violation the explorer keeps enumerating (to report an
    honest violation count) and afterwards shrinks the first violating
    schedule into [rep_counterexample]. *)

val shrink : params -> schedule -> schedule
(** Greedy ddmin over delay steps: repeatedly zero (then decrement)
    entries while the invariant pack still fails; the result is minimal
    in that no single further reduction preserves the violation. *)

(** {1 Replay tokens}

    A token is a self-contained, versioned rendering of [(params,
    schedule)] — everything needed to replay one counterexample
    deterministically on another machine or another day. *)

module Token : sig
  type version =
    | V1  (** [mc1:...] — the historical plain-fat-tree form (no topo field) *)
    | V2  (** [mc2:...] — adds [topo=] for non-plain family members *)

  val version_to_string : version -> string

  val version_of : params -> version
  (** The version {!to_string} will emit: [V1] iff [p.topo = "plain"],
      so pre-family tokens keep round-tripping byte-for-byte. *)

  val to_string : params -> schedule -> string
  (** e.g.
      [mc1:k=2:seed=42:scn=boot:depth=6:step=3:budget=8:q=25000:corrupt=none:d=0.2.0.1.0.0]
      or
      [mc2:k=4:topo=ab:seed=7:scn=fault:depth=4:step=2:budget=6:q=2000:corrupt=none:d=-]. *)

  val of_string : string -> (params * schedule, string) result
  (** Inverse of {!to_string} (with [prune] forced to [true] and
      [fm_shards] to [1] — neither affects observable behaviour); rejects
      unknown versions, malformed fields, invalid arity/topology/
      scenario/corruption names, negative bounds and schedules longer
      than [depth]. [Error] carries a human-readable reason.
      Round-trip law (QCheck-tested): for all valid [(p, s)],
      [of_string (to_string p s) = Ok (p, s)]. *)
end

val token_of : params -> schedule -> string
(** [Token.to_string]. *)

val parse_token : string -> (params * schedule, string) result
(** [Token.of_string]. *)

val pp_run : Format.formatter -> run_result -> unit
(** Deterministic rendering of one run: decision slots, the realized
    delivery window, convergence and violations — what [portland_sim mc
    --replay] prints (byte-identical across runs of the same token). *)

val report_to_json : report -> Obs.Json.t
(** Stable shape, no wall-clock: byte-identical across runs with equal
    params. *)

val report_ok : report -> bool
(** No violating schedule (and at least one schedule ran). *)
