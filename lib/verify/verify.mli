(** Static dataplane verifier (Veriflow-style) for a PortLand deployment.

    PortLand's fault-tolerance story rests on an invariant the runtime
    never states explicitly: after every fabric-manager update, the union
    of all switch flow tables must be loop-free and blackhole-free, and
    must route every registered PMAC to exactly its host's edge port.
    This module checks that {e statically} — it snapshots the topology,
    every switch's installed {!Switchfab.Flow_table} (entries, masks,
    priorities, ECMP select groups) and the fault matrix, then walks
    destination equivalence classes symbolically. No packet is simulated
    and no time advances; every ECMP branch is explored, not just the
    member one hash would pick.

    A destination {e class} is the set of frames sharing forwarding fate:
    since PortLand's unicast entries match only masked destination-PMAC
    prefixes, and every registered host contributes an exact-match leaf,
    the finest class granularity is one class per registered PMAC. The
    verifier walks each class from every operational edge switch (the
    fabric ingress boundary) and checks five invariants:

    + {b Loop freedom} — no class can revisit a switch on any branch.
    + {b Blackhole freedom} — every branch of every class terminates at
      the class's host: no table miss, no empty ECMP group, no unwired or
      dead output port, no punt/drop of in-fabric unicast.
    + {b Rewrite correctness} — the destination PMAC is rewritten to the
      host's AMAC exactly at the egress edge (never inside the fabric),
      the frame leaves on the edge port the PMAC encodes, and the PMAC's
      pod/position agree with the owning edge switch's coordinates.
      (The ingress AMAC→PMAC source rewrite is agent code, not table
      state, and is exercised by the runtime tests instead.)
    + {b ECMP group liveness} — no installed select-group member points
      at a port that is unwired, crosses a down link, reaches a dead
      switch, or crosses a link the fault matrix marks down.
    + {b Fault-matrix consistency} — every fault coordinate names a real
      fabric link, and no fault marks a link down that is demonstrably
      alive (both endpoints up, link up): a {e stale} fault silently
      shrinks the usable path set.

    Violations carry switch/entry provenance so a report line points at
    the exact installed entry that breaks the fabric. *)

type violation =
  | Loop of { pmac : Portland.Pmac.t; cycle : int list }
      (** The class can traverse [cycle] (device ids, first repeated
          implicitly) and never leave it. *)
  | Blackhole of {
      pmac : Portland.Pmac.t;
      switch : int;
      entry : string option;  (** deciding entry, [None] on a table miss *)
      reason : string;
    }
  | Wrong_delivery of {
      pmac : Portland.Pmac.t;
      switch : int;
      entry : string;
      port : int;
      delivered_to : int;  (** host device actually reached *)
      expected : int;      (** host device the binding names *)
    }
  | Bad_rewrite of { pmac : Portland.Pmac.t; switch : int; entry : string; reason : string }
  | Dead_group_member of { switch : int; entry : string; group : int; port : int; why : string }
  | Empty_group of { switch : int; entry : string; group : int }
      (** An installed entry defers to a select group that is undefined
          or has no members: every matching frame is dropped. *)
  | Unknown_fault_link of { fault : Portland.Fault.t; reason : string }
  | Stale_fault of { fault : Portland.Fault.t }

type note = Unreachable_class of { pmac : Portland.Pmac.t; switch : int }
    (** The class's owning edge switch is dead (device down or agent
        stopped), so the class has no forwarding state to verify: the
        walk is skipped entirely rather than reporting the surviving
        switches' entries toward it as spurious blackholes. Notes are
        informational — they never fail a report ({!ok} ignores them). *)

type report = {
  violations : violation list;
  notes : note list;
  classes_checked : int;   (** registered PMAC destination classes walked *)
  switches_checked : int;  (** operational switches whose tables were audited *)
  groups_checked : int;    (** select-group references audited *)
  faults_checked : int;    (** fault-matrix entries audited *)
}

val run : ?faults:Portland.Fault.t list -> Portland.Fabric.t -> report
(** Verify the deployment's installed forwarding state as of now.
    [faults] substitutes an alternative fault matrix for the fabric
    manager's (used by tests to check stale or fabricated entries);
    by default the FM's current matrix is checked. Run it after
    convergence — a fabric mid-update legitimately violates these
    invariants for a few milliseconds. *)

val ok : report -> bool
(** No violations. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_note : Format.formatter -> note -> unit

val pp_report : Format.formatter -> report -> unit
(** Operator-style dump: one line per violation, then one per note, then
    the coverage counts. *)

(** {1 Stable serialization & digests} *)

val violation_kind : violation -> string
(** Stable machine-readable tag: ["loop"], ["blackhole"],
    ["wrong_delivery"], ["bad_rewrite"], ["dead_group_member"],
    ["empty_group"], ["unknown_fault_link"], ["stale_fault"]. *)

val violation_to_json : violation -> Obs.Json.t
(** [{"kind", ("class")?, ("switch")?, "detail"}] — the JSON-stable
    violation shape consumed by [portland_sim verify --json]. *)

val note_to_json : note -> Obs.Json.t

val report_to_json : report -> Obs.Json.t
(** [{"ok", "violations", "notes", "classes_checked",
    "switches_checked", "groups_checked", "faults_checked", "digest"}],
    byte-deterministic for a given fabric state. *)

val canonical_lines : report -> string list
(** The report's violations and notes rendered and sorted — an
    order-insensitive canonical form. Two reports describing the same
    fabric state have equal canonical lines regardless of how (full run
    or incremental session) they were produced. *)

val digest_of_report : report -> string
(** 16-hex-digit FNV-1a digest over {!canonical_lines} and the coverage
    counts — the per-state verdict fingerprint the chaos engine and the
    model checker compare. *)

val class_universe : Portland.Fabric.t -> Netcore.Ipv4_addr.t list
(** The destination IPs that induce the verifier's PMAC equivalence
    classes (every host's primary IP plus its VM IPs). One registered
    binding = one class; {!Portland_policy.Check} reuses exactly this
    universe for its symbolic class-by-class comparison. *)

(** {1 Incremental verification}

    A persistent verifier session (Veriflow-style). Where {!run} re-walks
    every destination class on every call, an attached session subscribes
    to the fabric's update journal ({!Portland.Fabric.set_journal}) and
    maintains per-class verdicts plus their device dependency sets. A
    {!Incremental.refresh} maps the queued updates to the delta —
    flow-table changes to the classes whose PMAC falls under a changed
    trie prefix (on switches the class's last walk visited), link/device/
    fault/wiring changes to the classes whose dependency set contains an
    incident device — and re-walks only those, typically a handful out of
    hundreds. The refreshed report is {e equivalent} to a fresh {!run}:
    same {!canonical_lines}, same {!digest_of_report} (the differential
    test suite and {!Incremental.check_against_full} enforce this). *)

module Incremental : sig
  type t

  val attach : ?obs:Obs.t -> Portland.Fabric.t -> t
  (** Subscribe to the fabric's journal (displacing any other subscriber)
      and run one full baseline pass. [obs] (default the fabric's own
      registry) receives [verify/delta_classes] and
      [verify/incremental_ns] histograms per refresh and the
      [verify/full_equiv_checks] counter. *)

  val detach : t -> unit
  (** Unsubscribe. The session's caches stay readable but no longer
      track the fabric. *)

  val refresh : t -> report
  (** Drain queued updates, re-verify the affected classes/audits only,
      and return the up-to-date report (canonically ordered). With no
      queued updates this is cache assembly only — no walking. *)

  val check : t -> Portland.Journal.update -> violation list
  (** Feed one update by hand (it joins whatever the journal already
      queued) and refresh: the µs-scale per-update entry point. Returns
      the post-update violation list. *)

  val report : t -> report
  (** Assemble the current cached verdict without draining updates. *)

  val digest : t -> string
  (** [digest_of_report (report t)] — the verdict fingerprint used for
      model-checker work sharing. *)

  val delta_classes : t -> int
  (** Classes re-walked by the most recent refresh. *)

  val check_against_full : t -> bool
  (** Refresh, run a fresh full {!run}, and compare digests — the
      differential guarantee, counted on [verify/full_equiv_checks]. *)
end
