(** Static dataplane verifier (Veriflow-style) for a PortLand deployment.

    PortLand's fault-tolerance story rests on an invariant the runtime
    never states explicitly: after every fabric-manager update, the union
    of all switch flow tables must be loop-free and blackhole-free, and
    must route every registered PMAC to exactly its host's edge port.
    This module checks that {e statically} — it snapshots the topology,
    every switch's installed {!Switchfab.Flow_table} (entries, masks,
    priorities, ECMP select groups) and the fault matrix, then walks
    destination equivalence classes symbolically. No packet is simulated
    and no time advances; every ECMP branch is explored, not just the
    member one hash would pick.

    A destination {e class} is the set of frames sharing forwarding fate:
    since PortLand's unicast entries match only masked destination-PMAC
    prefixes, and every registered host contributes an exact-match leaf,
    the finest class granularity is one class per registered PMAC. The
    verifier walks each class from every operational edge switch (the
    fabric ingress boundary) and checks five invariants:

    + {b Loop freedom} — no class can revisit a switch on any branch.
    + {b Blackhole freedom} — every branch of every class terminates at
      the class's host: no table miss, no empty ECMP group, no unwired or
      dead output port, no punt/drop of in-fabric unicast.
    + {b Rewrite correctness} — the destination PMAC is rewritten to the
      host's AMAC exactly at the egress edge (never inside the fabric),
      the frame leaves on the edge port the PMAC encodes, and the PMAC's
      pod/position agree with the owning edge switch's coordinates.
      (The ingress AMAC→PMAC source rewrite is agent code, not table
      state, and is exercised by the runtime tests instead.)
    + {b ECMP group liveness} — no installed select-group member points
      at a port that is unwired, crosses a down link, reaches a dead
      switch, or crosses a link the fault matrix marks down.
    + {b Fault-matrix consistency} — every fault coordinate names a real
      fabric link, and no fault marks a link down that is demonstrably
      alive (both endpoints up, link up): a {e stale} fault silently
      shrinks the usable path set.

    Violations carry switch/entry provenance so a report line points at
    the exact installed entry that breaks the fabric. *)

type violation =
  | Loop of { pmac : Portland.Pmac.t; cycle : int list }
      (** The class can traverse [cycle] (device ids, first repeated
          implicitly) and never leave it. *)
  | Blackhole of {
      pmac : Portland.Pmac.t;
      switch : int;
      entry : string option;  (** deciding entry, [None] on a table miss *)
      reason : string;
    }
  | Wrong_delivery of {
      pmac : Portland.Pmac.t;
      switch : int;
      entry : string;
      port : int;
      delivered_to : int;  (** host device actually reached *)
      expected : int;      (** host device the binding names *)
    }
  | Bad_rewrite of { pmac : Portland.Pmac.t; switch : int; entry : string; reason : string }
  | Dead_group_member of { switch : int; entry : string; group : int; port : int; why : string }
  | Empty_group of { switch : int; entry : string; group : int }
      (** An installed entry defers to a select group that is undefined
          or has no members: every matching frame is dropped. *)
  | Unknown_fault_link of { fault : Portland.Fault.t; reason : string }
  | Stale_fault of { fault : Portland.Fault.t }

type report = {
  violations : violation list;
  classes_checked : int;   (** registered PMAC destination classes walked *)
  switches_checked : int;  (** operational switches whose tables were audited *)
  groups_checked : int;    (** select-group references audited *)
  faults_checked : int;    (** fault-matrix entries audited *)
}

val run : ?faults:Portland.Fault.t list -> Portland.Fabric.t -> report
(** Verify the deployment's installed forwarding state as of now.
    [faults] substitutes an alternative fault matrix for the fabric
    manager's (used by tests to check stale or fabricated entries);
    by default the FM's current matrix is checked. Run it after
    convergence — a fabric mid-update legitimately violates these
    invariants for a few milliseconds. *)

val ok : report -> bool
(** No violations. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
(** Operator-style dump: one line per violation, then the coverage
    counts. *)
