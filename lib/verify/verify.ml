open Netcore
open Portland
module FT = Switchfab.Flow_table
module SNet = Switchfab.Net
module Topo = Topology.Topo
module MR = Topology.Multirooted

type violation =
  | Loop of { pmac : Pmac.t; cycle : int list }
  | Blackhole of { pmac : Pmac.t; switch : int; entry : string option; reason : string }
  | Wrong_delivery of {
      pmac : Pmac.t;
      switch : int;
      entry : string;
      port : int;
      delivered_to : int;
      expected : int;
    }
  | Bad_rewrite of { pmac : Pmac.t; switch : int; entry : string; reason : string }
  | Dead_group_member of { switch : int; entry : string; group : int; port : int; why : string }
  | Empty_group of { switch : int; entry : string; group : int }
  | Unknown_fault_link of { fault : Fault.t; reason : string }
  | Stale_fault of { fault : Fault.t }

type note = Unreachable_class of { pmac : Pmac.t; switch : int }

type report = {
  violations : violation list;
  notes : note list;
  classes_checked : int;
  switches_checked : int;
  groups_checked : int;
  faults_checked : int;
}

(* ---------------- snapshot ---------------- *)

(* Everything the checks need, captured once: the static topology, the
   runtime wiring/liveness view, per-switch agents and coordinate reverse
   maps. Tables are read through the agents (the snapshot is of the same
   instant — nothing advances the engine while we walk). *)
type snap = {
  net : SNet.t;
  topo : Topo.t;
  spec : MR.spec;
  agents : (int, Switch_agent.t) Hashtbl.t;
  edge_at : (int * int, int) Hashtbl.t; (* (pod, position) -> device *)
  agg_at : (int * int, int) Hashtbl.t;  (* (pod, stripe) -> device *)
  core_at : (int * int, int) Hashtbl.t; (* (stripe, member) -> device *)
}

let snapshot fab =
  let net = Fabric.net fab in
  let s =
    { net;
      topo = SNet.topo net;
      spec = Fabric.spec fab;
      agents = Hashtbl.create 64;
      edge_at = Hashtbl.create 32;
      agg_at = Hashtbl.create 32;
      core_at = Hashtbl.create 32 }
  in
  List.iter
    (fun a ->
      let id = Switch_agent.switch_id a in
      Hashtbl.replace s.agents id a;
      match Switch_agent.coords a with
      | Some (Coords.Edge { pod; position }) -> Hashtbl.replace s.edge_at (pod, position) id
      | Some (Coords.Agg { pod; stripe }) -> Hashtbl.replace s.agg_at (pod, stripe) id
      | Some (Coords.Core { stripe; member }) -> Hashtbl.replace s.core_at (stripe, member) id
      | None -> ())
    (Fabric.agents fab);
  s

let device_up s id = SNet.is_up (SNet.device s.net id)
let is_host s id = (Topo.node s.topo id).Topo.kind = Topo.Host

let link_up s a b =
  match SNet.link_between s.net a b with Some l -> SNet.link_is_up l | None -> false

(* a switch's tables take part in the audit when the agent claims to be
   forwarding and the chassis is actually powered *)
let audited s id agent = Switch_agent.is_operational agent && device_up s id

(* The coordinate fault a given out-port would cross, derived from both
   endpoints' assigned coordinates (labels are the fabric manager's, not
   physical indices — stripe/pod numbering may permute freely). *)
let fault_coord_of s ~switch ~port =
  let peer_coords dev =
    match Hashtbl.find_opt s.agents dev with None -> None | Some a -> Switch_agent.coords a
  in
  match peer_coords switch with
  | Some (Coords.Edge { pod; position }) ->
    if port < s.spec.MR.hosts_per_edge then
      Some (Fault.Host_edge { pod; edge_pos = position; port })
    else begin
      match SNet.peer_of s.net ~node:switch ~port with
      | Some (up, _) ->
        (match peer_coords up with
         | Some (Coords.Agg { stripe; _ }) ->
           Some (Fault.Edge_agg { pod; edge_pos = position; stripe })
         | Some (Coords.Core { stripe; member }) ->
           (* flat wiring: leaf uplinks land on spines directly *)
           Some (Fault.Agg_core { pod; stripe; member })
         | _ -> None)
      | None -> None
    end
  | Some (Coords.Agg { pod; stripe }) ->
    (match SNet.peer_of s.net ~node:switch ~port with
     | Some (peer, _) ->
       (match peer_coords peer with
        | Some (Coords.Edge { position; _ }) ->
          Some (Fault.Edge_agg { pod; edge_pos = position; stripe })
        | Some (Coords.Core { stripe = cs; member }) ->
          (* agg–core faults are keyed by the core's own (stripe, member)
             label: unique per (pod, core) under every wiring, and equal
             to the agg's stripe under plain striping *)
          Some (Fault.Agg_core { pod; stripe = cs; member })
        | _ -> None)
     | None -> None)
  | Some (Coords.Core { stripe; member }) ->
    (match SNet.peer_of s.net ~node:switch ~port with
     | Some (peer, _) ->
       (match peer_coords peer with
        | Some (Coords.Agg { pod; _ }) | Some (Coords.Edge { pod; _ }) ->
          Some (Fault.Agg_core { pod; stripe; member })
        | _ -> None)
     | None -> None)
  | None -> None

(* the devices whose ports can cross the link a fault coordinate names —
   the audit cone of a fault-matrix delta *)
let fault_devices s = function
  | Fault.Edge_agg { pod; edge_pos; stripe } ->
    List.filter_map Fun.id
      [ Hashtbl.find_opt s.edge_at (pod, edge_pos); Hashtbl.find_opt s.agg_at (pod, stripe) ]
  | Fault.Agg_core { pod; stripe; member } ->
    let core = Hashtbl.find_opt s.core_at (stripe, member) in
    let pod_side =
      match s.spec.MR.wiring with
      | MR.Stripes ->
        (* plain striping: the fault's stripe is also the agg's label *)
        Option.to_list (Hashtbl.find_opt s.agg_at (pod, stripe))
      | MR.Ab_stripes ->
        (* row and column aggs interleave; over-approximate with every
           agg of the pod (sound for invalidation, and tiny) *)
        Hashtbl.fold (fun (p, _) d acc -> if p = pod then d :: acc else acc) s.agg_at []
      | MR.Flat ->
        Hashtbl.fold (fun (p, _) d acc -> if p = pod then d :: acc else acc) s.edge_at []
    in
    Option.to_list core @ pod_side
  | Fault.Host_edge { pod; edge_pos; port = _ } ->
    List.filter_map Fun.id [ Hashtbl.find_opt s.edge_at (pod, edge_pos) ]

(* ---------------- invariant 4: ECMP group liveness ---------------- *)

(* audit one switch's installed select-group references; returns how many
   references were checked *)
let audit_switch s fault_set id agent ~sink =
  let groups_checked = ref 0 in
  let table = Switch_agent.table agent in
  List.iter
    (fun (e : FT.entry) ->
      List.iter
        (function
          | FT.Group g ->
            incr groups_checked;
            (match FT.group_members table g with
             | None | Some [||] ->
               sink (Empty_group { switch = id; entry = e.FT.name; group = g })
             | Some members ->
               Array.iter
                 (fun port ->
                   let dead why =
                     sink
                       (Dead_group_member
                          { switch = id; entry = e.FT.name; group = g; port; why })
                   in
                   match SNet.peer_of s.net ~node:id ~port with
                   | None -> dead "port is unwired"
                   | Some (peer, _) ->
                     if not (link_up s id peer) then dead "link is down"
                     else if not (SNet.is_up (SNet.device s.net peer)) then
                       dead (Printf.sprintf "peer device %d is down" peer)
                     else begin
                       match fault_coord_of s ~switch:id ~port with
                       | Some fc when Fault.Set.mem fault_set fc ->
                         dead (Format.asprintf "fault matrix marks %a down" Fault.pp fc)
                       | Some _ | None -> ()
                     end)
                 members)
          | FT.Output _ | FT.Multi _ | FT.Flood | FT.Set_dst_mac _ | FT.Set_src_mac _
          | FT.Punt | FT.Drop -> ())
        e.FT.actions)
    (FT.entries table);
  !groups_checked

(* ---------------- invariant 5: fault-matrix consistency ---------------- *)

let check_faults s faults ~sink =
  List.iter
    (fun fault ->
      let unknown reason = sink (Unknown_fault_link { fault; reason }) in
      let find tbl key what =
        match Hashtbl.find_opt tbl key with
        | Some d -> Some d
        | None ->
          unknown (Printf.sprintf "no %s with those coordinates" what);
          None
      in
      let check_pair a b =
        (* the coordinate must name real wiring; it is stale when the link
           and both endpoint devices are demonstrably alive *)
        match SNet.link_between s.net a b with
        | None -> unknown (Printf.sprintf "devices %d and %d share no link" a b)
        | Some l ->
          if SNet.link_is_up l && device_up s a && device_up s b then
            sink (Stale_fault { fault })
      in
      match fault with
      | Fault.Edge_agg { pod; edge_pos; stripe } ->
        (match
           (find s.edge_at (pod, edge_pos) "edge switch", find s.agg_at (pod, stripe)
              "aggregation switch")
         with
         | Some e, Some a -> check_pair e a
         | _ -> ())
      | Fault.Agg_core { pod; stripe; member } ->
        (match find s.core_at (stripe, member) "core switch" with
         | None -> ()
         | Some c ->
           (* pod-side endpoint fronting that core: the same-stripe agg
              under plain striping, whichever agg is wired to the core
              under AB, the pod's single leaf under flat *)
           let pod_side =
             match s.spec.MR.wiring with
             | MR.Stripes -> find s.agg_at (pod, stripe) "aggregation switch"
             | MR.Flat -> find s.edge_at (pod, 0) "edge switch"
             | MR.Ab_stripes ->
               let found =
                 Hashtbl.fold
                   (fun (p, _) d acc ->
                     if p = pod && acc = None && SNet.link_between s.net d c <> None then
                       Some d
                     else acc)
                   s.agg_at None
               in
               if found = None then
                 unknown
                   (Printf.sprintf "no aggregation switch in pod %d is wired to that core" pod);
               found
           in
           (match pod_side with Some a -> check_pair a c | None -> ()))
      | Fault.Host_edge { pod; edge_pos; port } ->
        (match find s.edge_at (pod, edge_pos) "edge switch" with
         | None -> ()
         | Some e ->
           if port < 0 || port >= s.spec.MR.hosts_per_edge then
             unknown (Printf.sprintf "port %d is not a host port" port)
           else begin
             (* an unplugged host port (e.g. mid-migration) is a live
                fault, not a stale one *)
             match SNet.peer_of s.net ~node:e ~port with
             | Some (h, _) -> check_pair e h
             | None -> ()
           end))
    faults

(* ---------------- invariants 1-3: the symbolic class walk ---------------- *)

(* One destination class per registered binding, walked from every
   operational edge switch. States are (device, current destination MAC);
   rewrites move the state into the AMAC space, which must only happen on
   the final hop. DFS colors detect cycles; a state is processed once per
   class no matter how many ingresses reach it.

   [sink] receives the class's violations in discovery order, [note]
   its notes, and [dep] every device id the verdict was computed from —
   the class's invalidation set for the incremental engine. A class whose
   owning edge switch is dead (device down or agent stopped) is not
   walked at all: its forwarding state is {e legitimately} gone, and the
   entries still pointing at it on surviving switches describe frames
   that cannot be delivered no matter what the tables say. That is an
   {!note} ([Unreachable_class]), not a spurious blackhole. *)
let walk_class s (b : Msg.host_binding) ~sink ~note ~dep =
  let pmac = b.Msg.pmac in
  let dst0 = Mac_addr.to_int (Pmac.to_mac pmac) in
  let amac_int = Mac_addr.to_int b.Msg.amac in
  let owner_edge = b.Msg.edge_switch in
  dep owner_edge;
  match Hashtbl.find_opt s.agents owner_edge with
  | Some a when not (audited s owner_edge a) ->
    note (Unreachable_class { pmac; switch = owner_edge })
  | owner_agent ->
    let expected_host =
      match SNet.peer_of s.net ~node:owner_edge ~port:pmac.Pmac.port with
      | Some (h, _) when is_host s h -> Some h
      | Some _ | None -> None
    in
    (match expected_host with
     | None ->
       sink
         (Blackhole
            { pmac; switch = owner_edge; entry = None;
              reason =
                Printf.sprintf "binding names edge port %d, but no host hangs there"
                  pmac.Pmac.port })
     | Some _ -> ());
    (* invariant 3, location side: the PMAC must encode the owning edge's
       assigned coordinates *)
    (match owner_agent with
     | Some a ->
       (match Switch_agent.coords a with
        | Some (Coords.Edge { pod; position })
          when pod = pmac.Pmac.pod && position = pmac.Pmac.position -> ()
        | Some c ->
          sink
            (Bad_rewrite
               { pmac; switch = owner_edge; entry = "(binding)";
                 reason =
                   Format.asprintf "PMAC location disagrees with edge coordinates %a" Coords.pp
                     c })
        | None -> ())
     | None ->
       sink
         (Blackhole
            { pmac; switch = owner_edge; entry = None;
              reason = "binding names a device that is not a switch" }));
    let colors : (int * int, [ `Active | `Done ]) Hashtbl.t = Hashtbl.create 64 in
    let seen_cycles = Hashtbl.create 4 in
    let record_cycle path_rev entered =
      (* path_rev: current device first; the cycle is entered..current *)
      let rec upto acc = function
        | [] -> acc
        | d :: rest -> if d = entered then d :: acc else upto (d :: acc) rest
      in
      let cycle = upto [] path_rev in
      (* canonicalize (rotate to the smallest id) so one physical cycle
         reached from several ingresses reports once *)
      let n = List.length cycle in
      let arr = Array.of_list cycle in
      let min_i = ref 0 in
      Array.iteri (fun i d -> if d < arr.(!min_i) then min_i := i) arr;
      let canon = List.init n (fun i -> arr.((i + !min_i) mod n)) in
      if not (Hashtbl.mem seen_cycles canon) then begin
        Hashtbl.replace seen_cycles canon ();
        sink (Loop { pmac; cycle = canon })
      end
    in
    let rec visit dev dst path_rev =
      let state = (dev, dst) in
      match Hashtbl.find_opt colors state with
      | Some `Done -> ()
      | Some `Active -> record_cycle path_rev dev
      | None ->
        Hashtbl.replace colors state `Active;
        dep dev;
        let path_rev = dev :: path_rev in
        let blackhole ?entry reason = sink (Blackhole { pmac; switch = dev; entry; reason }) in
        (if not (device_up s dev) then blackhole "switch is down but still on a forwarding path"
         else
           match Hashtbl.find_opt s.agents dev with
           | None -> blackhole "forwarding path reaches a non-switch device"
           | Some agent ->
             let table = Switch_agent.table agent in
             (match FT.lookup_dst table dst with
              | None -> blackhole "table miss"
              | Some e ->
                let entry = e.FT.name in
                let cur_dst = ref dst in
                let outs = ref [] in
                List.iter
                  (function
                    | FT.Output p -> outs := (p, !cur_dst) :: !outs
                    | FT.Group g ->
                      (match FT.group_members table g with
                       | None | Some [||] ->
                         blackhole ~entry
                           (Printf.sprintf "ECMP group %d selects nothing; matches drop" g)
                       | Some members ->
                         Array.iter (fun p -> outs := (p, !cur_dst) :: !outs) members)
                    | FT.Set_dst_mac m -> cur_dst := Mac_addr.to_int m
                    | FT.Set_src_mac _ -> ()
                    | FT.Punt ->
                      blackhole ~entry "in-fabric unicast punted to the control agent"
                    | FT.Drop -> blackhole ~entry "explicit drop"
                    | FT.Flood | FT.Multi _ ->
                      blackhole ~entry "non-unicast action on a unicast class")
                  e.FT.actions;
                if e.FT.actions = [] then blackhole ~entry "entry has no actions";
                List.iter
                  (fun (port, out_dst) ->
                    match SNet.peer_of s.net ~node:dev ~port with
                    | None ->
                      blackhole ~entry (Printf.sprintf "output port %d is unwired" port)
                    | Some (next, _) ->
                      if not (link_up s dev next) then
                        blackhole ~entry
                          (Printf.sprintf "output port %d crosses a down link" port)
                      else if is_host s next then begin
                        match expected_host with
                        | Some h when h = next ->
                          if out_dst <> amac_int then
                            sink
                              (Bad_rewrite
                                 { pmac; switch = dev; entry;
                                   reason =
                                     Printf.sprintf
                                       "delivered with destination %012x, expected the \
                                        host's AMAC %012x"
                                       out_dst amac_int })
                        | Some h ->
                          sink
                            (Wrong_delivery
                               { pmac; switch = dev; entry; port; delivered_to = next;
                                 expected = h })
                        | None ->
                          (* already reported: the binding itself is broken *)
                          ()
                      end
                      else begin
                        if out_dst <> dst0 then
                          sink
                            (Bad_rewrite
                               { pmac; switch = dev; entry;
                                 reason =
                                   Printf.sprintf
                                     "destination rewritten to %012x before the egress edge"
                                     out_dst });
                        visit next out_dst path_rev
                      end)
                  (List.rev !outs)));
        Hashtbl.replace colors state `Done
    in
    Hashtbl.iter
      (fun (_pod, _pos) dev ->
        match Hashtbl.find_opt s.agents dev with
        | Some a when audited s dev a -> visit dev dst0 []
        | Some _ | None -> ())
      s.edge_at

(* ---------------- entry point ---------------- *)

let class_universe fab =
  List.concat_map (fun h -> Host_agent.ip h :: Host_agent.vm_ips h) (Fabric.hosts fab)

let run ?faults fab =
  let s = snapshot fab in
  let fm = Fabric.fabric_manager fab in
  let fault_list = match faults with Some f -> f | None -> Fabric_manager.fault_set fm in
  let fault_set = Fault.Set.of_list fault_list in
  let bindings =
    List.filter_map (fun ip -> Fabric_manager.lookup_binding fm ip) (class_universe fab)
  in
  let out = ref [] in
  let notes = ref [] in
  let sink v = out := v :: !out in
  List.iter
    (fun b -> walk_class s b ~sink ~note:(fun n -> notes := n :: !notes) ~dep:ignore)
    bindings;
  let switches_checked = ref 0 in
  let groups_checked = ref 0 in
  Hashtbl.iter
    (fun id agent ->
      if audited s id agent then begin
        incr switches_checked;
        groups_checked := !groups_checked + audit_switch s fault_set id agent ~sink
      end)
    s.agents;
  check_faults s fault_list ~sink;
  { violations = List.rev !out;
    notes = List.rev !notes;
    classes_checked = List.length bindings;
    switches_checked = !switches_checked;
    groups_checked = !groups_checked;
    faults_checked = List.length fault_list }

let ok r = r.violations = []

let pp_violation fmt = function
  | Loop { pmac; cycle } ->
    Format.fprintf fmt "loop: class %a cycles through devices [%s]" Pmac.pp pmac
      (String.concat " -> " (List.map string_of_int cycle))
  | Blackhole { pmac; switch; entry; reason } ->
    Format.fprintf fmt "blackhole: class %a at switch %d%s: %s" Pmac.pp pmac switch
      (match entry with Some e -> Printf.sprintf " (entry %s)" e | None -> "")
      reason
  | Wrong_delivery { pmac; switch; entry; port; delivered_to; expected } ->
    Format.fprintf fmt
      "wrong delivery: class %a at switch %d (entry %s) exits port %d to device %d, \
       expected host device %d"
      Pmac.pp pmac switch entry port delivered_to expected
  | Bad_rewrite { pmac; switch; entry; reason } ->
    Format.fprintf fmt "bad rewrite: class %a at switch %d (entry %s): %s" Pmac.pp pmac
      switch entry reason
  | Dead_group_member { switch; entry; group; port; why } ->
    Format.fprintf fmt "dead group member: switch %d entry %s group %d port %d: %s" switch
      entry group port why
  | Empty_group { switch; entry; group } ->
    Format.fprintf fmt "empty group: switch %d entry %s defers to group %d with no members"
      switch entry group
  | Unknown_fault_link { fault; reason } ->
    Format.fprintf fmt "unknown fault link: %a: %s" Fault.pp fault reason
  | Stale_fault { fault } ->
    Format.fprintf fmt "stale fault: %a marks a live link down" Fault.pp fault

let pp_note fmt (Unreachable_class { pmac; switch }) =
  Format.fprintf fmt "unreachable class: %a owned by dead edge switch %d (walk skipped)"
    Pmac.pp pmac switch

let pp_report fmt r =
  List.iter (fun v -> Format.fprintf fmt "%a@." pp_violation v) r.violations;
  List.iter (fun n -> Format.fprintf fmt "note: %a@." pp_note n) r.notes;
  Format.fprintf fmt
    "%s: %d violation(s); %d classes, %d switches, %d group refs, %d faults checked@."
    (if ok r then "PASS" else "FAIL")
    (List.length r.violations) r.classes_checked r.switches_checked r.groups_checked
    r.faults_checked

(* ---------------- stable serialization & digests ---------------- *)

let violation_kind = function
  | Loop _ -> "loop"
  | Blackhole _ -> "blackhole"
  | Wrong_delivery _ -> "wrong_delivery"
  | Bad_rewrite _ -> "bad_rewrite"
  | Dead_group_member _ -> "dead_group_member"
  | Empty_group _ -> "empty_group"
  | Unknown_fault_link _ -> "unknown_fault_link"
  | Stale_fault _ -> "stale_fault"

let violation_to_json v =
  let open Obs.Json in
  let pmac p = Str (Format.asprintf "%a" Pmac.pp p) in
  let fields =
    match v with
    | Loop { pmac = p; _ } -> [ ("class", pmac p) ]
    | Blackhole { pmac = p; switch; _ }
    | Wrong_delivery { pmac = p; switch; _ }
    | Bad_rewrite { pmac = p; switch; _ } -> [ ("class", pmac p); ("switch", Int switch) ]
    | Dead_group_member { switch; _ } | Empty_group { switch; _ } ->
      [ ("switch", Int switch) ]
    | Unknown_fault_link _ | Stale_fault _ -> []
  in
  Obj
    ((("kind", Str (violation_kind v)) :: fields)
     @ [ ("detail", Str (Format.asprintf "%a" pp_violation v)) ])

let note_to_json (Unreachable_class { pmac; switch }) =
  let open Obs.Json in
  Obj
    [ ("kind", Str "unreachable_class");
      ("class", Str (Format.asprintf "%a" Pmac.pp pmac));
      ("switch", Int switch) ]

(* order-insensitive canonical form: one physical fabric state must render
   to the same lines no matter whether a full run or an incremental
   session produced the report *)
let canonical_lines r =
  List.sort String.compare
    (List.map (Format.asprintf "%a" pp_violation) r.violations
     @ List.map (Format.asprintf "note: %a" pp_note) r.notes)

let digest_of_report r =
  (* FNV-1a (offset truncated to 62 bits, as elsewhere in the repo) over
     the canonical lines and the coverage counts *)
  let h = ref 0x3bf29ce484222325 in
  let feed_byte b = h := (!h lxor b) * 0x100000001b3 land max_int in
  let feed_string s =
    String.iter (fun ch -> feed_byte (Char.code ch)) s;
    feed_byte 0
  in
  List.iter feed_string (canonical_lines r);
  List.iter
    (fun i -> feed_string (string_of_int i))
    [ r.classes_checked; r.switches_checked; r.groups_checked; r.faults_checked ];
  Printf.sprintf "%016x" !h

let report_to_json r =
  let open Obs.Json in
  Obj
    [ ("ok", Bool (ok r));
      ("violations", List (List.map violation_to_json r.violations));
      ("notes", List (List.map note_to_json r.notes));
      ("classes_checked", Int r.classes_checked);
      ("switches_checked", Int r.switches_checked);
      ("groups_checked", Int r.groups_checked);
      ("faults_checked", Int r.faults_checked);
      ("digest", Str (digest_of_report r)) ]

(* ---------------- the incremental engine ---------------- *)

module Incremental = struct
  (* Veriflow-style delta verification: a persistent session keeps one
     verdict record per destination class plus per-switch group audits and
     the fault audit, each tagged with the set of devices it was computed
     from. The fabric's update journal marks records dirty; [refresh]
     re-walks only the dirty ones. Flow-table churn is absorbed through
     per-switch shadow copies: PortLand recomputes tables with a wholesale
     clear + reinstall, so the journal only marks the switch touched and
     the refresh diffs current entries against the shadow to recover the
     real (usually empty or tiny) delta with prefix provenance. *)

  type cls = {
    c_binding : Msg.host_binding;
    c_viols : violation list; (* discovery order, like a full walk *)
    c_notes : note list;
    c_deps : (int, unit) Hashtbl.t; (* devices the verdict depends on *)
  }

  type shadow = {
    sh_entries : (string, FT.entry) Hashtbl.t;
    sh_groups : (int, int array) Hashtbl.t;
  }

  type audit = { a_viols : violation list; a_groups : int }

  type delta = {
    d_prefixes : (int * int) list; (* (value, len) of changed entries *)
    d_residual : bool;             (* a non-prefix entry changed *)
    d_groups : bool;               (* a select group changed *)
  }

  type t = {
    fab : Fabric.t;
    classes : (Ipv4_addr.t, cls) Hashtbl.t;
    shadows : (int, shadow) Hashtbl.t;
    audits : (int, audit) Hashtbl.t;
    mutable fault_viols : violation list;
    mutable faults_checked : int;
    pending : Journal.update Queue.t;
    mutable full_dirty : bool;
    dirty_classes : (Ipv4_addr.t, unit) Hashtbl.t;
    touched : (int, unit) Hashtbl.t;      (* switches with flow-table traffic *)
    dirty_audits : (int, unit) Hashtbl.t;
    mutable all_audits_dirty : bool;
    mutable faults_dirty : bool;
    mutable last_delta : int;
    m_delta : Obs.Histogram.t;
    m_ns : Obs.Histogram.t;
    m_equiv : Obs.Counter.t;
  }

  let mac_bits = 48

  let prefix_matches pm (v, len) = (pm lxor v) lsr (mac_bits - len) = 0

  let class_affected d (c : cls) =
    d.d_residual || d.d_groups
    || (let pm = Mac_addr.to_int (Pmac.to_mac c.c_binding.Msg.pmac) in
        List.exists (prefix_matches pm) d.d_prefixes)

  let dirty_deps t dev =
    Hashtbl.iter
      (fun ip c -> if Hashtbl.mem c.c_deps dev then Hashtbl.replace t.dirty_classes ip ())
      t.classes

  let apply_update t s (u : Journal.update) =
    match u with
    | Journal.Flow { switch; change = _ } -> Hashtbl.replace t.touched switch ()
    | Journal.Binding { ip } -> Hashtbl.replace t.dirty_classes ip ()
    | Journal.Coords_assigned _ | Journal.Fm_restarted ->
      (* a coordinate grant can create a brand-new edge ingress (which
         re-walks every class) and relabels the coordinate reverse maps
         every audit leans on; an FM restart invalidates all soft state *)
      t.full_dirty <- true
    | Journal.Fm_shard_failover _ ->
      (* the shard rebuild is digest-checked to be state-identical, so
         no class can have changed verdict *)
      ()
    | Journal.Fault_delta { fault; active = _ } ->
      t.faults_dirty <- true;
      List.iter (fun d -> Hashtbl.replace t.dirty_audits d ()) (fault_devices s fault)
    | Journal.Link_state { a; b; up = _ } ->
      t.faults_dirty <- true;
      Hashtbl.replace t.dirty_audits a ();
      Hashtbl.replace t.dirty_audits b ();
      dirty_deps t a;
      dirty_deps t b
    | Journal.Device_state { device; up } ->
      t.faults_dirty <- true;
      (* any switch's audit may cite this device as a peer *)
      t.all_audits_dirty <- true;
      dirty_deps t device;
      if up then begin
        match Hashtbl.find_opt s.agents device with
        | Some a
          when (match Switch_agent.coords a with
                | Some (Coords.Edge _) -> true
                | Some _ | None -> false) ->
          (* a revived edge is a fresh ingress for every class *)
          t.full_dirty <- true
        | Some _ | None -> ()
      end
    | Journal.Wiring { device } ->
      t.faults_dirty <- true;
      Hashtbl.replace t.dirty_audits device ();
      dirty_deps t device

  let shadow_of_table table =
    let sh = { sh_entries = Hashtbl.create 32; sh_groups = Hashtbl.create 8 } in
    List.iter (fun (e : FT.entry) -> Hashtbl.replace sh.sh_entries e.FT.name e)
      (FT.entries table);
    List.iter (fun (g, m) -> Hashtbl.replace sh.sh_groups g m) (FT.groups table);
    sh

  let empty_shadow () = { sh_entries = Hashtbl.create 1; sh_groups = Hashtbl.create 1 }

  (* diff a touched switch's live table against its shadow, replace the
     shadow, and return the real delta *)
  let sync_switch t s sw =
    let old =
      match Hashtbl.find_opt t.shadows sw with Some sh -> sh | None -> empty_shadow ()
    in
    let cur_entries, cur_groups =
      match Hashtbl.find_opt s.agents sw with
      | Some a ->
        let tbl = Switch_agent.table a in
        (FT.entries tbl, FT.groups tbl)
      | None -> ([], [])
    in
    let prefixes = ref [] in
    let residual = ref false in
    let groups_ch = ref false in
    let mark (e : FT.entry) =
      match FT.indexable_prefix e.FT.mtch with
      | Some p -> prefixes := p :: !prefixes
      | None -> residual := true
    in
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (e : FT.entry) ->
        Hashtbl.replace seen e.FT.name ();
        match Hashtbl.find_opt old.sh_entries e.FT.name with
        | Some o when o = e -> ()
        | Some o ->
          mark o;
          mark e
        | None -> mark e)
      cur_entries;
    Hashtbl.iter (fun name o -> if not (Hashtbl.mem seen name) then mark o) old.sh_entries;
    let gseen = Hashtbl.create 8 in
    List.iter
      (fun (g, m) ->
        Hashtbl.replace gseen g ();
        match Hashtbl.find_opt old.sh_groups g with
        | Some om when om = m -> ()
        | Some _ | None -> groups_ch := true)
      cur_groups;
    Hashtbl.iter (fun g _ -> if not (Hashtbl.mem gseen g) then groups_ch := true)
      old.sh_groups;
    let sh = { sh_entries = Hashtbl.create 32; sh_groups = Hashtbl.create 8 } in
    List.iter (fun (e : FT.entry) -> Hashtbl.replace sh.sh_entries e.FT.name e) cur_entries;
    List.iter (fun (g, m) -> Hashtbl.replace sh.sh_groups g m) cur_groups;
    Hashtbl.replace t.shadows sw sh;
    { d_prefixes = !prefixes; d_residual = !residual; d_groups = !groups_ch }

  let walk_one s b =
    let viols = ref [] in
    let notes = ref [] in
    let deps = Hashtbl.create 16 in
    walk_class s b
      ~sink:(fun v -> viols := v :: !viols)
      ~note:(fun n -> notes := n :: !notes)
      ~dep:(fun d -> Hashtbl.replace deps d ());
    { c_binding = b; c_viols = List.rev !viols; c_notes = List.rev !notes; c_deps = deps }

  (* canonical-order report assembled from the per-record caches *)
  let report t =
    let viols = Hashtbl.fold (fun _ c acc -> List.rev_append c.c_viols acc) t.classes [] in
    let viols = Hashtbl.fold (fun _ a acc -> List.rev_append a.a_viols acc) t.audits viols in
    let viols = List.rev_append t.fault_viols viols in
    let notes = Hashtbl.fold (fun _ c acc -> List.rev_append c.c_notes acc) t.classes [] in
    let sorted pp l =
      List.map snd
        (List.sort compare (List.map (fun v -> (Format.asprintf "%a" pp v, v)) l))
    in
    { violations = sorted pp_violation viols;
      notes = sorted pp_note notes;
      classes_checked = Hashtbl.length t.classes;
      switches_checked = Hashtbl.length t.audits;
      groups_checked = Hashtbl.fold (fun _ a acc -> acc + a.a_groups) t.audits 0;
      faults_checked = t.faults_checked }

  let refresh t =
    let t0 = Sys.time () in
    let fab = t.fab in
    let s = snapshot fab in
    while not (Queue.is_empty t.pending) do
      apply_update t s (Queue.pop t.pending)
    done;
    let fm = Fabric.fabric_manager fab in
    let fault_list = Fabric_manager.fault_set fm in
    let fault_set = Fault.Set.of_list fault_list in
    if t.full_dirty then begin
      Hashtbl.reset t.classes;
      Hashtbl.reset t.dirty_classes;
      Hashtbl.reset t.shadows;
      Hashtbl.reset t.touched;
      Hashtbl.reset t.audits;
      Hashtbl.reset t.dirty_audits;
      t.all_audits_dirty <- true;
      t.faults_dirty <- true;
      (* seed the shadows so subsequent refreshes can diff *)
      Hashtbl.iter
        (fun id a -> Hashtbl.replace t.shadows id (shadow_of_table (Switch_agent.table a)))
        s.agents
    end
    else begin
      Hashtbl.iter
        (fun sw () ->
          let d = sync_switch t s sw in
          if d.d_prefixes <> [] || d.d_residual || d.d_groups then begin
            Hashtbl.replace t.dirty_audits sw ();
            Hashtbl.iter
              (fun ip c ->
                if Hashtbl.mem c.c_deps sw && class_affected d c then
                  Hashtbl.replace t.dirty_classes ip ())
              t.classes
          end)
        t.touched;
      Hashtbl.reset t.touched
    end;
    (* destination classes *)
    let universe = class_universe fab in
    let live = Hashtbl.create 64 in
    let walked = ref 0 in
    List.iter
      (fun ip ->
        match Fabric_manager.lookup_binding fm ip with
        | None -> Hashtbl.remove t.classes ip
        | Some b ->
          Hashtbl.replace live ip ();
          let need =
            t.full_dirty
            || Hashtbl.mem t.dirty_classes ip
            ||
            (match Hashtbl.find_opt t.classes ip with
             | None -> true
             | Some c -> c.c_binding <> b)
          in
          if need then begin
            incr walked;
            Hashtbl.replace t.classes ip (walk_one s b)
          end)
      universe;
    let gone =
      Hashtbl.fold (fun ip _ acc -> if Hashtbl.mem live ip then acc else ip :: acc)
        t.classes []
    in
    List.iter (Hashtbl.remove t.classes) gone;
    Hashtbl.reset t.dirty_classes;
    (* per-switch group audits *)
    let stale =
      Hashtbl.fold
        (fun id _ acc ->
          match Hashtbl.find_opt s.agents id with
          | Some a when audited s id a -> acc
          | Some _ | None -> id :: acc)
        t.audits []
    in
    List.iter (Hashtbl.remove t.audits) stale;
    Hashtbl.iter
      (fun id agent ->
        if audited s id agent
           && (t.all_audits_dirty || Hashtbl.mem t.dirty_audits id
               || not (Hashtbl.mem t.audits id))
        then begin
          let out = ref [] in
          let n = audit_switch s fault_set id agent ~sink:(fun v -> out := v :: !out) in
          Hashtbl.replace t.audits id { a_viols = List.rev !out; a_groups = n }
        end)
      s.agents;
    t.all_audits_dirty <- false;
    Hashtbl.reset t.dirty_audits;
    (* fault-matrix audit *)
    if t.faults_dirty then begin
      let out = ref [] in
      check_faults s fault_list ~sink:(fun v -> out := v :: !out);
      t.fault_viols <- List.rev !out;
      t.faults_checked <- List.length fault_list;
      t.faults_dirty <- false
    end;
    t.full_dirty <- false;
    t.last_delta <- !walked;
    Obs.Histogram.observe t.m_delta (float_of_int !walked);
    Obs.Histogram.observe t.m_ns ((Sys.time () -. t0) *. 1e9);
    report t

  let attach ?obs fab =
    let o = match obs with Some o -> o | None -> Fabric.obs fab in
    let t =
      { fab;
        classes = Hashtbl.create 256;
        shadows = Hashtbl.create 64;
        audits = Hashtbl.create 64;
        fault_viols = [];
        faults_checked = 0;
        pending = Queue.create ();
        full_dirty = true;
        dirty_classes = Hashtbl.create 64;
        touched = Hashtbl.create 64;
        dirty_audits = Hashtbl.create 64;
        all_audits_dirty = true;
        faults_dirty = true;
        last_delta = 0;
        m_delta = Obs.histogram o ~subsystem:"verify" ~name:"delta_classes" ();
        m_ns = Obs.histogram o ~subsystem:"verify" ~name:"incremental_ns" ();
        m_equiv = Obs.counter o ~subsystem:"verify" ~name:"full_equiv_checks" () }
    in
    Fabric.set_journal fab (Some (fun u -> Queue.push u t.pending));
    ignore (refresh t);
    t

  let detach t = Fabric.set_journal t.fab None
  let delta_classes t = t.last_delta
  let digest t = digest_of_report (report t)

  let check t u =
    Queue.push u t.pending;
    (refresh t).violations

  let check_against_full t =
    let r = refresh t in
    let full = run t.fab in
    Obs.Counter.incr t.m_equiv;
    digest_of_report r = digest_of_report full
end
