open Netcore
open Portland
module FT = Switchfab.Flow_table
module SNet = Switchfab.Net
module Topo = Topology.Topo
module MR = Topology.Multirooted

type violation =
  | Loop of { pmac : Pmac.t; cycle : int list }
  | Blackhole of { pmac : Pmac.t; switch : int; entry : string option; reason : string }
  | Wrong_delivery of {
      pmac : Pmac.t;
      switch : int;
      entry : string;
      port : int;
      delivered_to : int;
      expected : int;
    }
  | Bad_rewrite of { pmac : Pmac.t; switch : int; entry : string; reason : string }
  | Dead_group_member of { switch : int; entry : string; group : int; port : int; why : string }
  | Empty_group of { switch : int; entry : string; group : int }
  | Unknown_fault_link of { fault : Fault.t; reason : string }
  | Stale_fault of { fault : Fault.t }

type report = {
  violations : violation list;
  classes_checked : int;
  switches_checked : int;
  groups_checked : int;
  faults_checked : int;
}

(* ---------------- snapshot ---------------- *)

(* Everything the checks need, captured once: the static topology, the
   runtime wiring/liveness view, per-switch agents and coordinate reverse
   maps. Tables are read through the agents (the snapshot is of the same
   instant — nothing advances the engine while we walk). *)
type snap = {
  net : SNet.t;
  topo : Topo.t;
  spec : MR.spec;
  agents : (int, Switch_agent.t) Hashtbl.t;
  edge_at : (int * int, int) Hashtbl.t; (* (pod, position) -> device *)
  agg_at : (int * int, int) Hashtbl.t;  (* (pod, stripe) -> device *)
  core_at : (int * int, int) Hashtbl.t; (* (stripe, member) -> device *)
  mutable out : violation list;         (* accumulated in reverse *)
}

let add s v = s.out <- v :: s.out

let snapshot fab =
  let net = Fabric.net fab in
  let s =
    { net;
      topo = SNet.topo net;
      spec = Fabric.spec fab;
      agents = Hashtbl.create 64;
      edge_at = Hashtbl.create 32;
      agg_at = Hashtbl.create 32;
      core_at = Hashtbl.create 32;
      out = [] }
  in
  List.iter
    (fun a ->
      let id = Switch_agent.switch_id a in
      Hashtbl.replace s.agents id a;
      match Switch_agent.coords a with
      | Some (Coords.Edge { pod; position }) -> Hashtbl.replace s.edge_at (pod, position) id
      | Some (Coords.Agg { pod; stripe }) -> Hashtbl.replace s.agg_at (pod, stripe) id
      | Some (Coords.Core { stripe; member }) -> Hashtbl.replace s.core_at (stripe, member) id
      | None -> ())
    (Fabric.agents fab);
  s

let device_up s id = SNet.is_up (SNet.device s.net id)
let is_host s id = (Topo.node s.topo id).Topo.kind = Topo.Host

let link_up s a b =
  match SNet.link_between s.net a b with Some l -> SNet.link_is_up l | None -> false

(* The coordinate fault a given out-port would cross, derived from both
   endpoints' assigned coordinates (labels are the fabric manager's, not
   physical indices — stripe/pod numbering may permute freely). *)
let fault_coord_of s ~switch ~port =
  let peer_coords dev =
    match Hashtbl.find_opt s.agents dev with None -> None | Some a -> Switch_agent.coords a
  in
  match peer_coords switch with
  | Some (Coords.Edge { pod; position }) ->
    if port < s.spec.MR.hosts_per_edge then
      Some (Fault.Host_edge { pod; edge_pos = position; port })
    else begin
      match SNet.peer_of s.net ~node:switch ~port with
      | Some (agg, _) ->
        (match peer_coords agg with
         | Some (Coords.Agg { stripe; _ }) ->
           Some (Fault.Edge_agg { pod; edge_pos = position; stripe })
         | _ -> None)
      | None -> None
    end
  | Some (Coords.Agg { pod; stripe }) ->
    (match SNet.peer_of s.net ~node:switch ~port with
     | Some (peer, _) ->
       (match peer_coords peer with
        | Some (Coords.Edge { position; _ }) ->
          Some (Fault.Edge_agg { pod; edge_pos = position; stripe })
        | Some (Coords.Core { stripe = cs; member }) when cs = stripe ->
          Some (Fault.Agg_core { pod; stripe; member })
        | _ -> None)
     | None -> None)
  | Some (Coords.Core { stripe; member }) ->
    (match SNet.peer_of s.net ~node:switch ~port with
     | Some (peer, _) ->
       (match peer_coords peer with
        | Some (Coords.Agg { pod; _ }) -> Some (Fault.Agg_core { pod; stripe; member })
        | _ -> None)
     | None -> None)
  | None -> None

(* ---------------- invariant 4: ECMP group liveness ---------------- *)

let check_groups s fault_set =
  let groups_checked = ref 0 in
  let switches = ref 0 in
  Hashtbl.iter
    (fun id agent ->
      if Switch_agent.is_operational agent && device_up s id then begin
        incr switches;
        let table = Switch_agent.table agent in
        List.iter
          (fun (e : FT.entry) ->
            List.iter
              (function
                | FT.Group g ->
                  incr groups_checked;
                  (match FT.group_members table g with
                   | None | Some [||] ->
                     add s (Empty_group { switch = id; entry = e.FT.name; group = g })
                   | Some members ->
                     Array.iter
                       (fun port ->
                         let dead why =
                           add s
                             (Dead_group_member
                                { switch = id; entry = e.FT.name; group = g; port; why })
                         in
                         match SNet.peer_of s.net ~node:id ~port with
                         | None -> dead "port is unwired"
                         | Some (peer, _) ->
                           if not (link_up s id peer) then dead "link is down"
                           else if not (SNet.is_up (SNet.device s.net peer)) then
                             dead (Printf.sprintf "peer device %d is down" peer)
                           else begin
                             match fault_coord_of s ~switch:id ~port with
                             | Some fc when Fault.Set.mem fault_set fc ->
                               dead
                                 (Format.asprintf "fault matrix marks %a down" Fault.pp fc)
                             | Some _ | None -> ()
                           end)
                       members)
                | FT.Output _ | FT.Multi _ | FT.Flood | FT.Set_dst_mac _ | FT.Set_src_mac _
                | FT.Punt | FT.Drop -> ())
              e.FT.actions)
          (FT.entries table)
      end)
    s.agents;
  (!switches, !groups_checked)

(* ---------------- invariant 5: fault-matrix consistency ---------------- *)

let check_faults s faults =
  List.iter
    (fun fault ->
      let unknown reason = add s (Unknown_fault_link { fault; reason }) in
      let find tbl key what =
        match Hashtbl.find_opt tbl key with
        | Some d -> Some d
        | None ->
          unknown (Printf.sprintf "no %s with those coordinates" what);
          None
      in
      let check_pair a b =
        (* the coordinate must name real wiring; it is stale when the link
           and both endpoint devices are demonstrably alive *)
        match SNet.link_between s.net a b with
        | None -> unknown (Printf.sprintf "devices %d and %d share no link" a b)
        | Some l ->
          if SNet.link_is_up l && device_up s a && device_up s b then
            add s (Stale_fault { fault })
      in
      match fault with
      | Fault.Edge_agg { pod; edge_pos; stripe } ->
        (match
           (find s.edge_at (pod, edge_pos) "edge switch", find s.agg_at (pod, stripe)
              "aggregation switch")
         with
         | Some e, Some a -> check_pair e a
         | _ -> ())
      | Fault.Agg_core { pod; stripe; member } ->
        (match
           (find s.agg_at (pod, stripe) "aggregation switch", find s.core_at (stripe, member)
              "core switch")
         with
         | Some a, Some c -> check_pair a c
         | _ -> ())
      | Fault.Host_edge { pod; edge_pos; port } ->
        (match find s.edge_at (pod, edge_pos) "edge switch" with
         | None -> ()
         | Some e ->
           if port < 0 || port >= s.spec.MR.hosts_per_edge then
             unknown (Printf.sprintf "port %d is not a host port" port)
           else begin
             (* an unplugged host port (e.g. mid-migration) is a live
                fault, not a stale one *)
             match SNet.peer_of s.net ~node:e ~port with
             | Some (h, _) -> check_pair e h
             | None -> ()
           end))
    faults;
  List.length faults

(* ---------------- invariants 1-3: the symbolic class walk ---------------- *)

(* One destination class per registered binding, walked from every
   operational edge switch. States are (device, current destination MAC);
   rewrites move the state into the AMAC space, which must only happen on
   the final hop. DFS colors detect cycles; a state is processed once per
   class no matter how many ingresses reach it. *)
let walk_class s (b : Msg.host_binding) =
  let pmac = b.Msg.pmac in
  let dst0 = Mac_addr.to_int (Pmac.to_mac pmac) in
  let amac_int = Mac_addr.to_int b.Msg.amac in
  let owner_edge = b.Msg.edge_switch in
  let expected_host =
    match SNet.peer_of s.net ~node:owner_edge ~port:pmac.Pmac.port with
    | Some (h, _) when is_host s h -> Some h
    | Some _ | None -> None
  in
  (match expected_host with
   | None ->
     add s
       (Blackhole
          { pmac; switch = owner_edge; entry = None;
            reason =
              Printf.sprintf "binding names edge port %d, but no host hangs there"
                pmac.Pmac.port })
   | Some _ -> ());
  (* invariant 3, location side: the PMAC must encode the owning edge's
     assigned coordinates *)
  (match Hashtbl.find_opt s.agents owner_edge with
   | Some a ->
     (match Switch_agent.coords a with
      | Some (Coords.Edge { pod; position })
        when pod = pmac.Pmac.pod && position = pmac.Pmac.position -> ()
      | Some c ->
        add s
          (Bad_rewrite
             { pmac; switch = owner_edge; entry = "(binding)";
               reason =
                 Format.asprintf "PMAC location disagrees with edge coordinates %a" Coords.pp
                   c })
      | None -> ())
   | None ->
     add s
       (Blackhole
          { pmac; switch = owner_edge; entry = None;
            reason = "binding names a device that is not a switch" }));
  let colors : (int * int, [ `Active | `Done ]) Hashtbl.t = Hashtbl.create 64 in
  let seen_cycles = Hashtbl.create 4 in
  let record_cycle path_rev entered =
    (* path_rev: current device first; the cycle is entered..current *)
    let rec upto acc = function
      | [] -> acc
      | d :: rest -> if d = entered then d :: acc else upto (d :: acc) rest
    in
    let cycle = upto [] path_rev in
    (* canonicalize (rotate to the smallest id) so one physical cycle
       reached from several ingresses reports once *)
    let n = List.length cycle in
    let arr = Array.of_list cycle in
    let min_i = ref 0 in
    Array.iteri (fun i d -> if d < arr.(!min_i) then min_i := i) arr;
    let canon = List.init n (fun i -> arr.((i + !min_i) mod n)) in
    if not (Hashtbl.mem seen_cycles canon) then begin
      Hashtbl.replace seen_cycles canon ();
      add s (Loop { pmac; cycle = canon })
    end
  in
  let rec visit dev dst path_rev =
    let state = (dev, dst) in
    match Hashtbl.find_opt colors state with
    | Some `Done -> ()
    | Some `Active -> record_cycle path_rev dev
    | None ->
      Hashtbl.replace colors state `Active;
      let path_rev = dev :: path_rev in
      let blackhole ?entry reason = add s (Blackhole { pmac; switch = dev; entry; reason }) in
      (if not (device_up s dev) then blackhole "switch is down but still on a forwarding path"
       else
         match Hashtbl.find_opt s.agents dev with
         | None -> blackhole "forwarding path reaches a non-switch device"
         | Some agent ->
           let table = Switch_agent.table agent in
           (match FT.lookup_dst table dst with
            | None -> blackhole "table miss"
            | Some e ->
              let entry = e.FT.name in
              let cur_dst = ref dst in
              let outs = ref [] in
              List.iter
                (function
                  | FT.Output p -> outs := (p, !cur_dst) :: !outs
                  | FT.Group g ->
                    (match FT.group_members table g with
                     | None | Some [||] ->
                       blackhole ~entry
                         (Printf.sprintf "ECMP group %d selects nothing; matches drop" g)
                     | Some members ->
                       Array.iter (fun p -> outs := (p, !cur_dst) :: !outs) members)
                  | FT.Set_dst_mac m -> cur_dst := Mac_addr.to_int m
                  | FT.Set_src_mac _ -> ()
                  | FT.Punt ->
                    blackhole ~entry "in-fabric unicast punted to the control agent"
                  | FT.Drop -> blackhole ~entry "explicit drop"
                  | FT.Flood | FT.Multi _ ->
                    blackhole ~entry "non-unicast action on a unicast class")
                e.FT.actions;
              if e.FT.actions = [] then blackhole ~entry "entry has no actions";
              List.iter
                (fun (port, out_dst) ->
                  match SNet.peer_of s.net ~node:dev ~port with
                  | None ->
                    blackhole ~entry (Printf.sprintf "output port %d is unwired" port)
                  | Some (next, _) ->
                    if not (link_up s dev next) then
                      blackhole ~entry
                        (Printf.sprintf "output port %d crosses a down link" port)
                    else if is_host s next then begin
                      match expected_host with
                      | Some h when h = next ->
                        if out_dst <> amac_int then
                          add s
                            (Bad_rewrite
                               { pmac; switch = dev; entry;
                                 reason =
                                   Printf.sprintf
                                     "delivered with destination %012x, expected the \
                                      host's AMAC %012x"
                                     out_dst amac_int })
                      | Some h ->
                        add s
                          (Wrong_delivery
                             { pmac; switch = dev; entry; port; delivered_to = next;
                               expected = h })
                      | None ->
                        (* already reported: the binding itself is broken *)
                        ()
                    end
                    else begin
                      if out_dst <> dst0 then
                        add s
                          (Bad_rewrite
                             { pmac; switch = dev; entry;
                               reason =
                                 Printf.sprintf
                                   "destination rewritten to %012x before the egress edge"
                                   out_dst });
                      visit next out_dst path_rev
                    end)
                (List.rev !outs)));
      Hashtbl.replace colors state `Done
  in
  Hashtbl.iter
    (fun (_pod, _pos) dev ->
      match Hashtbl.find_opt s.agents dev with
      | Some a when Switch_agent.is_operational a && device_up s dev -> visit dev dst0 []
      | Some _ | None -> ())
    s.edge_at

(* ---------------- entry point ---------------- *)

let run ?faults fab =
  let s = snapshot fab in
  let fm = Fabric.fabric_manager fab in
  let fault_list = match faults with Some f -> f | None -> Fabric_manager.fault_set fm in
  let fault_set = Fault.Set.of_list fault_list in
  let bindings =
    List.concat_map
      (fun h ->
        List.filter_map
          (fun ip -> Fabric_manager.lookup_binding fm ip)
          (Host_agent.ip h :: Host_agent.vm_ips h))
      (Fabric.hosts fab)
  in
  List.iter (walk_class s) bindings;
  let switches_checked, groups_checked = check_groups s fault_set in
  let faults_checked = check_faults s fault_list in
  { violations = List.rev s.out;
    classes_checked = List.length bindings;
    switches_checked;
    groups_checked;
    faults_checked }

let ok r = r.violations = []

let pp_violation fmt = function
  | Loop { pmac; cycle } ->
    Format.fprintf fmt "loop: class %a cycles through devices [%s]" Pmac.pp pmac
      (String.concat " -> " (List.map string_of_int cycle))
  | Blackhole { pmac; switch; entry; reason } ->
    Format.fprintf fmt "blackhole: class %a at switch %d%s: %s" Pmac.pp pmac switch
      (match entry with Some e -> Printf.sprintf " (entry %s)" e | None -> "")
      reason
  | Wrong_delivery { pmac; switch; entry; port; delivered_to; expected } ->
    Format.fprintf fmt
      "wrong delivery: class %a at switch %d (entry %s) exits port %d to device %d, \
       expected host device %d"
      Pmac.pp pmac switch entry port delivered_to expected
  | Bad_rewrite { pmac; switch; entry; reason } ->
    Format.fprintf fmt "bad rewrite: class %a at switch %d (entry %s): %s" Pmac.pp pmac
      switch entry reason
  | Dead_group_member { switch; entry; group; port; why } ->
    Format.fprintf fmt "dead group member: switch %d entry %s group %d port %d: %s" switch
      entry group port why
  | Empty_group { switch; entry; group } ->
    Format.fprintf fmt "empty group: switch %d entry %s defers to group %d with no members"
      switch entry group
  | Unknown_fault_link { fault; reason } ->
    Format.fprintf fmt "unknown fault link: %a: %s" Fault.pp fault reason
  | Stale_fault { fault } ->
    Format.fprintf fmt "stale fault: %a marks a live link down" Fault.pp fault

let pp_report fmt r =
  List.iter (fun v -> Format.fprintf fmt "%a@." pp_violation v) r.violations;
  Format.fprintf fmt
    "%s: %d violation(s); %d classes, %d switches, %d group refs, %d faults checked@."
    (if ok r then "PASS" else "FAIL")
    (List.length r.violations) r.classes_checked r.switches_checked r.groups_checked
    r.faults_checked
