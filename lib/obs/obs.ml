open Eventsim

type labels = (string * string) list

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* JSON has no lexeme for non-finite numbers *)
      if Float.is_nan f || f = infinity || f = neg_infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

module Label = struct
  let sw id = ("sw", string_of_int id)
  let pod n = ("pod", string_of_int n)
  let port p = ("port", string_of_int p)
  let host ip = ("host", ip)
  let level l = ("level", l)
  let k n = ("k", string_of_int n)
end

module Counter = struct
  type t = Stats.Counter.t

  let incr = Stats.Counter.incr
  let add = Stats.Counter.add
  let value = Stats.Counter.value
end

module Gauge = struct
  type t = { mutable v : float }

  let set t v = t.v <- v
  let value t = t.v
end

module Histogram = struct
  type t = Stats.Distribution.t

  let observe = Stats.Distribution.add
  let count = Stats.Distribution.count
end

type value = Count of int | Value of float | Summary of summary
and summary = { n : int; mean : float; vmin : float; vmax : float; p50 : float; p99 : float }

type sample = { subsystem : string; name : string; labels : labels; value : value }

type instrument =
  | I_counter of Stats.Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Stats.Distribution.t

type meta = { m_subsystem : string; m_name : string; m_labels : labels; m_inst : instrument }

type t = {
  enabled : bool;
  tr : Trace.t;
  lock : Mutex.t; (* guards [metrics] and [probes]; see register/snapshot *)
  metrics : (string, meta) Hashtbl.t;
  mutable probes : (string * (unit -> sample list)) list; (* newest first, unique names *)
}

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare (a : string) b) labels

let key_of ~subsystem ~name labels =
  match labels with
  | [] -> subsystem ^ "/" ^ name
  | _ ->
    subsystem ^ "/" ^ name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let create ?trace () =
  let tr = match trace with Some tr -> tr | None -> Trace.create ~capacity:8192 () in
  { enabled = true; tr; lock = Mutex.create (); metrics = Hashtbl.create 256; probes = [] }

let null =
  { enabled = false; tr = Trace.null; lock = Mutex.create ();
    metrics = Hashtbl.create 1; probes = [] }

let enabled t = t.enabled
let trace t = t.tr

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let register t ~subsystem ~name ~labels make =
  let labels = canon_labels labels in
  let key = key_of ~subsystem ~name labels in
  Mutex.lock t.lock;
  let inst =
    match Hashtbl.find_opt t.metrics key with
    | Some m -> m.m_inst
    | None ->
      let inst = make () in
      Hashtbl.replace t.metrics key
        { m_subsystem = subsystem; m_name = name; m_labels = labels; m_inst = inst };
      inst
  in
  Mutex.unlock t.lock;
  inst

let mismatch key inst want =
  invalid_arg
    (Printf.sprintf "Obs: metric %s already registered as a %s, requested as a %s" key
       (kind_name inst) want)

let counter t ~subsystem ~name ?(labels = []) () =
  if not t.enabled then Stats.Counter.create ()
  else begin
    match register t ~subsystem ~name ~labels (fun () -> I_counter (Stats.Counter.create ())) with
    | I_counter c -> c
    | inst -> mismatch (key_of ~subsystem ~name (canon_labels labels)) inst "counter"
  end

let gauge t ~subsystem ~name ?(labels = []) () =
  if not t.enabled then { Gauge.v = 0.0 }
  else begin
    match register t ~subsystem ~name ~labels (fun () -> I_gauge { Gauge.v = 0.0 }) with
    | I_gauge g -> g
    | inst -> mismatch (key_of ~subsystem ~name (canon_labels labels)) inst "gauge"
  end

let histogram t ~subsystem ~name ?(labels = []) () =
  if not t.enabled then Stats.Distribution.create ()
  else begin
    match
      register t ~subsystem ~name ~labels (fun () -> I_histogram (Stats.Distribution.create ()))
    with
    | I_histogram h -> h
    | inst -> mismatch (key_of ~subsystem ~name (canon_labels labels)) inst "histogram"
  end

(* ---------------- events & spans ---------------- *)

let event t ~time ?(level = Trace.Info) ~subsystem msg =
  Trace.record t.tr ~time level ~subsystem msg

let eventf t ~time ?(level = Trace.Info) ~subsystem fmt =
  Trace.recordf t.tr ~time level ~subsystem fmt

type span = {
  sp_t : t;
  sp_subsystem : string;
  sp_name : string;
  sp_labels : labels;
  sp_start : Time.t;
}

let span t ~time ~subsystem ~name ?(labels = []) () =
  event t ~time ~level:Trace.Debug ~subsystem (name ^ ": begin");
  { sp_t = t; sp_subsystem = subsystem; sp_name = name; sp_labels = labels; sp_start = time }

let finish sp ~time =
  let dur_ms = Time.to_ms_f (time - sp.sp_start) in
  let h =
    histogram sp.sp_t ~subsystem:sp.sp_subsystem ~name:(sp.sp_name ^ "_ms")
      ~labels:sp.sp_labels ()
  in
  Histogram.observe h dur_ms;
  eventf sp.sp_t ~time ~level:Trace.Debug ~subsystem:sp.sp_subsystem "%s: end (%.3f ms)"
    sp.sp_name dur_ms

(* ---------------- probes ---------------- *)

let sample ~subsystem ~name ?(labels = []) value =
  { subsystem; name; labels = canon_labels labels; value }

let add_probe t ~name f =
  if t.enabled then begin
    Mutex.lock t.lock;
    t.probes <- (name, f) :: List.remove_assoc name t.probes;
    Mutex.unlock t.lock
  end

(* ---------------- snapshot & export ---------------- *)

let summary_of_dist d =
  let n = Stats.Distribution.count d in
  if n = 0 then Summary { n = 0; mean = 0.0; vmin = 0.0; vmax = 0.0; p50 = 0.0; p99 = 0.0 }
  else
    Summary
      { n;
        mean = Stats.Distribution.mean d;
        vmin = Stats.Distribution.min d;
        vmax = Stats.Distribution.max d;
        p50 = Stats.Distribution.percentile d 50.0;
        p99 = Stats.Distribution.percentile d 99.0 }

let value_of_inst = function
  | I_counter c -> Count (Stats.Counter.value c)
  | I_gauge g -> Value g.Gauge.v
  | I_histogram d -> summary_of_dist d

let sample_key s = key_of ~subsystem:s.subsystem ~name:s.name s.labels

let snapshot t =
  (* Fold the registry under the lock so a shard registering a labelled
     metric mid-run cannot race the traversal; probe closures read agent
     state and are run outside the lock (snapshots are taken at
     quiescent points). *)
  Mutex.lock t.lock;
  let from_instruments =
    Hashtbl.fold
      (fun _ m acc ->
        { subsystem = m.m_subsystem;
          name = m.m_name;
          labels = m.m_labels;
          value = value_of_inst m.m_inst }
        :: acc)
      t.metrics []
  in
  let probes = List.rev t.probes in
  Mutex.unlock t.lock;
  let from_probes = List.concat_map (fun (_, f) -> f ()) probes in
  List.sort
    (fun a b -> compare (sample_key a) (sample_key b))
    (from_instruments @ from_probes)

let find t ~subsystem ~name ?(labels = []) () =
  let key = key_of ~subsystem ~name (canon_labels labels) in
  List.find_opt (fun s -> sample_key s = key) (snapshot t) |> Option.map (fun s -> s.value)

let json_fields_of_value = function
  | Count n -> [ ("type", Json.Str "counter"); ("value", Json.Int n) ]
  | Value v -> [ ("type", Json.Str "gauge"); ("value", Json.Float v) ]
  | Summary s ->
    [ ("type", Json.Str "histogram");
      ("count", Json.Int s.n);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.vmin);
      ("max", Json.Float s.vmax);
      ("p50", Json.Float s.p50);
      ("p99", Json.Float s.p99) ]

let json_of_sample s =
  Json.Obj
    (("key", Json.Str (sample_key s))
     :: ("subsystem", Json.Str s.subsystem)
     :: ("name", Json.Str s.name)
     :: ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels))
     :: json_fields_of_value s.value)

let to_json t = Json.Obj [ ("metrics", Json.List (List.map json_of_sample (snapshot t))) ]

let csv_row s =
  let key = sample_key s in
  match s.value with
  | Count n -> Printf.sprintf "%s,counter,%d,,,,,," key n
  | Value v -> Printf.sprintf "%s,gauge,%.12g,,,,,," key v
  | Summary x ->
    Printf.sprintf "%s,histogram,,%d,%.12g,%.12g,%.12g,%.12g,%.12g" key x.n x.mean x.vmin
      x.vmax x.p50 x.p99

let to_csv t =
  String.concat "\n" ("key,type,value,count,mean,min,max,p50,p99" :: List.map csv_row (snapshot t))
  ^ "\n"

let write_json t ~path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let value_string = function
  | Count n -> string_of_int n
  | Value v -> Printf.sprintf "%.6g" v
  | Summary s ->
    Printf.sprintf "n=%d mean=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g" s.n s.mean s.vmin s.p50
      s.p99 s.vmax

let pp_snapshot fmt t =
  List.iter
    (fun s -> Format.fprintf fmt "%-44s %s@." (sample_key s) (value_string s.value))
    (snapshot t)
