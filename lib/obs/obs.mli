(** Unified observability layer.

    One capability value ({!t}) carries everything a component needs to
    be measured: a labelled metrics registry (counters, gauges,
    {!Eventsim.Stats.Distribution}-backed histograms, keyed by
    [subsystem/name] plus typed labels like [sw=3]), structured trace
    events and begin/end spans layered on the {!Eventsim.Trace} ring
    buffer, and named pull-probes for state that is cheaper to read at
    snapshot time than to count on every event (flow-table sizes,
    dataplane hit counters, fabric-manager soft state).

    The fabric threads one [Obs.t] from {!Portland.Fabric.create} into
    every agent; experiments and the CLI export {!snapshot} as JSON or
    CSV. {!null} is the disabled capability: every operation on it is a
    cheap no-op and {!snapshot} is empty, so instrumented code needs no
    [if] around its counters.

    Domain-safe: counter increments are atomic, histogram observations
    are serialized, and the registry (registration, probes, {!snapshot})
    is mutex-protected, so agents sharded across OCaml domains by
    {!Eventsim.Sharded} can share one [Obs.t] without losing updates.
    Gauge writes are plain stores — keep each gauge owned by one shard.
    Snapshots are meant for quiescent points (between windows or after a
    run). *)

type t

type labels = (string * string) list
(** Label sets are canonicalized (sorted by key) on registration, so
    label order never distinguishes two metrics. *)

(** Minimal JSON tree + printer (no external dependency). Used for the
    metrics export and by the experiment harness ([result_to_json]). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats print as [null] *)
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** Constructors for the label keys the PortLand layers use. *)
module Label : sig
  val sw : int -> string * string
  (** Switch device id. *)

  val pod : int -> string * string
  val port : int -> string * string

  val host : string -> string * string
  (** Host primary IP. *)

  val level : string -> string * string

  val k : int -> string * string
  (** Fat-tree arity. *)
end

val create : ?trace:Eventsim.Trace.t -> unit -> t
(** A live registry. [trace] is the event sink spans and {!event} write
    to (default: a fresh 8192-entry ring). *)

val null : t
(** The disabled capability (shared, contractually immutable):
    registration hands back unregistered dummy instruments, probes and
    events are dropped, {!snapshot} is [[]] and {!trace} is
    {!Eventsim.Trace.null}. *)

val enabled : t -> bool
(** [false] exactly for {!null}. *)

val trace : t -> Eventsim.Trace.t

(** {1 Instruments}

    Registration is idempotent: asking for the same
    [(subsystem, name, labels)] key again returns the {e same}
    instrument, so independent code paths can share a counter without
    coordinating. Re-registering a key as a different instrument kind
    raises [Invalid_argument]. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
end

val counter : t -> subsystem:string -> name:string -> ?labels:labels -> unit -> Counter.t
val gauge : t -> subsystem:string -> name:string -> ?labels:labels -> unit -> Gauge.t
val histogram : t -> subsystem:string -> name:string -> ?labels:labels -> unit -> Histogram.t

(** {1 Structured trace events and spans} *)

val event :
  t -> time:Eventsim.Time.t -> ?level:Eventsim.Trace.level -> subsystem:string -> string -> unit

val eventf :
  t -> time:Eventsim.Time.t -> ?level:Eventsim.Trace.level -> subsystem:string ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

type span

val span :
  t -> time:Eventsim.Time.t -> subsystem:string -> name:string -> ?labels:labels -> unit -> span
(** Begin a timed operation. Writes a [Debug] begin event. *)

val finish : span -> time:Eventsim.Time.t -> unit
(** End the span: the duration (ms) is observed into the histogram
    [subsystem/name_ms] and a [Debug] end event is written. *)

(** {1 Pull probes} *)

type value =
  | Count of int      (** monotonically increasing event count *)
  | Value of float    (** instantaneous level *)
  | Summary of summary  (** distribution digest *)

and summary = { n : int; mean : float; vmin : float; vmax : float; p50 : float; p99 : float }

type sample = { subsystem : string; name : string; labels : labels; value : value }

val sample : subsystem:string -> name:string -> ?labels:labels -> value -> sample

val add_probe : t -> name:string -> (unit -> sample list) -> unit
(** Register (or {e replace} — same [name] wins) a callback evaluated at
    every {!snapshot}. Components register under a stable name
    ("fm", "sw:3", …) so rebuilding a component — or building a second
    fabric against the same registry — supersedes the old reader instead
    of double-reporting. *)

(** {1 Snapshot & export} *)

val snapshot : t -> sample list
(** All instruments plus all probe output, sorted by {!sample_key} — the
    order is deterministic for a given set of keys, independent of
    registration order. *)

val sample_key : sample -> string
(** Canonical identity, e.g. ["ldp/ldm_tx{sw=3}"] or ["fm/arp_queries"]. *)

val find : t -> subsystem:string -> name:string -> ?labels:labels -> unit -> value option
(** Current value of one metric (instrument or probed), by key. *)

val to_json : t -> Json.t
(** [{"metrics": [{"key": ..., "subsystem": ..., "name": ..., "labels":
    {...}, "type": "counter"|"gauge"|"histogram", ...}, ...]}]. *)

val to_csv : t -> string
(** One header line ([key,type,value,count,mean,min,max,p50,p99]) then
    one row per sample. *)

val write_json : t -> path:string -> unit

val pp_snapshot : Format.formatter -> t -> unit
(** Operator-style dump: one aligned [key value] line per sample. *)
