open Eventsim

type link_params = {
  delay : Time.t;
  bandwidth_bps : int;
  queue_cap_bytes : int;
  loss_rate : float;
}

let default_link_params =
  { delay = Time.us 1; bandwidth_bps = 1_000_000_000; queue_cap_bytes = 512 * 1024;
    loss_rate = 0.0 }

type counters = {
  rx_frames : int;
  tx_frames : int;
  rx_bytes : int;
  tx_bytes : int;
  queue_drops : int;
  down_drops : int;
  loss_drops : int;
}

type mutable_counters = {
  mutable c_rx_frames : int;
  mutable c_tx_frames : int;
  mutable c_rx_bytes : int;
  mutable c_tx_bytes : int;
  mutable c_queue_drops : int;
  mutable c_down_drops : int;
  mutable c_loss_drops : int;
}

let fresh_counters () =
  { c_rx_frames = 0; c_tx_frames = 0; c_rx_bytes = 0; c_tx_bytes = 0; c_queue_drops = 0;
    c_down_drops = 0; c_loss_drops = 0 }

type direction = Rx | Tx

let snapshot c =
  { rx_frames = c.c_rx_frames; tx_frames = c.c_tx_frames; rx_bytes = c.c_rx_bytes;
    tx_bytes = c.c_tx_bytes; queue_drops = c.c_queue_drops; down_drops = c.c_down_drops;
    loss_drops = c.c_loss_drops }

type device = {
  dev_id : int;
  dev_name : string;
  dev_kind : Topology.Topo.kind;
  ports : port array;
  mutable up : bool;
  mutable handler : int -> Netcore.Eth.t -> unit;
  mutable taps : (direction -> port:int -> Netcore.Eth.t -> unit) list;
  counters : mutable_counters;
}

and port = {
  mutable attached : link option;
  mutable busy_until : Time.t;
  loss_prng : Prng.t;
      (* per-directed-port loss stream: draws depend only on this port's
         own transmit sequence, never on global transmit interleaving, so
         loss outcomes are identical under sharded execution *)
}

and link = {
  mutable link_up : bool;
  params : link_params;
  mutable loss_override : float option; (* runtime loss ramp, None = params.loss_rate *)
  end_a : int * int; (* device id, port *)
  end_b : int * int;
}

type sched = {
  sh_engine_of : int -> Engine.t;
  sh_shard_of : int -> int;
  sh_post : src:int -> dst:int -> time:Time.t -> (unit -> unit) -> unit;
}

type t = {
  engine : Engine.t;
  topo : Topology.Topo.t;
  devices : device array;
  topo_links : link option array;
  mutable sched : sched option;
  mutable tagger : (src:int -> dst:int -> Netcore.Eth.t -> string option) option;
}

let null_handler _ _ = ()

let create ?(params = default_link_params) ?(loss_seed = 7) engine topo =
  let devices =
    Array.map
      (fun (n : Topology.Topo.node) ->
        { dev_id = n.Topology.Topo.id;
          dev_name = n.Topology.Topo.name;
          dev_kind = n.Topology.Topo.kind;
          ports =
            Array.init n.Topology.Topo.nports (fun p ->
              { attached = None; busy_until = 0;
                loss_prng =
                  Prng.create (loss_seed + (n.Topology.Topo.id * 1_000_003) + p) });
          up = true;
          handler = null_handler;
          taps = [];
          counters = fresh_counters () })
      (Topology.Topo.nodes topo)
  in
  let topo_links =
    Array.map
      (fun (l : Topology.Topo.link) ->
        let link =
          { link_up = true;
            params;
            loss_override = None;
            end_a = (l.Topology.Topo.a.Topology.Topo.node, l.Topology.Topo.a.Topology.Topo.port);
            end_b = (l.Topology.Topo.b.Topology.Topo.node, l.Topology.Topo.b.Topology.Topo.port) }
        in
        let da, pa = link.end_a and db, pb = link.end_b in
        devices.(da).ports.(pa).attached <- Some link;
        devices.(db).ports.(pb).attached <- Some link;
        Some link)
      (Topology.Topo.links topo)
  in
  { engine; topo; devices; topo_links; sched = None; tagger = None }

let set_delivery_tagger t f = t.tagger <- f
let set_sched t s = t.sched <- s

let engine_of t node =
  match t.sched with Some s -> s.sh_engine_of node | None -> t.engine

let engine t = t.engine
let topo t = t.topo
let now t = Engine.now t.engine

let device t i =
  if i < 0 || i >= Array.length t.devices then invalid_arg "Net.device: id out of range";
  t.devices.(i)

let device_count t = Array.length t.devices

let device_by_name t name =
  match Topology.Topo.find_by_name t.topo name with
  | Some n -> Some t.devices.(n.Topology.Topo.id)
  | None -> None

let id d = d.dev_id
let name d = d.dev_name
let kind d = d.dev_kind
let nports d = Array.length d.ports
let is_up d = d.up
let set_handler d f = d.handler <- f

let fail_device t i = (device t i).up <- false
let recover_device t i = (device t i).up <- true

let link_of_topo t i =
  if i < 0 || i >= Array.length t.topo_links then
    invalid_arg "Net.link_of_topo: index out of range";
  match t.topo_links.(i) with
  | Some l -> l
  | None -> invalid_arg "Net.link_of_topo: link was unplugged"

let peer_endpoint link (dev, port) =
  let da, pa = link.end_a and db, pb = link.end_b in
  if da = dev && pa = port then link.end_b
  else if db = dev && pb = port then link.end_a
  else invalid_arg "Net: endpoint not on link"

let link_between t a b =
  let da = device t a in
  Array.fold_left
    (fun acc port ->
      match acc with
      | Some _ -> acc
      | None ->
        (match port.attached with
         | Some l ->
           let oa, _ = l.end_a and ob, _ = l.end_b in
           if (oa = a && ob = b) || (oa = b && ob = a) then Some l else None
         | None -> None))
    None da.ports

let link_is_up l = l.link_up
let fail_link _t l = l.link_up <- false
let recover_link _t l = l.link_up <- true
let link_ends l = (l.end_a, l.end_b)

let link_loss l = match l.loss_override with Some r -> r | None -> l.params.loss_rate

let set_link_loss _t l rate =
  if not (rate >= 0.0 && rate <= 1.0) then invalid_arg "Net.set_link_loss: rate not in [0,1]";
  l.loss_override <- Some rate

let clear_link_loss _t l = l.loss_override <- None

let unplug t ~node ~port =
  let d = device t node in
  if port < 0 || port >= nports d then invalid_arg "Net.unplug: port out of range";
  match d.ports.(port).attached with
  | None -> ()
  | Some l ->
    let da, pa = l.end_a and db, pb = l.end_b in
    t.devices.(da).ports.(pa).attached <- None;
    t.devices.(db).ports.(pb).attached <- None;
    (* retire from the topo index if it was an original link *)
    Array.iteri
      (fun i lo -> match lo with Some l' when l' == l -> t.topo_links.(i) <- None | _ -> ())
      t.topo_links

let plug ?(params = default_link_params) t ~a ~b =
  let check (dev, port) =
    let d = device t dev in
    if port < 0 || port >= nports d then invalid_arg "Net.plug: port out of range";
    if d.ports.(port).attached <> None then invalid_arg "Net.plug: port already wired"
  in
  check a;
  check b;
  let link = { link_up = true; params; loss_override = None; end_a = a; end_b = b } in
  let da, pa = a and db, pb = b in
  t.devices.(da).ports.(pa).attached <- Some link;
  t.devices.(db).ports.(pb).attached <- Some link;
  link

let peer_of t ~node ~port =
  let d = device t node in
  if port < 0 || port >= nports d then None
  else
    match d.ports.(port).attached with
    | None -> None
    | Some l -> Some (peer_endpoint l (node, port))

let tx_time params bytes =
  (* ns = bytes * 8 * 1e9 / bandwidth; computed carefully to avoid overflow
     for realistic sizes (bytes < 1e5, bandwidth >= 1e6) *)
  let bits = bytes * 8 in
  bits * 1_000_000_000 / params.bandwidth_bps

let transmit t ~node ~port frame =
  let d = device t node in
  if not d.up then ()
  else if port < 0 || port >= nports d then invalid_arg "Net.transmit: port out of range"
  else begin
    let p = d.ports.(port) in
    match p.attached with
    | None -> d.counters.c_down_drops <- d.counters.c_down_drops + 1
    | Some link when not link.link_up ->
      d.counters.c_down_drops <- d.counters.c_down_drops + 1
    | Some link ->
      let bytes = Netcore.Eth.wire_len frame in
      let now_t = Engine.now (engine_of t node) in
      let backlog_ns = max 0 (p.busy_until - now_t) in
      let backlog_bytes = backlog_ns * link.params.bandwidth_bps / 8_000_000_000 in
      if backlog_bytes + bytes > link.params.queue_cap_bytes then
        d.counters.c_queue_drops <- d.counters.c_queue_drops + 1
      else if
        (let rate = link_loss link in
         rate > 0.0 && Prng.float p.loss_prng 1.0 < rate)
      then d.counters.c_loss_drops <- d.counters.c_loss_drops + 1
      else begin
        let depart = max now_t p.busy_until in
        let done_tx = depart + tx_time link.params bytes in
        p.busy_until <- done_tx;
        d.counters.c_tx_frames <- d.counters.c_tx_frames + 1;
        d.counters.c_tx_bytes <- d.counters.c_tx_bytes + bytes;
        List.iter (fun tap -> tap Tx ~port frame) d.taps;
        let arrival = done_tx + link.params.delay in
        let dst_dev, dst_port = peer_endpoint link (node, port) in
        let deliver () =
          let dd = t.devices.(dst_dev) in
          if link.link_up && dd.up then begin
            dd.counters.c_rx_frames <- dd.counters.c_rx_frames + 1;
            dd.counters.c_rx_bytes <- dd.counters.c_rx_bytes + bytes;
            List.iter (fun tap -> tap Rx ~port:dst_port frame) dd.taps;
            dd.handler dst_port frame
          end
        in
        (match t.sched with
         | Some s ->
           (* sharded execution: same-shard deliveries stay on the local
              engine; cross-shard ones go through the outbox and land at
              the next barrier (arrival >= window end by lookahead) *)
           let src_sh = s.sh_shard_of node and dst_sh = s.sh_shard_of dst_dev in
           if src_sh = dst_sh then
             ignore (Engine.schedule_at (s.sh_engine_of node) ~time:arrival deliver)
           else s.sh_post ~src:src_sh ~dst:dst_sh ~time:arrival deliver
         | None ->
           (* frame deliveries become reorderable actions when a tagger is
              installed (the model checker tags LDP frames, see lib/mc) *)
           let tag =
             match t.tagger with
             | Some f when Engine.intercepting t.engine -> f ~src:node ~dst:dst_dev frame
             | _ -> None
           in
           (match tag with
            | Some tag ->
              ignore
                (Engine.schedule_tagged t.engine ~delay:(arrival - now_t) ~tag deliver)
            | None -> ignore (Engine.schedule_at t.engine ~time:arrival deliver)))
      end
  end

let flood t ~node ~except frame =
  let d = device t node in
  Array.iteri
    (fun i p -> if i <> except && p.attached <> None then transmit t ~node ~port:i frame)
    d.ports

let add_tap t ~device:dev tap =
  let d = device t dev in
  d.taps <- d.taps @ [ tap ]

let device_counters d = snapshot d.counters

let total_counters t =
  let acc = fresh_counters () in
  Array.iter
    (fun d ->
      acc.c_rx_frames <- acc.c_rx_frames + d.counters.c_rx_frames;
      acc.c_tx_frames <- acc.c_tx_frames + d.counters.c_tx_frames;
      acc.c_rx_bytes <- acc.c_rx_bytes + d.counters.c_rx_bytes;
      acc.c_tx_bytes <- acc.c_tx_bytes + d.counters.c_tx_bytes;
      acc.c_queue_drops <- acc.c_queue_drops + d.counters.c_queue_drops;
      acc.c_down_drops <- acc.c_down_drops + d.counters.c_down_drops;
      acc.c_loss_drops <- acc.c_loss_drops + d.counters.c_loss_drops)
    t.devices;
  snapshot acc
