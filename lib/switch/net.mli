(** Runtime network: devices, ports and links instantiated from a
    {!Topology.Topo.t} on top of an {!Eventsim.Engine.t}.

    The transmission model is store-and-forward with per-port output
    buffering: each outbound port direction serializes frames at link
    bandwidth; a frame whose queueing backlog would exceed the port's
    buffer is tail-dropped; delivered frames arrive one serialization time
    plus one propagation delay after their departure. Links and devices
    can fail and recover at runtime, and ports can be re-wired (VM
    migration re-plugs a host under a different edge switch). *)

type link_params = {
  delay : Eventsim.Time.t;        (** one-way propagation delay *)
  bandwidth_bps : int;            (** link rate, bits per second *)
  queue_cap_bytes : int;          (** per-direction output buffer *)
  loss_rate : float;              (** i.i.d. per-frame loss probability *)
}

val default_link_params : link_params
(** 1 Gb/s, 1 µs delay, 512 KiB buffer, lossless. *)

type t
type device
type link

val create :
  ?params:link_params -> ?loss_seed:int -> Eventsim.Engine.t -> Topology.Topo.t -> t
(** Instantiate every node and wire every topology link. All devices start
    up with a null (drop-everything) handler. [loss_seed] (default 7)
    seeds the deterministic per-directed-port streams that decide
    per-frame losses when any link has a non-zero [loss_rate]; each
    outbound port draws from its own stream, so loss outcomes do not
    depend on the global interleaving of transmissions (and hence are
    identical under sharded execution). *)

val engine : t -> Eventsim.Engine.t
val topo : t -> Topology.Topo.t
val now : t -> Eventsim.Time.t

(** {1 Sharded execution} *)

type sched = {
  sh_engine_of : int -> Eventsim.Engine.t;  (** device id → owning engine *)
  sh_shard_of : int -> int;                 (** device id → shard index *)
  sh_post :
    src:int -> dst:int -> time:Eventsim.Time.t -> (unit -> unit) -> unit;
      (** cross-shard delivery, routed through {!Eventsim.Sharded.post} *)
}
(** How frame deliveries find the owning shard when the fabric runs on a
    {!Eventsim.Sharded} scheduler: deliveries between devices of the same
    shard are scheduled directly on that shard's engine; deliveries that
    cross shards are posted and land at the next synchronization barrier.
    The link propagation delay must be at least the scheduler's lookahead
    for every cross-shard link. *)

val set_sched : t -> sched option -> unit
(** Install (or remove, with [None]) shard routing. With [None] (the
    default) everything is scheduled on the engine passed to {!create} —
    the classic single-engine mode, which the delivery tagger and the
    model checker rely on. The tagger is consulted only in classic
    mode. *)

(** {1 Devices} *)

val device : t -> int -> device
val device_count : t -> int
val device_by_name : t -> string -> device option
val id : device -> int
val name : device -> string
val kind : device -> Topology.Topo.kind
val nports : device -> int
val is_up : device -> bool

val set_handler : device -> (int -> Netcore.Eth.t -> unit) -> unit
(** [set_handler d f] makes [f in_port frame] the receive callback. *)

val set_delivery_tagger :
  t -> (src:int -> dst:int -> Netcore.Eth.t -> string option) option -> unit
(** Install a classifier that marks selected frame deliveries as
    reorderable actions: when it returns [Some tag] the delivery is
    scheduled through {!Eventsim.Engine.schedule_tagged} so an installed
    engine interceptor can perturb its arrival. Consulted only while an
    interceptor is installed; [None] (the default) never tags. The model
    checker ([lib/mc]) uses this to reorder LDM deliveries alongside
    control-network traffic. Queueing/backlog accounting is unaffected —
    only the receive callback's invocation time moves. *)

val fail_device : t -> int -> unit
(** A failed device silently drops everything it would receive or send. *)

val recover_device : t -> int -> unit

(** {1 Links} *)

val link_of_topo : t -> int -> link
(** Runtime link for a topology link index. Raises [Invalid_argument] if
    that wiring was removed by {!unplug}. *)

val link_between : t -> int -> int -> link option
(** Any current link directly connecting two device ids. *)

val link_is_up : link -> bool
val fail_link : t -> link -> unit
val recover_link : t -> link -> unit
val link_ends : link -> (int * int) * (int * int)
(** [((dev_a, port_a), (dev_b, port_b))]. *)

val link_loss : link -> float
(** Effective per-frame loss probability: the runtime override when one is
    set, else the link's construction-time [loss_rate]. *)

val set_link_loss : t -> link -> float -> unit
(** Override the link's loss probability at runtime (both directions) —
    failure campaigns ramp loss up and back down with this. Raises
    [Invalid_argument] outside [0, 1]. *)

val clear_link_loss : t -> link -> unit
(** Drop the override, restoring the construction-time rate. *)

val unplug : t -> node:int -> port:int -> unit
(** Remove the cable at a port (both ends become unwired). No-op when the
    port is already empty. *)

val plug : ?params:link_params -> t -> a:int * int -> b:int * int -> link
(** Wire two free ports together with a fresh cable. Raises
    [Invalid_argument] when either port is occupied. *)

val peer_of : t -> node:int -> port:int -> (int * int) option
(** Current peer (device, port) wired at the given port, if any. *)

(** {1 Transmission} *)

val transmit : t -> node:int -> port:int -> Netcore.Eth.t -> unit
(** Enqueue a frame for transmission out of a port. Dropped (with a
    counter) when the device or link is down, the port is unwired, or the
    output buffer is full. *)

val flood : t -> node:int -> except:int -> Netcore.Eth.t -> unit
(** Transmit on every wired port except [except] (pass [-1] to use all). *)

(** {1 Taps} *)

type direction = Rx | Tx

val add_tap : t -> device:int -> (direction -> port:int -> Netcore.Eth.t -> unit) -> unit
(** Observe every frame the device sends ([Tx], at enqueue time) or
    receives ([Rx], at delivery, before the handler runs). Multiple taps
    stack; there is no removal (taps live as long as the network —
    they're a debugging/capture facility, see {!Capture}). *)

(** {1 Counters} *)

type counters = {
  rx_frames : int;
  tx_frames : int;
  rx_bytes : int;
  tx_bytes : int;
  queue_drops : int;
  down_drops : int;  (** dropped because device/link down or port unwired *)
  loss_drops : int;  (** dropped by the link's random-loss model *)
}

val device_counters : device -> counters
val total_counters : t -> counters
