(** Generic switch dataplane: binds a {!Flow_table} to a {!Net} device.

    The pipeline applies the highest-priority matching entry's actions in
    order; MAC rewrites affect the frame seen by subsequent actions, so
    "rewrite then output" (PortLand's egress PMAC→AMAC step) composes
    naturally. Control planes attach via the punt callback — frames a
    table entry (or the miss policy) directs to the control agent. *)

type miss_policy = Miss_drop | Miss_punt | Miss_flood

type stats = { matched : int; missed : int; punts : int; dropped : int }

type t

val attach :
  Net.t -> device:int -> table:Flow_table.t -> miss:miss_policy ->
  ?on_punt:(in_port:int -> Netcore.Eth.t -> unit) -> ?obs:Obs.t -> unit -> t
(** Install the pipeline as the device's receive handler. The punt
    callback defaults to dropping. When a live [obs] registry is given, a
    pull-probe exports the pipeline counters, hit rate and flow-table
    occupancy (keys [dataplane/*] and [flow_table/size], labelled
    [sw=device]) — the per-frame fast path itself is never instrumented. *)

val table : t -> Flow_table.t
val stats : t -> stats

val inject : t -> in_port:int -> Netcore.Eth.t -> unit
(** Run a frame through the pipeline as if it had arrived on [in_port] —
    how local agents originate traffic that should obey the tables. *)

val forward_out : t -> out_port:int -> Netcore.Eth.t -> unit
(** Transmit directly out of a port, bypassing the tables (used by control
    planes for protocol frames like LDMs). *)
