open Netcore

type mask_match = { value : int; mask : int }

type mtch = {
  dst_mac : mask_match option;
  src_mac : mask_match option;
  ethertype : int option;
  ip_dst : mask_match option;
  ip_proto : int option;
}

let match_any = { dst_mac = None; src_mac = None; ethertype = None; ip_dst = None; ip_proto = None }

let match_dst_prefix ~value ~mask = { match_any with dst_mac = Some { value; mask } }

type action =
  | Output of int
  | Group of int
  | Multi of int list
  | Flood
  | Set_dst_mac of Mac_addr.t
  | Set_src_mac of Mac_addr.t
  | Punt
  | Drop

type entry = { name : string; priority : int; mtch : mtch; actions : action list }

type t = {
  mutable entries : entry list; (* kept sorted: priority desc, insertion order for ties *)
  mutable next_tie : int;
  ties : (string, int) Hashtbl.t; (* name -> tie-break (later insertion wins) *)
  groups : (int, int array) Hashtbl.t;
  hits : (string, int) Hashtbl.t;
  mutable salt : int;
}

let create () =
  { entries = []; next_tie = 0; ties = Hashtbl.create 16; groups = Hashtbl.create 8;
    hits = Hashtbl.create 16; salt = 0 }

let set_hash_salt t salt = t.salt <- salt

let sort_entries t =
  let tie name = try Hashtbl.find t.ties name with Not_found -> 0 in
  t.entries <-
    List.stable_sort
      (fun a b ->
        match compare b.priority a.priority with
        | 0 -> compare (tie b.name) (tie a.name)
        | c -> c)
      t.entries

let install t entry =
  t.entries <- List.filter (fun e -> e.name <> entry.name) t.entries;
  Hashtbl.replace t.ties entry.name t.next_tie;
  t.next_tie <- t.next_tie + 1;
  t.entries <- entry :: t.entries;
  sort_entries t

let remove t name =
  t.entries <- List.filter (fun e -> e.name <> name) t.entries;
  Hashtbl.remove t.ties name;
  Hashtbl.remove t.hits name

let clear t =
  t.entries <- [];
  Hashtbl.reset t.ties;
  Hashtbl.reset t.groups;
  Hashtbl.reset t.hits

let size t = List.length t.entries
let entry_names t = List.map (fun e -> e.name) t.entries

let set_group t id members = Hashtbl.replace t.groups id (Array.copy members)
let group_members t id = Option.map Array.copy (Hashtbl.find_opt t.groups id)

let mask_ok mm field = field land mm.mask = mm.value land mm.mask

let ip_fields (frame : Eth.t) =
  match frame.payload with
  | Eth.Ipv4 p ->
    Some (Ipv4_addr.to_int p.Ipv4_pkt.src, Ipv4_addr.to_int p.Ipv4_pkt.dst,
          Ipv4_pkt.proto_number p.Ipv4_pkt.payload)
  | _ -> None

let matches m (frame : Eth.t) =
  let dst = Mac_addr.to_int frame.dst and src = Mac_addr.to_int frame.src in
  let et = Eth.ethertype frame.payload in
  let dst_ok = match m.dst_mac with None -> true | Some mm -> mask_ok mm dst in
  let src_ok = match m.src_mac with None -> true | Some mm -> mask_ok mm src in
  let et_ok = match m.ethertype with None -> true | Some e -> e = et in
  let ip = ip_fields frame in
  let ip_dst_ok =
    match m.ip_dst with
    | None -> true
    | Some mm -> (match ip with Some (_, d, _) -> mask_ok mm d | None -> false)
  in
  let proto_ok =
    match m.ip_proto with
    | None -> true
    | Some p -> (match ip with Some (_, _, pr) -> p = pr | None -> false)
  in
  dst_ok && src_ok && et_ok && ip_dst_ok && proto_ok

let lookup t frame =
  match List.find_opt (fun e -> matches e.mtch frame) t.entries with
  | Some e as hit ->
    Hashtbl.replace t.hits e.name (1 + (try Hashtbl.find t.hits e.name with Not_found -> 0));
    hit
  | None -> None

let hit_count t name = try Hashtbl.find t.hits name with Not_found -> 0

let select_member t ~group ~hash =
  match Hashtbl.find_opt t.groups group with
  | None -> None
  | Some members when Array.length members = 0 -> None
  | Some members ->
    (* decorrelate from other switches on the path via the local salt,
       with a full avalanche so even mod-2 member choices see every input
       bit (a plain multiply preserves low-bit parity) *)
    let h = hash lxor t.salt in
    let h = (h lxor (h lsr 30)) * 0x1BF58476D1CE4E5B land max_int in
    let h = (h lxor (h lsr 27)) * 0x1094D049BB133111 land max_int in
    let mixed = h lxor (h lsr 31) in
    Some members.(mixed mod Array.length members)

(* FNV-1a over selected fields *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325 (* FNV offset basis truncated to 62 bits *)

let fnv acc v = (acc lxor v) * fnv_prime land max_int

let ports_of (frame : Eth.t) =
  match frame.payload with
  | Eth.Ipv4 p ->
    (match p.Ipv4_pkt.payload with
     | Ipv4_pkt.Udp u -> (u.Udp.src_port, u.Udp.dst_port)
     | Ipv4_pkt.Tcp s -> (s.Tcp_seg.src_port, s.Tcp_seg.dst_port)
     | Ipv4_pkt.Igmp _ | Ipv4_pkt.Icmp _ | Ipv4_pkt.Raw _ -> (0, 0))
  | _ -> (0, 0)

let flow_hash (frame : Eth.t) =
  let h =
    match ip_fields frame with
    | Some (src, dst, proto) ->
      let sp, dp = ports_of frame in
      fnv (fnv (fnv (fnv (fnv fnv_offset src) dst) proto) sp) dp
    | None ->
      fnv (fnv (fnv fnv_offset (Mac_addr.to_int frame.src)) (Mac_addr.to_int frame.dst))
        (Eth.ethertype frame.payload)
  in
  abs h

let entries t = t.entries
let find_entry t name = List.find_opt (fun e -> e.name = name) t.entries
let groups t = Hashtbl.fold (fun id members acc -> (id, Array.copy members) :: acc) t.groups []

let lookup_dst t dst =
  List.find_opt
    (fun e ->
      (match e.mtch.dst_mac with None -> true | Some mm -> mask_ok mm dst)
      && e.mtch.src_mac = None && e.mtch.ethertype = None && e.mtch.ip_dst = None
      && e.mtch.ip_proto = None)
    t.entries

let pp_mask_match fmt (mm : mask_match) =
  if mm.mask = 0xFFFFFFFFFFFF then Format.fprintf fmt "=%012x" mm.value
  else Format.fprintf fmt "%012x/%012x" mm.value mm.mask

let pp_mtch fmt m =
  let started = ref false in
  let sep () =
    if !started then Format.pp_print_string fmt ",";
    started := true
  in
  (match m.dst_mac with
   | Some mm ->
     sep ();
     Format.fprintf fmt "dst:%a" pp_mask_match mm
   | None -> ());
  (match m.src_mac with
   | Some mm ->
     sep ();
     Format.fprintf fmt "src:%a" pp_mask_match mm
   | None -> ());
  (match m.ethertype with
   | Some e ->
     sep ();
     Format.fprintf fmt "type:0x%04x" e
   | None -> ());
  (match m.ip_dst with
   | Some mm ->
     sep ();
     Format.fprintf fmt "ip_dst:%a" pp_mask_match mm
   | None -> ());
  (match m.ip_proto with
   | Some p ->
     sep ();
     Format.fprintf fmt "proto:%d" p
   | None -> ());
  if not !started then Format.pp_print_string fmt "any"

let pp_action fmt = function
  | Output p -> Format.fprintf fmt "out:%d" p
  | Group g -> Format.fprintf fmt "group:%d" g
  | Multi ports ->
    Format.fprintf fmt "multi:[%s]" (String.concat ";" (List.map string_of_int ports))
  | Flood -> Format.pp_print_string fmt "flood"
  | Set_dst_mac m -> Format.fprintf fmt "set_dst:%a" Mac_addr.pp m
  | Set_src_mac m -> Format.fprintf fmt "set_src:%a" Mac_addr.pp m
  | Punt -> Format.pp_print_string fmt "punt"
  | Drop -> Format.pp_print_string fmt "drop"

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "%4d %-14s %-40s [%s] hits=%d@." e.priority e.name
        (Format.asprintf "%a" pp_mtch e.mtch)
        (String.concat "; " (List.map (Format.asprintf "%a" pp_action) e.actions))
        (hit_count t e.name))
    t.entries;
  Hashtbl.iter
    (fun gid members ->
      Format.fprintf fmt "group %d -> [%s]@." gid
        (String.concat ";" (List.map string_of_int (Array.to_list members))))
    t.groups
