open Netcore

type mask_match = { value : int; mask : int }

type mtch = {
  dst_mac : mask_match option;
  src_mac : mask_match option;
  ethertype : int option;
  ip_dst : mask_match option;
  ip_proto : int option;
}

let match_any = { dst_mac = None; src_mac = None; ethertype = None; ip_dst = None; ip_proto = None }

let match_dst_prefix ~value ~mask = { match_any with dst_mac = Some { value; mask } }

type action =
  | Output of int
  | Group of int
  | Multi of int list
  | Flood
  | Set_dst_mac of Mac_addr.t
  | Set_src_mac of Mac_addr.t
  | Punt
  | Drop

type entry = { name : string; priority : int; mtch : mtch; actions : action list }

(* ------------------------------------------------------------------ *)
(* Destination-prefix trie (the fast path).

   PortLand's unicast forwarding state is entirely destination-PMAC
   prefix matches (pod /16, position /24, port /32, exact /48, plus the
   odd fully-wildcarded or broadcast entry), so the hot lookup is
   longest-prefix-match-with-priorities over the 48-bit destination. The
   trie indexes every entry that matches {e only} on a dst-MAC prefix
   (other fields wildcarded, mask a contiguous run of high bits), with
   entries anchored at the node their prefix ends on — the
   per-prefix-length priority tiers. The trie is path-compressed
   (PATRICIA): an edge swallows whole runs of non-branching bits, so a
   lookup visits one node per branch point — in a converged PortLand
   table that is a handful of nodes, not 48 — verifying the skipped bits
   with a single xor/shift per node and keeping the best
   (priority, insertion-tie) candidate seen. Entries the trie cannot
   express (non-prefix masks, src/ethertype/IP constraints) live in a
   short residual list that is scanned linearly, so the union is
   semantically identical to the reference linear scan over all
   entries. *)

type indexed = { e : entry; tie : int; mutable hits : int }

(* Path-compressed (PATRICIA-style) binary trie over 48-bit keys. A node
   stands for the prefix formed by the top [depth] bits of [key]; edges
   may swallow whole runs of non-branching bits, so a lookup visits one
   node per *branch point* rather than one per bit. Single-child chains
   are only ever created explicitly by edge splits in [trie_insert];
   removal leaves structure in place (see [trie_remove]). *)
type node = {
  depth : int; (* bits of [key] this node's prefix covers *)
  key : int; (* a key whose top [depth] bits define the path *)
  mutable zero : node option;
  mutable one : node option;
  mutable here : indexed list; (* entries whose prefix ends at this node *)
}

let new_node () = { depth = 0; key = 0; zero = None; one = None; here = [] }

let mac_bits = 48
let mac_mask = 0xFFFFFFFFFFFF

(* length of the common prefix of two 48-bit keys *)
let common_prefix_len a b =
  let x = (a lxor b) land mac_mask in
  if x = 0 then mac_bits
  else begin
    let l = ref 0 in
    let v = ref x in
    while !v <> 0 do
      incr l;
      v := !v lsr 1
    done;
    (* highest differing bit is !l - 1 (from the LSB) *)
    mac_bits - !l
  end

(* [Some len] when [mask] restricted to 48 bits is a contiguous run of
   [len] high bits (and has no bits above bit 47) *)
let prefix_len_of_mask mask =
  if mask land lnot mac_mask <> 0 then None
  else begin
    let inv = mask lxor mac_mask in
    (* inv must be 2^k - 1 *)
    if inv land (inv + 1) <> 0 then None
    else begin
      let len = ref mac_bits and v = ref inv in
      while !v <> 0 do
        decr len;
        v := !v lsr 1
      done;
      Some !len
    end
  end

(* trie-indexable iff only a dst prefix is constrained *)
let indexable_prefix m =
  if m.src_mac <> None || m.ethertype <> None || m.ip_dst <> None || m.ip_proto <> None then
    None
  else
    match m.dst_mac with
    | None -> Some (0, 0)
    | Some { value; mask } ->
      (match prefix_len_of_mask mask with
       | Some len -> Some (value land mask, len)
       | None -> None)

let bit_at key depth = (key lsr (mac_bits - 1 - depth)) land 1
let set_child n bit c = if bit = 0 then n.zero <- Some c else n.one <- Some c

let trie_insert root ~key ~len ix =
  let rec ins n =
    (* invariant: the top [n.depth] bits of [key] equal [n.key]'s, and
       [n.depth <= len] *)
    if n.depth = len then n.here <- ix :: n.here
    else begin
      let bit = bit_at key n.depth in
      match (if bit = 0 then n.zero else n.one) with
      | None -> set_child n bit { depth = len; key; zero = None; one = None; here = [ ix ] }
      | Some c ->
        let com = min (common_prefix_len key c.key) c.depth in
        if com = c.depth && c.depth <= len then ins c
        else begin
          (* split the compressed edge n->c at depth m *)
          let m = min com len in
          let s = { depth = m; key; zero = None; one = None; here = [] } in
          set_child s (bit_at c.key m) c;
          if m = len then s.here <- [ ix ]
          else
            set_child s (bit_at key m)
              { depth = len; key; zero = None; one = None; here = [ ix ] };
          set_child n bit s
        end
    end
  in
  ins root

let trie_remove root ~key ~len name =
  (* dead branches are left in place: tables are small and churn is
     control-plane-rate, so reclaiming empty nodes is not worth the code *)
  let rec rem n =
    if n.depth = len then n.here <- List.filter (fun ix -> ix.e.name <> name) n.here
    else
      match (if bit_at key n.depth = 0 then n.zero else n.one) with
      | Some c when c.depth <= len && (key lxor c.key) lsr (mac_bits - c.depth) land mac_mask = 0
        ->
        rem c
      | _ -> () (* no node covers this exact prefix: nothing to remove *)
  in
  rem root

type update =
  | Installed of { name : string; prefix : (int * int) option }
  | Removed of { name : string; prefix : (int * int) option }
  | Group_changed of { group : int }
  | Cleared

type t = {
  mutable entries : entry list; (* kept sorted: priority desc, insertion order for ties *)
  mutable next_tie : int;
  groups : (int, int array) Hashtbl.t;
  by_name : (string, indexed) Hashtbl.t; (* name -> live indexed record (hit counters) *)
  mutable salt : int;
  mutable root : node; (* dst-prefix index over the indexable entries *)
  mutable residual : indexed list; (* non-indexable entries, lookup order *)
  mutable journal : (update -> unit) option;
}

let create () =
  { entries = []; next_tie = 0; groups = Hashtbl.create 8;
    by_name = Hashtbl.create 16; salt = 0; root = new_node (); residual = [];
    journal = None }

let set_journal t j = t.journal <- j
let emit t u = match t.journal with None -> () | Some f -> f u

let set_hash_salt t salt = t.salt <- salt

let deindex t entry =
  match indexable_prefix entry.mtch with
  | Some (key, len) -> trie_remove t.root ~key ~len entry.name
  | None -> t.residual <- List.filter (fun ix -> ix.e.name <> entry.name) t.residual

(* a freshly installed entry always carries the largest tie, so keeping
   the (priority desc, tie desc) order is a single sorted insertion —
   the entry goes in front of its priority class *)
let rec insert_entry_sorted entry entries =
  match entries with
  | x :: rest when x.priority > entry.priority -> x :: insert_entry_sorted entry rest
  | rest -> entry :: rest

let rec insert_ix_sorted ix residual =
  match residual with
  | x :: rest when x.e.priority > ix.e.priority -> x :: insert_ix_sorted ix rest
  | rest -> ix :: rest

let index t ix =
  match indexable_prefix ix.e.mtch with
  | Some (key, len) -> trie_insert t.root ~key ~len ix
  | None -> t.residual <- insert_ix_sorted ix t.residual

let install t entry =
  let old = List.find_opt (fun e -> e.name = entry.name) t.entries in
  (match old with Some o -> deindex t o | None -> ());
  t.entries <- List.filter (fun e -> e.name <> entry.name) t.entries;
  let tie = t.next_tie in
  t.next_tie <- t.next_tie + 1;
  t.entries <- insert_entry_sorted entry t.entries;
  (* hit counters survive a same-name reinstall, like real switch stats *)
  let hits =
    match Hashtbl.find_opt t.by_name entry.name with Some old -> old.hits | None -> 0
  in
  let ix = { e = entry; tie; hits } in
  Hashtbl.replace t.by_name entry.name ix;
  index t ix;
  (* a replacement that moved to a new prefix vacates the old one too *)
  (match old with
   | Some o when indexable_prefix o.mtch <> indexable_prefix entry.mtch ->
     emit t (Removed { name = entry.name; prefix = indexable_prefix o.mtch })
   | Some _ | None -> ());
  emit t (Installed { name = entry.name; prefix = indexable_prefix entry.mtch })

let remove t name =
  match List.find_opt (fun e -> e.name = name) t.entries with
  | None -> ()
  | Some old ->
    deindex t old;
    t.entries <- List.filter (fun e -> e.name <> name) t.entries;
    Hashtbl.remove t.by_name name;
    emit t (Removed { name; prefix = indexable_prefix old.mtch })

let clear t =
  t.entries <- [];
  Hashtbl.reset t.groups;
  Hashtbl.reset t.by_name;
  t.root <- new_node ();
  t.residual <- [];
  emit t Cleared

let size t = List.length t.entries
let entry_names t = List.map (fun e -> e.name) t.entries

let set_group t id members =
  Hashtbl.replace t.groups id (Array.copy members);
  emit t (Group_changed { group = id })
let group_members t id = Option.map Array.copy (Hashtbl.find_opt t.groups id)

let mask_ok mm field = field land mm.mask = mm.value land mm.mask

let ip_fields (frame : Eth.t) =
  match frame.payload with
  | Eth.Ipv4 p ->
    Some (Ipv4_addr.to_int p.Ipv4_pkt.src, Ipv4_addr.to_int p.Ipv4_pkt.dst,
          Ipv4_pkt.proto_number p.Ipv4_pkt.payload)
  | _ -> None

let matches m (frame : Eth.t) =
  let dst = Mac_addr.to_int frame.dst and src = Mac_addr.to_int frame.src in
  let et = Eth.ethertype frame.payload in
  let dst_ok = match m.dst_mac with None -> true | Some mm -> mask_ok mm dst in
  let src_ok = match m.src_mac with None -> true | Some mm -> mask_ok mm src in
  let et_ok = match m.ethertype with None -> true | Some e -> e = et in
  let ip = ip_fields frame in
  let ip_dst_ok =
    match m.ip_dst with
    | None -> true
    | Some mm -> (match ip with Some (_, d, _) -> mask_ok mm d | None -> false)
  in
  let proto_ok =
    match m.ip_proto with
    | None -> true
    | Some p -> (match ip with Some (_, _, pr) -> p = pr | None -> false)
  in
  dst_ok && src_ok && et_ok && ip_dst_ok && proto_ok

(* best (priority, tie) of [best] and the entries anchored at one node *)
let rec fold_here best here =
  match here with
  | [] -> best
  | ix :: rest ->
    let best =
      match best with
      | Some b
        when b.e.priority > ix.e.priority
             || (b.e.priority = ix.e.priority && b.tie > ix.tie) ->
        best
      | _ -> Some ix
    in
    fold_here best rest

(* best (priority, tie) candidate along the trie path of [dst]. Skipped
   edge bits are verified in one xor-shift per node: if they diverge,
   nothing at or below the node matches (compressed chains hold no
   entries), and everything shallower was already considered. The walk
   costs one step per branch point, not one per bit. *)
let trie_best t dst =
  let rec go n best =
    if (dst lxor n.key) lsr (mac_bits - n.depth) <> 0 then best
    else begin
      let best = match n.here with [] -> best | here -> fold_here best here in
      if n.depth = mac_bits then best
      else
        match (if bit_at dst n.depth = 0 then n.zero else n.one) with
        | None -> best
        | Some c -> go c best
    end
  in
  go t.root None

(* first residual entry (residual is kept in lookup order) beating [cand];
   specialized per match kind so the hot path allocates no closure *)
let rec merge_residual_frame cand frame residual =
  match residual with
  | [] -> cand
  | ix :: rest ->
    (match cand with
     | Some b
       when b.e.priority > ix.e.priority || (b.e.priority = ix.e.priority && b.tie > ix.tie)
       ->
       (* residual is sorted, so nothing further can beat the candidate *)
       cand
     | _ ->
       if matches ix.e.mtch frame then Some ix else merge_residual_frame cand frame rest)

let lookup t frame =
  let cand = trie_best t (Mac_addr.to_int frame.Eth.dst) in
  let best =
    match t.residual with [] -> cand | r -> merge_residual_frame cand frame r
  in
  match best with
  | Some ix ->
    ix.hits <- ix.hits + 1;
    Some ix.e
  | None -> None

let lookup_linear t frame = List.find_opt (fun e -> matches e.mtch frame) t.entries

let hit_count t name =
  match Hashtbl.find_opt t.by_name name with Some ix -> ix.hits | None -> 0

let select_member t ~group ~hash =
  match Hashtbl.find_opt t.groups group with
  | None -> None
  | Some members when Array.length members = 0 -> None
  | Some members ->
    (* decorrelate from other switches on the path via the local salt,
       with a full avalanche so even mod-2 member choices see every input
       bit (a plain multiply preserves low-bit parity) *)
    let h = hash lxor t.salt in
    let h = (h lxor (h lsr 30)) * 0x1BF58476D1CE4E5B land max_int in
    let h = (h lxor (h lsr 27)) * 0x1094D049BB133111 land max_int in
    let mixed = h lxor (h lsr 31) in
    Some members.(mixed mod Array.length members)

(* FNV-1a over selected fields *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325 (* FNV offset basis truncated to 62 bits *)

let fnv acc v = (acc lxor v) * fnv_prime land max_int

let ports_of (frame : Eth.t) =
  match frame.payload with
  | Eth.Ipv4 p ->
    (match p.Ipv4_pkt.payload with
     | Ipv4_pkt.Udp u -> (u.Udp.src_port, u.Udp.dst_port)
     | Ipv4_pkt.Tcp s -> (s.Tcp_seg.src_port, s.Tcp_seg.dst_port)
     | Ipv4_pkt.Igmp _ | Ipv4_pkt.Icmp _ | Ipv4_pkt.Raw _ -> (0, 0))
  | _ -> (0, 0)

let flow_hash (frame : Eth.t) =
  let h =
    match ip_fields frame with
    | Some (src, dst, proto) ->
      let sp, dp = ports_of frame in
      fnv (fnv (fnv (fnv (fnv fnv_offset src) dst) proto) sp) dp
    | None ->
      fnv (fnv (fnv fnv_offset (Mac_addr.to_int frame.src)) (Mac_addr.to_int frame.dst))
        (Eth.ethertype frame.payload)
  in
  abs h

let entries t = t.entries
let find_entry t name = List.find_opt (fun e -> e.name = name) t.entries
let groups t = Hashtbl.fold (fun id members acc -> (id, Array.copy members) :: acc) t.groups []

let dst_only_matches e dst =
  (match e.mtch.dst_mac with None -> true | Some mm -> mask_ok mm dst)
  && e.mtch.src_mac = None && e.mtch.ethertype = None && e.mtch.ip_dst = None
  && e.mtch.ip_proto = None

let rec merge_residual_dst cand dst residual =
  match residual with
  | [] -> cand
  | ix :: rest ->
    (match cand with
     | Some b
       when b.e.priority > ix.e.priority || (b.e.priority = ix.e.priority && b.tie > ix.tie)
       ->
       cand
     | _ -> if dst_only_matches ix.e dst then Some ix else merge_residual_dst cand dst rest)

let lookup_dst t dst =
  let cand = trie_best t dst in
  let best = match t.residual with [] -> cand | r -> merge_residual_dst cand dst r in
  match best with Some ix -> Some ix.e | None -> None

let lookup_dst_linear t dst = List.find_opt (fun e -> dst_only_matches e dst) t.entries

let pp_mask_match fmt (mm : mask_match) =
  if mm.mask = 0xFFFFFFFFFFFF then Format.fprintf fmt "=%012x" mm.value
  else Format.fprintf fmt "%012x/%012x" mm.value mm.mask

let pp_mtch fmt m =
  let started = ref false in
  let sep () =
    if !started then Format.pp_print_string fmt ",";
    started := true
  in
  (match m.dst_mac with
   | Some mm ->
     sep ();
     Format.fprintf fmt "dst:%a" pp_mask_match mm
   | None -> ());
  (match m.src_mac with
   | Some mm ->
     sep ();
     Format.fprintf fmt "src:%a" pp_mask_match mm
   | None -> ());
  (match m.ethertype with
   | Some e ->
     sep ();
     Format.fprintf fmt "type:0x%04x" e
   | None -> ());
  (match m.ip_dst with
   | Some mm ->
     sep ();
     Format.fprintf fmt "ip_dst:%a" pp_mask_match mm
   | None -> ());
  (match m.ip_proto with
   | Some p ->
     sep ();
     Format.fprintf fmt "proto:%d" p
   | None -> ());
  if not !started then Format.pp_print_string fmt "any"

let pp_action fmt = function
  | Output p -> Format.fprintf fmt "out:%d" p
  | Group g -> Format.fprintf fmt "group:%d" g
  | Multi ports ->
    Format.fprintf fmt "multi:[%s]" (String.concat ";" (List.map string_of_int ports))
  | Flood -> Format.pp_print_string fmt "flood"
  | Set_dst_mac m -> Format.fprintf fmt "set_dst:%a" Mac_addr.pp m
  | Set_src_mac m -> Format.fprintf fmt "set_src:%a" Mac_addr.pp m
  | Punt -> Format.pp_print_string fmt "punt"
  | Drop -> Format.pp_print_string fmt "drop"

let pp_update fmt u =
  let pp_prefix fmt = function
    | None -> Format.pp_print_string fmt "residual"
    | Some (v, len) -> Format.fprintf fmt "%012x/%d" v len
  in
  match u with
  | Installed { name; prefix } -> Format.fprintf fmt "install %s @ %a" name pp_prefix prefix
  | Removed { name; prefix } -> Format.fprintf fmt "remove %s @ %a" name pp_prefix prefix
  | Group_changed { group } -> Format.fprintf fmt "group %d changed" group
  | Cleared -> Format.pp_print_string fmt "cleared"

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "%4d %-14s %-40s [%s] hits=%d@." e.priority e.name
        (Format.asprintf "%a" pp_mtch e.mtch)
        (String.concat "; " (List.map (Format.asprintf "%a" pp_action) e.actions))
        (hit_count t e.name))
    t.entries;
  Hashtbl.iter
    (fun gid members ->
      Format.fprintf fmt "group %d -> [%s]@." gid
        (String.concat ";" (List.map string_of_int (Array.to_list members))))
    t.groups

(* ---------------- canonical rendering ---------------- *)

let render_entry e =
  Format.asprintf "%d %s %a [%s]" e.priority e.name pp_mtch e.mtch
    (String.concat "; " (List.map (Format.asprintf "%a" pp_action) e.actions))

let canonical_lines t =
  let entry_lines = List.sort String.compare (List.map render_entry t.entries) in
  let group_lines =
    Hashtbl.fold
      (fun gid members acc ->
        Printf.sprintf "group %d [%s]" gid
          (String.concat ";" (List.map string_of_int (Array.to_list members)))
        :: acc)
      t.groups []
    |> List.sort String.compare
  in
  entry_lines @ group_lines
