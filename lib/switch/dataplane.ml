type miss_policy = Miss_drop | Miss_punt | Miss_flood

type stats = { matched : int; missed : int; punts : int; dropped : int }

type t = {
  net : Net.t;
  device : int;
  table : Flow_table.t;
  miss : miss_policy;
  on_punt : in_port:int -> Netcore.Eth.t -> unit;
  mutable s_matched : int;
  mutable s_missed : int;
  mutable s_punts : int;
  mutable s_dropped : int;
}

let table t = t.table

let stats t =
  { matched = t.s_matched; missed = t.s_missed; punts = t.s_punts; dropped = t.s_dropped }

let punt t ~in_port frame =
  t.s_punts <- t.s_punts + 1;
  t.on_punt ~in_port frame

let via_group t frame g =
  let hash = Flow_table.flow_hash frame in
  match Flow_table.select_member t.table ~group:g ~hash with
  | Some port -> Net.transmit t.net ~node:t.device ~port frame
  | None -> t.s_dropped <- t.s_dropped + 1

let rec run_actions t ~in_port frame actions =
  (* The per-hop loop: the forwarding shapes PortLand installs — plain
     output, ECMP group, and rewrite-then-forward at the edges — are
     dispatched directly, without the mutable-frame accumulator the
     general tail needs. *)
  match (actions : Flow_table.action list) with
  | [] -> ()
  | [ Flow_table.Output port ] -> Net.transmit t.net ~node:t.device ~port frame
  | [ Flow_table.Group g ] -> via_group t frame g
  | Flow_table.Set_dst_mac mac :: rest ->
    run_actions t ~in_port { frame with Netcore.Eth.dst = mac } rest
  | Flow_table.Set_src_mac mac :: rest ->
    run_actions t ~in_port { frame with Netcore.Eth.src = mac } rest
  | action :: rest ->
    (match action with
     | Flow_table.Output port -> Net.transmit t.net ~node:t.device ~port frame
     | Flow_table.Group g -> via_group t frame g
     | Flow_table.Multi ports ->
       List.iter
         (fun port -> if port <> in_port then Net.transmit t.net ~node:t.device ~port frame)
         ports
     | Flow_table.Flood -> Net.flood t.net ~node:t.device ~except:in_port frame
     | Flow_table.Set_dst_mac _ | Flow_table.Set_src_mac _ -> assert false
     | Flow_table.Punt -> punt t ~in_port frame
     | Flow_table.Drop -> t.s_dropped <- t.s_dropped + 1);
    run_actions t ~in_port frame rest

let handle t in_port frame =
  match Flow_table.lookup t.table frame with
  | Some entry ->
    t.s_matched <- t.s_matched + 1;
    run_actions t ~in_port frame entry.Flow_table.actions
  | None ->
    t.s_missed <- t.s_missed + 1;
    (match t.miss with
     | Miss_drop -> t.s_dropped <- t.s_dropped + 1
     | Miss_punt -> punt t ~in_port frame
     | Miss_flood -> Net.flood t.net ~node:t.device ~except:in_port frame)

let attach net ~device ~table ~miss ?(on_punt = fun ~in_port:_ _ -> ()) ?(obs = Obs.null) () =
  let t =
    { net; device; table; miss; on_punt; s_matched = 0; s_missed = 0; s_punts = 0; s_dropped = 0 }
  in
  (* pull-style export: the hot path keeps its plain mutable counters and
     the registry reads them (plus table occupancy) only at snapshot time *)
  Obs.add_probe obs ~name:(Printf.sprintf "dp:%d" device) (fun () ->
      let labels = [ Obs.Label.sw device ] in
      let total = t.s_matched + t.s_missed in
      let hit_rate =
        if total = 0 then 0.0 else float_of_int t.s_matched /. float_of_int total
      in
      [ Obs.sample ~subsystem:"dataplane" ~name:"matched" ~labels (Obs.Count t.s_matched);
        Obs.sample ~subsystem:"dataplane" ~name:"missed" ~labels (Obs.Count t.s_missed);
        Obs.sample ~subsystem:"dataplane" ~name:"punts" ~labels (Obs.Count t.s_punts);
        Obs.sample ~subsystem:"dataplane" ~name:"dropped" ~labels (Obs.Count t.s_dropped);
        Obs.sample ~subsystem:"dataplane" ~name:"hit_rate" ~labels (Obs.Value hit_rate);
        Obs.sample ~subsystem:"flow_table" ~name:"size" ~labels
          (Obs.Count (Flow_table.size table)) ]);
  Net.set_handler (Net.device net device) (fun in_port frame -> handle t in_port frame);
  t

let inject t ~in_port frame = handle t in_port frame

let forward_out t ~out_port frame = Net.transmit t.net ~node:t.device ~port:out_port frame
