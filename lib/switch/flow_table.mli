(** Priority match/action flow tables — the switch dataplane abstraction
    PortLand programs (the paper targets OpenFlow switches).

    A table holds prioritized entries whose matches may wildcard or
    mask-match individual fields (masked destination-MAC matching is how
    PMAC prefix forwarding is expressed), plus ECMP *select groups*: an
    action may defer the output-port choice to a group, which picks a live
    member by flow hash so that a flow sticks to one path but flows spread
    across all members.

    Lookups run on a destination-prefix trie: entries that match only a
    contiguous dst-MAC prefix (all of PortLand's unicast forwarding
    state) are indexed by a path-compressed (PATRICIA) binary trie with
    per-prefix-length priority tiers, so a lookup visits one node per
    branch point of the installed prefixes — a handful of nodes in a
    converged table — instead of scanning every entry; entries the trie
    cannot express fall back to a residual linear list.
    {!lookup_linear} and {!lookup_dst_linear} keep the plain scan as the
    reference implementation — the differential test suite asserts the
    two agree on arbitrary tables. *)

type mask_match = { value : int; mask : int }
(** Field matches when [field land mask = value land mask]. *)

type mtch = {
  dst_mac : mask_match option;
  src_mac : mask_match option;
  ethertype : int option;
  ip_dst : mask_match option;
  ip_proto : int option;
}

val match_any : mtch
(** Matches every frame. *)

val match_dst_prefix : value:int -> mask:int -> mtch
(** Destination-MAC mask match, everything else wildcarded. *)

type action =
  | Output of int            (** forward out of the given port *)
  | Group of int             (** forward via select group *)
  | Multi of int list
      (** copy to every listed port except the ingress port — multicast
          tree semantics, which keeps a switch on both the up- and
          down-path of a tree from bouncing a packet back where it came
          from *)
  | Flood                    (** all ports except ingress *)
  | Set_dst_mac of Netcore.Mac_addr.t  (** rewrite before subsequent output *)
  | Set_src_mac of Netcore.Mac_addr.t
  | Punt                     (** send to the local control agent *)
  | Drop

type entry = {
  name : string;    (** unique handle for update/removal *)
  priority : int;   (** higher wins; ties broken by later insertion *)
  mtch : mtch;
  actions : action list;
}

type t

val create : unit -> t

val install : t -> entry -> unit
(** Insert or replace (by [name]). *)

val remove : t -> string -> unit
(** Remove by name; absent names are ignored. *)

val clear : t -> unit

val size : t -> int
(** Number of installed entries — the "switch state" metric in the state
    experiment. *)

val entry_names : t -> string list

val set_hash_salt : t -> int -> unit
(** Per-switch salt mixed into select-group member choice. Without it,
    every switch on a path would derive the same hash from the same flow
    and make {e correlated} ECMP choices, collapsing the usable path set
    (the classic reason real fabrics seed per-switch hash functions).
    Defaults to 0. *)

val set_group : t -> int -> int array -> unit
(** Define or replace a select group's member port list. An empty member
    list makes the group select nothing (lookups through it drop). *)

val group_members : t -> int -> int array option

val lookup : t -> Netcore.Eth.t -> entry option
(** Highest-priority matching entry (trie fast path). Increments the
    entry's hit counter. *)

val lookup_linear : t -> Netcore.Eth.t -> entry option
(** Reference implementation of {!lookup}: first match in the sorted
    entry list. Side-effect-free (no hit-counter update); exists so the
    trie fast path can be differentially tested and benchmarked against
    it. *)

val hit_count : t -> string -> int
(** Times the named entry matched (0 for unknown names; counters survive
    entry replacement but not {!remove}/{!clear}). *)

val pp : Format.formatter -> t -> unit
(** Operator-style dump: one line per entry (priority, name, match
    summary, actions, hits), highest priority first, then the groups. *)

val select_member : t -> group:int -> hash:int -> int option
(** Deterministic member choice: [members.(hash mod length)]. *)

val flow_hash : Netcore.Eth.t -> int
(** Non-negative hash over (src IP, dst IP, protocol, ports) for IP
    frames; over (src MAC, dst MAC, ethertype) otherwise. Flows hash
    stably; distinct flows spread. *)

val matches : mtch -> Netcore.Eth.t -> bool
(** Exposed for tests. *)

(** {1 Static introspection}

    Side-effect-free accessors for offline analysis of installed state
    (the {!Portland_verify} dataplane verifier). None of these touch hit
    counters. *)

val entries : t -> entry list
(** Installed entries in lookup order (highest priority first, ties by
    later insertion). *)

val find_entry : t -> string -> entry option

val groups : t -> (int * int array) list
(** Every select group as [(id, members)], in unspecified order. *)

val lookup_dst : t -> int -> entry option
(** The entry that decides the fate of the {e whole} destination class
    [dst]: the highest-priority entry whose [dst_mac] match accepts the
    value and whose other fields are fully wildcarded. Entries that also
    constrain source/ethertype/IP fields match only a subset of the class
    and are skipped (the PortLand layer installs none for unicast
    forwarding). Served by the trie fast path. *)

val lookup_dst_linear : t -> int -> entry option
(** Reference implementation of {!lookup_dst} (linear scan), for
    differential testing. *)

val render_entry : entry -> string
(** One-line canonical rendering of an entry (priority, name, match,
    actions) — the unit of comparison in the policy differential
    checker's counterexamples. *)

val canonical_lines : t -> string list
(** Order-insensitive canonical rendering of the whole table: one sorted
    line per entry ({!render_entry}) followed by one sorted line per
    select group (member order preserved — it is ECMP-behavior-relevant).
    Two tables with the same entries and groups render identically
    regardless of insertion order; {!Portland_policy} digests these lines
    to prove compiled tables equivalent to the handwritten programming. *)

(** {1 Update journal}

    Every mutation of the table can be observed as a typed update carrying
    trie-prefix provenance, feeding the incremental dataplane verifier
    ({!Portland_verify}): an update names the destination-prefix
    equivalence classes it can affect. *)

type update =
  | Installed of { name : string; prefix : (int * int) option }
      (** Entry inserted or replaced. [prefix] is the
          [(value, prefix_len)] the trie indexes it under, [None] for
          residual (non-prefix) entries. A replacement whose match moved
          to a different prefix is journalled as [Removed] (old prefix)
          followed by [Installed] (new prefix). *)
  | Removed of { name : string; prefix : (int * int) option }
      (** Entry removed. Never emitted for names that were not
          installed. *)
  | Group_changed of { group : int }
      (** Select-group member list defined or replaced. *)
  | Cleared
      (** The whole table (entries and groups) was wiped. *)

val indexable_prefix : mtch -> (int * int) option
(** The [(value, prefix_len)] destination prefix the trie would index
    this match under: [Some] iff only a contiguous dst-MAC prefix is
    constrained ([Some (0, 0)] for a full wildcard), [None] for matches
    that fall to the residual list. This is the prefix provenance the
    update journal reports. *)

val set_journal : t -> (update -> unit) option -> unit
(** Subscribe to (or with [None], unsubscribe from) the table's update
    stream. At most one subscriber; the hook runs synchronously inside
    the mutating call, after the table already reflects the change. *)

val pp_update : Format.formatter -> update -> unit
