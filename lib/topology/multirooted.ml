type wiring = Stripes | Ab_stripes | Flat

let wiring_to_string = function
  | Stripes -> "stripes"
  | Ab_stripes -> "ab-stripes"
  | Flat -> "flat"

type spec = {
  wiring : wiring;
  num_pods : int;
  edges_per_pod : int;
  aggs_per_pod : int;
  hosts_per_edge : int;
  num_cores : int;
}

type t = {
  spec : spec;
  topo : Topo.t;
  hosts : int array;
  edges : int array array;
  aggs : int array array;
  cores : int array;
}

let uplinks_per_agg s = if s.aggs_per_pod = 0 then 0 else s.num_cores / s.aggs_per_pod

let edge_uplinks s = match s.wiring with Flat -> s.num_cores | Stripes | Ab_stripes -> s.aggs_per_pod

let num_stripes s =
  match s.wiring with
  | Stripes -> s.aggs_per_pod
  | Ab_stripes -> 2 * uplinks_per_agg s
  | Flat -> 1

let pod_is_type_b s ~pod = s.wiring = Ab_stripes && pod land 1 = 1

let agg_stripe_label s ~pod ~agg_pos =
  match s.wiring with
  | Stripes -> agg_pos
  | Ab_stripes -> if pod land 1 = 0 then agg_pos else uplinks_per_agg s + agg_pos
  | Flat -> invalid_arg "Multirooted.agg_stripe_label: flat wiring has no aggregation tier"

let core_label s ~index =
  match s.wiring with
  | Flat -> (0, index)
  | Stripes | Ab_stripes ->
    let u = uplinks_per_agg s in
    (index / u, index mod u)

let core_index s ~row ~member =
  match s.wiring with
  | Flat -> member
  | Stripes | Ab_stripes -> (row * uplinks_per_agg s) + member

let stripe_cores s ~stripe =
  let u = uplinks_per_agg s in
  match s.wiring with
  | Stripes -> List.init u (fun m -> (stripe, m))
  | Ab_stripes ->
    if stripe < u then List.init u (fun m -> (stripe, m))
    else List.init u (fun j -> (j, stripe - u))
  | Flat -> List.init s.num_cores (fun m -> (0, m))

let stripe_covers s ~stripe ~row ~member =
  match s.wiring with
  | Stripes -> stripe = row
  | Ab_stripes ->
    let u = uplinks_per_agg s in
    if stripe < u then stripe = row else stripe - u = member
  | Flat -> true

let stripes_covering s ~row ~member =
  match s.wiring with
  | Stripes -> [ row ]
  | Ab_stripes -> [ row; uplinks_per_agg s + member ]
  | Flat -> []

let pod_stripe_for_core s ~pod ~row ~member =
  match s.wiring with
  | Stripes -> row
  | Ab_stripes -> if pod land 1 = 0 then row else uplinks_per_agg s + member
  | Flat -> 0

let pod_stripe_labels s ~pod =
  match s.wiring with
  | Flat -> []
  | Stripes | Ab_stripes -> List.init s.aggs_per_pod (fun a -> agg_stripe_label s ~pod ~agg_pos:a)

let agg_uplink_core_index s ~pod ~agg_pos ~j =
  let u = uplinks_per_agg s in
  match s.wiring with
  | Stripes -> (agg_pos * u) + j
  | Ab_stripes -> if pod land 1 = 0 then (agg_pos * u) + j else (j * u) + agg_pos
  | Flat -> invalid_arg "Multirooted.agg_uplink_core_index: flat wiring has no aggregation tier"

let validate_spec s =
  if s.num_pods <= 0 then Error "num_pods must be positive"
  else if s.edges_per_pod <= 0 then Error "edges_per_pod must be positive"
  else if s.hosts_per_edge <= 0 then Error "hosts_per_edge must be positive"
  else if s.num_cores <= 0 then Error "num_cores must be positive"
  else
    match s.wiring with
    | Flat ->
      if s.aggs_per_pod <> 0 then Error "flat wiring has no aggregation tier (aggs_per_pod = 0)"
      else if s.edges_per_pod <> 1 then Error "flat wiring is one leaf (edge) per pod"
      else Ok ()
    | Stripes ->
      if s.aggs_per_pod <= 0 then Error "aggs_per_pod must be positive"
      else if s.num_cores mod s.aggs_per_pod <> 0 then
        Error "num_cores must be divisible by aggs_per_pod (stripe wiring)"
      else Ok ()
    | Ab_stripes ->
      if s.aggs_per_pod <= 0 then Error "aggs_per_pod must be positive"
      else if s.num_cores <> s.aggs_per_pod * s.aggs_per_pod then
        Error "ab wiring needs a square core grid (num_cores = aggs_per_pod^2)"
      else Ok ()

(* builder hot path: string concatenation instead of Printf.sprintf — the
   format interpreter dominated build time at k=8 *)
let name2 prefix a b = prefix ^ string_of_int a ^ "-" ^ string_of_int b

let name3 prefix a b c =
  prefix ^ string_of_int a ^ "-" ^ string_of_int b ^ "-" ^ string_of_int c

let build s =
  (match validate_spec s with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Multirooted.build: " ^ msg));
  let u = uplinks_per_agg s in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let nodes = ref [] in
  let add_node kind name nports =
    let id = fresh () in
    nodes := { Topo.id; kind; name; nports } :: !nodes;
    id
  in
  (* hosts first, then edges, aggs, cores — ids are dense in that order *)
  let hosts =
    Array.init (s.num_pods * s.edges_per_pod * s.hosts_per_edge) (fun i ->
        let pod = i / (s.edges_per_pod * s.hosts_per_edge) in
        let rem = i mod (s.edges_per_pod * s.hosts_per_edge) in
        let edge = rem / s.hosts_per_edge in
        let slot = rem mod s.hosts_per_edge in
        add_node Topo.Host (name3 "host-" pod edge slot) 1)
  in
  let edges =
    Array.init s.num_pods (fun pod ->
        Array.init s.edges_per_pod (fun pos ->
            add_node Topo.Edge_switch (name2 "edge-" pod pos)
              (s.hosts_per_edge + edge_uplinks s)))
  in
  let aggs =
    Array.init s.num_pods (fun pod ->
        Array.init s.aggs_per_pod (fun pos ->
            add_node Topo.Agg_switch (name2 "agg-" pod pos) (s.edges_per_pod + u)))
  in
  let cores =
    Array.init s.num_cores (fun c ->
        add_node Topo.Core_switch ("core-" ^ string_of_int c) s.num_pods)
  in
  let links = ref [] in
  let connect a ap b bp =
    links := { Topo.a = { Topo.node = a; port = ap }; b = { Topo.node = b; port = bp } } :: !links
  in
  (* host <-> edge *)
  Array.iteri
    (fun i host ->
      let pod = i / (s.edges_per_pod * s.hosts_per_edge) in
      let rem = i mod (s.edges_per_pod * s.hosts_per_edge) in
      let edge = rem / s.hosts_per_edge in
      let slot = rem mod s.hosts_per_edge in
      connect host 0 edges.(pod).(edge) slot)
    hosts;
  (* edge <-> agg, full bipartite within pod *)
  for pod = 0 to s.num_pods - 1 do
    for e = 0 to s.edges_per_pod - 1 do
      for a = 0 to s.aggs_per_pod - 1 do
        connect edges.(pod).(e) (s.hosts_per_edge + a) aggs.(pod).(a) e
      done
    done
  done;
  (* uplink tier, per wiring *)
  (match s.wiring with
   | Stripes | Ab_stripes ->
     (* plain: agg position a owns cores a*u .. a*u+u-1 in every pod.
        AB (F10): even pods keep the row wiring, odd pods take the
        transposed (column) wiring over the u*u core grid. *)
     for pod = 0 to s.num_pods - 1 do
       for a = 0 to s.aggs_per_pod - 1 do
         for j = 0 to u - 1 do
           let core = cores.(agg_uplink_core_index s ~pod ~agg_pos:a ~j) in
           connect aggs.(pod).(a) (s.edges_per_pod + j) core pod
         done
       done
     done
   | Flat ->
     (* two-layer: every leaf connects straight to every spine *)
     for pod = 0 to s.num_pods - 1 do
       for m = 0 to s.num_cores - 1 do
         connect edges.(pod).(0) (s.hosts_per_edge + m) cores.(m) pod
       done
     done);
  let topo = Topo.create ~nodes:(List.rev !nodes) ~links:(List.rev !links) in
  { spec = s; topo; hosts; edges; aggs; cores }

let spec_of_family (f : Topo.Family.t) =
  match f with
  | Topo.Family.Plain { k } | Topo.Family.Ab { k } ->
    if k <= 0 || k mod 2 <> 0 then
      invalid_arg "Multirooted.spec_of_family: k must be positive and even";
    let half = k / 2 in
    { wiring = (match f with Topo.Family.Ab _ -> Ab_stripes | _ -> Stripes);
      num_pods = k;
      edges_per_pod = half;
      aggs_per_pod = half;
      hosts_per_edge = half;
      num_cores = half * half }
  | Topo.Family.Two_layer { leaves; spines; hosts_per_leaf } ->
    if leaves <= 0 || spines <= 0 || hosts_per_leaf <= 0 then
      invalid_arg "Multirooted.spec_of_family: two-layer sizes must be positive";
    { wiring = Flat;
      num_pods = leaves;
      edges_per_pod = 1;
      aggs_per_pod = 0;
      hosts_per_edge = hosts_per_leaf;
      num_cores = spines }

let build_family f = build (spec_of_family f)

let host_ids t = Array.to_list t.hosts
let edge_uplink_port t ~agg_pos = t.spec.hosts_per_edge + agg_pos
let agg_uplink_port t ~stripe_member = t.spec.edges_per_pod + stripe_member

let core_of_stripe t ~agg_pos ~member =
  let u = uplinks_per_agg t.spec in
  if t.spec.wiring <> Stripes then
    invalid_arg "Multirooted.core_of_stripe: only meaningful for plain stripe wiring";
  if agg_pos < 0 || agg_pos >= t.spec.aggs_per_pod || member < 0 || member >= u then
    invalid_arg "Multirooted.core_of_stripe: out of range";
  t.cores.((agg_pos * u) + member)

let host_location t id =
  let n = Array.length t.hosts in
  (* hosts occupy ids [0, n): dense construction order *)
  if id < 0 || id >= n || t.hosts.(id) <> id then None
  else begin
    let per_pod = t.spec.edges_per_pod * t.spec.hosts_per_edge in
    let pod = id / per_pod in
    let rem = id mod per_pod in
    Some (pod, rem / t.spec.hosts_per_edge, rem mod t.spec.hosts_per_edge)
  end
