type t = Multirooted.t

let spec ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fattree.spec: k must be even and >= 2";
  let half = k / 2 in
  { Multirooted.wiring = Multirooted.Stripes;
    num_pods = k;
    edges_per_pod = half;
    aggs_per_pod = half;
    hosts_per_edge = half;
    num_cores = half * half }

let build ~k = Multirooted.build (spec ~k)

let k (t : t) = 2 * t.Multirooted.spec.Multirooted.edges_per_pod

let num_hosts ~k = k * k * k / 4
let num_switches ~k = (k * k) + (k / 2 * (k / 2))

let check name v bound =
  if v < 0 || v >= bound then invalid_arg (Printf.sprintf "Fattree.%s: out of range" name)

let host (t : t) ~pod ~edge ~slot =
  let s = t.Multirooted.spec in
  check "host" pod s.Multirooted.num_pods;
  check "host" edge s.Multirooted.edges_per_pod;
  check "host" slot s.Multirooted.hosts_per_edge;
  t.Multirooted.hosts.((pod * s.Multirooted.edges_per_pod * s.Multirooted.hosts_per_edge)
                       + (edge * s.Multirooted.hosts_per_edge) + slot)

let edge (t : t) ~pod ~pos =
  let s = t.Multirooted.spec in
  check "edge" pod s.Multirooted.num_pods;
  check "edge" pos s.Multirooted.edges_per_pod;
  t.Multirooted.edges.(pod).(pos)

let agg (t : t) ~pod ~pos =
  let s = t.Multirooted.spec in
  check "agg" pod s.Multirooted.num_pods;
  check "agg" pos s.Multirooted.aggs_per_pod;
  t.Multirooted.aggs.(pod).(pos)

let core (t : t) ~index =
  check "core" index (Array.length t.Multirooted.cores);
  t.Multirooted.cores.(index)
