(** Static network topology: a port-labelled multigraph.

    A topology is pure structure — which device ports are wired to which —
    with no behaviour. [Switchfab.Net] instantiates a runtime network from
    it; builders live in {!Fattree} and {!Multirooted}. *)

type kind = Host | Edge_switch | Agg_switch | Core_switch

type node = {
  id : int;        (** dense, unique, 0-based *)
  kind : kind;
  name : string;   (** human-readable, unique (e.g. ["edge-2-1"]) *)
  nports : int;
}

type endpoint = { node : int; port : int }

type link = { a : endpoint; b : endpoint }

type t

val create : nodes:node list -> links:link list -> t
(** Validates: dense ids matching list order; ports within range; no port
    wired twice; no self-loops on the same port. Raises
    [Invalid_argument] on violation. *)

val node_count : t -> int
val link_count : t -> int
val node : t -> int -> node
val nodes : t -> node array
val links : t -> link array
val find_by_name : t -> string -> node option

val peer : t -> node:int -> port:int -> endpoint option
(** The endpoint wired to the given port, if any. *)

val link_index : t -> node:int -> port:int -> int option
(** Index into {!links} of the link attached at the given port. *)

val neighbors : t -> int -> (int * endpoint) list
(** [(local_port, remote_endpoint)] for every wired port, port order. *)

val degree : t -> int -> int
(** Number of wired ports. *)

val nodes_of_kind : t -> kind -> node list

val is_connected : t -> bool
(** Whole graph reachable from node 0 (false for an empty topology). *)

(** Topology family descriptors.

    A family names a whole wiring discipline, not one instance: [Plain] is
    the canonical k-ary fat tree, [Ab] the F10-style AB fat tree whose
    odd pods transpose their agg–core stripes over the core grid, and
    [Two_layer] the oversubscribed leaf–spine (no aggregation tier, every
    leaf wired to every spine). {!Multirooted.spec_of_family} turns a
    descriptor into a concrete build spec; [Fabric.Config.of_family] boots
    a PortLand control plane on any member. *)
module Family : sig
  type t =
    | Plain of { k : int }
    | Ab of { k : int }
    | Two_layer of { leaves : int; spines : int; hosts_per_leaf : int }

  val to_string : t -> string
  (** ["plain" | "ab" | "two-layer"] — the [--topology] flag values. *)

  val names : string list

  val of_string : k:int -> string -> (t, string) result
  (** The canonical member at arity [k]: plain/AB fat trees use [k]
      directly; ["two-layer"] maps to [k] leaves, [k/2] spines and [k]
      hosts per leaf (2:1 oversubscription, leaf radix 3k/2). *)

  val all : k:int -> t list
  (** One canonical member per family, in {!names} order. *)

  val pp : Format.formatter -> t -> unit
end

val kind_to_string : kind -> string
val pp_endpoint : Format.formatter -> endpoint -> unit
val pp_summary : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering: hosts as boxes, switches as ellipses ranked by
    tier (cores on top), links labelled with their port pairs. Pipe into
    [dot -Tsvg] to draw the fabric. *)
