(** Generalized multi-rooted tree builder.

    PortLand targets any multi-rooted tree, of which the k-ary fat tree is
    the canonical instance ({!Fattree} is a thin wrapper over this module).
    A spec describes a three-tier topology:

    - [num_pods] pods, each with [edges_per_pod] edge switches and
      [aggs_per_pod] aggregation switches, fully bipartitely wired inside
      the pod;
    - [hosts_per_edge] hosts per edge switch;
    - [num_cores] core switches, each with exactly one link to every pod;
    - a [wiring] discipline for the uplink tier:
      {ul
      {- [Stripes] — plain fat-tree striping: aggregation switch at
         position [a] (in every pod) connects to cores [a*u .. a*u+u-1]
         where [u = num_cores / aggs_per_pod];}
      {- [Ab_stripes] — F10-style AB wiring over the square core grid
         ([num_cores = aggs_per_pod^2], so [u = aggs_per_pod]): viewing
         core [i] as grid cell [(row, member) = (i/u, i mod u)], even
         ("type A") pods keep the row wiring while odd ("type B") pods
         transpose it — their agg at position [a] connects to column [a],
         i.e. cores [(j, a)] for all [j]. Adjacent pods thus disagree on
         which cores share an uplink bundle, which is exactly what makes
         single-failure recovery local (F10, NSDI '13);}
      {- [Flat] — oversubscribed two-layer leaf–spine: no aggregation
         tier ([aggs_per_pod = 0], [edges_per_pod = 1]); every leaf
         (edge) connects directly to every spine (core). The
         uplink:downlink ratio is [num_cores : hosts_per_edge].}}

    {b Stripe labels.} The control plane names uplink bundles with a
    per-pod {e stripe label} [sigma]. Under [Stripes] it is the agg
    position. Under [Ab_stripes] the label space doubles: row aggs carry
    [sigma in 0..u-1] (covering core row [sigma]), column aggs carry
    [sigma in u..2u-1] (covering core column [sigma - u]) — so a label
    alone pins down the exact core set [C(sigma)] with no extra pod-type
    bookkeeping. Under [Flat] there is a single pseudo-stripe [0] whose
    member [m] is spine [m]. Cores are labelled [(row, member)] — their
    grid cell, or [(0, m)] for spine [m].

    Port conventions (relied upon throughout the PortLand layer):
    - edge switch: ports [0 .. hosts_per_edge-1] face hosts (down),
      remaining ports face aggregation switches — or, under [Flat],
      spines — in order;
    - aggregation switch: ports [0 .. edges_per_pod-1] face edge switches
      (down, indexed by edge position), remaining ports face its core
      bundle (up, in order);
    - core switch: port [p] faces pod [p];
    - host: single port (0) to its edge switch. *)

type wiring = Stripes | Ab_stripes | Flat

val wiring_to_string : wiring -> string

type spec = {
  wiring : wiring;
  num_pods : int;
  edges_per_pod : int;
  aggs_per_pod : int;   (** 0 under [Flat] *)
  hosts_per_edge : int;
  num_cores : int;
}

type t = {
  spec : spec;
  topo : Topo.t;
  hosts : int array;        (** node id of host [pod*epp*hpe + edge*hpe + slot] *)
  edges : int array array;  (** [edges.(pod).(pos)] *)
  aggs : int array array;   (** [aggs.(pod).(pos)]; empty rows under [Flat] *)
  cores : int array;        (** [cores.(core_index ~row ~member)] *)
}

val validate_spec : spec -> (unit, string) result
(** All counts positive and the wiring's own constraint: [Stripes] needs
    [num_cores] divisible by [aggs_per_pod]; [Ab_stripes] needs the
    square grid [num_cores = aggs_per_pod^2]; [Flat] needs
    [aggs_per_pod = 0] and [edges_per_pod = 1]. *)

val build : spec -> t
(** Raises [Invalid_argument] when {!validate_spec} fails. *)

val spec_of_family : Topo.Family.t -> spec
(** Concrete spec for a family member: [Plain]/[Ab {k}] are the k-ary
    fat trees (k pods of k/2+k/2 switches, (k/2)^2 cores) under the
    respective wiring; [Two_layer] maps leaves/spines/hosts directly. *)

val build_family : Topo.Family.t -> t

val uplinks_per_agg : spec -> int
(** [num_cores / aggs_per_pod]; 0 under [Flat]. *)

val edge_uplinks : spec -> int
(** Up-facing ports per edge switch: [aggs_per_pod], or [num_cores]
    under [Flat]. *)

val num_stripes : spec -> int
(** Size of the stripe-label space: [aggs_per_pod] ([Stripes]), [2u]
    ([Ab_stripes]), 1 ([Flat]). *)

val pod_is_type_b : spec -> pod:int -> bool
(** Ground truth of the builder: odd pods transpose under [Ab_stripes];
    false otherwise. *)

val agg_stripe_label : spec -> pod:int -> agg_pos:int -> int
(** Stripe label the control plane will converge on for that agg. *)

val core_label : spec -> index:int -> int * int
(** [(row, member)] grid cell of core [index] ([(0, index)] under
    [Flat]). *)

val core_index : spec -> row:int -> member:int -> int
(** Inverse of {!core_label}. *)

val stripe_cores : spec -> stripe:int -> (int * int) list
(** [C(sigma)]: core labels reachable through an agg labelled [stripe]. *)

val stripe_covers : spec -> stripe:int -> row:int -> member:int -> bool
(** [(row, member)] ∈ [C(stripe)], without building the list. *)

val stripes_covering : spec -> row:int -> member:int -> int list
(** All labels [sigma] with [(row, member)] ∈ [C(sigma)] — at most one
    per pod type, so testing a remote pod's uplink faults against this
    list is exact even without knowing that pod's type. *)

val pod_stripe_for_core : spec -> pod:int -> row:int -> member:int -> int
(** The label of the (unique) agg in [pod] wired to that core. *)

val pod_stripe_labels : spec -> pod:int -> int list
(** Labels of the pod's aggs in position order ([[]] under [Flat]). *)

val agg_uplink_core_index : spec -> pod:int -> agg_pos:int -> j:int -> int
(** Core (array index) on uplink [j] of the agg at [agg_pos] in [pod]. *)

val host_ids : t -> int list
val edge_uplink_port : t -> agg_pos:int -> int
(** Edge-switch port facing the aggregation switch at [agg_pos]. *)

val agg_uplink_port : t -> stripe_member:int -> int
(** Aggregation-switch port facing member [stripe_member] of its core
    bundle. *)

val core_of_stripe : t -> agg_pos:int -> member:int -> int
(** Node id of that core switch ([Stripes] wiring only). *)

val host_location : t -> int -> (int * int * int) option
(** [host_location t id] is [(pod, edge_pos, slot)] when [id] is a host. *)
