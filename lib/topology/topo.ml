type kind = Host | Edge_switch | Agg_switch | Core_switch

type node = { id : int; kind : kind; name : string; nports : int }

type endpoint = { node : int; port : int }

type link = { a : endpoint; b : endpoint }

type t = {
  nodes : node array;
  links : link array;
  (* peers.(n).(p) is the endpoint wired to node n's port p *)
  peers : endpoint option array array;
  (* link_idx.(n).(p) is the index into [links] of the attached link *)
  link_idx : int option array array;
  by_name : (string, int) Hashtbl.t;
}

let kind_to_string = function
  | Host -> "host"
  | Edge_switch -> "edge"
  | Agg_switch -> "agg"
  | Core_switch -> "core"

let create ~nodes ~links =
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun i n ->
      if n.id <> i then
        invalid_arg (Printf.sprintf "Topo.create: node %s has id %d at index %d" n.name n.id i))
    nodes;
  let by_name = Hashtbl.create (Array.length nodes) in
  Array.iter
    (fun n ->
      if Hashtbl.mem by_name n.name then
        invalid_arg (Printf.sprintf "Topo.create: duplicate node name %s" n.name);
      Hashtbl.add by_name n.name n.id)
    nodes;
  let peers = Array.map (fun n -> Array.make n.nports None) nodes in
  let link_idx = Array.map (fun n -> Array.make n.nports None) nodes in
  let check_ep (e : endpoint) =
    if e.node < 0 || e.node >= Array.length nodes then
      invalid_arg (Printf.sprintf "Topo.create: endpoint node %d out of range" e.node);
    if e.port < 0 || e.port >= nodes.(e.node).nports then
      invalid_arg
        (Printf.sprintf "Topo.create: port %d out of range for node %s" e.port
           nodes.(e.node).name)
  in
  let links = Array.of_list links in
  Array.iteri
    (fun i (l : link) ->
      check_ep l.a;
      check_ep l.b;
      if l.a.node = l.b.node && l.a.port = l.b.port then
        invalid_arg "Topo.create: link from a port to itself";
      let attach (e : endpoint) (other : endpoint) =
        match peers.(e.node).(e.port) with
        | Some _ ->
          invalid_arg
            (Printf.sprintf "Topo.create: port %d of node %s wired twice" e.port
               nodes.(e.node).name)
        | None ->
          peers.(e.node).(e.port) <- Some other;
          link_idx.(e.node).(e.port) <- Some i
      in
      attach l.a l.b;
      attach l.b l.a)
    links;
  { nodes; links; peers; link_idx; by_name }

let node_count t = Array.length t.nodes
let link_count t = Array.length t.links

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Topo.node: id %d out of range" i);
  t.nodes.(i)

let nodes t = Array.copy t.nodes
let links t = Array.copy t.links

let find_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> Some t.nodes.(id)
  | None -> None

let peer t ~node ~port =
  if node < 0 || node >= Array.length t.nodes then None
  else if port < 0 || port >= t.nodes.(node).nports then None
  else t.peers.(node).(port)

let link_index t ~node ~port =
  if node < 0 || node >= Array.length t.nodes then None
  else if port < 0 || port >= t.nodes.(node).nports then None
  else t.link_idx.(node).(port)

let neighbors t n =
  let acc = ref [] in
  let ports = t.peers.(n) in
  for p = Array.length ports - 1 downto 0 do
    match ports.(p) with
    | Some e -> acc := (p, e) :: !acc
    | None -> ()
  done;
  !acc

let degree t n = List.length (neighbors t n)

let nodes_of_kind t kind = Array.to_list t.nodes |> List.filter (fun n -> n.kind = kind)

let is_connected t =
  let n = Array.length t.nodes in
  if n = 0 then false
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    Queue.push 0 queue;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (_, (e : endpoint)) ->
          if not seen.(e.node) then begin
            seen.(e.node) <- true;
            incr count;
            Queue.push e.node queue
          end)
        (neighbors t u)
    done;
    !count = n
  end

let pp_endpoint fmt (e : endpoint) = Format.fprintf fmt "%d:%d" e.node e.port

let to_dot ?(name = "fabric") t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %S {\n" name);
  Buffer.add_string buf "  rankdir=BT;\n  node [fontsize=10];\n";
  let rank kind =
    List.filter_map
      (fun (n : node) -> if n.kind = kind then Some (Printf.sprintf "%S" n.name) else None)
      (Array.to_list t.nodes)
  in
  List.iter
    (fun (kind, shape, style) ->
      let names = rank kind in
      if names <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  { rank=same; node [shape=%s%s];\n    %s; }\n" shape style
             (String.concat "; " names))
      end)
    [ (Core_switch, "ellipse", ", color=red");
      (Agg_switch, "ellipse", ", color=blue");
      (Edge_switch, "ellipse", ", color=darkgreen");
      (Host, "box", "") ];
  Array.iter
    (fun (l : link) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -- %S [label=\"%d:%d\", fontsize=7];\n"
           t.nodes.(l.a.node).name t.nodes.(l.b.node).name l.a.port l.b.port))
    t.links;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Topology family descriptors: which wiring {!Multirooted.build} should
   realize. Lives here (below Multirooted in the dependency order) so both
   the builder and every consumer — Fabric.create, the sim CLI, bench,
   experiments — can name a family without a dependency cycle. *)
module Family = struct
  type t =
    | Plain of { k : int }
    | Ab of { k : int }
    | Two_layer of { leaves : int; spines : int; hosts_per_leaf : int }

  let to_string = function
    | Plain _ -> "plain"
    | Ab _ -> "ab"
    | Two_layer _ -> "two-layer"

  let names = [ "plain"; "ab"; "two-layer" ]

  (* the canonical member of each family at arity k: plain/AB are the
     k-ary fat trees; two-layer is the 2:1-oversubscribed leaf-spine with
     k leaves of radix 3k/2 (k hosts down, k/2 spines up) *)
  let of_string ~k s =
    match s with
    | "plain" -> Ok (Plain { k })
    | "ab" -> Ok (Ab { k })
    | "two-layer" | "two_layer" | "2layer" ->
      Ok (Two_layer { leaves = k; spines = k / 2; hosts_per_leaf = k })
    | _ ->
      Error (Printf.sprintf "unknown topology %S (expected one of: %s)" s
               (String.concat ", " names))

  let all ~k =
    [ Plain { k }; Ab { k }; Two_layer { leaves = k; spines = k / 2; hosts_per_leaf = k } ]

  let pp fmt = function
    | Plain { k } -> Format.fprintf fmt "plain(k=%d)" k
    | Ab { k } -> Format.fprintf fmt "ab(k=%d)" k
    | Two_layer { leaves; spines; hosts_per_leaf } ->
      Format.fprintf fmt "two-layer(%d leaves, %d spines, %d hosts/leaf)" leaves spines
        hosts_per_leaf
end

let pp_summary fmt t =
  let count kind = List.length (nodes_of_kind t kind) in
  Format.fprintf fmt "topology: %d nodes (%d hosts, %d edge, %d agg, %d core), %d links"
    (node_count t) (count Host) (count Edge_switch) (count Agg_switch) (count Core_switch)
    (link_count t)
