(** Binary wire codec for every frame type in this library.

    The simulator forwards structured {!Eth.t} values for speed, but every
    structure has a bit-exact wire encoding so that (a) frame sizes used
    for serialization delay are grounded in real layouts, and (b) the
    protocol suite is testable by encode/decode round-trip properties.

    Encodings follow the real header layouts (Ethernet II, RFC 826 ARP,
    RFC 791 IPv4 with a valid header checksum, RFC 768 UDP, RFC 793 TCP
    without options, IGMPv2-style reports). LDP and the baseline BPDU use
    compact fixed layouts under local-experimental ethertypes, documented
    in the implementation. Frames are padded to the 64-byte Ethernet
    minimum and carry a real CRC-32 frame check sequence, verified on
    decode.

    Deliberate deviations, for round-trip fidelity of the simulator's
    structured payloads: UDP payloads embed the simulator's flow metadata
    ({!Udp.meta_len} bytes) and UDP/TCP checksums are transmitted as zero
    (UDP permits this; for TCP it is noted as a simplification). *)

val encode : Eth.t -> bytes
(** Encode a frame, including padding and FCS. The result's length equals
    [Eth.wire_len].

    This is the fast path: fields are written into one long-lived
    {!Wire.Scratch} buffer (MACs as integers, IPv4 checksum backfilled in
    place, no intermediate buffers), the FCS is computed over the scratch
    bytes with slicing-by-8 CRC-32, and only the final frame is copied
    out. Byte-identical to {!encode_ref}; not re-entrant across domains
    (the simulator is single-threaded per run). *)

val encode_ref : Eth.t -> bytes
(** Reference encoder (the original [Buffer]-based implementation with
    bytewise CRC). The codec fuzz suite asserts
    [encode f = encode_ref f] for arbitrary frames. *)

val decode : bytes -> (Eth.t, string) result
(** Decode and verify (length consistency, IPv4 header checksum, FCS —
    checked with the slicing-by-8 CRC). Unknown ethertypes and IP
    protocols decode to the corresponding [Raw] constructors. *)

val decode_ref : bytes -> (Eth.t, string) result
(** {!decode} with the bytewise reference CRC — same parser, so accepts
    and rejects exactly the same inputs; kept for differential tests. *)

val crc32 : bytes -> int -> int -> int
(** [crc32 buf off len] — IEEE 802.3 CRC-32 of the given slice, bytewise
    reference implementation, exposed for tests. *)

val crc32_fast : bytes -> int -> int -> int
(** Slicing-by-8 CRC-32; equal to {!crc32} on every input (differentially
    tested). Used by {!encode}/{!decode}. *)

val ipv4_checksum : bytes -> int -> int -> int
(** [ipv4_checksum buf off len] — RFC 1071 ones'-complement checksum of
    the given slice, exposed for tests. *)
