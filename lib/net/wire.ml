module Writer = struct
  type t = { buf : Buffer.t }

  let create () = { buf = Buffer.create 128 }
  let u8 t v = Buffer.add_char t.buf (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let u64 t v =
    u32 t (v lsr 32);
    u32 t v

  let mac t m = Buffer.add_string t.buf (Mac_addr.to_bytes m)
  let ip t a = u32 t (Ipv4_addr.to_int a)
  let zeros t n = Buffer.add_string t.buf (String.make n '\000')
  let bytes t b = Buffer.add_bytes t.buf b
  let contents t = Buffer.to_bytes t.buf
  let length t = Buffer.length t.buf
  let buffer t = t.buf
end

module Scratch = struct
  type t = { mutable buf : bytes; mutable pos : int }

  let create ?(capacity = 2048) () = { buf = Bytes.create (max 16 capacity); pos = 0 }
  let reset t = t.pos <- 0
  let length t = t.pos
  let raw t = t.buf

  let ensure t n =
    let need = t.pos + n in
    let cap = Bytes.length t.buf in
    if need > cap then begin
      let ncap = ref (cap * 2) in
      while need > !ncap do
        ncap := !ncap * 2
      done;
      let nbuf = Bytes.create !ncap in
      Bytes.blit t.buf 0 nbuf 0 t.pos;
      t.buf <- nbuf
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (v land 0xff));
    t.pos <- t.pos + 1

  let u16 t v =
    ensure t 2;
    let p = t.pos in
    Bytes.unsafe_set t.buf p (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set t.buf (p + 1) (Char.unsafe_chr (v land 0xff));
    t.pos <- p + 2

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let u64 t v =
    u32 t (v lsr 32);
    u32 t v

  (* 48-bit big-endian — a MAC address as an integer, no string detour *)
  let u48 t v =
    u16 t (v lsr 32);
    u32 t v

  let mac t m = u48 t (Mac_addr.to_int m)
  let ip t a = u32 t (Ipv4_addr.to_int a)

  let zeros t n =
    ensure t n;
    Bytes.fill t.buf t.pos n '\000';
    t.pos <- t.pos + n

  let bytes t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.pos n;
    t.pos <- t.pos + n

  (* patch an already-written big-endian u16 (checksum backfill) *)
  let set_u16 t ~off v =
    Bytes.set t.buf off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set t.buf (off + 1) (Char.chr (v land 0xff))

  let contents t = Bytes.sub t.buf 0 t.pos
end

module Reader = struct
  type t = { buf : bytes; mutable rpos : int; limit : int }

  exception Short

  let create ?(off = 0) ?len buf =
    let limit = match len with Some l -> off + l | None -> Bytes.length buf in
    { buf; rpos = off; limit }

  let remaining t = t.limit - t.rpos
  let pos t = t.rpos
  let raw t = t.buf

  let u8 t =
    if t.rpos >= t.limit then raise Short;
    let v = Char.code (Bytes.get t.buf t.rpos) in
    t.rpos <- t.rpos + 1;
    v

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let u64 t =
    let hi = u32 t in
    (hi lsl 32) lor u32 t

  let mac t =
    (* 48-bit big-endian integer read — no intermediate string *)
    if remaining t < 6 then raise Short;
    let hi = u16 t in
    Mac_addr.of_int ((hi lsl 32) lor u32 t)

  let ip t = Ipv4_addr.of_int (u32 t)

  let skip t n =
    if n < 0 || remaining t < n then raise Short;
    t.rpos <- t.rpos + n
end
