(* Byte-level writer/reader helpers. All multi-byte integers are
   big-endian (network order). *)

module W = struct
  include Wire.Writer

  (* append raw pre-built bytes into the frame body *)
  let add_bytes t b = bytes t b
end

module S = Wire.Scratch

module R = struct
  include Wire.Reader

  exception Short = Wire.Reader.Short
end

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)              *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 buf off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
   per iteration instead of 1. table k maps a byte to its CRC contribution
   k positions further down the stream, so the 8 partial folds combine
   with xor. Identical output to the bytewise loop (differentially
   tested); ~5x fewer table lookups-and-shifts per byte. *)
(* the 8 tables live flattened in one array (table k at offset k*256) so
   the hot loop indexes with proven-in-range offsets via unsafe_get *)
let crc_tables8 =
  lazy
    (let t0 = Lazy.force crc_table in
     let t = Array.make (8 * 256) 0 in
     Array.blit t0 0 t 0 256;
     for k = 1 to 7 do
       for i = 0 to 255 do
         let c = t.(((k - 1) * 256) + i) in
         t.((k * 256) + i) <- t.(c land 0xff) lxor (c lsr 8)
       done
     done;
     t)

(* Advancing the CRC state across a zero byte is the GF(2)-linear map
   [c -> t0.(c land 0xff) lxor (c lsr 8)] (CRC tables are linear:
   t0.(a lxor b) = t0.(a) lxor t0.(b)). Represent it as a 32x32 bit
   matrix and square repeatedly: mats.(p) advances the state across
   2^p zero bytes, so a run of n zeros folds in O(log n) matrix-vector
   products instead of n table steps. Same trick as zlib's
   crc32_combine. *)
let gf2_times mat vec =
  let sum = ref 0 in
  let v = ref vec in
  let i = ref 0 in
  while !v <> 0 do
    if !v land 1 = 1 then sum := !sum lxor Array.unsafe_get mat !i;
    v := !v lsr 1;
    incr i
  done;
  !sum

let crc_zero_mats =
  lazy
    (let t0 = Lazy.force crc_table in
     let m1 =
       Array.init 32 (fun j ->
           let c = 1 lsl j in
           t0.(c land 0xff) lxor (c lsr 8))
     in
     let square m = Array.init 32 (fun j -> gf2_times m m.(j)) in
     let mats = Array.make 22 m1 in
     for p = 1 to 21 do
       mats.(p) <- square mats.(p - 1)
     done;
     mats)

(* fold [n] zero bytes into the (conditioned) CRC state [c] *)
let crc32_zeros c n =
  if n <= 0 then c
  else begin
    let mats = Lazy.force crc_zero_mats in
    let c = ref c in
    let n = ref n in
    let p = ref 0 in
    while !n <> 0 do
      if !n land 1 = 1 then begin
        (* powers beyond the precomputed 2^21 repeat the largest matrix *)
        let reps = if !p <= 21 then 1 else 1 lsl (!p - 21) in
        let m = mats.(min !p 21) in
        for _ = 1 to reps do
          c := gf2_times m !c
        done
      end;
      n := !n lsr 1;
      incr p
    done;
    !c
  end

let crc32_fast buf off len =
  let t = Lazy.force crc_tables8 in
  let c = ref 0xFFFFFFFF in
  let i = ref off in
  let stop = off + len in
  if off < 0 || len < 0 || stop > Bytes.length buf then invalid_arg "Codec.crc32_fast";
  (* frames end in a long zero run (modelled payloads and minimum-size
     padding): detect it from the back and fold it in O(log n) *)
  let z = ref stop in
  while
    !z - 32 >= off
    && Int64.equal
         (Int64.logor
            (Int64.logor (Bytes.get_int64_ne buf (!z - 8)) (Bytes.get_int64_ne buf (!z - 16)))
            (Int64.logor
               (Bytes.get_int64_ne buf (!z - 24))
               (Bytes.get_int64_ne buf (!z - 32))))
         0L
  do
    z := !z - 32
  done;
  while !z - 8 >= off && Int64.equal (Bytes.get_int64_ne buf (!z - 8)) 0L do
    z := !z - 8
  done;
  while !z > off && Char.code (Bytes.unsafe_get buf (!z - 1)) = 0 do
    decr z
  done;
  let zero_run = stop - !z in
  let stop = !z in
  (* every table index below is masked to [0,255] (and [x lsr 24] is
     bounded because [x] < 2^32), so the unsafe reads are in range *)
  while stop - !i >= 8 do
    let p = !i in
    let byte k = Char.code (Bytes.unsafe_get buf (p + k)) in
    let x =
      !c lxor (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
    in
    c :=
      Array.unsafe_get t ((7 * 256) + (x land 0xff))
      lxor Array.unsafe_get t ((6 * 256) + ((x lsr 8) land 0xff))
      lxor Array.unsafe_get t ((5 * 256) + ((x lsr 16) land 0xff))
      lxor Array.unsafe_get t ((4 * 256) + (x lsr 24))
      lxor Array.unsafe_get t ((3 * 256) + byte 4)
      lxor Array.unsafe_get t ((2 * 256) + byte 5)
      lxor Array.unsafe_get t (256 + byte 6)
      lxor Array.unsafe_get t (byte 7);
    i := p + 8
  done;
  while !i < stop do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (Bytes.unsafe_get buf !i)) land 0xff)
      lxor (!c lsr 8);
    incr i
  done;
  crc32_zeros !c zero_run lxor 0xFFFFFFFF

(* RFC 1071 ones'-complement checksum *)
let ipv4_checksum buf off len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + ((Char.code (Bytes.get buf !i) lsl 8) lor Char.code (Bytes.get buf (!i + 1)));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

(* ------------------------------------------------------------------ *)
(* Reference encoders (Buffer-based; the original implementation, kept
   as the oracle the zero-allocation fast path is differentially tested
   against)                                                            *)

let encode_arp w (a : Arp.t) =
  W.u16 w 1 (* htype: ethernet *);
  W.u16 w 0x0800 (* ptype: ipv4 *);
  W.u8 w 6;
  W.u8 w 4;
  W.u16 w (match a.op with Arp.Request -> 1 | Arp.Reply -> 2);
  W.mac w a.sender_mac;
  W.ip w a.sender_ip;
  W.mac w a.target_mac;
  W.ip w a.target_ip

let encode_udp w (u : Udp.t) =
  W.u16 w u.src_port;
  W.u16 w u.dst_port;
  W.u16 w (Udp.wire_len u);
  W.u16 w 0 (* checksum: zero is legal for UDP/IPv4 *);
  W.u32 w u.flow_id;
  W.u64 w u.app_seq;
  W.zeros w (u.payload_len - Udp.meta_len)

let tcp_flag_bits (f : Tcp_seg.flags) =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor if f.ack then 0x10 else 0

let encode_tcp w (s : Tcp_seg.t) =
  W.u16 w s.src_port;
  W.u16 w s.dst_port;
  W.u32 w (s.seq land 0xFFFFFFFF);
  W.u32 w (s.ack_num land 0xFFFFFFFF);
  W.u8 w 0x50 (* data offset 5 words *);
  W.u8 w (tcp_flag_bits s.flags);
  W.u16 w s.window;
  W.u16 w 0 (* checksum: simplification, see Codec docs *);
  W.u16 w 0 (* urgent pointer *);
  W.zeros w s.payload_len

let encode_icmp w (m : Icmp.t) =
  (match m with
   | Icmp.Echo_request { ident; seq; payload_len } ->
     W.u8 w 8;
     W.u8 w 0;
     W.u16 w 0 (* checksum: simplification, see Codec docs *);
     W.u16 w ident;
     W.u16 w seq;
     W.zeros w payload_len
   | Icmp.Echo_reply { ident; seq; payload_len } ->
     W.u8 w 0;
     W.u8 w 0;
     W.u16 w 0;
     W.u16 w ident;
     W.u16 w seq;
     W.zeros w payload_len)

let encode_igmp w (m : Igmp.t) =
  W.u8 w (match m.op with Igmp.Join -> 0x16 | Igmp.Leave -> 0x17);
  W.u8 w 0;
  W.u16 w 0;
  W.ip w m.group

let encode_ipv4 w (p : Ipv4_pkt.t) =
  let header = W.create () in
  W.u8 header 0x45;
  W.u8 header 0;
  W.u16 header (Ipv4_pkt.wire_len p);
  W.u16 header 0 (* id *);
  W.u16 header 0x4000 (* DF *);
  W.u8 header p.ttl;
  W.u8 header (Ipv4_pkt.proto_number p.payload);
  W.u16 header 0 (* checksum placeholder *);
  W.ip header p.src;
  W.ip header p.dst;
  let hbytes = W.contents header in
  let csum = ipv4_checksum hbytes 0 Ipv4_pkt.header_len in
  Bytes.set hbytes 10 (Char.chr (csum lsr 8));
  Bytes.set hbytes 11 (Char.chr (csum land 0xff));
  W.add_bytes w hbytes;
  match p.payload with
  | Ipv4_pkt.Udp u -> encode_udp w u
  | Ipv4_pkt.Tcp s -> encode_tcp w s
  | Ipv4_pkt.Igmp m -> encode_igmp w m
  | Ipv4_pkt.Icmp m -> encode_icmp w m
  | Ipv4_pkt.Raw { len; _ } -> W.zeros w len

(* LDP fixed 16-byte layout:
   switch_id(4) level(1: 255=unknown,0=edge,1=agg,2=core) pod(2: 0xffff=unknown)
   position(1: 0xff=unknown) dir(1: 0=unknown,1=up,2=down) out_port(1) zeros(6) *)
let encode_ldp w (l : Ldp_msg.t) =
  W.u32 w l.switch_id;
  W.u8 w
    (match l.level with
     | None -> 0xff
     | Some Ldp_msg.Edge -> 0
     | Some Ldp_msg.Aggregation -> 1
     | Some Ldp_msg.Core -> 2);
  W.u16 w (match l.pod with None -> 0xffff | Some p -> p);
  W.u8 w (match l.position with None -> 0xff | Some p -> p);
  W.u8 w (match l.dir with Ldp_msg.Unknown_dir -> 0 | Ldp_msg.Up -> 1 | Ldp_msg.Down -> 2);
  W.u8 w l.out_port;
  W.zeros w 6

(* BPDU fixed 35-byte layout: root_id(4) root_cost(4) bridge_id(4) port(2) zeros(21) *)
let encode_bpdu w (b : Bpdu.t) =
  W.u32 w b.root_id;
  W.u32 w b.root_cost;
  W.u32 w b.bridge_id;
  W.u16 w b.port;
  W.zeros w 21

let encode_ref (f : Eth.t) =
  let w = W.create () in
  W.mac w f.dst;
  W.mac w f.src;
  (match f.vlan with
   | Some vid ->
     W.u16 w 0x8100 (* 802.1Q TPID *);
     W.u16 w (vid land 0x0FFF) (* TCI: pcp/dei 0 *)
   | None -> ());
  W.u16 w (Eth.ethertype f.payload);
  (match f.payload with
   | Eth.Arp a -> encode_arp w a
   | Eth.Ipv4 p -> encode_ipv4 w p
   | Eth.Ldp l -> encode_ldp w l
   | Eth.Bpdu b -> encode_bpdu w b
   | Eth.Raw { len; _ } -> W.zeros w len);
  (* pad to minimum, then FCS *)
  let body_min = Eth.min_frame_len - Eth.fcs_len in
  let pad = max 0 (body_min - W.length w) in
  W.zeros w pad;
  let body = W.contents w in
  let fcs = crc32 body 0 (Bytes.length body) in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set out (Bytes.length body) (Char.chr ((fcs lsr 24) land 0xff));
  Bytes.set out (Bytes.length body + 1) (Char.chr ((fcs lsr 16) land 0xff));
  Bytes.set out (Bytes.length body + 2) (Char.chr ((fcs lsr 8) land 0xff));
  Bytes.set out (Bytes.length body + 3) (Char.chr (fcs land 0xff));
  out

(* ------------------------------------------------------------------ *)
(* Fast-path encoder: one long-lived scratch buffer, fields written in
   place (MACs as 48-bit integers, no sub-writer for the IPv4 header —
   its checksum is backfilled over the scratch bytes), CRC computed over
   the scratch region with slicing-by-8, FCS appended, and only the
   final exact-size frame copied out. Byte-identical to {!encode_ref}.  *)

let fast_arp s (a : Arp.t) =
  S.u16 s 1;
  S.u16 s 0x0800;
  S.u8 s 6;
  S.u8 s 4;
  S.u16 s (match a.op with Arp.Request -> 1 | Arp.Reply -> 2);
  S.mac s a.sender_mac;
  S.ip s a.sender_ip;
  S.mac s a.target_mac;
  S.ip s a.target_ip

let fast_udp s (u : Udp.t) =
  S.u16 s u.src_port;
  S.u16 s u.dst_port;
  S.u16 s (Udp.wire_len u);
  S.u16 s 0;
  S.u32 s u.flow_id;
  S.u64 s u.app_seq;
  S.zeros s (u.payload_len - Udp.meta_len)

let fast_tcp s (seg : Tcp_seg.t) =
  S.u16 s seg.src_port;
  S.u16 s seg.dst_port;
  S.u32 s (seg.seq land 0xFFFFFFFF);
  S.u32 s (seg.ack_num land 0xFFFFFFFF);
  S.u8 s 0x50;
  S.u8 s (tcp_flag_bits seg.flags);
  S.u16 s seg.window;
  S.u16 s 0;
  S.u16 s 0;
  S.zeros s seg.payload_len

let fast_icmp s (m : Icmp.t) =
  match m with
  | Icmp.Echo_request { ident; seq; payload_len } ->
    S.u8 s 8;
    S.u8 s 0;
    S.u16 s 0;
    S.u16 s ident;
    S.u16 s seq;
    S.zeros s payload_len
  | Icmp.Echo_reply { ident; seq; payload_len } ->
    S.u8 s 0;
    S.u8 s 0;
    S.u16 s 0;
    S.u16 s ident;
    S.u16 s seq;
    S.zeros s payload_len

let fast_igmp s (m : Igmp.t) =
  S.u8 s (match m.op with Igmp.Join -> 0x16 | Igmp.Leave -> 0x17);
  S.u8 s 0;
  S.u16 s 0;
  S.ip s m.group

let fast_ipv4 s (p : Ipv4_pkt.t) =
  let hstart = S.length s in
  S.u8 s 0x45;
  S.u8 s 0;
  S.u16 s (Ipv4_pkt.wire_len p);
  S.u16 s 0 (* id *);
  S.u16 s 0x4000 (* DF *);
  S.u8 s p.ttl;
  S.u8 s (Ipv4_pkt.proto_number p.payload);
  S.u16 s 0 (* checksum placeholder *);
  S.ip s p.src;
  S.ip s p.dst;
  S.set_u16 s ~off:(hstart + 10) (ipv4_checksum (S.raw s) hstart Ipv4_pkt.header_len);
  match p.payload with
  | Ipv4_pkt.Udp u -> fast_udp s u
  | Ipv4_pkt.Tcp seg -> fast_tcp s seg
  | Ipv4_pkt.Igmp m -> fast_igmp s m
  | Ipv4_pkt.Icmp m -> fast_icmp s m
  | Ipv4_pkt.Raw { len; _ } -> S.zeros s len

let fast_ldp s (l : Ldp_msg.t) =
  S.u32 s l.switch_id;
  S.u8 s
    (match l.level with
     | None -> 0xff
     | Some Ldp_msg.Edge -> 0
     | Some Ldp_msg.Aggregation -> 1
     | Some Ldp_msg.Core -> 2);
  S.u16 s (match l.pod with None -> 0xffff | Some p -> p);
  S.u8 s (match l.position with None -> 0xff | Some p -> p);
  S.u8 s (match l.dir with Ldp_msg.Unknown_dir -> 0 | Ldp_msg.Up -> 1 | Ldp_msg.Down -> 2);
  S.u8 s l.out_port;
  S.zeros s 6

let fast_bpdu s (b : Bpdu.t) =
  S.u32 s b.root_id;
  S.u32 s b.root_cost;
  S.u32 s b.bridge_id;
  S.u16 s b.port;
  S.zeros s 21

(* one scratch per codec; the simulator is single-threaded per run *)
let enc_scratch = S.create ~capacity:2048 ()

let encode (f : Eth.t) =
  let s = enc_scratch in
  S.reset s;
  S.mac s f.dst;
  S.mac s f.src;
  (match f.vlan with
   | Some vid ->
     S.u16 s 0x8100 (* 802.1Q TPID *);
     S.u16 s (vid land 0x0FFF) (* TCI: pcp/dei 0 *)
   | None -> ());
  S.u16 s (Eth.ethertype f.payload);
  (match f.payload with
   | Eth.Arp a -> fast_arp s a
   | Eth.Ipv4 p -> fast_ipv4 s p
   | Eth.Ldp l -> fast_ldp s l
   | Eth.Bpdu b -> fast_bpdu s b
   | Eth.Raw { len; _ } -> S.zeros s len);
  let body_min = Eth.min_frame_len - Eth.fcs_len in
  let pad = max 0 (body_min - S.length s) in
  if pad > 0 then S.zeros s pad;
  let body_len = S.length s in
  let fcs = crc32_fast (S.raw s) 0 body_len in
  S.u32 s fcs;
  S.contents s

(* ------------------------------------------------------------------ *)
(* Decoders                                                            *)

let decode_arp r =
  let htype = R.u16 r in
  let ptype = R.u16 r in
  let hlen = R.u8 r in
  let plen = R.u8 r in
  if htype <> 1 || ptype <> 0x0800 || hlen <> 6 || plen <> 4 then failwith "ARP: bad header";
  let op =
    match R.u16 r with
    | 1 -> Arp.Request
    | 2 -> Arp.Reply
    | n -> failwith (Printf.sprintf "ARP: unknown op %d" n)
  in
  let sender_mac = R.mac r in
  let sender_ip = R.ip r in
  let target_mac = R.mac r in
  let target_ip = R.ip r in
  { Arp.op; sender_mac; sender_ip; target_mac; target_ip }

let decode_udp r ~payload_total =
  let src_port = R.u16 r in
  let dst_port = R.u16 r in
  let len = R.u16 r in
  let _checksum = R.u16 r in
  if len <> payload_total then failwith "UDP: length mismatch";
  let flow_id = R.u32 r in
  let app_seq = R.u64 r in
  let payload_len = len - Udp.header_len in
  R.skip r (payload_len - Udp.meta_len);
  Udp.make ~src_port ~dst_port ~flow_id ~app_seq ~payload_len ()

let decode_tcp r ~payload_total =
  let src_port = R.u16 r in
  let dst_port = R.u16 r in
  let seq = R.u32 r in
  let ack_num = R.u32 r in
  let offset_byte = R.u8 r in
  if offset_byte lsr 4 <> 5 then failwith "TCP: options not supported";
  let bits = R.u8 r in
  let flags =
    { Tcp_seg.fin = bits land 0x01 <> 0;
      syn = bits land 0x02 <> 0;
      rst = bits land 0x04 <> 0;
      ack = bits land 0x10 <> 0 }
  in
  let window = R.u16 r in
  let _checksum = R.u16 r in
  let _urgent = R.u16 r in
  let payload_len = payload_total - Tcp_seg.header_len in
  if payload_len < 0 then failwith "TCP: truncated";
  R.skip r payload_len;
  Tcp_seg.make ~src_port ~dst_port ~flags ~window ~seq ~ack_num ~payload_len ()

let decode_icmp r ~payload_total =
  let ty = R.u8 r in
  let _code = R.u8 r in
  let _checksum = R.u16 r in
  let ident = R.u16 r in
  let seq = R.u16 r in
  let payload_len = payload_total - Icmp.header_len in
  if payload_len < 0 then failwith "ICMP: truncated";
  R.skip r payload_len;
  match ty with
  | 8 -> Icmp.Echo_request { ident; seq; payload_len }
  | 0 -> Icmp.Echo_reply { ident; seq; payload_len }
  | n -> failwith (Printf.sprintf "ICMP: unsupported type %d" n)

let decode_igmp r =
  let ty = R.u8 r in
  let _max_resp = R.u8 r in
  let _checksum = R.u16 r in
  let group = R.ip r in
  match ty with
  | 0x16 -> Igmp.join group
  | 0x17 -> Igmp.leave group
  | n -> failwith (Printf.sprintf "IGMP: unknown type 0x%02x" n)

let decode_ipv4 (r : R.t) =
  let header_start = R.pos r in
  let vihl = R.u8 r in
  if vihl <> 0x45 then failwith "IPv4: bad version/IHL";
  let _tos = R.u8 r in
  let total_len = R.u16 r in
  let _id = R.u16 r in
  let _frag = R.u16 r in
  let ttl = R.u8 r in
  let proto = R.u8 r in
  let _checksum = R.u16 r in
  let src = R.ip r in
  let dst = R.ip r in
  if ipv4_checksum (R.raw r) header_start Ipv4_pkt.header_len <> 0 then
    failwith "IPv4: header checksum mismatch";
  let payload_total = total_len - Ipv4_pkt.header_len in
  if payload_total < 0 || payload_total > R.remaining r then failwith "IPv4: bad total length";
  let payload =
    match proto with
    | 17 -> Ipv4_pkt.Udp (decode_udp r ~payload_total)
    | 6 -> Ipv4_pkt.Tcp (decode_tcp r ~payload_total)
    | 2 -> Ipv4_pkt.Igmp (decode_igmp r)
    | 1 -> Ipv4_pkt.Icmp (decode_icmp r ~payload_total)
    | p ->
      R.skip r payload_total;
      Ipv4_pkt.Raw { proto = p; len = payload_total }
  in
  Ipv4_pkt.make ~ttl ~src ~dst payload

let decode_ldp r =
  let switch_id = R.u32 r in
  let level =
    match R.u8 r with
    | 0xff -> None
    | 0 -> Some Ldp_msg.Edge
    | 1 -> Some Ldp_msg.Aggregation
    | 2 -> Some Ldp_msg.Core
    | n -> failwith (Printf.sprintf "LDP: unknown level %d" n)
  in
  let pod = match R.u16 r with 0xffff -> None | p -> Some p in
  let position = match R.u8 r with 0xff -> None | p -> Some p in
  let dir =
    match R.u8 r with
    | 0 -> Ldp_msg.Unknown_dir
    | 1 -> Ldp_msg.Up
    | 2 -> Ldp_msg.Down
    | n -> failwith (Printf.sprintf "LDP: unknown dir %d" n)
  in
  let out_port = R.u8 r in
  R.skip r 6;
  { Ldp_msg.switch_id; level; pod; position; dir; out_port }

let decode_bpdu r =
  let root_id = R.u32 r in
  let root_cost = R.u32 r in
  let bridge_id = R.u32 r in
  let port = R.u16 r in
  R.skip r 21;
  { Bpdu.root_id; root_cost; bridge_id; port }

let decode_gen ~crc buf =
  try
    let total = Bytes.length buf in
    if total < Eth.min_frame_len then failwith "frame below Ethernet minimum";
    let body_len = total - Eth.fcs_len in
    let fcs_stored =
      (Char.code (Bytes.get buf body_len) lsl 24)
      lor (Char.code (Bytes.get buf (body_len + 1)) lsl 16)
      lor (Char.code (Bytes.get buf (body_len + 2)) lsl 8)
      lor Char.code (Bytes.get buf (body_len + 3))
    in
    if crc buf 0 body_len <> fcs_stored then failwith "FCS mismatch";
    let r = R.create ~len:body_len buf in
    let dst = R.mac r in
    let src = R.mac r in
    let first_type = R.u16 r in
    let vlan, ethertype =
      if first_type = 0x8100 then begin
        let tci = R.u16 r in
        (Some (tci land 0x0FFF), R.u16 r)
      end
      else (None, first_type)
    in
    let payload =
      if ethertype = 0x0806 then Eth.Arp (decode_arp r)
      else if ethertype = 0x0800 then Eth.Ipv4 (decode_ipv4 r)
      else if ethertype = Eth.ldp_ethertype then Eth.Ldp (decode_ldp r)
      else if ethertype = Eth.bpdu_ethertype then Eth.Bpdu (decode_bpdu r)
      else Eth.Raw { ethertype; len = R.remaining r }
    in
    Ok { Eth.dst; src; vlan; payload }
  with
  | Failure msg -> Error msg
  | R.Short -> Error "truncated frame"
  | Invalid_argument msg -> Error msg

let decode buf = decode_gen ~crc:crc32_fast buf
let decode_ref buf = decode_gen ~crc:crc32 buf
