(** Byte-level big-endian writers and readers shared by the frame codec
    ({!Codec}) and the control-protocol codec ([Portland.Msg_codec]). *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val mac : t -> Mac_addr.t -> unit
  val ip : t -> Ipv4_addr.t -> unit
  val zeros : t -> int -> unit
  val bytes : t -> bytes -> unit
  val contents : t -> bytes
  val length : t -> int
  val buffer : t -> Buffer.t
end

module Scratch : sig
  (** Reusable preallocated write buffer — the allocation-free counterpart
      of {!Writer} for hot paths. A caller keeps one [Scratch.t], calls
      {!reset} per frame, writes fields in place (the buffer grows
      geometrically and then stabilizes), and either checksums/copies out
      of {!raw} or snapshots via {!contents}. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh scratch buffer (default capacity 2048 bytes — one full
      Ethernet frame with headroom). *)

  val reset : t -> unit
  (** Rewind to empty without releasing the buffer. *)

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u48 : t -> int -> unit
  val u64 : t -> int -> unit
  val mac : t -> Mac_addr.t -> unit
  val ip : t -> Ipv4_addr.t -> unit
  val zeros : t -> int -> unit
  val bytes : t -> bytes -> unit

  val set_u16 : t -> off:int -> int -> unit
  (** Patch an already-written big-endian u16 in place (checksum
      backfill). *)

  val length : t -> int

  val raw : t -> bytes
  (** The underlying buffer; only the first {!length} bytes are
      meaningful, and the reference is invalidated by further writes
      (growth may reallocate). *)

  val contents : t -> bytes
  (** Fresh copy of the written region. *)
end

module Reader : sig
  type t

  exception Short
  (** Raised by any read past the slice's limit. *)

  val create : ?off:int -> ?len:int -> bytes -> t
  val remaining : t -> int
  val pos : t -> int
  val raw : t -> bytes
  (** The underlying buffer (for checksumming already-read regions). *)

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val mac : t -> Mac_addr.t
  val ip : t -> Ipv4_addr.t
  val skip : t -> int -> unit
end
