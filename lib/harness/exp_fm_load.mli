(** Experiment E6 — "Fabric manager control traffic".

    Two parts, matching the paper's methodology:

    - {b Modelled ARP load at scale.} The paper assumes each host opens
      25 new flows per second; a fraction of those miss the host's ARP
      cache and reach the fabric manager. The table sweeps fabric size
      (k = 8 … 48, i.e. 128 … 27,648 hosts) and miss fractions.
    - {b Measured control traffic on real (simulated) fabrics.} Boots
      k = 4, 6, 8 fabrics and reports actual control-network message
      counts through discovery plus a steady-state window — grounding the
      model's per-switch constants in the implementation. *)

type model_row = {
  k : int;
  hosts : int;
  arps_per_sec_1pct : float;
  arps_per_sec_10pct : float;
  arps_per_sec_100pct : float;
}

type measured_row = {
  mk : int;
  switches : int;
  boot_msgs_to_fm : int;
  boot_msgs_to_switches : int;
  boot_bytes : int;  (** wire bytes both directions, per the control codec *)
  steady_msgs_per_sec : float;
}

type result = {
  flows_per_host_per_sec : int;
  model : model_row list;
  measured : measured_row list;
}

include Experiment.S with type result := result
