open Eventsim

type outage = { receiver : string; failure : int; gap_ms : float; lost : int }

type result = {
  k : int;
  group : string;
  rate_pps : int;
  initial_core : int option;
  core_after_first : int option;
  core_after_second : int option;
  outages : outage list;
}

let find_agg fab ~pod ~stripe =
  List.find_opt
    (fun a ->
      match Portland.Switch_agent.coords a with
      | Some (Portland.Coords.Agg c) -> c.pod = pod && c.stripe = stripe
      | _ -> false)
    (Portland.Fabric.agents fab)

(* fail the current tree's core<->agg link into the given receiver pod *)
let fail_tree_link fab group ~pod =
  let fm = Portland.Fabric.fabric_manager fab in
  match Portland.Fabric_manager.group_core fm group with
  | None -> false
  | Some core_dev ->
    (match Portland.Fabric_manager.switch_coords fm core_dev with
     | Some (Portland.Coords.Core { stripe; _ }) ->
       (match find_agg fab ~pod ~stripe with
        | Some agg ->
          Portland.Fabric.fail_link_between fab ~a:core_dev
            ~b:(Portland.Switch_agent.switch_id agg)
        | None -> false)
     | _ -> false)

let name = "multicast"
let descr = "multicast convergence across two tree failures"

let run ?(quick = false) ?(seed = 42) ?obs () =
  let k = 4 in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ?obs ~k () in
  assert (Portland.Fabric.await_convergence fab);
  let group = Netcore.Ipv4_addr.of_string_exn "230.1.1.1" in
  let sender = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let receiver_positions = [ ("pod1", (1, 0, 0)); ("pod2", (2, 1, 0)); ("pod3", (3, 0, 1)) ] in
  let receivers =
    List.map
      (fun (name, (p, e, s)) ->
        let h = Portland.Fabric.host fab ~pod:p ~edge:e ~slot:s in
        Portland.Host_agent.join_group h group;
        let mux = Transport.Port_mux.attach h in
        let rx = Transport.Udp_flow.Receiver.attach (Portland.Fabric.engine fab) mux ~flow_id:9 () in
        (name, rx))
      receiver_positions
  in
  Portland.Fabric.run_for fab (Time.ms 50);
  let fm = Portland.Fabric.fabric_manager fab in
  let initial_core = Portland.Fabric_manager.group_core fm group in
  let rate_pps = if quick then 200 else 500 in
  let tx =
    Transport.Udp_flow.Sender.start (Portland.Fabric.engine fab) sender ~dst:group ~flow_id:9
      ~rate_pps ()
  in
  Portland.Fabric.run_for fab (Time.ms 300);
  let outages = ref [] in
  let measure failure_no =
    let fail_at = Portland.Fabric.now fab in
    let lost_before = List.map (fun (n, rx) -> (n, Transport.Udp_flow.Receiver.lost rx)) receivers in
    ignore (fail_tree_link fab group ~pod:1);
    Portland.Fabric.run_for fab (Time.sec 1);
    List.iter
      (fun (name, rx) ->
        let gap =
          match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_at - Time.ms 5) with
          | Some (_, g) -> Time.to_ms_f g
          | None -> 0.0
        in
        let lost = Transport.Udp_flow.Receiver.lost rx - List.assoc name lost_before in
        outages := { receiver = name; failure = failure_no; gap_ms = gap; lost } :: !outages)
      receivers
  in
  measure 1;
  let core_after_first = Portland.Fabric_manager.group_core fm group in
  measure 2;
  let core_after_second = Portland.Fabric_manager.group_core fm group in
  Transport.Udp_flow.Sender.stop tx;
  { k;
    group = Netcore.Ipv4_addr.to_string group;
    rate_pps;
    initial_core;
    core_after_first;
    core_after_second;
    outages = List.rev !outages }

let result_to_json r =
  let open Obs.Json in
  let core = function Some c -> Int c | None -> Null in
  Obj
    [ ("k", Int r.k);
      ("group", Str r.group);
      ("rate_pps", Int r.rate_pps);
      ("initial_core", core r.initial_core);
      ("core_after_first", core r.core_after_first);
      ("core_after_second", core r.core_after_second);
      ( "outages",
        List
          (List.map
             (fun o ->
               Obj
                 [ ("receiver", Str o.receiver);
                   ("failure", Int o.failure);
                   ("gap_ms", Float o.gap_ms);
                   ("lost", Int o.lost) ])
             r.outages) ) ]

let print fmt r =
  Render.heading fmt
    (Printf.sprintf "Multicast convergence across two tree failures (k=%d, group %s, %d pkt/s)"
       r.k r.group r.rate_pps);
  let core = function Some c -> string_of_int c | None -> "(none)" in
  Render.table fmt ~header:[ "stage"; "group core (device id)" ]
    ~rows:
      [ [ "initial tree"; core r.initial_core ];
        [ "after 1st failure"; core r.core_after_first ];
        [ "after 2nd failure"; core r.core_after_second ] ];
  Format.fprintf fmt "@.";
  Render.table fmt ~header:[ "receiver"; "failure"; "outage (ms)"; "packets lost" ]
    ~rows:
      (List.map
         (fun o ->
           [ o.receiver; string_of_int o.failure; Render.f1 o.gap_ms; string_of_int o.lost ])
         r.outages)
