(** The shared shape of every reproduced experiment.

    Each [Exp_*] module measures one table or figure from the paper; all
    of them implement {!S}, so the index ({!Experiments.all}), the CLI
    dispatch and the JSON export are generic instead of one hand-written
    branch per experiment. {!packed} hides the heterogeneous [result]
    types behind a first-class module. *)

module type S = sig
  type result

  val name : string
  (** The experiment id used by the CLI and docs, e.g. ["udp-convergence"]. *)

  val descr : string
  (** One-line description for the index listing. *)

  val run : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> unit -> result
  (** [quick] trims sweep ranges and trial counts (used by tests). [obs]
      (default {!Obs.null}) is threaded into the experiment's primary
      PortLand fabric where it has one; experiments that build many
      short-lived fabrics may ignore it. *)

  val result_to_json : result -> Obs.Json.t

  val print : Format.formatter -> result -> unit
end

type packed = Packed : (module S with type result = 'r) -> packed

val name : packed -> string
val descr : packed -> string

val run_print : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> Format.formatter -> packed -> unit
(** Run and render the paper-style tables/series. *)

val run_json : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> packed -> Obs.Json.t
(** Run and return [{"experiment": name, "result": ...}]. *)
