open Eventsim

type side = { label : string; delivered_mb : float; goodput_gbps : float; queue_drops : int }

type result = {
  k : int;
  flows : int;
  per_flow_mbps : float;
  duration_ms : float;
  portland : side;
  ethernet_stp : side;
  speedup : float;
}

(* run a random-permutation UDP workload over abstract host handles *)
let run_workload ~engine ~net ~label ~hosts ~rate_pps ~payload_len ~duration ~seed ~run_for =
  let prng = Prng.create seed in
  let pairs = Workloads.Traffic.random_permutation prng hosts in
  let receivers =
    List.mapi
      (fun i (_, dst) ->
        let mux = Transport.Port_mux.attach dst in
        Transport.Udp_flow.Receiver.attach engine mux ~flow_id:i ())
      pairs
  in
  let senders =
    List.mapi
      (fun i (src, dst) ->
        Transport.Udp_flow.Sender.start engine src ~dst:(Portland.Host_agent.ip dst) ~flow_id:i
          ~rate_pps ~payload_len ())
      pairs
  in
  run_for duration;
  List.iter Transport.Udp_flow.Sender.stop senders;
  run_for (Time.ms 20);
  let delivered_pkts =
    List.fold_left (fun acc rx -> acc + Transport.Udp_flow.Receiver.received rx) 0 receivers
  in
  let bytes = delivered_pkts * payload_len in
  let drops = (Switchfab.Net.total_counters net).Switchfab.Net.queue_drops in
  { label;
    delivered_mb = float_of_int bytes /. 1e6;
    goodput_gbps = float_of_int bytes *. 8.0 /. Time.to_sec_f duration /. 1e9;
    queue_drops = drops }

let name = "ecmp"
let descr = "multipath ablation: ECMP fat tree vs single spanning tree"

let run ?(quick = false) ?(seed = 42) ?obs () =
  let k = 4 in
  let payload_len = 1000 in
  let rate_pps = if quick then 40_000 else 62_500 in
  let duration = if quick then Time.ms 200 else Time.ms 500 in
  (* PortLand side *)
  let pl =
    let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ?obs ~k () in
    assert (Portland.Fabric.await_convergence fab);
    let hosts = Array.of_list (Portland.Fabric.hosts fab) in
    run_workload ~engine:(Portland.Fabric.engine fab) ~net:(Portland.Fabric.net fab)
      ~label:"PortLand (ECMP over all paths)" ~hosts ~rate_pps ~payload_len ~duration ~seed
      ~run_for:(Portland.Fabric.run_for fab)
  in
  (* Ethernet + spanning tree side *)
  let eth =
    let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
    assert (Baselines.Ethernet_fabric.await_stp_convergence fab);
    let hosts = Array.of_list (Baselines.Ethernet_fabric.hosts fab) in
    run_workload ~engine:(Baselines.Ethernet_fabric.engine fab)
      ~net:(Baselines.Ethernet_fabric.net fab) ~label:"Flat L2 (single spanning tree)" ~hosts
      ~rate_pps ~payload_len ~duration ~seed
      ~run_for:(Baselines.Ethernet_fabric.run_for fab)
  in
  let flows = Topology.Fattree.num_hosts ~k in
  { k;
    flows;
    per_flow_mbps = float_of_int (rate_pps * payload_len * 8) /. 1e6;
    duration_ms = Time.to_ms_f duration;
    portland = pl;
    ethernet_stp = eth;
    speedup = (if eth.goodput_gbps > 0.0 then pl.goodput_gbps /. eth.goodput_gbps else 0.0) }

let result_to_json r =
  let open Obs.Json in
  let side s =
    Obj
      [ ("label", Str s.label);
        ("delivered_mb", Float s.delivered_mb);
        ("goodput_gbps", Float s.goodput_gbps);
        ("queue_drops", Int s.queue_drops) ]
  in
  Obj
    [ ("k", Int r.k);
      ("flows", Int r.flows);
      ("per_flow_mbps", Float r.per_flow_mbps);
      ("duration_ms", Float r.duration_ms);
      ("portland", side r.portland);
      ("ethernet_stp", side r.ethernet_stp);
      ("speedup", Float r.speedup) ]

let print fmt r =
  Render.heading fmt
    (Printf.sprintf
       "Multipath ablation: random permutation, %d flows x %.0f Mb/s offered, k=%d" r.flows
       r.per_flow_mbps r.k);
  Render.table fmt
    ~header:[ "fabric"; "delivered (MB)"; "aggregate goodput (Gb/s)"; "queue drops" ]
    ~rows:
      (List.map
         (fun s ->
           [ s.label; Render.f2 s.delivered_mb; Render.f2 s.goodput_gbps;
             string_of_int s.queue_drops ])
         [ r.portland; r.ethernet_stp ]);
  Format.fprintf fmt "@.PortLand / spanning-tree goodput ratio: %.2fx@." r.speedup
