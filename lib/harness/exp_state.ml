open Eventsim

type row = {
  k : int;
  hosts : int;
  portland_edge_max : int;
  portland_agg_max : int;
  portland_core_max : int;
  ethernet_mac_max : int;
  ethernet_mac_mean : float;
  flat_l2_worst_case : int;
}

type result = { warmup_peers : int; rows : row list }

let warmup_peers = 8

let portland_sizes ~k ~seed =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k () in
  assert (Portland.Fabric.await_convergence fab);
  let max_of level =
    List.fold_left
      (fun acc (l, size) -> if l = level then max acc size else acc)
      0
      (Portland.Fabric.switch_table_sizes fab)
  in
  (max_of Netcore.Ldp_msg.Edge, max_of Netcore.Ldp_msg.Aggregation, max_of Netcore.Ldp_msg.Core)

let ethernet_sizes ~k ~seed =
  let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
  assert (Baselines.Ethernet_fabric.await_stp_convergence fab);
  (* warm-up: every host talks to a deterministic sample of remote peers *)
  let hosts = Array.of_list (Baselines.Ethernet_fabric.hosts fab) in
  let prng = Prng.create seed in
  Array.iter
    (fun h ->
      for _ = 1 to min warmup_peers (Array.length hosts - 1) do
        let peer = Prng.pick prng hosts in
        if peer != h then begin
          let u = Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 () in
          Portland.Host_agent.send_ip h ~dst:(Portland.Host_agent.ip peer)
            (Netcore.Ipv4_pkt.Udp u)
        end
      done)
    hosts;
  Baselines.Ethernet_fabric.run_for fab (Time.sec 2);
  let sizes = Baselines.Ethernet_fabric.mac_table_sizes fab in
  let mx = List.fold_left max 0 sizes in
  let mean =
    if sizes = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (List.length sizes)
  in
  (mx, mean)

let one_row ~k ~seed =
  let pe, pa, pc = portland_sizes ~k ~seed in
  let em, emean = ethernet_sizes ~k ~seed in
  { k;
    hosts = Topology.Fattree.num_hosts ~k;
    portland_edge_max = pe;
    portland_agg_max = pa;
    portland_core_max = pc;
    ethernet_mac_max = em;
    ethernet_mac_mean = emean;
    flat_l2_worst_case = Topology.Fattree.num_hosts ~k }

let name = "state"
let descr = "per-switch forwarding state: PortLand vs flat layer 2"

(* two fabrics per k; obs is unused *)
let run ?(quick = false) ?(seed = 42) ?obs:_ () =
  let ks = if quick then [ 4 ] else [ 4; 6; 8 ] in
  { warmup_peers; rows = List.map (fun k -> one_row ~k ~seed) ks }

let result_to_json r =
  let open Obs.Json in
  Obj
    [ ("warmup_peers", Int r.warmup_peers);
      ( "rows",
        List
          (List.map
             (fun row ->
               Obj
                 [ ("k", Int row.k);
                   ("hosts", Int row.hosts);
                   ("portland_edge_max", Int row.portland_edge_max);
                   ("portland_agg_max", Int row.portland_agg_max);
                   ("portland_core_max", Int row.portland_core_max);
                   ("ethernet_mac_max", Int row.ethernet_mac_max);
                   ("ethernet_mac_mean", Float row.ethernet_mac_mean);
                   ("flat_l2_worst_case", Int row.flat_l2_worst_case) ])
             r.rows) ) ]

let print fmt r =
  Render.heading fmt "Per-switch forwarding state: PortLand vs. flat layer 2";
  Format.fprintf fmt
    "(Ethernet columns measured after each host exchanged traffic with %d random peers; \
     flat-L2 worst case is one MAC entry per host.)@."
    r.warmup_peers;
  Render.table fmt
    ~header:
      [ "k"; "hosts"; "PL edge max"; "PL agg max"; "PL core max"; "Eth MAC max";
        "Eth MAC mean"; "flat L2 worst" ]
    ~rows:
      (List.map
         (fun row ->
           [ string_of_int row.k;
             string_of_int row.hosts;
             string_of_int row.portland_edge_max;
             string_of_int row.portland_agg_max;
             string_of_int row.portland_core_max;
             string_of_int row.ethernet_mac_max;
             Render.f1 row.ethernet_mac_mean;
             string_of_int row.flat_l2_worst_case ])
         r.rows)
