(* the registry, in the order the tables/figures appear in the paper *)
let registry : Experiment.packed list =
  [ Experiment.Packed (module Exp_table1);
    Experiment.Packed (module Exp_udp_convergence);
    Experiment.Packed (module Exp_tcp_convergence);
    Experiment.Packed (module Exp_multicast);
    Experiment.Packed (module Exp_migration);
    Experiment.Packed (module Exp_fm_load);
    Experiment.Packed (module Exp_fm_cpu);
    Experiment.Packed (module Exp_state);
    Experiment.Packed (module Exp_ecmp);
    Experiment.Packed (module Exp_ablation);
    Experiment.Packed (module Exp_recovery_comparison) ]

let all = List.map (fun p -> (Experiment.name p, Experiment.descr p)) registry

let find id = List.find_opt (fun p -> Experiment.name p = id) registry

let run_one ?quick ?seed ?obs fmt id =
  match find id with
  | Some p ->
    Experiment.run_print ?quick ?seed ?obs fmt p;
    true
  | None -> false

let run_one_json ?quick ?seed ?obs id =
  Option.map (Experiment.run_json ?quick ?seed ?obs) (find id)

let run_all ?quick ?seed ?obs fmt =
  List.iter (fun p -> Experiment.run_print ?quick ?seed ?obs fmt p) registry

let run_all_json ?quick ?seed ?obs () =
  List.map (fun p -> Experiment.run_json ?quick ?seed ?obs p) registry
