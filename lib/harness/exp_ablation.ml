open Eventsim

type result = {
  timeout_sweep : (float * float) list;
  flows_traced : int;
  cores_with_salt : int;
  cores_without_salt : int;
  total_cores : int;
  loss_sweep : (float * int * int * bool) list;
}

(* single-failure convergence under a custom LDM timeout *)
let convergence_with_timeout ~seed ~timeout =
  let config = { Portland.Config.default with Portland.Config.ldm_timeout = timeout } in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~proto:config ~seed ~k:4 () in
  if not (Portland.Fabric.await_convergence fab) then None
  else begin
    let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    let dst = Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
    let mux = Transport.Port_mux.attach dst in
    let rx = Transport.Udp_flow.Receiver.attach (Portland.Fabric.engine fab) mux ~flow_id:3 () in
    let tx =
      Transport.Udp_flow.Sender.start (Portland.Fabric.engine fab) src
        ~dst:(Portland.Host_agent.ip dst) ~flow_id:3 ~rate_pps:2000 ()
    in
    Portland.Fabric.run_for fab (Time.ms 200);
    let phase = Prng.create seed in
    Portland.Fabric.run_for fab (Prng.int phase config.Portland.Config.ldm_period);
    let probe =
      Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:3 ~app_seq:0 ~payload_len:1000 ())
    in
    match Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe with
    | Ok (_ :: a :: b :: _) ->
      let fail_at = Portland.Fabric.now fab in
      ignore (Portland.Fabric.fail_link_between fab ~a ~b);
      Portland.Fabric.run_for fab ((2 * timeout) + Time.ms 100);
      Transport.Udp_flow.Sender.stop tx;
      (match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_at - Time.ms 5) with
       | Some (_, gap) -> Some (Time.to_ms_f gap)
       | None -> None)
    | Ok _ | Error _ -> None
  end

(* distinct cores reached by a set of flows between two fixed hosts *)
let count_cores fab ~flows =
  let mt = Portland.Fabric.tree fab in
  let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Portland.Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  let cores = Hashtbl.create 8 in
  for sport = 1000 to 1000 + flows - 1 do
    let probe =
      Netcore.Ipv4_pkt.Udp
        (Netcore.Udp.make ~src_port:sport ~flow_id:1 ~app_seq:0 ~payload_len:64 ())
    in
    match Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe with
    | Ok path ->
      List.iter
        (fun dev ->
          if Array.exists (fun c -> c = dev) mt.Topology.Multirooted.cores then
            Hashtbl.replace cores dev ())
        path
    | Error _ -> ()
  done;
  Hashtbl.length cores

(* false fault notices under random frame loss, no real failures *)
let detector_under_loss ~seed ~loss_rate =
  let link_params = { Switchfab.Net.default_link_params with Switchfab.Net.loss_rate } in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~link_params ~seed ~k:4 () in
  if not (Portland.Fabric.await_convergence ~timeout:(Time.sec 10) fab) then
    (0, 0, false)
  else begin
    let fm = Portland.Fabric.fabric_manager fab in
    let before = (Portland.Fabric_manager.counters fm).Portland.Fabric_manager.fault_notices in
    Portland.Fabric.run_for fab (Time.sec 2);
    let after = Portland.Fabric_manager.counters fm in
    let notices = after.Portland.Fabric_manager.fault_notices - before in
    let recoveries =
      List.fold_left
        (fun acc a -> acc + (Portland.Switch_agent.counters a).Portland.Switch_agent.recoveries_reported)
        0 (Portland.Fabric.agents fab)
    in
    (* connectivity probe across pods *)
    let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    let dst = Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
    let got = ref 0 in
    Portland.Host_agent.set_rx dst (fun _ -> incr got);
    let ok = ref false in
    for i = 0 to 4 do
      if not !ok then begin
        Portland.Host_agent.send_ip src ~dst:(Portland.Host_agent.ip dst)
          (Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:2 ~app_seq:i ~payload_len:64 ()));
        Portland.Fabric.run_for fab (Time.ms 100);
        if !got > 0 then ok := true
      end
    done;
    (notices, recoveries, !ok)
  end

let name = "ablation"
let descr = "design-choice ablations: detection timeout sweep; ECMP hash salting"

(* several single-purpose fabrics; obs is unused *)
let run ?(quick = false) ?(seed = 42) ?obs:_ () =
  let timeouts =
    if quick then [ Time.ms 20; Time.ms 50 ] else [ Time.ms 20; Time.ms 50; Time.ms 100; Time.ms 200 ]
  in
  let timeout_sweep =
    List.filter_map
      (fun timeout ->
        match convergence_with_timeout ~seed ~timeout with
        | Some ms -> Some (Time.to_ms_f timeout, ms)
        | None -> None)
      timeouts
  in
  let flows = 64 in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k:4 () in
  assert (Portland.Fabric.await_convergence fab);
  let with_salt = count_cores fab ~flows in
  (* zero every switch's selector salt: all switches hash identically *)
  List.iter
    (fun agent -> Switchfab.Flow_table.set_hash_salt (Portland.Switch_agent.table agent) 0)
    (Portland.Fabric.agents fab);
  let without_salt = count_cores fab ~flows in
  let loss_rates = if quick then [ 0.0; 0.3 ] else [ 0.0; 0.05; 0.15; 0.3; 0.5 ] in
  let loss_sweep =
    List.map
      (fun rate ->
        let notices, recoveries, ok = detector_under_loss ~seed ~loss_rate:rate in
        (rate, notices, recoveries, ok))
      loss_rates
  in
  { timeout_sweep;
    flows_traced = flows;
    cores_with_salt = with_salt;
    cores_without_salt = without_salt;
    total_cores = 4;
    loss_sweep }

let result_to_json r =
  let open Obs.Json in
  Obj
    [ ( "timeout_sweep",
        List
          (List.map
             (fun (t, c) -> Obj [ ("timeout_ms", Float t); ("convergence_ms", Float c) ])
             r.timeout_sweep) );
      ("flows_traced", Int r.flows_traced);
      ("cores_with_salt", Int r.cores_with_salt);
      ("cores_without_salt", Int r.cores_without_salt);
      ("total_cores", Int r.total_cores);
      ( "loss_sweep",
        List
          (List.map
             (fun (rate, notices, recoveries, ok) ->
               Obj
                 [ ("loss_rate", Float rate);
                   ("false_notices", Int notices);
                   ("recoveries", Int recoveries);
                   ("ping_intact", Bool ok) ])
             r.loss_sweep) ) ]

let print fmt r =
  Render.heading fmt "Ablations: detection timeout; per-switch ECMP hash salting";
  Format.fprintf fmt "Convergence tracks the missed-LDM timeout (k=4, single failure):@.";
  Render.table fmt ~header:[ "LDM timeout (ms)"; "measured convergence (ms)" ]
    ~rows:(List.map (fun (t, c) -> [ Render.f1 t; Render.f1 c ]) r.timeout_sweep);
  Format.fprintf fmt
    "@.Path diversity across %d flows between one host pair (k=4, %d cores):@." r.flows_traced
    r.total_cores;
  Render.table fmt ~header:[ "ECMP hashing"; "distinct cores used" ]
    ~rows:
      [ [ "per-switch salted (default)"; string_of_int r.cores_with_salt ];
        [ "identical on every switch"; string_of_int r.cores_without_salt ] ];
  Format.fprintf fmt
    "@.Failure detector under random frame loss (2 s window, no real failures, 50 ms timeout):@.";
  Render.table fmt
    ~header:[ "frame loss"; "false fault notices"; "recoveries"; "ping (5 tries, lossy)" ]
    ~rows:
      (List.map
         (fun (rate, notices, recoveries, ok) ->
           [ Printf.sprintf "%.0f%%" (rate *. 100.0);
             string_of_int notices;
             string_of_int recoveries;
             (if ok then "intact" else "BROKEN") ])
         r.loss_sweep)
