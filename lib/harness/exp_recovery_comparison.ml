open Eventsim
module MR = Topology.Multirooted

type row = {
  family : string;
  k : int;
  hosts : int;
  switches : int;
  boot_convergence_ms : float;
  chaos_events : int;
  checks : int;
  clean_checks : int;
  verifier_clean_fraction : float;
  mean_recovery_ms : float;
  max_recovery_ms : float;
}

type result = { seed : int; duration_ms : float; rows : row list }

let name = "recovery-comparison"

let descr =
  "convergence and chaos recovery across the topology family (plain / ab / two-layer)"

(* one family member: boot it, then run the identically-seeded mixed
   campaign and fold the quiescent checks *)
let one ~seed ~duration ~k family =
  let fam =
    match Topology.Topo.Family.of_string ~k family with
    | Ok f -> f
    | Error e -> failwith ("recovery-comparison: " ^ e)
  in
  let spec = MR.spec_of_family fam in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.of_family ~seed fam in
  if not (Portland.Fabric.await_convergence fab) then
    failwith (Printf.sprintf "recovery-comparison: %s k=%d failed to converge" family k);
  let boot_ms = Time.to_ms_f (Portland.Fabric.now fab) in
  let mt = Portland.Fabric.tree fab in
  let plan = Chaos.generate ~profile:Chaos.Mixed ~seed ~duration mt in
  let report = Chaos.run_campaign ~seed ~label:("recovery-" ^ family) fab plan in
  let checks = report.Chaos.rep_checks in
  let clean =
    List.filter
      (fun c ->
        c.Chaos.chk_converged && c.Chaos.chk_violations = []
        && c.Chaos.chk_probes_ok = c.Chaos.chk_probes)
      checks
  in
  let waits = List.map (fun c -> c.Chaos.chk_wait_ms) checks in
  let n = List.length checks in
  { family;
    k;
    hosts = spec.MR.num_pods * spec.MR.edges_per_pod * spec.MR.hosts_per_edge;
    switches = (spec.MR.num_pods * (spec.MR.edges_per_pod + spec.MR.aggs_per_pod)) + spec.MR.num_cores;
    boot_convergence_ms = boot_ms;
    chaos_events =
      List.length (List.filter (fun e -> e.Chaos.ev_applied) report.Chaos.rep_events);
    checks = n;
    clean_checks = List.length clean;
    verifier_clean_fraction =
      (if n = 0 then 0.0 else float_of_int (List.length clean) /. float_of_int n);
    mean_recovery_ms =
      (if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 waits /. float_of_int n);
    max_recovery_ms = List.fold_left max 0.0 waits }

(* each family member builds its own fabric; obs is unused *)
let run ?(quick = false) ?(seed = 42) ?obs:_ () =
  let k = 4 in
  let duration = if quick then Time.sec 3 else Time.sec 6 in
  let rows = List.map (one ~seed ~duration ~k) [ "plain"; "ab"; "two-layer" ] in
  { seed; duration_ms = Time.to_ms_f duration; rows }

let result_to_json (r : result) =
  let open Obs.Json in
  Obj
    [ ("seed", Int r.seed);
      ("duration_ms", Float r.duration_ms);
      ( "rows",
        List
          (List.map
             (fun row ->
               Obj
                 [ ("family", Str row.family);
                   ("k", Int row.k);
                   ("hosts", Int row.hosts);
                   ("switches", Int row.switches);
                   ("convergence_ms", Float row.boot_convergence_ms);
                   ("chaos_events", Int row.chaos_events);
                   ("checks", Int row.checks);
                   ("clean_checks", Int row.clean_checks);
                   ("verifier_clean_fraction", Float row.verifier_clean_fraction);
                   ("mean_recovery_ms", Float row.mean_recovery_ms);
                   ("max_recovery_ms", Float row.max_recovery_ms) ])
             r.rows) ) ]

let print fmt (r : result) =
  Render.heading fmt
    (Printf.sprintf
       "Recovery comparison across the topology family (seed=%d, %.0f ms mixed campaign)"
       r.seed r.duration_ms);
  Render.table fmt
    ~header:
      [ "family"; "k"; "hosts"; "boot (ms)"; "events"; "checks"; "clean"; "clean frac";
        "mean rec (ms)"; "max rec (ms)" ]
    ~rows:
      (List.map
         (fun row ->
           [ row.family;
             string_of_int row.k;
             string_of_int row.hosts;
             Render.f1 row.boot_convergence_ms;
             string_of_int row.chaos_events;
             string_of_int row.checks;
             string_of_int row.clean_checks;
             Printf.sprintf "%.2f" row.verifier_clean_fraction;
             Render.f1 row.mean_recovery_ms;
             Render.f1 row.max_recovery_ms ])
         r.rows)
