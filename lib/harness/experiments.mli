(** Index of every reproduced table and figure.

    Every [Exp_*] module implements {!Experiment.S}; this is the ordered
    registry that drives the CLI listing, text rendering and JSON export
    generically — there is no per-experiment dispatch anywhere else. *)

val registry : Experiment.packed list
(** In the order the tables/figures appear in the paper. *)

val all : (string * string) list
(** [(id, one-line description)], same order as {!registry}. *)

val find : string -> Experiment.packed option

val run_one : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> Format.formatter -> string -> bool
(** Run one experiment by id and print its tables; [false] for an unknown
    id. *)

val run_one_json : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> string -> Obs.Json.t option
(** Run one experiment by id; [None] for an unknown id. *)

val run_all : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> Format.formatter -> unit

val run_all_json : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> unit -> Obs.Json.t list
(** One [{"experiment": ..., "result": ...}] object per experiment. *)
