open Eventsim
module MR = Topology.Multirooted

type point = {
  failures : int;
  trials : int;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  packets_lost_mean : float;
}

type result = {
  k : int;
  rate_pps : int;
  points : point list;
  size_sweep : (int * float) list;
}

let rate_pps = 1000

(* one trial: returns (convergence ms, packets lost) *)
let trial ~k ~failures ~seed =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k () in
  if not (Portland.Fabric.await_convergence fab) then None
  else begin
    let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    let dst = Portland.Fabric.host fab ~pod:(k - 1) ~edge:(k / 2 - 1) ~slot:(k / 2 - 1) in
    let mux = Transport.Port_mux.attach dst in
    let rx = Transport.Udp_flow.Receiver.attach (Portland.Fabric.engine fab) mux ~flow_id:7 () in
    let tx =
      Transport.Udp_flow.Sender.start (Portland.Fabric.engine fab) src
        ~dst:(Portland.Host_agent.ip dst) ~flow_id:7 ~rate_pps ()
    in
    Portland.Fabric.run_for fab (Time.ms 300);
    (* sample the failure instant uniformly within an LDM period so the
       detection delay (time since the port's last beacon, plus the
       timeout) is honestly distributed rather than phase-locked to the
       deterministic beacon schedule *)
    let phase_prng = Prng.create (seed * 7 + failures) in
    Portland.Fabric.run_for fab
      (Prng.int phase_prng Portland.Config.default.Portland.Config.ldm_period);
    let mt = Portland.Fabric.tree fab in
    let src_host = Portland.Host_agent.device_id src in
    let dst_host = Portland.Host_agent.device_id dst in
    (* anchor the failure set on a link the flow is actually using, so a
       single failure always disrupts it; extra failures stress the
       re-routes (each re-route that lands on another dead-but-undetected
       link costs a further detection timeout) *)
    let probe = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:7 ~app_seq:0 ~payload_len:1000 ()) in
    let on_path =
      match Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe with
      | Ok (_ :: a :: b :: rest) when rest <> [] -> Some (a, b)
      | Ok _ | Error _ -> None
    in
    let candidates = Workloads.Failure_plan.flow_relevant_links mt ~src_host ~dst_host in
    let prng = Prng.create (seed * 31 + failures) in
    let chosen =
      match on_path with
      | None ->
        Workloads.Failure_plan.pick_survivable prng mt ~candidates ~src_host ~dst_host
          ~n:failures
      | Some anchor ->
        if failures = 1 then Some [ anchor ]
        else begin
          let rest_candidates = List.filter (fun l -> l <> anchor) candidates in
          (* sample (n-1) extra links such that the whole set stays survivable *)
          let rec attempt tries =
            if tries = 0 then None
            else begin
              match
                Workloads.Failure_plan.pick_survivable prng mt ~candidates:rest_candidates
                  ~src_host ~dst_host ~n:(failures - 1)
              with
              | None -> None
              | Some extra ->
                let all = anchor :: extra in
                let excluded =
                  List.filter_map
                    (fun (a, b) ->
                      let links = Topology.Topo.links mt.MR.topo in
                      let found = ref None in
                      Array.iteri
                        (fun i (l : Topology.Topo.link) ->
                          let la = l.Topology.Topo.a.Topology.Topo.node
                          and lb = l.Topology.Topo.b.Topology.Topo.node in
                          if (la = a && lb = b) || (la = b && lb = a) then found := Some i)
                        links;
                      !found)
                    all
                in
                if
                  Topology.Paths.reachable ~excluded_links:excluded mt.MR.topo ~src:src_host
                    ~dst:dst_host
                then Some all
                else attempt (tries - 1)
            end
          in
          attempt 100
        end
    in
    match chosen with
    | None -> None
    | Some chosen ->
      let fail_time = Portland.Fabric.now fab in
      List.iter
        (fun (a, b) -> ignore (Portland.Fabric.fail_link_between fab ~a ~b))
        chosen;
      let lost_before = Transport.Udp_flow.Receiver.lost rx in
      Portland.Fabric.run_for fab (Time.sec 2);
      Transport.Udp_flow.Sender.stop tx;
      let lost = Transport.Udp_flow.Receiver.lost rx - lost_before in
      (match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_time - Time.ms 5) with
       | Some (_, gap) -> Some (Time.to_ms_f gap, lost)
       | None -> None)
  end

let single_trial ~k ~failures ~seed =
  match trial ~k ~failures ~seed with Some (ms, _) -> Some ms | None -> None

let name = "udp-convergence"
let descr = "UDP convergence vs number of simultaneous failures"

(* every trial is its own fabric; obs is unused *)
let run ?(quick = false) ?(seed = 42) ?obs:_ () =
  let k = if quick then 4 else 8 in
  let max_failures = if quick then 2 else 8 in
  let trials = if quick then 2 else 5 in
  let points =
    List.filter_map
      (fun failures ->
        let samples =
          List.filter_map (fun i -> trial ~k ~failures ~seed:(seed + (i * 101)))
            (List.init trials (fun i -> i))
        in
        match samples with
        | [] -> None
        | _ ->
          let n = List.length samples in
          let gaps = List.map fst samples in
          let losses = List.map (fun (_, l) -> float_of_int l) samples in
          Some
            { failures;
              trials = n;
              mean_ms = List.fold_left ( +. ) 0.0 gaps /. float_of_int n;
              min_ms = List.fold_left min infinity gaps;
              max_ms = List.fold_left max neg_infinity gaps;
              packets_lost_mean = List.fold_left ( +. ) 0.0 losses /. float_of_int n })
      (List.init max_failures (fun i -> i + 1))
  in
  let size_sweep =
    List.filter_map
      (fun k' ->
        match single_trial ~k:k' ~failures:1 ~seed:(seed + 7) with
        | Some ms -> Some (k', ms)
        | None -> None)
      (if quick then [ 4 ] else [ 4; 6; 8 ])
  in
  { k; rate_pps; points; size_sweep }

let result_to_json (r : result) =
  let open Obs.Json in
  Obj
    [ ("k", Int r.k);
      ("rate_pps", Int r.rate_pps);
      ( "points",
        List
          (List.map
             (fun p ->
               Obj
                 [ ("failures", Int p.failures);
                   ("trials", Int p.trials);
                   ("mean_ms", Float p.mean_ms);
                   ("min_ms", Float p.min_ms);
                   ("max_ms", Float p.max_ms);
                   ("packets_lost_mean", Float p.packets_lost_mean) ])
             r.points) );
      ( "size_sweep",
        List (List.map (fun (k', ms) -> Obj [ ("k", Int k'); ("mean_ms", Float ms) ]) r.size_sweep)
      ) ]

let print fmt (r : result) =
  Render.heading fmt
    (Printf.sprintf
       "UDP convergence vs. simultaneous failures (k=%d fat tree, %d pkt/s probe)" r.k
       r.rate_pps);
  Render.table fmt
    ~header:[ "failures"; "trials"; "mean (ms)"; "min (ms)"; "max (ms)"; "pkts lost (mean)" ]
    ~rows:
      (List.map
         (fun p ->
           [ string_of_int p.failures;
             string_of_int p.trials;
             Render.f1 p.mean_ms;
             Render.f1 p.min_ms;
             Render.f1 p.max_ms;
             Render.f1 p.packets_lost_mean ])
         r.points);
  Format.fprintf fmt "@.Single-failure convergence vs. fabric size:@.";
  Render.table fmt
    ~header:[ "k"; "hosts"; "convergence (ms)" ]
    ~rows:
      (List.map
         (fun (k, ms) ->
           [ string_of_int k; string_of_int (Topology.Fattree.num_hosts ~k); Render.f1 ms ])
         r.size_sweep)
