open Eventsim
module MR = Topology.Multirooted

type verdict = Pass | Fail | Partial

type cell = { verdict : verdict; note : string }

type row = { requirement : string; l2 : cell; vlan : cell; l3 : cell; portland : cell }

type result = { rows : row list; storm_events : int; storm_budget : int }

let k = 4

let udp payload_seq =
  Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:99 ~app_seq:payload_seq ~payload_len:64 ())

(* -------- ping helpers -------- *)

(* "can src reach dst": a few probe packets spaced out, pass on any
   delivery — reachability is eventual (a first probe may be spent
   repairing stale ARP state, exactly as a real retrying application
   would experience) *)
let ping_retry ~send_probe ~run_step ~got =
  let ok = ref false in
  for i = 0 to 4 do
    if not !ok then begin
      send_probe i;
      run_step ();
      if !got > 0 then ok := true
    end
  done;
  !ok

let ping_portland fab ~src ~dst =
  let got = ref 0 in
  Portland.Host_agent.set_rx dst (fun _ -> incr got);
  ping_retry
    ~send_probe:(fun i ->
      Portland.Host_agent.send_ip src ~dst:(Portland.Host_agent.ip dst) (udp i))
    ~run_step:(fun () -> Portland.Fabric.run_for fab (Time.ms 100))
    ~got

let ping_eth fab ~src ~dst =
  let got = ref 0 in
  Portland.Host_agent.set_rx dst (fun _ -> incr got);
  ping_retry
    ~send_probe:(fun i ->
      Portland.Host_agent.send_ip src ~dst:(Portland.Host_agent.ip dst) (udp i))
    ~run_step:(fun () -> Baselines.Ethernet_fabric.run_for fab (Time.ms 150))
    ~got

let ping_l3 fab ~src ~dst =
  let before = Baselines.L3_fabric.Host.received dst in
  Baselines.L3_fabric.Host.send_ip src ~dst:(Baselines.L3_fabric.Host.ip dst) (udp 0);
  Baselines.L3_fabric.run_for fab (Time.ms 100);
  Baselines.L3_fabric.Host.received dst > before

(* -------- R1: VM migration keeping its IP -------- *)

let r1_l2 ~seed:_ =
  let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
  if not (Baselines.Ethernet_fabric.await_stp_convergence fab) then
    { verdict = Fail; note = "spanning tree never converged" }
  else begin
    let src = Baselines.Ethernet_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    let vm = Baselines.Ethernet_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
    let before = ping_eth fab ~src ~dst:vm in
    (* re-plug the machine under a different pod's edge switch *)
    let net = Baselines.Ethernet_fabric.net fab in
    let mt = Baselines.Ethernet_fabric.tree fab in
    let device = Portland.Host_agent.device_id vm in
    let target_edge = mt.MR.edges.(1).(0) in
    let victim = Baselines.Ethernet_fabric.host fab ~pod:1 ~edge:0 ~slot:0 in
    Switchfab.Net.unplug net ~node:(Portland.Host_agent.device_id victim) ~port:0;
    Switchfab.Net.unplug net ~node:device ~port:0;
    ignore (Switchfab.Net.plug net ~a:(device, 0) ~b:(target_edge, 0));
    Portland.Host_agent.announce vm;
    Baselines.Ethernet_fabric.run_for fab (Time.ms 200);
    let after = ping_eth fab ~src ~dst:vm in
    if before && after then
      { verdict = Pass; note = "gratuitous ARP re-teaches MAC tables" }
    else { verdict = Fail; note = "unreachable after migration" }
  end

let r1_l3 () =
  let fab = Baselines.L3_fabric.create_fattree ~k () in
  let src = Baselines.L3_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = Baselines.L3_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let before = ping_l3 fab ~src ~dst:vm in
  Baselines.L3_fabric.migrate_keeping_ip fab vm ~to_:(1, 0, 0);
  let after = ping_l3 fab ~src ~dst:vm in
  if before && not after then
    { verdict = Fail; note = "IP pinned to home subnet; VM must renumber" }
  else if before && after then { verdict = Pass; note = "unexpectedly reachable" }
  else { verdict = Fail; note = "baseline connectivity failed" }

let r1_portland ~seed =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k ~spare_slots:[ (1, 0, 0) ] () in
  assert (Portland.Fabric.await_convergence fab);
  let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let before = ping_portland fab ~src ~dst:vm in
  Portland.Fabric.migrate fab ~vm ~to_:(1, 0, 0) ~downtime:(Time.ms 50) ();
  Portland.Fabric.run_for fab (Time.sec 1);
  let after = ping_portland fab ~src ~dst:vm in
  if before && after then
    { verdict = Pass; note = "new PMAC assigned; stale senders corrected" }
  else { verdict = Fail; note = "unreachable after migration" }

(* -------- R2: switch configuration before deployment -------- *)

let r2 () =
  let l3 = Baselines.L3_fabric.create_fattree ~k () in
  let entries = Baselines.L3_fabric.config_entry_count l3 in
  ( { verdict = Pass; note = "0 entries (flood and learn)" },
    { verdict = Fail; note = Printf.sprintf "%d static route entries" entries },
    { verdict = Pass; note = "0 entries (LDP + fabric manager)" } )

(* -------- R3: any-to-any connectivity -------- *)

let sample_positions prng n =
  List.init n (fun _ ->
      (Prng.int prng k, Prng.int prng (k / 2), Prng.int prng (k / 2)))

let r3 ~seed =
  let n = 8 in
  let prng = Prng.create seed in
  let pairs =
    List.combine (sample_positions prng n) (sample_positions prng n)
    |> List.filter (fun (a, b) -> a <> b)
  in
  let test_all ping =
    List.for_all (fun ((p1, e1, s1), (p2, e2, s2)) -> ping (p1, e1, s1) (p2, e2, s2)) pairs
  in
  let l2 =
    let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
    if not (Baselines.Ethernet_fabric.await_stp_convergence fab) then
      { verdict = Fail; note = "STP never converged" }
    else begin
      let ok =
        test_all (fun (p1, e1, s1) (p2, e2, s2) ->
            ping_eth fab
              ~src:(Baselines.Ethernet_fabric.host fab ~pod:p1 ~edge:e1 ~slot:s1)
              ~dst:(Baselines.Ethernet_fabric.host fab ~pod:p2 ~edge:e2 ~slot:s2))
      in
      if ok then { verdict = Pass; note = Printf.sprintf "%d/%d sampled pairs" (List.length pairs) (List.length pairs) }
      else { verdict = Fail; note = "sampled pair unreachable" }
    end
  in
  let l3 =
    let fab = Baselines.L3_fabric.create_fattree ~k () in
    let ok =
      test_all (fun (p1, e1, s1) (p2, e2, s2) ->
          ping_l3 fab
            ~src:(Baselines.L3_fabric.host fab ~pod:p1 ~edge:e1 ~slot:s1)
            ~dst:(Baselines.L3_fabric.host fab ~pod:p2 ~edge:e2 ~slot:s2))
    in
    if ok then { verdict = Pass; note = Printf.sprintf "%d/%d sampled pairs" (List.length pairs) (List.length pairs) }
    else { verdict = Fail; note = "sampled pair unreachable" }
  in
  let pl =
    let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k () in
    assert (Portland.Fabric.await_convergence fab);
    let ok =
      test_all (fun (p1, e1, s1) (p2, e2, s2) ->
          ping_portland fab
            ~src:(Portland.Fabric.host fab ~pod:p1 ~edge:e1 ~slot:s1)
            ~dst:(Portland.Fabric.host fab ~pod:p2 ~edge:e2 ~slot:s2))
    in
    if ok then { verdict = Pass; note = Printf.sprintf "%d/%d sampled pairs" (List.length pairs) (List.length pairs) }
    else { verdict = Fail; note = "sampled pair unreachable" }
  in
  (l2, l3, pl)

(* -------- R4: forwarding loops -------- *)

let r4 ~seed =
  (* layer 2 WITHOUT spanning tree: one broadcast must storm *)
  let storm_budget = 200_000 in
  let storm_events =
    let fab = Baselines.Ethernet_fabric.create_fattree ~stp:false ~k () in
    let h = Baselines.Ethernet_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    Portland.Host_agent.announce h;
    Baselines.Ethernet_fabric.run_bounded fab ~max_events:storm_budget
  in
  let l2 =
    let blocked =
      let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
      ignore (Baselines.Ethernet_fabric.await_stp_convergence fab);
      List.fold_left
        (fun acc sw ->
          match Baselines.Learning_switch.stp sw with
          | Some s ->
            let n = ref acc in
            for p = 0 to k - 1 do
              if Baselines.Stp.role s ~port:p = Baselines.Stp.Blocked then incr n
            done;
            !n
          | None -> acc)
        0
        (Baselines.Ethernet_fabric.switches fab)
    in
    if storm_events >= storm_budget then
      { verdict = Partial;
        note = Printf.sprintf "storms without STP; STP blocks %d ports" blocked }
    else { verdict = Pass; note = "no storm observed (unexpected)" }
  in
  let l3 = { verdict = Pass; note = "TTL bounds any transient loop" } in
  let pl =
    (* PortLand: the same broadcast probe must stay bounded *)
    let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k () in
    assert (Portland.Fabric.await_convergence fab);
    let before = Engine.events_processed (Portland.Fabric.engine fab) in
    let h = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    Portland.Host_agent.announce h;
    Portland.Fabric.run_for fab (Time.ms 100);
    let used = Engine.events_processed (Portland.Fabric.engine fab) - before in
    if used < storm_budget / 10 then
      { verdict = Pass; note = "up/down forwarding is structurally loop-free" }
    else { verdict = Fail; note = "unexpected event explosion" }
  in
  (l2, l3, pl, storm_events, storm_budget)

(* -------- R5: failure recovery -------- *)

let r5_portland ~seed =
  match Exp_udp_convergence.single_trial ~k ~failures:1 ~seed with
  | Some ms -> { verdict = Pass; note = Printf.sprintf "%.0f ms re-convergence" ms }
  | None -> { verdict = Fail; note = "trial failed" }

let r5_l2 () =
  let fab = Baselines.Ethernet_fabric.create_fattree ~stp:true ~k () in
  if not (Baselines.Ethernet_fabric.await_stp_convergence fab) then
    { verdict = Fail; note = "STP never converged" }
  else begin
    let engine = Baselines.Ethernet_fabric.engine fab in
    let src = Baselines.Ethernet_fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    let dst = Baselines.Ethernet_fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
    let mux = Transport.Port_mux.attach dst in
    let rx = Transport.Udp_flow.Receiver.attach engine mux ~flow_id:5 () in
    let tx =
      Transport.Udp_flow.Sender.start engine src ~dst:(Portland.Host_agent.ip dst) ~flow_id:5
        ~rate_pps:100 ()
    in
    Baselines.Ethernet_fabric.run_for fab (Time.sec 2);
    if Transport.Udp_flow.Receiver.received rx = 0 then
      { verdict = Fail; note = "no baseline traffic" }
    else begin
      (* sever the link the flow actually uses: the port the source edge
         switch learned the destination's MAC on (a fabric-facing port
         whose peer is on the current spanning-tree path) *)
      let mt = Baselines.Ethernet_fabric.tree fab in
      let edge_sw = mt.MR.edges.(0).(0) in
      let sw =
        List.find
          (fun sw -> Baselines.Learning_switch.device sw = edge_sw)
          (Baselines.Ethernet_fabric.switches fab)
      in
      (match
         Baselines.Mac_table.lookup
           (Baselines.Learning_switch.mac_table sw)
           (Portland.Host_agent.amac dst)
       with
       | Some p ->
         (match
            Switchfab.Net.peer_of (Baselines.Ethernet_fabric.net fab) ~node:edge_sw ~port:p
          with
          | Some (peer, _) ->
            ignore (Baselines.Ethernet_fabric.fail_link_between fab ~a:edge_sw ~b:peer)
          | None -> ())
       | None -> ());
      let fail_at = Engine.now engine in
      Baselines.Ethernet_fabric.run_for fab (Time.sec 90);
      Transport.Udp_flow.Sender.stop tx;
      match Transport.Udp_flow.Receiver.max_gap rx ~after:(fail_at - Time.ms 10) with
      | Some (_, gap) when gap > Time.sec 80 ->
        { verdict = Fail; note = "never recovered within 90 s" }
      | Some (_, gap) ->
        { verdict = Partial; note = Printf.sprintf "%.0f s re-convergence" (Time.to_sec_f gap) }
      | None -> { verdict = Fail; note = "no measurement" }
    end
  end

let r5_l3 () =
  let fab = Baselines.L3_fabric.create_fattree ~k () in
  let mt =
    (* rebuild topology knowledge: core 0 serves agg position 0 *)
    MR.build (Topology.Fattree.spec ~k)
  in
  (* fail a remote core->pod link and count surviving flows *)
  let core = mt.MR.cores.(0) in
  ignore (Baselines.L3_fabric.fail_link_between fab ~a:core ~b:mt.MR.aggs.(3).(0));
  let prng = Prng.create 7 in
  let total = 12 in
  let ok = ref 0 in
  for _ = 1 to total do
    let p1 = Prng.int prng (k - 1) in
    let src = Baselines.L3_fabric.host fab ~pod:p1 ~edge:(Prng.int prng 2) ~slot:(Prng.int prng 2) in
    let dst = Baselines.L3_fabric.host fab ~pod:3 ~edge:(Prng.int prng 2) ~slot:(Prng.int prng 2) in
    if ping_l3 fab ~src ~dst then incr ok
  done;
  if !ok = total then { verdict = Pass; note = "all sampled flows survived" }
  else
    { verdict = Partial;
      note =
        Printf.sprintf "%d/%d flows blackholed until manual repair" (total - !ok) total }

(* -------- VLAN column -------- *)

let vlan_ping fab ~src ~dst =
  let got = ref 0 in
  Portland.Host_agent.set_rx dst (fun _ -> incr got);
  ping_retry
    ~send_probe:(fun i ->
      Portland.Host_agent.send_ip src ~dst:(Portland.Host_agent.ip dst) (udp i))
    ~run_step:(fun () -> Baselines.Vlan_fabric.run_for fab (Time.ms 150))
    ~got

let vlan_cells () =
  let fab = Baselines.Vlan_fabric.create_fattree ~stp:true ~k () in
  if not (Baselines.Vlan_fabric.await_stp_convergence fab) then
    let bad = { verdict = Fail; note = "spanning tree never converged" } in
    (bad, bad, bad, bad, bad)
  else begin
    (* R1: migration works within the VLAN, breaks across *)
    let src = Baselines.Vlan_fabric.host fab ~pod:1 ~edge:0 ~slot:0 in
    let vm = Baselines.Vlan_fabric.host fab ~pod:1 ~edge:1 ~slot:1 in
    let intra =
      vlan_ping fab ~src ~dst:vm
      && (Baselines.Vlan_fabric.migrate_host fab vm ~to_:(1, 0, 1);
          Baselines.Vlan_fabric.run_for fab (Time.ms 100);
          vlan_ping fab ~src ~dst:vm)
    in
    Baselines.Vlan_fabric.migrate_host fab vm ~to_:(2, 0, 0);
    Baselines.Vlan_fabric.run_for fab (Time.ms 100);
    let inter = vlan_ping fab ~src ~dst:vm in
    let r1 =
      if intra && not inter then
        { verdict = Partial; note = "only within the VM's VLAN" }
      else if intra && inter then { verdict = Pass; note = "unexpected cross-VLAN reachability" }
      else { verdict = Fail; note = "intra-VLAN migration failed" }
    in
    (* R2: per-port VLAN assignments *)
    let r2 =
      { verdict = Fail;
        note =
          Printf.sprintf "%d access-port VLAN assignments"
            (Baselines.Vlan_fabric.config_entry_count fab) }
    in
    (* R3: reachability stops at the VLAN boundary *)
    let same =
      vlan_ping fab
        ~src:(Baselines.Vlan_fabric.host fab ~pod:0 ~edge:0 ~slot:0)
        ~dst:(Baselines.Vlan_fabric.host fab ~pod:0 ~edge:1 ~slot:0)
    in
    let cross =
      vlan_ping fab
        ~src:(Baselines.Vlan_fabric.host fab ~pod:0 ~edge:0 ~slot:0)
        ~dst:(Baselines.Vlan_fabric.host fab ~pod:3 ~edge:0 ~slot:0)
    in
    let r3 =
      if same && not cross then
        { verdict = Partial; note = "intra-VLAN only; inter-VLAN needs routers" }
      else if same && cross then { verdict = Pass; note = "unexpected cross-VLAN reachability" }
      else { verdict = Fail; note = "intra-VLAN connectivity failed" }
    in
    let r4 =
      { verdict = Partial; note = "needs STP on trunks; storms confined to one VLAN" }
    in
    let r5 =
      { verdict = Partial; note = "inherits spanning-tree re-convergence (see flat L2)" }
    in
    (r1, r2, r3, r4, r5)
  end

let name = "table1"
let descr = "requirements matrix: flat L2 vs static L3 vs PortLand (Table 1)"

(* four fabrics per requirement probe, all short-lived: obs is unused *)
let run ?quick:_ ?(seed = 42) ?obs:_ () =
  let r2_l2, r2_l3, r2_pl = r2 () in
  let r3_l2, r3_l3, r3_pl = r3 ~seed in
  let r4_l2, r4_l3, r4_pl, storm_events, storm_budget = r4 ~seed in
  let v1, v2, v3, v4, v5 = vlan_cells () in
  let rows =
    [ { requirement = "R1: VM keeps IP across migration";
        l2 = r1_l2 ~seed;
        vlan = v1;
        l3 = r1_l3 ();
        portland = r1_portland ~seed };
      { requirement = "R2: zero switch configuration";
        l2 = r2_l2; vlan = v2; l3 = r2_l3; portland = r2_pl };
      { requirement = "R3: any-to-any connectivity";
        l2 = r3_l2; vlan = v3; l3 = r3_l3; portland = r3_pl };
      { requirement = "R4: no forwarding loops";
        l2 = r4_l2; vlan = v4; l3 = r4_l3; portland = r4_pl };
      { requirement = "R5: rapid failure recovery";
        l2 = r5_l2 ();
        vlan = v5;
        l3 = r5_l3 ();
        portland = r5_portland ~seed } ]
  in
  { rows; storm_events; storm_budget }

let verdict_str = function Pass -> "yes" | Fail -> "NO" | Partial -> "partial"

let result_to_json r =
  let open Obs.Json in
  let cell c = Obj [ ("verdict", Str (verdict_str c.verdict)); ("note", Str c.note) ] in
  Obj
    [ ( "rows",
        List
          (List.map
             (fun row ->
               Obj
                 [ ("requirement", Str row.requirement);
                   ("l2", cell row.l2);
                   ("vlan", cell row.vlan);
                   ("l3", cell row.l3);
                   ("portland", cell row.portland) ])
             r.rows) );
      ("storm_events", Int r.storm_events);
      ("storm_budget", Int r.storm_budget) ]

let print fmt r =
  Render.heading fmt "Requirements matrix (Table 1): measured on identical k=4 fat trees";
  Render.table fmt
    ~header:
      [ "requirement"; "flat L2 (flood+STP)"; "VLANs (pod/VLAN)"; "static L3"; "PortLand" ]
    ~rows:
      (List.map
         (fun row ->
           let cell c = Printf.sprintf "%s — %s" (verdict_str c.verdict) c.note in
           [ row.requirement; cell row.l2; cell row.vlan; cell row.l3; cell row.portland ])
         r.rows);
  Format.fprintf fmt
    "@.Loop probe detail: one gratuitous ARP broadcast on L2 without STP consumed %d of a \
     %d-event budget (a broadcast storm); the same probe on PortLand terminated immediately.@."
    r.storm_events r.storm_budget
