(** Cross-family recovery comparison: how each member of the topology
    family (plain fat tree, F10-style AB fat tree, oversubscribed
    two-layer leaf–spine) self-configures and then rides out the same
    seeded chaos campaign — boot convergence time, recovery time at every
    quiescent check, and the fraction of checks the static verifier
    passed clean, side by side. *)

type row = {
  family : string;
  k : int;
  hosts : int;
  switches : int;
  boot_convergence_ms : float;  (** sim time to first full convergence *)
  chaos_events : int;           (** applied fault actions *)
  checks : int;                 (** quiescent-point checks run *)
  clean_checks : int;           (** checks with converged + 0 violations + all probes *)
  verifier_clean_fraction : float;
  mean_recovery_ms : float;     (** mean convergence wait across checks *)
  max_recovery_ms : float;
}

type result = { seed : int; duration_ms : float; rows : row list }

include Experiment.S with type result := result
