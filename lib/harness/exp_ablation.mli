(** Experiment E10 — ablations of two design choices DESIGN.md calls out.

    {b Detection timeout.} PortLand's convergence is bounded by the
    missed-LDM timeout, not by topology: sweeping the timeout should move
    measured convergence one-for-one (plus sub-period detection phase and
    control/recompute costs). This quantifies the paper's implicit
    trade-off between detection latency and false-positive robustness.

    {b Per-switch ECMP hash salting.} Switches hashing flows identically
    make correlated up-path choices: on a k=4 fat tree only 2 of 4 cores
    are ever used. Salting each switch's selector decorrelates the
    choices and restores full path diversity. (Found by this repository's
    own test suite; real fabrics seed per-switch hash functions for the
    same reason.)

    {b Detector robustness under frame loss.} LDM beacons ride the data
    links, so random frame loss can fake a failure: the 50 ms timeout
    tolerates four consecutive lost beacons. Sweeping the loss rate with
    {e no} real failures counts false fault notices (and the matching
    recoveries when beacons resume) — the other side of the
    detection-latency trade-off. *)

type result = {
  timeout_sweep : (float * float) list;  (** (timeout ms, measured convergence ms) *)
  flows_traced : int;
  cores_with_salt : int;
  cores_without_salt : int;
  total_cores : int;
  loss_sweep : (float * int * int * bool) list;
      (** (frame loss rate, false fault notices, recovery notices,
          connectivity intact) over a 2 s window with no real failures —
          the failure detector's robustness/latency trade-off *)
}

include Experiment.S with type result := result
