type result = {
  bindings : int;
  ns_per_arp : float;
  arps_per_sec_per_core : float;
  projections : (float * float) list;
}

let build_fm ~bindings =
  let engine = Eventsim.Engine.create () in
  let ctrl = Portland.Ctrl.create engine ~latency:(Eventsim.Time.us 50) in
  let spec = Topology.Fattree.spec ~k:48 in
  let fm = Portland.Fabric_manager.create engine Portland.Config.default ctrl ~spec in
  let ips = Array.make bindings (Netcore.Ipv4_addr.of_int 0) in
  for i = 0 to bindings - 1 do
    let ip = Netcore.Ipv4_addr.of_int (0x0A000000 lor i) in
    ips.(i) <- ip;
    let pmac =
      Portland.Pmac.make ~pod:(i mod 48) ~position:(i mod 24) ~port:(i mod 24)
        ~vmid:(1 + (i mod 1000))
    in
    Portland.Fabric_manager.insert_binding_for_test fm
      { Portland.Msg.ip; amac = Netcore.Mac_addr.of_int (0x020000000000 lor i); pmac;
        edge_switch = i mod 1000 }
  done;
  (fm, ips)

let measured_ns_per_arp ?(bindings = 100_000) () =
  let fm, ips = build_fm ~bindings in
  let n = Array.length ips in
  (* warm up *)
  for i = 0 to 99_999 do
    ignore (Portland.Fabric_manager.resolve fm ips.(i mod n))
  done;
  let iters = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    ignore (Portland.Fabric_manager.resolve fm ips.(i mod n))
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

(* the full control path: query message in, dispatch, lookup, answer
   message out — what a fabric-manager core actually executes per ARP *)
let measured_ns_per_arp_full ?(bindings = 100_000) () =
  let engine = Eventsim.Engine.create () in
  let config = { Portland.Config.default with Portland.Config.fm_arp_service_time = 0 } in
  let ctrl = Portland.Ctrl.create engine ~latency:(Eventsim.Time.ns 1) in
  let spec = Topology.Fattree.spec ~k:48 in
  let fm = Portland.Fabric_manager.create engine config ctrl ~spec in
  let ips = Array.make bindings (Netcore.Ipv4_addr.of_int 0) in
  for i = 0 to bindings - 1 do
    let ip = Netcore.Ipv4_addr.of_int (0x0A000000 lor i) in
    ips.(i) <- ip;
    let pmac =
      Portland.Pmac.make ~pod:(i mod 48) ~position:(i mod 24) ~port:(i mod 24)
        ~vmid:(1 + (i mod 1000))
    in
    Portland.Fabric_manager.insert_binding_for_test fm
      { Portland.Msg.ip; amac = Netcore.Mac_addr.of_int (0x020000000000 lor i); pmac;
        edge_switch = i mod 1000 }
  done;
  let answered = ref 0 in
  Portland.Ctrl.register_switch ctrl 0 (fun _ -> incr answered);
  let requester_pmac = Portland.Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:1 in
  let iters = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    Portland.Ctrl.send_to_fm ctrl ~from:0
      (Portland.Msg.Arp_query
         { switch_id = 0;
           requester_ip = ips.(i mod bindings);
           requester_pmac;
           requester_port = 0;
           target_ip = ips.((i * 7) mod bindings) });
    Eventsim.Engine.run engine
  done;
  let t1 = Unix.gettimeofday () in
  assert (!answered = iters);
  (t1 -. t0) *. 1e9 /. float_of_int iters

let name = "fm-cpu"
let descr = "fabric manager CPU requirements for ARP service"

(* wall-clock microbenchmark against a bare FM; obs is unused *)
let run ?(quick = false) ?seed:_ ?obs:_ () =
  let bindings = if quick then 10_000 else 100_000 in
  let ns = measured_ns_per_arp_full ~bindings () in
  let per_core = 1e9 /. ns in
  let rates = [ 1e4; 5e4; 1e5; 2.5e5; 5e5; 1e6 ] in
  { bindings;
    ns_per_arp = ns;
    arps_per_sec_per_core = per_core;
    projections = List.map (fun r -> (r, r /. per_core)) rates }

let result_to_json r =
  let open Obs.Json in
  Obj
    [ ("bindings", Int r.bindings);
      ("ns_per_arp", Float r.ns_per_arp);
      ("arps_per_sec_per_core", Float r.arps_per_sec_per_core);
      ( "projections",
        List
          (List.map
             (fun (rate, cores) -> Obj [ ("arps_per_sec", Float rate); ("cores", Float cores) ])
             r.projections) ) ]

let print fmt r =
  Render.heading fmt "Fabric manager CPU requirements for ARP service";
  Format.fprintf fmt
    "Measured on this machine with %d IP->PMAC bindings: %.0f ns per ARP request through the \
     full control path (%.0f ARPs/s per core).@.@."
    r.bindings r.ns_per_arp r.arps_per_sec_per_core;
  Render.table fmt ~header:[ "aggregate ARPs/s"; "cores needed" ]
    ~rows:
      (List.map
         (fun (rate, cores) -> [ Printf.sprintf "%.0f" rate; Render.f2 cores ])
         r.projections)
