module type S = sig
  type result

  val name : string
  val descr : string
  val run : ?quick:bool -> ?seed:int -> ?obs:Obs.t -> unit -> result
  val result_to_json : result -> Obs.Json.t
  val print : Format.formatter -> result -> unit
end

type packed = Packed : (module S with type result = 'r) -> packed

let name (Packed (module E)) = E.name
let descr (Packed (module E)) = E.descr

let run_print ?quick ?seed ?obs fmt (Packed (module E)) =
  E.print fmt (E.run ?quick ?seed ?obs ())

let run_json ?quick ?seed ?obs (Packed (module E)) =
  Obs.Json.Obj
    [ ("experiment", Obs.Json.Str E.name);
      ("result", E.result_to_json (E.run ?quick ?seed ?obs ())) ]
