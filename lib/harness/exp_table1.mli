(** Experiment E1 — the paper's Table 1, measured rather than asserted.

    The paper motivates PortLand with five requirements a data-center
    fabric should satisfy and tabulates how existing approaches fall
    short. This experiment re-derives every cell empirically by running
    scenario probes against four complete fabrics on the same k=4 fat
    tree: conventional layer 2 (flood-and-learn with spanning tree), the
    same partitioned into per-pod 802.1Q VLANs, static layer 3 (subnet
    per pod), and PortLand.

    - {b R1} — a VM migrates keeping its IP; can peers still reach it?
    - {b R2} — how much manual switch configuration does the fabric need
      before any packet flows?
    - {b R3} — can any host reach any other host (sampled pairs)?
    - {b R4} — are forwarding loops possible? (Layer 2 is additionally
      probed {e without} spanning tree to exhibit the broadcast storm.)
    - {b R5} — how long does recovery from a link failure take? *)

type verdict = Pass | Fail | Partial

type cell = { verdict : verdict; note : string }

type row = { requirement : string; l2 : cell; vlan : cell; l3 : cell; portland : cell }

type result = { rows : row list; storm_events : int; storm_budget : int }

include Experiment.S with type result := result
