(** Experiment E7 — "CPU requirements for ARP requests".

    The paper measures the fabric manager's per-ARP service cost and
    projects how many CPU cores a deployment needs at a given aggregate
    ARP rate. Reproduced by timing this implementation's
    [Fabric_manager.resolve] over a table pre-populated with bindings for
    a large fabric, then projecting cores = rate × per-ARP seconds.
    (The Bechamel benchmark in [bench/main.ml] measures the same path
    with statistical rigor; this experiment uses a simple timing loop so
    the experiments binary stays self-contained.) *)

type result = {
  bindings : int;             (** table size during measurement *)
  ns_per_arp : float;         (** measured wall-clock cost per lookup *)
  arps_per_sec_per_core : float;
  projections : (float * float) list;  (** (ARPs/s, cores needed) *)
}

include Experiment.S with type result := result

val measured_ns_per_arp : ?bindings:int -> unit -> float
(** Cost of the bare IP→PMAC lookup, exposed for reuse. *)

val measured_ns_per_arp_full : ?bindings:int -> unit -> float
(** Cost of the full control path per ARP: query message delivery,
    dispatch, lookup, answer message delivery — what {!run} projects
    cores from. *)
