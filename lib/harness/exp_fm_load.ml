open Eventsim

type model_row = {
  k : int;
  hosts : int;
  arps_per_sec_1pct : float;
  arps_per_sec_10pct : float;
  arps_per_sec_100pct : float;
}

type measured_row = {
  mk : int;
  switches : int;
  boot_msgs_to_fm : int;
  boot_msgs_to_switches : int;
  boot_bytes : int;
  steady_msgs_per_sec : float;
}

type result = {
  flows_per_host_per_sec : int;
  model : model_row list;
  measured : measured_row list;
}

let flows_per_host_per_sec = 25

let model_row k =
  let hosts = Topology.Fattree.num_hosts ~k in
  let base = float_of_int (hosts * flows_per_host_per_sec) in
  { k;
    hosts;
    arps_per_sec_1pct = base *. 0.01;
    arps_per_sec_10pct = base *. 0.10;
    arps_per_sec_100pct = base }

let measure k seed =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed ~k () in
  assert (Portland.Fabric.await_convergence fab);
  let ctrl = Portland.Fabric.ctrl fab in
  let boot_to_fm = Portland.Ctrl.to_fm_count ctrl in
  let boot_to_sw = Portland.Ctrl.to_switch_count ctrl in
  let boot_bytes = Portland.Ctrl.to_fm_bytes ctrl + Portland.Ctrl.to_switch_bytes ctrl in
  let window = Time.sec 1 in
  Portland.Fabric.run_for fab window;
  let steady =
    Portland.Ctrl.to_fm_count ctrl + Portland.Ctrl.to_switch_count ctrl - boot_to_fm - boot_to_sw
  in
  { mk = k;
    switches = Topology.Fattree.num_switches ~k;
    boot_msgs_to_fm = boot_to_fm;
    boot_msgs_to_switches = boot_to_sw;
    boot_bytes;
    steady_msgs_per_sec = float_of_int steady /. Time.to_sec_f window }

let name = "fm-load"
let descr = "fabric manager control traffic: modelled ARP load + measured boot traffic"

(* one fabric per measured k; obs is unused *)
let run ?(quick = false) ?(seed = 42) ?obs:_ () =
  let model = List.map model_row (if quick then [ 8; 16 ] else [ 8; 16; 24; 32; 48 ]) in
  let measured = List.map (fun k -> measure k seed) (if quick then [ 4 ] else [ 4; 6; 8 ]) in
  { flows_per_host_per_sec; model; measured }

let result_to_json r =
  let open Obs.Json in
  Obj
    [ ("flows_per_host_per_sec", Int r.flows_per_host_per_sec);
      ( "model",
        List
          (List.map
             (fun m ->
               Obj
                 [ ("k", Int m.k);
                   ("hosts", Int m.hosts);
                   ("arps_per_sec_1pct", Float m.arps_per_sec_1pct);
                   ("arps_per_sec_10pct", Float m.arps_per_sec_10pct);
                   ("arps_per_sec_100pct", Float m.arps_per_sec_100pct) ])
             r.model) );
      ( "measured",
        List
          (List.map
             (fun m ->
               Obj
                 [ ("k", Int m.mk);
                   ("switches", Int m.switches);
                   ("boot_msgs_to_fm", Int m.boot_msgs_to_fm);
                   ("boot_msgs_to_switches", Int m.boot_msgs_to_switches);
                   ("boot_bytes", Int m.boot_bytes);
                   ("steady_msgs_per_sec", Float m.steady_msgs_per_sec) ])
             r.measured) ) ]

let print fmt r =
  Render.heading fmt "Fabric manager control traffic";
  Format.fprintf fmt "Modelled ARP load (%d new flows/host/s; columns = ARP-cache miss fraction):@."
    r.flows_per_host_per_sec;
  Render.table fmt
    ~header:[ "k"; "hosts"; "ARPs/s @1%"; "ARPs/s @10%"; "ARPs/s @100%" ]
    ~rows:
      (List.map
         (fun m ->
           [ string_of_int m.k;
             string_of_int m.hosts;
             Render.f1 m.arps_per_sec_1pct;
             Render.f1 m.arps_per_sec_10pct;
             Render.f1 m.arps_per_sec_100pct ])
         r.model);
  Format.fprintf fmt "@.Measured control-network traffic (simulated fabrics):@.";
  Render.table fmt
    ~header:
      [ "k"; "switches"; "boot msgs -> FM"; "boot msgs -> switches"; "boot wire bytes";
        "steady msgs/s" ]
    ~rows:
      (List.map
         (fun m ->
           [ string_of_int m.mk;
             string_of_int m.switches;
             string_of_int m.boot_msgs_to_fm;
             string_of_int m.boot_msgs_to_switches;
             string_of_int m.boot_bytes;
             Render.f1 m.steady_msgs_per_sec ])
         r.measured)
