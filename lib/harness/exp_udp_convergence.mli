(** Experiment E2 — "Convergence time with increasing failures" (UDP).

    A constant-rate UDP flow crosses pods while [n] fabric links that the
    flow's ECMP paths could use fail simultaneously (chosen so the pair
    stays physically connected). The convergence time is the longest
    interruption in the receive stream. The paper measures ~65 ms for a
    single failure, growing moderately with the number of simultaneous
    failures (each re-route that lands on another dead-but-undetected
    link costs a further detection timeout).

    Also sweeps fabric size at a single failure, demonstrating that
    convergence is independent of k (it is detection-timeout-bound, not
    topology-bound). *)

type point = {
  failures : int;
  trials : int;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  packets_lost_mean : float;
}

type result = {
  k : int;
  rate_pps : int;
  points : point list;
  size_sweep : (int * float) list;  (** (k, single-failure convergence ms) *)
}

include Experiment.S with type result := result

val single_trial : k:int -> failures:int -> seed:int -> float option
(** One trial's convergence time in ms ([None] when no survivable failure
    combination exists). Exposed for tests. *)
