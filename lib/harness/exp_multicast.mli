(** Experiment E4 — "Multicast convergence".

    One sender streams to a multicast group with receivers in three other
    pods. The fabric manager has mapped the group to a core and installed
    the distribution tree. Two successive failures hit tree links; after
    each, LDM timeouts fire, the fabric manager recomputes the tree around
    a new core, and reprograms the affected switches. Per receiver and per
    failure, the result records the reception outage. *)

type outage = { receiver : string; failure : int; gap_ms : float; lost : int }

type result = {
  k : int;
  group : string;
  rate_pps : int;
  initial_core : int option;
  core_after_first : int option;
  core_after_second : int option;
  outages : outage list;
}

include Experiment.S with type result := result
