(** Experiment E9 (ablation) — multipath spreading vs. a single tree.

    PortLand's loop-free up/down forwarding lets it hash flows across all
    equal-cost paths, while conventional layer 2 must disable all but a
    spanning tree's worth of links. Identical random-permutation UDP
    workloads run on both fabrics; the aggregate goodput ratio shows what
    ECMP buys on a fat tree (ideally the full bisection, vs. the tree's
    single-root bottleneck). *)

type side = { label : string; delivered_mb : float; goodput_gbps : float; queue_drops : int }

type result = {
  k : int;
  flows : int;
  per_flow_mbps : float;
  duration_ms : float;
  portland : side;
  ethernet_stp : side;
  speedup : float;
}

include Experiment.S with type result := result
