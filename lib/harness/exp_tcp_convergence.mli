(** Experiment E3 — "TCP convergence" after a fabric link failure.

    A long-lived TCP flow crosses pods; one link on its current path fails
    mid-flow. The fabric re-converges within the LDM detection timeout
    (tens of milliseconds), but the {e flow's} outage is bounded below by
    TCP's 200 ms minimum retransmission timeout — the paper's point: the
    network recovers before TCP even notices, so a single RTO covers the
    whole event. The result carries the receiver's sequence trace around
    the failure (the paper's figure) plus the stall statistics. *)

type result = {
  k : int;
  fail_at_ms : float;
  stall_ms : float;            (** longest delivery interruption *)
  fabric_reconverge_ms : float;  (** LDM timeout configured (lower bound) *)
  rto_min_ms : float;
  timeouts : int;
  fast_retransmits : int;
  retransmits : int;
  goodput_before_mbps : float;
  goodput_after_mbps : float;
  trace : (float * float) list;  (** (time ms, MB delivered), around the failure *)
}

include Experiment.S with type result := result
