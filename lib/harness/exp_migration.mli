(** Experiment E5 — "TCP flow during VM migration".

    A long-lived TCP flow targets a VM that live-migrates to another pod
    (the machine disappears, stays down for the migration downtime, then
    resumes at a new edge switch and sends a gratuitous ARP). The fabric
    manager updates the IP→PMAC mapping and invalidates the old one; the
    previous edge switch traps packets still addressed to the stale PMAC
    and unicasts corrective gratuitous ARPs to their senders. The flow
    resumes after the downtime plus a few RTO backoffs.

    Run both with the paper's behaviour (trapped packets dropped) and the
    paper's suggested optimization (trapped packets forwarded to the new
    PMAC), which removes one RTO round. *)

type mode_result = {
  forward_stale : bool;
  outage_ms : float;
  timeouts : int;
  delivered_after_mb : float;
  trace : (float * float) list;  (** (time ms, MB delivered) around migration *)
}

type result = {
  k : int;
  downtime_ms : float;
  migrate_at_ms : float;
  modes : mode_result list;
}

include Experiment.S with type result := result
