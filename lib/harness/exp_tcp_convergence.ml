open Eventsim

type result = {
  k : int;
  fail_at_ms : float;
  stall_ms : float;
  fabric_reconverge_ms : float;
  rto_min_ms : float;
  timeouts : int;
  fast_retransmits : int;
  retransmits : int;
  goodput_before_mbps : float;
  goodput_after_mbps : float;
  trace : (float * float) list;
}

let longest_stall pts ~after =
  let best = ref 0 in
  for i = 1 to Array.length pts - 1 do
    let t0, _ = pts.(i - 1) and t1, _ = pts.(i) in
    if t0 >= after && t1 - t0 > !best then best := t1 - t0
  done;
  !best

let name = "tcp-convergence"
let descr = "TCP sequence trace across a link failure"

let run ?(quick = false) ?(seed = 42) ?obs () =
  let k = 4 in
  let config = Portland.Config.default in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~proto:config ~seed ?obs ~k () in
  assert (Portland.Fabric.await_convergence fab);
  let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let m_src = Transport.Port_mux.attach src in
  let m_dst = Transport.Port_mux.attach dst in
  let conn = Transport.Tcp.connect (Portland.Fabric.engine fab) ~src:m_src ~dst:m_dst () in
  let warm = if quick then Time.ms 300 else Time.sec 1 in
  Portland.Fabric.run_for fab warm;
  let before_bytes = (Transport.Tcp.stats conn).Transport.Tcp.bytes_delivered in
  let fail_at = Portland.Fabric.now fab in
  let probe =
    Netcore.Ipv4_pkt.Tcp (Netcore.Tcp_seg.make ~seq:0 ~ack_num:0 ~payload_len:1460 ())
  in
  (match Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe with
   | Ok (_ :: sw1 :: sw2 :: _) ->
     ignore (Portland.Fabric.fail_link_between fab ~a:sw1 ~b:sw2)
   | Ok _ | Error _ -> failwith "Exp_tcp_convergence: could not locate the flow's path");
  let post = if quick then Time.ms 800 else Time.sec 2 in
  Portland.Fabric.run_for fab post;
  let stats = Transport.Tcp.stats conn in
  Transport.Tcp.stop conn;
  let pts = Stats.Series.points (Transport.Tcp.delivery_trace conn) in
  let stall = longest_stall pts ~after:(fail_at - Time.ms 5) in
  let after_bytes = stats.Transport.Tcp.bytes_delivered - before_bytes in
  let trace =
    Array.to_list pts
    |> List.filter (fun (t, _) -> t >= fail_at - Time.ms 100 && t <= fail_at + Time.ms 500)
    |> List.filteri (fun i _ -> i mod 20 = 0)
    |> List.map (fun (t, v) -> (Time.to_ms_f t, v /. 1e6))
  in
  { k;
    fail_at_ms = Time.to_ms_f fail_at;
    stall_ms = float_of_int stall /. 1e6;
    fabric_reconverge_ms = Time.to_ms_f config.Portland.Config.ldm_timeout;
    rto_min_ms = Time.to_ms_f Transport.Tcp.default_params.Transport.Tcp.rto_min;
    timeouts = stats.Transport.Tcp.timeouts;
    fast_retransmits = stats.Transport.Tcp.fast_retransmits;
    retransmits = stats.Transport.Tcp.retransmits;
    goodput_before_mbps = float_of_int before_bytes *. 8.0 /. Time.to_sec_f warm /. 1e6;
    goodput_after_mbps = float_of_int after_bytes *. 8.0 /. Time.to_sec_f post /. 1e6;
    trace }

let result_to_json r =
  let open Obs.Json in
  Obj
    [ ("k", Int r.k);
      ("fail_at_ms", Float r.fail_at_ms);
      ("stall_ms", Float r.stall_ms);
      ("fabric_reconverge_ms", Float r.fabric_reconverge_ms);
      ("rto_min_ms", Float r.rto_min_ms);
      ("timeouts", Int r.timeouts);
      ("fast_retransmits", Int r.fast_retransmits);
      ("retransmits", Int r.retransmits);
      ("goodput_before_mbps", Float r.goodput_before_mbps);
      ("goodput_after_mbps", Float r.goodput_after_mbps);
      ( "trace",
        List (List.map (fun (t, mb) -> Obj [ ("t_ms", Float t); ("mbytes", Float mb) ]) r.trace)
      ) ]

let print fmt r =
  Render.heading fmt
    (Printf.sprintf "TCP convergence across a link failure (k=%d fat tree)" r.k);
  Render.table fmt ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "link failed at (ms)"; Render.f1 r.fail_at_ms ];
        [ "TCP delivery stall (ms)"; Render.f1 r.stall_ms ];
        [ "fabric detection timeout (ms)"; Render.f1 r.fabric_reconverge_ms ];
        [ "TCP min RTO (ms)"; Render.f1 r.rto_min_ms ];
        [ "RTO events"; string_of_int r.timeouts ];
        [ "fast retransmits"; string_of_int r.fast_retransmits ];
        [ "segments retransmitted"; string_of_int r.retransmits ];
        [ "goodput before failure (Mb/s)"; Render.f1 r.goodput_before_mbps ];
        [ "goodput after failure (Mb/s)"; Render.f1 r.goodput_after_mbps ] ];
  Format.fprintf fmt "@.Receiver sequence trace around the failure:@.";
  Render.series fmt ~title:"(downsampled)" ~x_label:"time (ms)" ~y_label:"MB delivered" r.trace
