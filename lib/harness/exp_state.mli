(** Experiment E8 — switch forwarding-state scaling.

    PortLand's central scalability claim: PMAC prefix forwarding keeps
    per-switch state O(k) (plus one entry per directly attached host),
    while conventional layer-2 switches hold one MAC entry per
    {e communicating host} anywhere in the fabric. Both are measured on
    identical topologies: PortLand tables after convergence, Ethernet MAC
    tables after a warm-up in which every host exchanges traffic with a
    sample of peers across the fabric. *)

type row = {
  k : int;
  hosts : int;
  portland_edge_max : int;
  portland_agg_max : int;
  portland_core_max : int;
  ethernet_mac_max : int;
  ethernet_mac_mean : float;
  flat_l2_worst_case : int;  (** one entry per host — the analytic bound *)
}

type result = { warmup_peers : int; rows : row list }

include Experiment.S with type result := result
