open Eventsim

type mode_result = {
  forward_stale : bool;
  outage_ms : float;
  timeouts : int;
  delivered_after_mb : float;
  trace : (float * float) list;
}

type result = {
  k : int;
  downtime_ms : float;
  migrate_at_ms : float;
  modes : mode_result list;
}

let longest_stall pts ~after =
  let best = ref 0 in
  for i = 1 to Array.length pts - 1 do
    let t0, _ = pts.(i - 1) and t1, _ = pts.(i) in
    if t0 >= after && t1 - t0 > !best then best := t1 - t0
  done;
  !best

let one_mode ?obs ~seed ~quick ~forward_stale ~downtime () =
  let k = 4 in
  let config = { Portland.Config.default with Portland.Config.forward_stale } in
  let fab =
    Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~proto:config ~seed ?obs ~k ~spare_slots:[ (2, 0, 0) ] ()
  in
  assert (Portland.Fabric.await_convergence fab);
  let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let m_src = Transport.Port_mux.attach src in
  let m_vm = Transport.Port_mux.attach vm in
  let conn = Transport.Tcp.connect (Portland.Fabric.engine fab) ~src:m_src ~dst:m_vm () in
  Portland.Fabric.run_for fab (if quick then Time.ms 300 else Time.sec 1);
  let migrate_at = Portland.Fabric.now fab in
  Portland.Fabric.migrate fab ~vm ~to_:(2, 0, 0) ~downtime ();
  let before = (Transport.Tcp.stats conn).Transport.Tcp.bytes_delivered in
  Portland.Fabric.run_for fab (if quick then Time.sec 2 else Time.sec 3);
  let stats = Transport.Tcp.stats conn in
  Transport.Tcp.stop conn;
  let pts = Stats.Series.points (Transport.Tcp.delivery_trace conn) in
  let trace =
    Array.to_list pts
    |> List.filter (fun (t, _) -> t >= migrate_at - Time.ms 100 && t <= migrate_at + Time.sec 2)
    |> List.filteri (fun i _ -> i mod 50 = 0)
    |> List.map (fun (t, v) -> (Time.to_ms_f t, v /. 1e6))
  in
  ( migrate_at,
    { forward_stale;
      outage_ms = float_of_int (longest_stall pts ~after:(migrate_at - Time.ms 5)) /. 1e6;
      timeouts = stats.Transport.Tcp.timeouts;
      delivered_after_mb = float_of_int (stats.Transport.Tcp.bytes_delivered - before) /. 1e6;
      trace } )

let name = "migration"
let descr = "TCP flow during VM migration (plus forward-stale ablation)"

let run ?(quick = false) ?(seed = 42) ?obs () =
  let downtime = Time.ms 200 in
  (* the paper-mode fabric is the primary one; the ablation re-registers
     the same probe names, so only the last fabric's levels survive *)
  let at1, m1 = one_mode ?obs ~seed ~quick ~forward_stale:false ~downtime () in
  let _, m2 = one_mode ?obs ~seed ~quick ~forward_stale:true ~downtime () in
  { k = 4;
    downtime_ms = Time.to_ms_f downtime;
    migrate_at_ms = Time.to_ms_f at1;
    modes = [ m1; m2 ] }

let result_to_json r =
  let open Obs.Json in
  Obj
    [ ("k", Int r.k);
      ("downtime_ms", Float r.downtime_ms);
      ("migrate_at_ms", Float r.migrate_at_ms);
      ( "modes",
        List
          (List.map
             (fun m ->
               Obj
                 [ ("forward_stale", Bool m.forward_stale);
                   ("outage_ms", Float m.outage_ms);
                   ("timeouts", Int m.timeouts);
                   ("delivered_after_mb", Float m.delivered_after_mb);
                   ( "trace",
                     List
                       (List.map
                          (fun (t, mb) -> Obj [ ("t_ms", Float t); ("mbytes", Float mb) ])
                          m.trace) ) ])
             r.modes) ) ]

let print fmt r =
  Render.heading fmt
    (Printf.sprintf
       "TCP flow during VM migration (k=%d, pod 3 -> pod 2, %.0f ms downtime, at %.0f ms)" r.k
       r.downtime_ms r.migrate_at_ms);
  Render.table fmt
    ~header:[ "mode"; "flow outage (ms)"; "RTOs"; "delivered after (MB)" ]
    ~rows:
      (List.map
         (fun m ->
           [ (if m.forward_stale then "forward-stale (optimization)" else "drop-stale (paper)");
             Render.f1 m.outage_ms;
             string_of_int m.timeouts;
             Render.f2 m.delivered_after_mb ])
         r.modes);
  List.iter
    (fun m ->
      Format.fprintf fmt "@.Delivery trace (%s):@."
        (if m.forward_stale then "forward-stale" else "drop-stale");
      Render.series fmt ~title:"(downsampled)" ~x_label:"time (ms)" ~y_label:"MB delivered"
        m.trace)
    r.modes
