(* Transport tests run over a tiny single-switch LAN (Testutil.tiny_lan)
   and, for path-failure behaviour, over a full PortLand fabric. *)

open Eventsim
open Netcore

(* ---------------- Port_mux ---------------- *)

let test_mux_dispatch () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h1 in
  let udp_got = ref 0 and tcp_got = ref 0 in
  Transport.Port_mux.register_udp mux ~port:9000 (fun ~src:_ _ -> incr udp_got);
  Transport.Port_mux.register_tcp mux ~port:5001 (fun ~src:_ _ -> incr tcp_got);
  let dst = Portland.Host_agent.ip h1 in
  Portland.Host_agent.send_ip h0 ~dst
    (Ipv4_pkt.Udp (Udp.make ~dst_port:9000 ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  Portland.Host_agent.send_ip h0 ~dst
    (Ipv4_pkt.Tcp (Tcp_seg.make ~dst_port:5001 ~seq:0 ~ack_num:0 ~payload_len:10 ()));
  Portland.Host_agent.send_ip h0 ~dst
    (Ipv4_pkt.Udp (Udp.make ~dst_port:1234 ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  Testutil.run_ms engine 50;
  Testutil.check_int "udp dispatched" 1 !udp_got;
  Testutil.check_int "tcp dispatched" 1 !tcp_got;
  Testutil.check_int "unmatched counted" 1 (Transport.Port_mux.unmatched mux)

let test_mux_unregister () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h1 in
  let got = ref 0 in
  Transport.Port_mux.register_udp mux ~port:9000 (fun ~src:_ _ -> incr got);
  Transport.Port_mux.unregister_udp mux ~port:9000;
  Portland.Host_agent.send_ip h0 ~dst:(Portland.Host_agent.ip h1)
    (Ipv4_pkt.Udp (Udp.make ~dst_port:9000 ~flow_id:1 ~app_seq:0 ~payload_len:64 ()));
  Testutil.run_ms engine 50;
  Testutil.check_int "unregistered" 0 !got

(* ---------------- UDP flows ---------------- *)

let test_udp_flow_rate () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h1 in
  let rx = Transport.Udp_flow.Receiver.attach engine mux ~flow_id:5 () in
  let tx =
    Transport.Udp_flow.Sender.start engine h0 ~dst:(Portland.Host_agent.ip h1) ~flow_id:5
      ~rate_pps:1000 ()
  in
  Testutil.run_ms engine 500;
  Transport.Udp_flow.Sender.stop tx;
  Testutil.run_ms engine 20;
  Testutil.check_int "sent 500 in 500ms" 500 (Transport.Udp_flow.Sender.sent tx);
  Testutil.check_int "all received" 500 (Transport.Udp_flow.Receiver.received rx);
  Testutil.check_int "nothing lost" 0 (Transport.Udp_flow.Receiver.lost rx);
  Testutil.check_int "no duplicates" 0 (Transport.Udp_flow.Receiver.duplicate rx)

let test_udp_flow_filtering () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h1 in
  let rx = Transport.Udp_flow.Receiver.attach engine mux ~flow_id:5 () in
  (* different flow id on the same port: ignored *)
  Portland.Host_agent.send_ip h0 ~dst:(Portland.Host_agent.ip h1)
    (Ipv4_pkt.Udp (Udp.make ~flow_id:6 ~app_seq:0 ~payload_len:64 ()));
  Testutil.run_ms engine 50;
  Testutil.check_int "foreign flow ignored" 0 (Transport.Udp_flow.Receiver.received rx)

let test_udp_gap_detection () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h1 in
  let rx = Transport.Udp_flow.Receiver.attach engine mux ~flow_id:5 () in
  let send seq =
    Portland.Host_agent.send_ip h0 ~dst:(Portland.Host_agent.ip h1)
      (Ipv4_pkt.Udp (Udp.make ~flow_id:5 ~app_seq:seq ~payload_len:64 ()))
  in
  send 0;
  Testutil.run_ms engine 10;
  send 1;
  Testutil.run_ms engine 10;
  (* 100 ms of silence, then a jump over 2..4 *)
  Testutil.run_ms engine 100;
  send 5;
  Testutil.run_ms engine 10;
  send 5;
  (* duplicate *)
  Testutil.run_ms engine 10;
  Testutil.check_int "lost" 3 (Transport.Udp_flow.Receiver.lost rx);
  Testutil.check_int "dup" 1 (Transport.Udp_flow.Receiver.duplicate rx);
  match Transport.Udp_flow.Receiver.max_gap rx ~after:0 with
  | Some (_, gap) -> Testutil.check_bool "gap ~100ms" true (gap >= Time.ms 100)
  | None -> Alcotest.fail "no gap"

(* ---------------- TCP ---------------- *)

let test_tcp_bounded_transfer () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let total = 1_000_000 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 ~total_bytes:total () in
  Testutil.run_ms engine 2000;
  Testutil.check_bool "finished" true (Transport.Tcp.finished conn);
  let s = Transport.Tcp.stats conn in
  Testutil.check_int "all bytes delivered" total s.Transport.Tcp.bytes_delivered;
  Testutil.check_int "all bytes acked" total s.Transport.Tcp.bytes_acked;
  Testutil.check_int "no retransmits on a clean lan" 0 s.Transport.Tcp.retransmits;
  Testutil.check_bool "srtt measured" true (s.Transport.Tcp.srtt <> None)

let test_tcp_slow_start_growth () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 () in
  let p = Transport.Tcp.default_params in
  Testutil.check_int "initial cwnd"
    (p.Transport.Tcp.init_cwnd_mss * p.Transport.Tcp.mss)
    (Transport.Tcp.stats conn).Transport.Tcp.cwnd_bytes;
  Testutil.run_ms engine 100;
  let s = Transport.Tcp.stats conn in
  Testutil.check_bool "cwnd grew" true
    (s.Transport.Tcp.cwnd_bytes > p.Transport.Tcp.init_cwnd_mss * p.Transport.Tcp.mss);
  Transport.Tcp.stop conn

let test_tcp_throughput_near_line_rate () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 () in
  Testutil.run_ms engine 1000;
  let s = Transport.Tcp.stats conn in
  Transport.Tcp.stop conn;
  let mbps = float_of_int s.Transport.Tcp.bytes_delivered *. 8.0 /. 1e6 in
  Testutil.check_bool "over 700 Mb/s on a 1 Gb/s lan" true (mbps > 700.0)

let test_tcp_rto_on_blackout () =
  let engine, net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 () in
  Testutil.run_ms engine 100;
  (* sever the receiver's link permanently *)
  let l = Option.get (Switchfab.Net.link_between net 0 2) in
  Switchfab.Net.fail_link net l;
  Testutil.run_ms engine 2000;
  let s = Transport.Tcp.stats conn in
  Transport.Tcp.stop conn;
  (* with a 200 ms min RTO and doubling backoff, 2 s of blackout gives
     RTOs at +200, +600, +1400 ms: at least 3, at most 4 *)
  Testutil.check_bool "rto backoff" true
    (s.Transport.Tcp.timeouts >= 3 && s.Transport.Tcp.timeouts <= 4)

let test_tcp_recovers_through_path_failure () =
  (* full fabric: the flow must survive an on-path link failure and
     deliver every byte exactly once *)
  let fab = Testutil.converged_fabric () in
  let engine = Portland.Fabric.engine fab in
  let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:0 in
  let m0 = Transport.Port_mux.attach src and m1 = Transport.Port_mux.attach dst in
  let total = 40_000_000 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 ~total_bytes:total () in
  Portland.Fabric.run_for fab (Time.ms 100);
  let probe = Ipv4_pkt.Tcp (Tcp_seg.make ~seq:0 ~ack_num:0 ~payload_len:1460 ()) in
  (match
     Portland.Fabric.trace_route fab ~src ~dst_ip:(Portland.Host_agent.ip dst) probe
   with
   | Ok (_ :: a :: b :: _) -> ignore (Portland.Fabric.fail_link_between fab ~a ~b)
   | Ok _ | Error _ -> Alcotest.fail "no path");
  Portland.Fabric.run_for fab (Time.sec 2);
  let s = Transport.Tcp.stats conn in
  Testutil.check_bool "finished" true (Transport.Tcp.finished conn);
  Testutil.check_int "exactly total delivered" total s.Transport.Tcp.bytes_delivered;
  Testutil.check_bool "saw loss" true (s.Transport.Tcp.retransmits > 0)

let test_tcp_exactly_once_over_lossy_link () =
  (* 5% random loss: TCP must still deliver every byte exactly once *)
  let engine = Engine.create () in
  let nodes =
    [ { Topology.Topo.id = 0; kind = Topology.Topo.Edge_switch; name = "sw"; nports = 2 };
      { Topology.Topo.id = 1; kind = Topology.Topo.Host; name = "h0"; nports = 1 };
      { Topology.Topo.id = 2; kind = Topology.Topo.Host; name = "h1"; nports = 1 } ]
  in
  let links =
    [ { Topology.Topo.a = { Topology.Topo.node = 0; port = 0 };
        b = { Topology.Topo.node = 1; port = 0 } };
      { Topology.Topo.a = { Topology.Topo.node = 0; port = 1 };
        b = { Topology.Topo.node = 2; port = 0 } } ]
  in
  let topo = Topology.Topo.create ~nodes ~links in
  let params = { Switchfab.Net.default_link_params with Switchfab.Net.loss_rate = 0.05 } in
  let net = Switchfab.Net.create ~params ~loss_seed:11 engine topo in
  let sw = Baselines.Learning_switch.attach engine net ~device:0 ~stp:false () in
  Baselines.Learning_switch.start sw;
  let mk_host i ip_last =
    let h =
      Portland.Host_agent.create engine Portland.Config.default net ~device:i
        ~amac:(Mac_addr.of_int (0x020000000000 lor i))
        ~ip:(Ipv4_addr.of_octets 10 0 0 ip_last) ()
    in
    Portland.Host_agent.start h;
    h
  in
  let h0 = mk_host 1 2 and h1 = mk_host 2 3 in
  Testutil.run_ms engine 200;
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let total = 2_000_000 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 ~total_bytes:total () in
  Testutil.run_ms engine 30_000;
  let s = Transport.Tcp.stats conn in
  Testutil.check_bool "finished despite loss" true (Transport.Tcp.finished conn);
  Testutil.check_int "every byte exactly once" total s.Transport.Tcp.bytes_delivered;
  Testutil.check_bool "loss caused retransmissions" true (s.Transport.Tcp.retransmits > 0)

let test_tcp_goodput_series () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 () in
  Testutil.run_ms engine 500;
  Transport.Tcp.stop conn;
  let series = Transport.Tcp.goodput_bps conn ~window:(Time.ms 100) in
  Testutil.check_bool "series non-empty" true (List.length series >= 4);
  List.iter (fun (_, bps) -> Testutil.check_bool "bps positive" true (bps >= 0.0)) series;
  Testutil.check_bool "trace recorded" true
    (Stats.Series.length (Transport.Tcp.delivery_trace conn) > 100)

let test_tcp_delayed_ack () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let run_with params =
    let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
    let conn =
      Transport.Tcp.connect engine ~params ~src:m0 ~dst:m1 ~total_bytes:1_000_000 ()
    in
    Testutil.run_ms engine 3000;
    let s = Transport.Tcp.stats conn in
    Testutil.check_bool "finished" true (Transport.Tcp.finished conn);
    s
  in
  let s_imm = run_with Transport.Tcp.default_params in
  let s_del =
    run_with { Transport.Tcp.default_params with Transport.Tcp.delayed_ack = true }
  in
  Testutil.check_int "same bytes" s_imm.Transport.Tcp.bytes_delivered
    s_del.Transport.Tcp.bytes_delivered;
  (* delayed acking roughly halves the pure-ACK count *)
  Testutil.check_bool "fewer acks" true
    (s_del.Transport.Tcp.acks_sent * 3 < s_imm.Transport.Tcp.acks_sent * 2)

let test_tcp_cwnd_trace () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let m0 = Transport.Port_mux.attach h0 and m1 = Transport.Port_mux.attach h1 in
  let conn = Transport.Tcp.connect engine ~src:m0 ~dst:m1 () in
  Testutil.run_ms engine 300;
  Transport.Tcp.stop conn;
  let pts = Stats.Series.points (Transport.Tcp.cwnd_trace conn) in
  Testutil.check_bool "cwnd changes recorded" true (Array.length pts > 5);
  (* slow start: the early trace is strictly increasing *)
  let increasing = ref true in
  for i = 1 to min 5 (Array.length pts - 1) do
    if snd pts.(i) <= snd pts.(i - 1) then increasing := false
  done;
  Testutil.check_bool "slow-start growth" true !increasing

(* ---------------- ICMP / ping ---------------- *)

let test_icmp_kernel_reply () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h0 in
  let replies = ref 0 in
  Transport.Port_mux.set_icmp_handler mux (fun ~src:_ m ->
      match m with Icmp.Echo_reply _ -> incr replies | Icmp.Echo_request _ -> ());
  (* h1 has no rx handler at all: the reply comes from its "kernel" *)
  Portland.Host_agent.send_ip h0 ~dst:(Portland.Host_agent.ip h1)
    (Ipv4_pkt.Icmp (Icmp.echo_request ~ident:9 ~seq:0 ()));
  Testutil.run_ms engine 20;
  Testutil.check_int "kernel replied" 1 !replies

let test_ping_statistics () =
  let engine, _net, hosts = Testutil.tiny_lan () in
  let h0, h1 = (List.nth hosts 0, List.nth hosts 1) in
  let mux = Transport.Port_mux.attach h0 in
  let p = Transport.Ping.create engine mux ~dst:(Portland.Host_agent.ip h1) () in
  Transport.Ping.start p ~count:25 ~interval:(Time.ms 2) ();
  Testutil.run_ms engine 200;
  Testutil.check_int "sent" 25 (Transport.Ping.sent p);
  Testutil.check_int "received" 25 (Transport.Ping.received p);
  Testutil.check_int "lost" 0 (Transport.Ping.lost p);
  let rtt = Transport.Ping.rtt p in
  Testutil.check_int "samples" 25 (Stats.Distribution.count rtt);
  Testutil.check_bool "rtt positive" true (Stats.Distribution.min rtt > 0.0)

let test_ping_rtt_tiers_on_fattree () =
  let fab = Testutil.converged_fabric () in
  let src = Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let mux = Transport.Port_mux.attach src in
  let median dst =
    let p =
      Transport.Ping.create (Portland.Fabric.engine fab) mux
        ~dst:(Portland.Host_agent.ip dst) ()
    in
    Transport.Ping.start p ~count:10 ~interval:(Time.ms 5) ();
    Portland.Fabric.run_for fab (Time.ms 100);
    Transport.Ping.stop p;
    Stats.Distribution.percentile (Transport.Ping.rtt p) 50.0
  in
  let same_edge = median (Portland.Fabric.host fab ~pod:0 ~edge:0 ~slot:1) in
  let same_pod = median (Portland.Fabric.host fab ~pod:0 ~edge:1 ~slot:0) in
  let inter_pod = median (Portland.Fabric.host fab ~pod:3 ~edge:1 ~slot:1) in
  Testutil.check_bool "same edge < same pod" true (same_edge < same_pod);
  Testutil.check_bool "same pod < inter pod" true (same_pod < inter_pod)

let test_tcp_two_connections_independent () =
  let engine, _net, hosts = Testutil.tiny_lan ~n:4 () in
  let h = Array.of_list hosts in
  let m = Array.map Transport.Port_mux.attach h in
  let c1 = Transport.Tcp.connect engine ~src:m.(0) ~dst:m.(1) ~total_bytes:500_000 () in
  let c2 =
    Transport.Tcp.connect engine ~src:m.(2) ~dst:m.(3) ~src_port:6000 ~dst_port:6000
      ~total_bytes:500_000 ()
  in
  Testutil.run_ms engine 2000;
  Testutil.check_bool "c1 finished" true (Transport.Tcp.finished c1);
  Testutil.check_bool "c2 finished" true (Transport.Tcp.finished c2)

let () =
  Alcotest.run "transport"
    [ ( "port mux",
        [ Alcotest.test_case "dispatch" `Quick test_mux_dispatch;
          Alcotest.test_case "unregister" `Quick test_mux_unregister ] );
      ( "udp flows",
        [ Alcotest.test_case "constant rate, lossless" `Quick test_udp_flow_rate;
          Alcotest.test_case "flow filtering" `Quick test_udp_flow_filtering;
          Alcotest.test_case "gap & loss detection" `Quick test_udp_gap_detection ] );
      ( "tcp",
        [ Alcotest.test_case "bounded transfer" `Quick test_tcp_bounded_transfer;
          Alcotest.test_case "slow start" `Quick test_tcp_slow_start_growth;
          Alcotest.test_case "near line rate" `Quick test_tcp_throughput_near_line_rate;
          Alcotest.test_case "rto backoff on blackout" `Quick test_tcp_rto_on_blackout;
          Alcotest.test_case "recovers through path failure" `Quick
            test_tcp_recovers_through_path_failure;
          Alcotest.test_case "exactly-once over a lossy link" `Quick
            test_tcp_exactly_once_over_lossy_link;
          Alcotest.test_case "goodput series" `Quick test_tcp_goodput_series;
          Alcotest.test_case "independent connections" `Quick
            test_tcp_two_connections_independent;
          Alcotest.test_case "delayed acks" `Quick test_tcp_delayed_ack;
          Alcotest.test_case "cwnd trace" `Quick test_tcp_cwnd_trace ] );
      ( "icmp & ping",
        [ Alcotest.test_case "kernel echo reply" `Quick test_icmp_kernel_reply;
          Alcotest.test_case "ping statistics" `Quick test_ping_statistics;
          Alcotest.test_case "rtt tiers on a fat tree" `Quick test_ping_rtt_tiers_on_fattree ] ) ]
